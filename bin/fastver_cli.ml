(* Command-line driver for FastVer: load a database, run YCSB workloads,
   inspect verification statistics, or demonstrate tamper detection. *)

open Cmdliner

let ( $$ ) f a = Term.(const f $ a)

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)
(* ------------------------------------------------------------------ *)

let db_size =
  Arg.(value & opt int 100_000 & info [ "n"; "db-size" ] ~docv:"N"
         ~doc:"Number of records loaded initially.")

let ops =
  Arg.(value & opt int 200_000 & info [ "ops" ] ~docv:"OPS"
         ~doc:"Operations to run.")

let workers =
  Arg.(value & opt int 4 & info [ "w"; "workers" ] ~docv:"W"
         ~doc:"Worker (and verifier) threads.")

let batch =
  Arg.(value & opt int 32_768 & info [ "batch" ] ~docv:"B"
         ~doc:"Operations between verification scans (0 = only at the end).")

let depth =
  Arg.(value & opt int 6 & info [ "d"; "depth" ] ~docv:"D"
         ~doc:"Merkle frontier depth kept under deferred verification.")

let cache =
  Arg.(value & opt int 512 & info [ "cache" ] ~docv:"ENTRIES"
         ~doc:"Verifier cache entries per thread.")

let workload =
  let wl = Arg.enum [ ("a", `A); ("b", `B); ("c", `C); ("e", `E) ] in
  Arg.(value & opt wl `A & info [ "workload" ] ~docv:"A|B|C|E"
         ~doc:"YCSB workload mix.")

let theta =
  Arg.(value & opt float 0.9 & info [ "theta" ] ~docv:"T"
         ~doc:"Zipfian skew (0 = uniform).")

let algo =
  let alg =
    Arg.enum
      [ ("blake2s", Record_enc.Blake2s); ("blake2b", Record_enc.Blake2b);
        ("sha256", Record_enc.Sha256) ]
  in
  Arg.(value & opt alg Record_enc.Blake2s & info [ "hash" ]
         ~docv:"ALGO" ~doc:"Merkle hash function.")

let enclave_model =
  let model =
    Arg.enum
      [ ("zero", Cost_model.zero); ("sim", Cost_model.simulated);
        ("sgx", Cost_model.sgx) ]
  in
  Arg.(value & opt model Cost_model.simulated & info [ "enclave" ]
         ~docv:"zero|sim|sgx" ~doc:"Enclave cost model.")

let no_auth =
  Arg.(value & flag & info [ "no-auth" ]
         ~doc:"Skip client MACs and result signatures (benchmark mode).")

let parallel =
  Arg.(value & flag & info [ "parallel" ]
         ~doc:"Drive the workload through OCaml domains (one per worker) \
               instead of the sequential driver.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let shards =
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N"
         ~doc:"Verifier shards (independent keyspace partitions, each with \
               its own Merkle tree and verifier). 0 follows --workers.")

let mk_config workers batch depth cache algo enclave_model no_auth seed =
  {
    Fastver.Config.default with
    n_workers = workers;
    batch_size = batch;
    frontier_levels = depth;
    cache_capacity = cache;
    algo;
    cost_model = enclave_model;
    authenticate_clients = not no_auth;
    seed;
  }

let spec_of workload theta =
  let open Fastver_workload.Ycsb in
  let base =
    match workload with
    | `A -> workload_a
    | `B -> workload_b
    | `C -> workload_c
    | `E -> workload_e
  in
  with_dist base (Zipfian theta)

let load_system config db_size =
  let t = Fastver.create ~config () in
  Logs.app (fun m -> m "loading %d records…" db_size);
  let t0 = Unix.gettimeofday () in
  Fastver.load t
    (Array.init db_size (fun i ->
         (Int64.of_int i, Fastver_workload.Ycsb.initial_value (Int64.of_int i))));
  Logs.app (fun m -> m "loaded in %.2fs" (Unix.gettimeofday () -. t0));
  t

let report t ops wall =
  let s = Fastver.stats t in
  let eff = wall +. (Int64.to_float (Fastver.enclave_overhead_ns t) /. 1e9) in
  let v = Fastver.verifier_stats t in
  Logs.app (fun m ->
      m "@[<v>ops            : %d in %.2fs wall (%.2fs effective)@,\
         throughput     : %.0f ops/s@,\
         fast path      : %d ops (%.1f%%), merkle path: %d ops@,\
         verifications  : %d scans, mean latency %.3fs, max pending batch %d@,\
         verifier ops   : addm=%d evictm=%d addb=%d evictb=%d evictbm=%d@,\
         migrations     : %d data, %d frontier records@,\
         enclave        : %d transitions, %.3fs charged@]"
        ops wall eff
        (float_of_int ops /. eff)
        s.blum_fast_path
        (100.0 *. float_of_int s.blum_fast_path /. float_of_int (max 1 s.ops))
        s.merkle_path s.verifies
        (s.verify_time_s /. float_of_int (max 1 s.verifies))
        (Fastver.config t).batch_size v.n_add_m v.n_evict_m v.n_add_b
        v.n_evict_b v.n_evict_bm s.migrated_data s.migrated_frontier
        (Enclave.transitions (Fastver.enclave_handle t))
        (Int64.to_float (Fastver.enclave_overhead_ns t) /. 1e9))

(* ------------------------------------------------------------------ *)
(* run: drive a workload                                               *)
(* ------------------------------------------------------------------ *)

let die fmt = Fmt.kstr (fun s -> Logs.err (fun m -> m "%s" s); exit 2) fmt

let run_cmd db_size ops workers shards batch depth cache workload theta algo
    enclave_model no_auth parallel seed =
  if db_size < 1 then die "--db-size must be at least 1";
  if ops < 0 then die "--ops must be non-negative";
  if workers < 1 then die "--workers must be at least 1";
  if shards < 0 then die "--shards must be non-negative";
  if theta < 0.0 || theta >= 1.0 then die "--theta must be in [0, 1)";
  let config =
    { (mk_config workers batch depth cache algo enclave_model no_auth seed)
      with n_shards = shards }
  in
  Logs.app (fun m -> m "config: %a" Fastver.Config.pp config);
  let t = load_system config db_size in
  let gen = Fastver_workload.Ycsb.create ~seed ~db_size (spec_of workload theta) in
  let t0 = Unix.gettimeofday () in
  if parallel then
    Fastver.Parallel.run_ycsb t ~spec:(spec_of workload theta) ~db_size
      ~ops_per_worker:(ops / workers)
  else Fastver.run_ops t gen ops;
  let epoch = Fastver.current_epoch t in
  let cert = Fastver.verify t in
  let wall = Unix.gettimeofday () -. t0 in
  report t ops wall;
  Logs.app (fun m ->
      m "epoch %d certificate: %s… (checks: %b)" epoch
        (Fastver_crypto.Bytes_util.to_hex (String.sub cert 0 8))
        (Fastver.check_epoch_certificate t ~epoch cert))

(* ------------------------------------------------------------------ *)
(* attack: tamper with the host and watch detection                    *)
(* ------------------------------------------------------------------ *)

let attack_cmd db_size workers depth =
  if db_size < 8 then die "--db-size must be at least 8";
  let config =
    mk_config workers 0 depth 512 Record_enc.Blake2s Cost_model.zero false 42
  in
  let t = load_system config db_size in
  ignore (Fastver.get t 7L);
  ignore (Fastver.verify t);
  Logs.app (fun m -> m "tampering with record 7 in the untrusted store…");
  Fastver.Testing.corrupt_store t 7L (Some "EVIL!!");
  (try
     let v = Fastver.get t 7L in
     Logs.app (fun m ->
         m "forged read returned %a — provisional only; verifying…"
           Fmt.(option ~none:(any "null") string) v);
     ignore (Fastver.verify t);
     Logs.err (fun m -> m "BUG: tampering not detected")
   with Fastver.Integrity_violation reason ->
     Logs.app (fun m -> m "DETECTED: %s" reason))

(* ------------------------------------------------------------------ *)
(* serve / client-bench: the network layer                             *)
(* ------------------------------------------------------------------ *)

module Net = Fastver_net

let parse_addr s =
  match Net.Addr.parse s with Ok a -> a | Error e -> die "%s" e

let serve_cmd listen db_size workers shards batch depth cache algo
    enclave_model no_auth seed batch_limit ckpt_dir background_verify
    metrics_interval cold_dir cold_threshold repl_listen repl_peers adaptive =
  if db_size < 1 then die "--db-size must be at least 1";
  if workers < 1 then die "--workers must be at least 1";
  if shards < 0 then die "--shards must be non-negative";
  if cold_threshold < 1 then die "--cold-threshold must be at least 1";
  let addr = parse_addr listen in
  let config =
    {
      (mk_config workers batch depth cache algo enclave_model no_auth seed)
      with
      n_shards = shards;
      background_verify;
      cold_dir;
      cold_threshold;
      adaptive;
    }
  in
  let t =
    match ckpt_dir with
    | None -> load_system config db_size
    | Some dir -> (
        (* Durable serving: resume from the newest committed checkpoint
           generation if there is one, or load fresh when the directory
           holds no checkpoint at all; either way, checkpoint after every
           verification scan from here on. Any other recovery error —
           tampering, corruption, a legacy layout — is fatal: serving fresh
           with auto-checkpointing into the same directory would prune the
           old generations a couple of scans later, converting a transient
           or adversarial recovery failure into permanent data loss. *)
        match Fastver.recover ~config ~dir () with
        | Ok t ->
            Logs.app (fun m ->
                m "recovered from checkpoint in %s (verified epoch %d)" dir
                  (Fastver.current_epoch t));
            t
        | Error e when e = Fastver.err_no_checkpoint ->
            Logs.app (fun m -> m "no checkpoint in %s; loading fresh" dir);
            load_system config db_size
        | Error e ->
            die
              "cannot recover from %s: %s — refusing to serve fresh over an \
               existing checkpoint directory (point --checkpoint-dir \
               elsewhere to start over)"
              dir e)
  in
  Option.iter (fun dir -> Fastver.set_auto_checkpoint t ~dir) ckpt_dir;
  (* The replication tee must be installed before the store serves traffic:
     ops admitted earlier would be missing from the retained stream. *)
  let primary =
    match repl_listen with
    | None -> None
    | Some s -> (
        let raddr = parse_addr s in
        let rcfg =
          { Fastver_replica.Primary.default_config with checkpoint_dir = ckpt_dir }
        in
        match Fastver_replica.Primary.create ~config:rcfg t ~listen:raddr with
        | Error e -> die "replication listener: %s" e
        | Ok p ->
            Fastver_replica.Primary.start p;
            Logs.app (fun m ->
                m "replicating on %a" Net.Addr.pp
                  (Fastver_replica.Primary.bound_addr p));
            Some p)
  in
  let peer_addrs = List.map parse_addr repl_peers in
  if peer_addrs <> [] && primary = None then
    die "--repl-peer requires --replication-listen";
  let scfg = { Net.Server.default_config with batch_limit } in
  match Net.Server.create ~config:scfg t ~listen:addr with
  | Error e -> die "%s" e
  | Ok srv ->
      let stopping = Atomic.make false in
      let on_signal _ = Atomic.set stopping true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Logs.app (fun m ->
          m "serving on %a (auth %s) — Ctrl-C to stop" Net.Addr.pp
            (Net.Server.bound_addr srv)
            (if no_auth then "off" else "on"));
      Net.Server.start srv;
      (* Rejoin fencing: while serving as primary, probe peer replication
         listeners. A peer that proves it is primary for a higher fencing
         term — or deposition evidence recorded at subscribe time — means
         an election happened while this process was down: demote in place
         and re-join as a follower of the new primary, catching up via the
         checkpoint-fetch path. Terms are in-memory, so a restarted deposed
         primary is at term 0 — the lowest possible — and can never win a
         probe exchange it should lose. *)
      let demoted = ref None in
      let find_new_primary p ~min_term =
        List.find_map
          (fun peer ->
            match
              Fastver_replica.Primary.announce ~timeout:0.5 peer
                ~term:(Fastver_replica.Primary.term p)
                ~sealed:(Fastver.verified_epoch t)
                ~priority:(Fastver_replica.Primary.priority p)
                ~run_id:(Fastver_replica.Primary.run_id p)
            with
            | `Info i
              when i.Fastver_replica.Primary.p_primary
                   && i.Fastver_replica.Primary.p_term >= min_term
                   && i.Fastver_replica.Primary.p_term
                      > Fastver_replica.Primary.term p ->
                Some (i.Fastver_replica.Primary.p_term, peer)
            | `Info _ | `Unreachable _ -> None)
          peer_addrs
      in
      let demote_to p ~term ~target =
        Logs.app (fun m ->
            m
              "deposed at fencing term %d: demoting to follower of %a \
               (re-bootstrapping via checkpoint fetch)"
              term Net.Addr.pp target);
        Net.Server.stop srv;
        Fastver_replica.Primary.stop p;
        let fdir = Filename.temp_file "fastver" "-demoted" in
        Sys.remove fdir;
        let load sys =
          Fastver.load sys
            (Array.init db_size (fun i ->
                 ( Int64.of_int i,
                   Fastver_workload.Ycsb.initial_value (Int64.of_int i) )))
        in
        match
          Fastver_replica.Follower.create ~config ~load ~primary:target
            ~listen:addr ~dir:fdir ()
        with
        | Error e -> die "demotion failed: %s" e
        | Ok f ->
            Fastver_replica.Follower.start f;
            Logs.app (fun m ->
                m "demoted: serving verified reads on %a as a follower of %a"
                  Net.Addr.pp addr Net.Addr.pp target);
            demoted := Some f
      in
      let last_dump = ref (Unix.gettimeofday ()) in
      let last_probe = ref 0.0 in
      while not (Atomic.get stopping) do
        (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        (match (primary, !demoted) with
        | Some p, None when Unix.gettimeofday () -. !last_probe >= 0.5 ->
            last_probe := Unix.gettimeofday ();
            (match Fastver_replica.Primary.deposed p with
            | Some (term, Some addr_s) -> (
                match Net.Addr.parse addr_s with
                | Ok target -> demote_to p ~term ~target
                | Error _ -> (
                    match find_new_primary p ~min_term:term with
                    | Some (term, target) -> demote_to p ~term ~target
                    | None -> ()))
            | Some (term, None) -> (
                match find_new_primary p ~min_term:term with
                | Some (term, target) -> demote_to p ~term ~target
                | None -> ())
            | None when peer_addrs <> [] -> (
                match find_new_primary p ~min_term:0 with
                | Some (term, target) -> demote_to p ~term ~target
                | None -> ())
            | None -> ())
        | _ -> ());
        match metrics_interval with
        | Some secs when Unix.gettimeofday () -. !last_dump >= secs ->
            last_dump := Unix.gettimeofday ();
            Logs.app (fun m ->
                m "metrics %s"
                  (Fastver_obs.Registry.to_json (Fastver.registry t)))
        | _ -> ()
      done;
      match !demoted with
      | Some f ->
          Fastver_replica.Follower.stop f;
          Logs.app (fun m ->
              m "demoted follower stopped: %d ops applied over %d verified \
                 epochs"
                (Fastver_replica.Follower.applied_ops f)
                (Fastver_replica.Follower.verified_epoch f + 1))
      | None ->
          Net.Server.stop srv;
          Option.iter Fastver_replica.Primary.stop primary;
          let c = Net.Server.counters srv in
          let s = Fastver.stats t in
          Logs.app (fun m ->
              m
                "served %d requests on %d connections in %d drains (largest \
                 %d); %d protocol errors, %d failed ops; store at %d ops, \
                 epoch %d"
                c.served c.accepted c.batches c.max_batch c.proto_errors
                c.op_failures s.ops (Fastver.current_epoch t))

let recover_cmd dir workers batch depth cache algo enclave_model no_auth seed
    cold_dir cold_threshold =
  let config =
    {
      (mk_config workers batch depth cache algo enclave_model no_auth seed)
      with cold_dir; cold_threshold;
    }
  in
  match Fastver.recover ~config ~dir () with
  | Error e -> die "recover: %s" e
  | Ok t -> (
      let epoch = Fastver.current_epoch t in
      match Fastver.verify t with
      | exception Fastver.Integrity_violation reason ->
          die "recovered state failed verification: %s" reason
      | cert ->
          if not (Fastver.check_epoch_certificate t ~epoch cert) then
            die "recovered state failed certificate check";
          Logs.app (fun m ->
              m "recovered from %s: epoch %d verified, certificate OK" dir
                epoch))

(* ------------------------------------------------------------------ *)
(* follow: replication follower serving verified reads                 *)
(* ------------------------------------------------------------------ *)

let follow_cmd primary listen db_size workers shards depth cache algo
    enclave_model no_auth seed dir electable peers priority =
  if db_size < 1 then die "--db-size must be at least 1";
  if workers < 1 then die "--workers must be at least 1";
  let primary_addr = parse_addr primary in
  let listen_addr = Option.map parse_addr listen in
  if electable = None && (peers <> [] || priority <> 0) then
    die "--peer/--priority require --electable";
  let election =
    Option.map
      (fun s ->
        Fastver_replica.Follower.electable
          ~peers:(List.map parse_addr peers)
          ~priority ~checkpoint_dir:dir (parse_addr s))
      electable
  in
  let config =
    { (mk_config workers 0 depth cache algo enclave_model no_auth seed)
      with n_shards = shards }
  in
  (* Bulk loads are trusted and out-of-band (not streamed); a fresh follower
     installs the same initial database the primary's [load_system] did. *)
  let load sys =
    Logs.app (fun m -> m "fresh follower: loading %d records…" db_size);
    Fastver.load sys
      (Array.init db_size (fun i ->
           (Int64.of_int i, Fastver_workload.Ycsb.initial_value (Int64.of_int i))))
  in
  match
    Fastver_replica.Follower.create ~config ~load ?election
      ~primary:primary_addr ?listen:listen_addr ~dir ()
  with
  | Error e -> die "follow: %s" e
  | Ok f ->
      let t = Fastver_replica.Follower.system f in
      (match Fastver_replica.Follower.server f with
      | Some srv ->
          Logs.app (fun m ->
              m "follower serving reads on %a (primary %a)" Net.Addr.pp
                (Net.Server.bound_addr srv) Net.Addr.pp primary_addr)
      | None ->
          Logs.app (fun m ->
              m "follower tailing %a (no read listener)" Net.Addr.pp
                primary_addr));
      (match election with
      | Some e ->
          Logs.app (fun m ->
              m "electable candidate on %a (priority %d, %d peers)"
                Net.Addr.pp e.Fastver_replica.Follower.listen priority
                (List.length peers))
      | None -> ());
      Fastver_replica.Follower.start f;
      let stopping = Atomic.make false in
      let on_signal _ = Atomic.set stopping true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      while
        (not (Atomic.get stopping))
        && Fastver_replica.Follower.state f <> Fastver_replica.Follower.Halted
      do
        try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      (match Fastver_replica.Follower.failure f with
      | Some (epoch, reason) ->
          Logs.err (fun m ->
              m "INTEGRITY VIOLATION at epoch %d: %s — follower halted; \
                 already-verified state still serves"
                epoch reason);
          (* keep serving verified state until told to stop *)
          while not (Atomic.get stopping) do
            try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
          done
      | None -> ());
      Fastver_replica.Follower.stop f;
      let s = Fastver.stats t in
      Logs.app (fun m ->
          m "follower stopped: %d ops applied over %d verified epochs; served \
             %d gets locally"
            (Fastver_replica.Follower.applied_ops f)
            (Fastver_replica.Follower.verified_epoch f + 1)
            s.gets);
      if Fastver_replica.Follower.failure f <> None then exit 3

(* ------------------------------------------------------------------ *)
(* stats: fetch and reconcile a live metrics snapshot                  *)
(* ------------------------------------------------------------------ *)

(* The registry's JSON renderer emits a fixed field order
   ("name","labels",…) with label keys sorted, so an exact-prefix substring
   search extracts any value deterministically — no JSON parser needed. *)
let find_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    if i + n > h then None
    else if String.sub hay i n = needle then Some (i + n)
    else go (i + 1)
  in
  go 0

let num_after s i =
  let j = ref i in
  while
    !j < String.length s
    &&
    match s.[!j] with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  do
    incr j
  done;
  float_of_string_opt (String.sub s i (!j - i))

let counter_of json ?(labels = "{}") name =
  match
    find_sub json
      (Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,\"value\":" name labels)
  with
  | None -> None
  | Some i -> num_after json i

(* A histogram object holds no nested braces after its (empty) labels, so
   the first '}' past the prefix closes it. *)
let hist_of json name field =
  match find_sub json (Printf.sprintf "{\"name\":\"%s\",\"labels\":{}," name) with
  | None -> None
  | Some i -> (
      match String.index_from_opt json i '}' with
      | None -> None
      | Some fin -> (
          let seg = String.sub json i (fin - i) in
          match find_sub seg (Printf.sprintf "\"%s\":" field) with
          | None -> None
          | Some j -> num_after seg j))

let stats_cmd connect format check =
  let addr = parse_addr connect in
  match Net.Client.connect addr with
  | Error e -> die "%s" e
  | Ok conn ->
      let json = Net.Client.metrics conn ~format:Net.Wire.Json in
      (match format with
      | `Json -> print_endline json
      | `Prometheus ->
          print_string (Net.Client.metrics conn ~format:Net.Wire.Prometheus)
      | `Table ->
          let row name v = Printf.printf "%-36s %s\n" name v in
          let c ?labels disp name =
            row disp
              (match counter_of json ?labels name with
              | Some v -> Printf.sprintf "%.0f" v
              | None -> "-")
          in
          let tier tier =
            c
              ~labels:(Printf.sprintf "{\"tier\":\"%s\"}" tier)
              (Printf.sprintf "ops (%s tier)" tier)
              "fastver_ops_total"
          in
          tier "blum";
          tier "merkle";
          tier "cached";
          List.iter
            (fun (disp, name) -> c disp name)
            [
              ("gets", "fastver_gets_total");
              ("puts", "fastver_puts_total");
              ("scans", "fastver_scans_total");
              ("verification scans", "fastver_verifies_total");
              ("cas retries", "fastver_cas_retries_total");
              ("epoch", "fastver_epoch");
              ("verified epoch", "fastver_verified_epoch");
              ("epoch certificates", "fastver_epoch_certificates_total");
              ("store records", "fastver_store_records");
              ("store reads", "fastver_store_reads_total");
              ("store writes", "fastver_store_writes_total");
              ("store spill reads", "fastver_store_spill_reads_total");
              ("cold segments", "fastver_cold_segments");
              ("cold live bytes", "fastver_cold_live_bytes");
              ("cold dead bytes", "fastver_cold_dead_bytes");
              ("cold reads", "fastver_cold_reads_total");
              ("cold writes", "fastver_cold_writes_total");
              ("cold gc rewrites", "fastver_cold_gc_rewrites_total");
              ("cold scrub failures", "fastver_cold_scrub_failures_total");
              ("net connections", "fastver_net_connections_total");
              ("net requests", "fastver_net_requests_total");
              ("net batches", "fastver_net_batches_total");
              ("net protocol errors", "fastver_net_proto_errors_total");
              ("net op failures", "fastver_net_op_failures_total");
              ("adaptive retunes", "fastver_adaptive_retunes_total");
              ("adaptive promotions", "fastver_adaptive_promotions_total");
              ("adaptive demotions", "fastver_adaptive_demotions_total");
              ("adaptive cache bytes", "fastver_adaptive_cache_bytes");
              ("repl frames streamed", "fastver_repl_frames_total");
            ];
          let lat field disp =
            row disp
              (match hist_of json "fastver_request_seconds" field with
              | Some v -> Printf.sprintf "%.6fs" v
              | None -> "-")
          in
          lat "p50" "request latency p50";
          lat "p99" "request latency p99";
          lat "max" "request latency max");
      Net.Client.close conn;
      if check then begin
        (* Reconcile the snapshot against itself: the per-tier attribution
           must account for every validated elementary op, and every served
           request must have left a latency sample. *)
        let geti ?labels name =
          match counter_of json ?labels name with
          | Some v -> int_of_float v
          | None -> die "stats --check: metric %s missing from snapshot" name
        in
        let t l = geti ~labels:(Printf.sprintf "{\"tier\":\"%s\"}" l)
            "fastver_ops_total" in
        let by_tier = t "blum" + t "merkle" + t "cached" in
        let data_ops = geti "fastver_gets_total" + geti "fastver_puts_total" in
        let served = geti "fastver_net_requests_total" in
        let sampled =
          match hist_of json "fastver_request_seconds" "count" with
          | Some v -> int_of_float v
          | None -> die "stats --check: fastver_request_seconds missing"
        in
        if served <= 0 then die "stats --check: no requests served yet";
        if by_tier <> data_ops then
          die "stats --check: tier attribution %d <> %d validated ops" by_tier
            data_ops;
        if sampled <> served then
          die "stats --check: %d latency samples <> %d served requests" sampled
            served;
        Logs.app (fun m ->
            m "checks OK: %d ops attributed across tiers, %d requests sampled"
              by_tier served)
      end

let client_bench_cmd connect clients window ops db_size put_ratio secret
    no_verify seed first_client =
  if clients < 1 then die "--clients must be at least 1";
  if window < 1 then die "--window must be at least 1";
  if put_ratio < 0.0 || put_ratio > 1.0 then die "--put-ratio must be in [0, 1]";
  if first_client < 1 then die "--first-client must be at least 1";
  let addr = parse_addr connect in
  let r =
    Net.Net_bench.run ~addr ~clients ~window ~ops ~db_size ~put_ratio
      ~verify:(not no_verify) ~secret ~seed ~first_client ()
  in
  Logs.app (fun m -> m "%a" Net.Net_bench.pp_result r);
  let open Net.Net_bench in
  if r.integrity_failures > 0 then die "integrity failures detected";
  if r.errors > 0 then die "client errors occurred"

(* ------------------------------------------------------------------ *)
(* scale: measured + modelled multi-worker scalability                 *)
(* ------------------------------------------------------------------ *)

let scale_cmd db_size ops depth =
  (* measured: real Domain.spawn workers running the YCSB mix wall-clock,
     including the domain-parallel verification scans (only on machines
     with more than one core — a single-core sweep just measures domain
     context-switching) *)
  let cores = Domain.recommended_domain_count () in
  if cores > 1 then begin
    Logs.app (fun m -> m "measured (%d cores recommended):" cores);
    Logs.app (fun m -> m "workers  throughput            speedup  max-scan-slice");
    let base = ref 0.0 in
    List.iter
      (fun w ->
        let config =
          {
            (mk_config w 16384 depth 512 Record_enc.Blake2s Cost_model.zero
               true 42)
            with log_buffer_size = 4096;
          }
        in
        let t = load_system config db_size in
        let per_worker = ops / w in
        let t0 = Unix.gettimeofday () in
        Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
          ~db_size ~ops_per_worker:per_worker;
        ignore (Fastver.verify t);
        let wall = Unix.gettimeofday () -. t0 in
        let throughput = float_of_int (per_worker * w) /. wall in
        if w = 1 then base := throughput;
        let slice =
          Array.fold_left max 0.0 (Fastver.stats t).worker_busy_s
        in
        Logs.app (fun m ->
            m "%7d  %12.0f ops/s  %8.2fx  %11.3fs" w throughput
              (throughput /. !base) slice))
      (List.filter (fun w -> w = 1 || w <= cores) [ 1; 2; 4; 8 ])
  end
  else
    Logs.app (fun m ->
        m "single core recommended: skipping the measured sweep");
  Logs.app (fun m -> m "modelled:");
  Logs.app (fun m -> m "workers  modelled-throughput  verify-latency");
  List.iter
    (fun w ->
      let config =
        {
          (mk_config w 65536 depth 512 Record_enc.Blake2s Cost_model.zero true 42)
          with log_buffer_size = 4096;
        }
      in
      let r =
        Fastver_simthreads.Simthreads.run_hybrid ~config ~db_size ~ops
          ~spec:Fastver_workload.Ycsb.workload_a ()
      in
      Logs.app (fun m ->
          m "%7d  %12.0f ops/s  %11.3fs" w r.throughput r.verify_latency_s))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)

let setup_logs =
  (fun () ->
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Warning))
  $$ Term.const ()

let run_term =
  Term.(
    const (fun () -> run_cmd)
    $ setup_logs $ db_size $ ops $ workers $ shards $ batch $ depth $ cache
    $ workload $ theta $ algo $ enclave_model $ no_auth $ parallel $ seed)

let attack_term =
  Term.(const (fun () -> attack_cmd) $ setup_logs $ db_size $ workers $ depth)

let listen =
  Arg.(value & opt string "tcp:127.0.0.1:4433" & info [ "listen" ]
         ~docv:"ADDR" ~doc:"Address to serve on: tcp:HOST:PORT or unix:PATH.")

let connect =
  Arg.(value & opt string "tcp:127.0.0.1:4433" & info [ "connect" ]
         ~docv:"ADDR" ~doc:"Server address: tcp:HOST:PORT or unix:PATH.")

let batch_limit =
  Arg.(value & opt int Fastver_net.Server.default_config.batch_limit
       & info [ "batch-limit" ] ~docv:"N"
           ~doc:"Max requests drained through the worker loop per batch.")

let clients =
  Arg.(value & opt int 4 & info [ "clients" ] ~docv:"C"
         ~doc:"Concurrent client sessions.")

let window =
  Arg.(value & opt int 32 & info [ "window" ] ~docv:"W"
         ~doc:"Pipelined requests kept in flight per client.")

let put_ratio =
  Arg.(value & opt float 0.5 & info [ "put-ratio" ] ~docv:"R"
         ~doc:"Fraction of operations that are puts.")

let secret =
  Arg.(value & opt string Fastver.Config.default.mac_secret
       & info [ "secret" ] ~docv:"S"
           ~doc:"Shared MAC secret (must match the server's).")

let no_verify =
  Arg.(value & flag & info [ "no-verify" ]
         ~doc:"Skip client-side signature checks (for --no-auth servers).")

let ckpt_dir =
  Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR"
         ~doc:"Recover from (and auto-checkpoint to) crash-safe checkpoint \
               generations under this directory.")

let cold_dir =
  Arg.(value & opt (some string) None & info [ "cold-dir" ] ~docv:"DIR"
         ~doc:"Enable the authenticated cold tier: records beyond the \
               in-memory budget are demoted to log-structured segments \
               under DIR after each verification scan, and read back with \
               their MACs checked.")

let cold_threshold =
  Arg.(value & opt int Fastver.Config.default.cold_threshold
       & info [ "cold-threshold" ] ~docv:"N"
           ~doc:"In-memory record budget when --cold-dir is set: log \
                 entries older than the newest N stay on disk.")

let recover_dir =
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
         ~doc:"Checkpoint directory to recover from.")

let background_verify =
  Arg.(value & flag & info [ "background-verify" ]
         ~doc:"Run verification scans on a background domain: Verify (and \
               auto-triggered scans) seal the epoch boundary under a brief \
               barrier and keep serving into the next epoch while the scan \
               runs, instead of quiescing the executor pool.")

let repl_listen =
  Arg.(value & opt (some string) None & info [ "replication-listen" ]
         ~docv:"ADDR"
         ~doc:"Also serve the replication stream (op records + epoch \
               certificates) to followers on this address.")

let adaptive_flag =
  Arg.(value & flag & info [ "adaptive" ]
         ~doc:"Enable the adaptive verification hierarchy: at every epoch \
               boundary a controller retunes the hot/cold tier split, \
               per-shard verifier cache capacities, and the Merkle frontier \
               depth from live observability data. Certificates are \
               bit-identical to a static run over the same operations.")

let follow_primary =
  Arg.(required & opt (some string) None & info [ "primary" ] ~docv:"ADDR"
         ~doc:"The primary's replication listener (its \
               --replication-listen address).")

let follow_listen =
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR"
         ~doc:"Serve read-only verified reads on this address (clients check \
               receipt MACs exactly as against the primary).")

let follow_dir =
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
         ~doc:"Follower state directory: checkpoint generations fetched \
               from the primary during catch-up land here.")

let follow_electable =
  Arg.(value & opt (some string) None & info [ "electable" ] ~docv:"ADDR"
         ~doc:"Stand for election. Binds ADDR as this candidate's \
               replication listener from the start (answering term probes); \
               when the primary stays unreachable, the candidate holding \
               the highest chain-verified sealed epoch (ties broken by \
               --priority, then run id) promotes in place — it starts \
               serving writes, and the replication stream on ADDR, under a \
               new fencing term.")

let follow_peers =
  Arg.(value & opt_all string [] & info [ "peer" ] ~docv:"ADDR"
         ~doc:"Another candidate's --electable address (repeatable). \
               Election rounds probe every peer; unreachable peers do not \
               vote.")

let follow_priority =
  Arg.(value & opt int 0 & info [ "priority" ] ~docv:"N"
         ~doc:"Static election priority: breaks equal-sealed-epoch ties, \
               higher wins (default 0).")

let repl_peers =
  Arg.(value & opt_all string [] & info [ "repl-peer" ] ~docv:"ADDR"
         ~doc:"A peer replication listener to probe while serving \
               (repeatable). If a peer proves it is primary for a higher \
               fencing term — an election happened while this process was \
               down — the server demotes in place: it stops accepting \
               writes and re-joins as a read-only follower of the new \
               primary, catching up through the checkpoint-fetch path.")

let metrics_interval =
  Arg.(value & opt (some float) None & info [ "metrics-interval" ]
         ~docv:"SECS"
         ~doc:"Dump the metric registry as one JSON line (via the log) every \
               SECS seconds while serving.")

let serve_term =
  Term.(
    const (fun () -> serve_cmd)
    $ setup_logs $ listen $ db_size $ workers $ shards $ batch $ depth $ cache
    $ algo $ enclave_model $ no_auth $ seed $ batch_limit $ ckpt_dir
    $ background_verify $ metrics_interval $ cold_dir $ cold_threshold
    $ repl_listen $ repl_peers $ adaptive_flag)

let follow_term =
  Term.(
    const (fun () -> follow_cmd)
    $ setup_logs $ follow_primary $ follow_listen $ db_size $ workers $ shards
    $ depth $ cache $ algo $ enclave_model $ no_auth $ seed $ follow_dir
    $ follow_electable $ follow_peers $ follow_priority)

let stats_format =
  let f =
    Arg.enum [ ("table", `Table); ("json", `Json); ("prometheus", `Prometheus) ]
  in
  Arg.(value & opt f `Table & info [ "format" ] ~docv:"table|json|prometheus"
         ~doc:"Output format: a human-readable table, the raw JSON snapshot, \
               or Prometheus text exposition.")

let stats_check =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Reconcile the snapshot against itself: per-tier op counts \
               must sum to validated ops, and the request-latency histogram \
               must hold one sample per served request. Exits non-zero on \
               any mismatch.")

let stats_term =
  Term.(
    const (fun () -> stats_cmd) $ setup_logs $ connect $ stats_format
    $ stats_check)

let recover_term =
  Term.(
    const (fun () -> recover_cmd)
    $ setup_logs $ recover_dir $ workers $ batch $ depth $ cache $ algo
    $ enclave_model $ no_auth $ seed $ cold_dir $ cold_threshold)

let client_bench_ops =
  Arg.(value & opt int 100_000 & info [ "ops" ] ~docv:"OPS"
         ~doc:"Total operations across all clients.")

let client_bench_first_client =
  Arg.(value & opt int 1 & info [ "first-client" ] ~docv:"ID"
         ~doc:"Client id of the first bench session; ids count up from \
               here. A server that recovered from a checkpoint remembers \
               each client's put nonces, so benching it again with the \
               same ids is (correctly) rejected as replay — pass a fresh \
               range instead.")

let client_bench_term =
  Term.(
    const (fun () -> client_bench_cmd)
    $ setup_logs $ connect $ clients $ window $ client_bench_ops $ db_size
    $ put_ratio $ secret $ no_verify $ seed $ client_bench_first_client)

let scale_term =
  Term.(const (fun () -> scale_cmd) $ setup_logs $ db_size $ ops $ depth)

(* ------------------------------------------------------------------ *)
(* bench diff: regression gate over archived benchmark runs            *)
(* ------------------------------------------------------------------ *)

(* The bench harness archives every run as
   bench/results/<figure>-<timestamp>.json (git rev + scale + the figure's
   rows, no nested snapshots). `bench diff` compares the newest archive of
   each figure against the previous one: per metric, the mean over the
   figure's rows, with a per-figure tolerance. Config keys (db, batch,
   workers…) carry no direction and are ignored; only keys matching the
   direction table below are compared. *)

(* Higher-is-better checked first: "ops_per_s" would otherwise match the
   lower-is-better "_s" suffix family. *)
let metric_direction key =
  let has needle = find_sub key needle <> None in
  if has "ops_per_s" || has "throughput" || has "speedup" then Some `Higher
  else if
    has "latency" || has "bytes_per_msg" || has "ns_per_op" || has "pause"
    || has "lat_p" || has "lat_max" || has "p50" || has "p99" || has "mean_ms"
  then Some `Lower
  else None

(* One archived row per line; pull every "key": <number> pair off it. *)
let kv_pairs line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    (match String.index_from_opt line !i '"' with
    | None -> i := n
    | Some q0 -> (
        match String.index_from_opt line (q0 + 1) '"' with
        | None -> i := n
        | Some q1 ->
            let key = String.sub line (q0 + 1) (q1 - q0 - 1) in
            let j = ref (q1 + 1) in
            while !j < n && (line.[!j] = ':' || line.[!j] = ' ') do incr j done;
            (if !j < n && line.[q1 + 1] = ':' then
               match num_after line !j with
               | Some v -> out := (key, v) :: !out
               | None -> ());
            i := q1 + 1))
  done;
  List.rev !out

let default_threshold fig =
  if fig = "wirealloc" then 0.10
  else if fig = "scale" then 0.35
  else if fig = "coldtier" then 0.35 (* disk-bound rows jitter more than CPU *)
  else if fig = "vpause" then 0.50 (* sub-ms pauses: scheduler noise dominates *)
  else 0.30

(* Mean of each direction-carrying metric over a figure archive's rows. *)
let archive_metrics path =
  let ic = open_in path in
  let tbl = Hashtbl.create 8 in
  (try
     while true do
       let line = input_line ic in
       if find_sub (String.trim line) "{\"" = Some 2 then
         List.iter
           (fun (key, v) ->
             if metric_direction key <> None then
               let sum, count =
                 Option.value ~default:(0.0, 0) (Hashtbl.find_opt tbl key)
               in
               Hashtbl.replace tbl key (sum +. v, count + 1))
           (kv_pairs line)
     done
   with End_of_file -> close_in ic);
  Hashtbl.fold (fun k (sum, n) acc -> (k, sum /. float_of_int n) :: acc) tbl []

(* Archive names are <figure>-<YYYYMMDDTHHMMSSZ>[-<n>].json, where the
   optional -<n> disambiguates several runs within one second. Parse out
   (figure, stamp, n) so grouping survives dashes in figure names and the
   newest-run ordering survives same-second collisions ("-1" sorts before
   ".json" bytewise, so a plain filename sort would invert them). *)
let parse_archive f =
  if not (Filename.check_suffix f ".json") then None
  else
    let base = Filename.chop_suffix f ".json" in
    let n = String.length base in
    let is_digit c = '0' <= c && c <= '9' in
    let stamp_at i =
      i + 16 <= n
      && base.[i + 8] = 'T'
      && base.[i + 15] = 'Z'
      &&
      let ok = ref true in
      for j = 0 to 15 do
        if j <> 8 && j <> 15 && not (is_digit base.[i + j]) then ok := false
      done;
      !ok
    in
    let rec scan i =
      if i >= n then None
      else if base.[i] = '-' && stamp_at (i + 1) then
        let fig = String.sub base 0 i in
        let stamp = String.sub base (i + 1) 16 in
        let rest = String.sub base (i + 17) (n - i - 17) in
        let seq =
          if rest = "" then Some 0
          else if String.length rest > 1 && rest.[0] = '-' then
            int_of_string_opt (String.sub rest 1 (String.length rest - 1))
          else None
        in
        match seq with Some s when fig <> "" -> Some (fig, stamp, s) | _ -> None
      else scan (i + 1)
    in
    scan 0

(* --ci: instead of a fixed tolerance against the single previous run,
   derive each metric's band from the spread of up to [ci_window] prior
   archives — two run-to-run standard deviations around their mean, floored
   at --threshold (or 5%). A metric seen in fewer than two prior runs falls
   back to the fixed-tolerance comparison. *)
let ci_window = 8

let mean_sd vals =
  let k = float_of_int (List.length vals) in
  let mean = List.fold_left ( +. ) 0.0 vals /. k in
  let var =
    List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 vals
    /. Float.max 1.0 (k -. 1.0)
  in
  (mean, sqrt var)

let bench_diff_cmd results_dir figures threshold ci =
  if not (Sys.file_exists results_dir && Sys.is_directory results_dir) then
    die "no archived benchmark runs in %s — run the bench harness first"
      results_dir;
  (* group the timestamped archives by figure (latest.json copies carry no
     stamp and are excluded by the parse) *)
  let archives = Hashtbl.create 8 in
  Array.iter
    (fun f ->
      match parse_archive f with
      | Some (fig, stamp, seq) ->
          Hashtbl.replace archives fig
            ((stamp, seq, f)
            :: Option.value ~default:[] (Hashtbl.find_opt archives fig))
      | None -> ())
    (Sys.readdir results_dir);
  let selected =
    match figures with
    | [] -> List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) archives [])
    | l -> l
  in
  let regressions = ref 0 in
  List.iter
    (fun fig ->
      match Hashtbl.find_opt archives fig with
      | None -> Printf.printf "%-12s no archived runs\n" fig
      | Some files when List.length files < 2 ->
          Printf.printf "%-12s only one archived run — nothing to compare\n" fig
      | Some files -> (
          (* order by (stamp, same-second sequence number), newest first *)
          match
            List.rev (List.sort compare files) |> List.map (fun (_, _, f) -> f)
          with
          | newest :: (prev :: _ as priors) ->
              let tol =
                match threshold with
                | Some t -> t
                | None -> default_threshold fig
              in
              let base = archive_metrics (Filename.concat results_dir prev) in
              let cur = archive_metrics (Filename.concat results_dir newest) in
              let samples =
                if ci then
                  List.filteri (fun i _ -> i < ci_window) priors
                  |> List.map (fun f ->
                         archive_metrics (Filename.concat results_dir f))
                else []
              in
              let ci_floor = Option.value ~default:0.05 threshold in
              if ci then
                Printf.printf
                  "%-12s %s vs mean of %d prior run(s) (ci: ±2 sd, floor \
                   %.0f%%)\n"
                  fig newest (List.length samples) (100.0 *. ci_floor)
              else
                Printf.printf "%-12s %s vs %s (tolerance %.0f%%)\n" fig newest
                  prev (100.0 *. tol);
              List.iter
                (fun (key, v) ->
                  let band =
                    (* (baseline, tolerance, annotation) for this metric *)
                    match List.filter_map (List.assoc_opt key) samples with
                    | _ :: _ :: _ as vals ->
                        let mean, sd = mean_sd vals in
                        if mean = 0.0 then None
                        else
                          let tol =
                            Float.max ci_floor (2.0 *. (sd /. Float.abs mean))
                          in
                          Some
                            ( mean,
                              tol,
                              Printf.sprintf "  (±%.1f%% over %d runs)"
                                (100.0 *. tol) (List.length vals) )
                    | _ -> (
                        match List.assoc_opt key base with
                        | Some b when b <> 0.0 -> Some (b, tol, "")
                        | _ -> None)
                  in
                  match (band, metric_direction key) with
                  | Some (b, tol, note), Some dir ->
                      let ratio = v /. b in
                      let regressed =
                        match dir with
                        | `Higher -> ratio < 1.0 -. tol
                        | `Lower -> ratio > 1.0 +. tol
                      in
                      if regressed then incr regressions;
                      Printf.printf "  %-28s %12.4g -> %12.4g  %+6.1f%%%s%s\n"
                        key b v
                        (100.0 *. (ratio -. 1.0))
                        note
                        (if regressed then "  REGRESSION" else "")
                  | _ -> ())
                (List.sort compare cur)
          | _ -> ()))
    selected;
  if !regressions > 0 then
    die "%d metric(s) regressed beyond tolerance" !regressions
  else Logs.app (fun m -> m "no regressions beyond tolerance")

(* ------------------------------------------------------------------ *)
(* bench history: a figure's performance trajectory over archived runs *)
(* ------------------------------------------------------------------ *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Archive headers render as ["key": "value"] — pull the string value. *)
let string_field json key =
  match find_sub json (Printf.sprintf "\"%s\": \"" key) with
  | None -> None
  | Some i -> (
      match String.index_from_opt json i '"' with
      | None -> None
      | Some j -> Some (String.sub json i (j - i)))

let bench_history_cmd results_dir fig last as_json =
  if not (Sys.file_exists results_dir && Sys.is_directory results_dir) then
    die "no archived benchmark runs in %s — run the bench harness first"
      results_dir;
  let runs =
    Sys.readdir results_dir |> Array.to_list
    |> List.filter_map (fun f ->
           match parse_archive f with
           | Some (g, stamp, seq) when g = fig -> Some (stamp, seq, f)
           | _ -> None)
    |> List.sort compare
  in
  let runs =
    let n = List.length runs in
    if last > 0 && n > last then List.filteri (fun i _ -> i >= n - last) runs
    else runs
  in
  if runs = [] then die "no archived runs for figure %s in %s" fig results_dir;
  let entries =
    List.map
      (fun (stamp, _, f) ->
        let path = Filename.concat results_dir f in
        let header = read_all path in
        ( stamp,
          Option.value ~default:"unknown" (string_field header "git_rev"),
          Option.value ~default:"?" (string_field header "scale"),
          List.sort compare (archive_metrics path) ))
      runs
  in
  if as_json then begin
    let n = List.length entries in
    print_string "[\n";
    List.iteri
      (fun i (stamp, rev, scale, metrics) ->
        Printf.printf
          "  {\"stamp\": \"%s\", \"git_rev\": \"%s\", \"scale\": \"%s\", \
           \"metrics\": {"
          stamp rev scale;
        List.iteri
          (fun j (k, v) ->
            Printf.printf "%s\"%s\": %.6g" (if j = 0 then "" else ", ") k v)
          metrics;
        Printf.printf "}}%s\n" (if i = n - 1 then "" else ","))
      entries;
    print_string "]\n"
  end
  else begin
    Printf.printf "%s: %d archived run(s), oldest first\n" fig
      (List.length entries);
    let prev = ref [] in
    List.iter
      (fun (stamp, rev, scale, metrics) ->
        Printf.printf "%s  %-10s %-6s" stamp rev scale;
        List.iter
          (fun (k, v) ->
            match List.assoc_opt k !prev with
            | Some p when p <> 0.0 ->
                Printf.printf "  %s=%.4g (%+.1f%%)" k v
                  (100.0 *. ((v /. p) -. 1.0))
            | _ -> Printf.printf "  %s=%.4g" k v)
          metrics;
        print_newline ();
        prev := metrics)
      entries
  end

let results_dir =
  Arg.(value & opt string (Filename.concat "bench" "results")
       & info [ "results-dir" ] ~docv:"DIR"
           ~doc:"Directory holding the archived benchmark runs.")

let diff_figures =
  Arg.(value & opt_all string [] & info [ "figure" ] ~docv:"FIG"
         ~doc:"Only diff this figure (repeatable; default: every figure \
               with archives).")

let diff_threshold =
  Arg.(value & opt (some float) None & info [ "threshold" ] ~docv:"FRAC"
         ~doc:"Override the per-figure tolerance (fraction, e.g. 0.1 = \
               10%). Defaults: 0.10 for wirealloc, 0.30 elsewhere.")

let diff_ci =
  Arg.(value & flag & info [ "ci" ]
         ~doc:"Derive each metric's tolerance from the spread of up to 8 \
               prior archived runs (two run-to-run standard deviations \
               around their mean, floored at --threshold or 5%) instead of \
               the fixed per-figure default. Metrics with fewer than two \
               prior samples fall back to the fixed comparison.")

let bench_diff_term =
  Term.(
    const (fun () -> bench_diff_cmd)
    $ setup_logs $ results_dir $ diff_figures $ diff_threshold $ diff_ci)

let history_fig =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FIG"
         ~doc:"The figure whose archived runs to list (e.g. fig12, adaptive).")

let history_last =
  Arg.(value & opt int 0 & info [ "last" ] ~docv:"N"
         ~doc:"Only show the newest N runs (0 = all).")

let history_json =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the trajectory as a JSON array instead of a table.")

let bench_history_term =
  Term.(
    const (fun () -> bench_history_cmd)
    $ setup_logs $ results_dir $ history_fig $ history_last $ history_json)

let bench_cmd_group =
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Operate on archived benchmark results (the harness itself is \
             the separate bench/main.exe)")
    [
      Cmd.v
        (Cmd.info "diff"
           ~doc:"Compare each figure's newest archived run against the \
                 previous one and fail on metric regressions beyond a \
                 per-figure tolerance")
        bench_diff_term;
      Cmd.v
        (Cmd.info "history"
           ~doc:"Show a figure's performance trajectory across every \
                 archived run: timestamp, git revision, scale, and the mean \
                 of each direction-carrying metric, with run-over-run \
                 deltas")
        bench_history_term;
    ]

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a YCSB workload over a verified store")
      run_term;
    Cmd.v (Cmd.info "attack" ~doc:"Demonstrate tamper detection") attack_term;
    Cmd.v (Cmd.info "scale" ~doc:"Modelled multi-worker scalability")
      scale_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:"Serve a verified store over TCP or a Unix socket")
      serve_term;
    Cmd.v
      (Cmd.info "recover"
         ~doc:"Recover a verified store from its newest committed checkpoint \
               generation and run a verification scan")
      recover_term;
    Cmd.v
      (Cmd.info "follow"
         ~doc:"Run a replication follower: replay the primary's op stream, \
               verify the epoch-certificate chain at every boundary, and \
               serve integrity-checked reads")
      follow_term;
    Cmd.v
      (Cmd.info "client-bench"
         ~doc:"Closed-loop benchmark against a running fastver server, \
               verifying every response signature")
      client_bench_term;
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Fetch a live metrics snapshot from a running fastver server \
               and optionally reconcile it against itself")
      stats_term;
    bench_cmd_group;
  ]

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "fastver" ~version:"1.0.0"
             ~doc:"FastVer: a key-value store with verified data integrity")
          cmds))
