(* The sparse-Merkle key algebra (lib/merkle/key.ml). *)

let key = Alcotest.testable Key.pp Key.equal

let k_of_bits = Key.of_bit_string

let test_basics () =
  Alcotest.(check int) "root depth" 0 (Key.depth Key.root);
  Alcotest.(check bool) "root not data" false (Key.is_data_key Key.root);
  let k = Key.of_int64 42L in
  Alcotest.(check int) "data depth" 256 (Key.depth k);
  Alcotest.(check bool) "data key" true (Key.is_data_key k);
  Alcotest.(check int64) "int roundtrip" 42L (Key.to_int64 k);
  let b = Key.to_bytes32 k in
  Alcotest.check key "bytes roundtrip" k (Key.of_bytes32 b)

let test_bits_children () =
  let k = k_of_bits "0101" in
  Alcotest.(check bool) "bit 0" false (Key.bit k 0);
  Alcotest.(check bool) "bit 1" true (Key.bit k 1);
  Alcotest.check key "child 0" (k_of_bits "01010") (Key.child k false);
  Alcotest.check key "child 1" (k_of_bits "01011") (Key.child k true);
  Alcotest.(check string) "bit string roundtrip" "0101" (Key.to_bit_string k)

let test_ancestry () =
  let anc = k_of_bits "0101" and k = k_of_bits "010101" in
  Alcotest.(check bool) "proper ancestor" true (Key.is_proper_ancestor anc k);
  Alcotest.(check bool) "not self-ancestor" false (Key.is_proper_ancestor k k);
  Alcotest.(check bool) "not descendant" false (Key.is_proper_ancestor k anc);
  Alcotest.(check bool) "root ancestor of all" true
    (Key.is_proper_ancestor Key.root k);
  (* the paper's example: dir(1011, 1) = 0 *)
  Alcotest.(check bool) "dir example"
    false
    (Key.dir (k_of_bits "1011") ~ancestor:(k_of_bits "1"));
  Alcotest.(check bool) "dir right" true
    (Key.dir (k_of_bits "011") ~ancestor:(k_of_bits "0"))

let test_lca () =
  Alcotest.check key "diverging" (k_of_bits "01")
    (Key.lca (k_of_bits "0100") (k_of_bits "0111"));
  Alcotest.check key "prefix" (k_of_bits "01")
    (Key.lca (k_of_bits "01") (k_of_bits "0111"));
  Alcotest.check key "root" Key.root
    (Key.lca (k_of_bits "1") (k_of_bits "0"));
  Alcotest.check key "equal" (k_of_bits "0101")
    (Key.lca (k_of_bits "0101") (k_of_bits "0101"));
  (* across word boundaries *)
  let a = Key.of_int64 0L and b = Key.of_int64 1L in
  Alcotest.(check int) "dense int64 keys split at depth 255" 255
    (Key.depth (Key.lca a b))

let test_compare () =
  let l = List.map k_of_bits [ "1"; "0"; "01"; "010"; "0101"; "011"; "" ] in
  let sorted = List.sort Key.compare l in
  Alcotest.(check (list string))
    "lexicographic, prefixes first"
    [ ""; "0"; "01"; "010"; "0101"; "011"; "1" ]
    (List.map Key.to_bit_string sorted)

let test_prefix () =
  let k = k_of_bits "010110" in
  Alcotest.check key "prefix 3" (k_of_bits "010") (Key.prefix k 3);
  Alcotest.check key "prefix 0" Key.root (Key.prefix k 0);
  Alcotest.check key "prefix full" k (Key.prefix k 6);
  Alcotest.check_raises "prefix beyond depth"
    (Invalid_argument "Key.prefix") (fun () -> ignore (Key.prefix k 7))

let test_encode () =
  let k = k_of_bits "0101" in
  Alcotest.(check int) "34 bytes" 34 (String.length (Key.encode k));
  Alcotest.(check bool) "distinct from extension" true
    (Key.encode k <> Key.encode (k_of_bits "01010"))

(* --- properties --- *)

let arb_key =
  let gen =
    QCheck.Gen.(
      int_range 0 256 >>= fun depth ->
      list_repeat ((depth + 7) / 8) (int_range 0 255) >|= fun bytes ->
      let path =
        String.init 32 (fun i ->
            match List.nth_opt bytes i with
            | Some b -> Char.chr b
            | None -> '\000')
      in
      Key.prefix (Key.of_bytes32 path) depth)
  in
  QCheck.make ~print:(Fmt.to_to_string Key.pp) gen

let prop_prefix_is_ancestor =
  QCheck.Test.make ~name:"prefix is ancestor" ~count:500 arb_key (fun k ->
      Key.depth k = 0
      ||
      let n = Key.depth k / 2 in
      Key.is_proper_ancestor (Key.prefix k n) k
      || Key.depth (Key.prefix k n) = Key.depth k)

let prop_lca_commutative =
  QCheck.Test.make ~name:"lca commutative + is common ancestor" ~count:500
    QCheck.(pair arb_key arb_key)
    (fun (a, b) ->
      let l = Key.lca a b and l' = Key.lca b a in
      Key.equal l l'
      && (Key.equal l a || Key.is_proper_ancestor l a)
      && (Key.equal l b || Key.is_proper_ancestor l b))

let prop_child_parent =
  QCheck.Test.make ~name:"child then prefix is identity" ~count:500
    QCheck.(pair arb_key bool)
    (fun (k, d) ->
      QCheck.assume (Key.depth k < 256);
      let c = Key.child k d in
      Key.equal (Key.prefix c (Key.depth k)) k
      && Key.dir c ~ancestor:k = d)

let prop_compare_matches_bit_strings =
  QCheck.Test.make ~name:"compare = lexicographic bit strings" ~count:500
    QCheck.(pair arb_key arb_key)
    (fun (a, b) ->
      QCheck.assume (Key.depth a <= 64 && Key.depth b <= 64);
      let c = compare (Key.to_bit_string a) (Key.to_bit_string b) in
      let c' = Key.compare a b in
      (c = 0) = (c' = 0) && (c < 0) = (c' < 0))

let prop_encode_injective =
  QCheck.Test.make ~name:"encode injective" ~count:500
    QCheck.(pair arb_key arb_key)
    (fun (a, b) -> Key.equal a b = (Key.encode a = Key.encode b))

let prop_hash_consistent =
  QCheck.Test.make ~name:"hash respects equality" ~count:500 arb_key (fun k ->
      let k' = Key.prefix k (Key.depth k) in
      Key.hash k = Key.hash k')

let suite =
  ( "key",
    [
      Alcotest.test_case "basics" `Quick test_basics;
      Alcotest.test_case "bits and children" `Quick test_bits_children;
      Alcotest.test_case "ancestry and dir" `Quick test_ancestry;
      Alcotest.test_case "lca" `Quick test_lca;
      Alcotest.test_case "compare" `Quick test_compare;
      Alcotest.test_case "prefix" `Quick test_prefix;
      Alcotest.test_case "encode" `Quick test_encode;
      QCheck_alcotest.to_alcotest prop_prefix_is_ancestor;
      QCheck_alcotest.to_alcotest prop_lca_commutative;
      QCheck_alcotest.to_alcotest prop_child_parent;
      QCheck_alcotest.to_alcotest prop_compare_matches_bit_strings;
      QCheck_alcotest.to_alcotest prop_encode_injective;
      QCheck_alcotest.to_alcotest prop_hash_consistent;
    ] )
