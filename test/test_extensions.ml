(* Extension features: string-keyed view, key-level API, auto-checkpointing,
   sorted-migration ablation flag, and a randomized adversary property. *)

let ckpt t ~dir =
  match Fastver.checkpoint t ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "checkpoint: %s" e

let vo = Alcotest.(option string)

let mk ?(d = 3) ?(sorted = true) ?(n = 500) () =
  let config =
    {
      Fastver.Config.default with
      n_workers = 2;
      batch_size = 0;
      frontier_levels = d;
      sorted_migration = sorted;
      cost_model = Cost_model.zero;
    }
  in
  let t = Fastver.create ~config () in
  Fastver.load t
    (Array.init n (fun i -> (Int64.of_int i, Printf.sprintf "v%06d" i)));
  t

let test_string_keys () =
  let t = mk () in
  let open Fastver.String_keys in
  Alcotest.(check vo) "missing" None (get t "alice");
  put t "alice" "wonderland";
  put t "bob" "builder";
  Alcotest.(check vo) "alice" (Some "wonderland") (get t "alice");
  Alcotest.(check vo) "bob" (Some "builder") (get t "bob");
  ignore (Fastver.verify t);
  Alcotest.(check vo) "alice survives verify" (Some "wonderland") (get t "alice");
  delete t "alice";
  Alcotest.(check vo) "deleted" None (get t "alice");
  Alcotest.(check vo) "bob untouched" (Some "builder") (get t "bob");
  (* distinct application keys map to distinct merkle keys *)
  Alcotest.(check bool) "key mapping injective-ish" false
    (Key.equal (key "alice") (key "bob"));
  Alcotest.(check bool) "keys are data keys" true (Key.is_data_key (key "x"))

let test_key_level_api () =
  let t = mk () in
  let k = Key.of_bytes32 (Fastver_crypto.Sha256.digest "some-key") in
  Alcotest.(check vo) "missing" None (Fastver.get_key t k);
  Fastver.put_key t k "direct";
  Alcotest.(check vo) "roundtrip" (Some "direct") (Fastver.get_key t k);
  Fastver.delete_key t k;
  Alcotest.(check vo) "deleted" None (Fastver.get_key t k);
  Alcotest.check_raises "merkle keys rejected"
    (Invalid_argument "Fastver: not a data key") (fun () ->
      ignore (Fastver.get_key t Key.root))

let test_auto_checkpoint () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fv-auto-ckpt" in
  let t = mk () in
  Fastver.set_auto_checkpoint t ~dir;
  Fastver.put t 3L "persisted";
  ignore (Fastver.verify t);
  (* the scan checkpointed; recover a fresh system from it *)
  (match Fastver.recover ~config:(Fastver.config t) ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok t2 ->
      Alcotest.(check vo) "auto-checkpointed state" (Some "persisted")
        (Fastver.get t2 3L));
  (* updates after the scan are not yet persisted (provisional epoch) *)
  Fastver.put t 3L "only-in-memory";
  (match Fastver.recover ~config:(Fastver.config t) ~dir () with
  | Error e -> Alcotest.failf "recover2: %s" e
  | Ok t2 ->
      Alcotest.(check vo) "post-scan update not persisted yet"
        (Some "persisted") (Fastver.get t2 3L));
  Fastver.clear_auto_checkpoint t;
  ignore (Fastver.verify t)

let test_unsorted_migration_correct () =
  (* the ablation flag changes performance, never results *)
  let t = mk ~sorted:false () in
  let model = Hashtbl.create 64 in
  let rng = Random.State.make [| 31 |] in
  for i = 0 to 1500 do
    let k = Int64.of_int (Random.State.int rng 600) in
    if Random.State.bool rng then begin
      let v = Printf.sprintf "u%d" i in
      Fastver.put t k v;
      Hashtbl.replace model k v
    end
    else begin
      let expected =
        match Hashtbl.find_opt model k with
        | Some v -> Some v
        | None ->
            if Int64.to_int k < 500 then
              Some (Printf.sprintf "v%06d" (Int64.to_int k))
            else None
      in
      Alcotest.(check vo) "unsorted read" expected (Fastver.get t k)
    end;
    if i mod 300 = 0 then ignore (Fastver.verify t)
  done;
  ignore (Fastver.verify t)

(* Randomised adversary soundness property. Corrupting host state the
   verifier never observes is legitimately undetected (and harmless — the
   paper's guarantee is about *validated results*, §2.2). The real invariant:
   no reads inside a successfully verified epoch may disagree with the honest
   history. So: run a random trace, corrupt one random piece of host state,
   keep reading against a model — if any read lies, the epoch's verification
   scan must fail (poisoning the verifier) rather than certify it. *)
let prop_random_corruption_detected =
  QCheck.Test.make ~name:"no verified epoch contains a lying read" ~count:30
    QCheck.(triple (int_bound 1_000_000) (int_bound 99) small_nat)
    (fun (seed, victim, warmup_epochs) ->
      let n = 100 in
      let t = mk ~n () in
      let model = Hashtbl.create 64 in
      for i = 0 to n - 1 do
        Hashtbl.replace model (Int64.of_int i) (Printf.sprintf "v%06d" i)
      done;
      let rng = Random.State.make [| seed |] in
      let lied = ref false in
      let detected = ref false in
      let step k =
        try
          if Random.State.bool rng then begin
            let v = Fastver.get t k in
            if v <> Hashtbl.find_opt model k then lied := true
          end
          else begin
            Fastver.put t k "x";
            Hashtbl.replace model k "x"
          end
        with Fastver.Integrity_violation _ -> detected := true
      in
      let run_ops count =
        for _ = 1 to count do
          if not !detected then
            step (Int64.of_int (Random.State.int rng n))
        done
      in
      (* honest warmup *)
      run_ops 50;
      for _ = 1 to warmup_epochs mod 3 do
        ignore (Fastver.verify t)
      done;
      (* the corruption: a data record or a merkle record *)
      (if seed land 1 = 0 then begin
         Fastver.Testing.corrupt_store t (Int64.of_int victim) (Some "EVIL");
         (* the host value diverges from the honest history *)
         if Hashtbl.find_opt model (Int64.of_int victim) <> Some "EVIL" then ()
       end
       else
         match Fastver.Testing.some_merkle_key t with
         | Some mk -> Fastver.Testing.corrupt_merkle_record t mk
         | None ->
             Fastver.Testing.corrupt_store t (Int64.of_int victim) (Some "EVIL"));
      if not !detected then
        step (Int64.of_int victim) (* expose the victim *);
      run_ops 100;
      let verified =
        if !detected then false
        else
          match Fastver.verify t with
          | (_ : string) -> true
          | exception Fastver.Integrity_violation _ ->
              detected := true;
              false
      in
      (* the one forbidden outcome: a lying read inside a certified epoch *)
      not (!lied && verified))

let suite =
  ( "extensions",
    [
      Alcotest.test_case "string keys" `Quick test_string_keys;
      Alcotest.test_case "key-level api" `Quick test_key_level_api;
      Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint;
      Alcotest.test_case "unsorted migration correct" `Quick
        test_unsorted_migration_correct;
      QCheck_alcotest.to_alcotest prop_random_corruption_detected;
    ] )

(* nonce table survives recovery: pre-crash puts cannot be replayed *)
let test_nonce_replay_across_recovery () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fv-nonce-ckpt" in
  let t = mk () in
  let s = Fastver.Session.connect t ~client_id:9 in
  ignore (Fastver.Session.put s 1L "legit");
  ignore (Fastver.verify t);
  ckpt t ~dir;
  match Fastver.recover ~config:(Fastver.config t) ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok t2 -> (
      (* replay the pre-crash put verbatim against the recovered system *)
      match Fastver.Testing.replay_last_put t2 with
      | exception Fastver.Integrity_violation _ -> ()
      | exception Invalid_argument _ ->
          (* last_put not recorded in t2's process: re-drive it through t *)
          Alcotest.fail "replay harness missing"
      | () -> Alcotest.fail "pre-crash put replayed after recovery")

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "nonce replay across recovery" `Quick
          test_nonce_replay_across_recovery;
      ] )
