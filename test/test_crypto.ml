(* Cryptographic primitives: published test vectors plus property tests. *)

open Fastver_crypto

let hex = Bytes_util.to_hex
let unhex = Bytes_util.of_hex
let check_hex msg expected got = Alcotest.(check string) msg expected (hex got)

(* --- SHA-256 (FIPS 180-4 / NIST CAVS) --- *)

let test_sha256_vectors () =
  check_hex "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest "");
  check_hex "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest "abc");
  check_hex "two-block"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let reference = Sha256.digest msg in
  (* Every split position in a coarse grid, plus odd chunk sizes. *)
  List.iter
    (fun chunk ->
      let ctx = Sha256.init () in
      let pos = ref 0 in
      while !pos < String.length msg do
        let len = min chunk (String.length msg - !pos) in
        Sha256.update ctx (String.sub msg !pos len);
        pos := !pos + len
      done;
      Alcotest.(check string)
        (Printf.sprintf "chunk=%d" chunk)
        (hex reference)
        (hex (Sha256.finalize ctx)))
    [ 1; 3; 63; 64; 65; 127; 128; 1000 ]

(* --- BLAKE2b / BLAKE2s (RFC 7693) --- *)

let test_blake2b_vectors () =
  check_hex "blake2b-512 abc"
    "ba80a53f981c4d0d6a2797b69f12f6e94c212f14685ac4b74b12bb6fdbffa2d1\
     7d87c5392aab792dc252d5de4533cc9518d38aa8dbf1925ab92386edd4009923"
    (Blake2b.digest ~digest_size:64 "abc");
  check_hex "blake2b-512 empty"
    "786a02f742015903c6c6fd852552d272912f4740e15847618a86e217f71f5419\
     d25e1031afee585313896444934eb04b903a685b1448b755d56f701afe9be2ce"
    (Blake2b.digest ~digest_size:64 "")

let test_blake2s_vectors () =
  check_hex "blake2s-256 abc"
    "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
    (Blake2s.digest "abc");
  check_hex "blake2s-256 empty"
    "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"
    (Blake2s.digest "")

let test_blake2_multiblock () =
  (* Exercise the last-block handling around the 64/128-byte boundaries. *)
  List.iter
    (fun n ->
      let msg = String.init n (fun i -> Char.chr (i mod 256)) in
      let s1 = Blake2s.digest msg in
      let ctx = Blake2s.init () in
      String.iter (fun c -> Blake2s.update ctx (String.make 1 c)) msg;
      Alcotest.(check string)
        (Printf.sprintf "blake2s incremental n=%d" n)
        (hex s1)
        (hex (Blake2s.finalize ctx));
      let b1 = Blake2b.digest msg in
      let ctx = Blake2b.init () in
      String.iter (fun c -> Blake2b.update ctx (String.make 1 c)) msg;
      Alcotest.(check string)
        (Printf.sprintf "blake2b incremental n=%d" n)
        (hex b1)
        (hex (Blake2b.finalize ctx)))
    [ 0; 1; 63; 64; 65; 127; 128; 129; 255; 256 ]

(* --- AES-128 (FIPS 197) and AES-CMAC (RFC 4493) --- *)

let test_aes_vectors () =
  let k = Aes128.expand_key (unhex "000102030405060708090a0b0c0d0e0f") in
  check_hex "fips-197 appendix C"
    "69c4e0d86a7b0430d8cdb78070b4c55a"
    (Aes128.encrypt_block k (unhex "00112233445566778899aabbccddeeff"));
  let k = Aes128.expand_key (unhex "2b7e151628aed2a6abf7158809cf4f3c") in
  check_hex "sp800-38a block 1"
    "3ad77bb40d7a3660a89ecaf32466ef97"
    (Aes128.encrypt_block k (unhex "6bc1bee22e409f96e93d7e117393172a"))

let test_aes_in_place () =
  let k = Aes128.expand_key (unhex "000102030405060708090a0b0c0d0e0f") in
  let buf = Bytes.of_string (unhex "00112233445566778899aabbccddeeff") in
  Aes128.encrypt_block_into k buf buf;
  check_hex "src = dst aliasing" "69c4e0d86a7b0430d8cdb78070b4c55a"
    (Bytes.to_string buf)

let test_cmac_vectors () =
  let k = Cmac.of_aes_key (unhex "2b7e151628aed2a6abf7158809cf4f3c") in
  check_hex "len 0" "bb1d6929e95937287fa37d129b756746" (Cmac.mac k "");
  check_hex "len 16" "070a16b46b4d4144f79bdd9dd04a287c"
    (Cmac.mac k (unhex "6bc1bee22e409f96e93d7e117393172a"));
  check_hex "len 40" "dfa66747de9ae63030ca32611497c827"
    (Cmac.mac k
       (unhex
          "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
           30c81c46a35ce411"));
  check_hex "len 64" "51f0bebf7e3b9d92fc49741779363cfe"
    (Cmac.mac k
       (unhex
          "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
           30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"))

(* --- HMAC-SHA256 (RFC 4231) --- *)

let test_hmac_vectors () =
  check_hex "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac ~key:"Jefe" "what do ya want for nothing?");
  check_hex "case 6 (long key)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac
       ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First");
  Alcotest.(check bool)
    "verify ok" true
    (Hmac.verify ~key:"k" "msg" ~tag:(Hmac.mac ~key:"k" "msg"));
  Alcotest.(check bool)
    "verify rejects" false
    (Hmac.verify ~key:"k" "msg" ~tag:(Hmac.mac ~key:"k" "msg2"))

(* --- Bytes_util --- *)

let test_bytes_util () =
  Alcotest.(check string) "hex" "00ff10" (hex "\x00\xff\x10");
  Alcotest.(check string) "unhex" "\x00\xff\x10" (unhex "00fF10");
  Alcotest.check_raises "odd hex" (Invalid_argument "Bytes_util.of_hex: odd length")
    (fun () -> ignore (unhex "abc"));
  Alcotest.(check bool) "ct-eq same" true
    (Bytes_util.equal_constant_time "abc" "abc");
  Alcotest.(check bool) "ct-eq diff len" false
    (Bytes_util.equal_constant_time "abc" "abcd");
  Alcotest.(check string) "xor" "\x03\x01" (Bytes_util.xor "\x01\x02" "\x02\x03")

(* --- Multiset hash --- *)

let test_multiset_basic () =
  let key = Multiset_hash.key_of_string "0123456789abcdef" in
  let a = Multiset_hash.create key and b = Multiset_hash.create key in
  Multiset_hash.add a "x";
  Multiset_hash.add a "y";
  Multiset_hash.add b "y";
  Multiset_hash.add b "x";
  Alcotest.(check bool) "order-independent" true (Multiset_hash.equal a b);
  Multiset_hash.add a "x";
  Alcotest.(check bool) "multiplicity counts" false (Multiset_hash.equal a b);
  (* {x,x} must not cancel (the XOR construction would). *)
  let c = Multiset_hash.create key in
  Multiset_hash.add c "x";
  Multiset_hash.add c "x";
  Alcotest.(check bool) "even multiplicity visible" false
    (Multiset_hash.equal_value (Multiset_hash.value c) Multiset_hash.empty_value)

let test_multiset_merge () =
  let key = Multiset_hash.key_of_string "0123456789abcdef" in
  let whole = Multiset_hash.create key in
  List.iter (Multiset_hash.add whole) [ "a"; "b"; "c"; "d" ];
  let p1 = Multiset_hash.create key and p2 = Multiset_hash.create key in
  Multiset_hash.add p1 "a";
  Multiset_hash.add p1 "d";
  Multiset_hash.add p2 "c";
  Multiset_hash.add p2 "b";
  Multiset_hash.merge p1 p2;
  Alcotest.(check bool) "merge = union" true (Multiset_hash.equal whole p1);
  Alcotest.(check string) "of_value roundtrip"
    (hex (Multiset_hash.value whole))
    (hex (Multiset_hash.value (Multiset_hash.of_value key (Multiset_hash.value whole))))

(* --- properties --- *)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Bytes_util.of_hex (Bytes_util.to_hex s) = s)

let prop_xor_involution =
  QCheck.Test.make ~name:"xor involution" ~count:500
    QCheck.(pair (string_of_size (QCheck.Gen.return 24)) (string_of_size (QCheck.Gen.return 24)))
    (fun (a, b) -> Bytes_util.xor (Bytes_util.xor a b) b = a)

let prop_sha256_incremental =
  QCheck.Test.make ~name:"sha256 split-invariant" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 300)) small_nat)
    (fun (s, cut) ->
      let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
      let ctx = Fastver_crypto.Sha256.init () in
      Sha256.update ctx (String.sub s 0 cut);
      Sha256.update ctx (String.sub s cut (String.length s - cut));
      Sha256.finalize ctx = Sha256.digest s)

let prop_multiset_permutation =
  QCheck.Test.make ~name:"multiset hash permutation-invariant" ~count:200
    QCheck.(small_list (string_of_size Gen.(0 -- 20)))
    (fun elems ->
      let key = Multiset_hash.key_of_string "0123456789abcdef" in
      let shuffled =
        let a = Array.of_list elems in
        for i = Array.length a - 1 downto 1 do
          let j = (i * 7919) mod (i + 1) in
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t
        done;
        Array.to_list a
      in
      Multiset_hash.hash_elements key elems
      = Multiset_hash.hash_elements key shuffled)

let prop_cmac_distinct =
  QCheck.Test.make ~name:"cmac distinguishes messages" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 40)) (string_of_size Gen.(0 -- 40)))
    (fun (a, b) ->
      let k = Cmac.of_aes_key "0123456789abcdef" in
      a = b || Cmac.mac k a <> Cmac.mac k b)

let suite =
  ( "crypto",
    [
      Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
      Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
      Alcotest.test_case "blake2b vectors" `Quick test_blake2b_vectors;
      Alcotest.test_case "blake2s vectors" `Quick test_blake2s_vectors;
      Alcotest.test_case "blake2 multiblock" `Quick test_blake2_multiblock;
      Alcotest.test_case "aes vectors" `Quick test_aes_vectors;
      Alcotest.test_case "aes in-place" `Quick test_aes_in_place;
      Alcotest.test_case "cmac vectors" `Quick test_cmac_vectors;
      Alcotest.test_case "hmac vectors" `Quick test_hmac_vectors;
      Alcotest.test_case "bytes_util" `Quick test_bytes_util;
      Alcotest.test_case "multiset basic" `Quick test_multiset_basic;
      Alcotest.test_case "multiset merge" `Quick test_multiset_merge;
      QCheck_alcotest.to_alcotest prop_hex_roundtrip;
      QCheck_alcotest.to_alcotest prop_xor_involution;
      QCheck_alcotest.to_alcotest prop_sha256_incremental;
      QCheck_alcotest.to_alcotest prop_multiset_permutation;
      QCheck_alcotest.to_alcotest prop_cmac_distinct;
    ] )
