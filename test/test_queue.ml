(* Bounded_queue under real domains: the executor-pool handoff primitive.

   The contract that the server's shutdown path leans on: [push] is total —
   it answers [false] instead of raising when the queue is (or becomes,
   while blocked on a full buffer) closed — and for any interleaving of
   producers, consumers and a racing [close], every item whose push was
   accepted is popped exactly once, every rejected item is popped never,
   and nothing deadlocks. *)

module Q = Fastver.Bounded_queue

let test_push_after_close_rejected () =
  let q = Q.create 4 in
  Alcotest.(check bool) "open queue accepts" true (Q.push q 1);
  Q.close q;
  Alcotest.(check bool) "closed queue rejects" false (Q.push q 2);
  Alcotest.(check bool) "close is idempotent" false
    (Q.close q;
     Q.push q 3);
  Alcotest.(check (option int)) "buffered item still drains" (Some 1) (Q.pop q);
  Alcotest.(check (option int)) "then closed-and-drained" None (Q.pop q)

let test_blocked_push_released_by_close () =
  (* The exact shutdown race in the server: a dispatcher blocked on a full
     executor queue while [stop] closes it must wake up with [false], not
     hang and not raise. *)
  let q = Q.create 1 in
  Alcotest.(check bool) "fill" true (Q.push q 0);
  let result = ref None in
  let d = Domain.spawn (fun () -> result := Some (Q.push q 1)) in
  (* give the producer time to block on the full buffer (if close wins the
     race instead, push still answers false — the property is the same) *)
  Unix.sleepf 0.05;
  Q.close q;
  Domain.join d;
  Alcotest.(check (option bool)) "blocked push answers false" (Some false)
    !result;
  Alcotest.(check (option int)) "accepted item survives close" (Some 0)
    (Q.pop q);
  Alcotest.(check (option int)) "rejected item never appears" None (Q.pop q)

(* Producers, consumers and a mid-stream close, all on their own domains.
   [close_after] steers when the close fires (after that many observed
   pops, or immediately when 0), so runs cover close-before-first-push
   through close-after-everything-drained. *)
let prop_exactly_once =
  QCheck.Test.make
    ~name:"Bounded_queue: multi-domain push/pop/close, exactly-once"
    ~count:25
    QCheck.(
      quad (int_range 1 4) (int_range 1 3) (int_range 1 3) (int_range 0 120))
    (fun (cap, n_prod, n_cons, close_after) ->
      let per_prod = 40 in
      let total = n_prod * per_prod in
      let q = Q.create cap in
      let popped_count = Atomic.make 0 in
      let prods_done = Atomic.make 0 in
      let producers =
        Array.init n_prod (fun p ->
            Domain.spawn (fun () ->
                let acc = Array.make per_prod false in
                for i = 0 to per_prod - 1 do
                  acc.(i) <- Q.push q ((p * per_prod) + i)
                done;
                Atomic.incr prods_done;
                acc))
      in
      let consumers =
        Array.init n_cons (fun _ ->
            Domain.spawn (fun () ->
                let acc = ref [] in
                let rec loop () =
                  match Q.pop q with
                  | Some x ->
                      acc := x :: !acc;
                      Atomic.incr popped_count;
                      loop ()
                  | None -> ()
                in
                loop ();
                !acc))
      in
      (* close once enough pops were observed — or immediately once every
         producer finished, so the spin always terminates *)
      while
        Atomic.get popped_count < min close_after total
        && Atomic.get prods_done < n_prod
      do
        Domain.cpu_relax ()
      done;
      Q.close q;
      let accepted = Array.map Domain.join producers in
      let popped = Array.map Domain.join consumers in
      let seen = Array.make total 0 in
      Array.iter
        (List.iter (fun x ->
             if x < 0 || x >= total then failwith "popped an impossible item";
             seen.(x) <- seen.(x) + 1))
        popped;
      Array.iteri
        (fun p acc ->
            Array.iteri
              (fun i ok ->
                let id = (p * per_prod) + i in
                let expect = if ok then 1 else 0 in
                if seen.(id) <> expect then
                  QCheck.Test.fail_reportf
                    "item %d: push=%b but popped %d times" id ok seen.(id))
              acc)
        accepted;
      true)

let suite =
  ( "bounded-queue",
    [
      Alcotest.test_case "push after close rejected" `Quick
        test_push_after_close_rejected;
      Alcotest.test_case "blocked push released by close" `Quick
        test_blocked_push_released_by_close;
      QCheck_alcotest.to_alcotest prop_exactly_once;
    ] )
