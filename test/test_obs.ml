(* Observability library: histogram bucket math against exact order
   statistics, snapshot merge algebra, lock-free recording from many
   domains, and registry semantics/rendering. *)

module Obs = Fastver_obs
module H = Obs.Histogram

(* ------------------------------------------------------------------ *)
(* Bucket geometry                                                     *)
(* ------------------------------------------------------------------ *)

let test_bucket_geometry () =
  (* every representable value falls in exactly the bucket whose bounds
     contain it, and bucket ranges tile the space without gaps *)
  let check v =
    let i = H.bucket_of_value v in
    let lo, hi = H.bucket_bounds i in
    if not (lo <= v && v <= hi) then
      Alcotest.failf "value %d in bucket %d [%d,%d]" v i lo hi
  in
  for v = 0 to 4096 do check v done;
  List.iter check
    [ 65_535; 65_536; 1_000_000; 123_456_789; H.max_value ];
  let prev_hi = ref (-1) in
  for i = 0 to H.n_buckets - 1 do
    let lo, hi = H.bucket_bounds i in
    if lo <> !prev_hi + 1 then
      Alcotest.failf "bucket %d starts at %d, previous ended at %d" i lo !prev_hi;
    if hi < lo then Alcotest.failf "bucket %d inverted" i;
    prev_hi := hi
  done;
  Alcotest.(check int) "last bucket reaches max_value" H.max_value !prev_hi

(* ------------------------------------------------------------------ *)
(* Quantiles vs exact order statistics                                 *)
(* ------------------------------------------------------------------ *)

let gen_samples =
  (* mix magnitudes so octave boundaries get exercised *)
  QCheck.Gen.(
    list_size (1 -- 200)
      (oneof
         [ 0 -- 40; 0 -- 10_000; map abs int; return H.max_value ]))

let exact_rank samples q =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  a.(rank - 1)

let prop_quantile_bound =
  QCheck.Test.make ~name:"quantile within one bucket of exact" ~count:500
    (QCheck.make gen_samples ~print:QCheck.Print.(list int))
    (fun samples ->
      let samples = List.map (fun v -> min (abs v) H.max_value) samples in
      let h = H.create () in
      List.iter (H.record h) samples;
      let s = H.snapshot h in
      List.for_all
        (fun q ->
          let exact = exact_rank samples q in
          let est = H.quantile s q in
          (* estimate is an upper bound, within one bucket width *)
          float_of_int exact <= est
          && est <= float_of_int exact +. (float_of_int exact /. 32.0) +. 1.0)
        [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ])

let prop_count_sum_minmax =
  QCheck.Test.make ~name:"snapshot count/sum/min/max are exact" ~count:300
    (QCheck.make gen_samples ~print:QCheck.Print.(list int))
    (fun samples ->
      let samples = List.map (fun v -> min (abs v) H.max_value) samples in
      let h = H.create () in
      List.iter (H.record h) samples;
      let s = H.snapshot h in
      s.H.count = List.length samples
      && s.H.sum = List.fold_left ( + ) 0 samples
      && s.H.min = List.fold_left min H.max_value samples
      && s.H.max = List.fold_left max 0 samples)

(* ------------------------------------------------------------------ *)
(* Merge algebra                                                       *)
(* ------------------------------------------------------------------ *)

let snap_of samples =
  let h = H.create () in
  List.iter (H.record h) samples;
  H.snapshot h

let snap_eq a b =
  a.H.counts = b.H.counts && a.H.count = b.H.count && a.H.sum = b.H.sum
  && a.H.min = b.H.min && a.H.max = b.H.max

let prop_merge_algebra =
  QCheck.Test.make ~name:"merge is associative+commutative, empty is unit"
    ~count:300
    (QCheck.make
       QCheck.Gen.(triple gen_samples gen_samples gen_samples)
       ~print:QCheck.Print.(triple (list int) (list int) (list int)))
    (fun (xs, ys, zs) ->
      let clamp = List.map (fun v -> min (abs v) H.max_value) in
      let a = snap_of (clamp xs)
      and b = snap_of (clamp ys)
      and c = snap_of (clamp zs) in
      snap_eq (H.merge a (H.merge b c)) (H.merge (H.merge a b) c)
      && snap_eq (H.merge a b) (H.merge b a)
      && snap_eq (H.merge a H.empty) a
      && snap_eq (H.merge H.empty a) a
      (* merging equals recording the concatenation *)
      && snap_eq (H.merge a b) (snap_of (clamp xs @ clamp ys)))

(* ------------------------------------------------------------------ *)
(* Concurrent recording                                                *)
(* ------------------------------------------------------------------ *)

let test_concurrent_record () =
  let h = H.create () in
  let c = Obs.Counter.create () in
  let per_domain = 20_000 and domains = 4 in
  let worker seed () =
    let st = Random.State.make [| seed |] in
    for _ = 1 to per_domain do
      H.record h (Random.State.int st 1_000_000);
      Obs.Counter.incr c
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join ds;
  let s = H.snapshot h in
  Alcotest.(check int) "no sample lost" (domains * per_domain) s.H.count;
  Alcotest.(check int) "counter exact" (domains * per_domain) (Obs.Counter.get c);
  Alcotest.(check int) "buckets sum to count" s.H.count
    (Array.fold_left ( + ) 0 s.H.counts)

(* ------------------------------------------------------------------ *)
(* Registry semantics and rendering                                    *)
(* ------------------------------------------------------------------ *)

let test_registry_identity () =
  let r = Obs.Registry.create () in
  let a = Obs.Registry.counter r "reqs" ~labels:[ ("x", "1") ] in
  let b = Obs.Registry.counter r "reqs" ~labels:[ ("x", "1") ] in
  let other = Obs.Registry.counter r "reqs" ~labels:[ ("x", "2") ] in
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  Alcotest.(check int) "same identity shares the cell" 2 (Obs.Counter.get a);
  Alcotest.(check int) "different labels are distinct" 0 (Obs.Counter.get other);
  (match Obs.Registry.gauge r "reqs" ~labels:[ ("x", "1") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise");
  Obs.Registry.counter_fn r "cb" (fun () -> 7);
  Obs.Registry.counter_fn r "cb" (fun () -> 9);
  match Obs.Registry.dump r with
  | l -> (
      match List.find (fun (n, _, _) -> n = "cb") l with
      | _, _, Obs.Registry.Counter_v v ->
          Alcotest.(check int) "re-registration replaces the callback" 9 v
      | _ -> Alcotest.fail "callback counter missing")

let test_renderers () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "fv_ops_total" ~labels:[ ("tier", "blum") ] in
  let g = Obs.Registry.gauge r "fv_depth" in
  let h = Obs.Registry.histogram r "fv_lat_seconds" ~scale:1e-9 in
  Obs.Counter.add c 41;
  Obs.Counter.incr c;
  Obs.Gauge.set g 6.5;
  H.record h 1_000_000;
  H.record h 2_000_000;
  let json = Obs.Registry.to_json r in
  let has needle =
    let n = String.length needle and l = String.length json in
    let rec go i =
      i + n <= l && (String.sub json i n = needle || go (i + 1))
    in
    if not (go 0) then Alcotest.failf "JSON missing %S in %s" needle json
  in
  has "{\"name\":\"fv_ops_total\",\"labels\":{\"tier\":\"blum\"},\"value\":42}";
  has "{\"name\":\"fv_depth\",\"labels\":{},\"value\":6.5}";
  has "{\"name\":\"fv_lat_seconds\",\"labels\":{},\"count\":2,";
  let prom = Obs.Registry.to_prometheus r in
  List.iter
    (fun needle ->
      let n = String.length needle and l = String.length prom in
      let rec go i =
        i + n <= l && (String.sub prom i n = needle || go (i + 1))
      in
      if not (go 0) then Alcotest.failf "prometheus missing %S in %s" needle prom)
    [
      "# TYPE fv_ops_total counter";
      "fv_ops_total{tier=\"blum\"} 42";
      "# TYPE fv_lat_seconds summary";
      "fv_lat_seconds_count 2";
    ]

let test_span () =
  let h = H.create () in
  let s = Obs.Span.start () in
  Unix.sleepf 0.01;
  Obs.Span.finish s h;
  (match
     Obs.Span.time h (fun () -> raise Exit)
   with
  | exception Exit -> ()
  | _ -> Alcotest.fail "Span.time must re-raise");
  let snap = H.snapshot h in
  Alcotest.(check int) "both spans recorded (even the raising one)" 2
    snap.H.count;
  if snap.H.max < 9_000_000 then
    Alcotest.failf "10ms span recorded as %dns" snap.H.max

let suite =
  ( "obs",
    [
      Alcotest.test_case "bucket geometry tiles the range" `Quick
        test_bucket_geometry;
      Alcotest.test_case "concurrent record loses nothing" `Quick
        test_concurrent_record;
      Alcotest.test_case "registry identity and kinds" `Quick
        test_registry_identity;
      Alcotest.test_case "renderers" `Quick test_renderers;
      Alcotest.test_case "span timing" `Quick test_span;
      QCheck_alcotest.to_alcotest prop_quantile_bound;
      QCheck_alcotest.to_alcotest prop_count_sum_minmax;
      QCheck_alcotest.to_alcotest prop_merge_algebra;
    ] )
