(* The FASTER-style host store and epoch protection. *)

open Fastver_kvstore

let k i = Key.of_int64 (Int64.of_int i)

let mk () = Store.create ~mutable_region_entries:64 ~codec:Store.string_codec ()

(* Reads and maintenance are result-typed (disk tiers can fail); in these
   tests any [Error _] is a test failure. *)
let get_ok s key =
  match Store.get s key with
  | Ok r -> r
  | Error e -> Alcotest.failf "Store.get: %s" e

let ok_unit label = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" label e

let test_put_get () =
  let s = mk () in
  Alcotest.(check (option (pair string int64))) "missing" None (get_ok s (k 1));
  Store.put s (k 1) "one" ~aux:7L;
  Alcotest.(check (option (pair string int64))) "found" (Some ("one", 7L))
    (get_ok s (k 1));
  Store.put s (k 1) "uno" ~aux:8L;
  Alcotest.(check (option (pair string int64))) "updated" (Some ("uno", 8L))
    (get_ok s (k 1));
  Alcotest.(check int) "one live record" 1 (Store.length s)

let test_cas () =
  let s = mk () in
  Store.put s (k 1) "a" ~aux:10L;
  Alcotest.(check bool) "wrong aux fails" false
    (Store.try_cas s (k 1) ~expected_aux:9L "b" ~aux:11L);
  Alcotest.(check bool) "right aux wins" true
    (Store.try_cas s (k 1) ~expected_aux:10L "b" ~aux:11L);
  Alcotest.(check (option (pair string int64))) "applied" (Some ("b", 11L))
    (get_ok s (k 1));
  Alcotest.(check bool) "missing key fails" false
    (Store.try_cas s (k 2) ~expected_aux:0L "x" ~aux:0L)

let test_rcu_versions () =
  (* With a tiny mutable region, updates to old records append versions. *)
  let s = Store.create ~mutable_region_entries:4 ~codec:Store.string_codec () in
  for i = 0 to 15 do
    Store.put s (k i) (string_of_int i) ~aux:0L
  done;
  (* key 0 is far outside the mutable region now *)
  Store.put s (k 0) "copy" ~aux:1L;
  Alcotest.(check (option (pair string int64))) "rcu update visible"
    (Some ("copy", 1L)) (get_ok s (k 0));
  Alcotest.(check bool) "log grew" true (Store.log_size s > 16);
  Alcotest.(check bool) "rcu copies counted" true ((Store.stats s).rcu_copies >= 1)

let test_delete_iter () =
  let s = mk () in
  for i = 0 to 9 do
    Store.put s (k i) (string_of_int i) ~aux:0L
  done;
  Store.delete s (k 3);
  Alcotest.(check int) "9 live" 9 (Store.length s);
  let seen = ref 0 in
  ok_unit "iter_live" (Store.iter_live s (fun _ _ _ -> incr seen));
  Alcotest.(check int) "iter sees 9" 9 !seen

let test_update_rmw () =
  let s = mk () in
  Store.put s (k 1) "x" ~aux:1L;
  ok_unit "update"
    (Store.update s (k 1) (function
      | Some (v, aux) -> (v ^ "y", Int64.add aux 1L)
      | None -> Alcotest.fail "missing"));
  Alcotest.(check (option (pair string int64))) "rmw" (Some ("xy", 2L))
    (get_ok s (k 1))

let test_checkpoint_recover () =
  let dir = Filename.temp_file "fv" "ckpt" in
  Sys.remove dir;
  let s = mk () in
  for i = 0 to 99 do
    Store.put s (k i) (Printf.sprintf "val%d" i) ~aux:(Int64.of_int i)
  done;
  Store.delete s (k 50);
  Store.checkpoint s ~path:dir ~version:3;
  (match Store.recover ~codec:Store.string_codec ~path:dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok (s2, version) ->
      Alcotest.(check int) "version" 3 version;
      Alcotest.(check int) "count" 99 (Store.length s2);
      Alcotest.(check (option (pair string int64))) "record"
        (Some ("val7", 7L)) (get_ok s2 (k 7));
      Alcotest.(check (option (pair string int64))) "deleted stays deleted"
        None (get_ok s2 (k 50)));
  Sys.remove dir

let test_recover_corrupt () =
  let dir = Filename.temp_file "fv" "bad" in
  let oc = open_out_bin dir in
  output_string oc "NOTACKPT";
  close_out oc;
  (match Store.recover ~codec:Store.string_codec ~path:dir () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted corrupt checkpoint");
  Sys.remove dir

(* A checkpoint from the FVCKPT01 era must be called out as a format change,
   not lumped in with arbitrary corruption. *)
let test_recover_legacy_magic () =
  let path = Filename.temp_file "fv" "legacy" in
  let oc = open_out_bin path in
  output_string oc "FVCKPT01";
  output_string oc (String.make 12 '\000') (* old int32-version header *);
  close_out oc;
  (match Store.recover ~codec:Store.string_codec ~path () with
  | Ok _ -> Alcotest.fail "accepted a legacy checkpoint"
  | Error e ->
      let mentions_legacy =
        let n = String.length e and m = String.length "legacy" in
        let rec at i = i + m <= n && (String.sub e i m = "legacy" || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) ("explicit legacy error: " ^ e) true mentions_legacy);
  Sys.remove path

(* The verified epoch is an int64 on disk: versions past 2^31 must
   round-trip instead of truncating through int32. *)
let test_checkpoint_version_64bit () =
  let path = Filename.temp_file "fv" "v64" in
  let s = mk () in
  Store.put s (k 1) "x" ~aux:0L;
  let version = 0x1_2345_6789 in
  Store.checkpoint s ~path ~version;
  (match Store.recover ~codec:Store.string_codec ~path () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok (_, v) -> Alcotest.(check int) "version survives 32 bits" version v);
  Sys.remove path

let valid_checkpoint_bytes () =
  let path = Filename.temp_file "fv" "fuzzsrc" in
  let s = mk () in
  for i = 0 to 19 do
    Store.put s (k i) (Printf.sprintf "value-%03d" i) ~aux:(Int64.of_int i)
  done;
  Store.checkpoint s ~path ~version:5;
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  raw

(* Recovery is total: header fields claiming more records or longer
   payloads than the file holds (or negative ones) must be an [Error]
   before any allocation, never an exception. *)
let test_recover_hostile_lengths () =
  let base = valid_checkpoint_bytes () in
  let path = Filename.temp_file "fv" "hostile" in
  let try_recover raw =
    let oc = open_out_bin path in
    output_string oc raw;
    close_out oc;
    match Store.recover ~codec:Store.string_codec ~path () with
    | Ok _ -> Alcotest.fail "accepted a hostile checkpoint"
    | Error _ -> ()
  in
  let patch64 off v =
    let b = Bytes.of_string base in
    Bytes.set_int64_le b off v;
    Bytes.to_string b
  in
  let patch32 off v =
    let b = Bytes.of_string base in
    Bytes.set_int32_le b off v;
    Bytes.to_string b
  in
  try_recover (patch64 16 (-1L)) (* negative count *);
  try_recover (patch64 16 Int64.max_int) (* absurd count *);
  try_recover (patch64 16 1_000_000L) (* count beyond file size *);
  try_recover (patch64 8 (-3L)) (* negative version *);
  (* first record's len field: magic(8) header(16) key(34) aux(8) *)
  try_recover (patch32 66 (-5l)) (* negative len *);
  try_recover (patch32 66 Int32.max_int) (* len beyond file size *);
  try_recover (String.sub base 0 (String.length base - 3)) (* truncated *);
  Sys.remove path

let prop_recover_fuzz =
  let base = lazy (valid_checkpoint_bytes ()) in
  QCheck.Test.make ~name:"Store.recover never raises on mutated checkpoints"
    ~count:300
    QCheck.(
      pair (list (pair (int_bound 10_000) (int_bound 255))) (int_bound 10_000))
    (fun (mutations, cut) ->
      let base = Lazy.force base in
      let b = Bytes.of_string base in
      List.iter
        (fun (off, byte) ->
          if off < Bytes.length b then Bytes.set b off (Char.chr byte))
        mutations;
      let raw = Bytes.to_string b in
      let raw =
        if cut < String.length raw then String.sub raw 0 cut else raw
      in
      let path = Filename.temp_file "fv" "fuzz" in
      let oc = open_out_bin path in
      output_string oc raw;
      close_out oc;
      let ok =
        match Store.recover ~codec:Store.string_codec ~path () with
        | Ok _ | Error _ -> true
        | exception _ -> false
      in
      Sys.remove path;
      ok)

let test_spill () =
  let path = Filename.temp_file "fv" "spill" in
  let s =
    Store.create ~mutable_region_entries:8 ~spill:(path, 16)
      ~codec:Store.string_codec ()
  in
  for i = 0 to 63 do
    Store.put s (k i) (Printf.sprintf "value-%04d" i) ~aux:0L
  done;
  ok_unit "spill_now" (Store.spill_now s);
  (* all records must still be readable, some from disk *)
  for i = 0 to 63 do
    match get_ok s (k i) with
    | Some (v, _) ->
        Alcotest.(check string) "spilled value" (Printf.sprintf "value-%04d" i) v
    | None -> Alcotest.failf "lost key %d" i
  done;
  Alcotest.(check bool) "some reads hit the spill file" true
    ((Store.stats s).spill_reads > 0);
  Sys.remove path

let test_epoch_protection () =
  let e = Epoch_protection.create ~n_threads:2 in
  let fired = ref [] in
  Epoch_protection.acquire e ~tid:0;
  Epoch_protection.acquire e ~tid:1;
  ignore (Epoch_protection.bump e ~on_safe:(fun () -> fired := 1 :: !fired));
  Alcotest.(check (list int)) "not safe while thread 0 inside old epoch" []
    !fired;
  Epoch_protection.refresh e ~tid:0;
  Alcotest.(check (list int)) "still blocked on thread 1" [] !fired;
  Epoch_protection.refresh e ~tid:1;
  Alcotest.(check (list int)) "fires once all threads moved" [ 1 ] !fired;
  Epoch_protection.release e ~tid:0;
  Epoch_protection.release e ~tid:1;
  ignore (Epoch_protection.bump e ~on_safe:(fun () -> fired := 2 :: !fired));
  Alcotest.(check (list int)) "fires immediately when nobody is inside"
    [ 2; 1 ] !fired

let prop_model_check =
  (* differential test against a Hashtbl model *)
  QCheck.Test.make ~name:"store = hashtable model" ~count:60
    QCheck.(
      list
        (pair (int_bound 50)
           (make
              Gen.(
                oneof
                  [
                    return None;
                    map Option.some (string_size (return 4));
                  ]))))
    (fun ops ->
      let s = Store.create ~mutable_region_entries:8 ~codec:Store.string_codec () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (i, op) ->
          match op with
          | None -> (
              (* read and compare *)
              match (Store.get s (k i), Hashtbl.find_opt model i) with
              | Ok None, None -> ()
              | Ok (Some (v, _)), Some v' when v = v' -> ()
              | _ -> failwith "divergence")
          | Some v ->
              Store.put s (k i) v ~aux:0L;
              Hashtbl.replace model i v)
        ops;
      Hashtbl.fold
        (fun i v acc ->
          acc
          &&
          match Store.get s (k i) with
          | Ok (Some (v', _)) -> v = v'
          | Ok None | Error _ -> false)
        model true)

let suite =
  ( "kvstore",
    [
      Alcotest.test_case "put/get" `Quick test_put_get;
      Alcotest.test_case "cas" `Quick test_cas;
      Alcotest.test_case "rcu versions" `Quick test_rcu_versions;
      Alcotest.test_case "delete/iter" `Quick test_delete_iter;
      Alcotest.test_case "read-modify-write" `Quick test_update_rmw;
      Alcotest.test_case "checkpoint/recover" `Quick test_checkpoint_recover;
      Alcotest.test_case "corrupt checkpoint" `Quick test_recover_corrupt;
      Alcotest.test_case "legacy checkpoint magic" `Quick
        test_recover_legacy_magic;
      Alcotest.test_case "64-bit checkpoint version" `Quick
        test_checkpoint_version_64bit;
      Alcotest.test_case "hostile checkpoint lengths" `Quick
        test_recover_hostile_lengths;
      Alcotest.test_case "spill to disk" `Quick test_spill;
      Alcotest.test_case "epoch protection" `Quick test_epoch_protection;
      QCheck_alcotest.to_alcotest prop_model_check;
      QCheck_alcotest.to_alcotest prop_recover_fuzz;
    ] )

(* The store is shared state under OCaml 5 domains: striped locks must keep
   per-key operations atomic even with preemptive interleaving. *)
let test_domain_safety () =
  let s = Store.create ~codec:Store.string_codec () in
  let n_keys = 64 and per_domain = 20_000 in
  for i = 0 to n_keys - 1 do
    Store.put s (k i) "0" ~aux:0L
  done;
  (* each domain increments counters via try_cas retry loops *)
  let work () =
    let rng = Random.State.make_self_init () in
    let done_ = ref 0 in
    while !done_ < per_domain do
      let key = k (Random.State.int rng n_keys) in
      match Store.get s key with
      | Ok None | Error _ -> ()
      | Ok (Some (v, aux)) ->
          let v' = string_of_int (int_of_string v + 1) in
          if Store.try_cas s key ~expected_aux:aux v' ~aux:(Int64.succ aux)
          then incr done_
    done
  in
  let d1 = Domain.spawn work and d2 = Domain.spawn work in
  work ();
  Domain.join d1;
  Domain.join d2;
  (* every successful CAS bumped aux once; increments must all survive *)
  let total = ref 0L and count = ref 0 in
  ok_unit "iter_live"
    (Store.iter_live s (fun _ v aux ->
         total := Int64.add !total aux;
         count := !count + int_of_string v));
  Alcotest.(check int) "no lost updates (values)" (3 * per_domain) !count;
  Alcotest.(check int64) "no lost updates (aux)"
    (Int64.of_int (3 * per_domain))
    !total

(* Spilled reads share one in_channel. Stripe locks don't serialise gets of
   *different* keys, so two domains reading two spilled keys race seek_in
   against really_input_string: without the dedicated spill-channel lock
   each can be handed the other's bytes. *)
let test_spill_read_race () =
  let path = Filename.temp_file "fv" "spillrace" in
  let s =
    Store.create ~mutable_region_entries:4 ~spill:(path, 4)
      ~codec:Store.string_codec ()
  in
  let n_keys = 32 in
  for i = 0 to n_keys - 1 do
    Store.put s (k i) (Printf.sprintf "spilled-%04d" i) ~aux:0L
  done;
  ok_unit "spill_now" (Store.spill_now s);
  Alcotest.(check bool) "records actually spilled" true
    ((Store.stats s).spill_reads >= 0 && Store.length s = n_keys);
  (* hammer disjoint key sets from concurrent domains; every read must
     return its own key's payload, never a neighbour's bytes *)
  let mismatches = Atomic.make 0 in
  let work lo hi () =
    let rng = Random.State.make [| lo |] in
    for _ = 1 to 20_000 do
      let i = lo + Random.State.int rng (hi - lo) in
      match Store.get s (k i) with
      | Ok (Some (v, _)) when v = Printf.sprintf "spilled-%04d" i -> ()
      | Ok _ | Error _ -> Atomic.incr mismatches
    done
  in
  let d1 = Domain.spawn (work 0 (n_keys / 2)) in
  let d2 = Domain.spawn (work (n_keys / 2) n_keys) in
  work 0 n_keys ();
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no torn spilled reads" 0 (Atomic.get mismatches);
  Alcotest.(check bool) "reads hit the spill file" true
    ((Store.stats s).spill_reads > 0);
  Sys.remove path

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "domain safety" `Slow test_domain_safety;
        Alcotest.test_case "spill read race" `Quick test_spill_read_race;
      ] )
