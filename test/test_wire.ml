(* Wire-protocol properties: every message round-trips through
   encode -> frame extraction -> decode, under any stream chunking; and the
   decoders are total — truncated, corrupted or outright hostile payloads
   yield [Error], never an exception, never unbounded allocation. *)

module Wire = Fastver_net.Wire
module Frame = Fastver_net.Frame

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_mac = QCheck.Gen.(string_size (0 -- 48))
let gen_value = QCheck.Gen.(opt (string_size (0 -- 200)))
let gen_i64 = QCheck.Gen.(map Int64.of_int int)

let gen_metrics_format =
  QCheck.Gen.(oneofl [ Wire.Json; Wire.Prometheus ])

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun client -> Wire.Open_session { client }) (0 -- 0xFFFF);
        return Wire.Close_session;
        map2 (fun key nonce -> Wire.Get { key; nonce }) gen_i64 gen_i64;
        map3
          (fun key nonce (mac, value) -> Wire.Put { key; nonce; mac; value })
          gen_i64 gen_i64 (pair gen_mac gen_value);
        map3
          (fun start len nonce -> Wire.Scan { start; len; nonce })
          gen_i64 (0 -- 1000) gen_i64;
        return Wire.Verify;
        return Wire.Stats;
        map (fun format -> Wire.Metrics { format }) gen_metrics_format;
        map2
          (fun from_epoch term -> Wire.Subscribe { from_epoch; term })
          (0 -- 1_000_000) (0 -- 1_000_000);
        return Wire.Fetch_checkpoint;
        map
          (fun (term, sealed, priority, run_id) ->
            Wire.Announce_term { term; sealed; priority; run_id })
          (quad (0 -- 1_000_000)
             (map (fun s -> s - 1) (0 -- 1_000_000))
             (0 -- 1000) gen_i64);
        map2
          (fun term addr -> Wire.Promote { term; addr })
          (0 -- 1_000_000) (string_size (0 -- 48));
      ])

let gen_item =
  QCheck.Gen.(
    map
      (fun (key, value, epoch, mac) -> { Wire.key; value; epoch; mac })
      (quad gen_i64 gen_value (0 -- 1_000_000) gen_mac))

let gen_stats =
  QCheck.Gen.(
    map
      (fun (a, b, c, d) ->
        {
          Wire.ops = a;
          gets = b;
          puts = c;
          scans = d;
          verifies = a;
          fast_path = b;
          merkle_path = c;
          epoch = d;
        })
      (quad gen_i64 gen_i64 gen_i64 gen_i64))

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map (fun client -> Wire.Session_opened { client }) (0 -- 0xFFFF);
        return Wire.Session_closed;
        map2 (fun nonce item -> Wire.Got { nonce; item }) gen_i64 gen_item;
        map2 (fun nonce item -> Wire.Put_ok { nonce; item }) gen_i64 gen_item;
        map2
          (fun nonce items -> Wire.Scanned { nonce; items = Array.of_list items })
          gen_i64 (list_size (0 -- 12) gen_item);
        map2 (fun epoch cert -> Wire.Verified { epoch; cert }) (0 -- 1_000_000)
          gen_mac;
        map (fun s -> Wire.Stats_reply s) gen_stats;
        map2
          (fun format data -> Wire.Metrics_reply { format; data })
          gen_metrics_format
          (string_size (0 -- 400));
        map (fun e -> Wire.Error e) (string_size (0 -- 80));
        map3
          (fun from_epoch run_id term ->
            Wire.Subscribed { from_epoch; run_id; term })
          (0 -- 1_000_000) gen_i64 (0 -- 1_000_000);
        map3
          (fun generation files term ->
            Wire.Checkpoint_reply
              { generation; files = Array.of_list files; term })
          (0 -- 1_000_000)
          (list_size (0 -- 6)
             (pair (string_size (0 -- 24)) (string_size (0 -- 120))))
          (0 -- 1_000_000);
        map3
          (* the encoder requires the raw 32-byte data-key path *)
          (fun epoch key value -> Wire.Repl_op { epoch; key; value })
          (0 -- 1_000_000) (string_size (32 -- 32)) gen_value;
        map2
          (fun epoch ops ->
            Wire.Repl_batch { epoch; ops = Array.of_list ops })
          (0 -- 1_000_000)
          (list_size (0 -- 20) (pair (string_size (32 -- 32)) gen_value));
        map
          (fun ((epoch, cert, stream_mac), term) ->
            Wire.Repl_epoch { epoch; cert; stream_mac; term })
          (pair (triple (0 -- 1_000_000) gen_mac gen_mac) (0 -- 1_000_000));
        map
          (fun ((term, sealed, priority), (run_id, primary)) ->
            Wire.Term_info { term; sealed; priority; run_id; primary })
          (pair
             (triple (0 -- 1_000_000)
                (map (fun s -> s - 1) (0 -- 1_000_000))
                (0 -- 1000))
             (pair gen_i64 bool));
      ])

let arb_request =
  QCheck.make gen_request ~print:(Format.asprintf "%a" Wire.pp_request)

let arb_response =
  QCheck.make gen_response ~print:(Format.asprintf "%a" Wire.pp_response)

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)
(* ------------------------------------------------------------------ *)

(* Strip the length prefix with a Frame reader, as the real stack does. *)
let payload_of_frame frame =
  let r = Frame.create () in
  Frame.feed_string r frame;
  match Frame.next r with
  | Ok (Some p) -> p
  | Ok None -> failwith "frame incomplete"
  | Error e -> failwith e

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request encode|>decode = id" ~count:1000
    QCheck.(pair arb_request int64)
    (fun (req, id) ->
      Wire.decode_request (payload_of_frame (Wire.encode_request ~id req))
      = Ok (id, req))

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response encode|>decode = id" ~count:1000
    QCheck.(pair arb_response int64)
    (fun (resp, id) ->
      Wire.decode_response (payload_of_frame (Wire.encode_response ~id resp))
      = Ok (id, resp))

(* Any chunking of a message sequence yields the same frames. *)
let prop_chunked_feed =
  QCheck.Test.make ~name:"frame reader is chunking-invariant" ~count:200
    QCheck.(pair (small_list arb_request) (list small_nat))
    (fun (reqs, cuts) ->
      let stream =
        String.concat ""
          (List.mapi (fun i r -> Wire.encode_request ~id:(Int64.of_int i) r) reqs)
      in
      let r = Frame.create () in
      let got = ref [] in
      let pos = ref 0 in
      let take n =
        let n = min n (String.length stream - !pos) in
        Frame.feed_string r (String.sub stream !pos n);
        pos := !pos + n;
        let rec drain () =
          match Frame.next r with
          | Ok (Some p) ->
              got := Wire.decode_request p :: !got;
              drain ()
          | Ok None -> ()
          | Error e -> failwith e
        in
        drain ()
      in
      List.iter (fun c -> take (1 + c)) cuts;
      take (String.length stream);
      List.rev !got
      = List.mapi (fun i r -> Ok (Int64.of_int i, r)) reqs)

(* ------------------------------------------------------------------ *)
(* Hostile input: decoders must be total                               *)
(* ------------------------------------------------------------------ *)

let decodes_without_raising payload =
  match (Wire.decode_request payload, Wire.decode_response payload) with
  | (Ok _ | Error _), (Ok _ | Error _) -> true

let prop_truncation =
  QCheck.Test.make ~name:"truncated payloads never raise" ~count:1000
    QCheck.(triple arb_request arb_response (float_bound_inclusive 1.0))
    (fun (req, resp, frac) ->
      let check frame =
        let payload = payload_of_frame frame in
        let cut = int_of_float (frac *. float_of_int (String.length payload)) in
        let truncated = String.sub payload 0 cut in
        decodes_without_raising truncated
        && (cut = String.length payload
           || Result.is_error (Wire.decode_request truncated))
      in
      check (Wire.encode_request ~id:7L req)
      && check (Wire.encode_response ~id:7L resp))

let prop_corruption =
  QCheck.Test.make ~name:"corrupted payloads never raise" ~count:1000
    QCheck.(triple arb_response small_nat char)
    (fun (resp, pos, c) ->
      let payload = payload_of_frame (Wire.encode_response ~id:3L resp) in
      let b = Bytes.of_string payload in
      Bytes.set b (pos mod Bytes.length b) c;
      decodes_without_raising (Bytes.to_string b))

let prop_garbage =
  QCheck.Test.make ~name:"random garbage never raises" ~count:1000
    QCheck.(string_of_size QCheck.Gen.(0 -- 256))
    decodes_without_raising

(* Trailing bytes after a well-formed body are a protocol error. *)
let prop_trailing_junk =
  QCheck.Test.make ~name:"trailing bytes rejected" ~count:500 arb_request
    (fun req ->
      let payload = payload_of_frame (Wire.encode_request ~id:1L req) in
      Result.is_error (Wire.decode_request (payload ^ "x")))

let test_frame_length_bounds () =
  let mk len =
    let b = Buffer.create 8 in
    Buffer.add_char b (Char.chr (len land 0xff));
    Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
    Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
    Buffer.contents b
  in
  let r = Frame.create () in
  Frame.feed_string r (mk 5);
  (match Frame.next r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undersized frame length accepted");
  let r = Frame.create () in
  Frame.feed_string r (mk (Wire.max_frame + 1));
  (match Frame.next r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame length accepted");
  (* the error is sticky: the stream cannot be resynchronised *)
  match Frame.next r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "frame error must be sticky"

(* A Scanned response claiming 2^32-ish items must be rejected before any
   allocation proportional to the claim. *)
let test_scan_count_bomb () =
  let b = Buffer.create 32 in
  Buffer.add_string b "FV";
  Buffer.add_char b (Char.chr Wire.version);
  Buffer.add_char b '\x85' (* Scanned *);
  Buffer.add_string b (String.make 8 '\x00') (* id *);
  Buffer.add_string b (String.make 8 '\x00') (* nonce *);
  Buffer.add_string b "\xff\xff\xff\x7f" (* count *);
  let t0 = Unix.gettimeofday () in
  (match Wire.decode_response (Buffer.contents b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "item-count bomb accepted");
  if Unix.gettimeofday () -. t0 > 0.5 then
    Alcotest.fail "item-count bomb took too long"

(* A metrics request whose format byte is neither 0 nor 1 must be rejected,
   not mapped to some default rendering. *)
let test_bad_metrics_format () =
  let payload =
    payload_of_frame (Wire.encode_request ~id:9L (Wire.Metrics { format = Wire.Json }))
  in
  let b = Bytes.of_string payload in
  (* the format byte is the last body byte *)
  Bytes.set b (Bytes.length b - 1) '\x02';
  match Wire.decode_request (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown metrics format byte accepted"

(* ------------------------------------------------------------------ *)
(* Version-1 compatibility                                             *)
(* ------------------------------------------------------------------ *)

(* Hand-built v1 framings: the pre-election protocol carried no fencing
   term in Subscribe/Subscribed/Repl_epoch. A v2 decoder must accept them
   with [term = 0] ("before any election") — and because decoders reject
   trailing bytes, a v1 frame that smuggles the v2 term field in must
   error, not silently parse. *)

let le32 v =
  let b = Buffer.create 4 in
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.contents b

let le64 v =
  let b = Buffer.create 8 in
  Buffer.add_int64_le b v;
  Buffer.contents b

let v1_frame ~tag ~id body =
  Printf.sprintf "FV\x01%c%s%s" (Char.chr tag) (le64 id) body

let mac16 s = Printf.sprintf "%c%c%s"
    (Char.chr (String.length s land 0xff))
    (Char.chr ((String.length s lsr 8) land 0xff))
    s

let prop_v1_subscribe =
  QCheck.Test.make ~name:"v1 Subscribe decodes with term = 0" ~count:300
    QCheck.(pair (int_bound 1_000_000) int64)
    (fun (from_epoch, id) ->
      Wire.decode_request (v1_frame ~tag:0x09 ~id (le32 from_epoch))
      = Ok (id, Wire.Subscribe { from_epoch; term = 0 }))

let prop_v1_subscribe_trailing_term =
  QCheck.Test.make ~name:"v1 Subscribe with smuggled term field errors"
    ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (from_epoch, term) ->
      Result.is_error
        (Wire.decode_request
           (v1_frame ~tag:0x09 ~id:1L (le32 from_epoch ^ le32 term))))

let prop_v1_subscribed =
  QCheck.Test.make ~name:"v1 Subscribed decodes with term = 0" ~count:300
    QCheck.(pair (int_bound 1_000_000) int64)
    (fun (from_epoch, run_id) ->
      Wire.decode_response (v1_frame ~tag:0x89 ~id:2L (le32 from_epoch ^ le64 run_id))
      = Ok (2L, Wire.Subscribed { from_epoch; run_id; term = 0 }))

let prop_v1_repl_epoch =
  QCheck.Test.make ~name:"v1 Repl_epoch decodes with term = 0" ~count:300
    QCheck.(triple (int_bound 1_000_000)
              (string_of_size QCheck.Gen.(0 -- 48))
              (string_of_size QCheck.Gen.(0 -- 48)))
    (fun (epoch, cert, stream_mac) ->
      Wire.decode_response
        (v1_frame ~tag:0x8c ~id:3L (le32 epoch ^ mac16 cert ^ mac16 stream_mac))
      = Ok (3L, Wire.Repl_epoch { epoch; cert; stream_mac; term = 0 }))

let prop_v1_checkpoint_reply =
  QCheck.Test.make ~name:"v1 Checkpoint_reply decodes with term = 0"
    ~count:300
    QCheck.(pair (int_bound 1_000_000)
              (small_list (pair (string_of_size QCheck.Gen.(0 -- 24))
                             (string_of_size QCheck.Gen.(0 -- 64)))))
    (fun (generation, files) ->
      let body =
        le32 generation
        ^ le32 (List.length files)
        ^ String.concat ""
            (List.map (fun (n, d) -> mac16 n ^ le32 (String.length d) ^ d)
               files)
      in
      Wire.decode_response (v1_frame ~tag:0x8a ~id:5L body)
      = Ok (5L, Wire.Checkpoint_reply
                  { generation; files = Array.of_list files; term = 0 }))

(* A v2 frame in the old (term-less) framing is short, not ambiguous. *)
let test_v2_requires_term () =
  let frame = Printf.sprintf "FV\x02\x09%s%s" (le64 4L) (le32 17) in
  match Wire.decode_request frame with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v2 Subscribe without a term field accepted"

(* The Term_info primary flag is a strict 0/1 byte: any other value is a
   hostile peer, not a truthy boolean. *)
let test_term_info_bad_flag () =
  let payload =
    payload_of_frame
      (Wire.encode_response ~id:5L
         (Wire.Term_info
            { term = 3; sealed = 7; priority = 1; run_id = 9L; primary = false }))
  in
  let b = Bytes.of_string payload in
  Bytes.set b (Bytes.length b - 1) '\x02';
  match Wire.decode_response (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range primary flag accepted"

(* Hostile handshake/term fields: arbitrary u32 terms and i64 run-ids must
   decode totally (no exception, no huge allocation) whether or not the
   remaining body is well-formed. *)
let prop_hostile_election_fields =
  QCheck.Test.make ~name:"hostile election payloads never raise" ~count:500
    QCheck.(pair (oneofl [ 0x09; 0x0b; 0x0c; 0x89; 0x8c; 0x8e ])
              (string_of_size QCheck.Gen.(0 -- 64)))
    (fun (tag, body) ->
      decodes_without_raising (v1_frame ~tag ~id:0L body)
      && decodes_without_raising
           (Printf.sprintf "FV\x02%c%s%s" (Char.chr tag) (le64 0L) body))

let test_version_rejected () =
  let payload = payload_of_frame (Wire.encode_request ~id:0L Wire.Verify) in
  let b = Bytes.of_string payload in
  Bytes.set b 2 '\x63';
  match Wire.decode_request (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong protocol version accepted"

let suite =
  ( "wire",
    [
      Alcotest.test_case "frame length bounds" `Quick test_frame_length_bounds;
      Alcotest.test_case "scan count bomb" `Quick test_scan_count_bomb;
      Alcotest.test_case "bad version rejected" `Quick test_version_rejected;
      Alcotest.test_case "bad metrics format rejected" `Quick
        test_bad_metrics_format;
      Alcotest.test_case "v2 subscribe requires term" `Quick
        test_v2_requires_term;
      Alcotest.test_case "term-info flag strict" `Quick test_term_info_bad_flag;
      QCheck_alcotest.to_alcotest prop_v1_subscribe;
      QCheck_alcotest.to_alcotest prop_v1_subscribe_trailing_term;
      QCheck_alcotest.to_alcotest prop_v1_subscribed;
      QCheck_alcotest.to_alcotest prop_v1_repl_epoch;
      QCheck_alcotest.to_alcotest prop_v1_checkpoint_reply;
      QCheck_alcotest.to_alcotest prop_hostile_election_fields;
      QCheck_alcotest.to_alcotest prop_request_roundtrip;
      QCheck_alcotest.to_alcotest prop_response_roundtrip;
      QCheck_alcotest.to_alcotest prop_chunked_feed;
      QCheck_alcotest.to_alcotest prop_truncation;
      QCheck_alcotest.to_alcotest prop_corruption;
      QCheck_alcotest.to_alcotest prop_garbage;
      QCheck_alcotest.to_alcotest prop_trailing_junk;
    ] )
