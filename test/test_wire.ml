(* Wire-protocol properties: every message round-trips through
   encode -> frame extraction -> decode, under any stream chunking; and the
   decoders are total — truncated, corrupted or outright hostile payloads
   yield [Error], never an exception, never unbounded allocation. *)

module Wire = Fastver_net.Wire
module Frame = Fastver_net.Frame

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_mac = QCheck.Gen.(string_size (0 -- 48))
let gen_value = QCheck.Gen.(opt (string_size (0 -- 200)))
let gen_i64 = QCheck.Gen.(map Int64.of_int int)

let gen_metrics_format =
  QCheck.Gen.(oneofl [ Wire.Json; Wire.Prometheus ])

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun client -> Wire.Open_session { client }) (0 -- 0xFFFF);
        return Wire.Close_session;
        map2 (fun key nonce -> Wire.Get { key; nonce }) gen_i64 gen_i64;
        map3
          (fun key nonce (mac, value) -> Wire.Put { key; nonce; mac; value })
          gen_i64 gen_i64 (pair gen_mac gen_value);
        map3
          (fun start len nonce -> Wire.Scan { start; len; nonce })
          gen_i64 (0 -- 1000) gen_i64;
        return Wire.Verify;
        return Wire.Stats;
        map (fun format -> Wire.Metrics { format }) gen_metrics_format;
        map (fun from_epoch -> Wire.Subscribe { from_epoch }) (0 -- 1_000_000);
        return Wire.Fetch_checkpoint;
      ])

let gen_item =
  QCheck.Gen.(
    map
      (fun (key, value, epoch, mac) -> { Wire.key; value; epoch; mac })
      (quad gen_i64 gen_value (0 -- 1_000_000) gen_mac))

let gen_stats =
  QCheck.Gen.(
    map
      (fun (a, b, c, d) ->
        {
          Wire.ops = a;
          gets = b;
          puts = c;
          scans = d;
          verifies = a;
          fast_path = b;
          merkle_path = c;
          epoch = d;
        })
      (quad gen_i64 gen_i64 gen_i64 gen_i64))

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map (fun client -> Wire.Session_opened { client }) (0 -- 0xFFFF);
        return Wire.Session_closed;
        map2 (fun nonce item -> Wire.Got { nonce; item }) gen_i64 gen_item;
        map2 (fun nonce item -> Wire.Put_ok { nonce; item }) gen_i64 gen_item;
        map2
          (fun nonce items -> Wire.Scanned { nonce; items = Array.of_list items })
          gen_i64 (list_size (0 -- 12) gen_item);
        map2 (fun epoch cert -> Wire.Verified { epoch; cert }) (0 -- 1_000_000)
          gen_mac;
        map (fun s -> Wire.Stats_reply s) gen_stats;
        map2
          (fun format data -> Wire.Metrics_reply { format; data })
          gen_metrics_format
          (string_size (0 -- 400));
        map (fun e -> Wire.Error e) (string_size (0 -- 80));
        map2
          (fun from_epoch run_id -> Wire.Subscribed { from_epoch; run_id })
          (0 -- 1_000_000) gen_i64;
        map2
          (fun generation files ->
            Wire.Checkpoint_reply { generation; files = Array.of_list files })
          (0 -- 1_000_000)
          (list_size (0 -- 6)
             (pair (string_size (0 -- 24)) (string_size (0 -- 120))));
        map3
          (* the encoder requires the raw 32-byte data-key path *)
          (fun epoch key value -> Wire.Repl_op { epoch; key; value })
          (0 -- 1_000_000) (string_size (32 -- 32)) gen_value;
        map2
          (fun epoch ops ->
            Wire.Repl_batch { epoch; ops = Array.of_list ops })
          (0 -- 1_000_000)
          (list_size (0 -- 20) (pair (string_size (32 -- 32)) gen_value));
        map3
          (fun epoch cert stream_mac ->
            Wire.Repl_epoch { epoch; cert; stream_mac })
          (0 -- 1_000_000) gen_mac gen_mac;
      ])

let arb_request =
  QCheck.make gen_request ~print:(Format.asprintf "%a" Wire.pp_request)

let arb_response =
  QCheck.make gen_response ~print:(Format.asprintf "%a" Wire.pp_response)

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)
(* ------------------------------------------------------------------ *)

(* Strip the length prefix with a Frame reader, as the real stack does. *)
let payload_of_frame frame =
  let r = Frame.create () in
  Frame.feed_string r frame;
  match Frame.next r with
  | Ok (Some p) -> p
  | Ok None -> failwith "frame incomplete"
  | Error e -> failwith e

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request encode|>decode = id" ~count:1000
    QCheck.(pair arb_request int64)
    (fun (req, id) ->
      Wire.decode_request (payload_of_frame (Wire.encode_request ~id req))
      = Ok (id, req))

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response encode|>decode = id" ~count:1000
    QCheck.(pair arb_response int64)
    (fun (resp, id) ->
      Wire.decode_response (payload_of_frame (Wire.encode_response ~id resp))
      = Ok (id, resp))

(* Any chunking of a message sequence yields the same frames. *)
let prop_chunked_feed =
  QCheck.Test.make ~name:"frame reader is chunking-invariant" ~count:200
    QCheck.(pair (small_list arb_request) (list small_nat))
    (fun (reqs, cuts) ->
      let stream =
        String.concat ""
          (List.mapi (fun i r -> Wire.encode_request ~id:(Int64.of_int i) r) reqs)
      in
      let r = Frame.create () in
      let got = ref [] in
      let pos = ref 0 in
      let take n =
        let n = min n (String.length stream - !pos) in
        Frame.feed_string r (String.sub stream !pos n);
        pos := !pos + n;
        let rec drain () =
          match Frame.next r with
          | Ok (Some p) ->
              got := Wire.decode_request p :: !got;
              drain ()
          | Ok None -> ()
          | Error e -> failwith e
        in
        drain ()
      in
      List.iter (fun c -> take (1 + c)) cuts;
      take (String.length stream);
      List.rev !got
      = List.mapi (fun i r -> Ok (Int64.of_int i, r)) reqs)

(* ------------------------------------------------------------------ *)
(* Hostile input: decoders must be total                               *)
(* ------------------------------------------------------------------ *)

let decodes_without_raising payload =
  match (Wire.decode_request payload, Wire.decode_response payload) with
  | (Ok _ | Error _), (Ok _ | Error _) -> true

let prop_truncation =
  QCheck.Test.make ~name:"truncated payloads never raise" ~count:1000
    QCheck.(triple arb_request arb_response (float_bound_inclusive 1.0))
    (fun (req, resp, frac) ->
      let check frame =
        let payload = payload_of_frame frame in
        let cut = int_of_float (frac *. float_of_int (String.length payload)) in
        let truncated = String.sub payload 0 cut in
        decodes_without_raising truncated
        && (cut = String.length payload
           || Result.is_error (Wire.decode_request truncated))
      in
      check (Wire.encode_request ~id:7L req)
      && check (Wire.encode_response ~id:7L resp))

let prop_corruption =
  QCheck.Test.make ~name:"corrupted payloads never raise" ~count:1000
    QCheck.(triple arb_response small_nat char)
    (fun (resp, pos, c) ->
      let payload = payload_of_frame (Wire.encode_response ~id:3L resp) in
      let b = Bytes.of_string payload in
      Bytes.set b (pos mod Bytes.length b) c;
      decodes_without_raising (Bytes.to_string b))

let prop_garbage =
  QCheck.Test.make ~name:"random garbage never raises" ~count:1000
    QCheck.(string_of_size QCheck.Gen.(0 -- 256))
    decodes_without_raising

(* Trailing bytes after a well-formed body are a protocol error. *)
let prop_trailing_junk =
  QCheck.Test.make ~name:"trailing bytes rejected" ~count:500 arb_request
    (fun req ->
      let payload = payload_of_frame (Wire.encode_request ~id:1L req) in
      Result.is_error (Wire.decode_request (payload ^ "x")))

let test_frame_length_bounds () =
  let mk len =
    let b = Buffer.create 8 in
    Buffer.add_char b (Char.chr (len land 0xff));
    Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
    Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
    Buffer.contents b
  in
  let r = Frame.create () in
  Frame.feed_string r (mk 5);
  (match Frame.next r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undersized frame length accepted");
  let r = Frame.create () in
  Frame.feed_string r (mk (Wire.max_frame + 1));
  (match Frame.next r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame length accepted");
  (* the error is sticky: the stream cannot be resynchronised *)
  match Frame.next r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "frame error must be sticky"

(* A Scanned response claiming 2^32-ish items must be rejected before any
   allocation proportional to the claim. *)
let test_scan_count_bomb () =
  let b = Buffer.create 32 in
  Buffer.add_string b "FV";
  Buffer.add_char b (Char.chr Wire.version);
  Buffer.add_char b '\x85' (* Scanned *);
  Buffer.add_string b (String.make 8 '\x00') (* id *);
  Buffer.add_string b (String.make 8 '\x00') (* nonce *);
  Buffer.add_string b "\xff\xff\xff\x7f" (* count *);
  let t0 = Unix.gettimeofday () in
  (match Wire.decode_response (Buffer.contents b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "item-count bomb accepted");
  if Unix.gettimeofday () -. t0 > 0.5 then
    Alcotest.fail "item-count bomb took too long"

(* A metrics request whose format byte is neither 0 nor 1 must be rejected,
   not mapped to some default rendering. *)
let test_bad_metrics_format () =
  let payload =
    payload_of_frame (Wire.encode_request ~id:9L (Wire.Metrics { format = Wire.Json }))
  in
  let b = Bytes.of_string payload in
  (* the format byte is the last body byte *)
  Bytes.set b (Bytes.length b - 1) '\x02';
  match Wire.decode_request (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown metrics format byte accepted"

let test_version_rejected () =
  let payload = payload_of_frame (Wire.encode_request ~id:0L Wire.Verify) in
  let b = Bytes.of_string payload in
  Bytes.set b 2 '\x63';
  match Wire.decode_request (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong protocol version accepted"

let suite =
  ( "wire",
    [
      Alcotest.test_case "frame length bounds" `Quick test_frame_length_bounds;
      Alcotest.test_case "scan count bomb" `Quick test_scan_count_bomb;
      Alcotest.test_case "bad version rejected" `Quick test_version_rejected;
      Alcotest.test_case "bad metrics format rejected" `Quick
        test_bad_metrics_format;
      QCheck_alcotest.to_alcotest prop_request_roundtrip;
      QCheck_alcotest.to_alcotest prop_response_roundtrip;
      QCheck_alcotest.to_alcotest prop_chunked_feed;
      QCheck_alcotest.to_alcotest prop_truncation;
      QCheck_alcotest.to_alcotest prop_corruption;
      QCheck_alcotest.to_alcotest prop_garbage;
      QCheck_alcotest.to_alcotest prop_trailing_junk;
    ] )
