(* The authenticated cold tier (lib/cold).

   Coverage: append/get round trips across segment rotation; tamper
   detection for every interesting byte region — record value, the
   aux/evict-timestamp word, the key, and the sealed-segment footer —
   surfacing as [`Fail]/[Error], never a wrong value; codec totality under
   QCheck (hostile lengths, truncation, single-byte mutations); the
   GC/retire/stale protocol; concurrent reads from different segments; the
   larger-than-memory path through the full Fastver stack with verification
   on; and misconfiguration totality (spill or cold tier absent). *)

let ckpt t ~dir =
  match Fastver.checkpoint t ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "checkpoint: %s" e

open Fastver_kvstore
module Cold = Fastver_cold.Cold
module Segment = Fastver_cold.Segment

let secret = "test-cold-secret"

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  Ckpt_io.remove_tree dir;
  dir

let cold_cfg ?(segment_bytes = 1024) dir =
  { Cold.dir; mac_secret = secret; segment_bytes }

let create_ok cfg =
  match Cold.create cfg with
  | Ok c -> c
  | Error e -> Alcotest.failf "Cold.create: %s" e

let append_ok c ~key ~aux ~value =
  match Cold.append c ~key ~aux ~value with
  | Ok r -> r
  | Error e -> Alcotest.failf "Cold.append: %s" e

let k i = Key.of_int64 (Int64.of_int i)
let seg_path dir id = Filename.concat dir (Printf.sprintf "seg-%08d.cold" id)

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  (match Unix.read fd b 0 1 with
  | 1 -> ()
  | _ -> Alcotest.failf "flip_byte: short read at %d in %s" off path);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let value_of i = Printf.sprintf "cold-value-%06d" i
let aux_of i = Int64.of_int (1_000 + i)

(* ------------------------------------------------------------------ *)
(* Round trips                                                        *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let dir = fresh_dir "fv-cold-rt" in
  let c = create_ok (cold_cfg dir) in
  let n = 50 in
  let refs =
    Array.init n (fun i ->
        append_ok c ~key:(k i) ~aux:(aux_of i) ~value:(value_of i))
  in
  Cold.flush c;
  Array.iteri
    (fun i r ->
      match Cold.get c ~key:(k i) r with
      | Ok (v, aux) ->
          Alcotest.(check string) "value round trip" (value_of i) v;
          Alcotest.(check int64) "aux round trip" (aux_of i) aux
      | Error (`Fail e) -> Alcotest.failf "get %d: %s" i e
      | Error `Stale -> Alcotest.failf "get %d: stale" i)
    refs;
  Array.iter
    (fun r ->
      match Cold.validate_ref c r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "validate_ref: %s" e)
    refs;
  let st = Cold.stats c in
  Alcotest.(check int) "every append counted" n st.Cold.writes;
  Alcotest.(check int) "every get counted" n st.Cold.reads;
  Alcotest.(check bool) "rotation sealed segments" true (st.Cold.segments > 1);
  Alcotest.(check int) "clean tier" 0 st.Cold.scrub_failures;
  (match Cold.scrub c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scrub of a clean tier: %s" e);
  Cold.close c

(* A second open on the same directory without a manifest must refuse (the
   segments were never committed) unless told to clear the strays. *)
let test_reopen_requires_manifest () =
  let dir = fresh_dir "fv-cold-reopen" in
  let c = create_ok (cold_cfg dir) in
  ignore (append_ok c ~key:(k 1) ~aux:1L ~value:"v");
  Cold.flush c;
  Cold.close c;
  (match Cold.create (cold_cfg dir) with
  | Ok _ -> Alcotest.fail "create over leftover segments succeeded"
  | Error _ -> ());
  let c2 =
    match Cold.create ~clear_stray:true (cold_cfg dir) with
    | Ok c -> c
    | Error e -> Alcotest.failf "create ~clear_stray: %s" e
  in
  Alcotest.(check int) "strays cleared" 0 (Cold.stats c2).Cold.live_bytes;
  Cold.close c2

(* Manifest round trip: recover truncates the uncommitted tail. *)
let test_recover_truncates_uncommitted () =
  let dir = fresh_dir "fv-cold-trunc" in
  let c = create_ok (cold_cfg dir) in
  let committed =
    Array.init 5 (fun i ->
        append_ok c ~key:(k i) ~aux:(aux_of i) ~value:(value_of i))
  in
  let manifest = Cold.manifest_encode c in
  (* appended after the manifest: uncommitted, must vanish on recover *)
  let stray = append_ok c ~key:(k 99) ~aux:99L ~value:"uncommitted" in
  Cold.close c;
  let c2 =
    match Cold.recover (cold_cfg dir) ~manifest with
    | Ok c -> c
    | Error e -> Alcotest.failf "recover: %s" e
  in
  Array.iteri
    (fun i r ->
      match Cold.get c2 ~key:(k i) r with
      | Ok (v, _) -> Alcotest.(check string) "committed survives" (value_of i) v
      | Error (`Fail e) -> Alcotest.failf "committed get %d: %s" i e
      | Error `Stale -> Alcotest.failf "committed get %d stale" i)
    committed;
  (match Cold.get c2 ~key:(k 99) stray with
  | Ok _ -> Alcotest.fail "uncommitted tail survived recovery"
  | Error _ -> ());
  Cold.close c2

(* ------------------------------------------------------------------ *)
(* Tamper detection (acceptance: body, timestamp, footer)             *)
(* ------------------------------------------------------------------ *)

(* Record layout offsets within a segment file: the record starts at
   [r.off]; key at +0, aux at +34, vlen at +42, value at +46. *)
let mk_tampered_tier name =
  let dir = fresh_dir name in
  let c = create_ok (cold_cfg dir) in
  let refs =
    Array.init 6 (fun i ->
        append_ok c ~key:(k i) ~aux:(aux_of i) ~value:(value_of i))
  in
  Cold.flush c;
  (dir, c, refs)

let expect_fail label = function
  | Error (`Fail _) -> ()
  | Error `Stale -> Alcotest.failf "%s: stale, expected integrity failure" label
  | Ok _ -> Alcotest.failf "%s: tampered read returned Ok" label

let test_tamper_value_body () =
  let dir, c, refs = mk_tampered_tier "fv-cold-tamper-body" in
  let r = refs.(2) in
  flip_byte (seg_path dir r.Cold.seg) (r.Cold.off + 46);
  expect_fail "flipped value byte" (Cold.get c ~key:(k 2) r);
  Alcotest.(check bool) "failure counted" true
    ((Cold.stats c).Cold.scrub_failures > 0);
  (* neighbours are untouched *)
  (match Cold.get c ~key:(k 1) refs.(1) with
  | Ok (v, _) -> Alcotest.(check string) "neighbour intact" (value_of 1) v
  | Error _ -> Alcotest.fail "neighbour read failed");
  Cold.close c

let test_tamper_timestamp () =
  let dir, c, refs = mk_tampered_tier "fv-cold-tamper-aux" in
  let r = refs.(3) in
  (* the aux word (Blum tier bit + evict timestamp) lives at +34 *)
  flip_byte (seg_path dir r.Cold.seg) (r.Cold.off + 34);
  expect_fail "flipped timestamp byte" (Cold.get c ~key:(k 3) r);
  Cold.close c

let test_tamper_key () =
  let dir, c, refs = mk_tampered_tier "fv-cold-tamper-key" in
  let r = refs.(4) in
  flip_byte (seg_path dir r.Cold.seg) (r.Cold.off + 8);
  expect_fail "flipped key byte" (Cold.get c ~key:(k 4) r);
  Cold.close c

let test_tamper_footer () =
  let dir = fresh_dir "fv-cold-tamper-footer" in
  let c = create_ok (cold_cfg ~segment_bytes:256 dir) in
  (* enough appends to seal segment 0 and move on *)
  let refs =
    Array.init 12 (fun i ->
        append_ok c ~key:(k i) ~aux:(aux_of i) ~value:(value_of i))
  in
  Alcotest.(check bool) "segment 0 sealed" true
    (Array.exists (fun r -> r.Cold.seg > 0) refs);
  (match Cold.scrub c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pre-tamper scrub: %s" e);
  let manifest = Cold.manifest_encode c in
  (* flip a byte inside the sealed footer (last [footer_len] bytes) *)
  let p0 = seg_path dir 0 in
  let size = (Unix.stat p0).Unix.st_size in
  flip_byte p0 (size - Segment.footer_len + 20);
  (match Cold.scrub c with
  | Ok () -> Alcotest.fail "scrub accepted a tampered footer"
  | Error _ -> ());
  Alcotest.(check bool) "footer failure counted" true
    ((Cold.stats c).Cold.scrub_failures > 0);
  Cold.close c;
  (* recovery must reject the tampered footer, too *)
  (match Cold.recover (cold_cfg ~segment_bytes:256 dir) ~manifest with
  | Ok _ -> Alcotest.fail "recover accepted a tampered footer"
  | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Codec totality (QCheck)                                            *)
(* ------------------------------------------------------------------ *)

let prop_decode_record_total =
  QCheck.Test.make ~name:"Segment.decode_record total on random bytes"
    ~count:400
    QCheck.(string_of_size Gen.(int_bound 300))
    (fun s ->
      match Segment.decode_record ~mac_secret:secret s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let prop_decode_footer_total =
  QCheck.Test.make ~name:"Segment.decode_footer total on random bytes"
    ~count:400
    QCheck.(string_of_size Gen.(int_bound 150))
    (fun s ->
      match Segment.decode_footer ~mac_secret:secret s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let prop_record_flip_detected =
  QCheck.Test.make ~name:"one flipped byte in a record is an Error"
    ~count:300
    QCheck.(triple (string_of_size Gen.(int_bound 64)) small_nat small_nat)
    (fun (value, pos, x) ->
      let enc =
        Segment.encode_record ~mac_secret:secret ~key:(k 42)
          ~aux:0x7777_0042L ~value
      in
      let i = pos mod String.length enc in
      let b = Bytes.of_string enc in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 + (x mod 255))));
      match Segment.decode_record ~mac_secret:secret (Bytes.to_string b) with
      | Error _ -> true
      | Ok _ -> false
      | exception _ -> false)

let prop_footer_flip_detected =
  QCheck.Test.make ~name:"one flipped byte in a footer is an Error"
    ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (pos, x) ->
      let enc =
        Segment.encode_footer ~mac_secret:secret ~n_records:7L ~data_len:900L
          ~summary:(String.init 16 (fun i -> Char.chr (i * 5)))
      in
      let i = pos mod String.length enc in
      let b = Bytes.of_string enc in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 + (x mod 255))));
      match Segment.decode_footer ~mac_secret:secret (Bytes.to_string b) with
      | Error _ -> true
      | Ok _ -> false
      | exception _ -> false)

(* Every strict prefix of a valid record or footer is an [Error]. *)
let test_codec_truncation () =
  let rec_enc =
    Segment.encode_record ~mac_secret:secret ~key:(k 7) ~aux:9L
      ~value:"truncate-me"
  in
  for l = 0 to String.length rec_enc - 1 do
    match Segment.decode_record ~mac_secret:secret (String.sub rec_enc 0 l) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "record prefix of %d bytes decoded" l
    | exception e ->
        Alcotest.failf "record prefix of %d bytes raised %s" l
          (Printexc.to_string e)
  done;
  let f_enc =
    Segment.encode_footer ~mac_secret:secret ~n_records:1L ~data_len:100L
      ~summary:(String.make 16 '\x01')
  in
  for l = 0 to String.length f_enc - 1 do
    match Segment.decode_footer ~mac_secret:secret (String.sub f_enc 0 l) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "footer prefix of %d bytes decoded" l
    | exception e ->
        Alcotest.failf "footer prefix of %d bytes raised %s" l
          (Printexc.to_string e)
  done

(* Hostile references: get/validate_ref are total on any (seg, off, len). *)
let prop_hostile_refs_total =
  QCheck.Test.make ~name:"Cold.get total on hostile references" ~count:200
    QCheck.(triple small_nat int int)
    (fun (seg, off, len) ->
      let dir = fresh_dir "fv-cold-hostile" in
      let c = create_ok (cold_cfg dir) in
      ignore (append_ok c ~key:(k 0) ~aux:0L ~value:"x");
      let r = { Cold.seg; off; len } in
      let ok =
        (match Cold.get c ~key:(k 0) r with
         | Ok _ | Error (`Fail _) | Error `Stale -> true
         | exception _ -> false)
        &&
        match Cold.validate_ref c r with
        | Ok _ | Error _ -> true
        | exception _ -> false
      in
      Cold.close c;
      ok)

(* ------------------------------------------------------------------ *)
(* GC / retirement / stale protocol                                   *)
(* ------------------------------------------------------------------ *)

let test_gc_retire_stale () =
  let dir = fresh_dir "fv-cold-gc" in
  let c = create_ok (cold_cfg ~segment_bytes:512 dir) in
  let refs =
    Array.init 30 (fun i ->
        append_ok c ~key:(k i) ~aux:(aux_of i) ~value:(value_of i))
  in
  Alcotest.(check bool) "several segments" true
    ((Cold.stats c).Cold.segments > 2);
  (* everything in segment 0 dies *)
  let seg0 = Array.to_list refs |> List.filter (fun r -> r.Cold.seg = 0) in
  List.iter (Cold.note_dead c) seg0;
  Alcotest.(check bool) "dead bytes accounted" true
    ((Cold.stats c).Cold.dead_bytes > 0);
  let cands = Cold.gc_candidates c ~min_dead_ratio:0.9 in
  Alcotest.(check bool) "fully-dead segment is a candidate" true
    (List.mem 0 cands);
  Alcotest.(check bool) "fully-live segments are not candidates" true
    (List.for_all (fun id -> id = 0) cands);
  Cold.retire_segments c [ 0 ];
  (* no checkpoint ever committed: the file goes away immediately and the
     old reference turns stale, not wrong *)
  Alcotest.(check bool) "segment file unlinked" false
    (Sys.file_exists (seg_path dir 0));
  (match Cold.get c ~key:(k 0) (List.hd seg0) with
  | Error `Stale -> ()
  | Ok _ -> Alcotest.fail "retired segment still served a read"
  | Error (`Fail e) -> Alcotest.failf "expected stale, got failure: %s" e);
  (* records in other segments are unaffected *)
  Array.iteri
    (fun i r ->
      if r.Cold.seg <> 0 then
        match Cold.get c ~key:(k i) r with
        | Ok (v, _) -> Alcotest.(check string) "survivor intact" (value_of i) v
        | Error _ -> Alcotest.failf "survivor read %d failed" i)
    refs;
  Cold.close c

(* Store-level compaction: overwriting demoted records leaves dead bytes;
   compact_cold rewrites the live ones and retires the carcasses; every
   value still reads back authenticated. *)
let test_store_compaction () =
  let dir = fresh_dir "fv-cold-compact" in
  let c = create_ok (cold_cfg ~segment_bytes:512 dir) in
  let s =
    Store.create ~mutable_region_entries:4 ~cold:c ~codec:Store.string_codec ()
  in
  for i = 0 to 63 do
    Store.put s (k i) (value_of i) ~aux:(aux_of i)
  done;
  (match Store.demote_now s ~budget:0 with
  | Ok n -> Alcotest.(check bool) "records demoted" true (n > 0)
  | Error e -> Alcotest.failf "demote_now: %s" e);
  (* supersede half the demoted records: their cold bytes are now dead *)
  for i = 0 to 31 do
    Store.put s (k i) ("fresh-" ^ value_of i) ~aux:(aux_of i)
  done;
  Alcotest.(check bool) "supersession left dead bytes" true
    ((Cold.stats c).Cold.dead_bytes > 0);
  (match Store.compact_cold s ~min_dead_ratio:0.3 with
  | Ok n -> Alcotest.(check bool) "compaction rewrote live records" true (n > 0)
  | Error e -> Alcotest.failf "compact_cold: %s" e);
  Alcotest.(check bool) "rewrites counted" true
    ((Cold.stats c).Cold.gc_rewrites > 0);
  for i = 0 to 63 do
    let expect = if i <= 31 then "fresh-" ^ value_of i else value_of i in
    match Store.get s (k i) with
    | Ok (Some (v, _)) ->
        Alcotest.(check string) "value survives compaction" expect v
    | Ok None -> Alcotest.failf "key %d lost by compaction" i
    | Error e -> Alcotest.failf "get %d after compaction: %s" i e
  done

(* ------------------------------------------------------------------ *)
(* Concurrency: reads from different segments do not contend           *)
(* ------------------------------------------------------------------ *)

let test_concurrent_segment_reads () =
  let dir = fresh_dir "fv-cold-conc" in
  let c = create_ok (cold_cfg ~segment_bytes:512 dir) in
  let n = 40 in
  let refs =
    Array.init n (fun i ->
        append_ok c ~key:(k i) ~aux:(aux_of i) ~value:(value_of i))
  in
  Cold.flush c;
  let fails = Atomic.make 0 in
  let reader lo hi =
    Domain.spawn (fun () ->
        for _round = 1 to 100 do
          for i = lo to hi do
            match Cold.get c ~key:(k i) refs.(i) with
            | Ok (v, aux)
              when String.equal v (value_of i) && Int64.equal aux (aux_of i)
              ->
                ()
            | _ -> Atomic.incr fails
          done
        done)
  in
  let d1 = reader 0 ((n / 2) - 1) and d2 = reader (n / 2) (n - 1) in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "all concurrent reads authenticated" 0
    (Atomic.get fails);
  Cold.close c

(* ------------------------------------------------------------------ *)
(* Misconfiguration is a total Error, never an exception              *)
(* ------------------------------------------------------------------ *)

let test_spill_unconfigured_total () =
  let s = Store.create ~codec:Store.string_codec () in
  Store.put s (k 1) "x" ~aux:0L;
  match Store.spill_now s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "spill_now succeeded without a spill file"

let test_cold_refs_need_tier () =
  let cdir = fresh_dir "fv-cold-misconf-tier" in
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "fv-cold-misconf.ckpt"
  in
  if Sys.file_exists path then Sys.remove path;
  let c = create_ok (cold_cfg cdir) in
  let s =
    Store.create ~mutable_region_entries:4 ~cold:c ~codec:Store.string_codec ()
  in
  for i = 0 to 31 do
    Store.put s (k i) (value_of i) ~aux:(aux_of i)
  done;
  (match Store.demote_now s ~budget:0 with
  | Ok n -> Alcotest.(check bool) "demoted before checkpoint" true (n > 0)
  | Error e -> Alcotest.failf "demote_now: %s" e);
  Store.checkpoint s ~path ~version:1;
  (* recovering a checkpoint full of cold references without a cold tier
     must be a total configuration error *)
  (match Store.recover ~codec:Store.string_codec ~path () with
  | Ok _ -> Alcotest.fail "cold references recovered without a cold tier"
  | Error _ -> ()
  | exception e ->
      Alcotest.failf "recover raised instead of Error: %s"
        (Printexc.to_string e));
  Sys.remove path;
  Cold.close c

let test_demote_without_tier_is_noop () =
  let s = Store.create ~codec:Store.string_codec () in
  Store.put s (k 1) "x" ~aux:0L;
  match Store.demote_now s ~budget:0 with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "demoted %d records with no cold tier" n
  | Error e -> Alcotest.failf "demote_now without tier: %s" e

(* ------------------------------------------------------------------ *)
(* Metrics surface                                                    *)
(* ------------------------------------------------------------------ *)

let cold_metric_names =
  [
    "fastver_cold_segments";
    "fastver_cold_dead_segments";
    "fastver_cold_live_bytes";
    "fastver_cold_dead_bytes";
    "fastver_cold_reads_total";
    "fastver_cold_writes_total";
    "fastver_cold_gc_rewrites_total";
    "fastver_cold_scrub_failures_total";
    "fastver_cold_read_wait_seconds";
  ]

(* The documented names must be present even with the tier disabled, so the
   check.sh metrics leg (and any dashboard) never sees a hole. *)
let test_metrics_always_registered () =
  let reg = Fastver_obs.Registry.create () in
  Cold.wire_metrics None reg;
  let names =
    List.map (fun (n, _, _) -> n) (Fastver_obs.Registry.dump reg)
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("registered with tier off: " ^ n) true
        (List.mem n names))
    cold_metric_names

let test_metrics_live_values () =
  let dir = fresh_dir "fv-cold-metrics" in
  let c = create_ok (cold_cfg dir) in
  let reg = Fastver_obs.Registry.create () in
  Cold.wire_metrics (Some c) reg;
  let r = append_ok c ~key:(k 1) ~aux:1L ~value:"metric" in
  (match Cold.get c ~key:(k 1) r with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "get for metrics");
  let find name =
    List.find_map
      (fun (n, _, v) -> if String.equal n name then Some v else None)
      (Fastver_obs.Registry.dump reg)
  in
  (match find "fastver_cold_writes_total" with
  | Some (Fastver_obs.Registry.Counter_v n) ->
      Alcotest.(check int) "writes metric tracks appends" 1 n
  | _ -> Alcotest.fail "writes metric missing or mistyped");
  (match find "fastver_cold_reads_total" with
  | Some (Fastver_obs.Registry.Counter_v n) ->
      Alcotest.(check int) "reads metric tracks gets" 1 n
  | _ -> Alcotest.fail "reads metric missing or mistyped");
  Cold.close c

(* ------------------------------------------------------------------ *)
(* Larger than memory, end to end through the stack                   *)
(* ------------------------------------------------------------------ *)

let fv_config cdir =
  {
    Fastver.Config.default with
    n_workers = 2;
    batch_size = 0;
    frontier_levels = 4;
    cost_model = Cost_model.zero;
    cold_dir = Some cdir;
    cold_threshold = 32;
    cold_segment_bytes = 2048;
    cold_gc_ratio = 0.4;
  }

let test_larger_than_memory () =
  let cdir = fresh_dir "fv-cold-e2e-tier" in
  let dir = fresh_dir "fv-cold-e2e-ckpt" in
  let config = fv_config cdir in
  let t = Fastver.create ~config () in
  (* 8x the cold threshold: most of the dataset must live on disk *)
  let n = 8 * config.cold_threshold in
  Fastver.load t (Array.init n (fun i -> (Int64.of_int i, value_of i)));
  ignore (Fastver.verify t);
  let cs =
    match Fastver.cold_stats t with
    | Some cs -> cs
    | None -> Alcotest.fail "cold tier not attached"
  in
  Alcotest.(check bool) "bulk of the dataset demoted" true
    (cs.Cold.writes >= n / 2);
  Alcotest.(check bool) "rotation produced segments" true (cs.Cold.segments > 1);
  (* every record reads back through the authenticated cold path *)
  for i = 0 to n - 1 do
    Alcotest.(check (option string)) "value survives demotion"
      (Some (value_of i))
      (Fastver.get t (Int64.of_int i))
  done;
  let cs = Option.get (Fastver.cold_stats t) in
  Alcotest.(check bool) "reads served from cold" true (cs.Cold.reads > 0);
  Alcotest.(check int) "no integrity failures" 0 cs.Cold.scrub_failures;
  (* re-admitted records verify like any Blum add *)
  ignore (Fastver.verify t);
  (* checkpoint/recover round trip carries the cold manifest *)
  ckpt t ~dir;
  (match Fastver.recover ~config ~dir () with
  | Error e -> Alcotest.failf "recover with cold tier: %s" e
  | Ok t2 ->
      for i = 0 to n - 1 do
        Alcotest.(check (option string)) "value survives recovery"
          (Some (value_of i))
          (Fastver.get t2 (Int64.of_int i))
      done;
      ignore (Fastver.verify t2);
      (* keep serving: overwrites supersede cold records, maintenance
         (demotion + GC) runs behind the next scans, reads stay honest *)
      for i = 0 to (n / 2) - 1 do
        Fastver.put t2 (Int64.of_int i) ("fresh-" ^ value_of i)
      done;
      ignore (Fastver.verify t2);
      ignore (Fastver.verify t2);
      for i = 0 to n - 1 do
        let expect =
          if i < n / 2 then "fresh-" ^ value_of i else value_of i
        in
        Alcotest.(check (option string)) "value after churn" (Some expect)
          (Fastver.get t2 (Int64.of_int i))
      done;
      let cs2 = Option.get (Fastver.cold_stats t2) in
      Alcotest.(check int) "still no integrity failures" 0
        cs2.Cold.scrub_failures);
  Ckpt_io.remove_tree dir;
  Ckpt_io.remove_tree cdir

let suite =
  ( "cold",
    [
      Alcotest.test_case "append/get round trip" `Quick test_roundtrip;
      Alcotest.test_case "reopen requires manifest" `Quick
        test_reopen_requires_manifest;
      Alcotest.test_case "recover truncates uncommitted tail" `Quick
        test_recover_truncates_uncommitted;
      Alcotest.test_case "tamper: record value body" `Quick
        test_tamper_value_body;
      Alcotest.test_case "tamper: evict timestamp" `Quick test_tamper_timestamp;
      Alcotest.test_case "tamper: record key" `Quick test_tamper_key;
      Alcotest.test_case "tamper: sealed footer" `Quick test_tamper_footer;
      Alcotest.test_case "codec: truncation" `Quick test_codec_truncation;
      QCheck_alcotest.to_alcotest prop_decode_record_total;
      QCheck_alcotest.to_alcotest prop_decode_footer_total;
      QCheck_alcotest.to_alcotest prop_record_flip_detected;
      QCheck_alcotest.to_alcotest prop_footer_flip_detected;
      QCheck_alcotest.to_alcotest prop_hostile_refs_total;
      Alcotest.test_case "gc: retire and stale refs" `Quick test_gc_retire_stale;
      Alcotest.test_case "gc: store compaction" `Quick test_store_compaction;
      Alcotest.test_case "concurrent segment reads" `Quick
        test_concurrent_segment_reads;
      Alcotest.test_case "spill unconfigured is total" `Quick
        test_spill_unconfigured_total;
      Alcotest.test_case "cold refs need a tier" `Quick test_cold_refs_need_tier;
      Alcotest.test_case "demote without tier is a no-op" `Quick
        test_demote_without_tier_is_noop;
      Alcotest.test_case "metrics registered with tier off" `Quick
        test_metrics_always_registered;
      Alcotest.test_case "metrics track live tier" `Quick
        test_metrics_live_values;
      Alcotest.test_case "larger than memory end to end" `Quick
        test_larger_than_memory;
    ] )
