(* The binary verification-log codec (the enclave ABI). *)

open Fastver_verifier

let op = Alcotest.testable Oplog.pp_op Oplog.equal_op

let sample_ops =
  let k = Key.of_int64 42L and p = Key.of_bit_string "0101" in
  let node =
    Value.Node
      {
        left = Some { key = Key.of_int64 1L; hash = String.make 32 'h'; in_blum = true };
        right = None;
      }
  in
  [
    Oplog.Add_m { key = k; value = Value.Data (Some "v") ; parent = p };
    Oplog.Add_m { key = p; value = node; parent = Key.root };
    Oplog.Evict_m { key = k; parent = p };
    Oplog.Add_b { key = k; value = Value.Data None; timestamp = Timestamp.make ~epoch:3 ~counter:7 };
    Oplog.Evict_b { key = k; timestamp = Timestamp.make ~epoch:3 ~counter:8 };
    Oplog.Evict_bm { key = k; timestamp = 99L; parent = p };
    Oplog.Vget { key = k; value = Some "abc" };
    Oplog.Vget { key = k; value = None };
    Oplog.Vget_absent { key = k; parent = p };
    Oplog.Vput { key = k; value = Some "" };
    Oplog.Close_epoch 12;
  ]

let test_roundtrip () =
  let buf = Buffer.create 256 in
  List.iter (Oplog.encode buf) sample_ops;
  match Oplog.decode_all (Buffer.contents buf) with
  | Error e -> Alcotest.failf "decode_all: %s" e
  | Ok ops -> Alcotest.(check (list op)) "roundtrip" sample_ops ops

let test_adversarial_input () =
  (* decode must fail cleanly, not raise or read out of bounds *)
  let buf = Buffer.create 64 in
  Oplog.encode buf (List.hd sample_ops);
  let good = Buffer.contents buf in
  let cases =
    [
      "";
      "Z";
      String.sub good 0 (String.length good - 1) (* truncated *);
      "M" ^ String.make 10 '\x00' (* short key *);
      (* huge length prefix on the value *)
      (let b = Bytes.of_string good in
       Bytes.set_int32_le b (1 + 34 + 34) 0x7fffffffl;
       Bytes.to_string b);
    ]
  in
  List.iter
    (fun s ->
      match Oplog.decode s ~pos:0 with
      | Ok _ when String.equal s good -> ()
      | Ok _ -> Alcotest.failf "decoded malformed input %S" s
      | Error _ -> ())
    cases;
  (* non-canonical key encodings are rejected *)
  let b = Bytes.of_string good in
  Bytes.set_uint16_le b 1 5 (* claim depth 5 for a full 256-bit path *);
  match Oplog.decode (Bytes.to_string b) ~pos:0 with
  | Ok _ -> Alcotest.fail "accepted non-canonical key"
  | Error _ -> ()

let test_apply_log () =
  (* Drive a real verifier purely through the byte-level ABI. *)
  let tree = Tree.create ~root_aux:() in
  let records =
    Array.init 32 (fun i ->
        (Key.of_int64 (Int64.of_int i), Value.Data (Some (string_of_int i))))
  in
  Tree.bulk_build tree ~aux:(fun _ _ -> ()) records;
  let v = Verifier.create Verifier.default_config in
  (match Verifier.install_root v (Tree.get_exn tree Key.root).Tree.value with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let key = Key.of_int64 5L in
  let d = Tree.descend tree key in
  let buf = Buffer.create 256 in
  let arr = Array.of_list d.Tree.path in
  Array.iteri
    (fun j k ->
      if j > 0 then
        Oplog.encode buf
          (Oplog.Add_m
             { key = k; value = (Tree.get_exn tree k).Tree.value; parent = arr.(j - 1) }))
    arr;
  let parent = arr.(Array.length arr - 1) in
  Oplog.encode buf (Oplog.Add_m { key; value = Value.Data (Some "5"); parent });
  Oplog.encode buf (Oplog.Vget { key; value = Some "5" });
  Oplog.encode buf (Oplog.Vput { key; value = Some "five" });
  Oplog.encode buf (Oplog.Evict_m { key; parent });
  let n_entries = Array.length arr - 1 + 4 in
  match Oplog.apply_log v ~tid:0 (Buffer.contents buf) with
  | Error e -> Alcotest.failf "apply_log: %s" e
  | Ok responses ->
      (* the eviction hands back exactly one pointer, for the last entry *)
      let evicts =
        List.filter (fun r -> r.Oplog.entry_index = n_entries - 1) responses
      in
      Alcotest.(check int) "one eviction response" 1 (List.length evicts);
      let r = List.hd evicts in
      Alcotest.(check bool) "pointer names the key" true
        (Key.equal r.installed.Value.key key);
      (* responses survive their own wire format *)
      let enc = Oplog.encode_responses responses in
      (match Oplog.decode_responses enc with
      | Ok rs ->
          Alcotest.(check int) "response roundtrip count"
            (List.length responses) (List.length rs)
      | Error e -> Alcotest.failf "decode_responses: %s" e);
      Alcotest.(check bool) "verifier healthy" true (Verifier.failure v = None)

let test_apply_log_rejects_forgery () =
  let v = Verifier.create Verifier.default_config in
  let buf = Buffer.create 64 in
  Oplog.encode buf
    (Oplog.Add_m
       { key = Key.of_int64 1L; value = Value.Data (Some "forged");
         parent = Key.root });
  match Oplog.apply_log v ~tid:0 (Buffer.contents buf) with
  | Ok _ -> Alcotest.fail "forged log applied"
  | Error _ -> ()

let prop_roundtrip =
  let arb =
    QCheck.make
      ~print:(Fmt.to_to_string Oplog.pp_op)
      QCheck.Gen.(
        let key = map (fun i -> Key.of_int64 (Int64.of_int i)) (int_bound 10000) in
        let mkey =
          map
            (fun (i, d) -> Key.prefix (Key.of_int64 (Int64.of_int i)) d)
            (pair (int_bound 10000) (int_range 0 255))
        in
        let value =
          oneof
            [
              return (Value.Data None);
              map (fun s -> Value.Data (Some s)) (string_size (0 -- 30));
            ]
        in
        let ts =
          map
            (fun (e, c) -> Timestamp.make ~epoch:e ~counter:c)
            (pair (int_bound 1000) (int_bound 100000))
        in
        oneof
          [
            map3 (fun key value parent -> Oplog.Add_m { key; value; parent }) key value mkey;
            map2 (fun key parent -> Oplog.Evict_m { key; parent }) key mkey;
            map3 (fun key value timestamp -> Oplog.Add_b { key; value; timestamp }) key value ts;
            map2 (fun key timestamp -> Oplog.Evict_b { key; timestamp }) key ts;
            map2 (fun key value -> Oplog.Vput { key; value })
              key (oneof [ return None; map Option.some (string_size (0 -- 20)) ]);
            map (fun e -> Oplog.Close_epoch e) (int_bound 100000);
          ])
  in
  QCheck.Test.make ~name:"oplog encode/decode roundtrip" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 20) arb) (fun ops ->
      let buf = Buffer.create 256 in
      List.iter (Oplog.encode buf) ops;
      match Oplog.decode_all (Buffer.contents buf) with
      | Ok ops' -> List.equal Oplog.equal_op ops ops'
      | Error _ -> false)

let suite =
  ( "oplog",
    [
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "adversarial input" `Quick test_adversarial_input;
      Alcotest.test_case "apply via bytes" `Quick test_apply_log;
      Alcotest.test_case "forged log rejected" `Quick test_apply_log_rejects_forgery;
      QCheck_alcotest.to_alcotest prop_roundtrip;
    ] )
