(* The domain-parallel runtime (§5.3 thread model): integrity must hold under
   genuine concurrency — contended CAS retries, cross-domain Merkle routing,
   stop-the-world verification scans. *)

let vo = Alcotest.(option string)

let mk ?(workers = 4) ?(batch = 0) ?(bg = false) n =
  let config =
    {
      Fastver.Config.default with
      n_workers = workers;
      batch_size = batch;
      frontier_levels = 3;
      cost_model = Cost_model.zero;
      authenticate_clients = false;
      background_verify = bg;
    }
  in
  let t = Fastver.create ~config () in
  Fastver.load t
    (Array.init n (fun i -> (Int64.of_int i, Printf.sprintf "v%06d" i)));
  t

let test_parallel_updates_and_verify () =
  let n = 2_000 in
  let t = mk n in
  Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
    ~db_size:n ~ops_per_worker:5_000;
  ignore (Fastver.verify t);
  (* every record must hold either its initial value or a value some worker
     legitimately wrote (8-byte YCSB update payloads) *)
  for i = 0 to n - 1 do
    match Fastver.get t (Int64.of_int i) with
    | None -> Alcotest.failf "record %d vanished" i
    | Some v ->
        if
          not
            (String.length v = 8
            || String.equal v (Printf.sprintf "v%06d" i))
        then Alcotest.failf "record %d has impossible value %S" i v
  done;
  ignore (Fastver.verify t);
  let s = Fastver.stats t in
  Alcotest.(check bool) "verifier healthy" true
    (Fastver.verifier_failure t = None);
  Alcotest.(check bool) "work happened" true (s.blum_fast_path > 0)

let test_parallel_with_auto_verify () =
  let n = 1_000 in
  let t = mk ~batch:2_000 n in
  Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
    ~db_size:n ~ops_per_worker:4_000;
  ignore (Fastver.verify t);
  Alcotest.(check bool) "several epochs verified concurrently" true
    (Fastver.current_epoch t >= 3);
  Alcotest.(check bool) "verifier healthy" true
    (Fastver.verifier_failure t = None)

let test_parallel_disjoint_ranges_deterministic () =
  (* With each domain confined to its own key range, the final state is the
     same as a sequential run of each stream. *)
  let workers = 3 and per_range = 200 in
  let n = workers * per_range in
  let t = mk ~workers n in
  let expected = Hashtbl.create 64 in
  (* emulate Parallel.run_ycsb's effect with hand-rolled disjoint streams:
     run them through domains via the public API *)
  let body wid () =
    let rng = Random.State.make [| 77; wid |] in
    for i = 1 to 2_000 do
      let k = Int64.of_int ((wid * per_range) + Random.State.int rng per_range) in
      if Random.State.int rng 2 = 0 then ignore (Fastver.get t k)
      else Fastver.put t k (Printf.sprintf "w%d-%d" wid i)
    done
  in
  let domains =
    Array.init (workers - 1) (fun i -> Domain.spawn (body (i + 1)))
  in
  body 0 ();
  Array.iter Domain.join domains;
  (* replay sequentially into a model *)
  for wid = 0 to workers - 1 do
    let rng = Random.State.make [| 77; wid |] in
    for i = 1 to 2_000 do
      let k = Int64.of_int ((wid * per_range) + Random.State.int rng per_range) in
      if Random.State.int rng 2 = 0 then ()
      else Hashtbl.replace expected k (Printf.sprintf "w%d-%d" wid i)
    done
  done;
  ignore (Fastver.verify t);
  Hashtbl.iter
    (fun k v -> Alcotest.(check vo) "disjoint-range determinism" (Some v) (Fastver.get t k))
    expected

let test_parallel_contention_cas () =
  (* All domains hammer a tiny keyspace: the speculative CAS of §5.3 must
     retry (Example 5.2) and never lose integrity. *)
  let n = 8 in
  let t = mk ~workers:4 n in
  Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
    ~db_size:n ~ops_per_worker:10_000;
  ignore (Fastver.verify t);
  Alcotest.(check bool) "verifier healthy under contention" true
    (Fastver.verifier_failure t = None)

let test_worker_failed_propagates () =
  (* A tampered record raises Integrity_violation inside whichever worker
     domain touches it first; run_ycsb must join every domain and surface
     the failure as Worker_failed, never swallow it or leave a domain
     running. *)
  let n = 64 in
  let t = mk n in
  Fastver.Testing.corrupt_store t 3L (Some "EVIL");
  match
    Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
      ~db_size:n ~ops_per_worker:5_000
  with
  | () -> Alcotest.fail "tampering survived a parallel run"
  | exception Fastver.Parallel.Worker_failed (wid, Fastver.Integrity_violation _)
    ->
      Alcotest.(check bool) "worker id in range" true (wid >= 0 && wid < 4)
  | exception e ->
      Alcotest.failf "expected Worker_failed(_, Integrity_violation), got %s"
        (Printexc.to_string e)

let test_verify_races_concurrent_process () =
  (* Stop-the-world verification scans (which themselves fan out to slice
     domains) racing live operations from other domains: no deadlock, every
     certificate checks out, verifier stays healthy. *)
  let n = 512 in
  let t = mk ~workers:4 n in
  let stop = Atomic.make false in
  let writer wid () =
    let rng = Random.State.make [| 11; wid |] in
    while not (Atomic.get stop) do
      let k = Int64.of_int (Random.State.int rng n) in
      if Random.State.int rng 3 = 0 then ignore (Fastver.get t k)
      else Fastver.put t k (Printf.sprintf "w%d" wid)
    done
  in
  let domains = Array.init 3 (fun i -> Domain.spawn (writer (i + 1))) in
  let e0 = Fastver.current_epoch t in
  let certs = Array.init 20 (fun _ -> Fastver.verify t) in
  Atomic.set stop true;
  Array.iter Domain.join domains;
  Array.iteri
    (fun i cert ->
      Alcotest.(check bool)
        (Printf.sprintf "certificate %d valid" i)
        true
        (Fastver.check_epoch_certificate t ~epoch:(e0 + i) cert))
    certs;
  Alcotest.(check bool) "verifier healthy" true
    (Fastver.verifier_failure t = None);
  (* per-worker scan timings surfaced for every worker *)
  let busy = (Fastver.stats t).worker_busy_s in
  Array.iteri
    (fun wid s ->
      Alcotest.(check bool)
        (Printf.sprintf "worker %d scan time recorded" wid)
        true (s > 0.))
    busy

let test_parallel_scan_cert_matches_sequential () =
  (* The multiset fold is order-independent: the domain-parallel scan must
     seal the same epoch certificate as a single-worker sequential scan of
     the same logical history. *)
  let run workers =
    let t = mk ~workers 64 in
    for i = 0 to 299 do
      Fastver.put t (Int64.of_int (i mod 50)) (Printf.sprintf "x%d" i)
    done;
    let e = Fastver.current_epoch t in
    let c = Fastver.verify t in
    Alcotest.(check bool) "certificate checks" true
      (Fastver.check_epoch_certificate t ~epoch:e c);
    (e, c)
  in
  let e1, c1 = run 1 in
  let e4, c4 = run 4 in
  Alcotest.(check int) "same epoch" e1 e4;
  Alcotest.(check string) "identical certificate" c1 c4

let test_background_cert_matches_quiesced () =
  (* The tentpole guarantee: a background scan — epoch sealed under the
     brief barrier, verification run against the snapshot while later
     traffic lands in the next epoch — must verify the same epochs and seal
     bit-identical certificates to a stop-the-world scan of the same
     logical history. *)
  let run bg =
    let t = mk ~workers:4 ~bg 64 in
    for i = 0 to 299 do
      Fastver.put t (Int64.of_int (i mod 50)) (Printf.sprintf "x%d" i)
    done;
    let e1 = Fastver.current_epoch t in
    let c1 = Fastver.verify t in
    (* second epoch: traffic that crossed the first seal must balance *)
    for i = 0 to 99 do
      Fastver.put t (Int64.of_int (i mod 50)) (Printf.sprintf "y%d" i)
    done;
    let e2 = Fastver.current_epoch t in
    let c2 = Fastver.verify t in
    Alcotest.(check bool) "certificates check" true
      (Fastver.check_epoch_certificate t ~epoch:e1 c1
      && Fastver.check_epoch_certificate t ~epoch:e2 c2);
    ((e1, c1), (e2, c2))
  in
  let (e1q, c1q), (e2q, c2q) = run false in
  let (e1b, c1b), (e2b, c2b) = run true in
  Alcotest.(check int) "same first epoch" e1q e1b;
  Alcotest.(check string) "identical first certificate" c1q c1b;
  Alcotest.(check int) "same second epoch" e2q e2b;
  Alcotest.(check string) "identical second certificate" c2q c2b

let test_background_verify_races_writers () =
  (* Writer domains keep hammering while verify_async scans run truly in
     the background: every scan must certify its sealed epoch, consecutive
     scans must cover consecutive epochs, and the foreground must make
     progress while a scan is in flight. *)
  let n = 512 in
  let t = mk ~workers:4 ~bg:true n in
  let stop = Atomic.make false in
  let writer wid () =
    let rng = Random.State.make [| 23; wid |] in
    while not (Atomic.get stop) do
      let k = Int64.of_int (Random.State.int rng n) in
      if Random.State.int rng 3 = 0 then ignore (Fastver.get t k)
      else Fastver.put t k (Printf.sprintf "w%d" wid)
    done
  in
  let domains = Array.init 3 (fun i -> Domain.spawn (writer (i + 1))) in
  let e0 = Fastver.current_epoch t in
  let scans = 12 in
  let results = Array.init scans (fun _ -> Atomic.make None) in
  let overlap = ref 0 in
  for i = 0 to scans - 1 do
    let ops_before = (Fastver.stats t).ops in
    Fastver.verify_async t ~on_complete:(fun r ->
        Atomic.set results.(i) (Some r));
    while Atomic.get results.(i) = None do
      if Fastver.verify_in_flight t && (Fastver.stats t).ops > ops_before
      then incr overlap;
      Domain.cpu_relax ()
    done
  done;
  Atomic.set stop true;
  Array.iter Domain.join domains;
  Fastver.wait_verify t;
  Array.iteri
    (fun i r ->
      match Atomic.get r with
      | Some (Ok (epoch, cert)) ->
          Alcotest.(check int) (Printf.sprintf "scan %d epoch" i) (e0 + i)
            epoch;
          Alcotest.(check bool)
            (Printf.sprintf "scan %d certificate" i)
            true
            (Fastver.check_epoch_certificate t ~epoch cert)
      | Some (Error e) ->
          Alcotest.failf "background scan %d failed: %s" i
            (Printexc.to_string e)
      | None -> Alcotest.failf "background scan %d never completed" i)
    results;
  Alcotest.(check bool) "foreground progressed during in-flight scans" true
    (!overlap > 0);
  ignore (Fastver.verify t);
  Alcotest.(check bool) "verifier healthy" true
    (Fastver.verifier_failure t = None)

let test_background_auto_verify () =
  (* With background_verify and a batch size, maybe_verify launches scans
     from whichever domain trips the threshold; they must all certify and
     the epoch counter must advance well past the start. *)
  let n = 1_000 in
  let t = mk ~batch:2_000 ~bg:true n in
  Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a ~db_size:n
    ~ops_per_worker:4_000;
  Fastver.wait_verify t;
  ignore (Fastver.verify t);
  Alcotest.(check bool) "several epochs verified in the background" true
    (Fastver.current_epoch t >= 3);
  Alcotest.(check bool) "verifier healthy" true
    (Fastver.verifier_failure t = None)

let test_lock_order_enforced () =
  let t = mk ~workers:3 8 in
  Fastver.Testing.enforce_lock_order true;
  Fun.protect ~finally:(fun () -> Fastver.Testing.enforce_lock_order false)
  @@ fun () ->
  (* the documented order is accepted: tree first, workers ascending *)
  Fastver.Testing.with_tree_lock t (fun () ->
      Fastver.Testing.with_worker_lock t 0 (fun () ->
          Fastver.Testing.with_worker_lock t 2 (fun () -> ())));
  let expect_violation name f =
    match f () with
    | () -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s names the order" name)
          true
          (String.length msg >= 10 && String.sub msg 0 10 = "lock order")
  in
  expect_violation "worker-then-tree" (fun () ->
      Fastver.Testing.with_worker_lock t 1 (fun () ->
          Fastver.Testing.with_tree_lock t (fun () -> ())));
  expect_violation "descending workers" (fun () ->
      Fastver.Testing.with_worker_lock t 2 (fun () ->
          Fastver.Testing.with_worker_lock t 1 (fun () -> ())));
  expect_violation "same worker twice" (fun () ->
      Fastver.Testing.with_worker_lock t 1 (fun () ->
          Fastver.Testing.with_worker_lock t 1 (fun () -> ())));
  (* shard tree locks compose in ascending shard id, before workers *)
  Fastver.Testing.with_shard_lock t 0 (fun () ->
      Fastver.Testing.with_shard_lock t 2 (fun () ->
          Fastver.Testing.with_worker_lock t 1 (fun () -> ())));
  expect_violation "descending shards" (fun () ->
      Fastver.Testing.with_shard_lock t 2 (fun () ->
          Fastver.Testing.with_shard_lock t 0 (fun () -> ())));
  expect_violation "worker-then-shard" (fun () ->
      Fastver.Testing.with_worker_lock t 0 (fun () ->
          Fastver.Testing.with_shard_lock t 1 (fun () -> ())));
  (* the leaves: redeferred and cold may sit under tree/worker locks, but
     nothing nests under a leaf, and bg requires nothing held at all *)
  Fastver.Testing.with_shard_lock t 1 (fun () ->
      Fastver.Testing.with_redeferred_lock t (fun () -> ()));
  Fastver.Testing.with_worker_lock t 2 (fun () ->
      Fastver.Testing.with_cold_lock t (fun () -> ()));
  Fastver.Testing.with_bg_lock t (fun () -> ());
  expect_violation "shard under redeferred" (fun () ->
      Fastver.Testing.with_redeferred_lock t (fun () ->
          Fastver.Testing.with_shard_lock t 0 (fun () -> ())));
  expect_violation "worker under cold" (fun () ->
      Fastver.Testing.with_cold_lock t (fun () ->
          Fastver.Testing.with_worker_lock t 0 (fun () -> ())));
  expect_violation "cold under redeferred" (fun () ->
      Fastver.Testing.with_redeferred_lock t (fun () ->
          Fastver.Testing.with_cold_lock t (fun () -> ())));
  expect_violation "bg under tree" (fun () ->
      Fastver.Testing.with_tree_lock t (fun () ->
          Fastver.Testing.with_bg_lock t (fun () -> ())));
  expect_violation "redeferred under bg" (fun () ->
      Fastver.Testing.with_bg_lock t (fun () ->
          Fastver.Testing.with_redeferred_lock t (fun () -> ())));
  (* real operations — fast path, slow path, a full parallel scan — all
     follow the documented order under enforcement *)
  for i = 0 to 7 do
    Fastver.put t (Int64.of_int i) "x"
  done;
  ignore (Fastver.verify t);
  Alcotest.(check bool) "verifier healthy under enforcement" true
    (Fastver.verifier_failure t = None)

let test_parallel_then_tamper () =
  let n = 500 in
  let t = mk n in
  Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
    ~db_size:n ~ops_per_worker:2_000;
  ignore (Fastver.verify t);
  Fastver.Testing.corrupt_store t 7L (Some "EVIL");
  match
    ignore (Fastver.get t 7L);
    ignore (Fastver.verify t)
  with
  | exception Fastver.Integrity_violation _ -> ()
  | () -> Alcotest.fail "tampering survived a parallel run"

let suite =
  ( "parallel",
    [
      Alcotest.test_case "updates + verify" `Slow test_parallel_updates_and_verify;
      Alcotest.test_case "auto verify across domains" `Slow
        test_parallel_with_auto_verify;
      Alcotest.test_case "disjoint ranges deterministic" `Slow
        test_parallel_disjoint_ranges_deterministic;
      Alcotest.test_case "contended CAS" `Slow test_parallel_contention_cas;
      Alcotest.test_case "tamper after parallel run" `Slow
        test_parallel_then_tamper;
      Alcotest.test_case "Worker_failed propagates" `Slow
        test_worker_failed_propagates;
      Alcotest.test_case "verify races concurrent process" `Slow
        test_verify_races_concurrent_process;
      Alcotest.test_case "parallel scan certificate = sequential" `Quick
        test_parallel_scan_cert_matches_sequential;
      Alcotest.test_case "background certificate = quiesced" `Quick
        test_background_cert_matches_quiesced;
      Alcotest.test_case "background verify races writers" `Slow
        test_background_verify_races_writers;
      Alcotest.test_case "background auto verify" `Slow
        test_background_auto_verify;
      Alcotest.test_case "lock order enforced" `Quick test_lock_order_enforced;
    ] )
