(* The domain-parallel runtime (§5.3 thread model): integrity must hold under
   genuine concurrency — contended CAS retries, cross-domain Merkle routing,
   stop-the-world verification scans. *)

let vo = Alcotest.(option string)

let mk ?(workers = 4) ?(batch = 0) n =
  let config =
    {
      Fastver.Config.default with
      n_workers = workers;
      batch_size = batch;
      frontier_levels = 3;
      cost_model = Cost_model.zero;
      authenticate_clients = false;
    }
  in
  let t = Fastver.create ~config () in
  Fastver.load t
    (Array.init n (fun i -> (Int64.of_int i, Printf.sprintf "v%06d" i)));
  t

let test_parallel_updates_and_verify () =
  let n = 2_000 in
  let t = mk n in
  Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
    ~db_size:n ~ops_per_worker:5_000;
  ignore (Fastver.verify t);
  (* every record must hold either its initial value or a value some worker
     legitimately wrote (8-byte YCSB update payloads) *)
  for i = 0 to n - 1 do
    match Fastver.get t (Int64.of_int i) with
    | None -> Alcotest.failf "record %d vanished" i
    | Some v ->
        if
          not
            (String.length v = 8
            || String.equal v (Printf.sprintf "v%06d" i))
        then Alcotest.failf "record %d has impossible value %S" i v
  done;
  ignore (Fastver.verify t);
  let s = Fastver.stats t in
  Alcotest.(check bool) "verifier healthy" true
    (Fastver_verifier.Verifier.failure (Fastver.verifier_handle t) = None);
  Alcotest.(check bool) "work happened" true (s.blum_fast_path > 0)

let test_parallel_with_auto_verify () =
  let n = 1_000 in
  let t = mk ~batch:2_000 n in
  Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
    ~db_size:n ~ops_per_worker:4_000;
  ignore (Fastver.verify t);
  Alcotest.(check bool) "several epochs verified concurrently" true
    (Fastver.current_epoch t >= 3);
  Alcotest.(check bool) "verifier healthy" true
    (Fastver_verifier.Verifier.failure (Fastver.verifier_handle t) = None)

let test_parallel_disjoint_ranges_deterministic () =
  (* With each domain confined to its own key range, the final state is the
     same as a sequential run of each stream. *)
  let workers = 3 and per_range = 200 in
  let n = workers * per_range in
  let t = mk ~workers n in
  let expected = Hashtbl.create 64 in
  (* emulate Parallel.run_ycsb's effect with hand-rolled disjoint streams:
     run them through domains via the public API *)
  let body wid () =
    let rng = Random.State.make [| 77; wid |] in
    for i = 1 to 2_000 do
      let k = Int64.of_int ((wid * per_range) + Random.State.int rng per_range) in
      if Random.State.int rng 2 = 0 then ignore (Fastver.get t k)
      else Fastver.put t k (Printf.sprintf "w%d-%d" wid i)
    done
  in
  let domains =
    Array.init (workers - 1) (fun i -> Domain.spawn (body (i + 1)))
  in
  body 0 ();
  Array.iter Domain.join domains;
  (* replay sequentially into a model *)
  for wid = 0 to workers - 1 do
    let rng = Random.State.make [| 77; wid |] in
    for i = 1 to 2_000 do
      let k = Int64.of_int ((wid * per_range) + Random.State.int rng per_range) in
      if Random.State.int rng 2 = 0 then ()
      else Hashtbl.replace expected k (Printf.sprintf "w%d-%d" wid i)
    done
  done;
  ignore (Fastver.verify t);
  Hashtbl.iter
    (fun k v -> Alcotest.(check vo) "disjoint-range determinism" (Some v) (Fastver.get t k))
    expected

let test_parallel_contention_cas () =
  (* All domains hammer a tiny keyspace: the speculative CAS of §5.3 must
     retry (Example 5.2) and never lose integrity. *)
  let n = 8 in
  let t = mk ~workers:4 n in
  Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
    ~db_size:n ~ops_per_worker:10_000;
  ignore (Fastver.verify t);
  Alcotest.(check bool) "verifier healthy under contention" true
    (Fastver_verifier.Verifier.failure (Fastver.verifier_handle t) = None)

let test_parallel_then_tamper () =
  let n = 500 in
  let t = mk n in
  Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
    ~db_size:n ~ops_per_worker:2_000;
  ignore (Fastver.verify t);
  Fastver.Testing.corrupt_store t 7L (Some "EVIL");
  match
    ignore (Fastver.get t 7L);
    ignore (Fastver.verify t)
  with
  | exception Fastver.Integrity_violation _ -> ()
  | () -> Alcotest.fail "tampering survived a parallel run"

let suite =
  ( "parallel",
    [
      Alcotest.test_case "updates + verify" `Slow test_parallel_updates_and_verify;
      Alcotest.test_case "auto verify across domains" `Slow
        test_parallel_with_auto_verify;
      Alcotest.test_case "disjoint ranges deterministic" `Slow
        test_parallel_disjoint_ranges_deterministic;
      Alcotest.test_case "contended CAS" `Slow test_parallel_contention_cas;
      Alcotest.test_case "tamper after parallel run" `Slow
        test_parallel_then_tamper;
    ] )
