(* The adaptive verification hierarchy (controller in lib/core/adaptive.ml):
   decisions must be a pure function of the observation snapshot, all tier
   movement must preserve certificate bit-identity across shard widths and
   against static runs (the multisets keep balancing whatever the controller
   moves), a stable workload must not thrash, and a checkpoint taken with
   adaptive state mid-flight (carried hot keys, retuned frontier) must
   recover into a store whose next scans still verify. *)

module C = Fastver_kvstore.Ckpt_io
module A = Fastver.Adaptive

let vo = Alcotest.(option string)

let config ?(shards = 1) ?(adaptive = true) () =
  {
    Fastver.Config.default with
    n_workers = 1;
    n_shards = shards;
    batch_size = 0;
    frontier_levels = 2;
    cache_capacity = 256;
    cost_model = Cost_model.zero;
    adaptive;
  }

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  C.remove_tree dir;
  dir

(* A deterministic skewed epoch: hammer a small hot set, scatter one touch
   across a rotating cold range. *)
let skewed_epoch t ~n ~phase =
  for rep = 1 to 20 do
    for h = 0 to 7 do
      Fastver.put t
        (Int64.of_int ((phase + h) mod n))
        (Printf.sprintf "hot%d-%d" h rep)
    done
  done;
  for c = 0 to 99 do
    Fastver.put t
      (Int64.of_int ((phase + 16 + (c * 3)) mod n))
      (Printf.sprintf "cold%d" c)
  done

let run_adaptive ?(shards = 1) ?(adaptive = true) ~epochs ~rotate_at n =
  let t = Fastver.create ~config:(config ~shards ~adaptive ()) () in
  Fastver.load t
    (Array.init n (fun i -> (Int64.of_int i, Printf.sprintf "v%06d" i)));
  let certs = ref [] in
  for e = 0 to epochs - 1 do
    let phase = if e < rotate_at then 0 else n / 2 in
    skewed_epoch t ~n ~phase;
    certs := (Fastver.current_epoch t, Fastver.verify t) :: !certs
  done;
  (t, List.rev !certs)

(* ------------------------------------------------------------------ *)
(* Determinism: decide is a pure function of the snapshot              *)
(* ------------------------------------------------------------------ *)

let params =
  {
    A.cache_budget = 1024;
    depth_min = 2;
    depth_max = 8;
    hot_fraction = 0.5;
    min_cache = 32;
  }

let mk_obs ?(blum = 1000) ?(merkle = 50) ?(cached = 50) ?(frontier = 4)
    ?(cap = 256) ?(depth = 2) ?(heat = fun i -> i mod 7) () =
  {
    A.blum_ops = blum;
    merkle_ops = merkle;
    cached_ops = cached;
    frontier_size = frontier;
    cache_len = cap / 2;
    cache_cap = cap;
    depth;
    heat = Array.init A.buckets heat;
  }

let test_decide_deterministic () =
  let obs =
    [|
      mk_obs ();
      mk_obs ~blum:10 ~merkle:900 ~cached:200 ~frontier:64 ~depth:4 ();
      mk_obs ~heat:(fun i -> (i * 31) mod 13) ();
    |]
  in
  let p1 = A.decide params obs and p2 = A.decide params obs in
  Alcotest.(check int) "one plan per shard" (Array.length obs)
    (Array.length p1);
  Array.iteri
    (fun i a ->
      let b = p2.(i) in
      Alcotest.(check string)
        (Printf.sprintf "shard %d plan identical" i)
        (Format.asprintf "%a" A.pp_plan a)
        (Format.asprintf "%a" A.pp_plan b))
    p1

let test_decide_respects_bounds () =
  (* Depth stays within [depth_min, depth_max] and moves one level at a
     time; capacities never exceed the budget (up to floors). *)
  let hot_merkle =
    mk_obs ~blum:0 ~merkle:5000 ~cached:1000 ~frontier:4 ~depth:8 ()
  in
  let idle = mk_obs ~blum:5000 ~merkle:0 ~cached:0 ~frontier:400 ~depth:2 () in
  let plans = A.decide params [| hot_merkle; idle |] in
  Alcotest.(check int) "depth capped at max" 8 plans.(0).A.p_depth;
  Alcotest.(check int) "depth floored at min" 2 plans.(1).A.p_depth;
  let total = plans.(0).A.p_cache_cap + plans.(1).A.p_cache_cap in
  Alcotest.(check bool) "budget respected" true (total <= params.cache_budget);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "per-shard floor" true
        (p.A.p_cache_cap >= params.min_cache))
    plans

(* ------------------------------------------------------------------ *)
(* Hysteresis: a stable snapshot is a fixed point                      *)
(* ------------------------------------------------------------------ *)

let test_decide_fixed_point () =
  (* Apply the plan to a snapshot inside the depth dead band (frontier
     between pressure/16 and pressure/8) and decide again: nothing
     moves. *)
  let obs0 =
    [| mk_obs ~blum:800 ~merkle:500 ~cached:500 ~frontier:100 ~depth:4 () |]
  in
  let p0 = (A.decide params obs0).(0) in
  let obs1 =
    [|
      {
        obs0.(0) with
        A.cache_cap = p0.A.p_cache_cap;
        depth = p0.A.p_depth;
      };
    |]
  in
  let p1 = (A.decide params obs1).(0) in
  Alcotest.(check int) "capacity stable" p0.A.p_cache_cap p1.A.p_cache_cap;
  Alcotest.(check int) "depth stable" p0.A.p_depth p1.A.p_depth

let test_stable_workload_no_thrash () =
  (* Behavioural hysteresis: under an unchanging skew the controller's
     visible state (depth, capacity, hot-set size) converges and stays
     put over the last epochs. *)
  let t, _ = run_adaptive ~epochs:10 ~rotate_at:max_int 512 in
  let snap () =
    Array.map
      (fun (s : Fastver.adaptive_shard) ->
        (s.a_depth, s.a_cache_cap, s.a_hot_keys))
      (Fastver.adaptive_state t)
  in
  let s1 = snap () in
  skewed_epoch t ~n:512 ~phase:0;
  ignore (Fastver.verify t);
  let s2 = snap () in
  skewed_epoch t ~n:512 ~phase:0;
  ignore (Fastver.verify t);
  let s3 = snap () in
  Alcotest.(check bool) "state settled across settled epochs" true
    (s1 = s2 && s2 = s3);
  Alcotest.(check bool) "hot set non-empty under skew" true
    (Array.exists (fun (_, _, h) -> h > 0) s1)

(* ------------------------------------------------------------------ *)
(* Certificate bit-identity: 1-vs-N shards, adaptive vs static         *)
(* ------------------------------------------------------------------ *)

let test_cert_identity_across_widths () =
  let _, base = run_adaptive ~shards:1 ~epochs:6 ~rotate_at:3 512 in
  List.iter
    (fun shards ->
      let _, certs = run_adaptive ~shards ~epochs:6 ~rotate_at:3 512 in
      List.iter2
        (fun (e1, c1) (en, cn) ->
          Alcotest.(check int)
            (Printf.sprintf "epoch @ %d shards" shards)
            e1 en;
          Alcotest.(check string)
            (Printf.sprintf "epoch %d cert @ %d shards" e1 shards)
            c1 cn)
        base certs)
    [ 2; 4 ]

let test_cert_identity_vs_static () =
  (* The controller moves records between tiers mid-run; a static store
     replaying the same operations must seal byte-identical certificates —
     the tier assignment is invisible to the certificate chain. *)
  let _, adaptive = run_adaptive ~adaptive:true ~epochs:6 ~rotate_at:3 512 in
  let _, static = run_adaptive ~adaptive:false ~epochs:6 ~rotate_at:3 512 in
  List.iter2
    (fun (e1, c1) (e2, c2) ->
      Alcotest.(check int) "epoch aligned" e1 e2;
      Alcotest.(check string)
        (Printf.sprintf "epoch %d cert adaptive == static" e1)
        c1 c2)
    adaptive static

let test_values_survive_rotation () =
  let t, _ = run_adaptive ~epochs:8 ~rotate_at:4 512 in
  (* The last writes of the final epoch (phase n/2) must all read back. *)
  for h = 0 to 7 do
    Alcotest.(check vo)
      (Printf.sprintf "hot key %d" h)
      (Some (Printf.sprintf "hot%d-20" h))
      (Fastver.get t (Int64.of_int ((256 + h) mod 512)))
  done;
  ignore (Fastver.verify t)

(* ------------------------------------------------------------------ *)
(* Recovery with adaptive state mid-flight                             *)
(* ------------------------------------------------------------------ *)

let test_recover_mid_flight () =
  let dir = fresh_dir "fv-adaptive-recover" in
  let t, _ = run_adaptive ~shards:2 ~epochs:6 ~rotate_at:3 512 in
  let before =
    Array.map (fun (s : Fastver.adaptive_shard) -> s.a_depth)
      (Fastver.adaptive_state t)
  in
  (* Hot keys are still blum-protected here — that is the mid-flight
     state the checkpoint must carry. *)
  Alcotest.(check bool) "hot keys outstanding at checkpoint" true
    (Array.exists
       (fun (s : Fastver.adaptive_shard) -> s.a_hot_keys > 0)
       (Fastver.adaptive_state t));
  (match Fastver.checkpoint t ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "checkpoint: %s" e);
  match Fastver.recover ~config:(config ~shards:2 ()) ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok t2 ->
      let after =
        Array.map (fun (s : Fastver.adaptive_shard) -> s.a_depth)
          (Fastver.adaptive_state t2)
      in
      Alcotest.(check (array int)) "frontier depth recovered" before after;
      (* Keep running adaptively: the reseeded dirty sets must balance the
         recovered evict-set entries, and fresh controller rounds must keep
         sealing. *)
      skewed_epoch t2 ~n:512 ~phase:256;
      ignore (Fastver.verify t2);
      skewed_epoch t2 ~n:512 ~phase:256;
      ignore (Fastver.verify t2);
      Alcotest.(check vo) "reads verified after recovery"
        (Some "hot0-20")
        (Fastver.get t2 256L);
      C.remove_tree dir

let suite =
  ( "adaptive",
    [
      Alcotest.test_case "decide is deterministic" `Quick
        test_decide_deterministic;
      Alcotest.test_case "decide respects bounds and budget" `Quick
        test_decide_respects_bounds;
      Alcotest.test_case "stable snapshot is a fixed point" `Quick
        test_decide_fixed_point;
      Alcotest.test_case "no thrash on a stable workload" `Quick
        test_stable_workload_no_thrash;
      Alcotest.test_case "certificates equal across widths" `Quick
        test_cert_identity_across_widths;
      Alcotest.test_case "certificates equal adaptive vs static" `Quick
        test_cert_identity_vs_static;
      Alcotest.test_case "values survive hot-set rotation" `Quick
        test_values_survive_rotation;
      Alcotest.test_case "recovery with adaptive state mid-flight" `Quick
        test_recover_mid_flight;
    ] )
