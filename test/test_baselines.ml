(* The prior-approach baselines of §4/§5/§3. *)

open Fastver_baselines

let vo = Alcotest.(option string)

let records n = Array.init n (fun i -> (Int64.of_int i, Printf.sprintf "v%d" i))

let exercise_merkle variant =
  let m = Merkle_store.create variant (records 200) in
  Alcotest.(check vo) "read" (Some "v7") (Merkle_store.get m 7L);
  Alcotest.(check vo) "missing" None (Merkle_store.get m 99999L);
  Merkle_store.put m 7L "new";
  Alcotest.(check vo) "update" (Some "new") (Merkle_store.get m 7L);
  Merkle_store.put m 5000L "ins";
  Alcotest.(check vo) "insert" (Some "ins") (Merkle_store.get m 5000L);
  (* mixed random churn *)
  let rng = Random.State.make [| 5 |] in
  for i = 0 to 500 do
    let k = Int64.of_int (Random.State.int rng 300) in
    if i land 1 = 0 then ignore (Merkle_store.get m k)
    else Merkle_store.put m k (Printf.sprintf "x%d" i)
  done;
  Alcotest.(check bool) "verifier healthy" true
    (Fastver_verifier.Verifier.failure (Merkle_store.verifier m) = None)

let test_merkle_plain () = exercise_merkle `Plain
let test_merkle_cached () = exercise_merkle (`Cached 64)
let test_merkle_mv () = exercise_merkle (`Propagate_to_root 64)

let test_merkle_differential () =
  let m = Merkle_store.create (`Cached 128) (records 100) in
  let model = Hashtbl.create 64 in
  Array.iter (fun (k, v) -> Hashtbl.replace model k v) (records 100);
  let rng = Random.State.make [| 11 |] in
  for i = 0 to 800 do
    let k = Int64.of_int (Random.State.int rng 200) in
    if Random.State.bool rng then begin
      let v = Printf.sprintf "d%d" i in
      Merkle_store.put m k v;
      Hashtbl.replace model k v
    end
    else
      Alcotest.(check vo)
        (Printf.sprintf "step %d" i)
        (Hashtbl.find_opt model k) (Merkle_store.get m k)
  done

let test_dv_basic () =
  let dv = Dv_store.create (records 100) in
  Alcotest.(check vo) "read" (Some "v9") (Dv_store.get dv 9L);
  Dv_store.put dv 9L "nine";
  Alcotest.(check vo) "update" (Some "nine") (Dv_store.get dv 9L);
  Dv_store.verify dv;
  Alcotest.(check vo) "state across epochs" (Some "nine") (Dv_store.get dv 9L);
  Dv_store.verify dv;
  Dv_store.verify dv;
  Alcotest.(check int) "epochs advanced" 3
    (Fastver_verifier.Verifier.current_epoch (Dv_store.verifier dv))

let test_dv_detects_tamper () =
  (* Bypass the API: perform a raw add_b with a forged value; the epoch check
     must fail even though each op was provisionally accepted. *)
  let dv = Dv_store.create (records 10) in
  let v = Dv_store.verifier dv in
  let open Fastver_verifier in
  (match
     Verifier.add_b v ~tid:0 ~key:(Key.of_int64 3L)
       ~value:(Value.Data (Some "FORGED")) ~timestamp:Timestamp.zero
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "provisional add rejected early: %s" e);
  (match
     Verifier.evict_b v ~tid:0 ~key:(Key.of_int64 3L)
       ~timestamp:(Timestamp.make ~epoch:1 ~counter:0)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "evict: %s" e);
  match Dv_store.verify dv with
  | exception Dv_store.Failed _ -> ()
  | () -> Alcotest.fail "forged DV record not detected"

let test_dv_latency_linear () =
  (* verification latency grows with database size (the point of Fig 12) *)
  let t1 =
    let dv = Dv_store.create (records 1000) in
    Dv_store.verify dv;
    Dv_store.last_verify_latency_s dv
  in
  let t2 =
    let dv = Dv_store.create (records 16000) in
    Dv_store.verify dv;
    Dv_store.last_verify_latency_s dv
  in
  Alcotest.(check bool)
    (Printf.sprintf "16x data takes longer to verify (%.4f vs %.4f)" t1 t2)
    true (t2 > t1 *. 4.0)

let test_trusted_db () =
  let enclave = Enclave.create ~memory_budget_bytes:10_000 Cost_model.zero in
  let db = Trusted_db.create ~enclave ~record_overhead_bytes:64 (records 50) in
  Alcotest.(check vo) "read" (Some "v3") (Trusted_db.get db 3L);
  Trusted_db.put db 3L "three";
  Alcotest.(check vo) "update" (Some "three") (Trusted_db.get db 3L);
  Alcotest.(check bool) "accounts memory" true (Trusted_db.memory_bytes db > 0);
  (* P1 failure: a database bigger than the enclave cannot be hosted *)
  let enclave = Enclave.create ~memory_budget_bytes:10_000 Cost_model.zero in
  match Trusted_db.create ~enclave ~record_overhead_bytes:64 (records 500) with
  | exception Enclave.Out_of_enclave_memory -> ()
  | _ -> Alcotest.fail "oversized trusted DB accepted"

let test_host_only () =
  let h = Host_only.create (records 100) in
  Alcotest.(check vo) "read" (Some "v4") (Host_only.get h 4L);
  Host_only.put h 4L "four";
  Alcotest.(check vo) "update" (Some "four") (Host_only.get h 4L);
  Alcotest.(check int) "scan finds population" 50 (Host_only.scan h 50L 50);
  Alcotest.(check int) "scan past the end" 10 (Host_only.scan h 90L 50)

let suite =
  ( "baselines",
    [
      Alcotest.test_case "merkle plain" `Quick test_merkle_plain;
      Alcotest.test_case "merkle cached" `Quick test_merkle_cached;
      Alcotest.test_case "merkle MV" `Quick test_merkle_mv;
      Alcotest.test_case "merkle differential" `Quick test_merkle_differential;
      Alcotest.test_case "dv basic" `Quick test_dv_basic;
      Alcotest.test_case "dv detects tamper" `Quick test_dv_detects_tamper;
      Alcotest.test_case "dv latency linear" `Slow test_dv_latency_linear;
      Alcotest.test_case "trusted db" `Quick test_trusted_db;
      Alcotest.test_case "host only" `Quick test_host_only;
    ] )
