(* Workload generators. *)

open Fastver_workload

let test_zipf_bounds () =
  let z = Zipf.create ~n:1000 ~theta:0.9 (Random.State.make [| 1 |]) in
  for _ = 1 to 10_000 do
    let v = Zipf.next z in
    if v < 0 || v >= 1000 then Alcotest.failf "out of range: %d" v
  done

let test_zipf_skew () =
  (* with scrambling off, rank 0 is the hottest item *)
  let z =
    Zipf.create ~scramble:false ~n:10_000 ~theta:0.9 (Random.State.make [| 2 |])
  in
  let hits = Array.make 10_000 0 in
  for _ = 1 to 100_000 do
    let v = Zipf.next z in
    hits.(v) <- hits.(v) + 1
  done;
  Alcotest.(check bool) "head is hot" true (hits.(0) > 2_000);
  let top100 = ref 0 in
  for i = 0 to 99 do
    top100 := !top100 + hits.(i)
  done;
  Alcotest.(check bool) "top-100 takes most mass at theta=0.9" true
    (!top100 > 35_000)

let test_zipf_uniform () =
  let z =
    Zipf.create ~scramble:false ~n:100 ~theta:0.0 (Random.State.make [| 3 |])
  in
  let hits = Array.make 100 0 in
  for _ = 1 to 100_000 do
    let v = Zipf.next z in
    hits.(v) <- hits.(v) + 1
  done;
  Array.iteri
    (fun i h ->
      if h < 700 || h > 1300 then
        Alcotest.failf "uniform deviates at %d: %d hits" i h)
    hits

let test_zipf_scramble_spreads () =
  let z = Zipf.create ~n:10_000 ~theta:0.9 (Random.State.make [| 4 |]) in
  let low = ref 0 in
  for _ = 1 to 10_000 do
    if Zipf.next z < 100 then incr low
  done;
  (* scrambled hot keys are spread across the keyspace, so the lowest 1%
     of the key range should not absorb most of the mass *)
  Alcotest.(check bool) "hot keys spread" true (!low < 3_000)

let count_ops spec n =
  let g = Ycsb.create ~db_size:1000 spec in
  let reads = ref 0 and updates = ref 0 and scans = ref 0 in
  for _ = 1 to n do
    match Ycsb.next g with
    | Ycsb.Read _ -> incr reads
    | Ycsb.Update _ -> incr updates
    | Ycsb.Scan _ -> incr scans
  done;
  (!reads, !updates, !scans)

let test_ycsb_mixes () =
  let n = 20_000 in
  let r, u, s = count_ops Ycsb.workload_a n in
  Alcotest.(check bool) "A is 50/50" true
    (abs (r - u) < n / 10 && s = 0);
  let r, u, _ = count_ops Ycsb.workload_b n in
  Alcotest.(check bool) "B is read-heavy" true (r > (9 * n / 10) && u > 0);
  let r, u, s = count_ops Ycsb.workload_c n in
  Alcotest.(check bool) "C is read-only" true (r = n && u = 0 && s = 0);
  let _, u, s = count_ops Ycsb.workload_e n in
  Alcotest.(check bool) "E is scan-based" true (s > (9 * n / 10) && u > 0)

let test_ycsb_determinism () =
  let g1 = Ycsb.create ~seed:9 ~db_size:100 Ycsb.workload_a in
  let g2 = Ycsb.create ~seed:9 ~db_size:100 Ycsb.workload_a in
  for _ = 1 to 100 do
    if Ycsb.next g1 <> Ycsb.next g2 then Alcotest.fail "nondeterministic"
  done

let test_sequential () =
  let g = Ycsb.create ~db_size:10 (Ycsb.with_dist Ycsb.workload_c Ycsb.Sequential) in
  let keys = List.init 12 (fun _ ->
      match Ycsb.next g with Ycsb.Read k -> Int64.to_int k | _ -> -1)
  in
  Alcotest.(check (list int)) "wraps around"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 0; 1 ] keys

let suite =
  ( "workload",
    [
      Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
      Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
      Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
      Alcotest.test_case "zipf scramble" `Quick test_zipf_scramble_spreads;
      Alcotest.test_case "ycsb mixes" `Quick test_ycsb_mixes;
      Alcotest.test_case "ycsb determinism" `Quick test_ycsb_determinism;
      Alcotest.test_case "sequential" `Quick test_sequential;
    ] )
