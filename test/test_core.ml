(* End-to-end tests of the hybrid FastVer system. *)

let mk ?(n = 1000) ?(workers = 2) ?(d = 3) ?(batch = 0) () =
  let config =
    {
      Fastver.Config.default with
      n_workers = workers;
      batch_size = batch;
      frontier_levels = d;
      cost_model = Cost_model.zero;
    }
  in
  let t = Fastver.create ~config () in
  Fastver.load t
    (Array.init n (fun i -> (Int64.of_int i, Printf.sprintf "v%06d" i)));
  t

let vo = Alcotest.(option string)

let ckpt t ~dir =
  match Fastver.checkpoint t ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "checkpoint: %s" e


let test_basic_ops () =
  let t = mk () in
  Alcotest.(check vo) "get first" (Some "v000000") (Fastver.get t 0L);
  Alcotest.(check vo) "get last" (Some "v000999") (Fastver.get t 999L);
  Alcotest.(check vo) "get missing" None (Fastver.get t 5555L);
  Fastver.put t 1L "updated";
  Alcotest.(check vo) "read own write" (Some "updated") (Fastver.get t 1L);
  Fastver.put t 7777L "inserted";
  Alcotest.(check vo) "insert" (Some "inserted") (Fastver.get t 7777L);
  Fastver.delete t 2L;
  Alcotest.(check vo) "delete" None (Fastver.get t 2L)

let test_verify_preserves_state () =
  let t = mk () in
  Fastver.put t 1L "x";
  Fastver.put t 8888L "y";
  Fastver.delete t 2L;
  let e = Fastver.current_epoch t in
  let cert = Fastver.verify t in
  Alcotest.(check bool) "certificate checks" true
    (Fastver.check_epoch_certificate t ~epoch:e cert);
  Alcotest.(check vo) "update survives" (Some "x") (Fastver.get t 1L);
  Alcotest.(check vo) "insert survives" (Some "y") (Fastver.get t 8888L);
  Alcotest.(check vo) "delete survives" None (Fastver.get t 2L);
  (* and across several more epochs *)
  for _ = 1 to 3 do
    ignore (Fastver.verify t)
  done;
  Alcotest.(check vo) "still there" (Some "x") (Fastver.get t 1L)

let test_empty_epochs () =
  let t = mk () in
  (* verification scans with no operations at all must balance *)
  for _ = 1 to 5 do
    ignore (Fastver.verify t)
  done;
  Alcotest.(check int) "five epochs verified" 5 (Fastver.current_epoch t)

let test_differential_model () =
  (* Random ops vs a Hashtbl model, with periodic verification scans. *)
  let n = 500 in
  let t = mk ~n ~workers:3 ~d:2 () in
  let model = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    Hashtbl.replace model (Int64.of_int i) (Printf.sprintf "v%06d" i)
  done;
  let rng = Random.State.make [| 2025 |] in
  for step = 1 to 4000 do
    let k = Int64.of_int (Random.State.int rng (2 * n)) in
    (match Random.State.int rng 4 with
    | 0 ->
        let v = Printf.sprintf "s%d" step in
        Fastver.put t k v;
        Hashtbl.replace model k v
    | 1 ->
        Fastver.delete t k;
        Hashtbl.remove model k
    | _ ->
        Alcotest.(check vo)
          (Printf.sprintf "step %d key %Ld" step k)
          (Hashtbl.find_opt model k) (Fastver.get t k));
    if step mod 500 = 0 then ignore (Fastver.verify t)
  done;
  ignore (Fastver.verify t);
  Hashtbl.iter
    (fun k v -> Alcotest.(check vo) "final state" (Some v) (Fastver.get t k))
    model

let test_scan () =
  let t = mk ~n:200 () in
  let r = Fastver.scan t 10L 20 in
  Alcotest.(check int) "length" 20 (Array.length r);
  Array.iteri
    (fun i (k, v) ->
      Alcotest.(check int64) "key" (Int64.of_int (10 + i)) k;
      Alcotest.(check vo) "value" (Some (Printf.sprintf "v%06d" (10 + i))) v)
    r;
  (* scan off the end of the population: absences verified *)
  let r = Fastver.scan t 195L 10 in
  Alcotest.(check vo) "within" (Some "v000195") (snd r.(0));
  Alcotest.(check vo) "beyond" None (snd r.(9))

let test_batching_auto_verify () =
  let t = mk ~batch:100 () in
  let gen =
    Fastver_workload.Ycsb.create ~db_size:1000 Fastver_workload.Ycsb.workload_a
  in
  Fastver.run_ops t gen 1000;
  let s = Fastver.stats t in
  Alcotest.(check bool) "around 10 automatic verifies" true
    (s.verifies >= 9 && s.verifies <= 11)

let test_sessions () =
  let t = mk () in
  let alice = Fastver.Session.connect t ~client_id:1 in
  let bob = Fastver.Session.connect t ~client_id:2 in
  let r1 = Fastver.Session.put alice 5L "from-alice" in
  let r2 = Fastver.Session.get bob 5L in
  Alcotest.(check vo) "bob reads alice's write" (Some "from-alice") r2.value;
  Fastver.Session.await_certainty alice r1;
  Fastver.Session.await_certainty bob r2;
  Alcotest.(check bool) "epochs advanced past receipts" true
    (Fastver.current_epoch t > r2.epoch)

let test_workers_one_and_many () =
  (* same outcomes regardless of worker count *)
  List.iter
    (fun workers ->
      let t = mk ~workers () in
      Fastver.put t 3L "w";
      ignore (Fastver.verify t);
      Alcotest.(check vo)
        (Printf.sprintf "workers=%d" workers)
        (Some "w") (Fastver.get t 3L))
    [ 1; 2; 4; 8 ]

let test_frontier_depths () =
  List.iter
    (fun d ->
      let t = mk ~d () in
      Fastver.put t 3L "x";
      ignore (Fastver.verify t);
      ignore (Fastver.verify t);
      Alcotest.(check vo) (Printf.sprintf "d=%d" d) (Some "x") (Fastver.get t 3L))
    [ 0; 1; 4; 8 ]

let test_empty_database () =
  let config = { Fastver.Config.default with batch_size = 0 } in
  let t = Fastver.create ~config () in
  Fastver.load t [||];
  Alcotest.(check vo) "nothing there" None (Fastver.get t 1L);
  Fastver.put t 1L "first";
  Alcotest.(check vo) "first insert" (Some "first") (Fastver.get t 1L);
  ignore (Fastver.verify t);
  Alcotest.(check vo) "survives" (Some "first") (Fastver.get t 1L)

let test_checkpoint_recover () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fv-test-ckpt" in
  let config =
    { Fastver.Config.default with batch_size = 0; frontier_levels = 2 }
  in
  let t = Fastver.create ~config () in
  Fastver.load t (Array.init 50 (fun i -> (Int64.of_int i, string_of_int i)));
  Fastver.put t 10L "before-ckpt";
  ignore (Fastver.verify t);
  ckpt t ~dir;
  match Fastver.recover ~config ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok t2 ->
      Alcotest.(check vo) "state back" (Some "before-ckpt") (Fastver.get t2 10L);
      Fastver.put t2 10L "after";
      ignore (Fastver.verify t2);
      Alcotest.(check vo) "works after recovery" (Some "after")
        (Fastver.get t2 10L)

let test_recover_tampered_tree () =
  let module C = Fastver_kvstore.Ckpt_io in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fv-test-tamper" in
  C.remove_tree dir;
  let config =
    { Fastver.Config.default with batch_size = 0; frontier_levels = 1 }
  in
  let t = Fastver.create ~config () in
  Fastver.load t (Array.init 50 (fun i -> (Int64.of_int i, string_of_int i)));
  ignore (Fastver.verify t);
  ckpt t ~dir;
  let gdir =
    match C.generations dir with
    | (_, g) :: _ -> g
    | [] -> Alcotest.fail "checkpoint wrote no generation"
  in
  (* corrupt one byte of the untrusted merkle-tree file *)
  let path = Filename.concat gdir "merkle-0.tree" in
  let ic = open_in_bin path in
  let raw = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Bytes.set raw (Bytes.length raw / 2)
    (Char.chr (Char.code (Bytes.get raw (Bytes.length raw / 2)) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc raw;
  close_out oc;
  (* The manifest is untrusted too: a host-controlled adversary re-hashes it
     so the generation still looks committed. Detection must come from the
     verifier, not the crash checksums. *)
  (match C.Manifest.read ~dir:gdir with
  | Error e -> Alcotest.fail e
  | Ok m ->
      let entries =
        List.map
          (fun (e : C.Manifest.entry) ->
            if e.name = "merkle-0.tree" then
              match C.Manifest.entry_of_file ~dir:gdir "merkle-0.tree" with
              | Ok e' -> e'
              | Error err -> Alcotest.fail err
            else e)
          m.entries
      in
      C.Manifest.write ~dir:gdir { m with entries });
  match Fastver.recover ~config ~dir () with
  | Error _ -> () (* rejected at parse time: fine *)
  | Ok t2 -> (
      (* or accepted structurally — then integrity checks must fire *)
      match
        for i = 0 to 49 do
          ignore (Fastver.get t2 (Int64.of_int i))
        done;
        ignore (Fastver.verify t2)
      with
      | exception Fastver.Integrity_violation _ -> ()
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "tampered tree file never detected")

let test_stats_accounting () =
  let t = mk ~n:100 () in
  for i = 0 to 49 do
    ignore (Fastver.get t (Int64.of_int i))
  done;
  let s = Fastver.stats t in
  Alcotest.(check int) "ops counted" 50 s.ops;
  Alcotest.(check int) "paths partition ops" 50 (s.blum_fast_path + s.merkle_path);
  Alcotest.(check bool) "enclave transitions charged" true
    (Fastver.enclave_overhead_ns t >= 0L)

let suite =
  ( "core",
    [
      Alcotest.test_case "basic ops" `Quick test_basic_ops;
      Alcotest.test_case "verify preserves state" `Quick test_verify_preserves_state;
      Alcotest.test_case "empty epochs" `Quick test_empty_epochs;
      Alcotest.test_case "differential vs model" `Slow test_differential_model;
      Alcotest.test_case "scan" `Quick test_scan;
      Alcotest.test_case "auto verify batching" `Quick test_batching_auto_verify;
      Alcotest.test_case "sessions" `Quick test_sessions;
      Alcotest.test_case "worker counts" `Quick test_workers_one_and_many;
      Alcotest.test_case "frontier depths" `Quick test_frontier_depths;
      Alcotest.test_case "empty database" `Quick test_empty_database;
      Alcotest.test_case "checkpoint/recover" `Quick test_checkpoint_recover;
      Alcotest.test_case "tampered tree file" `Quick test_recover_tampered_tree;
      Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    ] )

(* Values far larger than the 8-byte benchmark payloads flow through every
   tier: merkle hashing, blum elements, migration, store RCU. *)
let test_large_values () =
  let t = mk ~n:100 () in
  let big = String.init 4096 (fun i -> Char.chr (i mod 251)) in
  Fastver.put t 5L big;
  Alcotest.(check vo) "4KB value" (Some big) (Fastver.get t 5L);
  ignore (Fastver.verify t);
  Alcotest.(check vo) "4KB value after scan" (Some big) (Fastver.get t 5L);
  Fastver.put t 5L "";
  Alcotest.(check vo) "empty value distinct from null" (Some "")
    (Fastver.get t 5L);
  ignore (Fastver.verify t);
  Alcotest.(check vo) "empty value persists" (Some "") (Fastver.get t 5L)

let suite =
  ( fst suite,
    snd suite @ [ Alcotest.test_case "large values" `Quick test_large_values ] )
