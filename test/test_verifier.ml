(* The verifier state machine: honest flows. Adversarial flows (which must be
   detected) live in test_adversary.ml. *)

open Fastver_verifier

let ok_exn name = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s failed: %s" name e

(* A small world: data keys 0..n-1 with values "v<i>", a host tree, and a
   verifier with the matching root installed. *)
type world = {
  v : Verifier.t;
  tree : unit Tree.t;
  values : (int64, string) Hashtbl.t;
}

let mk_world ?(threads = 1) ?(capacity = 512) n =
  let tree = Tree.create ~root_aux:() in
  let values = Hashtbl.create 64 in
  let records =
    Array.init n (fun i ->
        let k = Int64.of_int i in
        let s = Printf.sprintf "v%d" i in
        Hashtbl.replace values k s;
        (Key.of_int64 k, Value.Data (Some s)))
  in
  Tree.bulk_build tree ~aux:(fun _ _ -> ()) records;
  let v =
    Verifier.create
      { Verifier.default_config with n_threads = threads; cache_capacity = capacity }
  in
  ok_exn "install_root"
    (Verifier.install_root v (Tree.get_exn tree Key.root).Tree.value);
  { v; tree; values }

(* Add the merkle chain for [key] into thread [tid]'s cache; returns the
   pointing parent. Assumes chain nodes not yet cached. *)
let add_chain w ~tid key =
  let d = Tree.descend w.tree key in
  let arr = Array.of_list d.Tree.path in
  Array.iteri
    (fun j k ->
      if j > 0 && Verifier.cached w.v ~tid k = None then
        ignore
          (ok_exn "add_m chain"
             (Verifier.add_m w.v ~tid ~key:k
                ~value:(Tree.get_exn w.tree k).Tree.value ~parent:arr.(j - 1))))
    arr;
  (arr.(Array.length arr - 1), d.Tree.outcome)

let test_add_get_evict () =
  let w = mk_world 64 in
  let key = Key.of_int64 7L in
  let parent, outcome = add_chain w ~tid:0 key in
  Alcotest.(check bool) "exists" true (outcome = Tree.Exists);
  ignore
    (ok_exn "add_m leaf"
       (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v7")) ~parent));
  ok_exn "vget" (Verifier.vget w.v ~tid:0 ~key (Some "v7"));
  let ptr = ok_exn "evict_m" (Verifier.evict_m w.v ~tid:0 ~key ~parent) in
  Alcotest.(check bool) "evict ptr names key" true (Key.equal ptr.Value.key key);
  Alcotest.(check bool) "healthy" true (Verifier.failure w.v = None)

let test_put_then_reread () =
  let w = mk_world 64 in
  let key = Key.of_int64 3L in
  let parent, _ = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add" (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v3")) ~parent));
  ok_exn "vput" (Verifier.vput w.v ~tid:0 ~key (Some "new"));
  ok_exn "vget sees update" (Verifier.vget w.v ~tid:0 ~key (Some "new"));
  let ptr = ok_exn "evict" (Verifier.evict_m w.v ~tid:0 ~key ~parent) in
  (* re-adding with the updated value authenticates against the new hash *)
  (Tree.get_exn w.tree parent).Tree.value <-
    (match (Tree.get_exn w.tree parent).Tree.value with
    | Value.Node n ->
        Value.Node (Value.set_slot n (Key.dir key ~ancestor:parent) (Some ptr))
    | Value.Data _ -> assert false);
  ignore
    (ok_exn "re-add new value"
       (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "new")) ~parent));
  ok_exn "vget" (Verifier.vget w.v ~tid:0 ~key (Some "new"))

let test_absence_proof () =
  let w = mk_world 8 in
  let missing = Key.of_int64 1_000_000L in
  let parent, outcome = add_chain w ~tid:0 missing in
  Alcotest.(check bool) "not exists" true (outcome <> Tree.Exists);
  ok_exn "vget_absent" (Verifier.vget_absent w.v ~tid:0 ~key:missing ~parent)

let test_fresh_insert () =
  let w = mk_world 4 in
  (* keys 0..3 exist; insert 1M: splits or lands in an empty slot *)
  let key = Key.of_int64 1_000_000L in
  let parent, outcome = add_chain w ~tid:0 key in
  (match outcome with
  | Tree.Empty_slot ->
      ignore
        (ok_exn "fresh add"
           (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data None) ~parent))
  | Tree.Split pointee ->
      let node_key = Key.lca key pointee in
      let old_ptr =
        match (Tree.get_exn w.tree parent).Tree.value with
        | Value.Node n -> Option.get (Value.slot n (Key.dir key ~ancestor:parent))
        | Value.Data _ -> assert false
      in
      let node_value =
        Value.Node
          (Value.set_slot { left = None; right = None }
             (Key.dir pointee ~ancestor:node_key)
             (Some old_ptr))
      in
      ignore
        (ok_exn "split node"
           (Verifier.add_m w.v ~tid:0 ~key:node_key ~value:node_value ~parent));
      ignore
        (ok_exn "fresh add under split"
           (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data None)
              ~parent:node_key))
  | Tree.Exists -> Alcotest.fail "fresh key exists");
  ok_exn "vput" (Verifier.vput w.v ~tid:0 ~key (Some "inserted"));
  ok_exn "vget" (Verifier.vget w.v ~tid:0 ~key (Some "inserted"))

let test_blum_cycle_and_epoch () =
  let w = mk_world 16 in
  let key = Key.of_int64 5L in
  let parent, _ = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add" (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v5")) ~parent));
  (* hand over to blum *)
  let ts0 = Timestamp.make ~epoch:0 ~counter:1 in
  ok_exn "evict_bm" (Verifier.evict_bm w.v ~tid:0 ~key ~timestamp:ts0 ~parent);
  (* blum round trip *)
  ok_exn "add_b"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "v5")) ~timestamp:ts0);
  ok_exn "vput in blum" (Verifier.vput w.v ~tid:0 ~key (Some "v5'"));
  let ts1 = Verifier.clock w.v ~tid:0 in
  ok_exn "evict_b" (Verifier.evict_b w.v ~tid:0 ~key ~timestamp:ts1);
  (* migrate back to merkle so epoch 0 balances *)
  ok_exn "re-add_b"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "v5'")) ~timestamp:ts1);
  ignore (ok_exn "evict_m back" (Verifier.evict_m w.v ~tid:0 ~key ~parent));
  ok_exn "close" (Verifier.close_epoch w.v ~tid:0 ~epoch:0);
  let cert = ok_exn "verify" (Verifier.verify_epoch w.v ~epoch:0) in
  Alcotest.(check int) "32-byte cert" 32 (String.length cert);
  Alcotest.(check int) "verified epoch" 0 (Verifier.verified_epoch w.v)

let test_multi_thread_migration () =
  (* A record evicted to blum by thread 0 re-enters through thread 1; the
     aggregated epoch hashes must still balance (§5.3). *)
  let w = mk_world ~threads:2 16 in
  let key = Key.of_int64 9L in
  let parent, _ = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add" (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v9")) ~parent));
  let ts0 = Timestamp.make ~epoch:0 ~counter:1 in
  ok_exn "evict_bm@0" (Verifier.evict_bm w.v ~tid:0 ~key ~timestamp:ts0 ~parent);
  ok_exn "add_b@1"
    (Verifier.add_b w.v ~tid:1 ~key ~value:(Value.Data (Some "v9")) ~timestamp:ts0);
  Alcotest.(check bool) "thread 1 clock advanced" true
    (Timestamp.compare (Verifier.clock w.v ~tid:1) ts0 > 0);
  let ts1 = Timestamp.max (Verifier.clock w.v ~tid:1) (Timestamp.first_of_epoch 1) in
  ok_exn "evict_b@1 into epoch 1" (Verifier.evict_b w.v ~tid:1 ~key ~timestamp:ts1);
  ok_exn "close@0" (Verifier.close_epoch w.v ~tid:0 ~epoch:0);
  ok_exn "close@1" (Verifier.close_epoch w.v ~tid:1 ~epoch:0);
  ignore (ok_exn "verify 0" (Verifier.verify_epoch w.v ~epoch:0));
  (* epoch 1: bring it home through thread 0 *)
  ok_exn "add_b@0"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "v9")) ~timestamp:ts1);
  ignore (ok_exn "evict_m@0" (Verifier.evict_m w.v ~tid:0 ~key ~parent));
  ok_exn "close@0/1" (Verifier.close_epoch w.v ~tid:0 ~epoch:1);
  ok_exn "close@1/1" (Verifier.close_epoch w.v ~tid:1 ~epoch:1);
  ignore (ok_exn "verify 1" (Verifier.verify_epoch w.v ~epoch:1))

let test_lazy_updates_stay_consistent () =
  (* Example 4.3: update a record, evict it (parent hash updated), then
     evict the parent — the grandparent's stale hash must have been
     refreshed by the parent's eviction for a later re-add to succeed. *)
  let w = mk_world 256 in
  let key = Key.of_int64 100L in
  let parent, _ = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add"
       (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v100")) ~parent));
  ok_exn "vput" (Verifier.vput w.v ~tid:0 ~key (Some "updated"));
  let ptr = ok_exn "evict leaf" (Verifier.evict_m w.v ~tid:0 ~key ~parent) in
  let update_tree k p =
    let e = Tree.get_exn w.tree k in
    match e.Tree.value with
    | Value.Node n ->
        e.Tree.value <-
          Value.Node (Value.set_slot n (Key.dir p.Value.key ~ancestor:k) (Some p))
    | Value.Data _ -> assert false
  in
  update_tree parent ptr;
  (* now evict the whole chain bottom-up *)
  let d = Tree.descend w.tree key in
  let rec evict_up = function
    | [] | [ _ ] -> ()
    | p :: (k :: _ as rest) ->
        evict_up rest;
        if not (Key.equal k Key.root) then begin
          let ptr = ok_exn "evict chain" (Verifier.evict_m w.v ~tid:0 ~key:k ~parent:p) in
          update_tree p ptr
        end
  in
  evict_up d.Tree.path;
  (* everything out of cache: a fresh chain walk must authenticate *)
  let parent', _ = add_chain w ~tid:0 key in
  ignore
    (ok_exn "re-add after lazy propagation"
       (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "updated"))
          ~parent:parent'));
  ok_exn "vget" (Verifier.vget w.v ~tid:0 ~key (Some "updated"))

let test_cache_capacity () =
  (* A bounded cache eventually rejects adds: the P1 enforcement point. *)
  let v = Verifier.create { Verifier.default_config with cache_capacity = 4 } in
  let rec fill i =
    if i > 16 then Alcotest.fail "capacity never enforced"
    else
      match
        Verifier.add_b v ~tid:0 ~key:(Key.of_int64 (Int64.of_int (1000 + i)))
          ~value:(Value.Data None) ~timestamp:Timestamp.zero
      with
      | Ok () -> fill (i + 1)
      | Error _ -> i
  in
  let filled = fill 0 in
  Alcotest.(check int) "rejects at capacity (root occupies one slot)" 3 filled;
  Alcotest.(check bool) "poisoned afterwards" true (Verifier.failure v <> None)

let test_install_blum_setup () =
  let v = Verifier.create Verifier.default_config in
  let key = Key.of_int64 1L in
  ok_exn "install"
    (Verifier.install_blum v ~tid:0 ~key ~value:(Value.Data (Some "x"))
       ~timestamp:Timestamp.zero);
  ok_exn "add_b matches install"
    (Verifier.add_b v ~tid:0 ~key ~value:(Value.Data (Some "x"))
       ~timestamp:Timestamp.zero);
  let ts = Verifier.clock v ~tid:0 in
  ok_exn "evict into epoch 1"
    (Verifier.evict_b v ~tid:0 ~key
       ~timestamp:(Timestamp.max ts (Timestamp.first_of_epoch 1)));
  ok_exn "close" (Verifier.close_epoch v ~tid:0 ~epoch:0);
  ignore (ok_exn "verify" (Verifier.verify_epoch v ~epoch:0))

let test_checkpoint_summary_roundtrip () =
  let w = mk_world 16 in
  let key = Key.of_int64 2L in
  let parent, _ = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add" (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v2")) ~parent));
  ok_exn "evict_bm"
    (Verifier.evict_bm w.v ~tid:0 ~key ~timestamp:(Timestamp.make ~epoch:0 ~counter:1)
       ~parent);
  let update_tree k p =
    let e = Tree.get_exn w.tree k in
    match e.Tree.value with
    | Value.Node n ->
        e.Tree.value <-
          Value.Node (Value.set_slot n (Key.dir p.Value.key ~ancestor:k) (Some p))
    | Value.Data _ -> assert false
  in
  (* mirror the in_blum mark the verifier just set in the cached parent *)
  (match (Verifier.cached w.v ~tid:0 parent : Value.t option) with
  | Some v -> (Tree.get_exn w.tree parent).Tree.value <- v
  | None -> assert false);
  (* evict the chain so caches are clean, mirroring returned pointers *)
  let d = Tree.descend w.tree key in
  let rec evict_up = function
    | [] | [ _ ] -> ()
    | p :: (k :: _ as rest) ->
        evict_up rest;
        if not (Key.equal k Key.root) then begin
          let ptr = ok_exn "evict" (Verifier.evict_m w.v ~tid:0 ~key:k ~parent:p) in
          update_tree p ptr
        end
  in
  evict_up d.Tree.path;
  let summary = ok_exn "summary" (Verifier.checkpoint_summary w.v) in
  let v2 = ok_exn "restore" (Verifier.of_summary (Verifier.config w.v) summary) in
  Alcotest.(check int) "verified epoch preserved"
    (Verifier.verified_epoch w.v) (Verifier.verified_epoch v2);
  Alcotest.(check bool) "clock preserved" true
    (Timestamp.compare (Verifier.clock w.v ~tid:0) (Verifier.clock v2 ~tid:0) = 0);
  (* the restored verifier accepts the pending blum record and verifies *)
  ok_exn "add_b after restore"
    (Verifier.add_b v2 ~tid:0 ~key ~value:(Value.Data (Some "v2"))
       ~timestamp:(Timestamp.make ~epoch:0 ~counter:1));
  let parent', _ = add_chain { w with v = v2 } ~tid:0 key in
  ignore (ok_exn "evict_m" (Verifier.evict_m v2 ~tid:0 ~key ~parent:parent'));
  ok_exn "close" (Verifier.close_epoch v2 ~tid:0 ~epoch:0);
  ignore (ok_exn "verify" (Verifier.verify_epoch v2 ~epoch:0))

let test_timestamp_packing () =
  let ts = Timestamp.make ~epoch:7 ~counter:42 in
  Alcotest.(check int) "epoch" 7 (Timestamp.epoch ts);
  Alcotest.(check int) "counter" 42 (Timestamp.counter ts);
  Alcotest.(check int) "next counter" 43 (Timestamp.counter (Timestamp.next ts));
  Alcotest.(check bool) "epoch order dominates" true
    (Timestamp.compare (Timestamp.make ~epoch:1 ~counter:0)
       (Timestamp.make ~epoch:0 ~counter:99999) > 0);
  Alcotest.(check bool) "first_of_epoch" true
    (Timestamp.compare (Timestamp.first_of_epoch 3)
       (Timestamp.make ~epoch:3 ~counter:0) = 0)

let suite =
  ( "verifier",
    [
      Alcotest.test_case "add/get/evict" `Quick test_add_get_evict;
      Alcotest.test_case "put then reread" `Quick test_put_then_reread;
      Alcotest.test_case "absence proof" `Quick test_absence_proof;
      Alcotest.test_case "fresh insert" `Quick test_fresh_insert;
      Alcotest.test_case "blum cycle + epoch" `Quick test_blum_cycle_and_epoch;
      Alcotest.test_case "multi-thread migration" `Quick test_multi_thread_migration;
      Alcotest.test_case "lazy updates" `Quick test_lazy_updates_stay_consistent;
      Alcotest.test_case "install_blum setup" `Quick test_install_blum_setup;
      Alcotest.test_case "summary roundtrip" `Quick test_checkpoint_summary_roundtrip;
      Alcotest.test_case "timestamp packing" `Quick test_timestamp_packing;
    ] )

(* The split case must preserve the displaced pointer verbatim — including
   its in_blum mark, or Blum protection could be silently shed. *)
let test_split_preserves_in_blum () =
  let w = mk_world 4 in
  (* move key 2 into the deferred tier so its parent slot is marked *)
  let victim = Key.of_int64 2L in
  let parent, _ = add_chain w ~tid:0 victim in
  ignore
    (ok_exn "add"
       (Verifier.add_m w.v ~tid:0 ~key:victim ~value:(Value.Data (Some "v2"))
          ~parent));
  ok_exn "evict_bm"
    (Verifier.evict_bm w.v ~tid:0 ~key:victim
       ~timestamp:(Timestamp.make ~epoch:0 ~counter:1) ~parent);
  (* double evict_bm of the same record is impossible: not cached anymore *)
  (match
     Verifier.evict_bm w.v ~tid:0 ~key:victim
       ~timestamp:(Timestamp.make ~epoch:0 ~counter:2) ~parent
   with
  | Ok () -> Alcotest.fail "evicted a non-cached record"
  | Error _ -> ());
  Alcotest.(check bool) "poisoned after bogus evict" true
    (Verifier.failure w.v <> None)

let test_enclave_cost_models () =
  let e = Enclave.create Cost_model.simulated in
  Alcotest.(check int) "no transitions yet" 0 (Enclave.transitions e);
  let x = Enclave.call e (fun () -> 6 * 7) in
  Alcotest.(check int) "call result" 42 x;
  Alcotest.(check int) "one transition" 1 (Enclave.transitions e);
  Alcotest.(check int64) "8us charged" 8000L (Enclave.charged_ns e);
  (* nested calls charge once *)
  ignore (Enclave.call e (fun () -> Enclave.call e (fun () -> 1)));
  Alcotest.(check int) "nested = one transition" 2 (Enclave.transitions e);
  Enclave.charge_transitions e 10;
  Alcotest.(check int) "manual accounting" 12 (Enclave.transitions e);
  (* the sgx model surcharges in-enclave time *)
  let sgx = Enclave.create Cost_model.sgx in
  ignore
    (Enclave.call sgx (fun () ->
         let t0 = Unix.gettimeofday () in
         while Unix.gettimeofday () -. t0 < 0.01 do () done));
  (* ~10ms inside * (1.11 - 1) ≈ 1.1ms surcharge, plus the 8µs transition *)
  Alcotest.(check bool) "memory factor charged" true
    (Int64.compare (Enclave.charged_ns sgx) 500_000L > 0)

let test_timestamp_overflow () =
  let ts = Timestamp.make ~epoch:1 ~counter:0xffff_ffff in
  Alcotest.check_raises "counter overflow"
    (Invalid_argument "Timestamp.next: counter overflow") (fun () ->
      ignore (Timestamp.next ts))

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "split preserves in_blum" `Quick
          test_split_preserves_in_blum;
        Alcotest.test_case "enclave cost models" `Quick test_enclave_cost_models;
        Alcotest.test_case "timestamp overflow" `Quick test_timestamp_overflow;
      ] )
