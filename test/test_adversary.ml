(* Adversarial tests: a byzantine host drives the raw verifier API (§2.2 —
   the attacker can make arbitrary calls). Every deviation must be caught by
   some check, either immediately or at epoch verification. *)

open Fastver_verifier

let ok_exn name = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s failed unexpectedly: %s" name e

let expect_fail name = function
  | Ok _ -> Alcotest.failf "%s: attack was not detected" name
  | Error _ -> ()

type world = {
  v : Verifier.t;
  tree : unit Tree.t;
}

let mk_world ?(threads = 1) n =
  let tree = Tree.create ~root_aux:() in
  let records =
    Array.init n (fun i ->
        (Key.of_int64 (Int64.of_int i), Value.Data (Some (Printf.sprintf "v%d" i))))
  in
  Tree.bulk_build tree ~aux:(fun _ _ -> ()) records;
  let v =
    Verifier.create { Verifier.default_config with n_threads = threads }
  in
  ok_exn "install_root"
    (Verifier.install_root v (Tree.get_exn tree Key.root).Tree.value);
  { v; tree }

let add_chain w ~tid key =
  let d = Tree.descend w.tree key in
  let arr = Array.of_list d.Tree.path in
  Array.iteri
    (fun j k ->
      if j > 0 && Verifier.cached w.v ~tid k = None then
        ignore
          (ok_exn "chain"
             (Verifier.add_m w.v ~tid ~key:k
                ~value:(Tree.get_exn w.tree k).Tree.value ~parent:arr.(j - 1))))
    arr;
  arr.(Array.length arr - 1)

(* 1. Presenting a tampered data value under a Merkle proof. *)
let test_tampered_value () =
  let w = mk_world 64 in
  let key = Key.of_int64 7L in
  let parent = add_chain w ~tid:0 key in
  expect_fail "tampered value"
    (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "EVIL")) ~parent)

(* 2. Presenting a tampered merkle record on the chain. *)
let test_tampered_merkle_record () =
  let w = mk_world 64 in
  let key = Key.of_int64 7L in
  let d = Tree.descend w.tree key in
  match d.Tree.path with
  | _root :: (second :: _ as _rest) when not (Key.is_data_key second) ->
      let good = Tree.get_exn w.tree second in
      let evil =
        match good.Tree.value with
        | Value.Node { left = Some p; right } ->
            Value.Node { left = Some { p with hash = String.make 32 'X' }; right }
        | Value.Node { left = None; right = Some p } ->
            Value.Node { left = Some p; right = Some p }
        | _ -> Alcotest.fail "unexpected shape"
      in
      expect_fail "tampered merkle value"
        (Verifier.add_m w.v ~tid:0 ~key:second ~value:evil ~parent:Key.root)
  | _ -> Alcotest.fail "tree too shallow"

(* 3. Claiming a wrong parent for add_m. *)
let test_wrong_parent () =
  let w = mk_world 64 in
  let key = Key.of_int64 7L in
  let _parent = add_chain w ~tid:0 key in
  (* the root is an ancestor but not the pointing parent *)
  expect_fail "wrong parent"
    (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v7"))
       ~parent:Key.root);
  (* a non-ancestor is rejected outright *)
  let w2 = mk_world 64 in
  expect_fail "non-ancestor parent"
    (Verifier.add_m w2.v ~tid:0 ~key ~value:(Value.Data (Some "v7"))
       ~parent:(Key.of_int64 3L))

(* 4. The cross-mechanism replay the in_blum bit exists to stop: hand a
   record to Blum, then try to re-introduce its old version via Merkle. *)
let test_in_blum_replay () =
  let w = mk_world 64 in
  let key = Key.of_int64 9L in
  let parent = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add" (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v9")) ~parent));
  ok_exn "vput" (Verifier.vput w.v ~tid:0 ~key (Some "v9-new"));
  ok_exn "evict_bm"
    (Verifier.evict_bm w.v ~tid:0 ~key ~timestamp:(Timestamp.make ~epoch:0 ~counter:5)
       ~parent);
  (* parent still holds the hash of the OLD value, but marked in_blum *)
  expect_fail "stale merkle re-add"
    (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v9")) ~parent)

(* 5. Replaying an old blum record (stale timestamp): detected at epoch
   verification because the multisets cannot balance. *)
let test_blum_stale_replay () =
  let w = mk_world 64 in
  let key = Key.of_int64 4L in
  let parent = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add" (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v4")) ~parent));
  let ts0 = Timestamp.make ~epoch:0 ~counter:1 in
  ok_exn "evict_bm" (Verifier.evict_bm w.v ~tid:0 ~key ~timestamp:ts0 ~parent);
  (* honest round: add, update to "v4b", evict at ts1 *)
  ok_exn "add_b"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "v4")) ~timestamp:ts0);
  ok_exn "vput" (Verifier.vput w.v ~tid:0 ~key (Some "v4b"));
  let ts1 = Verifier.clock w.v ~tid:0 in
  ok_exn "evict_b" (Verifier.evict_b w.v ~tid:0 ~key ~timestamp:ts1);
  (* ATTACK: serve the old value (v4, ts0) to a reader *)
  ok_exn "replayed add_b accepted provisionally"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "v4")) ~timestamp:ts0);
  ok_exn "stale read validated provisionally"
    (Verifier.vget w.v ~tid:0 ~key (Some "v4"));
  let ts2 = Verifier.clock w.v ~tid:0 in
  ok_exn "evict" (Verifier.evict_b w.v ~tid:0 ~key ~timestamp:ts2);
  (* balance as well as the host can... *)
  ok_exn "migrate"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "v4b")) ~timestamp:ts1);
  let ts3 = Timestamp.max (Verifier.clock w.v ~tid:0) (Timestamp.first_of_epoch 1) in
  ok_exn "evict fwd" (Verifier.evict_b w.v ~tid:0 ~key ~timestamp:ts3);
  ok_exn "close" (Verifier.close_epoch w.v ~tid:0 ~epoch:0);
  expect_fail "epoch verification catches replay"
    (Verifier.verify_epoch w.v ~epoch:0)

(* 6. Forking a record across two verifier threads by double-adding: the
   additive multiset hash counts multiplicities, so epoch checks fail. *)
let test_cross_thread_fork () =
  let w = mk_world ~threads:2 64 in
  let key = Key.of_int64 11L in
  let parent = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add" (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v11")) ~parent));
  let ts0 = Timestamp.make ~epoch:0 ~counter:1 in
  ok_exn "evict_bm" (Verifier.evict_bm w.v ~tid:0 ~key ~timestamp:ts0 ~parent);
  (* ATTACK: add the same (record, ts) into BOTH threads *)
  ok_exn "fork copy 1"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "v11")) ~timestamp:ts0);
  ok_exn "fork copy 2"
    (Verifier.add_b w.v ~tid:1 ~key ~value:(Value.Data (Some "v11")) ~timestamp:ts0);
  (* both copies evicted into the next epoch, "balancing" naively *)
  let e1 = Timestamp.first_of_epoch 1 in
  ok_exn "evict 1" (Verifier.evict_b w.v ~tid:0 ~key ~timestamp:e1);
  ok_exn "evict 2" (Verifier.evict_b w.v ~tid:1 ~key ~timestamp:e1);
  ok_exn "close 0" (Verifier.close_epoch w.v ~tid:0 ~epoch:0);
  ok_exn "close 1" (Verifier.close_epoch w.v ~tid:1 ~epoch:0);
  expect_fail "fork detected at epoch verification"
    (Verifier.verify_epoch w.v ~epoch:0)

(* 7. Same-thread double add of a cached key is rejected immediately. *)
let test_double_add_same_thread () =
  let w = mk_world 64 in
  let key = Key.of_int64 3L in
  let parent = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add" (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v3")) ~parent));
  expect_fail "double add_m"
    (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v3")) ~parent);
  let w = mk_world 64 in
  let key = Key.of_int64 3L in
  ok_exn "add_b"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "x"))
       ~timestamp:Timestamp.zero);
  expect_fail "double add_b"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "x"))
       ~timestamp:Timestamp.zero)

(* 8. Evict-method confusion. *)
let test_evict_method_confusion () =
  let w = mk_world 64 in
  let key = Key.of_int64 5L in
  let parent = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add" (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v5")) ~parent));
  expect_fail "evict_b of merkle-added record"
    (Verifier.evict_b w.v ~tid:0 ~key ~timestamp:(Timestamp.make ~epoch:0 ~counter:9));
  let w = mk_world 64 in
  let key = Key.of_int64 5L in
  let parent = add_chain w ~tid:0 key in
  ok_exn "add_b"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "v5"))
       ~timestamp:Timestamp.zero);
  expect_fail "evict_bm of blum-added record"
    (Verifier.evict_bm w.v ~tid:0 ~key
       ~timestamp:(Timestamp.make ~epoch:0 ~counter:9) ~parent)

(* 9. Timestamp discipline on evictions. *)
let test_timestamp_regression () =
  let w = mk_world 64 in
  let key = Key.of_int64 6L in
  ok_exn "add_b"
    (Verifier.add_b w.v ~tid:0 ~key ~value:(Value.Data (Some "x"))
       ~timestamp:(Timestamp.make ~epoch:0 ~counter:50));
  (* clock is now (0,51); evicting at (0,10) would let elements collide *)
  expect_fail "backwards evict timestamp"
    (Verifier.evict_b w.v ~tid:0 ~key ~timestamp:(Timestamp.make ~epoch:0 ~counter:10))

(* 10. Contributing to an already-verified epoch. *)
let test_closed_epoch_write () =
  let w = mk_world 64 in
  ok_exn "close" (Verifier.close_epoch w.v ~tid:0 ~epoch:0);
  ignore (ok_exn "verify" (Verifier.verify_epoch w.v ~epoch:0));
  expect_fail "add_b into verified epoch"
    (Verifier.add_b w.v ~tid:0 ~key:(Key.of_int64 1L) ~value:(Value.Data None)
       ~timestamp:(Timestamp.make ~epoch:0 ~counter:99))

(* 11. Wrong-value validation is immediate. *)
let test_vget_wrong_value () =
  let w = mk_world 64 in
  let key = Key.of_int64 8L in
  let parent = add_chain w ~tid:0 key in
  ignore
    (ok_exn "add" (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v8")) ~parent));
  expect_fail "wrong value" (Verifier.vget w.v ~tid:0 ~key (Some "forged"));
  Alcotest.(check bool) "poisoned" true (Verifier.failure w.v <> None)

(* 12. False absence claims. *)
let test_false_absence () =
  let w = mk_world 64 in
  let key = Key.of_int64 8L in
  let parent = add_chain w ~tid:0 key in
  (* key 8 exists: its pointing parent's slot names it *)
  expect_fail "absence of existing key"
    (Verifier.vget_absent w.v ~tid:0 ~key ~parent)

(* 13. Poisoning is permanent. *)
let test_poison_permanent () =
  let w = mk_world 64 in
  let key = Key.of_int64 8L in
  let parent = add_chain w ~tid:0 key in
  expect_fail "bad add"
    (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "EVIL")) ~parent);
  expect_fail "all later ops refused"
    (Verifier.add_m w.v ~tid:0 ~key ~value:(Value.Data (Some "v8")) ~parent);
  expect_fail "epochs refused" (Verifier.close_epoch w.v ~tid:0 ~epoch:0)

(* 14. Sealed-slot rollback protection (§2.2's persistent hash). *)
let test_sealed_slot () =
  let open Enclave.Sealed_slot in
  let slot = create () in
  store slot "state-1";
  let old_blob = external_blob slot in
  store slot "state-2";
  Alcotest.(check (result string string)) "load latest" (Ok "state-2") (load slot);
  (* tamper *)
  let tampered = Bytes.of_string (external_blob slot) in
  Bytes.set tampered 9 'X';
  inject_blob slot (Bytes.to_string tampered);
  (match load slot with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered blob accepted");
  (* rollback to the old (validly MAC'd) blob *)
  inject_blob slot old_blob;
  (match load slot with
  | Error e ->
      Alcotest.(check bool) "rollback named" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "rollback accepted")

(* 15. End-to-end: tamper with the host store behind FastVer's back. *)
let test_end_to_end_tamper () =
  let config =
    { Fastver.Config.default with batch_size = 0; frontier_levels = 2 }
  in
  let t = Fastver.create ~config () in
  Fastver.load t (Array.init 100 (fun i -> (Int64.of_int i, Printf.sprintf "v%d" i)));
  ignore (Fastver.get t 5L);
  ignore (Fastver.verify t);
  (* flip a record via an unauthorised direct write to the host store *)
  Fastver.Testing.corrupt_store t 5L (Some "EVIL");
  (match Fastver.get t 5L with
  | exception Fastver.Integrity_violation _ -> ()
  | v ->
      (* the forged value may be validated provisionally; verification of the
         epoch must then fail *)
      Alcotest.(check (option string)) "forged value surfaced" (Some "EVIL") v;
      (match Fastver.verify t with
      | exception Fastver.Integrity_violation _ -> ()
      | _ -> Alcotest.fail "tampering never detected"))

(* 16. End-to-end: client signature forgery and nonce replay. *)
let test_client_auth () =
  let config = { Fastver.Config.default with batch_size = 0 } in
  let t = Fastver.create ~config () in
  Fastver.load t [| (1L, "one") |];
  let s = Fastver.Session.connect t ~client_id:1 in
  ignore (Fastver.Session.put s 1L "legit");
  (* replaying the same nonce must be rejected by the gateway *)
  (match Fastver.Testing.replay_last_put t with
  | exception Fastver.Integrity_violation _ -> ()
  | () -> Alcotest.fail "nonce replay accepted");
  ()

let suite =
  ( "adversary",
    [
      Alcotest.test_case "tampered data value" `Quick test_tampered_value;
      Alcotest.test_case "tampered merkle record" `Quick test_tampered_merkle_record;
      Alcotest.test_case "wrong parent" `Quick test_wrong_parent;
      Alcotest.test_case "in_blum replay" `Quick test_in_blum_replay;
      Alcotest.test_case "blum stale replay" `Quick test_blum_stale_replay;
      Alcotest.test_case "cross-thread fork" `Quick test_cross_thread_fork;
      Alcotest.test_case "double add" `Quick test_double_add_same_thread;
      Alcotest.test_case "evict-method confusion" `Quick test_evict_method_confusion;
      Alcotest.test_case "timestamp regression" `Quick test_timestamp_regression;
      Alcotest.test_case "write to verified epoch" `Quick test_closed_epoch_write;
      Alcotest.test_case "wrong value" `Quick test_vget_wrong_value;
      Alcotest.test_case "false absence" `Quick test_false_absence;
      Alcotest.test_case "poison permanent" `Quick test_poison_permanent;
      Alcotest.test_case "sealed slot" `Quick test_sealed_slot;
      Alcotest.test_case "end-to-end store tamper" `Quick test_end_to_end_tamper;
      Alcotest.test_case "client auth" `Quick test_client_auth;
    ] )
