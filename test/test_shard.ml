(* Sharded verification (§8.2): the aggregated epoch certificate must be
   bit-identical whatever the shard count, because the per-shard multiset
   folds merge order-independently into the same store-level accumulators
   a single verifier would have built. These tests pin that equivalence —
   fixed scenarios across a sweep of widths plus a QCheck property over
   random workloads — and exercise the total recover/checkpoint paths that
   the sharded layout leans on: hostile bytes in any per-shard component
   must yield [Error] (never an exception), a failed checkpoint must leave
   the system live, and recovery must adopt the sealed shard layout rather
   than trust the caller's config. *)

module C = Fastver_kvstore.Ckpt_io

let vo = Alcotest.(option string)

let config ?(shards = 1) () =
  {
    Fastver.Config.default with
    n_workers = 1;
    n_shards = shards;
    batch_size = 0;
    frontier_levels = 2;
    cost_model = Cost_model.zero;
  }

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  C.remove_tree dir;
  dir

(* Run one scripted workload at a given shard count: load [n] records,
   then apply [ops] as epochs of puts, collecting every epoch certificate
   the store seals along the way. *)
let run_epochs ~shards ~n ops =
  let t = Fastver.create ~config:(config ~shards ()) () in
  Fastver.load t
    (Array.init n (fun i -> (Int64.of_int i, Printf.sprintf "v%06d" i)));
  let certs =
    List.map
      (fun epoch_ops ->
        List.iter
          (fun (k, v) -> Fastver.put t (Int64.of_int (k mod n)) v)
          epoch_ops;
        let epoch = Fastver.current_epoch t in
        (epoch, Fastver.verify t))
      ops
  in
  (t, certs)

(* ------------------------------------------------------------------ *)
(* Certificates are independent of the shard count                     *)
(* ------------------------------------------------------------------ *)

let scripted_ops =
  [
    [ (1, "a"); (17, "b"); (3, "c") ];
    [ (1, "a2"); (29, "d"); (5, "e"); (12, "f") ];
    [];
    [ (31, "g"); (0, "h") ];
  ]

let test_cert_equal_across_widths () =
  let _, base = run_epochs ~shards:1 ~n:32 scripted_ops in
  List.iter
    (fun shards ->
      let t, certs = run_epochs ~shards ~n:32 scripted_ops in
      Alcotest.(check int)
        (Printf.sprintf "%d shards materialised" shards)
        shards (Fastver.n_shards t);
      List.iter2
        (fun (e1, c1) (en, cn) ->
          Alcotest.(check int)
            (Printf.sprintf "epoch number @ %d shards" shards)
            e1 en;
          Alcotest.(check string)
            (Printf.sprintf "epoch %d cert @ %d shards" e1 shards)
            c1 cn)
        base certs)
    [ 2; 3; 5; 8 ]

(* A certificate sealed by an N-shard store must check out against a
   1-shard store at the same epoch: clients cannot tell the layouts
   apart. *)
let test_cert_cross_checks () =
  let _, certs1 = run_epochs ~shards:1 ~n:32 scripted_ops in
  let t4, _ = run_epochs ~shards:4 ~n:32 scripted_ops in
  List.iter
    (fun (epoch, cert) ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d cert accepted by 4-shard store" epoch)
        true
        (Fastver.check_epoch_certificate t4 ~epoch cert))
    certs1

let prop_cert_shard_invariant =
  QCheck.Test.make
    ~name:"aggregated certificate independent of shard count" ~count:30
    QCheck.(
      pair
        (int_range 2 8)
        (small_list (small_list (pair (int_bound 63) (string_of_size (Gen.return 6))))))
    (fun (shards, ops) ->
      let _, base = run_epochs ~shards:1 ~n:64 ops in
      let _, certs = run_epochs ~shards ~n:64 ops in
      List.for_all2
        (fun (e1, c1) (en, cn) -> e1 = en && String.equal c1 cn)
        base certs)

(* ------------------------------------------------------------------ *)
(* Checkpoint is total: a failed write is an Error, not a crash         *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_error_leaves_system_live () =
  (* Point the checkpoint at a path occupied by a regular file: every
     write must fail cleanly, and the store must keep serving. *)
  let dir = fresh_dir "fv-shard-ckpt-err" in
  let oc = open_out dir in
  output_string oc "not a directory";
  close_out oc;
  let t, _ = run_epochs ~shards:3 ~n:32 scripted_ops in
  (match Fastver.checkpoint t ~dir with
  | Ok () -> Alcotest.fail "checkpoint into a regular file succeeded"
  | Error _ -> ());
  Fastver.put t 7L "after-failed-checkpoint";
  ignore (Fastver.verify t);
  Alcotest.(check vo) "system still serves" (Some "after-failed-checkpoint")
    (Fastver.get t 7L);
  Sys.remove dir

(* ------------------------------------------------------------------ *)
(* Recovery adopts the sealed shard layout                              *)
(* ------------------------------------------------------------------ *)

let test_recover_adopts_sealed_layout () =
  let dir = fresh_dir "fv-shard-adopt" in
  let t, _ = run_epochs ~shards:4 ~n:32 scripted_ops in
  (match Fastver.checkpoint t ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "checkpoint: %s" e);
  (* The caller asks for 1 shard; the sealed payload says 4. Routing is
     integrity-critical, so the payload wins. *)
  match Fastver.recover ~config:(config ~shards:1 ()) ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok t2 ->
      Alcotest.(check int) "payload layout adopted" 4 (Fastver.n_shards t2);
      Alcotest.(check vo) "state intact" (Some "h") (Fastver.get t2 0L);
      ignore (Fastver.verify t2);
      C.remove_tree dir

(* ------------------------------------------------------------------ *)
(* Hostile bytes in sharded components: recover stays total            *)
(* ------------------------------------------------------------------ *)

let mutate_file path f =
  let ic = open_in_bin path in
  let raw = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  let raw = f raw in
  let oc = open_out_bin path in
  output_bytes oc raw;
  close_out oc

let rec copy_tree src dst =
  if Sys.is_directory src then begin
    Sys.mkdir dst 0o755;
    Array.iter
      (fun name ->
        copy_tree (Filename.concat src name) (Filename.concat dst name))
      (Sys.readdir src)
  end
  else begin
    let ic = open_in_bin src in
    let raw = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let oc = open_out_bin dst in
    output_string oc raw;
    close_out oc
  end

let rehash_manifest gdir =
  match C.Manifest.read ~dir:gdir with
  | Error e -> Alcotest.fail e
  | Ok m ->
      let entries =
        List.map
          (fun (e : C.Manifest.entry) ->
            match C.Manifest.entry_of_file ~dir:gdir e.name with
            | Ok e' -> e'
            | Error err -> Alcotest.fail err)
          m.entries
      in
      C.Manifest.write ~dir:gdir { m with entries }

(* One committed 3-shard checkpoint, copied per fuzz case. *)
let pristine =
  lazy
    (let dir = fresh_dir "fv-shard-pristine" in
     let t, _ = run_epochs ~shards:3 ~n:32 scripted_ops in
     (match Fastver.checkpoint t ~dir with
     | Ok () -> ()
     | Error e -> Alcotest.failf "pristine checkpoint: %s" e);
     dir)

let shard_files = [ "merkle-0.tree"; "merkle-1.tree"; "merkle-2.tree"; "verifier.sealed" ]

let prop_sharded_recover_total =
  QCheck.Test.make
    ~name:"recover total under hostile bytes in sharded components"
    ~count:60
    QCheck.(quad (int_bound 3) (int_bound 1000) (int_bound 255) bool)
    (fun (file_idx, frac_millis, byte, fixup) ->
      let dir = fresh_dir "fv-shard-fuzz" in
      copy_tree (Lazy.force pristine) dir;
      let gdir =
        match C.generations dir with
        | (_, g) :: _ -> g
        | [] -> failwith "no generation"
      in
      mutate_file
        (Filename.concat gdir (List.nth shard_files file_idx))
        (fun raw ->
          if Bytes.length raw = 0 then raw
          else begin
            let i =
              min
                (Bytes.length raw - 1)
                (int_of_float
                   (float_of_int frac_millis /. 1000.0
                   *. float_of_int (Bytes.length raw)))
            in
            Bytes.set raw i (Char.chr byte);
            raw
          end);
      if fixup then rehash_manifest gdir;
      let ok =
        match Fastver.recover ~config:(config ~shards:3 ()) ~dir () with
        | Ok _ | Error _ -> true
        | exception _ -> false
      in
      C.remove_tree dir;
      ok)

let suite =
  ( "shard",
    [
      Alcotest.test_case "certificates equal across widths" `Quick
        test_cert_equal_across_widths;
      Alcotest.test_case "N-shard certificate cross-checks" `Quick
        test_cert_cross_checks;
      Alcotest.test_case "failed checkpoint leaves system live" `Quick
        test_checkpoint_error_leaves_system_live;
      Alcotest.test_case "recover adopts sealed shard layout" `Quick
        test_recover_adopts_sealed_layout;
      QCheck_alcotest.to_alcotest prop_cert_shard_invariant;
      QCheck_alcotest.to_alcotest prop_sharded_recover_total;
    ] )
