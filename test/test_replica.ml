(* Verified read replication, end to end: the stream-integrity layer, the
   certificate-chain checker, a live primary/follower pair over Unix
   sockets, and the adversarial cases — a flipped bit in a streamed op or
   an epoch certificate halts the follower with the offending epoch
   preserved, a mid-frame disconnect tears down cleanly, and a client
   detects receipts from a stale epoch. *)

module Net = Fastver_net
module Replica = Fastver_replica
module Verifier = Fastver_verifier.Verifier

let initial_value = Fastver_workload.Ycsb.initial_value

let test_config =
  {
    Fastver.Config.default with
    n_workers = 2;
    batch_size = 0;
    cost_model = Cost_model.zero;
  }

let secret = Fastver.Config.default.mac_secret
let auth_key = Fastver.Auth.key_of_secret secret

let records n =
  Array.init n (fun i -> (Int64.of_int i, initial_value (Int64.of_int i)))

let mk_system ?(n = 256) () =
  let t = Fastver.create ~config:test_config () in
  Fastver.load t (records n);
  t

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "fastver-repl-test-%d-%d.sock" (Unix.getpid ())
       !sock_counter)

let fresh_dir () =
  let d = Filename.temp_file "fastver" "-repl" in
  Sys.remove d;
  d

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> remove_tree (Filename.concat path f))
        (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let wait_for ?(timeout = 20.0) msg pred =
  let deadline = Unix.gettimeofday () +. timeout in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  if not (pred ()) then Alcotest.fail ("timed out waiting for " ^ msg)

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* ------------------------------------------------------------------ *)
(* Stream digests                                                      *)
(* ------------------------------------------------------------------ *)

let test_stream_digest () =
  let k i = Key.to_bytes32 (Key.of_int64 (Int64.of_int i)) in
  let d1 =
    Replica.Stream.(
      fold
        (fold empty_digest ~epoch:3 ~key:(k 1) ~value:(Some "a"))
        ~epoch:3 ~key:(k 2) ~value:None)
  in
  let d1' =
    Replica.Stream.(
      fold
        (fold empty_digest ~epoch:3 ~key:(k 1) ~value:(Some "a"))
        ~epoch:3 ~key:(k 2) ~value:None)
  in
  Alcotest.(check bool) "fold is deterministic" true (String.equal d1 d1');
  let reordered =
    Replica.Stream.(
      fold
        (fold empty_digest ~epoch:3 ~key:(k 2) ~value:None)
        ~epoch:3 ~key:(k 1) ~value:(Some "a"))
  in
  Alcotest.(check bool) "fold is order-sensitive" false
    (String.equal d1 reordered);
  let other_epoch =
    Replica.Stream.(
      fold
        (fold empty_digest ~epoch:4 ~key:(k 1) ~value:(Some "a"))
        ~epoch:4 ~key:(k 2) ~value:None)
  in
  Alcotest.(check bool) "epoch tag is folded in" false
    (String.equal d1 other_epoch);
  (* None and Some "" are distinct ops *)
  let del = Replica.Stream.(fold empty_digest ~epoch:0 ~key:(k 9) ~value:None) in
  let emp =
    Replica.Stream.(fold empty_digest ~epoch:0 ~key:(k 9) ~value:(Some ""))
  in
  Alcotest.(check bool) "delete <> empty put" false (String.equal del emp);
  let mac =
    Replica.Stream.boundary_mac ~mac_secret:secret ~epoch:3 ~digest:d1 ()
  in
  Alcotest.(check bool) "boundary mac checks" true
    (Replica.Stream.check_boundary_mac ~mac_secret:secret ~epoch:3 ~digest:d1
       ~tag:mac ());
  Alcotest.(check bool) "wrong epoch rejected" false
    (Replica.Stream.check_boundary_mac ~mac_secret:secret ~epoch:4 ~digest:d1
       ~tag:mac ());
  let flipped = Bytes.of_string mac in
  Bytes.set flipped 0 (Char.chr (Char.code (Bytes.get flipped 0) lxor 1));
  Alcotest.(check bool) "flipped mac rejected" false
    (Replica.Stream.check_boundary_mac ~mac_secret:secret ~epoch:3 ~digest:d1
       ~tag:(Bytes.to_string flipped) ());
  (* the fencing term is covered by the MAC — a relay cannot re-stamp a
     boundary record under a different term — and term 0 is byte-identical
     to the pre-election message, so v1 streams still authenticate *)
  let mac_t2 =
    Replica.Stream.boundary_mac ~mac_secret:secret ~term:2 ~epoch:3 ~digest:d1 ()
  in
  Alcotest.(check bool) "term folded into the mac" false
    (String.equal mac mac_t2);
  Alcotest.(check bool) "term mac checks under its term" true
    (Replica.Stream.check_boundary_mac ~mac_secret:secret ~term:2 ~epoch:3
       ~digest:d1 ~tag:mac_t2 ());
  Alcotest.(check bool) "re-stamped term rejected" false
    (Replica.Stream.check_boundary_mac ~mac_secret:secret ~term:1 ~epoch:3
       ~digest:d1 ~tag:mac_t2 ())

(* ------------------------------------------------------------------ *)
(* Certificate chain                                                   *)
(* ------------------------------------------------------------------ *)

let cert_for epoch =
  Fastver_crypto.Hmac.mac ~key:secret
    (Verifier.epoch_certificate_message ~epoch)

let test_cert_chain () =
  let ch = Verifier.Cert_chain.create ~mac_secret:secret ~verified:(-1) in
  (match Verifier.Cert_chain.check ch ~epoch:0 ~cert:(cert_for 0) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Verifier.Cert_chain.check ch ~epoch:1 ~cert:(cert_for 1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "verified advances" 1
    (Verifier.Cert_chain.verified_epoch ch);
  (* a forged certificate is terminal, with evidence preserved *)
  (match Verifier.Cert_chain.check ch ~epoch:2 ~cert:(cert_for 99) with
  | Ok () -> Alcotest.fail "forged certificate accepted"
  | Error e ->
      Alcotest.(check bool) "reason names the epoch" true (find_sub e "2"));
  (match Verifier.Cert_chain.failure ch with
  | Some (2, _) -> ()
  | _ -> Alcotest.fail "failure evidence not preserved");
  (match Verifier.Cert_chain.check ch ~epoch:2 ~cert:(cert_for 2) with
  | Ok () -> Alcotest.fail "chain kept going after a terminal failure"
  | Error _ -> ());
  (* gaps and reordering are terminal too: a dense in-order chain is the
     only thing a follower may advance along *)
  let ch2 = Verifier.Cert_chain.create ~mac_secret:secret ~verified:0 in
  (match Verifier.Cert_chain.check ch2 ~epoch:3 ~cert:(cert_for 3) with
  | Ok () -> Alcotest.fail "gap accepted"
  | Error e ->
      Alcotest.(check bool) "gap reason names both epochs" true
        (find_sub e "1" && find_sub e "3"));
  match Verifier.Cert_chain.failure ch2 with
  | Some (3, _) -> ()
  | None | Some _ -> Alcotest.fail "gap evidence not preserved"

(* ------------------------------------------------------------------ *)
(* Replication wire opcodes                                            *)
(* ------------------------------------------------------------------ *)

let roundtrip_response resp =
  let frame = Net.Wire.encode_response ~id:7L resp in
  let r = Net.Frame.create () in
  Net.Frame.feed_string r frame;
  match Net.Frame.next r with
  | Ok (Some p) -> Net.Wire.decode_response p
  | _ -> Alcotest.fail "frame did not round-trip"

let test_wire_repl_opcodes () =
  let key = Key.to_bytes32 (Key.of_int64 42L) in
  List.iter
    (fun resp ->
      match roundtrip_response resp with
      | Ok (7L, got) when got = resp -> ()
      | Ok _ -> Alcotest.fail "decoded to a different value"
      | Error e -> Alcotest.fail e)
    [
      Net.Wire.Subscribed { from_epoch = 12; run_id = 0x1234_5678L; term = 4 };
      Net.Wire.Checkpoint_reply
        { generation = 3; files = [| ("MANIFEST", "x"); ("a.bin", "\x00\xff") |];
          term = 1 };
      Net.Wire.Repl_op { epoch = 5; key; value = Some "hello" };
      Net.Wire.Repl_op { epoch = 5; key; value = None };
      Net.Wire.Repl_batch
        { epoch = 5; ops = [| (key, Some "a"); (key, None); (key, Some "") |] };
      Net.Wire.Repl_batch { epoch = 0; ops = [||] };
      Net.Wire.Repl_epoch
        { epoch = 9; cert = cert_for 9; stream_mac = String.make 32 'm';
          term = 2 };
      Net.Wire.Term_info
        { term = 7; sealed = 12; priority = 3; run_id = 0xdeadL;
          primary = true };
    ];
  (* the election request opcodes round-trip too (including sealed = -1,
     "nothing verified yet") *)
  List.iter
    (fun req ->
      let frame = Net.Wire.encode_request ~id:7L req in
      let r = Net.Frame.create () in
      Net.Frame.feed_string r frame;
      match Net.Frame.next r with
      | Ok (Some p) -> (
          match Net.Wire.decode_request p with
          | Ok (7L, got) when got = req -> ()
          | Ok _ -> Alcotest.fail "request decoded to a different value"
          | Error e -> Alcotest.fail e)
      | _ -> Alcotest.fail "request frame did not round-trip")
    [
      Net.Wire.Announce_term
        { term = 7; sealed = -1; priority = 3; run_id = 0xdeadL };
      Net.Wire.Promote { term = 7; addr = "unix:/tmp/x.sock" };
    ];
  (* the encoder refuses a key that is not the raw 32-byte path *)
  (match
     Net.Wire.encode_response ~id:0L
       (Net.Wire.Repl_op { epoch = 0; key = "short"; value = None })
   with
  | _ -> Alcotest.fail "short key accepted"
  | exception Invalid_argument _ -> ());
  (match
     Net.Wire.encode_response ~id:0L
       (Net.Wire.Repl_batch { epoch = 0; ops = [| ("short", None) |] })
   with
  | _ -> Alcotest.fail "short batched key accepted"
  | exception Invalid_argument _ -> ());
  (* a checkpoint reply claiming 2^31-ish files is rejected before any
     allocation proportional to the claim *)
  let b = Buffer.create 32 in
  Buffer.add_string b "FV";
  Buffer.add_char b (Char.chr Net.Wire.version);
  Buffer.add_char b '\x8a' (* Checkpoint_reply *);
  Buffer.add_string b (String.make 8 '\x00') (* id *);
  Buffer.add_string b "\x00\x00\x00\x00" (* generation *);
  Buffer.add_string b "\x00\x00\x00\x00" (* term *);
  Buffer.add_string b "\xff\xff\xff\x7f" (* file count *);
  let t0 = Unix.gettimeofday () in
  (match Net.Wire.decode_response (Buffer.contents b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "file-count bomb accepted");
  if Unix.gettimeofday () -. t0 > 0.5 then
    Alcotest.fail "file-count bomb took too long"

(* QCheck: hostile bytes under the replication tags never raise and never
   decode to a malformed value (keys always come back 32 bytes wide). *)
let prop_repl_op_hostile =
  QCheck.Test.make ~name:"hostile Repl_op/Repl_epoch bytes are total"
    ~count:1000
    QCheck.(pair (oneofl [ '\x8b'; '\x8c'; '\x8d'; '\x89'; '\x8a' ])
              (string_of_size QCheck.Gen.(0 -- 200)))
    (fun (tag, junk) ->
      let b = Buffer.create 64 in
      Buffer.add_string b "FV";
      Buffer.add_char b (Char.chr Net.Wire.version);
      Buffer.add_char b tag;
      Buffer.add_string b (String.make 8 '\x00');
      Buffer.add_string b junk;
      match Net.Wire.decode_response (Buffer.contents b) with
      | Error _ -> true
      | Ok (_, Net.Wire.Repl_op { key; _ }) -> String.length key = 32
      | Ok (_, Net.Wire.Repl_batch { ops; _ }) ->
          Array.for_all (fun (key, _) -> String.length key = 32) ops
      | Ok _ -> true)

(* ------------------------------------------------------------------ *)
(* Primary + follower, end to end                                      *)
(* ------------------------------------------------------------------ *)

let mk_primary ?(pconfig = Replica.Primary.default_config) ?(n = 256) () =
  let t = mk_system ~n () in
  let path = fresh_sock () in
  match Replica.Primary.create ~config:pconfig t ~listen:(Net.Addr.Unix_sock path) with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Replica.Primary.start p;
      (t, p, Net.Addr.Unix_sock path)

let mk_follower ?(n = 256) ?listen primary =
  let dir = fresh_dir () in
  match
    Replica.Follower.create ~config:test_config
      ~load:(fun sys -> Fastver.load sys (records n))
      ~primary ?listen ~dir ()
  with
  | Error e -> Alcotest.fail e
  | Ok f ->
      Replica.Follower.start f;
      (f, dir)

let caught_up t f () =
  Replica.Follower.verified_epoch f >= Fastver.verified_epoch t

let test_follower_replays_and_serves () =
  let t, p, addr = mk_primary () in
  (* two sealed epochs before the follower exists (replayed from the
     retained log), including a delete *)
  Fastver.put t 5L "epoch0";
  Fastver.delete_key t (Key.of_int64 7L);
  ignore (Fastver.verify t);
  Fastver.put t 5L "epoch1";
  Fastver.put t 9L "nine";
  ignore (Fastver.verify t);
  let lsock = fresh_sock () in
  let f, fdir = mk_follower ~listen:(Net.Addr.Unix_sock lsock) addr in
  wait_for "replay catch-up" (caught_up t f);
  (* live streaming after the subscription *)
  Fastver.put t 5L "epoch2";
  ignore (Fastver.verify t);
  wait_for "live catch-up" (caught_up t f);
  let ft = Replica.Follower.system f in
  Alcotest.(check (option string)) "replayed put" (Some "epoch2")
    (Fastver.get ft 5L);
  Alcotest.(check (option string)) "replayed delete" None (Fastver.get ft 7L);
  Alcotest.(check (option string)) "untouched key" (Some (initial_value 3L))
    (Fastver.get ft 3L);
  (* reads through the ordinary network path, receipt MACs checked by the
     unchanged client *)
  (match Net.Client.connect (Net.Addr.Unix_sock lsock) with
  | Error e -> Alcotest.fail e
  | Ok conn ->
      let s = Net.Client.open_session conn ~client:1 ~secret in
      Alcotest.(check (option string)) "verified read via follower"
        (Some "epoch2") (Net.Client.get s 5L);
      Alcotest.(check (option string)) "verified read of delete" None
        (Net.Client.get s 7L);
      (* a put must be refused: followers are read-only *)
      (match Net.Client.put s 3L "nope" with
      | () -> Alcotest.fail "follower accepted a put"
      | exception Net.Client.Server_error e ->
          Alcotest.(check bool) "put refusal names the primary" true
            (find_sub e "primary"));
      Net.Client.close conn);
  (* metrics: both ends expose the replication families *)
  let pm = Fastver_obs.Registry.to_json (Fastver.registry t) in
  let fm = Fastver_obs.Registry.to_json (Fastver.registry ft) in
  List.iter
    (fun (json, name) ->
      Alcotest.(check bool) (name ^ " present") true (find_sub json name))
    [
      (pm, "fastver_repl_ops_streamed_total");
      (pm, "fastver_repl_epochs_streamed_total");
      (pm, "fastver_repl_followers");
      (fm, "fastver_repl_ops_applied_total");
      (fm, "fastver_repl_certs_verified_total");
      (fm, "fastver_repl_lag_epochs");
      (fm, "fastver_repl_follower_reads_total");
    ];
  Alcotest.(check int) "applied ops counted" 5
    (Replica.Follower.applied_ops f);
  Replica.Follower.stop f;
  Replica.Primary.stop p;
  remove_tree fdir

let test_follower_survives_primary_death () =
  let t, p, addr = mk_primary () in
  Fastver.put t 11L "alive";
  ignore (Fastver.verify t);
  let lsock = fresh_sock () in
  let f, fdir = mk_follower ~listen:(Net.Addr.Unix_sock lsock) addr in
  wait_for "catch-up" (caught_up t f);
  (* the primary dies mid-stream; the follower must keep serving verified
     reads and settle into its reconnect loop, never an exception *)
  Replica.Primary.stop p;
  wait_for "disconnect noticed" (fun () ->
      Replica.Follower.state f = Replica.Follower.Disconnected);
  (match Net.Client.connect (Net.Addr.Unix_sock lsock) with
  | Error e -> Alcotest.fail e
  | Ok conn ->
      let s = Net.Client.open_session conn ~client:1 ~secret in
      Alcotest.(check (option string)) "read survives primary death"
        (Some "alive") (Net.Client.get s 11L);
      Net.Client.close conn);
  Alcotest.(check bool) "no integrity failure recorded" true
    (Replica.Follower.failure f = None);
  (* the primary comes back (same store, same address): the follower
     re-subscribes from its verified epoch and resumes *)
  (match Replica.Primary.create t ~listen:addr with
  | Error e -> Alcotest.fail e
  | Ok p2 ->
      Replica.Primary.start p2;
      Fastver.put t 11L "back";
      ignore (Fastver.verify t);
      wait_for "resumed streaming" (caught_up t f);
      Alcotest.(check (option string)) "post-restart put replicated"
        (Some "back")
        (Fastver.get (Replica.Follower.system f) 11L);
      Replica.Primary.stop p2);
  Replica.Follower.stop f;
  remove_tree fdir

(* ------------------------------------------------------------------ *)
(* Checkpoint catch-up                                                 *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_bootstrap () =
  let ckpt = fresh_dir () in
  let t = mk_system ~n:64 () in
  Fastver.set_auto_checkpoint t ~dir:ckpt;
  Fastver.put t 3L "before";
  ignore (Fastver.verify t);
  Fastver.put t 4L "also before";
  ignore (Fastver.verify t);
  (* the primary starts with sealed history: its retained stream begins at
     the current epoch, so a from-zero subscriber must fetch a checkpoint *)
  let path = fresh_sock () in
  let pcfg =
    { Replica.Primary.default_config with checkpoint_dir = Some ckpt }
  in
  (match Replica.Primary.create ~config:pcfg t ~listen:(Net.Addr.Unix_sock path) with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Replica.Primary.start p;
      let fdir = fresh_dir () in
      (match
         Replica.Follower.create ~config:test_config
           ~load:(fun _ -> Alcotest.fail "fresh-load path taken")
           ~primary:(Net.Addr.Unix_sock path) ~dir:fdir ()
       with
      | Error e -> Alcotest.fail e
      | Ok f ->
          Alcotest.(check bool) "recovered a verified epoch" true
            (Replica.Follower.verified_epoch f >= 0);
          Replica.Follower.start f;
          Fastver.put t 5L "after";
          ignore (Fastver.verify t);
          wait_for "tail after bootstrap" (caught_up t f);
          let ft = Replica.Follower.system f in
          Alcotest.(check (option string)) "checkpointed put" (Some "before")
            (Fastver.get ft 3L);
          Alcotest.(check (option string)) "streamed put" (Some "after")
            (Fastver.get ft 5L);
          Replica.Follower.stop f;
          remove_tree fdir);
      Replica.Primary.stop p);
  remove_tree ckpt

(* ------------------------------------------------------------------ *)
(* Tampering with the stream                                           *)
(* ------------------------------------------------------------------ *)

(* A frame-aware person-in-the-middle on the replication stream: requests
   pass verbatim; [tamper] may rewrite one primary->follower payload. *)
let start_proxy ~listen_path ~server_addr ~tamper =
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX listen_path);
  Unix.listen lfd 1;
  Domain.spawn (fun () ->
      let cfd, _ = Unix.accept lfd in
      let sfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Net.Addr.to_sockaddr server_addr with
      | Ok a -> Unix.connect sfd a
      | Error e -> failwith e);
      let reader = Net.Frame.create () in
      let buf = Bytes.create 4096 in
      let tampered = ref false in
      let prefix len =
        let b = Bytes.create 4 in
        Bytes.set_int32_le b 0 (Int32.of_int len);
        Bytes.to_string b
      in
      let forward payload =
        let payload =
          if !tampered then payload
          else
            match tamper payload with
            | Some p ->
                tampered := true;
                p
            | None -> payload
        in
        Net.Sockio.send_all cfd (prefix (String.length payload) ^ payload)
      in
      (try
         let running = ref true in
         while !running do
           let rs, _, _ = Unix.select [ cfd; sfd ] [] [] 10.0 in
           if rs = [] then running := false;
           List.iter
             (fun fd ->
               let n = Unix.read fd buf 0 (Bytes.length buf) in
               if n = 0 then running := false
               else if fd == cfd then
                 Net.Sockio.send_all sfd (Bytes.sub_string buf 0 n)
               else begin
                 Net.Frame.feed reader buf 0 n;
                 let rec drain () =
                   match Net.Frame.next reader with
                   | Ok (Some payload) ->
                       forward payload;
                       drain ()
                   | Ok None -> ()
                   | Error _ -> running := false
                 in
                 drain ()
               end)
             rs
         done
       with Unix.Unix_error _ | Failure _ -> ());
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ cfd; sfd; lfd ])

let flip_byte tag index payload =
  if String.length payload <= Net.Wire.header_len
     || Char.code payload.[3] <> tag
  then None
  else begin
    let b = Bytes.of_string payload in
    let i = if index < 0 then Bytes.length b + index else index in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Some (Bytes.to_string b)
  end

let halted_with_evidence ?pconfig ~what ~tamper () =
  let t, p, addr = mk_primary ?pconfig () in
  Fastver.put t 5L "target";
  Fastver.put t 6L "decoy";
  ignore (Fastver.verify t);
  let proxy_path = fresh_sock () in
  let proxy = start_proxy ~listen_path:proxy_path ~server_addr:addr ~tamper in
  let fdir = fresh_dir () in
  (match
     Replica.Follower.create ~config:test_config
       ~load:(fun sys -> Fastver.load sys (records 256))
       ~primary:(Net.Addr.Unix_sock proxy_path) ~dir:fdir ()
   with
  | Error e -> Alcotest.fail e
  | Ok f ->
      Replica.Follower.start f;
      wait_for "halt" (fun () ->
          Replica.Follower.state f = Replica.Follower.Halted);
      (match Replica.Follower.failure f with
      | Some (epoch, reason) ->
          Alcotest.(check int) (what ^ ": halting epoch preserved") 0 epoch;
          Alcotest.(check bool) (what ^ ": reason names the epoch") true
            (find_sub reason "epoch 0" || find_sub reason "0 cert")
      | None -> Alcotest.fail (what ^ ": no failure evidence"));
      (* nothing tampered was applied: the follower still holds only the
         trusted initial load *)
      Alcotest.(check (option string)) (what ^ ": tampered op not served")
        (Some (initial_value 5L))
        (Fastver.get (Replica.Follower.system f) 5L);
      Replica.Follower.stop f);
  Replica.Primary.stop p;
  Domain.join proxy;
  remove_tree fdir;
  try Sys.remove proxy_path with Sys_error _ -> ()

(* Flip one bit inside the streamed batch (the last byte is part of the
   final op's value): the boundary stream MAC no longer matches the
   follower's digest. *)
let test_flipped_op_halts () =
  halted_with_evidence ~what:"flipped batched op"
    ~tamper:(flip_byte 0x8d (-1)) ()

(* The same property under legacy per-op framing (batch_ops <= 1). *)
let test_flipped_legacy_op_halts () =
  halted_with_evidence
    ~pconfig:{ Replica.Primary.default_config with batch_ops = 1 }
    ~what:"flipped legacy op"
    ~tamper:(flip_byte 0x8b (-1)) ()

(* Flip one bit of the epoch certificate inside the boundary record: the
   stream digest still matches, but the certificate chain rejects it. *)
let test_flipped_cert_halts () =
  let cert_off = Net.Wire.header_len + 4 + 2 (* epoch + u16 len *) in
  halted_with_evidence ~what:"flipped cert" ~tamper:(flip_byte 0x8c cert_off) ()

(* ------------------------------------------------------------------ *)
(* Frame batching                                                      *)
(* ------------------------------------------------------------------ *)

(* The same op sequence framed per-op vs batched: batching must carry 10k
   ops in at least 10x fewer op-carrying frames, and a follower replaying
   either framing converges to the same verified state — the stream digest
   and boundary MAC are framing-independent. *)
let test_batching_cuts_frames () =
  let run ~batch_ops =
    let pcfg =
      (* a long delay so only the size cap and epoch seals split batches *)
      { Replica.Primary.default_config with batch_ops; batch_delay = 5.0 }
    in
    let t, p, addr = mk_primary ~pconfig:pcfg () in
    for e = 0 to 1 do
      for i = 0 to 4999 do
        Fastver.put t (Int64.of_int (i mod 200)) (Printf.sprintf "%d-%d" e i)
      done;
      ignore (Fastver.verify t)
    done;
    let frames = Replica.Primary.frames_emitted p in
    let f, fdir = mk_follower addr in
    wait_for "catch-up" (caught_up t f);
    Alcotest.(check (option string)) "last write replayed" (Some "1-4999")
      (Fastver.get (Replica.Follower.system f) 199L);
    Alcotest.(check int) "every op applied" 10_000
      (Replica.Follower.applied_ops f);
    Replica.Follower.stop f;
    Replica.Primary.stop p;
    remove_tree fdir;
    frames
  in
  let batched = run ~batch_ops:512 in
  let legacy = run ~batch_ops:1 in
  Alcotest.(check int) "legacy framing is one frame per op" 10_000 legacy;
  Alcotest.(check bool)
    (Printf.sprintf "10k ops in >=10x fewer frames (%d vs %d)" batched legacy)
    true
    (batched > 0 && batched * 10 <= legacy)

(* ------------------------------------------------------------------ *)
(* Stream teardown totality                                            *)
(* ------------------------------------------------------------------ *)

(* A byte-truncating proxy: forwards the first [limit] primary->follower
   bytes — enough for the Subscribed ack, then mid-frame — and drops the
   connection. The follower must land in its reconnect loop, never an
   exception and never a halt. *)
let start_truncating_proxy ~listen_path ~server_addr ~limit =
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX listen_path);
  Unix.listen lfd 1;
  Domain.spawn (fun () ->
      let cfd, _ = Unix.accept lfd in
      let sfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Net.Addr.to_sockaddr server_addr with
      | Ok a -> Unix.connect sfd a
      | Error e -> failwith e);
      let buf = Bytes.create 4096 in
      let sent = ref 0 in
      (try
         let running = ref true in
         while !running do
           let rs, _, _ = Unix.select [ cfd; sfd ] [] [] 10.0 in
           if rs = [] then running := false;
           List.iter
             (fun fd ->
               let n = Unix.read fd buf 0 (Bytes.length buf) in
               if n = 0 then running := false
               else if fd == cfd then
                 Net.Sockio.send_all sfd (Bytes.sub_string buf 0 n)
               else begin
                 let keep = min n (limit - !sent) in
                 if keep > 0 then begin
                   Net.Sockio.send_all cfd (Bytes.sub_string buf 0 keep);
                   sent := !sent + keep
                 end;
                 if !sent >= limit then running := false
               end)
             rs
         done
       with Unix.Unix_error _ | Failure _ -> ());
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ cfd; sfd; lfd ])

let test_truncated_stream_reconnects () =
  let t, p, addr = mk_primary () in
  Fastver.put t 2L "x";
  ignore (Fastver.verify t);
  let proxy_path = fresh_sock () in
  (* 28 bytes of Subscribed ack + 12 bytes into the replayed first frame *)
  let proxy =
    start_truncating_proxy ~listen_path:proxy_path ~server_addr:addr ~limit:40
  in
  let fdir = fresh_dir () in
  (match
     Replica.Follower.create ~config:test_config
       ~load:(fun sys -> Fastver.load sys (records 256))
       ~primary:(Net.Addr.Unix_sock proxy_path) ~dir:fdir ()
   with
  | Error e -> Alcotest.fail e
  | Ok f ->
      Replica.Follower.start f;
      wait_for "clean disconnect" (fun () ->
          Replica.Follower.state f = Replica.Follower.Disconnected);
      Alcotest.(check bool) "mid-frame cut is not an integrity failure" true
        (Replica.Follower.failure f = None);
      (* no partial epoch leaked into the store *)
      Alcotest.(check (option string)) "partial frame not applied"
        (Some (initial_value 2L))
        (Fastver.get (Replica.Follower.system f) 2L);
      Replica.Follower.stop f);
  Replica.Primary.stop p;
  Domain.join proxy;
  remove_tree fdir;
  try Sys.remove proxy_path with Sys_error _ -> ()

(* The primary side of the same property: a subscriber that sends garbage
   gets a clean Error frame and a closed connection, and the listener keeps
   serving well-formed subscribers afterwards. *)
let test_primary_survives_garbage () =
  let t, p, addr = mk_primary () in
  Fastver.put t 1L "v";
  ignore (Fastver.verify t);
  (match Net.Addr.to_sockaddr addr with
  | Error e -> Alcotest.fail e
  | Ok sa ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd sa;
      (* an insane length prefix: the frame layer rejects it outright *)
      Net.Sockio.send_all fd "\xff\xff\xff\xffgarbage";
      let buf = Bytes.create 4096 in
      let got = Buffer.create 64 in
      (try
         let rec drain () =
           let n = Unix.read fd buf 0 (Bytes.length buf) in
           if n > 0 then begin
             Buffer.add_subbytes got buf 0 n;
             drain ()
           end
         in
         drain ()
       with Unix.Unix_error _ -> ());
      Unix.close fd;
      Alcotest.(check bool) "error frame before close" true
        (find_sub (Buffer.contents got) "malformed"));
  (* the loop survived: a well-formed follower still gets served *)
  let f, fdir = mk_follower addr in
  wait_for "subscriber after garbage" (caught_up t f);
  Replica.Follower.stop f;
  Replica.Primary.stop p;
  remove_tree fdir

(* ------------------------------------------------------------------ *)
(* Client stale-epoch detection                                        *)
(* ------------------------------------------------------------------ *)

(* A fake server holding the shared secret (receipts authenticate!) that
   certifies the store at [cert_epoch] but serves correctly-signed read
   receipts from OLDER epochs — the replay a stale or rolled-back replica
   would produce. Only the session's staleness check against its certified
   anchor can catch it. *)
let start_stale_server ~listen_path ~cert_epoch ~epochs =
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX listen_path);
  Unix.listen lfd 1;
  Domain.spawn (fun () ->
      let cfd, _ = Unix.accept lfd in
      let reader = Net.Frame.create () in
      let buf = Bytes.create 4096 in
      let remaining = ref epochs in
      let client = ref 0 in
      (try
         let running = ref true in
         while !running do
           let n = Unix.read cfd buf 0 (Bytes.length buf) in
           if n = 0 then running := false
           else begin
             Net.Frame.feed reader buf 0 n;
             let rec drain () =
               match Net.Frame.next reader with
               | Ok (Some payload) ->
                   (match Net.Wire.decode_request payload with
                   | Ok (id, Net.Wire.Open_session { client = c }) ->
                       client := c;
                       Net.Sockio.send_all cfd
                         (Net.Wire.encode_response ~id
                            (Net.Wire.Session_opened { client = c }))
                   | Ok (id, Net.Wire.Get { key; nonce }) ->
                       let epoch =
                         match !remaining with
                         | e :: rest ->
                             remaining := rest;
                             e
                         | [] -> 0
                       in
                       let value = Some "v" in
                       let mac =
                         Fastver.Auth.receipt auth_key ~kind:Fastver.Auth.Get
                           ~client:!client ~nonce (Key.of_int64 key) value
                           ~epoch
                       in
                       Net.Sockio.send_all cfd
                         (Net.Wire.encode_response ~id
                            (Net.Wire.Got
                               { nonce; item = { key; value; epoch; mac } }))
                   | Ok (id, Net.Wire.Verify) ->
                       let cert =
                         Fastver_crypto.Hmac.mac ~key:secret
                           (Verifier.epoch_certificate_message
                              ~epoch:cert_epoch)
                       in
                       Net.Sockio.send_all cfd
                         (Net.Wire.encode_response ~id
                            (Net.Wire.Verified { epoch = cert_epoch; cert }))
                   | Ok (id, Net.Wire.Close_session) ->
                       Net.Sockio.send_all cfd
                         (Net.Wire.encode_response ~id Net.Wire.Session_closed);
                       running := false
                   | Ok _ | Error _ -> running := false);
                   drain ()
               | Ok None -> ()
               | Error _ -> running := false
             in
             drain ()
           end
         done
       with Unix.Unix_error _ -> ());
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ cfd; lfd ])

let test_client_stale_epoch () =
  let path = fresh_sock () in
  let srv = start_stale_server ~listen_path:path ~cert_epoch:5 ~epochs:[ 4; 3 ] in
  (match Net.Client.connect (Net.Addr.Unix_sock path) with
  | Error e -> Alcotest.fail e
  | Ok conn ->
      let s = Net.Client.open_session conn ~client:4 ~secret in
      (* anchor the session: the server certifies the store at epoch 5 *)
      let epoch, _cert = Net.Client.verify_now s in
      Alcotest.(check int) "anchor epoch" 5 epoch;
      Alcotest.(check int) "session epoch" 5 (Net.Client.session_epoch s);
      (* a receipt one epoch behind the anchor is a read racing the scan *)
      Alcotest.(check (option string)) "epoch 4 within default slack"
        (Some "v") (Net.Client.get s 1L);
      (* the next receipt authenticates but comes from epoch 3, two behind
         the certified anchor: authentic-but-old state *)
      (match Net.Client.get s 2L with
      | _ -> Alcotest.fail "stale-epoch receipt accepted"
      | exception Fastver.Integrity_violation reason ->
          Alcotest.(check bool) "reason names staleness" true
            (find_sub reason "stale"));
      Net.Client.close conn);
  Domain.join srv;
  try Sys.remove path with Sys_error _ -> ()

let test_client_staleness_budget () =
  let path = fresh_sock () in
  let srv = start_stale_server ~listen_path:path ~cert_epoch:5 ~epochs:[ 3; 2 ] in
  (match Net.Client.connect (Net.Addr.Unix_sock path) with
  | Error e -> Alcotest.fail e
  | Ok conn ->
      (* an explicit staleness budget tolerates a bounded lag... *)
      let s = Net.Client.open_session conn ~client:4 ~secret ~max_staleness:2 in
      ignore (Net.Client.verify_now s);
      Alcotest.(check (option string)) "epoch 3 within budget" (Some "v")
        (Net.Client.get s 1L);
      (* ...but not beyond it *)
      (match Net.Client.get s 2L with
      | _ -> Alcotest.fail "epoch 2 exceeds the staleness budget"
      | exception Fastver.Integrity_violation _ -> ());
      Net.Client.close conn);
  Domain.join srv;
  try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Handshake bounding                                                  *)
(* ------------------------------------------------------------------ *)

(* A stalled fake primary: accepts connections, reads and discards, never
   answers. The pathological peer a recv deadline exists for. *)
let start_stalled_listener path =
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 8;
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let conns = ref [] in
        let buf = Bytes.create 4096 in
        (try
           while not (Atomic.get stop) do
             let rs, _, _ = Unix.select (lfd :: !conns) [] [] 0.1 in
             List.iter
               (fun fd ->
                 if fd == lfd then begin
                   let c, _ = Unix.accept lfd in
                   conns := c :: !conns
                 end
                 else
                   let n =
                     try Unix.read fd buf 0 4096 with Unix.Unix_error _ -> 0
                   in
                   if n = 0 then begin
                     conns := List.filter (fun c -> not (c == fd)) !conns;
                     try Unix.close fd with Unix.Unix_error _ -> ()
                   end)
               rs
           done
         with Unix.Unix_error _ -> ());
        List.iter
          (fun c -> try Unix.close c with Unix.Unix_error _ -> ())
          !conns;
        try Unix.close lfd with Unix.Unix_error _ -> ())
  in
  (stop, d)

let test_handshake_timeout () =
  (* bootstrap: create against a stalled primary must return an error in
     bounded time, never hang in recv *)
  let path = fresh_sock () in
  let stop, d = start_stalled_listener path in
  let fdir = fresh_dir () in
  let t0 = Unix.gettimeofday () in
  (match
     Replica.Follower.create ~config:test_config ~handshake_timeout:0.3
       ~load:(fun _ -> ())
       ~primary:(Net.Addr.Unix_sock path) ~dir:fdir ()
   with
  | Ok _ -> Alcotest.fail "subscribe against a stalled primary succeeded"
  | Error e ->
      Alcotest.(check bool) "error names the timeout" true
        (find_sub e "timed out"));
  Alcotest.(check bool) "create returned within bounds" true
    (Unix.gettimeofday () -. t0 < 5.0);
  Atomic.set stop true;
  Domain.join d;
  (try Sys.remove path with Sys_error _ -> ());
  remove_tree fdir

let test_handshake_timeout_reconnect () =
  (* a running follower whose reconnect lands on a stalled listener must
     fall back to its reconnect loop — and resume once a real primary is
     back on the address *)
  let t, p, addr = mk_primary () in
  Fastver.put t 21L "before";
  ignore (Fastver.verify t);
  let fdir = fresh_dir () in
  let f =
    match
      Replica.Follower.create ~config:test_config ~reconnect_delay:0.05
        ~handshake_timeout:0.3
        ~load:(fun sys -> Fastver.load sys (records 256))
        ~primary:addr ~dir:fdir ()
    with
    | Error e -> Alcotest.fail e
    | Ok f ->
        Replica.Follower.start f;
        f
  in
  wait_for "caught up" (caught_up t f);
  Replica.Primary.stop p;
  let path = match addr with Net.Addr.Unix_sock p -> p | _ -> assert false in
  (try Sys.remove path with Sys_error _ -> ());
  let stop, d = start_stalled_listener path in
  (* reconnects now reach a listener that never completes the handshake:
     the follower must keep cycling, not park in recv forever *)
  Unix.sleepf 1.5;
  Alcotest.(check bool) "still disconnected, not hung or halted" true
    (Replica.Follower.state f = Replica.Follower.Disconnected
    && Replica.Follower.failure f = None);
  Atomic.set stop true;
  Domain.join d;
  (try Sys.remove path with Sys_error _ -> ());
  (match Replica.Primary.create t ~listen:addr with
  | Error e -> Alcotest.fail e
  | Ok p2 ->
      Replica.Primary.start p2;
      Fastver.put t 21L "after";
      ignore (Fastver.verify t);
      wait_for "resumed after the stall" (caught_up t f);
      Alcotest.(check (option string)) "post-stall write replicated"
        (Some "after")
        (Fastver.get (Replica.Follower.system f) 21L);
      Replica.Primary.stop p2);
  Replica.Follower.stop f;
  remove_tree fdir

(* ------------------------------------------------------------------ *)
(* Shutdown vs in-flight checkpoint fetch                              *)
(* ------------------------------------------------------------------ *)

(* Race [Primary.stop] against an in-flight [Fetch_checkpoint], at several
   offsets. The frame layer makes the reply all-or-nothing; the shutdown
   drain must make "nothing" a clean EOF or error frame — never a torn
   frame, never a hang. *)
let test_shutdown_fetch_race () =
  let ckpt = fresh_dir () in
  let t = mk_system ~n:64 () in
  Fastver.set_auto_checkpoint t ~dir:ckpt;
  for i = 0 to 4 do
    Fastver.put t (Int64.of_int i) "x";
    ignore (Fastver.verify t)
  done;
  List.iter
    (fun delay ->
      let path = fresh_sock () in
      let pcfg =
        { Replica.Primary.default_config with checkpoint_dir = Some ckpt }
      in
      match Replica.Primary.create ~config:pcfg t ~listen:(Net.Addr.Unix_sock path) with
      | Error e -> Alcotest.fail e
      | Ok p -> (
          Replica.Primary.start p;
          match Net.Client.connect (Net.Addr.Unix_sock path) with
          | Error e -> Alcotest.fail e
          | Ok conn ->
              let id = Net.Client.send conn Net.Wire.Fetch_checkpoint in
              let stopper =
                Domain.spawn (fun () ->
                    Unix.sleepf delay;
                    Replica.Primary.stop p)
              in
              (match Net.Client.recv ~timeout:10.0 conn with
              | id', Net.Wire.Checkpoint_reply { files; _ }
                when Int64.equal id id' ->
                  (* a complete frame: the whole generation arrived *)
                  Alcotest.(check bool) "generation includes its manifest"
                    true
                    (Array.exists (fun (n, _) -> n = "MANIFEST") files)
              | _, Net.Wire.Error _ -> ()
              | _ -> Alcotest.fail "unexpected reply to checkpoint fetch"
              | exception Net.Client.Protocol_error _ -> () (* clean EOF *)
              | exception Net.Client.Timeout ->
                  Alcotest.fail "checkpoint fetch hung across shutdown"
              | exception Unix.Unix_error _ -> ());
              Domain.join stopper;
              Net.Client.close conn))
    [ 0.0; 0.002; 0.01; 0.05 ];
  (* mid-fetch loss, then a successful retry against a fresh primary *)
  let path = fresh_sock () in
  let pcfg =
    { Replica.Primary.default_config with checkpoint_dir = Some ckpt }
  in
  (match Replica.Primary.create ~config:pcfg t ~listen:(Net.Addr.Unix_sock path) with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Replica.Primary.start p;
      let fdir = fresh_dir () in
      (match
         Replica.Follower.create ~config:test_config
           ~load:(fun _ -> Alcotest.fail "fresh-load path taken")
           ~primary:(Net.Addr.Unix_sock path) ~dir:fdir ()
       with
      | Error e -> Alcotest.fail e
      | Ok f ->
          Alcotest.(check bool) "bootstrap after the raced fetches" true
            (Replica.Follower.verified_epoch f >= 0);
          Replica.Follower.stop f);
      remove_tree fdir;
      Replica.Primary.stop p);
  remove_tree ckpt

(* ------------------------------------------------------------------ *)
(* Primary loss at every protocol stage                                *)
(* ------------------------------------------------------------------ *)

(* Lose the primary mid-epoch (streamed ops, no boundary) and right at a
   boundary seal: the follower must come back clean each time and resume
   against the restarted primary from its verified epoch. *)
let test_primary_loss_stage_sweep () =
  let t, p, addr = mk_primary () in
  let f, fdir = mk_follower addr in
  wait_for "caught up" (caught_up t f);
  (* stage 1: mid-epoch — an op is in the stream, its boundary never is *)
  Fastver.put t 80L "unsealed";
  Unix.sleepf 0.1;
  Replica.Primary.stop p;
  wait_for "mid-epoch loss noticed" (fun () ->
      Replica.Follower.state f = Replica.Follower.Disconnected);
  Alcotest.(check bool) "mid-epoch loss is not an integrity failure" true
    (Replica.Follower.failure f = None);
  Alcotest.(check (option string)) "unsealed op never applied"
    (Some (initial_value 80L))
    (Fastver.get (Replica.Follower.system f) 80L);
  (* the primary restarts with the op still unsealed; seal and catch up *)
  (match Replica.Primary.create t ~listen:addr with
  | Error e -> Alcotest.fail e
  | Ok p2 ->
      Fastver.put t 80L "sealed";
      ignore (Fastver.verify t);
      Replica.Primary.start p2;
      wait_for "resumed after mid-epoch loss" (caught_up t f);
      Alcotest.(check (option string)) "sealed value replicated"
        (Some "sealed")
        (Fastver.get (Replica.Follower.system f) 80L);
      (* stage 2: loss at the boundary — seal and stop with no settling
         time, so the boundary record races the teardown *)
      Fastver.put t 81L "boundary";
      ignore (Fastver.verify t);
      Replica.Primary.stop p2);
  wait_for "boundary-race loss noticed" (fun () ->
      Replica.Follower.state f = Replica.Follower.Disconnected);
  Alcotest.(check bool) "boundary race is not an integrity failure" true
    (Replica.Follower.failure f = None);
  (* whether or not the boundary made it, the restart must converge *)
  (match Replica.Primary.create t ~listen:addr with
  | Error e -> Alcotest.fail e
  | Ok p3 ->
      Replica.Primary.start p3;
      Fastver.put t 82L "converged";
      ignore (Fastver.verify t);
      wait_for "resumed after boundary race" (caught_up t f);
      Alcotest.(check (option string)) "boundary epoch applied exactly once"
        (Some "boundary")
        (Fastver.get (Replica.Follower.system f) 81L);
      Alcotest.(check (option string)) "post-race epoch applied"
        (Some "converged")
        (Fastver.get (Replica.Follower.system f) 82L);
      Replica.Primary.stop p3);
  Replica.Follower.stop f;
  remove_tree fdir

(* ------------------------------------------------------------------ *)
(* Election & failover                                                 *)
(* ------------------------------------------------------------------ *)

let mk_electable ?(n = 256) ~priority ~peers ~repl ~lsock primary =
  let dir = fresh_dir () in
  let e =
    Replica.Follower.electable ~peers ~priority ~election_timeout:0.3
      ~probe_timeout:0.5 ~probe_interval:0.15 ~promote_batch:1 repl
  in
  match
    Replica.Follower.create ~config:test_config ~reconnect_delay:0.05
      ~handshake_timeout:2.0 ~election:e
      ~load:(fun sys -> Fastver.load sys (records n))
      ~primary ~listen:(Net.Addr.Unix_sock lsock) ~dir ()
  with
  | Error err -> Alcotest.fail err
  | Ok f ->
      Replica.Follower.start f;
      (f, dir)

(* Kill the primary under two electable followers: the higher-priority one
   must promote in place and serve *verified writes*; the loser must
   re-subscribe to it with its certificate chain unbroken across the term
   change. *)
let test_election_failover () =
  let t, p, addr = mk_primary () in
  Fastver.put t 50L "pre-failover";
  ignore (Fastver.verify t);
  let r1 = fresh_sock () and r2 = fresh_sock () in
  let l1 = fresh_sock () and l2 = fresh_sock () in
  let f1, d1 =
    mk_electable ~priority:2
      ~peers:[ Net.Addr.Unix_sock r2 ]
      ~repl:(Net.Addr.Unix_sock r1) ~lsock:l1 addr
  in
  let f2, d2 =
    mk_electable ~priority:1
      ~peers:[ Net.Addr.Unix_sock r1 ]
      ~repl:(Net.Addr.Unix_sock r2) ~lsock:l2 addr
  in
  wait_for "both caught up" (fun () -> caught_up t f1 () && caught_up t f2 ());
  let chain_checks_before =
    Replica.Follower.verified_epoch f2
  in
  Replica.Primary.stop p;
  wait_for "priority winner promotes" (fun () ->
      Replica.Follower.state f1 = Replica.Follower.Leading);
  Alcotest.(check bool) "fencing term advanced" true
    (Replica.Follower.term f1 >= 1);
  wait_for "loser re-homes to the winner" (fun () ->
      Replica.Follower.state f2 = Replica.Follower.Streaming
      && Replica.Follower.run_id f2
         = Some
             (Replica.Primary.run_id
                (Option.get (Replica.Follower.standby f1))));
  (* verified writes against the promoted node, via the ordinary client
     path: receipt MACs and a fresh epoch certificate, post-election *)
  (match Net.Client.connect (Net.Addr.Unix_sock l1) with
  | Error e -> Alcotest.fail e
  | Ok conn ->
      let s = Net.Client.open_session conn ~client:1 ~secret in
      Net.Client.put s 60L "failover-write";
      let epoch, _cert = Net.Client.verify_now s in
      Alcotest.(check bool) "cert chain alive across the term change" true
        (epoch > chain_checks_before);
      Alcotest.(check (option string)) "verified read-back"
        (Some "failover-write") (Net.Client.get s 60L);
      Net.Client.close conn);
  wait_for "write replicated to the loser" (fun () ->
      Fastver.get (Replica.Follower.system f2) 60L = Some "failover-write");
  Alcotest.(check bool) "loser chain unbroken" true
    (Replica.Follower.failure f2 = None);
  Alcotest.(check bool) "loser verified past its pre-failover chain" true
    (Replica.Follower.verified_epoch f2 > chain_checks_before);
  Alcotest.(check bool) "loser adopted the new term" true
    (Replica.Follower.term f2 >= 1);
  let m1 =
    Fastver_obs.Registry.to_json (Fastver.registry (Replica.Follower.system f1))
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (find_sub m1 name))
    [
      "fastver_repl_elections_total";
      "fastver_repl_promotion_seconds";
      "fastver_repl_term";
    ];
  Replica.Follower.stop f2;
  Replica.Follower.stop f1;
  remove_tree d1;
  remove_tree d2

(* Primary-side fencing at subscribe time, all three refusal classes. *)
let test_subscribe_fencing () =
  let t = mk_system ~n:16 () in
  let path = fresh_sock () in
  (match Replica.Primary.create t ~listen:(Net.Addr.Unix_sock path) with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Replica.Primary.start p;
      (match Net.Client.connect (Net.Addr.Unix_sock path) with
      | Error e -> Alcotest.fail e
      | Ok conn ->
          (* a subscriber speaking a higher term proves this primary was
             deposed: refusal plus recorded evidence *)
          let id =
            Net.Client.send conn (Net.Wire.Subscribe { from_epoch = 0; term = 5 })
          in
          (match Net.Client.recv ~timeout:5.0 conn with
          | id', Net.Wire.Error e when Int64.equal id id' ->
              Alcotest.(check bool) "refusal names deposition" true
                (find_sub e "deposed")
          | _ -> Alcotest.fail "higher-term subscriber was not refused");
          Net.Client.close conn);
      (match Replica.Primary.deposed p with
      | Some (5, _) -> ()
      | _ -> Alcotest.fail "deposition evidence not recorded");
      Replica.Primary.stop p);
  (* a standby candidate refuses subscribers outright *)
  let path2 = fresh_sock () in
  (match
     Replica.Primary.create ~role:Replica.Primary.Standby t
       ~listen:(Net.Addr.Unix_sock path2)
   with
  | Error e -> Alcotest.fail e
  | Ok sb ->
      Replica.Primary.start sb;
      (match Net.Client.connect (Net.Addr.Unix_sock path2) with
      | Error e -> Alcotest.fail e
      | Ok conn ->
          let id =
            Net.Client.send conn (Net.Wire.Subscribe { from_epoch = 0; term = 0 })
          in
          (match Net.Client.recv ~timeout:5.0 conn with
          | id', Net.Wire.Error e when Int64.equal id id' ->
              Alcotest.(check bool) "standby refusal is retryable" true
                (find_sub e "not primary")
          | _ -> Alcotest.fail "standby accepted a subscriber");
          Net.Client.close conn);
      (* after promotion, a stale-term subscriber claiming re-sealed epochs
         is fenced onto the checkpoint path *)
      Replica.Primary.promote sb ~term:3;
      (match Net.Client.connect (Net.Addr.Unix_sock path2) with
      | Error e -> Alcotest.fail e
      | Ok conn ->
          let from_epoch = Fastver.verified_epoch t + 2 in
          let id =
            Net.Client.send conn (Net.Wire.Subscribe { from_epoch; term = 0 })
          in
          (match Net.Client.recv ~timeout:5.0 conn with
          | id', Net.Wire.Error e when Int64.equal id id' ->
              Alcotest.(check bool) "stale term fenced to checkpoint" true
                (find_sub e "checkpoint")
          | _ -> Alcotest.fail "stale-term subscriber was not fenced");
          Net.Client.close conn);
      Replica.Primary.stop sb)

(* A bidirectional splice forwarder: healing a simulated partition means
   binding these at the peer addresses the candidates were configured
   with. Handles any number of sequential connections (election probes are
   one connection each). *)
let start_forwarder ~listen_path ~target =
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX listen_path);
  Unix.listen lfd 8;
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let buf = Bytes.create 4096 in
        let conns = ref [] in
        let close_pair (a, b) =
          (try Unix.close a with Unix.Unix_error _ -> ());
          try Unix.close b with Unix.Unix_error _ -> ()
        in
        (try
           while not (Atomic.get stop) do
             let fds =
               lfd :: List.concat_map (fun (a, b) -> [ a; b ]) !conns
             in
             let rs, _, _ = Unix.select fds [] [] 0.1 in
             List.iter
               (fun fd ->
                 if fd == lfd then begin
                   let cfd, _ = Unix.accept lfd in
                   match Net.Addr.to_sockaddr target with
                   | Ok a -> (
                       let sfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                       try
                         Unix.connect sfd a;
                         conns := (cfd, sfd) :: !conns
                       with Unix.Unix_error _ ->
                         Unix.close cfd;
                         Unix.close sfd)
                   | Error _ -> Unix.close cfd
                 end
                 else
                   match
                     List.find_opt (fun (a, b) -> fd == a || fd == b) !conns
                   with
                   | None -> ()
                   | Some ((a, b) as pair) ->
                       let dst = if fd == a then b else a in
                       let n =
                         try Unix.read fd buf 0 4096
                         with Unix.Unix_error _ -> 0
                       in
                       if n = 0 then begin
                         conns := List.filter (fun p -> p != pair) !conns;
                         close_pair pair
                       end
                       else Net.Sockio.send_all dst (Bytes.sub_string buf 0 n))
               rs
           done
         with Unix.Unix_error _ -> ());
        List.iter close_pair !conns;
        try Unix.close lfd with Unix.Unix_error _ -> ())
  in
  (stop, d)

(* Partition two electable followers (peer addresses unbound), kill the
   primary: both promote at the same term. Heal the partition: the rival
   probes find each other and exactly one primary survives — the other
   demotes in place and re-subscribes, chain intact. *)
let test_dual_promotion_heals () =
  let t, p, addr = mk_primary () in
  let ra = fresh_sock () and rb = fresh_sock () in
  let pa = fresh_sock () and pb = fresh_sock () in
  let la = fresh_sock () and lb = fresh_sock () in
  let fa, da =
    mk_electable ~priority:2
      ~peers:[ Net.Addr.Unix_sock pb ]
      ~repl:(Net.Addr.Unix_sock ra) ~lsock:la addr
  in
  let fb, db =
    mk_electable ~priority:1
      ~peers:[ Net.Addr.Unix_sock pa ]
      ~repl:(Net.Addr.Unix_sock rb) ~lsock:lb addr
  in
  wait_for "both caught up" (fun () -> caught_up t fa () && caught_up t fb ());
  Replica.Primary.stop p;
  wait_for "both promote during the partition" (fun () ->
      Replica.Follower.state fa = Replica.Follower.Leading
      && Replica.Follower.state fb = Replica.Follower.Leading);
  (* heal: bind the peer addresses with splices to the real listeners *)
  let stop_a, dfa = start_forwarder ~listen_path:pa ~target:(Net.Addr.Unix_sock ra) in
  let stop_b, dfb = start_forwarder ~listen_path:pb ~target:(Net.Addr.Unix_sock rb) in
  wait_for "exactly one primary survives the heal" (fun () ->
      Replica.Follower.state fa = Replica.Follower.Leading
      && Replica.Follower.state fb = Replica.Follower.Streaming);
  Alcotest.(check bool) "loser demoted with chain intact" true
    (Replica.Follower.failure fb = None);
  (* the surviving primary serves writes; the demoted rival replicates them *)
  Fastver.put (Replica.Follower.system fa) 70L "post-heal";
  wait_for "post-heal write reaches the demoted rival" (fun () ->
      Fastver.get (Replica.Follower.system fb) 70L = Some "post-heal");
  Replica.Follower.stop fb;
  Replica.Follower.stop fa;
  Atomic.set stop_a true;
  Atomic.set stop_b true;
  Domain.join dfa;
  Domain.join dfb;
  remove_tree da;
  remove_tree db;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ pa; pb ]

(* ------------------------------------------------------------------ *)

let suite =
  ( "replica",
    [
      Alcotest.test_case "stream digest" `Quick test_stream_digest;
      Alcotest.test_case "certificate chain" `Quick test_cert_chain;
      Alcotest.test_case "replication wire opcodes" `Quick
        test_wire_repl_opcodes;
      QCheck_alcotest.to_alcotest prop_repl_op_hostile;
      Alcotest.test_case "follower replays and serves" `Quick
        test_follower_replays_and_serves;
      Alcotest.test_case "follower survives primary death" `Quick
        test_follower_survives_primary_death;
      Alcotest.test_case "checkpoint bootstrap" `Quick
        test_checkpoint_bootstrap;
      Alcotest.test_case "batching cuts stream frames" `Quick
        test_batching_cuts_frames;
      Alcotest.test_case "flipped op halts follower" `Quick
        test_flipped_op_halts;
      Alcotest.test_case "flipped legacy op halts follower" `Quick
        test_flipped_legacy_op_halts;
      Alcotest.test_case "flipped cert halts follower" `Quick
        test_flipped_cert_halts;
      Alcotest.test_case "truncated stream reconnects" `Quick
        test_truncated_stream_reconnects;
      Alcotest.test_case "primary survives garbage" `Quick
        test_primary_survives_garbage;
      Alcotest.test_case "client stale-epoch detection" `Quick
        test_client_stale_epoch;
      Alcotest.test_case "client staleness budget" `Quick
        test_client_staleness_budget;
      Alcotest.test_case "handshake timeout bounds create" `Quick
        test_handshake_timeout;
      Alcotest.test_case "handshake timeout falls back to reconnect" `Quick
        test_handshake_timeout_reconnect;
      Alcotest.test_case "shutdown vs checkpoint fetch race" `Quick
        test_shutdown_fetch_race;
      Alcotest.test_case "primary loss stage sweep" `Quick
        test_primary_loss_stage_sweep;
      Alcotest.test_case "election failover" `Quick test_election_failover;
      Alcotest.test_case "subscribe fencing" `Quick test_subscribe_fencing;
      Alcotest.test_case "dual promotion heals" `Quick
        test_dual_promotion_heals;
    ] )
