(* Crash-fault injection over the durability layer (§7).

   The sweep drives a checkpoint-under-load into every interesting cut
   point — mid-write at a range of byte offsets, plus pre-fsync and
   pre-rename for every component file and the manifest — "kills" the
   process there (Ckpt_io.Injected_crash), recovers from disk, and asserts
   the recovered system is a consistent committed state: full verification
   passes, the pre-crash authenticated put cannot be replayed, and the
   system keeps working. The corruption tests then attack the files of a
   committed generation directly (truncation, bit flips, with and without
   an adversarial manifest fix-up): recovery must stay total (Error, never
   an exception) and must never yield a system that verifies a lie. *)

module C = Fastver_kvstore.Ckpt_io

let vo = Alcotest.(option string)

let ckpt t ~dir =
  match Fastver.checkpoint t ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "checkpoint: %s" e

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  C.remove_tree dir;
  dir

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec at i = i + m <= n && (String.sub hay i m = needle || at (i + 1)) in
  at 0

let config =
  {
    Fastver.Config.default with
    n_workers = 2;
    batch_size = 0;
    frontier_levels = 2;
    cost_model = Cost_model.zero;
  }

let mk ?(n = 40) () =
  let t = Fastver.create ~config () in
  Fastver.load t
    (Array.init n (fun i -> (Int64.of_int i, Printf.sprintf "v%06d" i)));
  t

(* Build a system with one committed checkpoint generation (the fallback),
   then more updates, and return it poised for a second checkpoint. The
   last *authenticated* put happens before the committed checkpoint, so its
   nonce is in every recoverable nonce table and a replay must always be
   rejected. *)
let poised dir =
  let t = mk () in
  let s = Fastver.Session.connect t ~client_id:3 in
  ignore (Fastver.Session.put s 1L "committed-v1");
  ignore (Fastver.verify t);
  ckpt t ~dir;
  Fastver.put t 1L "in-flight-v2";
  Fastver.put t 41L "new-record";
  ignore (Fastver.verify t);
  t

(* After recovery from any cut point the state must be the committed
   generation: old (only gen 0 committed) or new (crash after the second
   manifest committed — only possible when the fault never fired). *)
let assert_recovered_consistent ~dir ~crashed =
  match Fastver.recover ~config ~dir () with
  | Error e -> Alcotest.failf "recover after crash: %s" e
  | Ok t2 ->
      let v1 = Fastver.get t2 1L in
      (if crashed then
         Alcotest.(check vo) "old generation state" (Some "committed-v1") v1
       else
         Alcotest.(check vo) "new generation state" (Some "in-flight-v2") v1);
      (* the pre-crash authenticated put must not be replayable *)
      (match Fastver.Testing.replay_last_put t2 with
      | exception Fastver.Integrity_violation _ -> ()
      | () -> Alcotest.fail "pre-crash put replayed after crash recovery");
      (* full verification over every record, then continued service *)
      for i = 0 to 39 do
        ignore (Fastver.get t2 (Int64.of_int i))
      done;
      ignore (Fastver.verify t2);
      Fastver.put t2 5L "post-recovery";
      ignore (Fastver.verify t2);
      Alcotest.(check vo) "usable after recovery" (Some "post-recovery")
        (Fastver.get t2 5L)

let run_cut_point name fault =
  let dir = fresh_dir ("fv-crash-" ^ name) in
  let t = poised dir in
  C.arm fault;
  let crashed =
    match Fastver.checkpoint t ~dir with
    | Ok () -> false
    | Error e -> Alcotest.failf "checkpoint: %s" e
    | exception C.Injected_crash _ -> true
  in
  C.disarm ();
  assert_recovered_consistent ~dir ~crashed;
  C.remove_tree dir;
  crashed

(* Total bytes a second checkpoint writes, to place the mid-write cuts. *)
let checkpoint_write_volume () =
  let dir = fresh_dir "fv-crash-measure" in
  let t = poised dir in
  C.arm (C.Die_after_bytes max_int);
  ckpt t ~dir;
  C.disarm ();
  let total = C.bytes_written () in
  C.remove_tree dir;
  total

let test_sweep_mid_write () =
  let total = checkpoint_write_volume () in
  Alcotest.(check bool) "checkpoint writes something" true (total > 0);
  (* cut at every eighth of the write volume, plus the first and last byte *)
  let cuts =
    [ 0; 1 ]
    @ List.init 7 (fun i -> (i + 1) * total / 8)
    @ [ total - 1 ]
  in
  let n_crashed =
    List.fold_left
      (fun acc cut ->
        let crashed =
          run_cut_point
            (Printf.sprintf "byte-%d" cut)
            (C.Die_after_bytes cut)
        in
        acc + if crashed then 1 else 0)
      0 cuts
  in
  Alcotest.(check int) "every cut point crashed" (List.length cuts) n_crashed

let component_files =
  [ "data.ckpt"; "merkle-0.tree"; "merkle-1.tree"; "verifier.sealed"; "tpm.state";
    "MANIFEST" ]

let test_sweep_pre_fsync () =
  List.iter
    (fun file ->
      let crashed =
        run_cut_point ("fsync-" ^ file) (C.Die_before_fsync file)
      in
      Alcotest.(check bool) ("crashed before fsync of " ^ file) true crashed)
    component_files

let test_sweep_pre_rename () =
  List.iter
    (fun file ->
      let crashed =
        run_cut_point ("rename-" ^ file) (C.Die_before_rename file)
      in
      Alcotest.(check bool) ("crashed before rename of " ^ file) true crashed)
    component_files

(* Two crashes in a row (the second checkpoint *and* the one after it) must
   still fall back to the oldest committed generation. *)
let test_double_crash () =
  let dir = fresh_dir "fv-crash-double" in
  let t = poised dir in
  C.arm (C.Die_after_bytes 100);
  (try ckpt t ~dir with C.Injected_crash _ -> ());
  C.arm (C.Die_before_rename "MANIFEST");
  (try ckpt t ~dir with C.Injected_crash _ -> ());
  C.disarm ();
  assert_recovered_consistent ~dir ~crashed:true;
  C.remove_tree dir

(* A crash mid-checkpoint must leave the *running* system intact too: the
   invariant protects the next checkpoint attempt after a transient fault
   (full disk, say) when the process did not actually die. *)
let test_survivor_can_checkpoint_again () =
  let dir = fresh_dir "fv-crash-retry" in
  let t = poised dir in
  C.arm (C.Die_after_bytes 1000);
  (try ckpt t ~dir with C.Injected_crash _ -> ());
  C.disarm ();
  ignore (Fastver.verify t);
  ckpt t ~dir;
  (match Fastver.recover ~config ~dir () with
  | Error e -> Alcotest.failf "recover after retry: %s" e
  | Ok t2 ->
      Alcotest.(check vo) "retry checkpointed the live state"
        (Some "in-flight-v2") (Fastver.get t2 1L));
  C.remove_tree dir

(* A crash while a *background* verification scan is in flight: the
   restarted process recovers from the last committed generation, whose
   verifier summary pins the last sealed epoch — none of the migrations the
   interrupted scan performed in the old process's memory are visible. We
   simulate the kill by recovering concurrently while the old system's
   verify_async is still running, then join it only to avoid leaking a
   domain. *)
let test_recover_mid_background_scan () =
  let bg_config = { config with background_verify = true } in
  let dir = fresh_dir "fv-crash-bg-verify" in
  let t = Fastver.create ~config:bg_config () in
  Fastver.load t
    (Array.init 40 (fun i -> (Int64.of_int i, Printf.sprintf "v%06d" i)));
  Fastver.put t 1L "sealed-state";
  ignore (Fastver.verify t);
  ckpt t ~dir;
  let e_sealed = Fastver.current_epoch t in
  (* dirty the open epoch, then fire the scan the "crash" interrupts *)
  for i = 0 to 39 do
    Fastver.put t (Int64.of_int i) (Printf.sprintf "open-%d" i)
  done;
  let finished = Atomic.make None in
  Fastver.verify_async t ~on_complete:(fun r -> Atomic.set finished (Some r));
  (match Fastver.recover ~config:bg_config ~dir () with
  | Error e -> Alcotest.failf "recover mid-scan: %s" e
  | Ok t2 ->
      Alcotest.(check int) "lands on the last sealed epoch" e_sealed
        (Fastver.current_epoch t2);
      Alcotest.(check vo) "pre-seal state only" (Some "sealed-state")
        (Fastver.get t2 1L);
      (* the recovered system is fully serviceable: re-verify, write on *)
      Fastver.put t2 2L "after-recovery";
      ignore (Fastver.verify t2);
      Alcotest.(check vo) "usable after recovery" (Some "after-recovery")
        (Fastver.get t2 2L));
  Fastver.wait_verify t;
  (match Atomic.get finished with
  | Some (Ok (epoch, _)) ->
      Alcotest.(check int) "old process's scan covered the open epoch"
        e_sealed epoch
  | Some (Error e) ->
      Alcotest.failf "old process's background scan failed: %s"
        (Printexc.to_string e)
  | None -> Alcotest.fail "background scan never completed");
  C.remove_tree dir

(* Checkpoints are no longer pinned to a just-verified boundary: one taken
   mid-epoch — slow-path records cached, blum-dirty records outstanding —
   must drain the caches into the checkpoint, and recovery must rebuild the
   dirty lists from the persisted record states so the next scan balances. *)
let test_mid_epoch_checkpoint_recovers () =
  let dir = fresh_dir "fv-ckpt-midepoch" in
  let t = mk () in
  (* one sealed epoch behind us; the interesting state is all mid-epoch *)
  ignore (Fastver.verify t);
  for i = 0 to 39 do
    ignore (Fastver.get t (Int64.of_int i))
  done;
  for i = 0 to 39 do
    Fastver.put t (Int64.of_int i) (Printf.sprintf "mid-%d" i)
  done;
  ckpt t ~dir;
  (match Fastver.recover ~config ~dir () with
  | Error e -> Alcotest.failf "mid-epoch recover: %s" e
  | Ok t2 ->
      for i = 0 to 39 do
        Alcotest.(check vo) "mid-epoch state"
          (Some (Printf.sprintf "mid-%d" i))
          (Fastver.get t2 (Int64.of_int i))
      done;
      ignore (Fastver.verify t2);
      Fastver.put t2 3L "post";
      ignore (Fastver.verify t2);
      Alcotest.(check vo) "usable after mid-epoch recovery" (Some "post")
        (Fastver.get t2 3L));
  (* the survivor — caches drained by the checkpoint — keeps verifying *)
  ignore (Fastver.verify t);
  C.remove_tree dir

(* ------------------------------------------------------------------ *)
(* Corrupt committed generations: recovery total, tampering detected   *)
(* ------------------------------------------------------------------ *)

let rec copy_tree src dst =
  if Sys.is_directory src then begin
    Sys.mkdir dst 0o755;
    Array.iter
      (fun name ->
        copy_tree (Filename.concat src name) (Filename.concat dst name))
      (Sys.readdir src)
  end
  else begin
    let ic = open_in_bin src in
    let raw = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let oc = open_out_bin dst in
    output_string oc raw;
    close_out oc
  end

(* One committed checkpoint, built once and copied per corruption case. *)
let pristine =
  lazy
    (let dir = fresh_dir "fv-crash-pristine" in
     let t = mk () in
     let s = Fastver.Session.connect t ~client_id:7 in
     ignore (Fastver.Session.put s 2L "sealed-in");
     ignore (Fastver.verify t);
     ckpt t ~dir;
     dir)

let rehash_manifest gdir =
  match C.Manifest.read ~dir:gdir with
  | Error e -> Alcotest.fail e
  | Ok m ->
      let entries =
        List.map
          (fun (e : C.Manifest.entry) ->
            match C.Manifest.entry_of_file ~dir:gdir e.name with
            | Ok e' -> e'
            | Error err -> Alcotest.fail err)
          m.entries
      in
      C.Manifest.write ~dir:gdir { m with entries }

let mutate_file path f =
  let ic = open_in_bin path in
  let raw = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  let raw = f raw in
  let oc = open_out_bin path in
  output_bytes oc raw;
  close_out oc

(* Corrupt [file] of a copy of the pristine generation with [f], optionally
   re-hash the manifest (host adversary), then recover: it must return —
   and if it returns [Ok], reading everything and verifying must trip the
   verifier rather than certify the corrupt state. *)
let check_corruption ?(fixup = true) ~file ~name f =
  let dir = fresh_dir ("fv-corrupt-" ^ name) in
  copy_tree (Lazy.force pristine) dir;
  let gdir =
    match C.generations dir with
    | (_, g) :: _ -> g
    | [] -> Alcotest.fail "pristine checkpoint has no generation"
  in
  mutate_file (Filename.concat gdir file) f;
  if fixup then rehash_manifest gdir;
  (match Fastver.recover ~config ~dir () with
  | Error _ -> ()
  | Ok t2 -> (
      match
        for i = 0 to 39 do
          ignore (Fastver.get t2 (Int64.of_int i))
        done;
        ignore (Fastver.get t2 2L);
        ignore (Fastver.verify t2)
      with
      | exception Fastver.Integrity_violation _ -> ()
      | () ->
          (* Structurally-dead bytes may legitimately decode to the honest
             state; anything else must have been caught above. *)
          Alcotest.(check vo)
            (name ^ ": surviving state must be honest")
            (Some "sealed-in") (Fastver.get t2 2L)));
  C.remove_tree dir

let truncate_half raw = Bytes.sub raw 0 (Bytes.length raw / 2)

let flip_middle raw =
  let i = Bytes.length raw / 2 in
  Bytes.set raw i (Char.chr (Char.code (Bytes.get raw i) lxor 0x10));
  raw

let test_corrupt_components () =
  List.iter
    (fun file ->
      check_corruption ~file ~name:(file ^ "-trunc") truncate_half;
      check_corruption ~file ~name:(file ^ "-flip") flip_middle;
      (* without the fix-up the well-formed manifest's checksum mismatch is
         surfaced as tampering (an [Error], never a silent fallback) *)
      check_corruption ~fixup:false ~file ~name:(file ^ "-mismatch")
        flip_middle)
    [ "data.ckpt"; "merkle-0.tree"; "merkle-1.tree"; "verifier.sealed"; "tpm.state" ]

let test_corrupt_manifest () =
  List.iter
    (fun (name, f) -> check_corruption ~fixup:false ~file:"MANIFEST" ~name f)
    [
      ("manifest-trunc", truncate_half);
      ("manifest-flip", flip_middle);
      ("manifest-garbage", fun _ -> Bytes.of_string "not a manifest at all");
    ]

(* The rollback primitive the scheme must deny: one flipped bit in the
   newest committed generation (manifest left alone, so its checksums no
   longer verify) must surface an error — not silently recover the older
   generation — and must leave the tampered directory in place as
   evidence. *)
let test_tamper_does_not_roll_back () =
  let dir = fresh_dir "fv-tamper-rollback" in
  let t = mk () in
  Fastver.put t 1L "old-state";
  ignore (Fastver.verify t);
  ckpt t ~dir;
  Fastver.put t 1L "new-state";
  ignore (Fastver.verify t);
  ckpt t ~dir;
  let gdir =
    match C.generations dir with
    | (_, g) :: _ -> g
    | [] -> Alcotest.fail "no generation"
  in
  mutate_file (Filename.concat gdir "data.ckpt") flip_middle;
  (match Fastver.recover ~config ~dir () with
  | Ok _ -> Alcotest.fail "tampered newest generation accepted"
  | Error e ->
      Alcotest.(check bool) ("surfaced as tampering: " ^ e) true
        (contains e "tampering"));
  Alcotest.(check bool) "tampered generation preserved as evidence" true
    (Sys.file_exists (Filename.concat gdir "MANIFEST"));
  C.remove_tree dir

(* Replaying an old committed generation under a higher ckpt-<n> number must
   not let it shadow the newest one: the manifest records its own generation
   and a disagreement with the directory name is tampering. *)
let test_generation_number_pinned () =
  let dir = fresh_dir "fv-gen-rename" in
  let t = mk () in
  Fastver.put t 1L "old-state";
  ignore (Fastver.verify t);
  ckpt t ~dir;
  Fastver.put t 1L "new-state";
  ignore (Fastver.verify t);
  ckpt t ~dir;
  copy_tree (Filename.concat dir "ckpt-0") (Filename.concat dir "ckpt-5");
  (match Fastver.recover ~config ~dir () with
  | Ok _ -> Alcotest.fail "replayed generation accepted under a new number"
  | Error e ->
      Alcotest.(check bool) ("surfaced as tampering: " ^ e) true
        (contains e "tampering"));
  C.remove_tree dir

(* Retention must keep the newest *committed* predecessor: after a failed
   checkpoint attempt (non-fatal — the process kept serving) the torn
   directory occupies the numeric predecessor slot, and the next successful
   checkpoint must prune it rather than the last good generation. *)
let test_retention_keeps_committed_fallback () =
  let dir = fresh_dir "fv-retention" in
  let t = poised dir in
  (* torn ckpt-1: the attempt dies mid-write *)
  C.arm (C.Die_after_bytes 100);
  (try ckpt t ~dir with C.Injected_crash _ -> ());
  C.disarm ();
  ignore (Fastver.verify t);
  (* committed ckpt-2: retention runs *)
  ckpt t ~dir;
  Alcotest.(check bool) "committed ckpt-0 retained as fallback" true
    (Sys.file_exists (Filename.concat dir "ckpt-0/MANIFEST"));
  Alcotest.(check bool) "torn ckpt-1 pruned" false
    (Sys.file_exists (Filename.concat dir "ckpt-1"));
  (* if the newest generation is later lost wholesale, the fallback must be
     recoverable *)
  C.remove_tree (Filename.concat dir "ckpt-2");
  (match Fastver.recover ~config ~dir () with
  | Error e -> Alcotest.failf "fallback recovery: %s" e
  | Ok t2 ->
      Alcotest.(check vo) "fallback is the committed generation"
        (Some "committed-v1") (Fastver.get t2 1L));
  C.remove_tree dir

(* An empty or missing directory is the one error after which a fresh start
   is safe (the CLI keys on its exact payload); a flat pre-generation layout
   is a format change and must say so. *)
let test_no_checkpoint_vs_legacy_layout () =
  let dir = fresh_dir "fv-empty" in
  (match Fastver.recover ~config ~dir () with
  | Ok _ -> Alcotest.fail "recovered from nothing"
  | Error e ->
      Alcotest.(check string) "exact no-checkpoint error"
        Fastver.err_no_checkpoint e);
  Sys.mkdir dir 0o755;
  let oc = open_out_bin (Filename.concat dir "data.ckpt") in
  output_string oc "FVCKPT01legacy-flat-layout";
  close_out oc;
  (match Fastver.recover ~config ~dir () with
  | Ok _ -> Alcotest.fail "recovered from a legacy layout"
  | Error e ->
      Alcotest.(check bool) ("explicit legacy error: " ^ e) true
        (contains e "legacy"));
  C.remove_tree dir

(* A data checkpoint whose version was doctored must be rejected against the
   sealed verifier epoch even though its checksums can be made to agree. *)
let test_version_epoch_mismatch () =
  let dir = fresh_dir "fv-corrupt-version" in
  copy_tree (Lazy.force pristine) dir;
  let gdir =
    match C.generations dir with
    | (_, g) :: _ -> g
    | [] -> Alcotest.fail "no generation"
  in
  mutate_file (Filename.concat gdir "data.ckpt") (fun raw ->
      (* version int64 lives right after the 8-byte magic *)
      Bytes.set_int64_le raw 8 (Int64.add (Bytes.get_int64_le raw 8) 7L);
      raw);
  rehash_manifest gdir;
  (match Fastver.recover ~config ~dir () with
  | Error e ->
      Alcotest.(check bool) ("rejected for epoch disagreement: " ^ e) true
        (contains e "disagrees")
  | Ok _ -> Alcotest.fail "doctored checkpoint version accepted");
  C.remove_tree dir

(* ------------------------------------------------------------------ *)
(* Fuzz: recovery is total on arbitrary corruption                     *)
(* ------------------------------------------------------------------ *)

let prop_recover_never_raises =
  QCheck.Test.make ~name:"Fastver.recover total under random corruption"
    ~count:60
    QCheck.(
      quad (int_bound 4) (int_bound 1000) (int_bound 255) bool)
    (fun (file_idx, frac_millis, byte, fixup) ->
      let frac = float_of_int frac_millis /. 1000.0 in
      let dir = fresh_dir "fv-fuzz-recover" in
      copy_tree (Lazy.force pristine) dir;
      let gdir =
        match C.generations dir with
        | (_, g) :: _ -> g
        | [] -> failwith "no generation"
      in
      let file =
        List.nth
          [ "data.ckpt"; "merkle-0.tree"; "merkle-1.tree"; "verifier.sealed"; "tpm.state" ]
          file_idx
      in
      mutate_file (Filename.concat gdir file) (fun raw ->
          if Bytes.length raw = 0 then raw
          else begin
            let i =
              min
                (Bytes.length raw - 1)
                (int_of_float (frac *. float_of_int (Bytes.length raw)))
            in
            Bytes.set raw i (Char.chr byte);
            raw
          end);
      if fixup then rehash_manifest gdir;
      let ok =
        match Fastver.recover ~config ~dir () with
        | Ok _ | Error _ -> true
        | exception _ -> false
      in
      C.remove_tree dir;
      ok)

(* ------------------------------------------------------------------ *)
(* Cold-tier crashes: mid-segment-write and mid-compaction            *)
(* ------------------------------------------------------------------ *)

module Cold = Fastver_kvstore.Store.Cold

let k i = Key.of_int64 (Int64.of_int i)

(* Kill the process (Cold.Injected_crash) part-way through a torn segment
   append during cold maintenance, then recover from the last committed
   generation: the torn tail must be truncated away and the recovered state
   must be exactly the checkpointed one. *)
let test_crash_mid_cold_append () =
  let cdir = fresh_dir "fv-crash-coldapp-tier" in
  let dir = fresh_dir "fv-crash-coldapp-ckpt" in
  let cold_config =
    {
      config with
      cold_dir = Some cdir;
      cold_threshold = 16;
      cold_segment_bytes = 2048;
    }
  in
  let t = Fastver.create ~config:cold_config () in
  let n = 64 in
  Fastver.load t
    (Array.init n (fun i -> (Int64.of_int i, Printf.sprintf "v%06d" i)));
  ignore (Fastver.verify t) (* demotes the cooling tail to cold *);
  ckpt t ~dir;
  (* dirty the store so the next maintenance pass has records to demote,
     then die torn: half a record hits the disk before the "kill" *)
  for i = 0 to n - 1 do
    Fastver.put t (Int64.of_int i) (Printf.sprintf "doomed-%d" i)
  done;
  Cold.arm_fault { Cold.after_appends = 3; torn = true };
  let crashed =
    match Fastver.verify t with
    | _ -> false
    | exception Cold.Injected_crash _ -> true
  in
  Cold.disarm_fault ();
  Alcotest.(check bool) "crashed mid segment write" true crashed;
  match Fastver.recover ~config:cold_config ~dir () with
  | Error e -> Alcotest.failf "recover after cold append crash: %s" e
  | Ok t2 ->
      for i = 0 to n - 1 do
        Alcotest.(check vo) "committed prefix only"
          (Some (Printf.sprintf "v%06d" i))
          (Fastver.get t2 (Int64.of_int i))
      done;
      ignore (Fastver.verify t2);
      Fastver.put t2 1L "post-crash";
      ignore (Fastver.verify t2);
      Alcotest.(check vo) "usable after recovery" (Some "post-crash")
        (Fastver.get t2 1L);
      C.remove_tree dir;
      C.remove_tree cdir

(* Same, but the kill lands inside compaction's rewrite loop: segments were
   part-rewritten but never retired in any committed manifest, so recovery
   must land on the pre-compaction committed state with nothing lost. *)
let test_crash_mid_compaction () =
  let cdir = fresh_dir "fv-crash-compact-tier" in
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "fv-crash-compact.ckpt"
  in
  if Sys.file_exists path then Sys.remove path;
  let module Store = Fastver_kvstore.Store in
  let cold =
    match
      Cold.create
        { Cold.dir = cdir; mac_secret = "crash-secret"; segment_bytes = 512 }
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "Cold.create: %s" e
  in
  let s =
    Store.create ~mutable_region_entries:4 ~cold ~codec:Store.string_codec ()
  in
  let n = 64 in
  for i = 0 to n - 1 do
    Store.put s (k i) (Printf.sprintf "v%06d" i) ~aux:(Int64.of_int i)
  done;
  (match Store.demote_now s ~budget:0 with
  | Ok moved -> Alcotest.(check bool) "demoted" true (moved > 0)
  | Error e -> Alcotest.failf "demote_now: %s" e);
  (* commit point: manifest first, then the store checkpoint of the same
     generation (mirrors Fastver.checkpoint's ordering) *)
  let manifest = Cold.manifest_encode cold in
  Store.checkpoint s ~path ~version:1;
  (* supersede half the demoted records so compaction has work *)
  for i = 0 to (n / 2) - 1 do
    Store.put s (k i) (Printf.sprintf "doomed-%d" i) ~aux:(Int64.of_int i)
  done;
  Cold.arm_fault { Cold.after_appends = 2; torn = true };
  let crashed =
    match Store.compact_cold s ~min_dead_ratio:0.2 with
    | Ok _ | Error _ -> false
    | exception Cold.Injected_crash _ -> true
  in
  Cold.disarm_fault ();
  Alcotest.(check bool) "crashed mid compaction" true crashed;
  (* restart: recover the tier from the committed manifest (truncating the
     torn rewrite tail), then the store against it *)
  let cold2 =
    match
      Cold.recover
        { Cold.dir = cdir; mac_secret = "crash-secret"; segment_bytes = 512 }
        ~manifest
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "Cold.recover after crash: %s" e
  in
  (match
     Store.recover ~cold:cold2 ~codec:Store.string_codec ~path ()
   with
  | Error e -> Alcotest.failf "Store.recover after crash: %s" e
  | Ok (s2, version) ->
      Alcotest.(check int) "committed version" 1 version;
      for i = 0 to n - 1 do
        match Store.get s2 (k i) with
        | Ok (Some (v, _)) ->
            Alcotest.(check string) "committed prefix only"
              (Printf.sprintf "v%06d" i) v
        | Ok None -> Alcotest.failf "key %d lost to the crash" i
        | Error e -> Alcotest.failf "get %d after crash recovery: %s" i e
      done);
  Sys.remove path;
  C.remove_tree cdir

let suite =
  ( "crashsafe",
    [
      Alcotest.test_case "sweep: mid-write cut points" `Quick
        test_sweep_mid_write;
      Alcotest.test_case "sweep: pre-fsync cut points" `Quick
        test_sweep_pre_fsync;
      Alcotest.test_case "sweep: pre-rename cut points" `Quick
        test_sweep_pre_rename;
      Alcotest.test_case "double crash" `Quick test_double_crash;
      Alcotest.test_case "survivor checkpoints again" `Quick
        test_survivor_can_checkpoint_again;
      Alcotest.test_case "recover mid background scan" `Quick
        test_recover_mid_background_scan;
      Alcotest.test_case "mid-epoch checkpoint recovers" `Quick
        test_mid_epoch_checkpoint_recovers;
      Alcotest.test_case "corrupt component files" `Quick
        test_corrupt_components;
      Alcotest.test_case "corrupt manifest" `Quick test_corrupt_manifest;
      Alcotest.test_case "tampering does not roll back" `Quick
        test_tamper_does_not_roll_back;
      Alcotest.test_case "generation number pinned in manifest" `Quick
        test_generation_number_pinned;
      Alcotest.test_case "retention keeps committed fallback" `Quick
        test_retention_keeps_committed_fallback;
      Alcotest.test_case "no-checkpoint vs legacy layout" `Quick
        test_no_checkpoint_vs_legacy_layout;
      Alcotest.test_case "version/epoch mismatch" `Quick
        test_version_epoch_mismatch;
      QCheck_alcotest.to_alcotest prop_recover_never_raises;
    ] )
