(* The scalability simulator. *)

let test_dv_micro_scales () =
  let r1 = Fastver_simthreads.Simthreads.run_dv_micro ~workers:1 ~db_size:4096 ~ops:40_000 () in
  let r4 = Fastver_simthreads.Simthreads.run_dv_micro ~workers:4 ~db_size:4096 ~ops:40_000 () in
  Alcotest.(check bool)
    (Printf.sprintf "4 workers beat 1 (%.0f vs %.0f ops/s)" r4.throughput
       r1.throughput)
    true
    (r4.throughput > 2.0 *. r1.throughput);
  Alcotest.(check int) "ops accounted" 40_000 r1.ops

let test_interference_model () =
  let open Fastver_simthreads.Simthreads in
  Alcotest.(check (float 0.0001)) "1 worker" 1.0 (paper_interference 1);
  Alcotest.(check (float 0.0001)) "2 workers" 0.875 (paper_interference 2);
  Alcotest.(check bool) "monotone" true
    (paper_interference 32 < paper_interference 8)

let test_hybrid_modeled () =
  let config =
    {
      Fastver.Config.default with
      n_workers = 4;
      batch_size = 10_000;
      frontier_levels = 4;
      cost_model = Cost_model.zero;
      authenticate_clients = false;
    }
  in
  let r =
    Fastver_simthreads.Simthreads.run_hybrid ~config ~db_size:5_000 ~ops:20_000
      ~spec:Fastver_workload.Ycsb.workload_a ()
  in
  Alcotest.(check int) "worker count" 4 r.workers;
  Alcotest.(check bool) "positive throughput" true (r.throughput > 0.0);
  Alcotest.(check bool) "busy time attributed to all workers" true
    (Array.for_all (fun b -> b > 0.0) r.per_worker_busy_s)

let suite =
  ( "simthreads",
    [
      Alcotest.test_case "dv micro scales" `Slow test_dv_micro_scales;
      Alcotest.test_case "interference model" `Quick test_interference_model;
      Alcotest.test_case "hybrid modeled run" `Slow test_hybrid_modeled;
    ] )
