(* The network serving layer, end to end: Batch.submit semantics, an
   in-process server spoken to over a Unix socket (results matching a direct
   in-process run), and the adversarial case — a proxy flips one bit of a
   response and the client's signature check catches it. *)

module Net = Fastver_net

let initial_value = Fastver_workload.Ycsb.initial_value

let test_config =
  {
    Fastver.Config.default with
    n_workers = 2;
    batch_size = 64;
    cost_model = Cost_model.zero;
  }

let mk_system ?(config = test_config) ?(n = 256) () =
  let t = Fastver.create ~config () in
  Fastver.load t
    (Array.init n (fun i -> (Int64.of_int i, initial_value (Int64.of_int i))));
  t

(* ------------------------------------------------------------------ *)
(* Batch.submit                                                        *)
(* ------------------------------------------------------------------ *)

let auth_key = Fastver.Auth.key_of_secret Fastver.Config.default.mac_secret

let put_mac ~client ~nonce key value =
  Fastver.Auth.put_request auth_key ~client ~nonce (Key.of_int64 key)
    (Option.value value ~default:"")

let check_receipt ~kind ~client ~nonce (it : Fastver.Batch.item) =
  let expected =
    Fastver.Auth.receipt auth_key ~kind ~client ~nonce (Key.of_int64 it.ikey)
      it.ivalue ~epoch:it.iepoch
  in
  Alcotest.(check bool) "receipt MAC" true (Fastver.Auth.check ~expected it.imac)

let test_batch_submit () =
  let t = mk_system () in
  let client = 9 in
  let ops =
    [|
      Fastver.Batch.Get { client; nonce = 1L; key = 5L };
      Fastver.Batch.Put
        {
          client;
          nonce = 2L;
          mac = put_mac ~client ~nonce:2L 5L (Some "hello");
          key = 5L;
          value = Some "hello";
        };
      Fastver.Batch.Get { client; nonce = 3L; key = 5L };
      Fastver.Batch.Scan { client; nonce = 4L; start = 4L; len = 3 };
    |]
  in
  (match Fastver.Batch.submit t ops with
  | [| Got a; Put_done b; Got c; Scanned items |] ->
      Alcotest.(check (option string)) "initial get" (Some (initial_value 5L))
        a.ivalue;
      check_receipt ~kind:Fastver.Auth.Get ~client ~nonce:1L a;
      Alcotest.(check (option string)) "put echoes new value" (Some "hello")
        b.ivalue;
      check_receipt ~kind:Fastver.Auth.Put ~client ~nonce:2L b;
      Alcotest.(check (option string)) "get sees the put" (Some "hello")
        c.ivalue;
      check_receipt ~kind:Fastver.Auth.Get ~client ~nonce:3L c;
      Alcotest.(check int) "scan length" 3 (Array.length items);
      Array.iteri
        (fun i it ->
          Alcotest.(check int64) "scan key" (Int64.add 4L (Int64.of_int i))
            it.Fastver.Batch.ikey;
          check_receipt ~kind:Fastver.Auth.Get ~client ~nonce:4L it)
        items
  | _ -> Alcotest.fail "unexpected reply shapes");
  ignore (Fastver.verify t)

let test_batch_isolates_forgeries () =
  let t = mk_system () in
  let client = 3 in
  let good nonce key value =
    Fastver.Batch.Put
      { client; nonce; mac = put_mac ~client ~nonce key (Some value); key;
        value = Some value }
  in
  let ops =
    [|
      good 1L 10L "a";
      (* forged MAC: must fail alone, not poison the batch *)
      Fastver.Batch.Put
        { client; nonce = 2L; mac = String.make 16 'x'; key = 11L;
          value = Some "evil" };
      good 3L 12L "c";
      (* nonce replay: rejected by the gateway *)
      good 1L 13L "d";
      Fastver.Batch.Get { client; nonce = 4L; key = 10L };
    |]
  in
  (match Fastver.Batch.submit t ops with
  | [| Put_done _; Failed _; Put_done _; Failed _; Got g |] ->
      Alcotest.(check (option string)) "batch survived the forgery" (Some "a")
        g.ivalue
  | _ -> Alcotest.fail "expected [ok; failed; ok; failed; ok]");
  Alcotest.(check (option string)) "forged put not applied"
    (Some (initial_value 11L)) (Fastver.get t 11L);
  Alcotest.(check (option string)) "replayed put not applied"
    (Some (initial_value 13L)) (Fastver.get t 13L);
  (* the epoch still verifies: rejected ops left no trace *)
  ignore (Fastver.verify t)

(* ------------------------------------------------------------------ *)
(* Server + client over a Unix socket                                  *)
(* ------------------------------------------------------------------ *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "fastver-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let with_server ?config ?n f =
  let t = mk_system ?config ?n () in
  let path = fresh_sock () in
  match Net.Server.create t ~listen:(Net.Addr.Unix_sock path) with
  | Error e -> Alcotest.fail e
  | Ok srv ->
      Net.Server.start srv;
      Fun.protect
        ~finally:(fun () -> Net.Server.stop srv)
        (fun () -> f t (Net.Addr.Unix_sock path))

let connect addr =
  match Net.Client.connect addr with
  | Ok c -> c
  | Error e -> Alcotest.fail e

let secret = Fastver.Config.default.mac_secret

let test_session_matches_direct () =
  with_server (fun _t addr ->
      let conn = connect addr in
      let s = Net.Client.open_session conn ~client:1 ~secret in
      (* reference model: what a direct in-process run would return *)
      let model = Hashtbl.create 256 in
      for i = 0 to 255 do
        Hashtbl.replace model (Int64.of_int i) (Some (initial_value (Int64.of_int i)))
      done;
      let model_get k =
        match Hashtbl.find_opt model k with Some v -> v | None -> None
      in
      let rng = Random.State.make [| 11 |] in
      for i = 0 to 299 do
        let k = Int64.of_int (Random.State.int rng 256) in
        match Random.State.int rng 4 with
        | 0 ->
            Alcotest.(check (option string)) "get" (model_get k)
              (Net.Client.get s k)
        | 1 ->
            let v = Printf.sprintf "v%d" i in
            Net.Client.put s k v;
            Hashtbl.replace model k (Some v)
        | 2 ->
            Net.Client.delete s k;
            Hashtbl.replace model k None
        | _ ->
            let start = Int64.of_int (Random.State.int rng 250) in
            let len = 1 + Random.State.int rng 5 in
            let items = Net.Client.scan s start len in
            Alcotest.(check int) "scan len" len (Array.length items);
            Array.iter
              (fun (k, v) ->
                Alcotest.(check (option string)) "scan item" (model_get k) v)
              items
      done;
      (* pipelining: a window of sends, then drain (verifying each) *)
      for i = 0 to 49 do
        ignore (Net.Client.send_get s (Int64.of_int (i mod 256)))
      done;
      Alcotest.(check int) "in flight" 50 (Net.Client.in_flight s);
      Net.Client.drain s;
      let epoch, _cert = Net.Client.verify_now s in
      Alcotest.(check bool) "epochs advanced" true (epoch > 0);
      Net.Client.close_session s;
      let st = Net.Client.stats conn in
      Alcotest.(check bool) "server counted ops" true (st.Net.Wire.ops > 300L);
      Net.Client.close conn)

let test_two_sessions () =
  with_server (fun _t addr ->
      let c1 = connect addr and c2 = connect addr in
      let s1 = Net.Client.open_session c1 ~client:1 ~secret
      and s2 = Net.Client.open_session c2 ~client:2 ~secret in
      Net.Client.put s1 7L "from-one";
      Alcotest.(check (option string)) "cross-session read" (Some "from-one")
        (Net.Client.get s2 7L);
      (* a second session may not steal a live client id *)
      (try
         ignore (Net.Client.open_session c2 ~client:1 ~secret);
         Alcotest.fail "duplicate client id accepted"
       with Net.Client.Server_error _ -> ());
      Net.Client.close_session s1;
      Net.Client.close_session s2;
      Net.Client.close c1;
      Net.Client.close c2)

(* ------------------------------------------------------------------ *)
(* Multi-domain stress: executor pool under concurrent clients         *)
(* ------------------------------------------------------------------ *)

(* Several client domains hammer a pooled server ([n_workers = 4], so the
   select loop dispatches to executor domains) with blocking ops, pipelined
   put->get windows on the same key, bursts, and scans. Each client owns a
   disjoint key range, so read-your-writes must hold exactly: a reordered
   reply, a lost same-key FIFO, or a put admitted out of nonce order all
   surface as a hard failure (receipt MACs are checked on every reply). *)
let test_multi_domain_stress () =
  let config = { test_config with n_workers = 4; batch_size = 512 } in
  with_server ~config (fun t addr ->
      let n_clients = 4 and keys_per_client = 64 and ops = 300 in
      let failures = Array.make n_clients None in
      let body idx () =
        try
          let cid = idx + 1 in
          let conn = connect addr in
          let s = Net.Client.open_session conn ~client:cid ~secret in
          let base = idx * keys_per_client in
          let rng = Random.State.make [| 42; cid |] in
          let model = Hashtbl.create 64 in
          let expect_of k =
            match Hashtbl.find_opt model k with
            | Some v -> v
            | None -> Some (initial_value k)
          in
          for i = 0 to ops - 1 do
            let k =
              Int64.of_int (base + Random.State.int rng keys_per_client)
            in
            match Random.State.int rng 5 with
            | 0 ->
                let got = Net.Client.get s k in
                if got <> expect_of k then
                  Printf.ksprintf failwith
                    "client %d key %Ld: lost read-your-writes" cid k
            | 1 ->
                let v = Printf.sprintf "c%d-%d" cid i in
                Net.Client.put s k v;
                Hashtbl.replace model k (Some v)
            | 2 -> (
                (* pipelined put;put;get on one key: same key -> same owner
                   queue, so the get must observe the second put *)
                let v1 = Printf.sprintf "c%d-%d-a" cid i in
                let v2 = Printf.sprintf "c%d-%d-b" cid i in
                ignore (Net.Client.send_put s k v1);
                ignore (Net.Client.send_put s k v2);
                ignore (Net.Client.send_get s k);
                (match Net.Client.await s with
                | _, Net.Client.Stored -> ()
                | _ -> failwith "bad reply kind for pipelined put");
                (match Net.Client.await s with
                | _, Net.Client.Stored -> ()
                | _ -> failwith "bad reply kind for pipelined put");
                match Net.Client.await s with
                | _, Net.Client.Value got ->
                    if got <> Some v2 then
                      Printf.ksprintf failwith
                        "client %d key %Ld: pipelined get saw %s, not the \
                         second put"
                        cid k
                        (Option.value got ~default:"<none>");
                    Hashtbl.replace model k (Some v2)
                | _ -> failwith "bad reply kind for pipelined get")
            | 3 ->
                (* a burst of pipelined gets: replies must come back in
                   request order even when executors finish out of order *)
                for j = 0 to 9 do
                  ignore
                    (Net.Client.send_get s
                       (Int64.of_int (base + ((i + j) mod keys_per_client))))
                done;
                Net.Client.drain s
            | _ ->
                (* scans quiesce the pool: they must observe every earlier
                   put of this client *)
                let start = base + Random.State.int rng (keys_per_client - 4) in
                let items = Net.Client.scan s (Int64.of_int start) 4 in
                Array.iter
                  (fun (k, v) ->
                    if v <> expect_of k then
                      Printf.ksprintf failwith
                        "client %d key %Ld: scan missed a put" cid k)
                  items
          done;
          ignore (Net.Client.verify_now s);
          Net.Client.close_session s;
          Net.Client.close conn
        with e -> failures.(idx) <- Some e
      in
      let domains =
        Array.init (n_clients - 1) (fun i -> Domain.spawn (body (i + 1)))
      in
      body 0 ();
      Array.iter Domain.join domains;
      Array.iteri
        (fun i -> function
          | Some e ->
              Alcotest.failf "client %d failed: %s" (i + 1)
                (Printexc.to_string e)
          | None -> ())
        failures;
      ignore (Fastver.verify t);
      Alcotest.(check bool) "verifier healthy" true
        (Fastver.verifier_failure t = None))

(* ------------------------------------------------------------------ *)
(* Background verification over the wire                               *)
(* ------------------------------------------------------------------ *)

(* With [background_verify] the Verify request no longer quiesces the
   executor pool: session A's verify_now blocks only its own connection
   while session B (on another connection) keeps being served. Across a few
   cycles the foreground must demonstrably progress during in-flight scans,
   every certificate must check out, and the pause histogram must have
   recorded one seal barrier per scan. *)
let test_background_verify_serves_foreground () =
  let config =
    {
      test_config with
      n_workers = 4;
      batch_size = 0;
      background_verify = true;
    }
  in
  with_server ~config (fun t addr ->
      let conn_a = connect addr and conn_b = connect addr in
      let s_a = Net.Client.open_session conn_a ~client:1 ~secret in
      let s_b = Net.Client.open_session conn_b ~client:2 ~secret in
      let cycles = 8 in
      let in_verify = Atomic.make false in
      let overlap = Atomic.make 0 in
      let fail_b = Atomic.make None in
      let stop_b = Atomic.make false in
      let b_driver =
        Domain.spawn (fun () ->
            try
              let i = ref 0 in
              while not (Atomic.get stop_b) do
                incr i;
                Net.Client.put s_b
                  (Int64.of_int (128 + (!i mod 64)))
                  (Printf.sprintf "b%d" !i);
                if Atomic.get in_verify then Atomic.incr overlap
              done
            with e -> Atomic.set fail_b (Some e))
      in
      let epochs = ref [] in
      for i = 0 to cycles - 1 do
        for j = 0 to 63 do
          Net.Client.put s_a (Int64.of_int j) (Printf.sprintf "a%d-%d" i j)
        done;
        Atomic.set in_verify true;
        let epoch, _cert = Net.Client.verify_now s_a in
        Atomic.set in_verify false;
        epochs := epoch :: !epochs
      done;
      Atomic.set stop_b true;
      Domain.join b_driver;
      (match Atomic.get fail_b with
      | Some e ->
          Alcotest.failf "foreground client failed: %s" (Printexc.to_string e)
      | None -> ());
      (* consecutive scans sealed consecutive epochs *)
      (match List.rev !epochs with
      | e0 :: rest ->
          ignore
            (List.fold_left
               (fun prev e ->
                 Alcotest.(check int) "consecutive sealed epochs" (prev + 1) e;
                 e)
               e0 rest)
      | [] -> Alcotest.fail "no scans ran");
      Alcotest.(check bool) "foreground served during in-flight scans" true
        (Atomic.get overlap > 0);
      (* the pause histogram saw one seal barrier per scan *)
      let dump = Fastver_obs.Registry.dump (Fastver.registry t) in
      (match
         List.find_opt
           (fun (n, _, _) -> n = "fastver_verify_pause_seconds")
           dump
       with
      | Some (_, _, Fastver_obs.Registry.Histogram_v (snap, _)) ->
          Alcotest.(check bool) "pause recorded per scan" true
            (snap.Fastver_obs.Histogram.count >= cycles)
      | _ -> Alcotest.fail "fastver_verify_pause_seconds missing");
      Net.Client.close_session s_a;
      Net.Client.close_session s_b;
      Net.Client.close conn_a;
      Net.Client.close conn_b;
      Fastver.wait_verify t;
      ignore (Fastver.verify t))

(* ------------------------------------------------------------------ *)
(* Executor-pool robustness: stalls and shutdown races                 *)
(* ------------------------------------------------------------------ *)

(* A stalled executor must not busy-spin the I/O domain. Hold worker 0's
   lock so its executor blocks mid-job, keep a request for it outstanding,
   and serve light traffic on the other worker: everything else stays
   live, and process CPU over the stall window stays far below the window
   itself (a spinning select loop would burn a full core). *)
let test_stalled_executor_no_spin () =
  let config = { test_config with n_workers = 2; batch_size = 0 } in
  with_server ~config (fun t addr ->
      let key_of owner =
        let rec go k =
          if Fastver.owner_of_key t k = owner then k else go (Int64.add k 1L)
        in
        go 0L
      in
      let k0 = key_of 0 and k1 = key_of 1 in
      let conn_a = connect addr and conn_b = connect addr in
      let s_a = Net.Client.open_session conn_a ~client:1 ~secret in
      let s_b = Net.Client.open_session conn_b ~client:2 ~secret in
      Net.Client.put s_b k1 "warm";
      (* deferred-tier both keys: the op parked on the held worker lock
         must be a fast-path one, holding no lock other workers need *)
      Net.Client.put s_a k0 "warm";
      let lock = Mutex.create () and cond = Condition.create () in
      let release = ref false in
      let stalled = Atomic.make false in
      let blocker =
        Domain.spawn (fun () ->
            Fastver.Testing.with_worker_lock t 0 (fun () ->
                Atomic.set stalled true;
                Mutex.lock lock;
                while not !release do
                  Condition.wait cond lock
                done;
                Mutex.unlock lock))
      in
      while not (Atomic.get stalled) do
        Domain.cpu_relax ()
      done;
      (* this put parks worker 0's executor on the held lock *)
      ignore (Net.Client.send_put s_a k0 "stalled");
      Unix.sleepf 0.05;
      let cpu_of (tm : Unix.process_times) = tm.tms_utime +. tm.tms_stime in
      let cpu0 = cpu_of (Unix.times ()) in
      let wall0 = Unix.gettimeofday () in
      let served = ref 0 in
      while Unix.gettimeofday () -. wall0 < 0.4 do
        Alcotest.(check (option string)) "healthy worker still serves"
          (Some "warm") (Net.Client.get s_b k1);
        incr served;
        Unix.sleepf 0.01
      done;
      let cpu = cpu_of (Unix.times ()) -. cpu0 in
      Alcotest.(check bool) "other partition stayed live" true (!served > 10);
      Alcotest.(check bool)
        (Printf.sprintf "I/O domain slept during the stall (%.3fs cpu)" cpu)
        true (cpu < 0.25);
      (* release: the parked job completes and its reply arrives *)
      Mutex.lock lock;
      release := true;
      Condition.broadcast cond;
      Mutex.unlock lock;
      Domain.join blocker;
      (match Net.Client.await s_a with
      | _, Net.Client.Stored -> ()
      | _ -> Alcotest.fail "stalled put did not complete");
      Alcotest.(check (option string)) "stalled put applied" (Some "stalled")
        (Net.Client.get s_a k0);
      Net.Client.close_session s_a;
      Net.Client.close_session s_b;
      Net.Client.close conn_a;
      Net.Client.close conn_b)

(* Shutdown racing live dispatch: stop the server while a client hammers
   it. The closed executor queues must fail in-flight jobs gracefully
   ([Bounded_queue.push] answering false — never an exception), [stop] must
   return (no hung barrier, no unjoined domain), and the client sees
   either normal replies or a clean error/EOF. *)
let test_stop_under_load () =
  let config = { test_config with n_workers = 2; batch_size = 0 } in
  let t = mk_system ~config () in
  let path = fresh_sock () in
  match Net.Server.create t ~listen:(Net.Addr.Unix_sock path) with
  | Error e -> Alcotest.fail e
  | Ok srv ->
      Net.Server.start srv;
      let stop_client = Atomic.make false in
      let client =
        Domain.spawn (fun () ->
            try
              let conn = connect (Net.Addr.Unix_sock path) in
              let s = Net.Client.open_session conn ~client:1 ~secret in
              (try
                 let i = ref 0 in
                 while not (Atomic.get stop_client) do
                   incr i;
                   if !i mod 2 = 0 then
                     ignore (Net.Client.get s (Int64.of_int (!i mod 256)))
                   else
                     Net.Client.put s
                       (Int64.of_int (!i mod 256))
                       (Printf.sprintf "s%d" !i)
                 done
               with
              | Net.Client.Server_error _ | End_of_file
              | Unix.Unix_error _ | Failure _ ->
                  (* shutdown may sever mid-request; that is the point *)
                  ());
              try Net.Client.close conn with _ -> ()
            with _ -> ())
      in
      Unix.sleepf 0.15;
      Net.Server.stop srv;
      Atomic.set stop_client true;
      Domain.join client

(* ------------------------------------------------------------------ *)
(* Metrics reconcile with ground truth                                 *)
(* ------------------------------------------------------------------ *)

module Reg = Fastver_obs.Registry

let test_metrics_reconcile () =
  with_server (fun t addr ->
      let conn = connect addr in
      let s = Net.Client.open_session conn ~client:1 ~secret in
      let n_puts = 60 and n_gets = 120 and scan_len = 5 in
      for i = 0 to n_puts - 1 do
        Net.Client.put s (Int64.of_int (i mod 256)) (Printf.sprintf "m%d" i)
      done;
      for i = 0 to n_gets - 1 do
        ignore (Net.Client.get s (Int64.of_int (i mod 256)))
      done;
      ignore (Net.Client.scan s 10L scan_len);
      (* drain returned every response, so the server has fully accounted
         for everything submitted — the registry is quiescent now *)
      let dump = Reg.dump (Fastver.registry t) in
      let counter ?(labels = []) name =
        match
          List.find_opt (fun (n, l, _) -> n = name && l = labels) dump
        with
        | Some (_, _, Reg.Counter_v v) -> v
        | _ -> Alcotest.failf "counter %s missing from registry" name
      in
      let hist name =
        match
          List.find_opt (fun (n, l, _) -> n = name && l = []) dump
        with
        | Some (_, _, Reg.Histogram_v (snap, _)) -> snap
        | _ -> Alcotest.failf "histogram %s missing from registry" name
      in
      let tier l = counter ~labels:[ ("tier", l) ] "fastver_ops_total" in
      let by_tier = tier "blum" + tier "merkle" + tier "cached" in
      let gets = counter "fastver_gets_total"
      and puts = counter "fastver_puts_total" in
      (* every submitted elementary op is attributed to exactly one tier *)
      Alcotest.(check int) "tier attribution sums to validated ops"
        (gets + puts) by_tier;
      Alcotest.(check int) "elementary ops as submitted"
        (n_puts + n_gets + scan_len) by_tier;
      Alcotest.(check int) "scan expansion lands in gets" (n_gets + scan_len)
        gets;
      Alcotest.(check int) "puts as submitted" n_puts puts;
      Alcotest.(check int) "one scan" 1 (counter "fastver_scans_total");
      (* every emitted response left exactly one latency sample *)
      let served = counter "fastver_net_requests_total" in
      let lat = hist "fastver_request_seconds" in
      Alcotest.(check int) "latency histogram count = served requests" served
        lat.Fastver_obs.Histogram.count;
      Alcotest.(check bool) "requests were served" true (served > 0);
      (* the same snapshot is reachable over the wire, in both formats *)
      let json = Net.Client.metrics conn ~format:Net.Wire.Json in
      let contains hay needle =
        let n = String.length needle and l = String.length hay in
        let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "wire JSON carries the served counter" true
        (contains json
           (Printf.sprintf
              "{\"name\":\"fastver_net_requests_total\",\"labels\":{},\"value\":%d}"
              served));
      let prom = Net.Client.metrics conn ~format:Net.Wire.Prometheus in
      Alcotest.(check bool) "wire Prometheus carries the latency summary" true
        (contains prom "fastver_request_seconds_count ");
      Net.Client.close_session s;
      Net.Client.close conn)

(* ------------------------------------------------------------------ *)
(* Tampering on the wire                                               *)
(* ------------------------------------------------------------------ *)

(* A frame-aware person-in-the-middle: forwards both directions verbatim,
   except that [tamper] may rewrite one response payload (it is applied
   until it first returns [Some]). *)
let start_proxy ~listen_path ~server_addr ~tamper =
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX listen_path);
  Unix.listen lfd 1;
  Domain.spawn (fun () ->
      let cfd, _ = Unix.accept lfd in
      let sfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Net.Addr.to_sockaddr server_addr with
      | Ok a -> Unix.connect sfd a
      | Error e -> failwith e);
      let reader = Net.Frame.create () in
      let buf = Bytes.create 4096 in
      let tampered = ref false in
      let prefix len =
        let b = Bytes.create 4 in
        Bytes.set_int32_le b 0 (Int32.of_int len);
        Bytes.to_string b
      in
      let forward_response payload =
        let payload =
          if !tampered then payload
          else
            match tamper payload with
            | Some p ->
                tampered := true;
                p
            | None -> payload
        in
        Net.Sockio.send_all cfd (prefix (String.length payload) ^ payload)
      in
      (try
         let running = ref true in
         while !running do
           let rs, _, _ = Unix.select [ cfd; sfd ] [] [] 10.0 in
           if rs = [] then running := false;
           List.iter
             (fun fd ->
               let n = Unix.read fd buf 0 (Bytes.length buf) in
               if n = 0 then running := false
               else if fd == cfd then
                 Net.Sockio.send_all sfd (Bytes.sub_string buf 0 n)
               else begin
                 Net.Frame.feed reader buf 0 n;
                 let rec drain () =
                   match Net.Frame.next reader with
                   | Ok (Some payload) ->
                       forward_response payload;
                       drain ()
                   | Ok None -> ()
                   | Error _ -> running := false
                 in
                 drain ()
               end)
             rs
         done
       with Unix.Unix_error _ | Failure _ -> ());
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ cfd; sfd; lfd ])

(* Flip one byte of the first Got response (tag 0x83) at [index] — counted
   from the end when negative, so [-1] is the receipt MAC's last byte. *)
let flip_got_byte index payload =
  if String.length payload <= Net.Wire.header_len
     || Char.code payload.[3] <> 0x83
  then None
  else begin
    let b = Bytes.of_string payload in
    let i = if index < 0 then Bytes.length b + index else index in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Some (Bytes.to_string b)
  end

let test_tampered_response_detected () =
  with_server (fun _t addr ->
      let proxy_path = fresh_sock () in
      let proxy =
        start_proxy ~listen_path:proxy_path ~server_addr:addr
          ~tamper:(flip_got_byte (-1))
      in
      let conn = connect (Net.Addr.Unix_sock proxy_path) in
      let s = Net.Client.open_session conn ~client:1 ~secret in
      (* puts pass through untouched... *)
      Net.Client.put s 3L "real";
      (* ...then the proxy corrupts the first Got response *)
      (try
         let v = Net.Client.get s 3L in
         Alcotest.fail
           (Printf.sprintf "tampered response accepted: %s"
              (Option.value v ~default:"<none>"))
       with Fastver.Integrity_violation _ -> ());
      Net.Client.close conn;
      Domain.join proxy;
      try Sys.remove proxy_path with Sys_error _ -> ())

(* Without signatures (auth off server-side, checking off client-side) the
   same kind of flip sails through: it is the MAC that detects tampering,
   not the framing. Flipping the first value byte turns "real" into "seal"
   and nobody notices. *)
let test_tamper_needs_verification () =
  let config = { test_config with authenticate_clients = false } in
  with_server ~config (fun _t addr ->
      let proxy_path = fresh_sock () in
      (* value bytes of a Got payload start after header, nonce, key,
         epoch, present byte and u32 length *)
      let value_off = Net.Wire.header_len + 8 + 8 + 4 + 1 + 4 in
      let proxy =
        start_proxy ~listen_path:proxy_path ~server_addr:addr
          ~tamper:(flip_got_byte value_off)
      in
      let conn = connect (Net.Addr.Unix_sock proxy_path) in
      let s = Net.Client.open_session ~verify:false conn ~client:1 ~secret in
      Net.Client.put s 3L "real";
      Alcotest.(check (option string)) "flip invisible without signatures"
        (Some "seal") (Net.Client.get s 3L);
      Net.Client.close conn;
      Domain.join proxy;
      try Sys.remove proxy_path with Sys_error _ -> ())

let suite =
  ( "net",
    [
      Alcotest.test_case "batch submit" `Quick test_batch_submit;
      Alcotest.test_case "batch isolates forgeries" `Quick
        test_batch_isolates_forgeries;
      Alcotest.test_case "session matches direct run" `Quick
        test_session_matches_direct;
      Alcotest.test_case "two sessions" `Quick test_two_sessions;
      Alcotest.test_case "multi-domain stress" `Slow test_multi_domain_stress;
      Alcotest.test_case "background verify serves foreground" `Slow
        test_background_verify_serves_foreground;
      Alcotest.test_case "stalled executor does not spin" `Slow
        test_stalled_executor_no_spin;
      Alcotest.test_case "stop under load" `Quick test_stop_under_load;
      Alcotest.test_case "metrics reconcile with ground truth" `Quick
        test_metrics_reconcile;
      Alcotest.test_case "tampered response detected" `Quick
        test_tampered_response_detected;
      Alcotest.test_case "tamper needs verification" `Quick
        test_tamper_needs_verification;
    ] )
