let () =
  Alcotest.run "fastver"
    [
      Test_crypto.suite;
      Test_obs.suite;
      Test_key.suite;
      Test_tree.suite;
      Test_verifier.suite;
      Test_oplog.suite;
      Test_adversary.suite;
      Test_kvstore.suite;
      Test_cold.suite;
      Test_core.suite;
      Test_queue.suite;
      Test_baselines.suite;
      Test_workload.suite;
      Test_extensions.suite;
      Test_crashsafe.suite;
      Test_shard.suite;
      Test_adaptive.suite;
      Test_parallel.suite;
      Test_simthreads.suite;
      Test_wire.suite;
      Test_net.suite;
      Test_replica.suite;
    ]
