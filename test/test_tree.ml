(* Record values and the host-side Patricia tree. *)

let value = Alcotest.testable Value.pp Value.equal

let mk_data n =
  Array.init n (fun i ->
      (Key.of_int64 (Int64.of_int i), Value.Data (Some (Printf.sprintf "v%d" i))))

let build n =
  let t = Tree.create ~root_aux:() in
  Tree.bulk_build t ~aux:(fun _ _ -> ()) (mk_data n);
  t

let test_value_encode_decode () =
  let cases =
    [
      Value.Data None;
      Value.Data (Some "");
      Value.Data (Some "hello");
      Value.empty_node;
      Value.Node
        {
          left =
            Some
              {
                key = Key.of_bit_string "010";
                hash = String.make 32 'h';
                in_blum = true;
              };
          right = None;
        };
      Value.Node
        {
          left =
            Some
              {
                key = Key.of_int64 7L;
                hash = String.make 32 'x';
                in_blum = false;
              };
          right =
            Some
              {
                key = Key.of_bit_string "1";
                hash = String.make 32 'y';
                in_blum = false;
              };
        };
    ]
  in
  List.iter
    (fun v ->
      match Value.decode (Value.encode v) with
      | Ok v' -> Alcotest.check value "roundtrip" v v'
      | Error e -> Alcotest.failf "decode failed: %s" e)
    cases

let test_value_decode_rejects () =
  let bad = [ ""; "\x03"; "\x02\x01short"; "\x00extra" ] in
  List.iter
    (fun s ->
      match Value.decode s with
      | Ok _ -> Alcotest.failf "decoded garbage %S" s
      | Error _ -> ())
    bad

let test_init_compat () =
  let dk = Key.of_int64 1L and mk = Key.of_bit_string "01" in
  Alcotest.check value "data init" (Value.Data None) (Value.init dk);
  Alcotest.check value "merkle init" Value.empty_node (Value.init mk);
  Alcotest.(check bool) "compat data" true (Value.compatible dk (Value.Data None));
  Alcotest.(check bool) "incompat" false (Value.compatible dk Value.empty_node);
  Alcotest.(check bool) "is_init" true (Value.is_init mk Value.empty_node)

let test_bulk_build_structure () =
  let t = build 1000 in
  (match Tree.check_structure t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "structure: %s" e);
  (* N data leaves need N-1 internal binary nodes, plus possibly the root
     record when the top split is below depth 0. *)
  Alcotest.(check bool) "node count in [N-1, N]" true
    (Tree.length t >= 999 && Tree.length t <= 1001)

let test_descend () =
  let t = build 100 in
  (* existing key *)
  let d = Tree.descend t (Key.of_int64 5L) in
  Alcotest.(check bool) "exists" true (d.outcome = Tree.Exists);
  (match d.path with
  | root :: _ -> Alcotest.(check bool) "path starts at root" true (Key.equal root Key.root)
  | [] -> Alcotest.fail "empty path");
  (* missing key far outside: attach somewhere *)
  let d = Tree.descend t (Key.of_int64 1_000_000L) in
  Alcotest.(check bool) "missing not exists" true (d.outcome <> Tree.Exists)

let test_descend_path_is_chain () =
  let t = build 512 in
  let d = Tree.descend t (Key.of_int64 300L) in
  let rec check_chain = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "path strictly descends" true
          (Key.is_proper_ancestor a b);
        check_chain rest
    | [ _ ] | [] -> ()
  in
  check_chain d.path

let test_frontier () =
  let t = build 1024 in
  let f0 = Tree.frontier t ~levels:0 in
  Alcotest.(check int) "level 0 = root" 1 (List.length f0);
  let f3 = Tree.frontier t ~levels:3 in
  Alcotest.(check bool) "level 3 has <= 8 nodes" true (List.length f3 <= 8);
  Alcotest.(check bool) "level 3 nonempty" true (f3 <> []);
  (* every root-to-leaf descent crosses the frontier at most once *)
  List.iter
    (fun f ->
      List.iter
        (fun f' ->
          if not (Key.equal f f') then
            Alcotest.(check bool) "frontier antichain" false
              (Key.is_proper_ancestor f f'))
        f3)
    f3

let test_root_hash_changes () =
  let t1 = build 100 in
  let records = mk_data 100 in
  records.(50) <- (fst records.(50), Value.Data (Some "changed"));
  let t2 = Tree.create ~root_aux:() in
  Tree.bulk_build t2 ~aux:(fun _ _ -> ()) records;
  Alcotest.(check bool) "root hash reflects contents" true
    (Tree.root_hash t1 () <> Tree.root_hash t2 ())

let test_bulk_build_rejects_duplicates () =
  let t = Tree.create ~root_aux:() in
  let records =
    [| (Key.of_int64 1L, Value.Data (Some "a")); (Key.of_int64 1L, Value.Data (Some "b")) |]
  in
  Alcotest.check_raises "duplicate keys"
    (Invalid_argument "Tree.bulk_build: duplicate key") (fun () ->
      Tree.bulk_build t ~aux:(fun _ _ -> ()) records)

let test_empty_build () =
  let t = Tree.create ~root_aux:() in
  Tree.bulk_build t ~aux:(fun _ _ -> ()) [||];
  Alcotest.(check int) "only root" 1 (Tree.length t);
  Alcotest.check value "root empty" Value.empty_node
    (Tree.get_exn t Key.root).Tree.value

(* property: bulk_build over random key sets yields a well-formed tree in
   which every inserted key is found by descend. *)
let prop_bulk_build =
  QCheck.Test.make ~name:"bulk_build well-formed + complete" ~count:50
    QCheck.(list_of_size Gen.(1 -- 200) (map Int64.of_int (int_bound 100000)))
    (fun keys ->
      let uniq = List.sort_uniq Int64.compare keys in
      let records =
        Array.of_list
          (List.map (fun k -> (Key.of_int64 k, Value.Data (Some "v"))) uniq)
      in
      let t = Tree.create ~root_aux:() in
      Tree.bulk_build t ~aux:(fun _ _ -> ()) records;
      Tree.check_structure t = Ok ()
      && List.for_all
           (fun k -> (Tree.descend t (Key.of_int64 k)).outcome = Tree.Exists)
           uniq)

let prop_value_roundtrip =
  let arb_value =
    QCheck.make
      ~print:(Fmt.to_to_string Value.pp)
      QCheck.Gen.(
        oneof
          [
            return (Value.Data None);
            map (fun s -> Value.Data (Some s)) (string_size (0 -- 40));
            (let ptr =
               map2
                 (fun k blum ->
                   Some
                     {
                       Value.key = Key.of_int64 (Int64.of_int k);
                       hash = String.make 32 'h';
                       in_blum = blum;
                     })
                 (int_bound 1000) bool
             in
             let ptr_opt = oneof [ return None; ptr ] in
             map2 (fun l r -> Value.Node { left = l; right = r }) ptr_opt ptr_opt);
          ])
  in
  QCheck.Test.make ~name:"value encode/decode roundtrip" ~count:300 arb_value
    (fun v -> Value.decode (Value.encode v) = Ok v)

let suite =
  ( "tree",
    [
      Alcotest.test_case "value encode/decode" `Quick test_value_encode_decode;
      Alcotest.test_case "value decode rejects" `Quick test_value_decode_rejects;
      Alcotest.test_case "init and compatibility" `Quick test_init_compat;
      Alcotest.test_case "bulk_build structure" `Quick test_bulk_build_structure;
      Alcotest.test_case "descend" `Quick test_descend;
      Alcotest.test_case "descend path chain" `Quick test_descend_path_is_chain;
      Alcotest.test_case "frontier" `Quick test_frontier;
      Alcotest.test_case "root hash" `Quick test_root_hash_changes;
      Alcotest.test_case "duplicate rejection" `Quick test_bulk_build_rejects_duplicates;
      Alcotest.test_case "empty build" `Quick test_empty_build;
      QCheck_alcotest.to_alcotest prop_bulk_build;
      QCheck_alcotest.to_alcotest prop_value_roundtrip;
    ] )
