(* §1's second scenario: "a database of bank accounts that are updated and
   accessed with millions of updates per second. There is a substantial
   economic incentive to tamper with such a database, yet there are also
   high performance and operational requirements."

   We run a stream of transfers over an account database under a one-second
   verification-latency budget, report throughput and verification latency,
   and show that balances reconcile exactly against an independent ledger.

   Run with: dune exec examples/bank_audit.exe *)

let n_accounts = 20_000
let n_transfers = 40_000

let balance_of_bytes b = Int64.to_int (String.get_int64_le b 0)

let bytes_of_balance v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Bytes.unsafe_to_string b

let () =
  let config =
    {
      Fastver.Config.default with
      n_workers = 4;
      frontier_levels = 5;
      batch_size = 8_000; (* tuned so each scan stays well under a second *)
    }
  in
  let bank = Fastver.create ~config () in
  Fastver.load bank
    (Array.init n_accounts (fun i ->
         (Int64.of_int i, bytes_of_balance 1_000)));
  Printf.printf "opened %d accounts with balance 1000 each\n%!" n_accounts;

  (* independent ledger for the audit *)
  let ledger = Array.make n_accounts 1_000 in
  let rng = Random.State.make [| 20_260_705 |] in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n_transfers do
    let src = Random.State.int rng n_accounts in
    let dst = (src + 1 + Random.State.int rng (n_accounts - 1)) mod n_accounts in
    let amount = 1 + Random.State.int rng 50 in
    let read k =
      match Fastver.get bank (Int64.of_int k) with
      | Some b -> balance_of_bytes b
      | None -> failwith "missing account"
    in
    (* not transactional (neither is the paper's system) — but every read
       and write is individually integrity-verified *)
    let sb = read src and db = read dst in
    Fastver.put bank (Int64.of_int src) (bytes_of_balance (sb - amount));
    Fastver.put bank (Int64.of_int dst) (bytes_of_balance (db + amount));
    ledger.(src) <- ledger.(src) - amount;
    ledger.(dst) <- ledger.(dst) + amount
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let cert_epoch = Fastver.current_epoch bank in
  let certificate = Fastver.verify bank in
  assert (Fastver.check_epoch_certificate bank ~epoch:cert_epoch certificate);

  let s = Fastver.stats bank in
  Printf.printf
    "processed %d ops in %.2fs (%.0f verified ops/s), %d verification scans,\n\
     last scan latency %.3fs, %d deferred-tier fast-path ops, %d merkle-path ops\n%!"
    s.ops wall
    (float_of_int s.ops /. wall)
    s.verifies s.last_verify_latency_s s.blum_fast_path s.merkle_path;

  (* the audit: every verified balance matches the independent ledger,
     and money was conserved *)
  let total = ref 0 in
  Array.iteri
    (fun i expected ->
      match Fastver.get bank (Int64.of_int i) with
      | Some b when balance_of_bytes b = expected ->
          total := !total + expected
      | Some b ->
          Printf.ksprintf failwith "account %d: bank says %d, ledger says %d" i
            (balance_of_bytes b) expected
      | None -> failwith "account vanished")
    ledger;
  assert (!total = n_accounts * 1_000);
  ignore (Fastver.verify bank);
  Printf.printf "audit passed: %d accounts reconcile, %d total conserved\n"
    n_accounts !total
