(* A walkthrough of Figure 5 from the paper: Blum-style offline memory
   checking on a toy database with one key, driven against the real verifier.

   The host performs put(k,4) and get(k); the verifier folds each operation's
   pre-image into a read-set (add-set) hash and its post-image into a
   write-set (evict-set) hash. The verification scan re-adds the final
   record, and the two multisets must then be equal. We also replay the
   figure's attack — the host answering get(k) with (k,5) — and watch the
   scan fail.

   Run with: dune exec examples/offline_checking.exe *)

open Fastver_verifier

let k = Key.of_int64 1L

let show v step =
  let stats = Verifier.stats v in
  Printf.printf "  after %-28s adds=%d evicts=%d clock=%s\n" step
    (stats.n_add_b) (stats.n_evict_b)
    (Format.asprintf "%a" Timestamp.pp (Verifier.clock v ~tid:0))

let ok = function Ok x -> x | Error e -> failwith e

let honest_run () =
  print_endline "-- honest host (Figure 5, left to right) --";
  let v = Verifier.create Verifier.default_config in
  (* initial state: Write-Set = {(k, null)} — Blum's initialising write *)
  ok
    (Verifier.install_blum v ~tid:0 ~key:k ~value:(Value.Data None)
       ~timestamp:Timestamp.zero);
  show v "init (write-set={(k,nil)})";

  (* put(k, 4): pre-image (k,nil) joins the read-set, post-image (k,4) the
     write-set *)
  ok (Verifier.add_b v ~tid:0 ~key:k ~value:(Value.Data None) ~timestamp:Timestamp.zero);
  ok (Verifier.vput v ~tid:0 ~key:k (Some "4"));
  let t1 = Verifier.clock v ~tid:0 in
  ok (Verifier.evict_b v ~tid:0 ~key:k ~timestamp:t1);
  show v "put(k,4)";

  (* get(k): the host presents (k,4); both sets receive it *)
  ok (Verifier.add_b v ~tid:0 ~key:k ~value:(Value.Data (Some "4")) ~timestamp:t1);
  ok (Verifier.vget v ~tid:0 ~key:k (Some "4"));
  let t2 = Verifier.clock v ~tid:0 in
  ok (Verifier.evict_b v ~tid:0 ~key:k ~timestamp:t2);
  show v "get(k) -> 4";

  (* verification scan: the one outstanding write-set entry is read back *)
  ok (Verifier.add_b v ~tid:0 ~key:k ~value:(Value.Data (Some "4")) ~timestamp:t2);
  let t3 = Timestamp.max (Verifier.clock v ~tid:0) (Timestamp.first_of_epoch 1) in
  ok (Verifier.evict_b v ~tid:0 ~key:k ~timestamp:t3);
  ok (Verifier.close_epoch v ~tid:0 ~epoch:0);
  (match Verifier.verify_epoch v ~epoch:0 with
  | Ok _ -> print_endline "  verification scan: sets EQUAL -> epoch certified"
  | Error e -> Printf.printf "  unexpected failure: %s\n" e)

let malicious_run () =
  print_endline "-- malicious host: answers get(k) with (k,5) --";
  let v = Verifier.create Verifier.default_config in
  ok
    (Verifier.install_blum v ~tid:0 ~key:k ~value:(Value.Data None)
       ~timestamp:Timestamp.zero);
  ok (Verifier.add_b v ~tid:0 ~key:k ~value:(Value.Data None) ~timestamp:Timestamp.zero);
  ok (Verifier.vput v ~tid:0 ~key:k (Some "4"));
  let t1 = Verifier.clock v ~tid:0 in
  ok (Verifier.evict_b v ~tid:0 ~key:k ~timestamp:t1);
  show v "put(k,4)";

  (* the forged pre-image: (k,5) — provisionally accepted! *)
  ok (Verifier.add_b v ~tid:0 ~key:k ~value:(Value.Data (Some "5")) ~timestamp:t1);
  ok (Verifier.vget v ~tid:0 ~key:k (Some "5"));
  let t2 = Verifier.clock v ~tid:0 in
  ok (Verifier.evict_b v ~tid:0 ~key:k ~timestamp:t2);
  show v "get(k) -> 5 (forged)";
  print_endline "  note: the read was only PROVISIONALLY validated";

  ok (Verifier.add_b v ~tid:0 ~key:k ~value:(Value.Data (Some "5")) ~timestamp:t2);
  let t3 = Timestamp.max (Verifier.clock v ~tid:0) (Timestamp.first_of_epoch 1) in
  ok (Verifier.evict_b v ~tid:0 ~key:k ~timestamp:t3);
  ok (Verifier.close_epoch v ~tid:0 ~epoch:0);
  match Verifier.verify_epoch v ~epoch:0 with
  | Ok _ -> print_endline "  BUG: forged read slipped through"
  | Error e -> Printf.printf "  verification scan FAILS as it must: %s\n" e

let () =
  honest_run ();
  print_newline ();
  malicious_run ()
