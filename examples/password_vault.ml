(* The paper's §1 motivating scenario: a cloud service authenticates users
   against a table of password hashes. A rogue administrator who can edit
   that table can log in as anyone — unless the table lives in a verified
   database.

   This example stores (username -> salted password hash) in FastVer through
   authenticated client sessions, then plays the rogue administrator and
   shows the attack being caught.

   Run with: dune exec examples/password_vault.exe *)

open Fastver_crypto

(* Usernames are hashed onto the 8-byte key space (the paper hashes
   application keys onto its 32-byte key domain the same way, §2.1). *)
let key_of_username name =
  Bytes_util.get_u64_le (Sha256.digest ("user:" ^ name)) 0

let hash_password ~salt password =
  Bytes_util.to_hex (Sha256.digest (salt ^ ":" ^ password))

type vault = { store : Fastver.t; session : Fastver.Session.session }

let register vault ~username ~password =
  let salt = username ^ "-salt" in
  let receipt =
    Fastver.Session.put vault.session (key_of_username username)
      (salt ^ "$" ^ hash_password ~salt password)
  in
  (* For account creation we wait until the update is *final*, not just
     provisionally validated. *)
  Fastver.Session.await_certainty vault.session receipt

let check_login vault ~username ~password =
  let r = Fastver.Session.get vault.session (key_of_username username) in
  match r.Fastver.Session.value with
  | None -> false
  | Some stored -> (
      match String.split_on_char '$' stored with
      | [ salt; hash ] -> String.equal (hash_password ~salt password) hash
      | _ -> false)

let () =
  let config =
    { Fastver.Config.default with batch_size = 0 (* explicit verify *) }
  in
  let store = Fastver.create ~config () in
  Fastver.load store [||];
  let vault = { store; session = Fastver.Session.connect store ~client_id:1 } in

  register vault ~username:"alice" ~password:"correct horse battery";
  register vault ~username:"bob" ~password:"hunter2";
  print_endline "registered alice and bob (updates verified)";

  assert (check_login vault ~username:"alice" ~password:"correct horse battery");
  assert (not (check_login vault ~username:"alice" ~password:"wrong"));
  assert (not (check_login vault ~username:"mallory" ~password:"anything"));
  print_endline "logins behave as expected";

  (* The rogue administrator edits the table directly on the host,
     installing a password hash they know for alice. *)
  let salt = "evil-salt" in
  Fastver.Testing.corrupt_store store
    (key_of_username "alice")
    (Some (salt ^ "$" ^ hash_password ~salt "attacker-password"));
  print_endline "rogue admin overwrote alice's password hash on the host...";

  (try
     let ok = check_login vault ~username:"alice" ~password:"attacker-password" in
     (* If the forged record was provisionally accepted, the next epoch
        verification must fail before the login is final. *)
     ignore (Fastver.verify store);
     if ok then print_endline "BUG: attacker login validated"
   with Fastver.Integrity_violation reason ->
     Printf.printf "attack detected by the verifier: %s\n" reason);
  print_endline "the tampered table can never produce a *verified* login"
