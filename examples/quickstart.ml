(* Quickstart: a verified key-value store in a dozen lines.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Configure. The two §8.1 latency/throughput knobs are [batch_size]
     (operations between verification scans) and [frontier_levels] (how much
     of the Merkle tree stays under deferred protection). *)
  let config =
    { Fastver.Config.default with n_workers = 2; batch_size = 10_000 }
  in
  let store = Fastver.create ~config () in

  (* 2. Trusted initial load: the data owner computes the Merkle root before
     handing the database to the untrusted host. *)
  Fastver.load store
    (Array.init 10_000 (fun i -> (Int64.of_int i, Printf.sprintf "value-%d" i)));

  (* 3. Ordinary key-value traffic. Every operation is validated by the
     in-enclave verifier — provisionally, until its epoch verifies. *)
  assert (Fastver.get store 42L = Some "value-42");
  Fastver.put store 42L "updated";
  assert (Fastver.get store 42L = Some "updated");
  assert (Fastver.get store 999_999L = None);
  (* non-existence is proven too *)

  (* 4. verify() runs the verification scan and returns an epoch
     certificate: everything validated so far is now *final*. *)
  let epoch = Fastver.current_epoch store in
  let certificate = Fastver.verify store in
  assert (Fastver.check_epoch_certificate store ~epoch certificate);
  Printf.printf "epoch %d verified; certificate %s…\n" epoch
    (Fastver_crypto.Bytes_util.to_hex (String.sub certificate 0 8));

  (* 5. Any tampering with the untrusted host state is detected. *)
  Fastver.Testing.corrupt_store store 42L (Some "EVIL");
  (try
     ignore (Fastver.get store 42L);
     ignore (Fastver.verify store);
     print_endline "BUG: tampering went unnoticed"
   with Fastver.Integrity_violation reason ->
     Printf.printf "tampering detected: %s\n" reason)
