(* Benchmark harness: regenerates every figure of the paper's evaluation
   (§8, Figures 8-14). Absolute numbers differ from the paper (pure-OCaml
   crypto on one core vs AES-NI on a 36-core Xeon); the harness reports the
   same rows/series so the *shapes* can be compared. EXPERIMENTS.md records
   paper-vs-measured for each figure.

   Scale: paper database sizes are mapped at 1/64 by default
   (2M -> 31,250 and so on); pass --full for the 128M-equivalent tier and
   --quick for a fast sanity pass at 1/512. *)

let pf fmt = Printf.printf fmt

let line () =
  print_endline (String.make 78 '-')

let header title =
  print_newline ();
  line ();
  pf "%s\n" title;
  line ()

(* ------------------------------------------------------------------ *)
(* Machine-readable results                                            *)
(* ------------------------------------------------------------------ *)

(* Every row printed for a figure is also recorded here and dumped as
   JSON to bench/results/latest.json, so regression tooling can diff
   runs without scraping the tables. *)
module Results = struct
  type v = S of string | I of int | F of float | J of string
  (* [J] is pre-rendered JSON spliced in verbatim — the metric registry's
     snapshot renderer already emits valid JSON. *)

  let rows : (string * (string * v) list) list ref = ref []
  let record fig kvs = rows := (fig, kvs) :: !rows

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let json_of_v = function
    | S s -> Printf.sprintf "\"%s\"" (escape s)
    | I i -> string_of_int i
    | F f -> if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
    | J s -> s

  let rec mkdir_p dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
    then begin
      mkdir_p (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let git_rev () =
    match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
    | exception _ -> "unknown"
    | ic -> (
        let rev = try String.trim (input_line ic) with End_of_file -> "" in
        ignore (Unix.close_process_in ic);
        if rev = "" then "unknown" else rev)

  (* Per-figure archives for regression tracking: each run leaves
     [<fig>-<utc-timestamp>.json] (kept forever) plus [<fig>-latest.json]
     (overwritten), both stamped with the git revision and scale so
     `fastver bench diff` can compare like against like. Pre-rendered [J]
     splices (metric snapshots) are dropped — archives hold only the
     numbers the diff reads. *)
  let write_figure_archives ~dir ~scale ~stamp =
    mkdir_p dir;
    let by_fig = Hashtbl.create 8 in
    List.iter
      (fun (fig, kvs) ->
        let kvs = List.filter (function _, J _ -> false | _ -> true) kvs in
        Hashtbl.replace by_fig fig
          (kvs :: Option.value ~default:[] (Hashtbl.find_opt by_fig fig)))
      !rows;
    let rev = git_rev () in
    let emit fig rows_for_fig path =
      let oc = open_out path in
      let out fmt = Printf.fprintf oc fmt in
      out "{\n  \"figure\": %s,\n" (json_of_v (S fig));
      out "  \"generated_utc\": \"%s\",\n" stamp;
      out "  \"git_rev\": \"%s\",\n" (escape rev);
      out "  \"scale\": \"%s\",\n" (escape scale);
      out "  \"rows\": [\n";
      let last = List.length rows_for_fig - 1 in
      List.iteri
        (fun i kvs ->
          out "    {%s}%s\n"
            (String.concat ", "
               (List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\": %s" (escape k) (json_of_v v))
                  kvs))
            (if i = last then "" else ","))
        rows_for_fig;
      out "  ]\n}\n";
      close_out oc
    in
    Hashtbl.iter
      (fun fig rows_for_fig ->
        (* [!rows] is newest-first, and the per-figure cons above reversed
           it back: rows land here in run order already. *)
        let base = Filename.concat dir (Printf.sprintf "%s-%s" fig stamp) in
        let rec fresh n =
          let p =
            if n = 0 then base ^ ".json"
            else Printf.sprintf "%s-%d.json" base n
          in
          if Sys.file_exists p then fresh (n + 1) else p
        in
        emit fig rows_for_fig (fresh 0);
        emit fig rows_for_fig
          (Filename.concat dir (Printf.sprintf "%s-latest.json" fig)))
      by_fig

  let write ~scale ~figs path =
    mkdir_p (Filename.dirname path);
    let oc = open_out path in
    let out fmt = Printf.fprintf oc fmt in
    let tm = Unix.gmtime (Unix.time ()) in
    out "{\n";
    out "  \"generated_utc\": \"%04d-%02d-%02dT%02d:%02d:%02dZ\",\n"
      (tm.tm_year + 1900) (tm.tm_mon + 1) tm.tm_mday tm.tm_hour tm.tm_min
      tm.tm_sec;
    out "  \"scale\": \"%s\",\n" (escape scale);
    out "  \"figures\": [%s],\n"
      (String.concat ", " (List.map (fun f -> json_of_v (S f)) figs));
    out "  \"rows\": [\n";
    let emit_row i (fig, kvs) =
      out "    {\"figure\": %s" (json_of_v (S fig));
      List.iter (fun (k, v) -> out ", \"%s\": %s" (escape k) (json_of_v v)) kvs;
      out "}%s\n" (if i = List.length !rows - 1 then "" else ",")
    in
    List.iteri emit_row (List.rev !rows);
    out "  ]\n}\n";
    close_out oc
end

(* ------------------------------------------------------------------ *)
(* Scaling                                                             *)
(* ------------------------------------------------------------------ *)

type scale = { div : int; label : string }

let paper_sizes = [ (2_000_000, "2M"); (8_000_000, "8M"); (32_000_000, "32M") ]
let paper_large = (128_000_000, "128M")

let scaled s (n, label) = (n / s.div, label)

let initial_value = Fastver_workload.Ycsb.initial_value

let records n =
  Array.init n (fun i -> (Int64.of_int i, initial_value (Int64.of_int i)))

(* ------------------------------------------------------------------ *)
(* Hybrid-system measurement window                                    *)
(* ------------------------------------------------------------------ *)

let mk_system ?(workers = 4) ?(d = 6) ?(cache = 512)
    ?(cost = Cost_model.simulated) n =
  let config =
    {
      Fastver.Config.default with
      n_workers = workers;
      frontier_levels = d;
      cache_capacity = cache;
      batch_size = 0;
      cost_model = cost;
      authenticate_clients = false;
    }
  in
  Gc.compact ();
  let t = Fastver.create ~config () in
  let t0 = Unix.gettimeofday () in
  Fastver.load t (records n);
  pf "  [loaded %d records in %.1fs]\n%!" n (Unix.gettimeofday () -. t0);
  t

type point = { throughput : float; latency : float }

(* Run [ops] operations in verification batches of [batch]; report effective
   throughput (wall + modelled enclave time) and mean scan latency. *)
let run_point t gen ~ops ~batch =
  Gc.full_major ();
  let s = Fastver.stats t in
  let w0 = Unix.gettimeofday () in
  let ops0 = s.ops
  and vt0 = s.verify_time_s
  and nv0 = s.verifies
  and ov0 = Fastver.enclave_overhead_ns t in
  let remaining = ref ops in
  while !remaining > 0 do
    let chunk = min batch !remaining in
    Fastver.run_ops t gen chunk;
    ignore (Fastver.verify t);
    remaining := !remaining - chunk
  done;
  let wall = Unix.gettimeofday () -. w0 in
  let dops = s.ops - ops0
  and dvt = s.verify_time_s -. vt0
  and dnv = s.verifies - nv0
  and dov = Int64.to_float (Int64.sub (Fastver.enclave_overhead_ns t) ov0) /. 1e9 in
  {
    throughput = float_of_int dops /. (wall +. dov);
    latency = dvt /. float_of_int (max 1 dnv);
  }

(* ------------------------------------------------------------------ *)
(* Figures 8-12: throughput vs verification latency, YCSB-A zipf 0.9   *)
(* ------------------------------------------------------------------ *)

let fig12 s ~full =
  header
    "Figures 8-12: FastVer throughput vs verification latency\n\
     (YCSB-A, 50% reads / 50% updates, zipfian theta=0.9; sweep of batch\n\
     size x deferred-frontier depth d; paper: >50M ops/s peak, sub-second\n\
     latency reachable at every size by shrinking the batch)";
  let sizes =
    List.map (scaled s) (paper_sizes @ if full then [ paper_large ] else [])
  in
  pf "%-10s %-4s %-9s %12s %14s\n" "db(paper)" "d" "batch" "ops/s" "latency(s)";
  List.iter
    (fun (n, label) ->
      List.iter
        (fun d ->
          let t = mk_system ~d n in
          let gen =
            Fastver_workload.Ycsb.create ~db_size:n
              Fastver_workload.Ycsb.workload_a
          in
          List.iter
            (fun batch ->
              let ops = min 150_000 (max 30_000 (2 * batch)) in
              let p = run_point t gen ~ops ~batch in
              pf "%-10s %-4d %-9d %12.0f %14.3f\n%!" label d batch
                p.throughput p.latency;
              Results.(record "fig12"
                [ ("db", S label); ("records", I n); ("d", I d);
                  ("batch", I batch); ("ops_per_s", F p.throughput);
                  ("latency_s", F p.latency);
                  ("metrics_snapshot",
                   J (Fastver_obs.Registry.to_json (Fastver.registry t))) ]))
            [ 2_048; 8_192; 32_768; 131_072 ])
        [ 4; 8 ])
    sizes

(* ------------------------------------------------------------------ *)
(* Figure 13a: YCSB-E scans                                            *)
(* ------------------------------------------------------------------ *)

let fig13a s =
  header
    "Figure 13a: throughput vs latency, YCSB-E (95% scans of length 100),\n\
     64M-equivalent database, zipf 0.9 (paper: same per-key rate as YCSB-A,\n\
     flatter curve at low latencies)";
  let n = 32_000_000 / s.div in
  let t = mk_system ~d:8 n in
  let gen =
    Fastver_workload.Ycsb.create ~db_size:n Fastver_workload.Ycsb.workload_e
  in
  pf "%-9s %12s %14s\n" "batch" "key-ops/s" "latency(s)";
  List.iter
    (fun batch ->
      let ops = min 120_000 (max 30_000 (2 * batch)) in
      let p = run_point t gen ~ops ~batch in
      pf "%-9d %12.0f %14.3f\n%!" batch p.throughput p.latency;
      Results.(record "fig13a"
        [ ("records", I n); ("batch", I batch);
          ("key_ops_per_s", F p.throughput); ("latency_s", F p.latency) ]))
    [ 4_096; 16_384; 65_536 ]

(* ------------------------------------------------------------------ *)
(* Figure 13b: SGX vs simulated enclave                                *)
(* ------------------------------------------------------------------ *)

let fig13b s =
  header
    "Figure 13b: SGX-model vs simulated-enclave throughput at ~1s latency\n\
     (YCSB-A uniform keys, 8 workers; paper: SGX reaches ~90% of simulated)";
  pf "%-10s %-11s %12s %14s %8s\n" "db(paper)" "enclave" "ops/s" "latency(s)"
    "ratio";
  List.iter
    (fun (n, label) ->
      let run cost =
        let t = mk_system ~workers:8 ~d:8 ~cost n in
        let gen =
          Fastver_workload.Ycsb.create ~db_size:n
            (Fastver_workload.Ycsb.with_dist Fastver_workload.Ycsb.workload_a
               (Fastver_workload.Ycsb.Zipfian 0.0))
        in
        (* warm an epoch, then measure twice and average out GC noise *)
        ignore (run_point t gen ~ops:16_384 ~batch:16_384);
        let a = run_point t gen ~ops:49_152 ~batch:16_384 in
        let b = run_point t gen ~ops:49_152 ~batch:16_384 in
        {
          throughput = (a.throughput +. b.throughput) /. 2.0;
          latency = (a.latency +. b.latency) /. 2.0;
        }
      in
      let sim = run Cost_model.simulated in
      let sgx = run Cost_model.sgx in
      pf "%-10s %-11s %12.0f %14.3f %8s\n" label "simulated" sim.throughput
        sim.latency "";
      pf "%-10s %-11s %12.0f %14.3f %7.0f%%\n%!" label "sgx" sgx.throughput
        sgx.latency
        (100.0 *. sgx.throughput /. sim.throughput);
      List.iter
        (fun (enclave, (p : point)) ->
          Results.(record "fig13b"
            [ ("db", S label); ("enclave", S enclave);
              ("ops_per_s", F p.throughput); ("latency_s", F p.latency) ]))
        [ ("simulated", sim); ("sgx", sgx) ])
    [ scaled s (8_000_000, "8M"); scaled s (32_000_000, "32M") ]

(* ------------------------------------------------------------------ *)
(* Figures 13c/13d: FASTER baseline vs FastVer                         *)
(* ------------------------------------------------------------------ *)

let host_only_throughput n spec =
  Gc.compact ();
  let h = Fastver_baselines.Host_only.create (records n) in
  let gen = Fastver_workload.Ycsb.create ~db_size:n spec in
  let target = 300_000 in
  let t0 = Unix.gettimeofday () in
  let i = ref 0 in
  while !i < target do
    (match Fastver_workload.Ycsb.next gen with
    | Fastver_workload.Ycsb.Read k -> ignore (Fastver_baselines.Host_only.get h k)
    | Fastver_workload.Ycsb.Update (k, v) -> Fastver_baselines.Host_only.put h k v
    | Fastver_workload.Ycsb.Scan (k, len) ->
        ignore (Fastver_baselines.Host_only.scan h k len));
    incr i
  done;
  float_of_int target /. (Unix.gettimeofday () -. t0)

(* Largest batch (of the sweep) whose scan latency stays under a second. *)
let tune_for_latency t gen ~budget =
  let rec go best = function
    | [] -> best
    | batch :: rest ->
        let p = run_point t gen ~ops:(max 20_000 batch) ~batch in
        if p.latency <= budget then
          match best with
          | Some (b : point) when b.throughput >= p.throughput -> go best rest
          | _ -> go (Some p) rest
        else best
  in
  go None [ 4_096; 16_384; 65_536; 262_144 ]

let fig13cd s =
  header
    "Figures 13c/13d: FASTER baseline vs FastVer (best) vs FastVer (1s)\n\
     (paper: FastVer within 2x of FASTER given tens-of-seconds latency;\n\
     up to 10x slower at sub-second latency on the largest database)";
  pf "%-10s %-9s %14s %14s %16s\n" "db(paper)" "workload" "FASTER ops/s"
    "FastVer best" "FastVer(1s lat)";
  List.iter
    (fun (n, label) ->
      let fastver spec =
        let t = mk_system ~d:8 n in
        let gen = Fastver_workload.Ycsb.create ~db_size:n spec in
        let best = run_point t gen ~ops:131_072 ~batch:131_072 in
        let tuned = tune_for_latency t gen ~budget:1.0 in
        (best, tuned)
      in
      List.iter
        (fun (wl_label, spec) ->
          let faster = host_only_throughput n spec in
          let best, tuned = fastver spec in
          pf "%-10s %-9s %14.0f %14.0f %16s\n%!" label wl_label faster
            best.throughput
            (match tuned with
            | Some p -> Printf.sprintf "%.0f" p.throughput
            | None -> "n/a");
          Results.(record "fig13cd"
            (( "db", S label) :: ("workload", S wl_label)
             :: ("faster_ops_per_s", F faster)
             :: ("fastver_best_ops_per_s", F best.throughput)
             ::
             (match tuned with
             | Some p -> [ ("fastver_1s_ops_per_s", F p.throughput) ]
             | None -> []))))
        [
          ("50%read", Fastver_workload.Ycsb.workload_a);
          ("readonly", Fastver_workload.Ycsb.workload_c);
        ])
    (List.map (scaled s) paper_sizes)

(* ------------------------------------------------------------------ *)
(* Figure 14a: scalability with worker threads                         *)
(* ------------------------------------------------------------------ *)

let fig14a s =
  header
    "Figure 14a: modelled throughput vs worker threads (cost-model\n\
     simulation on measured per-worker busy time; paper: near-linear\n\
     scaling with a small super-linear effect from Merkle partitioning)";
  pf "%-10s %-8s %14s %12s\n" "db(paper)" "workers" "ops/s(model)" "speedup";
  List.iter
    (fun (n, label) ->
      let base = ref 0.0 in
      List.iter
        (fun w ->
          let config =
            {
              Fastver.Config.default with
              n_workers = w;
              frontier_levels = 8;
              batch_size = 16_384;
              cost_model = Cost_model.simulated;
              authenticate_clients = false;
            }
          in
          let r =
            Fastver_simthreads.Simthreads.run_hybrid ~config ~db_size:n
              ~ops:60_000 ~spec:Fastver_workload.Ycsb.workload_a ()
          in
          if w = 4 then base := r.throughput /. 4.0;
          pf "%-10s %-8d %14.0f %11.1fx\n%!" label w r.throughput
            (r.throughput /. !base);
          Results.(record "fig14a"
            [ ("db", S label); ("workers", I w);
              ("modelled_ops_per_s", F r.throughput);
              ("speedup", F (r.throughput /. !base)) ]))
        [ 4; 8; 16; 32 ])
    [ scaled s (8_000_000, "8M"); scaled s (32_000_000, "32M") ]

(* ------------------------------------------------------------------ *)
(* Figure 14b: single-threaded micro-benchmarks                        *)
(* ------------------------------------------------------------------ *)

let fig14b s =
  header
    "Figure 14b: single-threaded throughput of verification techniques\n\
     (64M-equivalent records; paper: Merkle variants cluster ~100K ops/s,\n\
     sequential Merkle ~1M, deferred verification >10M; verifier-time\n\
     fraction drops as caching grows)";
  let n = 32_000_000 / s.div in
  let ops = 8_000 in
  let data = records n in
  pf "%-10s %12s %18s\n" "variant" "ops/s" "verifier-time-frac";
  let rng = Random.State.make [| 7 |] in
  let run_merkle label variant ~sequential =
    Gc.compact ();
    let m = Fastver_baselines.Merkle_store.create variant data in
    let t0 = Unix.gettimeofday () in
    for i = 0 to ops - 1 do
      let k =
        if sequential then Int64.of_int (i mod n)
        else Int64.of_int (Random.State.int rng n)
      in
      if i land 1 = 0 then ignore (Fastver_baselines.Merkle_store.get m k)
      else Fastver_baselines.Merkle_store.put m k "01234567"
    done;
    let wall = Unix.gettimeofday () -. t0 in
    pf "%-10s %12.0f %17.0f%%\n%!" label
      (float_of_int ops /. wall)
      (100.0 *. Fastver_baselines.Merkle_store.verifier_time_s m /. wall);
    Results.(record "fig14b"
      [ ("variant", S label); ("ops_per_s", F (float_of_int ops /. wall));
        ("verifier_time_frac",
         F (Fastver_baselines.Merkle_store.verifier_time_s m /. wall)) ])
  in
  run_merkle "M" `Plain ~sequential:false;
  run_merkle "M1K" (`Cached 1_024) ~sequential:false;
  run_merkle "M32K" (`Cached 32_768) ~sequential:false;
  run_merkle "MV" (`Propagate_to_root 32_768) ~sequential:false;
  run_merkle "M1K(seq)" (`Cached 1_024) ~sequential:true;
  (* DV *)
  Gc.compact ();
  let dv = Fastver_baselines.Dv_store.create data in
  let dv_ops = 200_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to dv_ops - 1 do
    let k = Int64.of_int (Random.State.int rng n) in
    if i land 1 = 0 then ignore (Fastver_baselines.Dv_store.get dv k)
    else Fastver_baselines.Dv_store.put dv k "01234567"
  done;
  let wall = Unix.gettimeofday () -. t0 in
  pf "%-10s %12.0f %17.0f%%\n%!" "DV"
    (float_of_int dv_ops /. wall)
    (100.0 *. Fastver_baselines.Dv_store.verifier_time_s dv /. wall);
  Results.(record "fig14b"
    [ ("variant", S "DV"); ("ops_per_s", F (float_of_int dv_ops /. wall));
      ("verifier_time_frac",
       F (Fastver_baselines.Dv_store.verifier_time_s dv /. wall)) ])

(* ------------------------------------------------------------------ *)
(* Figure 14c: multithreaded micro (cache-fit vs large DB)             *)
(* ------------------------------------------------------------------ *)

let fig14c s =
  header
    "Figure 14c: modelled deferred-verification scaling, 16K records\n\
     (cache-resident) vs 64M-equivalent (paper: ~75% gain per doubling of\n\
     workers; constant-factor gap for the larger database)";
  pf "%-10s %-8s %14s %12s\n" "db" "workers" "ops/s(model)" "speedup";
  List.iter
    (fun (n, label) ->
      let base = ref 0.0 in
      List.iter
        (fun w ->
          let r =
            Fastver_simthreads.Simthreads.run_dv_micro ~workers:w ~db_size:n
              ~ops:240_000 ()
          in
          if w = 1 then base := r.throughput;
          pf "%-10s %-8d %14.0f %11.1fx\n%!" label w r.throughput
            (r.throughput /. !base);
          Results.(record "fig14c"
            [ ("db", S label); ("workers", I w);
              ("modelled_ops_per_s", F r.throughput);
              ("speedup", F (r.throughput /. !base)) ]))
        [ 1; 2; 4; 8; 16; 32 ])
    [ (16_384, "16K"); (32_000_000 / s.div, "64M-eq") ]

(* ------------------------------------------------------------------ *)
(* Scale: measured multi-domain throughput + modelled extension        *)
(* ------------------------------------------------------------------ *)

let scale_json_rows : string list ref = ref []

let fig_scale s =
  header
    "Scale: hybrid throughput vs worker domains. Measured rows run\n\
     Parallel.run_ycsb on real Domain.spawn workers (wall-clock, zero\n\
     cost model, parallel verification scans included in the window);\n\
     modelled rows extend the curve with the fig14a cost-model simulation";
  let n = 8_000_000 / s.div in
  let cores = Domain.recommended_domain_count () in
  pf "  [runtime recommends %d domain(s) on this machine]\n%!" cores;
  let record_row ~mode ~workers ~ops_per_s ~speedup ~max_slice =
    Results.(record "scale"
      [ ("mode", S mode); ("workers", I workers);
        ("ops_per_s", F ops_per_s); ("speedup", F speedup);
        ("max_scan_slice_s", F max_slice) ]);
    scale_json_rows :=
      Printf.sprintf
        "    {\"mode\": \"%s\", \"workers\": %d, \"ops_per_s\": %.1f, \
         \"speedup\": %.3f, \"max_scan_slice_s\": %.6f}"
        mode workers ops_per_s speedup max_slice
      :: !scale_json_rows
  in
  pf "%-10s %-8s %12s %10s %18s\n" "mode" "workers" "ops/s" "speedup"
    "max-scan-slice(s)";
  (* measured: real worker domains, wall clock; total ops held constant so
     the sweep compares the same work at every width *)
  let total = 60_000 in
  let measured_point w =
    let config =
      {
        Fastver.Config.default with
        n_workers = w;
        frontier_levels = 8;
        cache_capacity = 512;
        batch_size = 16_384;
        cost_model = Cost_model.zero;
        authenticate_clients = false;
      }
    in
    Gc.compact ();
    let t = Fastver.create ~config () in
    Fastver.load t (records n);
    let spec = Fastver_workload.Ycsb.workload_a in
    (* warm an epoch so steady state is measured *)
    Fastver.Parallel.run_ycsb t ~spec ~db_size:n ~ops_per_worker:(4_096 / w);
    ignore (Fastver.verify t);
    let per_worker = total / w in
    let t0 = Unix.gettimeofday () in
    Fastver.Parallel.run_ycsb t ~spec ~db_size:n ~ops_per_worker:per_worker;
    ignore (Fastver.verify t);
    let wall = Unix.gettimeofday () -. t0 in
    let busy = (Fastver.stats t).worker_busy_s in
    (float_of_int (per_worker * w) /. wall, Array.fold_left max 0.0 busy)
  in
  let widths = if cores > 1 then [ 1; 2; 4 ] else [ 1 ] in
  if cores = 1 then
    pf "  [single core: measured sweep reduced to 1 worker; modelled rows\n\
       \   carry the scaling curve]\n%!";
  let base = ref 0.0 in
  List.iter
    (fun w ->
      let ops_per_s, max_slice = measured_point w in
      if w = 1 then base := ops_per_s;
      let speedup = ops_per_s /. !base in
      pf "%-10s %-8d %12.0f %9.2fx %18.6f\n%!" "measured" w ops_per_s speedup
        max_slice;
      record_row ~mode:"measured" ~workers:w ~ops_per_s ~speedup ~max_slice)
    widths;
  (* modelled: the cost-model simulation carries the curve past the
     machine's cores, fed by the same measured per-worker busy times *)
  let mbase = ref 0.0 in
  List.iter
    (fun w ->
      let config =
        {
          Fastver.Config.default with
          n_workers = w;
          frontier_levels = 8;
          batch_size = 16_384;
          cost_model = Cost_model.simulated;
          authenticate_clients = false;
        }
      in
      let r =
        Fastver_simthreads.Simthreads.run_hybrid ~config ~db_size:n
          ~ops:60_000 ~spec:Fastver_workload.Ycsb.workload_a ()
      in
      if w = 1 then mbase := r.throughput;
      let speedup = r.throughput /. !mbase in
      pf "%-10s %-8d %12.0f %9.2fx %18s\n%!" "modelled" w r.throughput speedup
        "-";
      record_row ~mode:"modelled" ~workers:w ~ops_per_s:r.throughput ~speedup
        ~max_slice:0.0)
    [ 1; 2; 4; 8 ];
  (* top-level summary consumed by EXPERIMENTS.md and CI *)
  let path = "BENCH_scale.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"figure\": \"scale\",\n  \"recommended_domains\": %d,\n\
    \  \"rows\": [\n%s\n  ]\n}\n"
    cores
    (String.concat ",\n" (List.rev !scale_json_rows));
  close_out oc;
  pf "  wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Verification pause: quiesced vs background scans                    *)
(* ------------------------------------------------------------------ *)

let fig_vpause s =
  header
    "Verification pause: stop-the-world (quiesced) vs background scans\n\
     under identical concurrent write traffic. Writer domains time every\n\
     operation; \"pause\" is the world-lock hold the foreground observes,\n\
     from the fastver_verify_pause_seconds histogram — the whole scan when\n\
     quiesced, only the O(workers) seal barrier in background mode";
  let n = 2_000_000 / s.div in
  let writers = 2 and verifies = 8 in
  let cap = 2_000_000 in
  let json_rows = ref [] in
  let point background =
    let config =
      {
        Fastver.Config.default with
        n_workers = 4;
        frontier_levels = 8;
        cache_capacity = 512;
        batch_size = 0;
        cost_model = Cost_model.zero;
        authenticate_clients = false;
        background_verify = background;
      }
    in
    Gc.compact ();
    let t = Fastver.create ~config () in
    Fastver.load t (records n);
    (* warm an epoch so both modes start from the same steady state *)
    Fastver.Parallel.run_ycsb t ~spec:Fastver_workload.Ycsb.workload_a
      ~db_size:n ~ops_per_worker:1_024;
    ignore (Fastver.verify t);
    let stop = Atomic.make false in
    let lats = Array.init writers (fun _ -> Array.make cap 0.0) in
    let counts = Array.make writers 0 in
    let domains =
      Array.init writers (fun wi ->
          Domain.spawn (fun () ->
              let rng = Random.State.make [| 97; wi |] in
              let buf = lats.(wi) in
              let c = ref 0 in
              while not (Atomic.get stop) do
                let k = Int64.of_int (Random.State.int rng n) in
                let t0 = Unix.gettimeofday () in
                if Random.State.int rng 5 = 0 then ignore (Fastver.get t k)
                else Fastver.put t k "vpause-w";
                if !c < cap then begin
                  buf.(!c) <- Unix.gettimeofday () -. t0;
                  incr c
                end
              done;
              counts.(wi) <- !c))
    in
    let w0 = Unix.gettimeofday () in
    for _ = 1 to verifies do
      Unix.sleepf 0.02;
      ignore (Fastver.verify t)
    done;
    let wall = Unix.gettimeofday () -. w0 in
    Atomic.set stop true;
    Array.iter Domain.join domains;
    ignore (Fastver.verify t);
    let total = Array.fold_left ( + ) 0 counts in
    let all = Array.make total 0.0 in
    let off = ref 0 in
    Array.iteri
      (fun wi c ->
        Array.blit lats.(wi) 0 all !off c;
        off := !off + c)
      counts;
    Array.sort compare all;
    let q p =
      if total = 0 then 0.0
      else all.(min (total - 1) (int_of_float (p *. float_of_int total)))
    in
    let pause_mean, pause_max =
      let open Fastver_obs in
      List.fold_left
        (fun acc (name, _, v) ->
          match (name, v) with
          | "fastver_verify_pause_seconds", Registry.Histogram_v (snap, scale)
            ->
              (Histogram.mean snap *. scale, float_of_int snap.max *. scale)
          | _ -> acc)
        (0.0, 0.0)
        (Registry.dump (Fastver.registry t))
    in
    let ops_per_s = float_of_int total /. wall in
    (ops_per_s, q 0.5, q 0.99, q 1.0, pause_mean, pause_max)
  in
  pf "%-12s %12s %10s %10s %10s %12s %12s\n" "mode" "ops/s" "p50(us)"
    "p99(us)" "max(ms)" "pause-avg(ms)" "pause-max(ms)";
  List.iter
    (fun background ->
      let mode = if background then "background" else "quiesced" in
      let ops_per_s, p50, p99, lmax, pmean, pmax = point background in
      pf "%-12s %12.0f %10.1f %10.1f %10.2f %12.3f %12.3f\n%!" mode ops_per_s
        (p50 *. 1e6) (p99 *. 1e6) (lmax *. 1e3) (pmean *. 1e3) (pmax *. 1e3);
      Results.(
        record "vpause"
          [
            ("mode", S mode); ("records", I n); ("verifies", I verifies);
            ("ops_per_s", F ops_per_s); ("lat_p50_s", F p50);
            ("lat_p99_s", F p99); ("lat_max_s", F lmax);
            ("pause_mean_s", F pmean); ("pause_max_s", F pmax);
          ]);
      json_rows :=
        Printf.sprintf
          "    {\"mode\": \"%s\", \"records\": %d, \"verifies\": %d, \
           \"ops_per_s\": %.1f, \"lat_p50_s\": %.9f, \"lat_p99_s\": %.9f, \
           \"lat_max_s\": %.9f, \"pause_mean_s\": %.9f, \"pause_max_s\": \
           %.9f}"
          mode n verifies ops_per_s p50 p99 lmax pmean pmax
        :: !json_rows)
    [ false; true ];
  let path = "BENCH_vpause.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"figure\": \"vpause\",\n  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  pf "  wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Wire-encoding allocation regression gate                            *)
(* ------------------------------------------------------------------ *)

let fig_wire_alloc () =
  header
    "Wire encoding allocation: bytes allocated per message when reusing a\n\
     per-connection encode buffer (regression gate — the single-pass\n\
     encoder must allocate only the final frame string)";
  let b = Buffer.create 256 in
  let mac = String.make 16 'm' in
  let reqs =
    [|
      Fastver_net.Wire.Get { key = 42L; nonce = 7L };
      Fastver_net.Wire.Put
        { key = 42L; nonce = 8L; mac; value = Some "01234567" };
      Fastver_net.Wire.Scan { start = 1L; len = 100; nonce = 9L };
    |]
  in
  (* warm: grow the reused buffer to its steady-state capacity *)
  Array.iter
    (fun r -> ignore (Fastver_net.Wire.encode_request_into b ~id:0L r))
    reqs;
  let iters = 50_000 in
  let a0 = Gc.allocated_bytes () in
  for i = 1 to iters do
    Array.iter
      (fun r ->
        ignore (Fastver_net.Wire.encode_request_into b ~id:(Int64.of_int i) r))
      reqs
  done;
  let per_msg =
    (Gc.allocated_bytes () -. a0) /. float_of_int (iters * Array.length reqs)
  in
  let bound = 192.0 in
  pf "  %.1f bytes/message (bound %.0f)\n%!" per_msg bound;
  Results.(record "wirealloc"
    [ ("bytes_per_msg", F per_msg); ("bound", F bound) ]);
  if per_msg > bound then
    failwith
      (Printf.sprintf
         "wire encode allocation regression: %.1f bytes/message exceeds %.0f"
         per_msg bound)

(* ------------------------------------------------------------------ *)
(* Concerto comparison (§8.1 discussion)                               *)
(* ------------------------------------------------------------------ *)

let concerto s =
  header
    "Comparison with Concerto-style deferred-only verification (§8.1:\n\
     Concerto peaks ~3M ops/s but its verification latency grows linearly\n\
     with the database — 10s+ at 10M records; FastVer's latency is bounded\n\
     by the batch and the tree frontier instead, and its verification work\n\
     parallelises where Concerto's single log serialises)";
  pf "%-26s %-10s %12s %18s\n" "system" "records" "ops/s" "verify-latency(s)";
  let dv_row n =
    Gc.compact ();
    let dv = Fastver_baselines.Dv_store.create (records n) in
    let rng = Random.State.make [| 3 |] in
    let dv_ops = 60_000 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to dv_ops - 1 do
      let k = Int64.of_int (Random.State.int rng n) in
      if i land 1 = 0 then ignore (Fastver_baselines.Dv_store.get dv k)
      else Fastver_baselines.Dv_store.put dv k "01234567"
    done;
    let dv_wall = Unix.gettimeofday () -. t0 in
    Fastver_baselines.Dv_store.verify dv;
    pf "%-26s %-10d %12.0f %18.3f\n%!" "Concerto (DV only)" n
      (float_of_int dv_ops /. dv_wall)
      (Fastver_baselines.Dv_store.last_verify_latency_s dv);
    Results.(record "concerto"
      [ ("system", S "concerto-dv"); ("records", I n);
        ("ops_per_s", F (float_of_int dv_ops /. dv_wall));
        ("verify_latency_s",
         F (Fastver_baselines.Dv_store.last_verify_latency_s dv)) ])
  in
  (* DV latency grows linearly with the database... *)
  let base = 10_000_000 / s.div in
  List.iter dv_row [ base; 4 * base; 16 * base ];
  (* ...while FastVer's stays batch-bound at any size. *)
  let t = mk_system ~d:8 base in
  let gen =
    Fastver_workload.Ycsb.create ~db_size:base Fastver_workload.Ycsb.workload_a
  in
  List.iter
    (fun batch ->
      let p = run_point t gen ~ops:(max 30_000 batch) ~batch in
      pf "%-26s %-10d %12.0f %18.3f\n%!"
        (Printf.sprintf "FastVer (batch %d)" batch)
        base p.throughput p.latency;
      Results.(record "concerto"
        [ ("system", S "fastver"); ("records", I base); ("batch", I batch);
          ("ops_per_s", F p.throughput); ("verify_latency_s", F p.latency) ]))
    [ 8_192; 32_768 ]

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices of §6, measured                       *)
(* ------------------------------------------------------------------ *)

let hybrid_point ?(workers = 4) ?(d = 8) ?(cache = 512) ?(logbuf = 4096)
    ?(sorted = true) ?(algo = Record_enc.Blake2s)
    ?(cost = Cost_model.simulated) ?(theta = 0.9) ~n ~ops ~batch () =
  let config =
    {
      Fastver.Config.default with
      n_workers = workers;
      frontier_levels = d;
      cache_capacity = cache;
      log_buffer_size = logbuf;
      batch_size = 0;
      sorted_migration = sorted;
      algo;
      cost_model = cost;
      authenticate_clients = false;
    }
  in
  let t = Fastver.create ~config () in
  Fastver.load t (records n);
  let gen =
    Fastver_workload.Ycsb.create ~db_size:n
      (Fastver_workload.Ycsb.with_dist Fastver_workload.Ycsb.workload_a
         (Fastver_workload.Ycsb.Zipfian theta))
  in
  (* warm one epoch so steady-state is measured *)
  Fastver.run_ops t gen (min batch 8_192);
  ignore (Fastver.verify t);
  run_point t gen ~ops ~batch

let ablations s =
  let n = 8_000_000 / s.div in
  let ops = 60_000 and batch = 16_384 in
  header
    "Ablation: sorted vs unsorted Merkle updates during the scan (§6.3;\n\
     the paper reports an order-of-magnitude locality effect, cf. M1K(seq))";
  pf "%-10s %12s %14s\n" "migration" "ops/s" "latency(s)";
  List.iter
    (fun (label, sorted) ->
      let p = hybrid_point ~sorted ~n ~ops ~batch () in
      pf "%-10s %12.0f %14.3f\n%!" label p.throughput p.latency;
      Results.(record "ablation_migration"
        [ ("migration", S label); ("ops_per_s", F p.throughput);
          ("latency_s", F p.latency) ]))
    [ ("sorted", true); ("unsorted", false) ];

  header
    "Ablation: workload skew (extended paper: zipf 0.9 is ~30% faster\n\
     than uniform)";
  pf "%-10s %12s %14s\n" "theta" "ops/s" "latency(s)";
  List.iter
    (fun theta ->
      let p = hybrid_point ~theta ~n ~ops ~batch () in
      pf "%-10.1f %12.0f %14.3f\n%!" theta p.throughput p.latency;
      Results.(record "ablation_skew"
        [ ("theta", F theta); ("ops_per_s", F p.throughput);
          ("latency_s", F p.latency) ]))
    [ 0.0; 0.9 ];

  header "Ablation: Merkle hash function";
  pf "%-10s %12s %14s\n" "hash" "ops/s" "latency(s)";
  List.iter
    (fun algo ->
      let p = hybrid_point ~algo ~n ~ops ~batch () in
      pf "%-10s %12.0f %14.3f\n%!"
        (Format.asprintf "%a" Record_enc.pp_algo algo)
        p.throughput p.latency;
      Results.(record "ablation_hash"
        [ ("hash", S (Format.asprintf "%a" Record_enc.pp_algo algo));
          ("ops_per_s", F p.throughput); ("latency_s", F p.latency) ]))
    [ Record_enc.Blake2s; Record_enc.Blake2b; Record_enc.Sha256 ];

  header
    "Ablation: verifier cache size per thread (P1: graceful degradation\n\
     with enclave memory)";
  pf "%-10s %12s %14s\n" "cache" "ops/s" "latency(s)";
  List.iter
    (fun cache ->
      let p = hybrid_point ~cache ~n ~ops ~batch () in
      pf "%-10d %12.0f %14.3f\n%!" cache p.throughput p.latency;
      Results.(record "ablation_cache"
        [ ("cache", I cache); ("ops_per_s", F p.throughput);
          ("latency_s", F p.latency) ]))
    [ 64; 128; 512; 4096 ];

  header
    "Ablation: verification-log buffer size (§7: amortising enclave\n\
     transitions; simulated 8µs transitions)";
  pf "%-10s %12s %14s\n" "logbuf" "ops/s" "latency(s)";
  List.iter
    (fun logbuf ->
      let p = hybrid_point ~logbuf ~n ~ops ~batch () in
      pf "%-10d %12.0f %14.3f\n%!" logbuf p.throughput p.latency;
      Results.(record "ablation_logbuf"
        [ ("logbuf", I logbuf); ("ops_per_s", F p.throughput);
          ("latency_s", F p.latency) ]))
    [ 16; 128; 1024; 8192 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: per-operation latency of the primitives  *)
(* behind each figure                                                  *)
(* ------------------------------------------------------------------ *)

let bechamel_micro () =
  header
    "Micro: per-operation cost of the primitives behind the figures\n\
     (Bechamel OLS estimates)";
  let open Bechamel in
  let cmac_key = Fastver_crypto.Cmac.of_aes_key "0123456789abcdef" in
  let aes_key = Fastver_crypto.Aes128.expand_key "0123456789abcdef" in
  let block = Bytes.make 16 'b' in
  let sample_value = Value.Data (Some "01234567") in
  let sample_elem =
    Record_enc.blum_element (Key.of_int64 17L) sample_value 123456L
  in
  let mset =
    Fastver_crypto.Multiset_hash.create
      (Fastver_crypto.Multiset_hash.key_of_string "0123456789abcdef")
  in
  let tests =
    [
      Test.make ~name:"aes128-block (DV PRF core)"
        (Staged.stage (fun () ->
             Fastver_crypto.Aes128.encrypt_block_into aes_key block block));
      Test.make ~name:"cmac-blum-element (fig12 hot path)"
        (Staged.stage (fun () ->
             ignore (Fastver_crypto.Cmac.mac cmac_key sample_elem)));
      Test.make ~name:"multiset-add (deferred verification)"
        (Staged.stage (fun () ->
             Fastver_crypto.Multiset_hash.add mset sample_elem));
      Test.make ~name:"blake2s-record-hash (fig14b merkle)"
        (Staged.stage (fun () ->
             ignore (Record_enc.hash_value ~algo:Record_enc.Blake2s sample_value)));
      Test.make ~name:"blake2b-record-hash (ablation)"
        (Staged.stage (fun () ->
             ignore (Record_enc.hash_value ~algo:Record_enc.Blake2b sample_value)));
      Test.make ~name:"sha256-record-hash (ablation)"
        (Staged.stage (fun () ->
             ignore (Record_enc.hash_value ~algo:Record_enc.Sha256 sample_value)));
      Test.make ~name:"hmac-sha256 (epoch certificate)"
        (Staged.stage (fun () ->
             ignore (Fastver_crypto.Hmac.mac ~key:"secret" "epoch:42")));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                     ~predictors:[| Measure.run |]) instance raw
    in
    Hashtbl.iter
      (fun name result ->
        let short =
          match String.index_opt name '/' with
          | Some i -> String.sub name (i + 1) (String.length name - i - 1)
          | None -> name
        in
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
            pf "  %-40s %10.0f ns/op\n%!" short est;
            Results.(record "micro"
              [ ("primitive", S short); ("ns_per_op", F est) ])
        | Some _ | None -> pf "  %-40s (no estimate)\n%!" name)
      results
  in
  List.iter benchmark tests

(* ------------------------------------------------------------------ *)
(* Network serving layer: closed-loop clients over a Unix socket       *)
(* ------------------------------------------------------------------ *)

let fig_net () =
  header
    "Network serving layer: closed-loop pipelined clients over a Unix\n\
     socket, every response signature verified client-side (§7: one\n\
     verification-log flush per drained batch amortises the enclave\n\
     transition across connections)";
  let n = 20_000 in
  let config =
    {
      Fastver.Config.default with
      n_workers = 4;
      batch_size = 16_384;
      cost_model = Cost_model.zero;
    }
  in
  Gc.compact ();
  let t = Fastver.create ~config () in
  Fastver.load t (records n);
  let path = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fastver-bench-%d.sock" (Unix.getpid ())) in
  match Fastver_net.Server.create t ~listen:(Fastver_net.Addr.Unix_sock path) with
  | Error e -> pf "  cannot start server: %s\n%!" e
  | Ok srv ->
      Fastver_net.Server.start srv;
      let addr = Fastver_net.Server.bound_addr srv in
      pf "%-8s %-7s %12s %10s %10s %10s\n" "clients" "window" "ops/s"
        "p50(ms)" "p99(ms)" "failures";
      let next_client = ref 1 in
      List.iter
        (fun (clients, window) ->
          let r =
            Fastver_net.Net_bench.run ~addr ~clients ~window ~ops:20_000
              ~db_size:n ~first_client:!next_client ()
          in
          (* nonces are per-client and single-use, so sessions never share
             a client id across runs *)
          next_client := !next_client + clients;
          let open Fastver_net.Net_bench in
          pf "%-8d %-7d %12.0f %10.3f %10.3f %10d\n%!" clients window
            r.ops_per_s r.p50_ms r.p99_ms (r.integrity_failures + r.errors);
          Results.(record "net"
            [ ("clients", I clients); ("window", I window); ("ops", I r.ops);
              ("ops_per_s", F r.ops_per_s); ("p50_ms", F r.p50_ms);
              ("p99_ms", F r.p99_ms); ("mean_ms", F r.mean_ms);
              ("integrity_failures", I r.integrity_failures);
              ("errors", I r.errors);
              ("metrics_snapshot",
               J (Fastver_obs.Registry.to_json (Fastver.registry t))) ]))
        [ (1, 1); (1, 32); (4, 32); (8, 64) ];
      Fastver_net.Server.stop srv

(* ------------------------------------------------------------------ *)
(* Observability overhead: metrics-on vs metrics-off                   *)
(* ------------------------------------------------------------------ *)

let fig_obs s =
  header
    "Observability overhead: hot-path metric recording on vs off,\n\
     single-thread YCSB-C (read-only, zipf 0.9; acceptance: <= 5%\n\
     throughput cost — callback-backed metrics are scrape-time only and\n\
     don't appear here)";
  let n = 2_000_000 / s.div in
  let ops = 120_000 and batch = 32_768 in
  let run_mode enabled =
    let config =
      {
        Fastver.Config.default with
        n_workers = 1;
        frontier_levels = 8;
        batch_size = 0;
        cost_model = Cost_model.zero;
        authenticate_clients = false;
        metrics_enabled = enabled;
      }
    in
    Gc.compact ();
    let t = Fastver.create ~config () in
    Fastver.load t (records n);
    let gen =
      Fastver_workload.Ycsb.create ~db_size:n
        (Fastver_workload.Ycsb.with_dist Fastver_workload.Ycsb.workload_c
           (Fastver_workload.Ycsb.Zipfian 0.9))
    in
    (* warm one epoch so steady-state is measured *)
    Fastver.run_ops t gen 8_192;
    ignore (Fastver.verify t);
    (t, run_point t gen ~ops ~batch)
  in
  (* interleave the modes and take the best of three each, so a scheduler
     hiccup hits both sides rather than biasing the ratio *)
  ignore (run_mode false) (* throwaway: first run pays page-faults for all *);
  let samples = ref [] in
  List.iter
    (fun enabled ->
      let t, p = run_mode enabled in
      samples := (enabled, t, p.throughput) :: !samples)
    [ false; true; false; true; false; true ];
  let best enabled =
    List.fold_left
      (fun acc (e, _, th) -> if e = enabled then max acc th else acc)
      0.0 !samples
  in
  let off = { throughput = best false; latency = 0.0 } in
  let on = { throughput = best true; latency = 0.0 } in
  let t_on =
    match List.find (fun (e, _, _) -> e) !samples with _, t, _ -> t
  in
  let overhead = 100.0 *. (1.0 -. (on.throughput /. off.throughput)) in
  pf "%-12s %12s\n" "metrics" "ops/s";
  pf "%-12s %12.0f\n" "off" off.throughput;
  pf "%-12s %12.0f   (overhead %+.1f%%)\n%!" "on" on.throughput overhead;
  Results.(record "obs"
    [ ("metrics", S "off"); ("records", I n); ("ops_per_s", F off.throughput) ]);
  Results.(record "obs"
    [ ("metrics", S "on"); ("records", I n); ("ops_per_s", F on.throughput);
      ("overhead_pct", F overhead);
      ("metrics_snapshot",
       J (Fastver_obs.Registry.to_json (Fastver.registry t_on))) ])

(* ------------------------------------------------------------------ *)
(* Cold tier: authenticated larger-than-memory serving                 *)
(* ------------------------------------------------------------------ *)

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> remove_tree (Filename.concat path f))
        (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fig_coldtier () =
  header
    "Cold tier: verified serving of larger-than-memory databases. The\n\
     in-memory budget is fixed; databases 2x/4x/8x that size overflow to\n\
     the authenticated log-structured cold tier after each verification\n\
     scan. Every cold read is MAC-checked and re-enters deferred\n\
     verification as an ordinary blum add; verification stays ON";
  let budget = 2_048 in
  let json_rows = ref [] in
  pf "%-6s %-9s %12s %14s %10s %10s %9s %12s\n" "mult" "records" "ops/s"
    "latency(s)" "cold-rd" "cold-wr" "segments" "gc-rewrites";
  List.iter
    (fun mult ->
      let n = mult * budget in
      let dir = Filename.temp_file "fastver" "-coldtier" in
      Sys.remove dir;
      let config =
        {
          Fastver.Config.default with
          n_workers = 2;
          frontier_levels = 6;
          batch_size = 0;
          cost_model = Cost_model.zero;
          authenticate_clients = false;
          cold_dir = Some dir;
          cold_threshold = budget;
          cold_segment_bytes = 128 * 1024;
          cold_gc_ratio = 0.4;
        }
      in
      Gc.compact ();
      let t = Fastver.create ~config () in
      Fastver.load t (records n);
      let gen =
        Fastver_workload.Ycsb.create ~db_size:n
          (Fastver_workload.Ycsb.with_dist Fastver_workload.Ycsb.workload_a
             (Fastver_workload.Ycsb.Zipfian 0.9))
      in
      (* warm one epoch: the first verify demotes the overflow to disk *)
      Fastver.run_ops t gen 2_048;
      ignore (Fastver.verify t);
      let p = run_point t gen ~ops:24_000 ~batch:4_096 in
      let cs =
        match Fastver.cold_stats t with
        | Some cs -> cs
        | None -> failwith "coldtier: no cold tier attached"
      in
      let open Fastver_kvstore.Store.Cold in
      if mult >= 4 && cs.reads = 0 then
        failwith "coldtier: no reads were served from the cold tier";
      if cs.scrub_failures > 0 then
        failwith "coldtier: integrity failures on cold reads";
      pf "%-6s %-9d %12.0f %14.3f %10d %10d %9d %12d\n%!"
        (Printf.sprintf "%dx" mult) n p.throughput p.latency cs.reads
        cs.writes cs.segments cs.gc_rewrites;
      Results.(record "coldtier"
        [ ("mult", I mult); ("records", I n); ("budget", I budget);
          ("ops_per_s", F p.throughput); ("latency_s", F p.latency);
          ("cold_reads", I cs.reads); ("cold_writes", I cs.writes);
          ("segments", I cs.segments); ("dead_segments", I cs.dead_segments);
          ("live_bytes", I cs.live_bytes); ("dead_bytes", I cs.dead_bytes);
          ("gc_rewrites", I cs.gc_rewrites) ]);
      json_rows :=
        Printf.sprintf
          "    {\"mult\": %d, \"records\": %d, \"budget\": %d, \
           \"ops_per_s\": %.1f, \"latency_s\": %.6f, \"cold_reads\": %d, \
           \"cold_writes\": %d, \"segments\": %d, \"gc_rewrites\": %d}"
          mult n budget p.throughput p.latency cs.reads cs.writes cs.segments
          cs.gc_rewrites
        :: !json_rows;
      remove_tree dir)
    [ 2; 4; 8 ];
  let path = "BENCH_cold.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"figure\": \"coldtier\",\n  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  pf "  wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Replication: follower read scaling + failover                       *)
(* ------------------------------------------------------------------ *)

let fig_repl () =
  header
    "Verified read replication: followers replay the primary's op stream,\n\
     verify the certificate chain at every epoch boundary, and serve\n\
     reads through the ordinary network path (clients re-check receipt\n\
     MACs unchanged). Aggregate verified-read throughput vs follower\n\
     count, plus failover: reads keep flowing after the primary dies";
  let n = 20_000 in
  let tmp suffix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fastver-repl-%d-%s" (Unix.getpid ()) suffix)
  in
  let json_rows = ref [] in
  let failover_ms = ref 0.0 in
  let write_failover_ms = ref 0.0 in
  let single = ref 0.0 in
  pf "%-10s %14s %16s %10s\n" "followers" "agg ops/s" "ideal ops/s" "p99(ms)";
  List.iter
    (fun fcount ->
      let config =
        {
          Fastver.Config.default with
          n_workers = 2;
          batch_size = 0;
          cost_model = Cost_model.zero;
        }
      in
      Gc.compact ();
      let t = Fastver.create ~config () in
      Fastver.load t (records n);
      let rsock = tmp (Printf.sprintf "%d-pri.sock" fcount) in
      let prim =
        match
          Fastver_replica.Primary.create t
            ~listen:(Fastver_net.Addr.Unix_sock rsock)
        with
        | Ok p -> p
        | Error e -> failwith ("repl: " ^ e)
      in
      Fastver_replica.Primary.start prim;
      (* a few sealed epochs of writes for the followers to replay *)
      for e = 0 to 3 do
        for i = 0 to 499 do
          Fastver.put t
            (Int64.of_int ((e * 500) + i))
            (Printf.sprintf "v%d-%d" e i)
        done;
        ignore (Fastver.verify t)
      done;
      let sealed = Fastver.verified_epoch t in
      (* followers serve reads only; one worker each keeps the per-node
         domain count low so follower processes pack onto the machine *)
      let fconfig = { config with Fastver.Config.n_workers = 1 } in
      let followers =
        List.init fcount (fun i ->
            let lsock = tmp (Printf.sprintf "%d-f%d.sock" fcount i) in
            match
              Fastver_replica.Follower.create ~config:fconfig
                ~load:(fun sys -> Fastver.load sys (records n))
                ~primary:(Fastver_net.Addr.Unix_sock rsock)
                ~listen:(Fastver_net.Addr.Unix_sock lsock)
                ~dir:(tmp (Printf.sprintf "%d-f%d-state" fcount i))
                ()
            with
            | Ok f ->
                Fastver_replica.Follower.start f;
                f
            | Error e -> failwith ("repl follower: " ^ e))
      in
      let deadline = Unix.gettimeofday () +. 30.0 in
      List.iter
        (fun f ->
          while
            Fastver_replica.Follower.verified_epoch f < sealed
            && Unix.gettimeofday () < deadline
          do
            Unix.sleepf 0.01
          done;
          if Fastver_replica.Follower.verified_epoch f < sealed then
            failwith "repl: follower failed to catch up")
        followers;
      (* one closed-loop verified-read benchmark per follower, concurrently.
         One client domain per follower: aggregate throughput then scales
         with follower count up to the machine's core budget (the JSON
         records the core count so flat curves on small boxes read as a
         hardware ceiling, not a replication bottleneck). *)
      let bench f =
        let srv = Option.get (Fastver_replica.Follower.server f) in
        Fastver_net.Net_bench.run
          ~addr:(Fastver_net.Server.bound_addr srv)
          ~clients:1 ~window:32 ~ops:20_000 ~db_size:n ~put_ratio:0.0 ()
      in
      let doms =
        List.map (fun f -> Domain.spawn (fun () -> bench f)) followers
      in
      let rs = List.map Domain.join doms in
      let open Fastver_net.Net_bench in
      let agg = List.fold_left (fun a r -> a +. r.ops_per_s) 0.0 rs in
      let p99 = List.fold_left (fun a r -> max a r.p99_ms) 0.0 rs in
      let fails =
        List.fold_left
          (fun a r -> a + r.integrity_failures + r.errors)
          0 rs
      in
      if fails > 0 then failwith "repl: follower reads failed verification";
      if fcount = 1 then single := agg;
      let ideal = !single *. float_of_int fcount in
      pf "%-10d %14.0f %16.0f %10.3f\n%!" fcount agg ideal p99;
      (* failover on the largest round: kill the primary mid-stream, then
         time verified reads against a follower that just lost it *)
      (if fcount = 4 then begin
         let f0 = List.hd followers in
         let srv = Option.get (Fastver_replica.Follower.server f0) in
         let faddr = Fastver_net.Server.bound_addr srv in
         let t0 = Unix.gettimeofday () in
         Fastver_replica.Primary.stop prim;
         let r =
           Fastver_net.Net_bench.run ~addr:faddr ~clients:1 ~window:1
             ~ops:200 ~db_size:n ~put_ratio:0.0 ~first_client:64 ()
         in
         if r.integrity_failures + r.errors > 0 then
           failwith "repl: post-failover reads failed";
         failover_ms := (Unix.gettimeofday () -. t0) *. 1000.0;
         pf "  failover: %.1f ms for 200 verified reads after primary death\n%!"
           !failover_ms
       end);
      Results.(record "repl"
        [ ("followers", I fcount); ("records", I n);
          ("agg_ops_per_s", F agg); ("ideal_ops_per_s", F ideal);
          ("p99_ms", F p99) ]);
      json_rows :=
        Printf.sprintf
          "    {\"followers\": %d, \"records\": %d, \"agg_ops_per_s\": %.1f, \
           \"ideal_ops_per_s\": %.1f, \"p99_ms\": %.3f}"
          fcount n agg ideal p99
        :: !json_rows;
      List.iter Fastver_replica.Follower.stop followers;
      Fastver_replica.Primary.stop prim)
    [ 1; 2; 4 ];
  (* Write failover: an electable candidate loses the primary, elects
     itself over its verified chain, and starts taking writes — time from
     primary death until 200 verified writes have been accepted by the
     promoted node through the ordinary client path. *)
  (let config =
     {
       Fastver.Config.default with
       n_workers = 1;
       batch_size = 0;
       cost_model = Cost_model.zero;
     }
   in
   let t = Fastver.create ~config () in
   Fastver.load t (records n);
   let rsock = tmp "wf-pri.sock" in
   let prim =
     match
       Fastver_replica.Primary.create t
         ~listen:(Fastver_net.Addr.Unix_sock rsock)
     with
     | Ok p -> p
     | Error e -> failwith ("repl: " ^ e)
   in
   Fastver_replica.Primary.start prim;
   for e = 0 to 3 do
     for i = 0 to 499 do
       Fastver.put t
         (Int64.of_int ((e * 500) + i))
         (Printf.sprintf "w%d-%d" e i)
     done;
     ignore (Fastver.verify t)
   done;
   let sealed = Fastver.verified_epoch t in
   let election =
     Fastver_replica.Follower.electable ~priority:1 ~election_timeout:0.25
       ~probe_timeout:0.25 ~probe_interval:0.1 ~promote_batch:500
       (Fastver_net.Addr.Unix_sock (tmp "wf-cand.sock"))
   in
   let f =
     match
       Fastver_replica.Follower.create ~config
         ~load:(fun sys -> Fastver.load sys (records n))
         ~reconnect_delay:0.05 ~election
         ~primary:(Fastver_net.Addr.Unix_sock rsock)
         ~listen:(Fastver_net.Addr.Unix_sock (tmp "wf-f.sock"))
         ~dir:(tmp "wf-f-state") ()
     with
     | Ok f ->
         Fastver_replica.Follower.start f;
         f
     | Error e -> failwith ("repl write-failover: " ^ e)
   in
   let deadline = Unix.gettimeofday () +. 30.0 in
   while
     Fastver_replica.Follower.verified_epoch f < sealed
     && Unix.gettimeofday () < deadline
   do
     Unix.sleepf 0.01
   done;
   if Fastver_replica.Follower.verified_epoch f < sealed then
     failwith "repl: write-failover candidate failed to catch up";
   let srv = Option.get (Fastver_replica.Follower.server f) in
   let faddr = Fastver_net.Server.bound_addr srv in
   let t0 = Unix.gettimeofday () in
   Fastver_replica.Primary.stop prim;
   let deadline = Unix.gettimeofday () +. 30.0 in
   while
     Fastver_replica.Follower.state f <> Fastver_replica.Follower.Leading
     && Unix.gettimeofday () < deadline
   do
     Unix.sleepf 0.005
   done;
   if Fastver_replica.Follower.state f <> Fastver_replica.Follower.Leading
   then failwith "repl: candidate never promoted after primary death";
   let r =
     Fastver_net.Net_bench.run ~addr:faddr ~clients:1 ~window:1 ~ops:200
       ~db_size:n ~put_ratio:1.0 ~first_client:80 ()
   in
   if
     r.Fastver_net.Net_bench.integrity_failures
     + r.Fastver_net.Net_bench.errors
     > 0
   then failwith "repl: post-promotion writes failed";
   write_failover_ms := (Unix.gettimeofday () -. t0) *. 1000.0;
   pf
     "  write failover: %.1f ms from primary death to 200 verified writes \
      on the promoted candidate\n\
      %!"
     !write_failover_ms;
   Fastver_replica.Follower.stop f);
  let path = "BENCH_repl.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"figure\": \"repl\",\n  \"cores\": %d,\n  \
     \"failover_200_reads_ms\": %.1f,\n  \
     \"write_failover_200_writes_ms\": %.1f,\n  \
     \"rows\": [\n%s\n  ]\n}\n"
    (Domain.recommended_domain_count ())
    !failover_ms !write_failover_ms
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  pf "  wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Adaptive verification hierarchy                                     *)
(* ------------------------------------------------------------------ *)

(* A rotating-hot-set workload across phase boundaries. The adaptive
   controller re-learns the hot keys from the obs heat sketch, carries them
   in the fast (Blum) tier across epochs, and retunes cache capacity and
   frontier depth; statics re-load every hot key through the Merkle path
   once per epoch, and a mis-tuned static additionally thrashes its
   verifier cache and maintains an oversized frontier. Certificates must
   stay bit-identical across all three systems: tier placement is invisible
   to the certificate chain. *)
let fig_adaptive s =
  header
    "Adaptive verification hierarchy: online hot/cold tier migration\n\
     driven by the obs subsystem. Rotating skewed phases; adaptive vs a\n\
     well-tuned and a mis-tuned static hierarchy; certificates must be\n\
     bit-identical to a static replay of the same operations";
  let n = max 4_096 (400_000 / s.div) in
  let phases = 3 and epochs_per_phase = 6 in
  let hot = 64 and reps = 40 and cold = 1_500 in
  let ops_per_epoch = (hot * reps) + cold in
  let run_epoch t ~phase =
    for rep = 1 to reps do
      for h = 0 to hot - 1 do
        Fastver.put t
          (Int64.of_int (((phase * 1000) + h) mod n))
          (Printf.sprintf "h%d-%d" h rep)
      done
    done;
    for c = 0 to cold - 1 do
      Fastver.put t
        (Int64.of_int (((phase * 7919) + (c * 13)) mod n))
        (Printf.sprintf "c%d" c)
    done
  in
  (* The adaptive system starts from the SAME mis-tuned shape as
     static-cold (tiny cache, deep frontier) — what it measures is the
     controller climbing out of a bad configuration online, with only the
     cache budget to grow into. *)
  let systems =
    [ ("adaptive", 8, 64, 2 * 4096, true);
      ("static-warm", 4, 4096, 0, false);
      ("static-cold", 8, 64, 0, false) ]
  in
  pf "%-12s %-6s %12s %12s\n" "system" "phase" "ops/s" "fast-path%";
  (* One full 3-phase trace against a fresh store. Returns per-phase
     throughput (median epoch — one GC spike or scheduler stall cannot
     swing a whole phase), per-phase fast-path%, overall throughput and
     the certificate trace. *)
  let run_trace (_, d, cache, budget, adaptive) =
    let config =
      {
        Fastver.Config.default with
        n_workers = 2;
        frontier_levels = d;
        cache_capacity = cache;
        batch_size = 0;
        cost_model = Cost_model.simulated;
        authenticate_clients = false;
        adaptive;
        adaptive_cache_budget = budget;
      }
    in
    Gc.compact ();
    let t = Fastver.create ~config () in
    Fastver.load t (records n);
    let st = Fastver.stats t in
    let certs = ref [] in
    (* one untimed warmup epoch (identical across systems, certs still
       compared) so phase 0 doesn't time cold caches *)
    run_epoch t ~phase:0;
    certs := (Fastver.current_epoch t, Fastver.verify t) :: !certs;
    let phase_rows =
      List.init phases (fun phase ->
          let ops0 = st.ops and fast0 = st.blum_fast_path in
          let epoch_ts =
            List.init epochs_per_phase (fun _ ->
                let w0 = Unix.gettimeofday () in
                let ov0 = Fastver.enclave_overhead_ns t in
                run_epoch t ~phase;
                let epoch = Fastver.current_epoch t in
                certs := (epoch, Fastver.verify t) :: !certs;
                let dov =
                  Int64.to_float
                    (Int64.sub (Fastver.enclave_overhead_ns t) ov0)
                  /. 1e9
                in
                Unix.gettimeofday () -. w0 +. dov)
          in
          let eff = List.fold_left ( +. ) 0.0 epoch_ts in
          let median =
            let a = Array.of_list epoch_ts in
            Array.sort Float.compare a;
            a.(Array.length a / 2)
          in
          let dops = st.ops - ops0 in
          let tp =
            float_of_int dops /. float_of_int epochs_per_phase /. median
          in
          let fastpct =
            100.0
            *. float_of_int (st.blum_fast_path - fast0)
            /. float_of_int (max 1 dops)
          in
          (tp, fastpct, eff))
    in
    let total_eff =
      List.fold_left (fun a (_, _, e) -> a +. e) 0.0 phase_rows
    in
    let overall =
      float_of_int (phases * epochs_per_phase * ops_per_epoch) /. total_eff
    in
    (List.map (fun (tp, f, _) -> (tp, f)) phase_rows, overall, List.rev !certs)
  in
  let measured =
    List.map
      (fun ((name, _, _, _, _) as sys) ->
        (* best of two traces, per phase: systems run sequentially, so a
           load shift between one system's window and the next would
           otherwise masquerade as a configuration effect. Certificates
           must agree between the repeats — the controller is
           deterministic, so they do. *)
        let rows1, overall1, certs1 = run_trace sys in
        let rows2, overall2, certs2 = run_trace sys in
        if certs1 <> certs2 then
          failwith (name ^ ": certificates diverged between repeat traces");
        let rows =
          List.map2
            (fun (tp1, f1) (tp2, f2) ->
              if tp2 > tp1 then (tp2, f2) else (tp1, f1))
            rows1 rows2
        in
        List.iteri
          (fun phase (tp, fastpct) ->
            pf "%-12s %-6d %12.0f %11.1f%%\n%!" name phase tp fastpct;
            Results.(record "adaptive"
              [ ("system", S name); ("phase", I phase); ("records", I n);
                ("ops_per_s", F tp); ("fast_path_pct", F fastpct) ]))
          rows;
        let overall = Float.max overall1 overall2 in
        pf "%-12s %-6s %12.0f\n%!" name "all" overall;
        (name, List.map fst rows, overall, certs1))
      systems
  in
  let tps_of name =
    let _, tps, overall, _ =
      List.find (fun (nm, _, _, _) -> nm = name) measured
    in
    (tps, overall)
  in
  let adaptive_tps, adaptive_overall = tps_of "adaptive" in
  let static_overalls =
    List.filter_map
      (fun (nm, _, overall, _) -> if nm = "adaptive" then None else Some overall)
      measured
  in
  let worst_static = List.fold_left Float.min infinity static_overalls in
  (* per phase, adaptive against the best static for that phase *)
  let best_static_per_phase =
    List.init phases (fun i ->
        List.fold_left
          (fun best (nm, tps, _, _) ->
            if nm = "adaptive" then best else Float.max best (List.nth tps i))
          0.0 measured)
  in
  let min_phase_ratio =
    List.fold_left2
      (fun acc a b -> Float.min acc (a /. b))
      infinity adaptive_tps best_static_per_phase
  in
  let overall_vs_worst = adaptive_overall /. worst_static in
  let _, _, _, adaptive_certs = List.hd measured in
  let cert_identical =
    List.for_all
      (fun (_, _, _, certs) -> certs = adaptive_certs)
      measured
  in
  if not cert_identical then
    failwith "adaptive: certificates diverged from the static replay";
  pf
    "  adaptive vs best static (worst phase): %.2fx | vs worst static \
     overall: %.2fx | certs identical: %b\n%!"
    min_phase_ratio overall_vs_worst cert_identical;
  Results.(record "adaptive"
    [ ("system", S "summary");
      ("min_phase_ratio_vs_best_static", F min_phase_ratio);
      ("overall_ratio_vs_worst_static", F overall_vs_worst) ]);
  let path = "BENCH_adaptive.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"figure\": \"adaptive\",\n  \"records\": %d,\n  \"phases\": %d,\n  \
     \"epochs_per_phase\": %d,\n  \"ops_per_epoch\": %d,\n  \
     \"cert_identical\": %b,\n  \
     \"adaptive_vs_best_static_min_phase_ratio\": %.4f,\n  \
     \"adaptive_vs_worst_static_overall_ratio\": %.4f,\n  \"rows\": [\n%s\n  \
     ]\n}\n"
    n phases epochs_per_phase ops_per_epoch cert_identical min_phase_ratio
    overall_vs_worst
    (String.concat ",\n"
       (List.concat_map
          (fun (nm, tps, overall, _) ->
            List.mapi
              (fun i tp ->
                Printf.sprintf
                  "    {\"system\": \"%s\", \"phase\": %d, \"ops_per_s\": \
                   %.1f}"
                  nm i tp)
              tps
            @ [ Printf.sprintf
                  "    {\"system\": \"%s\", \"phase\": -1, \"ops_per_s\": \
                   %.1f}"
                  nm overall ])
          measured));
  close_out oc;
  pf "  wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let all_figs =
  [ "fig12"; "fig13a"; "fig13b"; "fig13cd"; "fig14a"; "fig14b"; "fig14c";
    "scale"; "vpause"; "concerto"; "ablations"; "coldtier"; "net"; "repl";
    "adaptive"; "wirealloc"; "obs"; "micro" ]

let run_bench only quick full =
  (* Reduce GC-induced variance: larger minor heap, and each measurement
     starts from a compacted major heap. *)
  Gc.set { (Gc.get ()) with minor_heap_size = 4 * 1024 * 1024 };
  let s =
    if quick then { div = 512; label = "1/512" }
    else { div = 64; label = "1/64" }
  in
  let selected = match only with [] -> all_figs | l -> l in
  pf "FastVer benchmark harness — scale %s of paper database sizes\n" s.label;
  pf "figures: %s\n%!" (String.concat ", " selected);
  let t0 = Unix.gettimeofday () in
  let run name f = if List.mem name selected then f () in
  run "fig12" (fun () -> fig12 s ~full);
  run "fig13a" (fun () -> fig13a s);
  run "fig13b" (fun () -> fig13b s);
  run "fig13cd" (fun () -> fig13cd s);
  run "fig14a" (fun () -> fig14a s);
  run "fig14b" (fun () -> fig14b s);
  run "fig14c" (fun () -> fig14c s);
  run "scale" (fun () -> fig_scale s);
  run "vpause" (fun () -> fig_vpause s);
  run "concerto" (fun () -> concerto s);
  run "ablations" (fun () -> ablations s);
  run "coldtier" fig_coldtier;
  run "net" fig_net;
  run "repl" fig_repl;
  run "adaptive" (fun () -> fig_adaptive s);
  run "wirealloc" fig_wire_alloc;
  run "obs" (fun () -> fig_obs s);
  run "micro" bechamel_micro;
  let results_path = Filename.concat "bench" (Filename.concat "results" "latest.json") in
  Results.write ~scale:s.label ~figs:selected results_path;
  let stamp =
    let tm = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ" (tm.tm_year + 1900)
      (tm.tm_mon + 1) tm.tm_mday tm.tm_hour tm.tm_min tm.tm_sec
  in
  Results.write_figure_archives
    ~dir:(Filename.concat "bench" "results")
    ~scale:s.label ~stamp;
  print_newline ();
  line ();
  pf "results JSON: %s\n" results_path;
  pf "done in %.1f minutes\n" ((Unix.gettimeofday () -. t0) /. 60.0)

let () =
  let open Cmdliner in
  let only =
    Arg.(value & opt_all (enum (List.map (fun f -> (f, f)) all_figs)) []
           & info [ "only" ] ~docv:"FIG" ~doc:"Run only this figure (repeatable).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Tiny scale for sanity checks.")
  in
  let full =
    Arg.(value & flag
           & info [ "full" ] ~doc:"Include the 128M-equivalent database tier.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench" ~doc:"Regenerate the paper's evaluation figures")
      Term.(const run_bench $ only $ quick $ full)
  in
  exit (Cmd.eval cmd)
