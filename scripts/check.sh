#!/bin/sh
# Full pre-merge check: build every target (library, CLI, bench harness,
# examples), then run the test suite. Any failure stops the script.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune build bench + examples + cli"
dune build bench/main.exe bin/fastver_cli.exe @examples/all 2>/dev/null \
  || dune build bench/main.exe bin/fastver_cli.exe examples

echo "== dune runtest"
# pin the property-test seed for reproducibility; override by exporting
# QCHECK_SEED, and reuse the printed value to replay a failure exactly
QCHECK_SEED=${QCHECK_SEED:-468041275}
export QCHECK_SEED
echo "  (QCheck seed: $QCHECK_SEED)"
dune runtest || { echo "runtest failed (QCHECK_SEED=$QCHECK_SEED)"; exit 1; }

echo "== crash round-trip (serve + kill -9 mid-load + recover)"
FV=_build/default/bin/fastver_cli.exe
WORK=$(mktemp -d)
trap 'kill -9 $SRV 2>/dev/null || true; rm -rf "$WORK"' EXIT
$FV serve --listen "unix:$WORK/sock" -n 2000 --batch 500 --enclave zero \
  --checkpoint-dir "$WORK/ckpt" &
SRV=$!
i=0
while [ ! -S "$WORK/sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "server never came up"; exit 1; }
  sleep 0.1
done
# drive load until at least one checkpoint generation has committed
$FV client-bench --connect "unix:$WORK/sock" --ops 3000 --clients 2 -n 2000
i=0
until ls "$WORK"/ckpt/ckpt-*/MANIFEST >/dev/null 2>&1; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "no checkpoint committed"; exit 1; }
  sleep 0.1
done
# more load in flight, then kill -9 — possibly mid-checkpoint
$FV client-bench --connect "unix:$WORK/sock" --ops 20000 --clients 2 -n 2000 &
BENCH=$!
sleep 0.3
kill -9 $SRV
wait $BENCH 2>/dev/null || true
# recovery must land on a committed generation and pass full verification
$FV recover --dir "$WORK/ckpt" --enclave zero

echo "== observability smoke (serve + client ops + stats --check)"
$FV serve --listen "unix:$WORK/obs.sock" -n 2000 --batch 0 --enclave zero &
OBS_SRV=$!
trap 'kill -9 $SRV $OBS_SRV 2>/dev/null || true; rm -rf "$WORK"' EXIT
i=0
while [ ! -S "$WORK/obs.sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "obs server never came up"; exit 1; }
  sleep 0.1
done
$FV client-bench --connect "unix:$WORK/obs.sock" --ops 2000 --clients 2 -n 2000
# reconciliation: served > 0, per-tier op counts sum to validated ops,
# one latency sample per served request — the CLI exits non-zero otherwise
$FV stats --connect "unix:$WORK/obs.sock" --check
# every metric documented in README's Observability section must be present
# in the live snapshot
$FV stats --connect "unix:$WORK/obs.sock" --format json > "$WORK/metrics.json"
sed -n '/<!-- metrics:begin -->/,/<!-- metrics:end -->/p' README.md \
  | grep -o 'fastver_[a-z_]*' | sort -u > "$WORK/documented"
[ -s "$WORK/documented" ] || { echo "README metric list not found"; exit 1; }
while read -r name; do
  grep -q "\"name\":\"$name\"" "$WORK/metrics.json" \
    || { echo "documented metric $name missing from live snapshot"; exit 1; }
done < "$WORK/documented"
echo "  $(wc -l < "$WORK/documented") documented metrics all present"
kill -9 $OBS_SRV 2>/dev/null || true

echo "== background verification under load (serve --background-verify)"
# small --batch so auto-verifies fire while client-bench traffic is in
# flight: scans run on background domains, the foreground keeps serving
$FV serve --listen "unix:$WORK/bg.sock" -n 2000 --batch 400 --enclave zero \
  --workers 4 --background-verify &
BG_SRV=$!
trap 'kill -9 $SRV $OBS_SRV $BG_SRV 2>/dev/null || true; rm -rf "$WORK"' EXIT
i=0
while [ ! -S "$WORK/bg.sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "bg server never came up"; exit 1; }
  sleep 0.1
done
# the bench completing with verified responses IS the non-zero foreground
# throughput: every op was served while scans were being dispatched
$FV client-bench --connect "unix:$WORK/bg.sock" --ops 6000 --clients 4 \
  --window 32 -n 2000
$FV stats --connect "unix:$WORK/bg.sock" --check
$FV stats --connect "unix:$WORK/bg.sock" --format json > "$WORK/bg-metrics.json"
VERIFIES=$(sed -n 's/.*"name":"fastver_verifies_total","labels":{[^}]*},"value":\([0-9]*\).*/\1/p' \
  "$WORK/bg-metrics.json")
[ "${VERIFIES:-0}" -ge 1 ] \
  || { echo "no verification fired during background-verify load"; exit 1; }
PAUSES=$(sed -n 's/.*"name":"fastver_verify_pause_seconds","labels":{[^}]*},"count":\([0-9]*\).*/\1/p' \
  "$WORK/bg-metrics.json")
[ "${PAUSES:-0}" -ge 1 ] \
  || { echo "verify pause histogram empty in background mode"; exit 1; }
echo "  $VERIFIES verifications during load, pause histogram count $PAUSES"
kill -9 $BG_SRV 2>/dev/null || true

echo "== multi-domain stress under verbose GC"
# the parallel suite (real Domain.spawn workers, parallel verification
# scans) and the net suite (executor pool, n_workers > 1) re-run with GC
# statistics printed at exit, so heap corruption or a runaway allocation
# under concurrency is caught here rather than in production
TEST=_build/default/test/test_main.exe
OCAMLRUNPARAM=v=0x400 $TEST test parallel > "$WORK/stress-parallel.log" 2>&1 \
  || { cat "$WORK/stress-parallel.log"; exit 1; }
OCAMLRUNPARAM=v=0x400 $TEST test net > "$WORK/stress-net.log" 2>&1 \
  || { cat "$WORK/stress-net.log"; exit 1; }
echo "  parallel + net suites clean under OCAMLRUNPARAM=v=0x400"

echo "== cold tier (tamper detection + bench regression gate)"
# the cold suite includes the three byte-flip tamper legs (record value,
# evict timestamp, sealed footer) and the larger-than-memory end-to-end run
$TEST test cold > "$WORK/cold.log" 2>&1 \
  || { cat "$WORK/cold.log"; exit 1; }
# crash legs: killed mid-segment-write and mid-compaction, recovery must
# land on the committed prefix
$TEST test crashsafe > "$WORK/cold-crash.log" 2>&1 \
  || { cat "$WORK/cold-crash.log"; exit 1; }
echo "  cold + crashsafe suites clean"
# two quick allocation-figure runs archive under bench/results/, then
# `bench diff` gates the newest against the previous at wirealloc's tight
# 10% tolerance (same-machine back-to-back runs must agree)
dune exec bench/main.exe -- --quick --only wirealloc > /dev/null
dune exec bench/main.exe -- --quick --only wirealloc > /dev/null
$FV bench diff --ci --figure wirealloc
# same gate for the scale figure (modelled scaling sweep; looser 35%
# tolerance — the measured row rides the machine's scheduler)
dune exec bench/main.exe -- --quick --only scale > /dev/null
dune exec bench/main.exe -- --quick --only scale > /dev/null
$FV bench diff --ci --figure scale
# cold-tier figure: disk-bound rows jitter more than CPU-bound ones, so
# the diff gate applies its direction-aware 35% tolerance per metric
dune exec bench/main.exe -- --quick --only coldtier > /dev/null
dune exec bench/main.exe -- --quick --only coldtier > /dev/null
$FV bench diff --ci --figure coldtier
# verification-pause figure: sub-millisecond pauses and max-latency ride
# scheduler noise hard on shared boxes, so this gate keeps the old 50%
# fixed tolerance as the band floor (the ±2 sd band applies when wider)
dune exec bench/main.exe -- --quick --only vpause > /dev/null
dune exec bench/main.exe -- --quick --only vpause > /dev/null
$FV bench diff --ci --threshold 0.5 --figure vpause
# adaptive-hierarchy figure: the run itself enforces the cert-identity and
# ratio acceptance floors (it fails hard on divergence), the diff gates
# throughput run-over-run
dune exec bench/main.exe -- --quick --only adaptive > /dev/null
dune exec bench/main.exe -- --quick --only adaptive > /dev/null
$FV bench diff --ci --figure adaptive

echo "== sharded serve round trip (2 executor domains, 4 verifier shards)"
$FV serve --listen "unix:$WORK/shard.sock" -n 2000 --batch 0 --enclave zero \
  --workers 2 --shards 4 &
SHARD_SRV=$!
trap 'kill -9 $SRV $OBS_SRV $SHARD_SRV 2>/dev/null || true; rm -rf "$WORK"' EXIT
i=0
while [ ! -S "$WORK/shard.sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "shard server never came up"; exit 1; }
  sleep 0.1
done
# routing honours the sealed shard boundaries: every op lands on its
# owner's executor, responses verify client-side, and the stats
# reconciliation must balance across all four partitions
$FV client-bench --connect "unix:$WORK/shard.sock" --ops 4000 --clients 4 \
  --window 32 -n 2000
$FV stats --connect "unix:$WORK/shard.sock" --check
kill -9 $SHARD_SRV 2>/dev/null || true

echo "== multi-domain serve round trip (executor pool, 4 workers)"
$FV serve --listen "unix:$WORK/pool.sock" -n 2000 --batch 0 --enclave zero \
  --workers 4 &
POOL_SRV=$!
trap 'kill -9 $SRV $OBS_SRV $SHARD_SRV $POOL_SRV 2>/dev/null || true; rm -rf "$WORK"' EXIT
i=0
while [ ! -S "$WORK/pool.sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "pool server never came up"; exit 1; }
  sleep 0.1
done
# parallel pipelined clients through the executor pool, every response
# signature verified client-side, then the reconciliation checks again
$FV client-bench --connect "unix:$WORK/pool.sock" --ops 4000 --clients 4 \
  --window 32 -n 2000
$FV stats --connect "unix:$WORK/pool.sock" --check
kill -9 $POOL_SRV 2>/dev/null || true

echo "== replication (primary + 2 followers, kill -9 failover, checkpoint rejoin)"
# primary with a replication listener; --batch so epochs seal (and
# checkpoints commit) while client traffic is in flight
$FV serve --listen "unix:$WORK/rp.sock" --replication-listen "unix:$WORK/repl.sock" \
  -n 2000 --batch 400 --enclave zero --checkpoint-dir "$WORK/rckpt" &
RP_SRV=$!
F1=; F2=; F3=; RP2_SRV=
trap 'kill -9 $SRV $OBS_SRV $SHARD_SRV $POOL_SRV $RP_SRV $F1 $F2 $F3 $RP2_SRV 2>/dev/null || true; rm -rf "$WORK"' EXIT
i=0
while [ ! -S "$WORK/repl.sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "replication listener never came up"; exit 1; }
  sleep 0.1
done
$FV follow --primary "unix:$WORK/repl.sock" --listen "unix:$WORK/f1.sock" \
  -n 2000 --dir "$WORK/f1" > "$WORK/f1.log" 2>&1 &
F1=$!
$FV follow --primary "unix:$WORK/repl.sock" --listen "unix:$WORK/f2.sock" \
  -n 2000 --dir "$WORK/f2" > "$WORK/f2.log" 2>&1 &
F2=$!
for s in f1 f2; do
  i=0
  while [ ! -S "$WORK/$s.sock" ]; do
    i=$((i + 1)); [ $i -gt 100 ] && { echo "follower $s never came up"; exit 1; }
    sleep 0.1
  done
done
# write traffic on the primary seals epochs the followers must replay,
# verify at each boundary, and mirror into their local stores
$FV client-bench --connect "unix:$WORK/rp.sock" --ops 4000 --clients 2 -n 2000
i=0
until ls "$WORK"/rckpt/ckpt-*/MANIFEST >/dev/null 2>&1; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "primary committed no checkpoint"; exit 1; }
  sleep 0.1
done
# verified reads against both followers: the client re-checks every
# receipt MAC, so a follower serving tampered state would fail here
$FV client-bench --connect "unix:$WORK/f1.sock" --ops 2000 --clients 2 \
  -n 2000 --put-ratio 0
$FV client-bench --connect "unix:$WORK/f2.sock" --ops 1000 --clients 1 \
  -n 2000 --put-ratio 0
# reconciliation on every node: primary and both followers
$FV stats --connect "unix:$WORK/rp.sock" --check
$FV stats --connect "unix:$WORK/f1.sock" --check
$FV stats --connect "unix:$WORK/f2.sock" --check
# kill -9 the primary: already-verified follower state keeps serving
kill -9 $RP_SRV
$FV client-bench --connect "unix:$WORK/f1.sock" --ops 1000 --clients 1 \
  -n 2000 --put-ratio 0
echo "  follower survived primary kill -9, reads still verify"
# restart the primary from its checkpoint directory on the same
# replication address; a follower joining now predates the retained
# stream and must catch up via checkpoint fetch, not a fresh load
$FV serve --listen "unix:$WORK/rp2.sock" --replication-listen "unix:$WORK/repl.sock" \
  -n 2000 --batch 400 --enclave zero --checkpoint-dir "$WORK/rckpt" &
RP2_SRV=$!
i=0
while [ ! -S "$WORK/rp2.sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "restarted primary never came up"; exit 1; }
  sleep 0.1
done
$FV follow --primary "unix:$WORK/repl.sock" --listen "unix:$WORK/f3.sock" \
  -n 2000 --dir "$WORK/f3" > "$WORK/f3.log" 2>&1 &
F3=$!
i=0
while [ ! -S "$WORK/f3.sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "rejoining follower never came up"; exit 1; }
  sleep 0.1
done
# the rejoining follower's state dir must hold a fetched generation, and
# its log must show the checkpoint path rather than the fresh-load path
ls "$WORK"/f3/ckpt-*/MANIFEST >/dev/null 2>&1 \
  || { echo "rejoining follower did not fetch a checkpoint"; cat "$WORK/f3.log"; exit 1; }
if grep -q "fresh follower" "$WORK/f3.log"; then
  echo "rejoining follower took the fresh-load path"; exit 1
fi
# the recovered verifier remembers client put nonces from before the
# crash, so the post-restart bench must use a fresh client-id range
$FV client-bench --connect "unix:$WORK/rp2.sock" --ops 1000 --clients 1 \
  -n 2000 --first-client 10
$FV client-bench --connect "unix:$WORK/f3.sock" --ops 1000 --clients 1 \
  -n 2000 --put-ratio 0
$FV stats --connect "unix:$WORK/rp2.sock" --check
$FV stats --connect "unix:$WORK/f3.sock" --check
echo "  rejoining follower caught up from checkpoint, all nodes reconcile"
kill -9 $F1 $F2 $F3 $RP2_SRV 2>/dev/null || true

echo "== election failover (kill -9 primary, candidate promotes, writes move)"
# primary plus two electable candidates with crossed peer lists; e1 carries
# the higher priority so the election outcome is deterministic
$FV serve --listen "unix:$WORK/ep.sock" --replication-listen "unix:$WORK/erepl.sock" \
  -n 2000 --batch 400 --enclave zero --checkpoint-dir "$WORK/eckpt" > "$WORK/ep.log" 2>&1 &
EP_SRV=$!
E1=; E2=; EP2_SRV=
trap 'kill -9 $SRV $OBS_SRV $SHARD_SRV $POOL_SRV $RP_SRV $F1 $F2 $F3 $RP2_SRV $EP_SRV $E1 $E2 $EP2_SRV 2>/dev/null || true; rm -rf "$WORK"' EXIT
i=0
while [ ! -S "$WORK/erepl.sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "election primary never came up"; exit 1; }
  sleep 0.1
done
$FV follow --primary "unix:$WORK/erepl.sock" --listen "unix:$WORK/e1.sock" \
  --electable "unix:$WORK/e1r.sock" --peer "unix:$WORK/e2r.sock" --priority 2 \
  -n 2000 --dir "$WORK/e1" > "$WORK/e1.log" 2>&1 &
E1=$!
$FV follow --primary "unix:$WORK/erepl.sock" --listen "unix:$WORK/e2.sock" \
  --electable "unix:$WORK/e2r.sock" --peer "unix:$WORK/e1r.sock" --priority 1 \
  -n 2000 --dir "$WORK/e2" > "$WORK/e2.log" 2>&1 &
E2=$!
for s in e1 e2; do
  i=0
  while [ ! -S "$WORK/$s.sock" ]; do
    i=$((i + 1)); [ $i -gt 100 ] && { echo "candidate $s never came up"; exit 1; }
    sleep 0.1
  done
done
# seal verified epochs on the primary so the candidates hold certified
# state to elect over
$FV client-bench --connect "unix:$WORK/ep.sock" --ops 3000 --clients 2 -n 2000
# verified reads against both candidates before the failover
$FV client-bench --connect "unix:$WORK/e1.sock" --ops 500 --clients 1 \
  -n 2000 --put-ratio 0
$FV client-bench --connect "unix:$WORK/e2.sock" --ops 500 --clients 1 \
  -n 2000 --put-ratio 0
$FV stats --connect "unix:$WORK/e1.sock" --check
$FV stats --connect "unix:$WORK/e2.sock" --check
# kill -9 the primary: the higher-priority candidate must win the election
# and promote in place; the loser re-homes onto the winner
kill -9 $EP_SRV
i=0
until grep -q "elected: promoted to primary" "$WORK/e1.log"; do
  i=$((i + 1)); [ $i -gt 200 ] && { echo "no candidate promoted after primary kill -9"; cat "$WORK/e1.log" "$WORK/e2.log"; exit 1; }
  sleep 0.1
done
i=0
until grep -q "re-homing to" "$WORK/e2.log"; do
  i=$((i + 1)); [ $i -gt 200 ] && { echo "losing candidate never re-homed onto the winner"; cat "$WORK/e2.log"; exit 1; }
  sleep 0.1
done
# writes now land on the promoted node through the ordinary verified
# client path (fresh client-id range), and replicate to the loser
$FV client-bench --connect "unix:$WORK/e1.sock" --ops 2000 --clients 2 \
  -n 2000 --first-client 30
$FV client-bench --connect "unix:$WORK/e2.sock" --ops 1000 --clients 1 \
  -n 2000 --put-ratio 0
$FV stats --connect "unix:$WORK/e1.sock" --check
$FV stats --connect "unix:$WORK/e2.sock" --check
if grep -q "INTEGRITY VIOLATION" "$WORK/e2.log"; then
  echo "loser halted on the promoted stream"; cat "$WORK/e2.log"; exit 1
fi
echo "  failover complete: writes verify against the promoted candidate"
# the promoted node must commit a checkpoint so the fenced ex-primary can
# re-bootstrap through the checkpoint-fetch path
i=0
until ls "$WORK"/e1/ckpt-*/MANIFEST >/dev/null 2>&1; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "promoted candidate committed no checkpoint"; exit 1; }
  sleep 0.1
done
# restart the deposed primary with the candidates as probe peers: it must
# discover the higher fencing term and demote itself to a follower
$FV serve --listen "unix:$WORK/ep2.sock" --replication-listen "unix:$WORK/erepl.sock" \
  --repl-peer "unix:$WORK/e1r.sock" --repl-peer "unix:$WORK/e2r.sock" \
  -n 2000 --batch 400 --enclave zero --checkpoint-dir "$WORK/eckpt" > "$WORK/ep2.log" 2>&1 &
EP2_SRV=$!
i=0
until grep -q "demoted: serving verified reads" "$WORK/ep2.log"; do
  i=$((i + 1)); [ $i -gt 200 ] && { echo "rejoining ex-primary never demoted"; cat "$WORK/ep2.log"; exit 1; }
  sleep 0.1
done
i=0
while [ ! -S "$WORK/ep2.sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "demoted follower never came up"; exit 1; }
  sleep 0.1
done
# the demoted node serves verified reads of the post-failover history
$FV client-bench --connect "unix:$WORK/ep2.sock" --ops 1000 --clients 1 \
  -n 2000 --put-ratio 0
$FV stats --connect "unix:$WORK/ep2.sock" --check
echo "  deposed primary rejoined as a follower, every node reconciles"
kill -9 $E1 $E2 $EP2_SRV 2>/dev/null || true

echo "== adaptive hierarchy under live traffic (serve --adaptive)"
# small --batch so epoch seals (and controller rounds) fire mid-traffic
$FV serve --listen "unix:$WORK/ad.sock" -n 2000 --batch 400 --enclave zero \
  --adaptive &
AD_SRV=$!
trap 'kill -9 $SRV $OBS_SRV $SHARD_SRV $POOL_SRV $RP_SRV $F1 $F2 $F3 $RP2_SRV $EP_SRV $E1 $E2 $EP2_SRV $AD_SRV 2>/dev/null || true; rm -rf "$WORK"' EXIT
i=0
while [ ! -S "$WORK/ad.sock" ]; do
  i=$((i + 1)); [ $i -gt 100 ] && { echo "adaptive server never came up"; exit 1; }
  sleep 0.1
done
# rotating workload: three bursts with different zipf seeds and read/write
# mixes, so the hot set and the tier pressure both shift under the
# controller while certificates keep sealing
$FV client-bench --connect "unix:$WORK/ad.sock" --ops 2000 --clients 2 \
  -n 2000 --seed 1
$FV client-bench --connect "unix:$WORK/ad.sock" --ops 2000 --clients 2 \
  -n 2000 --seed 99 --put-ratio 0.8 --first-client 10
$FV client-bench --connect "unix:$WORK/ad.sock" --ops 2000 --clients 2 \
  -n 2000 --seed 7 --put-ratio 0.1 --first-client 20
# reconciliation must still balance with the controller moving tiers
$FV stats --connect "unix:$WORK/ad.sock" --check
$FV stats --connect "unix:$WORK/ad.sock" --format json > "$WORK/ad-metrics.json"
RETUNES=$(sed -n 's/.*"name":"fastver_adaptive_retunes_total","labels":{[^}]*},"value":\([0-9]*\).*/\1/p' \
  "$WORK/ad-metrics.json")
[ "${RETUNES:-0}" -ge 1 ] \
  || { echo "no controller rounds fired under --adaptive load"; exit 1; }
echo "  $RETUNES controller rounds during rotating load, stats reconcile"
kill -9 $AD_SRV 2>/dev/null || true

echo "OK"
