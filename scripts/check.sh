#!/bin/sh
# Full pre-merge check: build every target (library, CLI, bench harness,
# examples), then run the test suite. Any failure stops the script.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune build bench + examples + cli"
dune build bench/main.exe bin/fastver_cli.exe @examples/all 2>/dev/null \
  || dune build bench/main.exe bin/fastver_cli.exe examples

echo "== dune runtest"
dune runtest

echo "OK"
