type t = float

let start () = Unix.gettimeofday ()
let elapsed_s t = Unix.gettimeofday () -. t
let finish t h = Histogram.record_span h (elapsed_s t)

let time h f =
  let t = start () in
  Fun.protect ~finally:(fun () -> finish t h) f
