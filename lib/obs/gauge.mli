(** Instantaneous float value (queue depth, resident records, ...).

    Backed by an [Atomic.t] holding an immutable float box, so concurrent
    [set]/[add] never tear a word. *)

type t

val create : unit -> t
val set : t -> float -> unit
val add : t -> float -> unit
val get : t -> float
