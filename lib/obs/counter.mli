(** Monotone event counter.

    A single [int Atomic.t]: increments are lock-free and safe from any
    domain; reads are wait-free and may be taken concurrently with writers
    (each read observes some committed prefix of the increments). *)

type t

val create : unit -> t
val incr : t -> unit
val add : t -> int -> unit
val get : t -> int

val set : t -> int -> unit
(** Overwrite the count. For tests and for seeding recovered state — not a
    serving-path operation. *)
