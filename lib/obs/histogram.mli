(** Log-bucketed histogram of non-negative integer samples (HDR-style).

    The value range [0 .. 2^47-1] is covered by a fixed array of buckets:
    values below [2^sub_bits] get exact unit buckets, and every further
    power-of-two octave is split into [2^sub_bits] equal sub-buckets. With
    [sub_bits = 5] a bucket spans at most [1/32] of its lower bound, so any
    quantile estimated from bucket boundaries is within relative error
    [1/32] of the exact sample (plus 1 for integer rounding). Samples
    outside the range are clamped.

    [record] is lock-free (one [fetch_and_add] on the bucket, plus atomic
    sum/min/max maintenance) and safe from any domain. Snapshots are plain
    immutable values: mergeable, and usable long after the live histogram
    moved on. A snapshot taken concurrently with writers is not a
    linearizable cut, but every sample lands in exactly one bucket, so
    [count] / [sum] never double-count. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one sample (clamped to [0 .. max_value]). *)

val record_span : t -> float -> unit
(** Record a duration in seconds as integer nanoseconds. *)

(** {2 Snapshots} *)

type snapshot = {
  counts : int array;  (** per-bucket sample counts, [n_buckets] long *)
  count : int;  (** total samples (sum of [counts]) *)
  sum : int;  (** sum of recorded (clamped) values *)
  min : int;  (** smallest sample, [0] when empty *)
  max : int;  (** largest sample, [0] when empty *)
}

val snapshot : t -> snapshot
val empty : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise union: commutative and associative, [empty] is the unit. *)

val quantile : snapshot -> float -> float
(** [quantile s q] for [q] in [0,1]: an upper bound on the sample at rank
    [ceil (q * count)], exact to within one bucket width ([<= v/32 + 1] above
    the true value [v]). [0.] when the snapshot is empty. *)

val mean : snapshot -> float

(** {2 Bucket geometry (exposed for tests and documentation)} *)

val sub_bits : int
val n_buckets : int
val max_value : int
val bucket_of_value : int -> int
val bucket_bounds : int -> int * int
(** [bucket_bounds i] is the inclusive [(lo, hi)] value range of bucket [i]. *)
