let sub_bits = 5
let sub_count = 1 lsl sub_bits (* linear sub-buckets per octave *)
let max_bits = 47 (* ~1.6 days in nanoseconds *)
let max_value = (1 lsl max_bits) - 1
let n_octaves = max_bits - sub_bits + 1
let n_buckets = n_octaves lsl sub_bits

let msb_pos v =
  (* index of the highest set bit; [v > 0] *)
  let p = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin p := !p + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin p := !p + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin p := !p + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin p := !p + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin p := !p + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then incr p;
  !p

let bucket_of_value v =
  if v < sub_count then v
  else
    let msb = msb_pos v in
    let octave = msb - sub_bits + 1 in
    let sub = (v lsr (msb - sub_bits)) land (sub_count - 1) in
    (octave lsl sub_bits) + sub

let bucket_bounds i =
  if i < sub_count then (i, i)
  else
    let octave = i lsr sub_bits and sub = i land (sub_count - 1) in
    let scale = octave - 1 in
    let lo = (sub_count + sub) lsl scale in
    (lo, lo + (1 lsl scale) - 1)

type t = {
  buckets : int Atomic.t array;
  sum : int Atomic.t;
  min : int Atomic.t;
  max : int Atomic.t;
}

let create () =
  {
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    sum = Atomic.make 0;
    min = Atomic.make max_int;
    max = Atomic.make min_int;
  }

let rec update_extreme better a v =
  let cur = Atomic.get a in
  if better v cur && not (Atomic.compare_and_set a cur v) then
    update_extreme better a v

let record t v =
  let v = if v < 0 then 0 else if v > max_value then max_value else v in
  ignore (Atomic.fetch_and_add t.buckets.(bucket_of_value v) 1);
  ignore (Atomic.fetch_and_add t.sum v);
  update_extreme ( < ) t.min v;
  update_extreme ( > ) t.max v

let record_span t seconds = record t (int_of_float (seconds *. 1e9))

type snapshot = {
  counts : int array;
  count : int;
  sum : int;
  min : int;
  max : int;
}

let empty =
  { counts = Array.make n_buckets 0; count = 0; sum = 0; min = 0; max = 0 }

let snapshot t =
  let counts = Array.map Atomic.get t.buckets in
  let count = Array.fold_left ( + ) 0 counts in
  if count = 0 then empty
  else
    {
      counts;
      count;
      sum = Atomic.get t.sum;
      min = Atomic.get t.min;
      max = Atomic.get t.max;
    }

let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    {
      counts = Array.init n_buckets (fun i -> a.counts.(i) + b.counts.(i));
      count = a.count + b.count;
      sum = a.sum + b.sum;
      min = min a.min b.min;
      max = max a.max b.max;
    }

let quantile s q =
  if s.count = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int s.count)) in
      if r < 1 then 1 else if r > s.count then s.count else r
    in
    let est = ref 0. and cum = ref 0 and i = ref 0 in
    (try
       while true do
         cum := !cum + s.counts.(!i);
         if !cum >= rank then begin
           let _, hi = bucket_bounds !i in
           (* never report past the largest observed sample *)
           est := float_of_int (min hi s.max);
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    !est
  end

let mean s = if s.count = 0 then 0. else float_of_int s.sum /. float_of_int s.count
