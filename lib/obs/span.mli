(** Lightweight stage timing: a wall-clock start mark whose elapsed time
    lands in a {!Histogram}. *)

type t

val start : unit -> t
val elapsed_s : t -> float

val finish : t -> Histogram.t -> unit
(** Record the elapsed time (as nanoseconds) into the histogram. *)

val time : Histogram.t -> (unit -> 'a) -> 'a
(** Run the thunk and record its duration; records even when the thunk
    raises (the stage still happened). *)
