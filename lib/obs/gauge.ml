type t = float Atomic.t

let create () = Atomic.make 0.0
let set t v = Atomic.set t v
let get t = Atomic.get t

let rec add t d =
  let cur = Atomic.get t in
  if not (Atomic.compare_and_set t cur (cur +. d)) then add t d
