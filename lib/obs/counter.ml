type t = int Atomic.t

let create () = Atomic.make 0
let incr t = ignore (Atomic.fetch_and_add t 1)
let add t n = ignore (Atomic.fetch_and_add t n)
let get t = Atomic.get t
let set t n = Atomic.set t n
