type kind =
  | K_counter of Counter.t
  | K_counter_fn of (unit -> int) ref
  | K_gauge of Gauge.t
  | K_gauge_fn of (unit -> float) ref
  | K_histogram of Histogram.t * float

type metric = {
  name : string;
  labels : (string * string) list; (* sorted by label key *)
  help : string;
  kind : kind;
}

type t = { lock : Mutex.t; mutable metrics : metric list (* newest first *) }

let create () = { lock = Mutex.create (); metrics = [] }

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t name labels =
  List.find_opt (fun m -> m.name = name && m.labels = labels) t.metrics

let kind_name = function
  | K_counter _ | K_counter_fn _ -> "counter"
  | K_gauge _ | K_gauge_fn _ -> "gauge"
  | K_histogram _ -> "histogram"

let register t ?(labels = []) ?(help = "") name fresh =
  let labels = norm_labels labels in
  with_lock t @@ fun () ->
  match find t name labels with
  | Some m -> m.kind
  | None ->
      let kind = fresh () in
      t.metrics <- { name; labels; help; kind } :: t.metrics;
      kind

let mismatch name existing =
  invalid_arg
    (Printf.sprintf "Registry: %s already registered as a %s" name
       (kind_name existing))

let counter t ?labels ?help name =
  match register t ?labels ?help name (fun () -> K_counter (Counter.create ()))
  with
  | K_counter c -> c
  | k -> mismatch name k

let gauge t ?labels ?help name =
  match register t ?labels ?help name (fun () -> K_gauge (Gauge.create ())) with
  | K_gauge g -> g
  | k -> mismatch name k

let histogram t ?labels ?help ?(scale = 1.0) name =
  match
    register t ?labels ?help name (fun () ->
        K_histogram (Histogram.create (), scale))
  with
  | K_histogram (h, _) -> h
  | k -> mismatch name k

let counter_fn t ?labels ?help name f =
  match
    register t ?labels ?help name (fun () -> K_counter_fn (ref f))
  with
  | K_counter_fn r -> r := f
  | k -> mismatch name k

let gauge_fn t ?labels ?help name f =
  match register t ?labels ?help name (fun () -> K_gauge_fn (ref f)) with
  | K_gauge_fn r -> r := f
  | k -> mismatch name k

(* -- reading ------------------------------------------------------------ *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Histogram.snapshot * float

let sample = function
  | K_counter c -> Counter_v (Counter.get c)
  | K_counter_fn f -> Counter_v (!f ())
  | K_gauge g -> Gauge_v (Gauge.get g)
  | K_gauge_fn f -> Gauge_v (!f ())
  | K_histogram (h, scale) -> Histogram_v (Histogram.snapshot h, scale)

let sorted t =
  let ms = with_lock t (fun () -> t.metrics) in
  List.sort
    (fun a b ->
      match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
    ms

let dump t = List.map (fun m -> (m.name, m.labels, sample m.kind)) (sorted t)

(* -- renderers ---------------------------------------------------------- *)

let quantiles = [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99); ("0.999", 0.999) ]

let json_float f =
  if Float.is_finite f then
    let s = Printf.sprintf "%.9g" f in
    (* "%.9g" never emits a bare leading dot, and its exponents parse as
       JSON numbers *)
    s
  else "0"

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) kvs)
      ^ "}"

let to_prometheus t =
  let b = Buffer.create 4096 in
  let last_header = ref "" in
  List.iter
    (fun m ->
      if m.name <> !last_header then begin
        last_header := m.name;
        if m.help <> "" then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" m.name m.help);
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" m.name
             (match m.kind with
             | K_counter _ | K_counter_fn _ -> "counter"
             | K_gauge _ | K_gauge_fn _ -> "gauge"
             | K_histogram _ -> "summary"))
      end;
      match sample m.kind with
      | Counter_v n ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" m.name (prom_labels m.labels) n)
      | Gauge_v v ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" m.name (prom_labels m.labels)
               (json_float v))
      | Histogram_v (s, scale) ->
          List.iter
            (fun (qname, q) ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" m.name
                   (prom_labels ~extra:("quantile", qname) m.labels)
                   (json_float (Histogram.quantile s q *. scale))))
            quantiles;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" m.name (prom_labels m.labels)
               (json_float (float_of_int s.Histogram.sum *. scale)));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" m.name (prom_labels m.labels)
               s.Histogram.count))
    (sorted t);
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
         labels)
  ^ "}"

let to_json t =
  let counters = Buffer.create 1024
  and gauges = Buffer.create 1024
  and hists = Buffer.create 1024 in
  let addf buf fmt =
    if Buffer.length buf > 0 then Buffer.add_char buf ',';
    Printf.ksprintf (Buffer.add_string buf) fmt
  in
  List.iter
    (fun m ->
      let name = escape m.name and labels = json_labels m.labels in
      match sample m.kind with
      | Counter_v n ->
          addf counters "{\"name\":\"%s\",\"labels\":%s,\"value\":%d}" name
            labels n
      | Gauge_v v ->
          addf gauges "{\"name\":\"%s\",\"labels\":%s,\"value\":%s}" name labels
            (json_float v)
      | Histogram_v (s, scale) ->
          let sc x = json_float (x *. scale) in
          addf hists
            "{\"name\":\"%s\",\"labels\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"p999\":%s}"
            name labels s.Histogram.count
            (sc (float_of_int s.Histogram.sum))
            (sc (float_of_int s.Histogram.min))
            (sc (float_of_int s.Histogram.max))
            (sc (Histogram.mean s))
            (sc (Histogram.quantile s 0.5))
            (sc (Histogram.quantile s 0.9))
            (sc (Histogram.quantile s 0.99))
            (sc (Histogram.quantile s 0.999)))
    (sorted t);
  Printf.sprintf "{\"counters\":[%s],\"gauges\":[%s],\"histograms\":[%s]}"
    (Buffer.contents counters) (Buffer.contents gauges) (Buffer.contents hists)
