(** Named metric registry.

    Metrics are identified by [(name, labels)]; registering the same
    identity twice returns the first handle (so layers can share one
    registry without coordinating creation order). [_fn] variants register a
    callback sampled at render time — the cheap way to surface an existing
    subsystem's own counters without double-accounting.

    Registration takes a lock; recording through the returned handles is
    lock-free ({!Counter}, {!Gauge}, {!Histogram}). Rendering snapshots
    every metric at call time, in [(name, labels)] order, so output is
    deterministic for a quiesced system. *)

type t

val create : unit -> t

val counter :
  t -> ?labels:(string * string) list -> ?help:string -> string -> Counter.t

val gauge :
  t -> ?labels:(string * string) list -> ?help:string -> string -> Gauge.t

val histogram :
  t ->
  ?labels:(string * string) list ->
  ?help:string ->
  ?scale:float ->
  string ->
  Histogram.t
(** [scale] multiplies rendered values (sum, mean, quantiles, min, max);
    use [1e-9] for histograms recorded in nanoseconds but exposed in
    seconds. Sample counts are never scaled. *)

val counter_fn :
  t -> ?labels:(string * string) list -> ?help:string -> string ->
  (unit -> int) -> unit
(** Callback-backed counter; re-registering the same identity replaces the
    callback (e.g. a restarted server on the same registry). *)

val gauge_fn :
  t -> ?labels:(string * string) list -> ?help:string -> string ->
  (unit -> float) -> unit

(** {2 Reading} *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Histogram.snapshot * float  (** snapshot, render scale *)

val dump : t -> (string * (string * string) list * value) list
(** Every metric, sampled now, sorted by [(name, labels)]. *)

val to_prometheus : t -> string
(** Prometheus text exposition. Histograms render as summaries
    ([{quantile="0.5"}] ... plus [_sum] / [_count]). *)

val to_json : t -> string
(** Compact single-line JSON snapshot:
    [{"counters":[{"name":..,"labels":{..},"value":N}],
      "gauges":[..],
      "histograms":[{"name":..,"labels":{..},"count":N,"sum":X,"min":X,
                     "max":X,"mean":X,"p50":X,"p90":X,"p99":X,"p999":X}]}]
    Field order is fixed, so the output is greppable by exact prefix. *)
