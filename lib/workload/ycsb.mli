(** YCSB workload generation (§8, "Benchmark").

    Keys are 8-byte integers in [0 .. db_size-1] (the paper pads them to 32
    bytes; {!Fastver_merkle.Key.of_int64} plays that role downstream). Values
    are 8-byte strings. *)

type op =
  | Read of int64
  | Update of int64 * string
  | Scan of int64 * int  (** start key, length *)

type distribution = Zipfian of float  (** theta; 0.0 = uniform *)
  | Sequential

type spec = {
  read_prop : float;
  update_prop : float;
  scan_prop : float;
  scan_len : int;
  dist : distribution;
}

val workload_a : spec
(** 50% reads / 50% updates, zipf 0.9 — the paper's main workload. *)

val workload_b : spec
(** 95% reads / 5% updates. *)

val workload_c : spec
(** Read-only. *)

val workload_e : spec
(** 95% scans (length 100) / 5% updates. *)

val with_dist : spec -> distribution -> spec

type t

val create : ?seed:int -> db_size:int -> spec -> t
val next : t -> op
val value_of_counter : int -> string
(** The deterministic 8-byte value written by the [n]-th update. *)

val initial_value : int64 -> string
(** The 8-byte value loaded for a key at database-load time. *)
