type op = Read of int64 | Update of int64 * string | Scan of int64 * int

type distribution = Zipfian of float | Sequential

type spec = {
  read_prop : float;
  update_prop : float;
  scan_prop : float;
  scan_len : int;
  dist : distribution;
}

let workload_a =
  {
    read_prop = 0.5;
    update_prop = 0.5;
    scan_prop = 0.0;
    scan_len = 0;
    dist = Zipfian 0.9;
  }

let workload_b = { workload_a with read_prop = 0.95; update_prop = 0.05 }
let workload_c = { workload_a with read_prop = 1.0; update_prop = 0.0 }

let workload_e =
  {
    read_prop = 0.0;
    update_prop = 0.05;
    scan_prop = 0.95;
    scan_len = 100;
    dist = Zipfian 0.9;
  }

let with_dist spec dist = { spec with dist }

type picker = Zipf of Zipf.t | Seq of int ref * int

type t = {
  spec : spec;
  picker : picker;
  state : Random.State.t;
  mutable counter : int;
}

let create ?(seed = 42) ~db_size spec =
  let state = Random.State.make [| seed |] in
  let picker =
    match spec.dist with
    | Zipfian theta -> Zipf (Zipf.create ~n:db_size ~theta state)
    | Sequential -> Seq (ref 0, db_size)
  in
  { spec; picker; state; counter = 0 }

let pick t =
  match t.picker with
  | Zipf z -> Int64.of_int (Zipf.next z)
  | Seq (r, n) ->
      let k = !r in
      r := (k + 1) mod n;
      Int64.of_int k

let value_of_counter n =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int (n + 0x5eed));
  Bytes.unsafe_to_string b

let initial_value k =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.logxor k 0x00ffeeddccbbaa99L);
  Bytes.unsafe_to_string b

let next t =
  let r = Random.State.float t.state 1.0 in
  let k = pick t in
  if r < t.spec.read_prop then Read k
  else if r < t.spec.read_prop +. t.spec.update_prop then begin
    t.counter <- t.counter + 1;
    Update (k, value_of_counter t.counter)
  end
  else Scan (k, t.spec.scan_len)
