type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2theta : float;
  scramble : bool;
  state : Random.State.t;
}

(* zeta(n, theta) is O(n); memoise per (n, theta) since benchmarks reuse a
   handful of configurations. *)
let zeta_cache : (int * float, float) Hashtbl.t = Hashtbl.create 16

let zeta n theta =
  match Hashtbl.find_opt zeta_cache (n, theta) with
  | Some z -> z
  | None ->
      let z = ref 0.0 in
      for i = 1 to n do
        z := !z +. (1.0 /. Float.pow (float_of_int i) theta)
      done;
      Hashtbl.replace zeta_cache (n, theta) !z;
      !z

let create ?(scramble = true) ~n ~theta state =
  if n < 1 then invalid_arg "Zipf.create: n";
  if theta < 0.0 || theta >= 1.0 then invalid_arg "Zipf.create: theta";
  let zetan = if theta = 0.0 then float_of_int n else zeta n theta in
  let zeta2theta = if theta = 0.0 then 2.0 else zeta 2 theta in
  {
    n;
    theta;
    alpha = (if theta = 0.0 then 0.0 else 1.0 /. (1.0 -. theta));
    zetan;
    eta =
      (if theta = 0.0 then 0.0
       else
         (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
         /. (1.0 -. (zeta2theta /. zetan)));
    zeta2theta;
    scramble;
    state;
  }

(* 64-bit mix (splitmix64 finaliser) for rank scrambling. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  let rank =
    if t.theta = 0.0 then Random.State.int t.state t.n
    else begin
      let u = Random.State.float t.state 1.0 in
      let uz = u *. t.zetan in
      if uz < 1.0 then 0
      else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
      else
        let v =
          float_of_int t.n
          *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
        in
        min (t.n - 1) (int_of_float v)
    end
  in
  if t.scramble then
    Int64.to_int
      (Int64.rem
         (Int64.logand (mix64 (Int64.of_int rank)) Int64.max_int)
         (Int64.of_int t.n))
  else rank

let n t = t.n
let theta t = t.theta
