(** Zipfian key-selection, following the YCSB generator (Gray et al.'s
    rejection-free method). Values are drawn from [0 .. n-1]; item 0 is the
    hottest unless scrambling is enabled, which hashes ranks across the
    keyspace like YCSB's scrambled-zipfian generator. [theta = 0] degenerates
    to the uniform distribution. *)

type t

val create : ?scramble:bool -> n:int -> theta:float -> Random.State.t -> t
val next : t -> int
val n : t -> int
val theta : t -> float
