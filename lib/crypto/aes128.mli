(** AES-128 block encryption (FIPS 197), implemented from scratch.

    Only encryption is provided; FastVer uses AES strictly as a PRF inside
    AES-CMAC for multiset hashing (the paper uses AES-NI for the same
    construction, following Concerto). *)

type key
(** An expanded 128-bit key schedule. *)

val expand_key : string -> key
(** @raise Invalid_argument unless the key is exactly 16 bytes. *)

val encrypt_block : key -> string -> string
(** [encrypt_block k block] encrypts one 16-byte block.
    @raise Invalid_argument unless [block] is 16 bytes. *)

val encrypt_block_into : key -> Bytes.t -> Bytes.t -> unit
(** [encrypt_block_into k src dst] is an allocation-light variant; [src] and
    [dst] are 16-byte buffers and may alias. *)
