(** BLAKE2b (RFC 7693), implemented from scratch.

    The paper uses Blake3 for Merkle hashing; BLAKE2b plays the same role here
    (a fast cryptographic tree hash) and has a published RFC test suite we
    validate against. Digest length is configurable between 1 and 64 bytes;
    FastVer uses 32-byte digests. *)

type ctx

val init : ?digest_size:int -> unit -> ctx
(** [init ~digest_size ()] starts an unkeyed hash. [digest_size] defaults to
    32. @raise Invalid_argument unless [1 <= digest_size <= 64]. *)

val update : ctx -> string -> unit
val finalize : ctx -> string

val digest : ?digest_size:int -> string -> string
(** One-shot hash. *)
