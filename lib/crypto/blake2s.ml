(* RFC 7693 BLAKE2s: 64-byte blocks, 32-bit words, 10 rounds. Words live in
   native ints masked to 32 bits; the working vector is one preallocated int
   array, so compression does not allocate. *)

let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

let sigma =
  [|
    [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 |];
    [| 14; 10; 4; 8; 9; 15; 13; 6; 1; 12; 0; 2; 11; 7; 5; 3 |];
    [| 11; 8; 12; 0; 5; 2; 15; 13; 10; 14; 3; 6; 7; 1; 9; 4 |];
    [| 7; 9; 3; 1; 13; 12; 11; 14; 2; 6; 5; 10; 4; 0; 15; 8 |];
    [| 9; 0; 5; 7; 2; 4; 10; 15; 14; 1; 11; 12; 6; 8; 3; 13 |];
    [| 2; 12; 6; 10; 0; 11; 8; 3; 4; 13; 7; 5; 15; 14; 1; 9 |];
    [| 12; 5; 1; 15; 14; 13; 4; 10; 0; 7; 6; 3; 9; 2; 8; 11 |];
    [| 13; 11; 7; 14; 12; 1; 3; 9; 5; 0; 15; 4; 8; 6; 2; 10 |];
    [| 6; 15; 14; 9; 11; 3; 0; 8; 12; 2; 13; 7; 1; 4; 10; 5 |];
    [| 10; 2; 8; 4; 7; 6; 1; 5; 15; 11; 9; 14; 3; 12; 13; 0 |];
  |]

type ctx = {
  h : int array; (* 8 chaining words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* byte counter; inputs < 2^62 bytes *)
  digest_size : int;
  m : int array; (* scratch: 16 message words *)
  v : int array; (* scratch: working vector *)
}

let mask32 = 0xffffffff
let ror32 x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let compress ctx ~last =
  let m = ctx.m and v = ctx.v and h = ctx.h in
  for i = 0 to 15 do
    m.(i) <- Int32.to_int (Bytes.get_int32_le ctx.buf (4 * i)) land mask32
  done;
  for i = 0 to 7 do
    v.(i) <- h.(i);
    v.(i + 8) <- iv.(i)
  done;
  v.(12) <- v.(12) lxor (ctx.total land mask32);
  v.(13) <- v.(13) lxor ((ctx.total lsr 32) land mask32);
  if last then v.(14) <- v.(14) lxor mask32;
  for r = 0 to 9 do
    let s = sigma.(r) in
    let g a b c d x y =
      v.(a) <- (v.(a) + v.(b) + x) land mask32;
      v.(d) <- ror32 (v.(d) lxor v.(a)) 16;
      v.(c) <- (v.(c) + v.(d)) land mask32;
      v.(b) <- ror32 (v.(b) lxor v.(c)) 12;
      v.(a) <- (v.(a) + v.(b) + y) land mask32;
      v.(d) <- ror32 (v.(d) lxor v.(a)) 8;
      v.(c) <- (v.(c) + v.(d)) land mask32;
      v.(b) <- ror32 (v.(b) lxor v.(c)) 7 [@@inline]
    in
    g 0 4 8 12 m.(s.(0)) m.(s.(1));
    g 1 5 9 13 m.(s.(2)) m.(s.(3));
    g 2 6 10 14 m.(s.(4)) m.(s.(5));
    g 3 7 11 15 m.(s.(6)) m.(s.(7));
    g 0 5 10 15 m.(s.(8)) m.(s.(9));
    g 1 6 11 12 m.(s.(10)) m.(s.(11));
    g 2 7 8 13 m.(s.(12)) m.(s.(13));
    g 3 4 9 14 m.(s.(14)) m.(s.(15))
  done;
  for i = 0 to 7 do
    h.(i) <- h.(i) lxor v.(i) lxor v.(i + 8)
  done

let init ?(digest_size = 32) () =
  if digest_size < 1 || digest_size > 32 then
    invalid_arg "Blake2s.init: digest_size out of range";
  let h = Array.copy iv in
  h.(0) <- h.(0) lxor (0x01010000 lor digest_size);
  {
    h;
    buf = Bytes.make 64 '\000';
    buf_len = 0;
    total = 0;
    digest_size;
    m = Array.make 16 0;
    v = Array.make 16 0;
  }

let update ctx s =
  let len = String.length s in
  let pos = ref 0 and remaining = ref len in
  while !remaining > 0 do
    if ctx.buf_len = 64 then begin
      ctx.total <- ctx.total + 64;
      compress ctx ~last:false;
      ctx.buf_len <- 0
    end;
    let take = min (64 - ctx.buf_len) !remaining in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take
  done

let finalize ctx =
  ctx.total <- ctx.total + ctx.buf_len;
  Bytes.fill ctx.buf ctx.buf_len (64 - ctx.buf_len) '\000';
  compress ctx ~last:true;
  let out = Bytes.create 32 in
  Array.iteri
    (fun i w -> Bytes.set_int32_le out (4 * i) (Int32.of_int w))
    ctx.h;
  Bytes.sub_string out 0 ctx.digest_size

let digest ?(digest_size = 32) msg =
  let ctx = init ~digest_size () in
  update ctx msg;
  finalize ctx
