(** BLAKE2s (RFC 7693), implemented from scratch.

    The 32-bit sibling of BLAKE2b. Its word operations fit OCaml's native
    ints, making compression allocation-free — so it plays the role of the
    paper's Blake3 (a fast 32-bit cryptographic hash) for Merkle hashing. *)

type ctx

val init : ?digest_size:int -> unit -> ctx
(** [digest_size] defaults to 32. @raise Invalid_argument unless
    [1 <= digest_size <= 32]. *)

val update : ctx -> string -> unit
val finalize : ctx -> string

val digest : ?digest_size:int -> string -> string
(** One-shot hash. *)
