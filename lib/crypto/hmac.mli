(** HMAC-SHA256 (RFC 2104).

    Used for client request signatures and verifier result signatures: the
    paper allows message authentication codes over a shared secret in place of
    digital signatures (§2.1, footnote 2). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag. Any key length. *)

val verify : key:string -> string -> tag:string -> bool
(** Constant-time tag check. *)
