let xor a b =
  if String.length a <> String.length b then
    invalid_arg "Bytes_util.xor: length mismatch";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let xor_into dst src =
  if Bytes.length dst <> String.length src then
    invalid_arg "Bytes_util.xor_into: length mismatch";
  for i = 0 to Bytes.length dst - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst i) lxor Char.code src.[i]))
  done

let equal_constant_time a b =
  let la = String.length a and lb = String.length b in
  let n = max la lb in
  let acc = ref (la lxor lb) in
  for i = 0 to n - 1 do
    let ca = if i < la then Char.code a.[i] else 0
    and cb = if i < lb then Char.code b.[i] else 0 in
    acc := !acc lor (ca lxor cb)
  done;
  !acc = 0

let hex_digits = "0123456789abcdef"

let to_hex s =
  let out = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let v = Char.code c in
      Bytes.set out (2 * i) hex_digits.[v lsr 4];
      Bytes.set out ((2 * i) + 1) hex_digits.[v land 0xf])
    s;
  Bytes.unsafe_to_string out

let digit_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bytes_util.of_hex: bad digit"

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytes_util.of_hex: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((digit_value s.[2 * i] lsl 4) lor digit_value s.[(2 * i) + 1]))

let get_u32_be s off = String.get_int32_be s off
let get_u64_le s off = String.get_int64_le s off
let get_u64_be s off = String.get_int64_be s off
let set_u32_be b off v = Bytes.set_int32_be b off v
let set_u64_le b off v = Bytes.set_int64_le b off v
let set_u64_be b off v = Bytes.set_int64_be b off v

let string_of_u64_le v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Bytes.unsafe_to_string b

let zeros n = String.make n '\000'
