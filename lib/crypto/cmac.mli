(** AES-CMAC (RFC 4493): a PRF / MAC over arbitrary-length messages.

    FastVer uses AES-CMAC as the pseudo-random function underlying the
    multiset hash, following Concerto. *)

type key

val of_aes_key : string -> key
(** Derive the CMAC subkeys from a 16-byte AES-128 key. *)

val mac : key -> string -> string
(** [mac k msg] is the 16-byte CMAC tag of [msg] (any length, including 0). *)
