(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for HMAC-based message authentication between clients and the
    verifier, and available as an alternative Merkle hash. *)

type ctx
(** Mutable hashing context for incremental use. *)

val init : unit -> ctx
val update : ctx -> string -> unit
val update_bytes : ctx -> Bytes.t -> int -> int -> unit

val finalize : ctx -> string
(** Returns the 32-byte digest. The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot convenience: [digest msg] is the 32-byte SHA-256 of [msg]. *)

val digest_size : int
(** 32. *)
