(** Byte-string helpers shared by the cryptographic primitives.

    All functions operate on immutable [string] values unless the name says
    otherwise; mutation is confined to freshly allocated [Bytes.t]. *)

val xor : string -> string -> string
(** [xor a b] is the byte-wise exclusive-or of two equal-length strings.
    @raise Invalid_argument if the lengths differ. *)

val xor_into : Bytes.t -> string -> unit
(** [xor_into dst src] xors [src] into [dst] in place.
    @raise Invalid_argument if the lengths differ. *)

val equal_constant_time : string -> string -> bool
(** Timing-safe equality: always scans the full length of both inputs. *)

val to_hex : string -> string
(** Lower-case hexadecimal rendering. *)

val of_hex : string -> string
(** Inverse of {!to_hex}. @raise Invalid_argument on odd length or bad digit. *)

val get_u32_be : string -> int -> int32
val get_u64_le : string -> int -> int64
val get_u64_be : string -> int -> int64
val set_u32_be : Bytes.t -> int -> int32 -> unit
val set_u64_le : Bytes.t -> int -> int64 -> unit
val set_u64_be : Bytes.t -> int -> int64 -> unit

val string_of_u64_le : int64 -> string
(** 8-byte little-endian encoding. *)

val zeros : int -> string
(** [zeros n] is a string of [n] NUL bytes. *)
