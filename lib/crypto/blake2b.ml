(* RFC 7693 BLAKE2b. 128-byte blocks, 64-bit words, 12 rounds. *)

let iv =
  [|
    0x6a09e667f3bcc908L; 0xbb67ae8584caa73bL; 0x3c6ef372fe94f82bL;
    0xa54ff53a5f1d36f1L; 0x510e527fade682d1L; 0x9b05688c2b3e6c1fL;
    0x1f83d9abfb41bd6bL; 0x5be0cd19137e2179L;
  |]

let sigma =
  [|
    [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 |];
    [| 14; 10; 4; 8; 9; 15; 13; 6; 1; 12; 0; 2; 11; 7; 5; 3 |];
    [| 11; 8; 12; 0; 5; 2; 15; 13; 10; 14; 3; 6; 7; 1; 9; 4 |];
    [| 7; 9; 3; 1; 13; 12; 11; 14; 2; 6; 5; 10; 4; 0; 15; 8 |];
    [| 9; 0; 5; 7; 2; 4; 10; 15; 14; 1; 11; 12; 6; 8; 3; 13 |];
    [| 2; 12; 6; 10; 0; 11; 8; 3; 4; 13; 7; 5; 15; 14; 1; 9 |];
    [| 12; 5; 1; 15; 14; 13; 4; 10; 0; 7; 6; 3; 9; 2; 8; 11 |];
    [| 13; 11; 7; 14; 12; 1; 3; 9; 5; 0; 15; 4; 8; 6; 2; 10 |];
    [| 6; 15; 14; 9; 11; 3; 0; 8; 12; 2; 13; 7; 1; 4; 10; 5 |];
    [| 10; 2; 8; 4; 7; 6; 1; 5; 15; 11; 9; 14; 3; 12; 13; 0 |];
    [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 |];
    [| 14; 10; 4; 8; 9; 15; 13; 6; 1; 12; 0; 2; 11; 7; 5; 3 |];
  |]

type ctx = {
  h : int64 array;
  buf : Bytes.t; (* 128-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* low 64 bits of the byte counter *)
  digest_size : int;
  m : int64 array; (* scratch: current message block as 16 words *)
  v : int64 array; (* scratch: working vector *)
}

let rotr64 x n =
  Int64.logor (Int64.shift_right_logical x n) (Int64.shift_left x (64 - n))

let g v a b c d x y =
  v.(a) <- Int64.add (Int64.add v.(a) v.(b)) x;
  v.(d) <- rotr64 (Int64.logxor v.(d) v.(a)) 32;
  v.(c) <- Int64.add v.(c) v.(d);
  v.(b) <- rotr64 (Int64.logxor v.(b) v.(c)) 24;
  v.(a) <- Int64.add (Int64.add v.(a) v.(b)) y;
  v.(d) <- rotr64 (Int64.logxor v.(d) v.(a)) 16;
  v.(c) <- Int64.add v.(c) v.(d);
  v.(b) <- rotr64 (Int64.logxor v.(b) v.(c)) 63

let compress ctx ~last =
  let m = ctx.m and v = ctx.v in
  for i = 0 to 15 do
    m.(i) <- Bytes.get_int64_le ctx.buf (8 * i)
  done;
  for i = 0 to 7 do
    v.(i) <- ctx.h.(i);
    v.(i + 8) <- iv.(i)
  done;
  v.(12) <- Int64.logxor v.(12) ctx.total;
  (* High word of the counter stays zero: inputs < 2^64 bytes. *)
  if last then v.(14) <- Int64.lognot v.(14);
  for r = 0 to 11 do
    let s = sigma.(r) in
    g v 0 4 8 12 m.(s.(0)) m.(s.(1));
    g v 1 5 9 13 m.(s.(2)) m.(s.(3));
    g v 2 6 10 14 m.(s.(4)) m.(s.(5));
    g v 3 7 11 15 m.(s.(6)) m.(s.(7));
    g v 0 5 10 15 m.(s.(8)) m.(s.(9));
    g v 1 6 11 12 m.(s.(10)) m.(s.(11));
    g v 2 7 8 13 m.(s.(12)) m.(s.(13));
    g v 3 4 9 14 m.(s.(14)) m.(s.(15))
  done;
  for i = 0 to 7 do
    ctx.h.(i) <- Int64.logxor ctx.h.(i) (Int64.logxor v.(i) v.(i + 8))
  done

let init ?(digest_size = 32) () =
  if digest_size < 1 || digest_size > 64 then
    invalid_arg "Blake2b.init: digest_size out of range";
  let h = Array.copy iv in
  (* Parameter block word 0: digest_size, key_len = 0, fanout = depth = 1. *)
  h.(0) <-
    Int64.logxor h.(0)
      (Int64.of_int (0x01010000 lor digest_size));
  {
    h;
    buf = Bytes.make 128 '\000';
    buf_len = 0;
    total = 0L;
    digest_size;
    m = Array.make 16 0L;
    v = Array.make 16 0L;
  }

(* BLAKE2 must keep the final block out of [compress ~last:false]; flush the
   buffer only when more input is known to follow. *)
let update ctx s =
  let len = String.length s in
  let pos = ref 0 and remaining = ref len in
  while !remaining > 0 do
    if ctx.buf_len = 128 then begin
      ctx.total <- Int64.add ctx.total 128L;
      compress ctx ~last:false;
      ctx.buf_len <- 0
    end;
    let take = min (128 - ctx.buf_len) !remaining in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take
  done

let finalize ctx =
  ctx.total <- Int64.add ctx.total (Int64.of_int ctx.buf_len);
  Bytes.fill ctx.buf ctx.buf_len (128 - ctx.buf_len) '\000';
  compress ctx ~last:true;
  let out = Bytes.create 64 in
  Array.iteri (fun i w -> Bytes.set_int64_le out (8 * i) w) ctx.h;
  Bytes.sub_string out 0 ctx.digest_size

let digest ?(digest_size = 32) msg =
  let ctx = init ~digest_size () in
  update ctx msg;
  finalize ctx
