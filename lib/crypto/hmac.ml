let block_size = 64

let normalize_key key =
  let key =
    if String.length key > block_size then Sha256.digest key else key
  in
  key ^ String.make (block_size - String.length key) '\000'

let mac ~key msg =
  let k = normalize_key key in
  let ipad = String.map (fun c -> Char.chr (Char.code c lxor 0x36)) k in
  let opad = String.map (fun c -> Char.chr (Char.code c lxor 0x5c)) k in
  let inner = Sha256.init () in
  Sha256.update inner ipad;
  Sha256.update inner msg;
  let outer = Sha256.init () in
  Sha256.update outer opad;
  Sha256.update outer (Sha256.finalize inner);
  Sha256.finalize outer

let verify ~key msg ~tag = Bytes_util.equal_constant_time (mac ~key msg) tag
