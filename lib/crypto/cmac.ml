type key = { aes : Aes128.key; k1 : string; k2 : string }

(* Left-shift a 16-byte string by one bit. *)
let shift_left_1 s =
  let out = Bytes.create 16 in
  let carry = ref 0 in
  for i = 15 downto 0 do
    let v = (Char.code s.[i] lsl 1) lor !carry in
    carry := (v lsr 8) land 1;
    Bytes.set out i (Char.chr (v land 0xff))
  done;
  (Bytes.unsafe_to_string out, !carry = 1)

let rb = "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x87"

let derive_subkey block =
  let shifted, msb = shift_left_1 block in
  if msb then Bytes_util.xor shifted rb else shifted

let of_aes_key key_str =
  let aes = Aes128.expand_key key_str in
  let l = Aes128.encrypt_block aes (String.make 16 '\000') in
  let k1 = derive_subkey l in
  let k2 = derive_subkey k1 in
  { aes; k1; k2 }

let mac { aes; k1; k2 } msg =
  let len = String.length msg in
  let n_blocks = if len = 0 then 1 else (len + 15) / 16 in
  let x = Bytes.make 16 '\000' in
  let block = Bytes.create 16 in
  (* All complete blocks except the last. *)
  for i = 0 to n_blocks - 2 do
    Bytes.blit_string msg (16 * i) block 0 16;
    Bytes_util.xor_into block (Bytes.to_string x);
    Aes128.encrypt_block_into aes block x
  done;
  (* Last block: complete -> xor K1; partial -> pad with 10..0 and xor K2. *)
  let last_off = 16 * (n_blocks - 1) in
  let last_len = len - last_off in
  if last_len = 16 then begin
    Bytes.blit_string msg last_off block 0 16;
    Bytes_util.xor_into block k1
  end
  else begin
    Bytes.fill block 0 16 '\000';
    Bytes.blit_string msg last_off block 0 last_len;
    Bytes.set block last_len '\x80';
    Bytes_util.xor_into block k2
  end;
  Bytes_util.xor_into block (Bytes.to_string x);
  Aes128.encrypt_block_into aes block x;
  Bytes.to_string x
