type key = Cmac.key

let key_of_string s =
  if String.length s <> 16 then invalid_arg "Multiset_hash.key_of_string";
  Cmac.of_aes_key s

let random_key () =
  key_of_string (String.init 16 (fun _ -> Char.chr (Random.int 256)))

type t = { key : key; acc : Bytes.t }

let count = ref 0
let elements_hashed () = !count
let reset_element_count () = count := 0

let create key = { key; acc = Bytes.make 16 '\000' }
let reset t = Bytes.fill t.acc 0 16 '\000'

(* dst := dst + src mod 2^128, little-endian byte order. *)
let add_128 (dst : Bytes.t) (src : string) =
  let carry = ref 0 in
  for i = 0 to 15 do
    let s = Char.code (Bytes.unsafe_get dst i) + Char.code src.[i] + !carry in
    Bytes.unsafe_set dst i (Char.unsafe_chr (s land 0xff));
    carry := s lsr 8
  done

let add t elem =
  incr count;
  add_128 t.acc (Cmac.mac t.key elem)

let of_value key v =
  if String.length v <> 16 then invalid_arg "Multiset_hash.of_value";
  { key; acc = Bytes.of_string v }

let merge dst src = add_128 dst.acc (Bytes.to_string src.acc)
let value t = Bytes.to_string t.acc
let equal a b = Bytes_util.equal_constant_time (value a) (value b)
let equal_value a b = Bytes_util.equal_constant_time a b
let empty_value = String.make 16 '\000'

let hash_elements key elems =
  let t = create key in
  List.iter (add t) elems;
  value t
