(* AES-128 using the standard 32-bit T-table formulation (Rijndael reference
   code). All round computation happens on native OCaml ints holding 32-bit
   words, so block encryption is allocation-free — this is the hot path of
   the multiset hash, FastVer's analogue of the paper's AES-NI usage. *)

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2 land 0xff

let gf_mul a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      go (xtime a) (b lsr 1) acc
  in
  go a b 0

(* S-box via the affine transform of the multiplicative inverse. *)
let sbox =
  let inv = Array.make 256 0 in
  for x = 1 to 255 do
    for y = 1 to 255 do
      if gf_mul x y = 1 then inv.(x) <- y
    done
  done;
  Array.init 256 (fun x ->
      let b = inv.(x) in
      let rot b n = ((b lsl n) lor (b lsr (8 - n))) land 0xff in
      b lxor rot b 1 lxor rot b 2 lxor rot b 3 lxor rot b 4 lxor 0x63)

let mask32 = 0xffffffff
let ror32 x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

(* Te0[x] = [2s, s, s, 3s] as a big-endian word; Te1..Te3 are rotations. *)
let te0 =
  Array.init 256 (fun x ->
      let s = sbox.(x) in
      (xtime s lsl 24) lor (s lsl 16) lor (s lsl 8) lor (xtime s lxor s))

let te1 = Array.map (fun w -> ror32 w 8) te0
let te2 = Array.map (fun w -> ror32 w 16) te0
let te3 = Array.map (fun w -> ror32 w 24) te0

let rcon =
  let r = Array.make 11 0 in
  let v = ref 1 in
  for i = 1 to 10 do
    r.(i) <- !v;
    v := xtime !v
  done;
  r

type key = int array (* 44 round-key words *)

let sub_word w =
  (sbox.((w lsr 24) land 0xff) lsl 24)
  lor (sbox.((w lsr 16) land 0xff) lsl 16)
  lor (sbox.((w lsr 8) land 0xff) lsl 8)
  lor sbox.(w land 0xff)

let expand_key key_str =
  if String.length key_str <> 16 then invalid_arg "Aes128.expand_key";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <- Int32.to_int (String.get_int32_be key_str (4 * i)) land mask32
  done;
  for i = 4 to 43 do
    let t = w.(i - 1) in
    let t =
      if i mod 4 = 0 then
        sub_word (ror32 t 24) lxor (rcon.(i / 4) lsl 24)
      else t
    in
    w.(i) <- w.(i - 4) lxor t
  done;
  w

(* One block; [get i] supplies input byte i, [set i b] receives output. *)
let encrypt_generic (w : int array) ~get ~set =
  let word o =
    (get o lsl 24) lor (get (o + 1) lsl 16) lor (get (o + 2) lsl 8)
    lor get (o + 3)
  in
  let s0 = ref (word 0 lxor w.(0))
  and s1 = ref (word 4 lxor w.(1))
  and s2 = ref (word 8 lxor w.(2))
  and s3 = ref (word 12 lxor w.(3)) in
  for round = 1 to 9 do
    let a = !s0 and b = !s1 and c = !s2 and d = !s3 in
    let k = 4 * round in
    s0 :=
      te0.((a lsr 24) land 0xff)
      lxor te1.((b lsr 16) land 0xff)
      lxor te2.((c lsr 8) land 0xff)
      lxor te3.(d land 0xff)
      lxor w.(k);
    s1 :=
      te0.((b lsr 24) land 0xff)
      lxor te1.((c lsr 16) land 0xff)
      lxor te2.((d lsr 8) land 0xff)
      lxor te3.(a land 0xff)
      lxor w.(k + 1);
    s2 :=
      te0.((c lsr 24) land 0xff)
      lxor te1.((d lsr 16) land 0xff)
      lxor te2.((a lsr 8) land 0xff)
      lxor te3.(b land 0xff)
      lxor w.(k + 2);
    s3 :=
      te0.((d lsr 24) land 0xff)
      lxor te1.((a lsr 16) land 0xff)
      lxor te2.((b lsr 8) land 0xff)
      lxor te3.(c land 0xff)
      lxor w.(k + 3)
  done;
  (* Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns. *)
  let a = !s0 and b = !s1 and c = !s2 and d = !s3 in
  let fin x0 x1 x2 x3 k =
    (sbox.((x0 lsr 24) land 0xff) lsl 24)
    lor (sbox.((x1 lsr 16) land 0xff) lsl 16)
    lor (sbox.((x2 lsr 8) land 0xff) lsl 8)
    lor sbox.(x3 land 0xff)
    lxor k
  in
  let o0 = fin a b c d w.(40)
  and o1 = fin b c d a w.(41)
  and o2 = fin c d a b w.(42)
  and o3 = fin d a b c w.(43) in
  let out o v =
    set o ((v lsr 24) land 0xff);
    set (o + 1) ((v lsr 16) land 0xff);
    set (o + 2) ((v lsr 8) land 0xff);
    set (o + 3) (v land 0xff)
  in
  out 0 o0;
  out 4 o1;
  out 8 o2;
  out 12 o3

let encrypt_block_into w src dst =
  if Bytes.length src <> 16 || Bytes.length dst <> 16 then
    invalid_arg "Aes128.encrypt_block_into";
  encrypt_generic w
    ~get:(fun i -> Char.code (Bytes.unsafe_get src i))
    ~set:(fun i b -> Bytes.unsafe_set dst i (Char.unsafe_chr b))

let encrypt_block w block =
  if String.length block <> 16 then invalid_arg "Aes128.encrypt_block";
  let dst = Bytes.create 16 in
  encrypt_generic w
    ~get:(fun i -> Char.code (String.unsafe_get block i))
    ~set:(fun i b -> Bytes.unsafe_set dst i (Char.unsafe_chr b));
  Bytes.unsafe_to_string dst
