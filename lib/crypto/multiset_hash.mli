(** Incremental multiset hash for deferred memory verification.

    The hash of a multiset is [Σ AES-CMAC_k(element) mod 2^128] — the
    MSet-Add-Hash construction (Clarke et al.) instantiated with AES-CMAC as
    the PRF, which is what Concerto-style deferred verification needs: the
    accumulator is incremental (elements fold in, in any order, on any
    verifier thread) and aggregating per-thread accumulators is a single
    128-bit addition.

    Addition — not XOR — matters for soundness: with XOR, an element added an
    even number of times vanishes from the accumulator, so a malicious host
    could replay one [AddB] into several verifier caches (forking the record)
    while keeping the epoch hashes balanced. Modular addition counts
    multiplicities, so the add- and evict-multisets must match exactly. *)

type key

val key_of_string : string -> key
(** Derive the PRF key from a 16-byte secret.
    @raise Invalid_argument on any other length. *)

val random_key : unit -> key
(** A fresh key from [Random]; test/bench convenience. *)

type t
(** A mutable accumulator holding the 16-byte running hash. *)

val create : key -> t
val reset : t -> unit

val add : t -> string -> unit
(** Fold one element into the accumulator. *)

val merge : t -> t -> unit
(** [merge dst src] folds [src]'s accumulator into [dst] (multiset union). *)

val value : t -> string
(** The current 16-byte hash (little-endian 128-bit integer). *)

val of_value : key -> string -> t
(** Rebuild an accumulator from a persisted {!value} (trusted input only —
    e.g. an unsealed verifier checkpoint). *)

val equal : t -> t -> bool
val equal_value : string -> string -> bool
val empty_value : string

val hash_elements : key -> string list -> string
(** One-shot: hash of a whole multiset. *)

val elements_hashed : unit -> int
(** Process-wide count of {!add} calls, for cost breakdowns in benchmarks. *)

val reset_element_count : unit -> unit
