open Fastver_verifier

exception Failed of string

let ok = function Ok x -> x | Error e -> raise (Failed e)

type variant = [ `Plain | `Cached of int | `Propagate_to_root of int ]

type maux = { mutable cached : bool }

type t = {
  verifier : Verifier.t;
  tree : maux Tree.t;
  data : (int64, string option) Hashtbl.t; (* host copy of data values *)
  lru : Key_lru.t;
  parents : Key.t Key.Tbl.t;
  capacity : int;
  propagate : bool;
  evict_all : bool;
  algo : Record_enc.algo;
  mutable ops : int;
  mutable verifier_time : float;
}

let now = Unix.gettimeofday

let create ?(algo = Record_enc.Blake2s) variant records =
  let capacity, propagate, evict_all =
    match variant with
    | `Plain -> (300, false, true) (* room for one root-to-leaf chain *)
    | `Cached n -> (n, false, false)
    | `Propagate_to_root n -> (n, true, false)
  in
  let verifier =
    Verifier.create
      {
        Verifier.default_config with
        cache_capacity = capacity + 2;
        algo;
      }
  in
  let tree = Tree.create ~root_aux:{ cached = true } in
  let data = Hashtbl.create (Array.length records * 2) in
  Tree.bulk_build tree ~algo
    ~aux:(fun _ _ -> { cached = false })
    (Array.map (fun (k, v) -> (Key.of_int64 k, Value.Data (Some v))) records);
  (Tree.get_exn tree Key.root).aux.cached <- true;
  Array.iter (fun (k, v) -> Hashtbl.replace data k (Some v)) records;
  ok (Verifier.install_root verifier (Tree.get_exn tree Key.root).value);
  {
    verifier;
    tree;
    data;
    lru = Key_lru.create ();
    parents = Key.Tbl.create 64;
    capacity;
    propagate;
    evict_all;
    algo;
    ops = 0;
    verifier_time = 0.0;
  }

let apply_ptr t parent (ptr : Value.ptr) =
  let pe = Tree.get_exn t.tree parent in
  match pe.value with
  | Value.Node n ->
      let d = Key.dir ptr.key ~ancestor:parent in
      pe.value <- Value.Node (Value.set_slot n d (Some ptr))
  | Value.Data _ -> assert false

let evict_one t e =
  let k = Key_lru.key e in
  let parent = Key.Tbl.find t.parents k in
  let ptr = ok (Verifier.evict_m t.verifier ~tid:0 ~key:k ~parent) in
  apply_ptr t parent ptr;
  (match Key_lru.find t.lru parent with
  | Some pe -> Key_lru.decr_children pe
  | None -> assert (Key.equal parent Key.root));
  Key_lru.remove t.lru e;
  Key.Tbl.remove t.parents k;
  (Tree.get_exn t.tree k).aux.cached <- false

let ensure_room t ?protect () =
  while Key_lru.length t.lru >= t.capacity do
    match Key_lru.victim ?exclude:protect t.lru with
    | Some e -> evict_one t e
    | None -> raise (Failed "merkle cache too small for chain")
  done

(* Cache the whole chain down to the pointing parent of [k]. *)
let ensure_chain t path =
  let arr = Array.of_list path in
  for j = 0 to Array.length arr - 1 do
    let k = arr.(j) in
    if not (Key.equal k Key.root) then
      match Key_lru.find t.lru k with
      | Some e -> Key_lru.touch t.lru e
      | None ->
          let parent = arr.(j - 1) in
          ensure_room t ~protect:parent ();
          let entry = Tree.get_exn t.tree k in
          let installed =
            ok
              (Verifier.add_m t.verifier ~tid:0 ~key:k ~value:entry.value
                 ~parent)
          in
          assert (installed = None);
          ignore (Key_lru.add t.lru k);
          Key.Tbl.replace t.parents k parent;
          (match Key_lru.find t.lru parent with
          | Some pe -> Key_lru.incr_children pe
          | None -> assert (Key.equal parent Key.root));
          entry.aux.cached <- true
  done;
  arr.(Array.length arr - 1)

(* VeritasDB-style caching still refreshes every ancestor hash up to the
   root on each update. We charge that cost directly — one hash per chain
   node — rather than replaying evict/re-add pairs through the verifier,
   which would perturb the cache-residency the variant is meant to keep. *)
let propagate_to_root t path =
  List.iter
    (fun k ->
      ignore (Record_enc.hash_value ~algo:t.algo (Tree.get_exn t.tree k).value))
    path

let finish_op t path =
  if t.evict_all then
    while Key_lru.length t.lru > 0 do
      match Key_lru.victim t.lru with
      | Some e -> evict_one t e
      | None -> assert false
    done
  else if t.propagate then propagate_to_root t path

let get t k =
  t.ops <- t.ops + 1;
  let key = Key.of_int64 k in
  let descent = Tree.descend t.tree key in
  let t0 = now () in
  let result =
    match descent.outcome with
    | Tree.Exists ->
        let cur = Hashtbl.find t.data k in
        let parent = ensure_chain t descent.path in
        let installed =
          ok
            (Verifier.add_m t.verifier ~tid:0 ~key ~value:(Value.Data cur)
               ~parent)
        in
        assert (installed = None);
        ok (Verifier.vget t.verifier ~tid:0 ~key cur);
        let ptr = ok (Verifier.evict_m t.verifier ~tid:0 ~key ~parent) in
        apply_ptr t parent ptr;
        cur
    | Tree.Empty_slot | Tree.Split _ ->
        let parent = ensure_chain t descent.path in
        ok (Verifier.vget_absent t.verifier ~tid:0 ~key ~parent);
        None
  in
  finish_op t descent.path;
  t.verifier_time <- t.verifier_time +. (now () -. t0);
  result

let put t k v =
  t.ops <- t.ops + 1;
  let key = Key.of_int64 k in
  let descent = Tree.descend t.tree key in
  let t0 = now () in
  (match descent.outcome with
  | Tree.Exists ->
      let cur = Hashtbl.find t.data k in
      let parent = ensure_chain t descent.path in
      let installed =
        ok
          (Verifier.add_m t.verifier ~tid:0 ~key ~value:(Value.Data cur)
             ~parent)
      in
      assert (installed = None);
      ok (Verifier.vput t.verifier ~tid:0 ~key (Some v));
      let ptr = ok (Verifier.evict_m t.verifier ~tid:0 ~key ~parent) in
      apply_ptr t parent ptr;
      Hashtbl.replace t.data k (Some v)
  | Tree.Empty_slot ->
      let parent = ensure_chain t descent.path in
      (match
         ok
           (Verifier.add_m t.verifier ~tid:0 ~key ~value:(Value.Data None)
              ~parent)
       with
      | Some ptr -> apply_ptr t parent ptr
      | None -> assert false);
      ok (Verifier.vput t.verifier ~tid:0 ~key (Some v));
      let ptr = ok (Verifier.evict_m t.verifier ~tid:0 ~key ~parent) in
      apply_ptr t parent ptr;
      Hashtbl.replace t.data k (Some v)
  | Tree.Split pointee ->
      let parent = ensure_chain t descent.path in
      let node_key = Key.lca key pointee in
      let old_ptr =
        match (Tree.get_exn t.tree parent).value with
        | Value.Node n -> (
            match Value.slot n (Key.dir key ~ancestor:parent) with
            | Some p -> p
            | None -> assert false)
        | Value.Data _ -> assert false
      in
      let node_value =
        Value.Node
          (Value.set_slot { left = None; right = None }
             (Key.dir pointee ~ancestor:node_key)
             (Some old_ptr))
      in
      ensure_room t ~protect:parent ();
      (match
         ok
           (Verifier.add_m t.verifier ~tid:0 ~key:node_key ~value:node_value
              ~parent)
       with
      | Some ptr ->
          Tree.set t.tree node_key node_value ~aux:{ cached = true };
          apply_ptr t parent ptr
      | None -> assert false);
      ignore (Key_lru.add t.lru node_key);
      Key.Tbl.replace t.parents node_key parent;
      (match Key_lru.find t.lru parent with
      | Some pe -> Key_lru.incr_children pe
      | None -> assert (Key.equal parent Key.root));
      (if (not (Key.is_data_key pointee)) && Key_lru.mem t.lru pointee then begin
         Key.Tbl.replace t.parents pointee node_key;
         (match Key_lru.find t.lru parent with
         | Some pe -> Key_lru.decr_children pe
         | None -> assert (Key.equal parent Key.root));
         match Key_lru.find t.lru node_key with
         | Some ne -> Key_lru.incr_children ne
         | None -> assert false
       end);
      (match
         ok
           (Verifier.add_m t.verifier ~tid:0 ~key ~value:(Value.Data None)
              ~parent:node_key)
       with
      | Some ptr -> apply_ptr t node_key ptr
      | None -> assert false);
      ok (Verifier.vput t.verifier ~tid:0 ~key (Some v));
      let ptr = ok (Verifier.evict_m t.verifier ~tid:0 ~key ~parent:node_key) in
      apply_ptr t node_key ptr;
      Hashtbl.replace t.data k (Some v));
  finish_op t descent.path;
  t.verifier_time <- t.verifier_time +. (now () -. t0)

let verifier t = t.verifier
let verifier_time_s t = t.verifier_time
let ops t = t.ops
