(** Merkle-tree-only verified store — the baselines of §4 and §8.5.

    Every operation is validated through root-anchored Merkle chains on a
    single verifier thread; there is no deferred tier, so validation is
    immediate (P3 holds) but every first touch pays a chain of hash checks
    and all chains meet at the root (P2/P4 fail). Variants:

    - [`Plain]: no verifier caching — the whole record-to-root path is added
      and evicted around every operation (classic Merkle, "M");
    - [`Cached n]: an [n]-record verifier cache with LRU eviction and lazy
      hash propagation (§4.3, "M1K"/"M32K");
    - [`Propagate_to_root n]: like [`Cached n] but every update propagates
      hash changes all the way to the root, modelling VeritasDB's caching
      ("MV" in Fig. 14b). *)

type variant = [ `Plain | `Cached of int | `Propagate_to_root of int ]

type t

val create :
  ?algo:Record_enc.algo -> variant -> (int64 * string) array -> t
(** Build the store over an initial database (trusted load). *)

val get : t -> int64 -> string option
val put : t -> int64 -> string -> unit

val verifier : t -> Fastver_verifier.Verifier.t

val verifier_time_s : t -> float
(** Wall time spent inside verifier calls (hashing and checks). *)

val ops : t -> int
