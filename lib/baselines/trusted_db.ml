type t = {
  enclave : Enclave.t;
  table : (int64, string) Hashtbl.t;
  overhead : int;
  mutable ops : int;
}

let record_cost t v = t.overhead + 8 + String.length v

let create ?enclave ~record_overhead_bytes records =
  let enclave =
    match enclave with
    | Some e -> e
    | None -> Enclave.create Cost_model.simulated
  in
  let t =
    {
      enclave;
      table = Hashtbl.create (Array.length records * 2);
      overhead = record_overhead_bytes;
      ops = 0;
    }
  in
  Array.iter
    (fun (k, v) ->
      Enclave.alloc_trusted enclave (record_cost t v);
      Hashtbl.replace t.table k v)
    records;
  t

let get t k =
  t.ops <- t.ops + 1;
  Enclave.call t.enclave (fun () -> Hashtbl.find_opt t.table k)

let put t k v =
  t.ops <- t.ops + 1;
  Enclave.call t.enclave (fun () ->
      (match Hashtbl.find_opt t.table k with
      | Some old -> Enclave.free_trusted t.enclave (record_cost t old)
      | None -> ());
      Enclave.alloc_trusted t.enclave (record_cost t v);
      Hashtbl.replace t.table k v)

let memory_bytes t = Enclave.trusted_bytes_in_use t.enclave
let ops t = t.ops
