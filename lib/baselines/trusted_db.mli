(** The trusted-database approach (§3): the entire store lives inside the
    enclave. Validation is trivial (the enclave's copy {e is} the truth) but
    the design fails performance goal P1 — it cannot hold databases larger
    than the enclave memory budget. *)

type t

val create :
  ?enclave:Enclave.t -> record_overhead_bytes:int -> (int64 * string) array ->
  t
(** @raise Enclave.Out_of_enclave_memory when the database does not fit the
    enclave's trusted-memory budget (the P1 failure mode). *)

val get : t -> int64 -> string option
val put : t -> int64 -> string -> unit
val memory_bytes : t -> int
val ops : t -> int
