open Fastver_verifier

exception Failed of string

let ok = function Ok x -> x | Error e -> raise (Failed e)

type record = {
  key : Key.t;
  mutable value : string option;
  mutable ts : Timestamp.t;
}

type t = {
  verifier : Verifier.t;
  records : (int64, record) Hashtbl.t;
  mutable clock : Timestamp.t; (* mirror of thread 0's clock *)
  mutable ops : int;
  mutable verifier_time : float;
  mutable last_latency : float;
}

let now = Unix.gettimeofday

let create ?(algo = Record_enc.Blake2s) data =
  let verifier =
    Verifier.create { Verifier.default_config with cache_capacity = 8; algo }
  in
  let records = Hashtbl.create (Array.length data * 2) in
  Array.iter
    (fun (k, v) ->
      let key = Key.of_int64 k in
      let r = { key; value = Some v; ts = Timestamp.zero } in
      Hashtbl.replace records k r;
      ok
        (Verifier.install_blum verifier ~tid:0 ~key ~value:(Value.Data (Some v))
           ~timestamp:Timestamp.zero))
    data;
  {
    verifier;
    records;
    clock = Timestamp.zero;
    ops = 0;
    verifier_time = 0.0;
    last_latency = 0.0;
  }

(* One operation: add, validate, evict — all O(1). *)
let operate t k update =
  t.ops <- t.ops + 1;
  let r =
    match Hashtbl.find_opt t.records k with
    | Some r -> r
    | None -> raise (Failed "DV baseline operates on a fixed key population")
  in
  let t0 = now () in
  ok
    (Verifier.add_b t.verifier ~tid:0 ~key:r.key ~value:(Value.Data r.value)
       ~timestamp:r.ts);
  t.clock <- Timestamp.max t.clock (Timestamp.next r.ts);
  let result =
    match update with
    | None ->
        ok (Verifier.vget t.verifier ~tid:0 ~key:r.key r.value);
        r.value
    | Some v ->
        ok (Verifier.vput t.verifier ~tid:0 ~key:r.key (Some v));
        r.value <- Some v;
        r.value
  in
  let ts' = t.clock in
  ok (Verifier.evict_b t.verifier ~tid:0 ~key:r.key ~timestamp:ts');
  t.clock <- ts';
  r.ts <- ts';
  t.verifier_time <- t.verifier_time +. (now () -. t0);
  result

let get t k = operate t k None
let put t k v = ignore (operate t k (Some v))

(* The verification scan: every record migrates to the next epoch. *)
let verify t =
  let t0 = now () in
  let epoch = Verifier.current_epoch t.verifier in
  let floor = Timestamp.first_of_epoch (epoch + 1) in
  Hashtbl.iter
    (fun _ r ->
      ok
        (Verifier.add_b t.verifier ~tid:0 ~key:r.key ~value:(Value.Data r.value)
           ~timestamp:r.ts);
      t.clock <- Timestamp.max t.clock (Timestamp.next r.ts);
      let ts' = Timestamp.max t.clock floor in
      ok (Verifier.evict_b t.verifier ~tid:0 ~key:r.key ~timestamp:ts');
      t.clock <- ts';
      r.ts <- ts')
    t.records;
  ok (Verifier.close_epoch t.verifier ~tid:0 ~epoch);
  t.clock <- Timestamp.max t.clock floor;
  ignore (ok (Verifier.verify_epoch t.verifier ~epoch));
  let dt = now () -. t0 in
  t.last_latency <- dt;
  t.verifier_time <- t.verifier_time +. dt

let verifier t = t.verifier
let verifier_time_s t = t.verifier_time
let last_verify_latency_s t = t.last_latency
let ops t = t.ops
let size t = Hashtbl.length t.records
