open Fastver_kvstore

type t = { store : string Store.t; mutable ops : int }

let create records =
  let store = Store.create ~codec:Store.string_codec () in
  Array.iter
    (fun (k, v) -> Store.put store (Key.of_int64 k) v ~aux:0L)
    records;
  { store; ops = 0 }

let get t k =
  t.ops <- t.ops + 1;
  match Store.get t.store (Key.of_int64 k) with
  | Ok r -> Option.map fst r
  | Error _ -> None

let put t k v =
  t.ops <- t.ops + 1;
  Store.put t.store (Key.of_int64 k) v ~aux:0L

let scan t k len =
  let found = ref 0 in
  for i = 0 to len - 1 do
    t.ops <- t.ops + 1;
    match Store.get t.store (Key.of_int64 (Int64.add k (Int64.of_int i))) with
    | Ok (Some _) -> incr found
    | Ok None | Error _ -> ()
  done;
  !found

let ops t = t.ops
