(** The unverified baseline: the raw host key-value store with no integrity
    layer — the "FASTER" bars of Fig. 13c/13d. *)

type t

val create : (int64 * string) array -> t
val get : t -> int64 -> string option
val put : t -> int64 -> string -> unit
val scan : t -> int64 -> int -> int
(** Returns the number of keys found. *)

val ops : t -> int
