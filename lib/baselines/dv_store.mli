(** Deferred-memory-verification-only store ("DV") — §5 / Concerto.

    Every record is always blum-protected: operations are O(1) (an add/evict
    pair folded into the epoch's multiset hashes) but {!verify} must migrate
    the {e entire} database to the next epoch, so verification latency grows
    linearly with database size — the limitation the hybrid scheme removes. *)

type t

val create : ?algo:Record_enc.algo -> (int64 * string) array -> t
(** Trusted initial load (Blum's initial write pass). *)

val get : t -> int64 -> string option
val put : t -> int64 -> string -> unit

val verify : t -> unit
(** Complete the epoch: migrate all records, aggregate, compare.
    @raise Failed on any verification failure. *)

exception Failed of string

val verifier : t -> Fastver_verifier.Verifier.t
val verifier_time_s : t -> float
val last_verify_latency_s : t -> float
val ops : t -> int
val size : t -> int
