(** Incremental frame extraction from a byte stream.

    A {!reader} buffers whatever the socket delivered — any chunking, down
    to one byte at a time — and yields complete frame payloads as they
    become available. Malformed framing (a length below the fixed header
    size or above {!Wire.max_frame}) is reported as [Error] before any
    allocation proportional to the claimed length; the reader never raises
    and never loops on hostile input. *)

type reader

val create : ?max_frame:int -> unit -> reader

val feed : reader -> Bytes.t -> int -> int -> unit
(** [feed r buf off len] appends [len] bytes of [buf] starting at [off]. *)

val feed_string : reader -> string -> unit

val next : reader -> (string option, string) result
(** The next complete frame payload, [Ok None] if more bytes are needed, or
    [Error _] if the stream is unrecoverably malformed (the connection
    should be dropped). *)

val buffered : reader -> int
(** Bytes currently buffered (diagnostics, backpressure accounting). *)
