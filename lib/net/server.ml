let src = Logs.Src.create "fastver.net.server" ~doc:"FastVer serving loop"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  batch_limit : int;
  queue_limit : int;
  conn_out_limit : int;
  max_frame : int;
  max_scan_len : int;
}

let default_config =
  {
    batch_limit = 256;
    queue_limit = 1024;
    conn_out_limit = 4 * 1024 * 1024;
    max_frame = Wire.max_frame;
    max_scan_len = 65536;
  }

type counters = {
  accepted : int;
  served : int;
  batches : int;
  max_batch : int;
  proto_errors : int;
  op_failures : int;
}

(* Live counters ride the system's metric registry as [Atomic.t]s: they are
   mutated in the server's domain and read from callers' threads (tests,
   the CLI), which plain [mutable int]s cannot do soundly. *)
type metrics = {
  m_accepted : Fastver_obs.Counter.t;
  m_served : Fastver_obs.Counter.t;
  m_batches : Fastver_obs.Counter.t;
  m_proto_errors : Fastver_obs.Counter.t;
  m_op_failures : Fastver_obs.Counter.t;
  m_batch_requests : Fastver_obs.Histogram.t;
  m_request_seconds : Fastver_obs.Histogram.t;
}

let make_metrics sys =
  let module Reg = Fastver_obs.Registry in
  let reg = Fastver.registry sys in
  {
    m_accepted =
      Reg.counter reg ~help:"Connections accepted"
        "fastver_net_connections_total";
    m_served =
      Reg.counter reg ~help:"Requests answered (including errors)"
        "fastver_net_requests_total";
    m_batches =
      Reg.counter reg ~help:"Worker-loop drains" "fastver_net_batches_total";
    m_proto_errors =
      Reg.counter reg ~help:"Malformed frames or requests"
        "fastver_net_proto_errors_total";
    m_op_failures =
      Reg.counter reg ~help:"Operations answered with an error"
        "fastver_net_op_failures_total";
    m_batch_requests =
      Reg.histogram reg ~help:"Requests per worker-loop drain"
        "fastver_net_batch_requests";
    m_request_seconds =
      Reg.histogram reg ~scale:1e-9
        ~help:"End-to-end request latency (decode to response enqueue)"
        "fastver_request_seconds";
  }

type conn = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  outq : string Queue.t;
  mutable out_off : int; (* written prefix of the head of [outq] *)
  mutable out_bytes : int; (* total queued output *)
  mutable client : int option;
  mutable closing : bool; (* close once output drains *)
  mutable dead : bool; (* close now, discard output *)
}

type t = {
  sys : Fastver.t;
  cfg : config;
  listener : Unix.file_descr;
  addr : Addr.t;
  pending : (conn * int64 * Wire.request * float) Queue.t;
      (* (conn, id, request, arrival time) — the timestamp feeds the
         end-to-end latency histogram when the response is enqueued *)
  mutable conns : conn list;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stopping : bool Atomic.t;
  mutable domain : unit Domain.t option;
  metrics : metrics;
  clients_in_use : (int, conn) Hashtbl.t;
  scratch : Bytes.t;
}

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) sys ~listen =
  (* A client that disconnects with a server write still pending would
     otherwise deliver a fatal SIGPIPE to the whole process. Ignore it so
     the failure surfaces as EPIPE, which the per-connection write path
     turns into [conn.dead]. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Addr.to_sockaddr listen with
  | Error e -> Error e
  | Ok sockaddr -> (
      let fd = Unix.socket (Addr.domain listen) Unix.SOCK_STREAM 0 in
      match
        (match listen with
        | Addr.Unix_sock path ->
            if Sys.file_exists path then Unix.unlink path
        | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
        Unix.bind fd sockaddr;
        Unix.listen fd 128;
        Unix.set_nonblock fd
      with
      | () ->
          let addr =
            (* read the effective address back (supports tcp port 0) *)
            match (listen, Unix.getsockname fd) with
            | Addr.Tcp (host, _), Unix.ADDR_INET (_, port) ->
                Addr.Tcp (host, port)
            | a, _ -> a
          in
          let stop_r, stop_w = Unix.pipe ~cloexec:true () in
          Unix.set_nonblock stop_r;
          Ok
            {
              sys;
              cfg = config;
              listener = fd;
              addr;
              pending = Queue.create ();
              conns = [];
              stop_r;
              stop_w;
              stopping = Atomic.make false;
              domain = None;
              metrics = make_metrics sys;
              clients_in_use = Hashtbl.create 16;
              scratch = Bytes.create 65536;
            }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen on %s: %s" (Addr.to_string listen)
               (Unix.error_message e)))

let bound_addr t = t.addr

let counters t =
  let module C = Fastver_obs.Counter in
  let batch = Fastver_obs.Histogram.snapshot t.metrics.m_batch_requests in
  {
    accepted = C.get t.metrics.m_accepted;
    served = C.get t.metrics.m_served;
    batches = C.get t.metrics.m_batches;
    max_batch = batch.Fastver_obs.Histogram.max;
    proto_errors = C.get t.metrics.m_proto_errors;
    op_failures = C.get t.metrics.m_op_failures;
  }

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let emit ?arrived t conn id resp =
  if not conn.dead then begin
    let s = Wire.encode_response ~id resp in
    Queue.push s conn.outq;
    conn.out_bytes <- conn.out_bytes + String.length s;
    Fastver_obs.Counter.incr t.metrics.m_served;
    match arrived with
    | Some t0 ->
        Fastver_obs.Histogram.record_span t.metrics.m_request_seconds
          (Unix.gettimeofday () -. t0)
    | None -> ()
  end

let flush_output conn =
  try
    let continue = ref true in
    while !continue && not (Queue.is_empty conn.outq) do
      let head = Queue.peek conn.outq in
      match Sockio.write_sub conn.fd head conn.out_off with
      | `Again -> continue := false
      | `Wrote n ->
          conn.out_off <- conn.out_off + n;
          conn.out_bytes <- conn.out_bytes - n;
          if conn.out_off = String.length head then begin
            ignore (Queue.pop conn.outq);
            conn.out_off <- 0
          end
    done
  with Unix.Unix_error _ -> conn.dead <- true

(* ------------------------------------------------------------------ *)
(* Request processing                                                  *)
(* ------------------------------------------------------------------ *)

let item_of (b : Fastver.Batch.item) : Wire.item =
  { key = b.ikey; value = b.ivalue; epoch = b.iepoch; mac = b.imac }

let stats_reply t =
  let s = Fastver.stats t.sys in
  let i = Int64.of_int in
  Wire.Stats_reply
    {
      ops = i s.ops;
      gets = i s.gets;
      puts = i s.puts;
      scans = i s.scans;
      verifies = i s.verifies;
      fast_path = i s.blum_fast_path;
      merkle_path = i s.merkle_path;
      epoch = i (Fastver.current_epoch t.sys);
    }

(* Classify a request: [`Data] ops accumulate into the next worker-loop
   drain; [`Admin] ops run inline at their position so per-connection
   ordering is exact. *)
let classify t conn req =
  let auth = (Fastver.config t.sys).authenticate_clients in
  let client () =
    match conn.client with
    | Some c -> Ok c
    | None -> if auth then Error "no open session" else Ok 0
  in
  match (req : Wire.request) with
  | Wire.Get { key; nonce } -> (
      match client () with
      | Error e -> `Err e
      | Ok client -> `Data (Fastver.Batch.Get { client; nonce; key }))
  | Wire.Put { key; nonce; mac; value } -> (
      match client () with
      | Error e -> `Err e
      | Ok client -> `Data (Fastver.Batch.Put { client; nonce; mac; key; value }))
  | Wire.Scan { start; len; nonce } -> (
      if len < 0 || len > t.cfg.max_scan_len then `Err "scan length out of range"
      else
        match client () with
        | Error e -> `Err e
        | Ok client -> `Data (Fastver.Batch.Scan { client; nonce; start; len }))
  | Wire.Open_session { client } ->
      `Admin
        (fun conn ->
          match (conn.client, Hashtbl.find_opt t.clients_in_use client) with
          | Some _, _ -> Wire.Error "session already open on this connection"
          | None, Some other when other != conn ->
              Wire.Error "client id already in use"
          | None, _ ->
              conn.client <- Some client;
              Hashtbl.replace t.clients_in_use client conn;
              Wire.Session_opened { client })
  | Wire.Close_session ->
      `Admin
        (fun conn ->
          (match conn.client with
          | Some c -> Hashtbl.remove t.clients_in_use c
          | None -> ());
          conn.client <- None;
          Wire.Session_closed)
  | Wire.Verify ->
      `Admin
        (fun _conn ->
          let epoch = Fastver.current_epoch t.sys in
          match Fastver.verify t.sys with
          | cert -> Wire.Verified { epoch; cert }
          | exception Fastver.Integrity_violation e ->
              Wire.Error ("integrity: " ^ e))
  | Wire.Stats -> `Admin (fun _conn -> stats_reply t)
  | Wire.Metrics { format } ->
      `Admin
        (fun _conn ->
          let reg = Fastver.registry t.sys in
          let data =
            match format with
            | Wire.Json -> Fastver_obs.Registry.to_json reg
            | Wire.Prometheus -> Fastver_obs.Registry.to_prometheus reg
          in
          Wire.Metrics_reply { format; data })

let response_of_reply nonce (reply : Fastver.Batch.reply) =
  match reply with
  | Fastver.Batch.Got item -> Wire.Got { nonce; item = item_of item }
  | Fastver.Batch.Put_done item -> Wire.Put_ok { nonce; item = item_of item }
  | Fastver.Batch.Scanned items ->
      Wire.Scanned { nonce; items = Array.map item_of items }
  | Fastver.Batch.Failed e -> Wire.Error ("integrity: " ^ e)

let nonce_of = function
  | Wire.Get { nonce; _ } | Wire.Put { nonce; _ } | Wire.Scan { nonce; _ } ->
      nonce
  | Wire.Open_session _ | Wire.Close_session | Wire.Verify | Wire.Stats
  | Wire.Metrics _ ->
      0L

(* Drain up to [batch_limit] pending requests through the worker loop.
   Consecutive data operations share one Batch.submit (one log flush);
   admin operations execute at their exact position. *)
let drain t =
  if not (Queue.is_empty t.pending) then begin
    let batch = ref [] and n = ref 0 in
    while !n < t.cfg.batch_limit && not (Queue.is_empty t.pending) do
      batch := Queue.pop t.pending :: !batch;
      incr n
    done;
    let batch = List.rev !batch in
    Fastver_obs.Counter.incr t.metrics.m_batches;
    Fastver_obs.Histogram.record t.metrics.m_batch_requests !n;
    let acc = ref [] in
    (* (conn, id, nonce, arrival, op), newest first *)
    let flush_acc () =
      match List.rev !acc with
      | [] -> ()
      | ops ->
          acc := [];
          let arr = Array.of_list (List.map (fun (_, _, _, _, op) -> op) ops) in
          let replies = Fastver.Batch.submit t.sys arr in
          List.iteri
            (fun i (conn, id, nonce, arrived, _) ->
              (match replies.(i) with
              | Fastver.Batch.Failed _ ->
                  Fastver_obs.Counter.incr t.metrics.m_op_failures
              | _ -> ());
              emit ~arrived t conn id (response_of_reply nonce replies.(i)))
            ops
    in
    List.iter
      (fun (conn, id, req, arrived) ->
        if not conn.dead then
          match classify t conn req with
          | `Data op -> acc := (conn, id, nonce_of req, arrived, op) :: !acc
          | `Admin f ->
              flush_acc ();
              emit ~arrived t conn id (f conn)
          | `Err e ->
              flush_acc ();
              Fastver_obs.Counter.incr t.metrics.m_op_failures;
              emit ~arrived t conn id (Wire.Error e))
      batch;
    flush_acc ();
    (* opportunistic write: the sockets are almost always writable *)
    List.iter
      (fun (conn, _, _, _) ->
        if not (Queue.is_empty conn.outq) then flush_output conn)
      batch
  end

(* ------------------------------------------------------------------ *)
(* Input                                                               *)
(* ------------------------------------------------------------------ *)

let protocol_error t conn msg =
  Fastver_obs.Counter.incr t.metrics.m_proto_errors;
  (* arrival = now: a malformed frame has no decoded request to timestamp,
     but every emitted response must carry a latency sample so that the
     request histogram's count always equals [served] *)
  emit ~arrived:(Unix.gettimeofday ()) t conn 0L
    (Wire.Error ("protocol: " ^ msg));
  conn.closing <- true

let parse_frames t conn =
  let continue = ref true in
  while !continue && not conn.closing do
    match Frame.next conn.reader with
    | Ok None -> continue := false
    | Ok (Some payload) -> (
        match Wire.decode_request payload with
        | Ok (id, req) ->
            Queue.push (conn, id, req, Unix.gettimeofday ()) t.pending
        | Error e -> protocol_error t conn e)
    | Error e -> protocol_error t conn e
  done

let handle_readable t conn =
  let continue = ref true in
  while !continue do
    match Sockio.read_chunk conn.fd t.scratch with
    | `Again -> continue := false
    | `Eof ->
        conn.closing <- true;
        continue := false
    | `Data n -> Frame.feed conn.reader t.scratch 0 n
    | exception Unix.Unix_error _ ->
        conn.dead <- true;
        continue := false
  done;
  parse_frames t conn

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listener with
    | fd, _peer ->
        Unix.set_nonblock fd;
        (match t.addr with
        | Addr.Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
        | Addr.Unix_sock _ -> ());
        Fastver_obs.Counter.incr t.metrics.m_accepted;
        t.conns <-
          {
            fd;
            reader = Frame.create ~max_frame:t.cfg.max_frame ();
            outq = Queue.create ();
            out_off = 0;
            out_bytes = 0;
            client = None;
            closing = false;
            dead = false;
          }
          :: t.conns
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

let close_conn t conn =
  (match conn.client with
  | Some c -> Hashtbl.remove t.clients_in_use c
  | None -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

let reap t =
  let gone, kept =
    List.partition
      (fun c -> c.dead || (c.closing && Queue.is_empty c.outq))
      t.conns
  in
  List.iter (close_conn t) gone;
  t.conns <- kept

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

let run t =
  Log.info (fun m -> m "serving on %a" Addr.pp t.addr);
  while not (Atomic.get t.stopping) do
    let backpressured = Queue.length t.pending >= t.cfg.queue_limit in
    let read_fds =
      t.stop_r :: t.listener
      :: List.filter_map
           (fun c ->
             if
               (not c.closing) && (not c.dead) && (not backpressured)
               && c.out_bytes < t.cfg.conn_out_limit
             then Some c.fd
             else None)
           t.conns
    in
    let write_fds =
      List.filter_map
        (fun c ->
          if (not c.dead) && not (Queue.is_empty c.outq) then Some c.fd
          else None)
        t.conns
    in
    let timeout = if Queue.is_empty t.pending then -1.0 else 0.0 in
    match Unix.select read_fds write_fds [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* a connection died under us between loop passes *)
        reap t
    | readable, writable, _ ->
        if List.mem t.stop_r readable then begin
          let buf = Bytes.create 64 in
          try ignore (Unix.read t.stop_r buf 0 64) with Unix.Unix_error _ -> ()
        end;
        if List.mem t.listener readable then accept_loop t;
        List.iter
          (fun c -> if List.mem c.fd readable then handle_readable t c)
          t.conns;
        drain t;
        List.iter
          (fun c ->
            if List.mem c.fd writable && not (Queue.is_empty c.outq) then
              flush_output c)
          t.conns;
        reap t
  done;
  List.iter (close_conn t) t.conns;
  t.conns <- [];
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.addr with
  | Addr.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Addr.Tcp _ -> ());
  let c = counters t in
  Log.info (fun m ->
      m "stopped: %d conns accepted, %d requests, %d batches (max %d)"
        c.accepted c.served c.batches c.max_batch)

let start t = t.domain <- Some (Domain.spawn (fun () -> run t))

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try ignore (Unix.write_substring t.stop_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    try Unix.close t.stop_w with Unix.Unix_error _ -> ()
  end
