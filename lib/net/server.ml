let src = Logs.Src.create "fastver.net.server" ~doc:"FastVer serving loop"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  batch_limit : int;
  queue_limit : int;
  conn_out_limit : int;
  max_frame : int;
  max_scan_len : int;
  read_only : bool;
      (* replication follower mode: refuse puts, and answer [Verify] from
         the already-verified epoch instead of running a scan (a follower's
         epochs are sealed by the primary's stream, never locally) *)
}

let default_config =
  {
    batch_limit = 256;
    queue_limit = 1024;
    conn_out_limit = 4 * 1024 * 1024;
    max_frame = Wire.max_frame;
    max_scan_len = 65536;
    read_only = false;
  }

type counters = {
  accepted : int;
  served : int;
  batches : int;
  max_batch : int;
  proto_errors : int;
  op_failures : int;
}

(* Live counters ride the system's metric registry as [Atomic.t]s: they are
   mutated in the server's domain and read from callers' threads (tests,
   the CLI), which plain [mutable int]s cannot do soundly. *)
type metrics = {
  m_accepted : Fastver_obs.Counter.t;
  m_served : Fastver_obs.Counter.t;
  m_batches : Fastver_obs.Counter.t;
  m_proto_errors : Fastver_obs.Counter.t;
  m_op_failures : Fastver_obs.Counter.t;
  m_lost_wakeups : Fastver_obs.Counter.t;
  m_batch_requests : Fastver_obs.Histogram.t;
  m_request_seconds : Fastver_obs.Histogram.t;
}

let make_metrics sys =
  let module Reg = Fastver_obs.Registry in
  let reg = Fastver.registry sys in
  {
    m_accepted =
      Reg.counter reg ~help:"Connections accepted"
        "fastver_net_connections_total";
    m_served =
      Reg.counter reg ~help:"Requests answered (including errors)"
        "fastver_net_requests_total";
    m_batches =
      Reg.counter reg ~help:"Worker-loop drains" "fastver_net_batches_total";
    m_proto_errors =
      Reg.counter reg ~help:"Malformed frames or requests"
        "fastver_net_proto_errors_total";
    m_op_failures =
      Reg.counter reg ~help:"Operations answered with an error"
        "fastver_net_op_failures_total";
    m_lost_wakeups =
      Reg.counter reg
        ~help:
          "Select-loop wake-up writes that failed for a reason other than \
           a full pipe or an orderly shutdown"
        "fastver_net_lost_wakeups_total";
    m_batch_requests =
      Reg.histogram reg ~help:"Requests per worker-loop drain"
        "fastver_net_batch_requests";
    m_request_seconds =
      Reg.histogram reg ~scale:1e-9
        ~help:"End-to-end request latency (decode to response enqueue)"
        "fastver_request_seconds";
  }

type conn = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  outq : string Queue.t;
  slots : (int64 * float * Wire.response option Atomic.t) Queue.t;
      (* (id, arrival, reply slot) in request order: responses — filled by
         executor domains or inline — are emitted strictly from the head,
         so per-connection reply order survives parallel execution *)
  enc : Buffer.t; (* reused encode buffer (one frame string per response) *)
  mutable out_off : int; (* written prefix of the head of [outq] *)
  mutable out_bytes : int; (* total queued output *)
  mutable client : int option;
  mutable closing : bool; (* close once output drains *)
  mutable dead : bool; (* close now, discard output *)
}

(* One executor batch: data operations for a single owning worker, run
   through [Fastver.Batch.submit ~worker] off the I/O domain. Executors
   never see a [conn] or an fd — they only fill the reply slots. *)
type job = {
  j_owner : int option; (* [None] = unpinned (inline single-domain mode) *)
  j_ops : (int64 * Fastver.Batch.op * Wire.response option Atomic.t) array;
      (* (wire nonce, op, reply slot) *)
}

(* Executor pool (active when the system has more than one shard): one
   domain per verifier shard, fed over a bounded queue each. Routing jobs
   by key owner keeps every shard's locks, tree and verification-log buffer
   touched from one executor at a time, and the per-owner FIFO makes
   operations on the same key execute in arrival order (same key -> same
   shard -> same queue). Cross-shard requests (scans, verify, admin)
   quiesce the pool first. *)
type pool = {
  n_execs : int;
  queues : job Fastver.Bounded_queue.t array; (* one SPSC queue per executor *)
  mutable execs : unit Domain.t array;
  in_flight : int Atomic.t; (* jobs pushed but not yet completed *)
  idle_lock : Mutex.t;
  idle_cond : Condition.t; (* signalled when [in_flight] drops to 0 *)
  wake_r : Unix.file_descr; (* executor completion -> select wake-up *)
  wake_w : Unix.file_descr;
}

type t = {
  sys : Fastver.t;
  cfg : config;
  read_only : bool Atomic.t;
      (* starts as cfg.read_only; election promotion flips it off on a live
         follower (and demotion flips it back) without restarting the loop *)
  listener : Unix.file_descr;
  addr : Addr.t;
  pending : (conn * int64 * Wire.request * float) Queue.t;
      (* (conn, id, request, arrival time) — the timestamp feeds the
         end-to-end latency histogram when the response is enqueued *)
  mutable conns : conn list;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  vwake_r : Unix.file_descr;
      (* background-verification completion -> select wake-up: the
         [Fastver.verify_async] callback runs on the scan domain, where
         filling a reply slot alone would leave the response sitting until
         unrelated traffic re-entered the event loop *)
  vwake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  mutable domain : unit Domain.t option;
  metrics : metrics;
  clients_in_use : (int, conn) Hashtbl.t;
  scratch : Bytes.t;
  pool : pool option;
}

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) sys ~listen =
  (* A client that disconnects with a server write still pending would
     otherwise deliver a fatal SIGPIPE to the whole process. Ignore it so
     the failure surfaces as EPIPE, which the per-connection write path
     turns into [conn.dead]. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Addr.to_sockaddr listen with
  | Error e -> Error e
  | Ok sockaddr -> (
      let fd = Unix.socket (Addr.domain listen) Unix.SOCK_STREAM 0 in
      match
        (match listen with
        | Addr.Unix_sock path ->
            if Sys.file_exists path then Unix.unlink path
        | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
        Unix.bind fd sockaddr;
        Unix.listen fd 128;
        Unix.set_nonblock fd
      with
      | () ->
          let addr =
            (* read the effective address back (supports tcp port 0) *)
            match (listen, Unix.getsockname fd) with
            | Addr.Tcp (host, _), Unix.ADDR_INET (_, port) ->
                Addr.Tcp (host, port)
            | a, _ -> a
          in
          let stop_r, stop_w = Unix.pipe ~cloexec:true () in
          Unix.set_nonblock stop_r;
          let vwake_r, vwake_w = Unix.pipe ~cloexec:true () in
          Unix.set_nonblock vwake_r;
          Unix.set_nonblock vwake_w;
          let pool =
            (* One executor per verifier shard: batches are grouped by
               {!Fastver.owner_of_key}, which names shards, so the queue
               array must cover every shard id even when shards exceed
               workers. *)
            let n = Fastver.n_shards sys in
            if n <= 1 then None
            else begin
              let wake_r, wake_w = Unix.pipe ~cloexec:true () in
              Unix.set_nonblock wake_r;
              Unix.set_nonblock wake_w;
              Some
                {
                  n_execs = n;
                  queues =
                    Array.init n (fun _ -> Fastver.Bounded_queue.create 8);
                  execs = [||];
                  in_flight = Atomic.make 0;
                  idle_lock = Mutex.create ();
                  idle_cond = Condition.create ();
                  wake_r;
                  wake_w;
                }
            end
          in
          Ok
            {
              sys;
              cfg = config;
              read_only = Atomic.make config.read_only;
              listener = fd;
              addr;
              pending = Queue.create ();
              conns = [];
              stop_r;
              stop_w;
              vwake_r;
              vwake_w;
              stopping = Atomic.make false;
              domain = None;
              metrics = make_metrics sys;
              clients_in_use = Hashtbl.create 16;
              scratch = Bytes.create 65536;
              pool;
            }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen on %s: %s" (Addr.to_string listen)
               (Unix.error_message e)))

let bound_addr t = t.addr
let read_only t = Atomic.get t.read_only
let set_read_only t v = Atomic.set t.read_only v

let counters t =
  let module C = Fastver_obs.Counter in
  let batch = Fastver_obs.Histogram.snapshot t.metrics.m_batch_requests in
  {
    accepted = C.get t.metrics.m_accepted;
    served = C.get t.metrics.m_served;
    batches = C.get t.metrics.m_batches;
    max_batch = batch.Fastver_obs.Histogram.max;
    proto_errors = C.get t.metrics.m_proto_errors;
    op_failures = C.get t.metrics.m_op_failures;
  }

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

(* Emit the filled prefix of the reply-slot queue. Slots behind an
   operation still running on an executor stay queued, so responses leave
   in request order even when later operations finished first. *)
let emit_ready t conn =
  if not conn.dead then begin
    let continue = ref true in
    while !continue && not (Queue.is_empty conn.slots) do
      let _, _, slot = Queue.peek conn.slots in
      match Atomic.get slot with
      | None -> continue := false
      | Some resp ->
          let id, arrived, _ = Queue.pop conn.slots in
          let s = Wire.encode_response_into conn.enc ~id resp in
          Queue.push s conn.outq;
          conn.out_bytes <- conn.out_bytes + String.length s;
          Fastver_obs.Counter.incr t.metrics.m_served;
          Fastver_obs.Histogram.record_span t.metrics.m_request_seconds
            (Unix.gettimeofday () -. arrived)
    done
  end

(* Queue an already-computed response at this request's position. *)
let post t conn id ~arrived resp =
  if not conn.dead then begin
    Queue.push (id, arrived, Atomic.make (Some resp)) conn.slots;
    emit_ready t conn
  end

let flush_output conn =
  try
    let continue = ref true in
    while !continue && not (Queue.is_empty conn.outq) do
      let head = Queue.peek conn.outq in
      match Sockio.write_sub conn.fd head conn.out_off with
      | `Again -> continue := false
      | `Wrote n ->
          conn.out_off <- conn.out_off + n;
          conn.out_bytes <- conn.out_bytes - n;
          if conn.out_off = String.length head then begin
            ignore (Queue.pop conn.outq);
            conn.out_off <- 0
          end
    done
  with Unix.Unix_error _ -> conn.dead <- true

(* ------------------------------------------------------------------ *)
(* Request processing                                                  *)
(* ------------------------------------------------------------------ *)

let item_of (b : Fastver.Batch.item) : Wire.item =
  { key = b.ikey; value = b.ivalue; epoch = b.iepoch; mac = b.imac }

let stats_reply t =
  let s = Fastver.stats t.sys in
  let i = Int64.of_int in
  Wire.Stats_reply
    {
      ops = i s.ops;
      gets = i s.gets;
      puts = i s.puts;
      scans = i s.scans;
      verifies = i s.verifies;
      fast_path = i s.blum_fast_path;
      merkle_path = i s.merkle_path;
      epoch = i (Fastver.current_epoch t.sys);
    }

(* Classify a request: [`Data] ops accumulate into the next worker-loop
   drain; [`Admin] ops run inline at their position so per-connection
   ordering is exact. *)
let classify t conn req =
  let auth = (Fastver.config t.sys).authenticate_clients in
  let client () =
    match conn.client with
    | Some c -> Ok c
    | None -> if auth then Error "no open session" else Ok 0
  in
  match (req : Wire.request) with
  | Wire.Get { key; nonce } -> (
      match client () with
      | Error e -> `Err e
      | Ok client -> `Data (Fastver.Batch.Get { client; nonce; key }))
  | Wire.Put { key; nonce; mac; value } -> (
      if Atomic.get t.read_only then
        `Err "read-only follower: puts go to the primary"
      else
        match client () with
        | Error e -> `Err e
        | Ok client ->
            `Data (Fastver.Batch.Put { client; nonce; mac; key; value }))
  | Wire.Scan { start; len; nonce } -> (
      if len < 0 || len > t.cfg.max_scan_len then `Err "scan length out of range"
      else
        match client () with
        | Error e -> `Err e
        | Ok client -> `Data (Fastver.Batch.Scan { client; nonce; start; len }))
  | Wire.Open_session { client } ->
      `Admin
        (fun conn ->
          match (conn.client, Hashtbl.find_opt t.clients_in_use client) with
          | Some _, _ -> Wire.Error "session already open on this connection"
          | None, Some other when other != conn ->
              Wire.Error "client id already in use"
          | None, _ ->
              conn.client <- Some client;
              Hashtbl.replace t.clients_in_use client conn;
              Wire.Session_opened { client })
  | Wire.Close_session ->
      `Admin
        (fun conn ->
          (match conn.client with
          | Some c -> Hashtbl.remove t.clients_in_use c
          | None -> ());
          conn.client <- None;
          Wire.Session_closed)
  | Wire.Verify ->
      if Atomic.get t.read_only then
        (* A follower never seals epochs itself — its verified epoch only
           advances when the primary's boundary certificate authenticates.
           Re-sign the certificate for the epoch we already hold so the
           client's [verify_now] check works unchanged. *)
        `Admin
          (fun _conn ->
            let epoch = Fastver.verified_epoch t.sys in
            if epoch < 0 then Wire.Error "read-only follower: no epoch verified yet"
            else
              let cert =
                Fastver_crypto.Hmac.mac
                  ~key:(Fastver.config t.sys).mac_secret
                  (Fastver_verifier.Verifier.epoch_certificate_message ~epoch)
              in
              Wire.Verified { epoch; cert })
      else if (Fastver.config t.sys).background_verify then
        (* No quiesce, no blocking the I/O domain: the scan runs on a
           background domain and the reply slot is filled from its
           completion callback (see [`Verify] in [drain]). *)
        `Verify
      else
        `Admin
          (fun _conn ->
            let epoch = Fastver.current_epoch t.sys in
            match Fastver.verify t.sys with
            | cert -> Wire.Verified { epoch; cert }
            | exception Fastver.Integrity_violation e ->
                Wire.Error ("integrity: " ^ e))
  | Wire.Stats -> `Admin (fun _conn -> stats_reply t)
  | Wire.Metrics { format } ->
      `Admin
        (fun _conn ->
          let reg = Fastver.registry t.sys in
          let data =
            match format with
            | Wire.Json -> Fastver_obs.Registry.to_json reg
            | Wire.Prometheus -> Fastver_obs.Registry.to_prometheus reg
          in
          Wire.Metrics_reply { format; data })
  | Wire.Subscribe _ | Wire.Fetch_checkpoint | Wire.Announce_term _
  | Wire.Promote _ ->
      `Err "replication opcodes are served on the replication listener"

let response_of_reply nonce (reply : Fastver.Batch.reply) =
  match reply with
  | Fastver.Batch.Got item -> Wire.Got { nonce; item = item_of item }
  | Fastver.Batch.Put_done item -> Wire.Put_ok { nonce; item = item_of item }
  | Fastver.Batch.Scanned items ->
      Wire.Scanned { nonce; items = Array.map item_of items }
  | Fastver.Batch.Failed e -> Wire.Error ("integrity: " ^ e)

let nonce_of = function
  | Wire.Get { nonce; _ } | Wire.Put { nonce; _ } | Wire.Scan { nonce; _ } ->
      nonce
  | Wire.Open_session _ | Wire.Close_session | Wire.Verify | Wire.Stats
  | Wire.Metrics _ | Wire.Subscribe _ | Wire.Fetch_checkpoint
  | Wire.Announce_term _ | Wire.Promote _ ->
      0L

(* ------------------------------------------------------------------ *)
(* Executor pool                                                       *)
(* ------------------------------------------------------------------ *)

(* Run one batch of data operations and fill its reply slots. Puts were
   already admitted on the I/O domain (client MAC + nonce consumed in
   arrival order), so the submit skips re-admission. Called from executor
   domains and, in single-worker mode, inline on the I/O domain. *)
let run_job t (job : job) =
  let ops = Array.map (fun (_, op, _) -> op) job.j_ops in
  let replies =
    try Fastver.Batch.submit ?worker:job.j_owner ~pre_admitted:true t.sys ops
    with exn ->
      (* [Batch.submit] maps per-op failures to [Failed] itself; anything
         escaping (e.g. a tampering detection in an auto-triggered
         verification scan) must not kill an executor domain. *)
      Array.map (fun _ -> Fastver.Batch.Failed (Printexc.to_string exn)) ops
  in
  Array.iteri
    (fun i (nonce, _, slot) ->
      (match replies.(i) with
      | Fastver.Batch.Failed _ ->
          Fastver_obs.Counter.incr t.metrics.m_op_failures
      | _ -> ());
      Atomic.set slot (Some (response_of_reply nonce replies.(i))))
    job.j_ops

(* One-byte wake-up write into a select-loop pipe. EAGAIN/EWOULDBLOCK are
   success: a full pipe already guarantees a pending wake-up. EPIPE/EBADF
   during an orderly shutdown are expected — the loop closed its end and
   will not select again. Anything else really did lose a wake-up (the
   select loop may sleep on a filled reply slot until unrelated traffic
   arrives), so make it loud instead of swallowing it. *)
let wake t fd =
  try ignore (Unix.write_substring fd "x" 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _)
    when Atomic.get t.stopping ->
      ()
  | Unix.Unix_error (e, fn, _) ->
      Fastver_obs.Counter.incr t.metrics.m_lost_wakeups;
      Log.err (fun m ->
          m "lost select-loop wake-up: %s failed with %s" fn
            (Unix.error_message e))

let executor t p wid () =
  let rec loop () =
    match Fastver.Bounded_queue.pop p.queues.(wid) with
    | None -> () (* closed and drained: shutdown *)
    | Some job ->
        run_job t job;
        Mutex.lock p.idle_lock;
        ignore (Atomic.fetch_and_add p.in_flight (-1));
        if Atomic.get p.in_flight = 0 then Condition.broadcast p.idle_cond;
        Mutex.unlock p.idle_lock;
        wake t p.wake_w;
        loop ()
  in
  loop ()

(* Wait until every dispatched job has completed (its slots filled). The
   barrier before cross-partition work: verify, stats, metrics, session
   admin and multi-key scans all observe a quiescent pool. *)
let barrier p =
  Mutex.lock p.idle_lock;
  while Atomic.get p.in_flight > 0 do
    Condition.wait p.idle_cond p.idle_lock
  done;
  Mutex.unlock p.idle_lock

let dispatch t p ~owner job =
  Atomic.incr p.in_flight;
  if not (Fastver.Bounded_queue.push p.queues.(owner) job) then begin
    (* The queue closed under us: [stop] raced this drain. No executor will
       run the job, so fail its operations in place — the reply slots must
       fill (a [closing] connection waits on them) and [in_flight] must
       come back down or the final [barrier] would hang the shutdown. *)
    Array.iter
      (fun (_, _, slot) ->
        Fastver_obs.Counter.incr t.metrics.m_op_failures;
        Atomic.set slot (Some (Wire.Error "shutdown: server stopping")))
      job.j_ops;
    Mutex.lock p.idle_lock;
    ignore (Atomic.fetch_and_add p.in_flight (-1));
    if Atomic.get p.in_flight = 0 then Condition.broadcast p.idle_cond;
    Mutex.unlock p.idle_lock
  end

let admit t (op : Fastver.Batch.op) =
  match op with
  | Fastver.Batch.Put { client; nonce; mac; key; value } ->
      Fastver.admit_put t.sys ~client ~nonce ~mac ~key ~value
  | Fastver.Batch.Get _ | Fastver.Batch.Scan _ -> Ok ()

(* Drain up to [batch_limit] pending requests. Data operations accumulate
   into per-owner groups — one [Batch.submit] (one log flush) per owner per
   drain — dispatched to the executor pool, or run inline as a single
   unpinned batch when there is no pool. Admin operations and scans
   quiesce the pool and run at their exact position; reply slots keep
   per-connection response order either way. *)
let drain t =
  if not (Queue.is_empty t.pending) then begin
    let batch = ref [] and n = ref 0 in
    while !n < t.cfg.batch_limit && not (Queue.is_empty t.pending) do
      batch := Queue.pop t.pending :: !batch;
      incr n
    done;
    let batch = List.rev !batch in
    Fastver_obs.Counter.incr t.metrics.m_batches;
    Fastver_obs.Histogram.record t.metrics.m_batch_requests !n;
    let n_groups = match t.pool with Some p -> p.n_execs | None -> 1 in
    let groups = Array.make n_groups [] in
    (* (nonce, op, slot), newest first *)
    let any = ref false in
    let flush_acc () =
      if !any then begin
        any := false;
        Array.iteri
          (fun owner -> function
            | [] -> ()
            | entries ->
                groups.(owner) <- [];
                let job =
                  {
                    j_owner =
                      (match t.pool with Some _ -> Some owner | None -> None);
                    j_ops = Array.of_list (List.rev entries);
                  }
                in
                match t.pool with
                | None -> run_job t job
                | Some p -> dispatch t p ~owner job)
          groups
      end
    in
    let quiesce () =
      flush_acc ();
      match t.pool with Some p -> barrier p | None -> ()
    in
    List.iter
      (fun (conn, id, req, arrived) ->
        if not conn.dead then
          match classify t conn req with
          | `Data op -> (
              match admit t op with
              | Error e ->
                  Fastver_obs.Counter.incr t.metrics.m_op_failures;
                  post t conn id ~arrived (Wire.Error ("integrity: " ^ e))
              | Ok () -> (
                  let slot = Atomic.make None in
                  Queue.push (id, arrived, slot) conn.slots;
                  let entry = (nonce_of req, op, slot) in
                  match (t.pool, op) with
                  | Some _, (Fastver.Batch.Get { key; _ }
                            | Fastver.Batch.Put { key; _ }) ->
                      let owner = Fastver.owner_of_key t.sys key in
                      groups.(owner) <- entry :: groups.(owner);
                      any := true
                  | Some _, Fastver.Batch.Scan _ ->
                      (* A scan may span owner partitions: run it inline
                         against a quiescent pool so it observes every
                         earlier put. *)
                      quiesce ();
                      run_job t { j_owner = None; j_ops = [| entry |] }
                  | None, _ ->
                      groups.(0) <- entry :: groups.(0);
                      any := true))
          | `Verify ->
              (* Dispatch (not barrier) the data ops accumulated so far, so
                 this connection's earlier puts are at least in executor
                 queues when the scan domain seals the epoch boundary; the
                 certificate covers whatever prefix beat the seal, exactly
                 the contract of a concurrent verification. *)
              flush_acc ();
              let slot = Atomic.make None in
              Queue.push (id, arrived, slot) conn.slots;
              Fastver.verify_async t.sys ~on_complete:(fun res ->
                  (match res with
                  | Ok (epoch, cert) ->
                      Atomic.set slot (Some (Wire.Verified { epoch; cert }))
                  | Error e ->
                      Fastver_obs.Counter.incr t.metrics.m_op_failures;
                      let reason =
                        match e with
                        | Fastver.Integrity_violation r -> r
                        | e -> Printexc.to_string e
                      in
                      Atomic.set slot (Some (Wire.Error ("integrity: " ^ reason))));
                  wake t t.vwake_w)
          | `Admin f ->
              quiesce ();
              post t conn id ~arrived (f conn)
          | `Err e ->
              Fastver_obs.Counter.incr t.metrics.m_op_failures;
              post t conn id ~arrived (Wire.Error e))
      batch;
    flush_acc ();
    (* opportunistic write: the sockets are almost always writable *)
    List.iter
      (fun (conn, _, _, _) ->
        emit_ready t conn;
        if not (Queue.is_empty conn.outq) then flush_output conn)
      batch
  end

(* ------------------------------------------------------------------ *)
(* Input                                                               *)
(* ------------------------------------------------------------------ *)

let protocol_error t conn msg =
  Fastver_obs.Counter.incr t.metrics.m_proto_errors;
  (* arrival = now: a malformed frame has no decoded request to timestamp,
     but every emitted response must carry a latency sample so that the
     request histogram's count always equals [served] *)
  post t conn 0L ~arrived:(Unix.gettimeofday ())
    (Wire.Error ("protocol: " ^ msg));
  conn.closing <- true

let parse_frames t conn =
  let continue = ref true in
  while !continue && not conn.closing do
    match Frame.next conn.reader with
    | Ok None -> continue := false
    | Ok (Some payload) -> (
        match Wire.decode_request payload with
        | Ok (id, req) ->
            Queue.push (conn, id, req, Unix.gettimeofday ()) t.pending
        | Error e -> protocol_error t conn e)
    | Error e -> protocol_error t conn e
  done

let handle_readable t conn =
  let continue = ref true in
  while !continue do
    match Sockio.read_chunk conn.fd t.scratch with
    | `Again -> continue := false
    | `Eof ->
        conn.closing <- true;
        continue := false
    | `Data n -> Frame.feed conn.reader t.scratch 0 n
    | exception Unix.Unix_error _ ->
        conn.dead <- true;
        continue := false
  done;
  parse_frames t conn

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listener with
    | fd, _peer ->
        Unix.set_nonblock fd;
        (match t.addr with
        | Addr.Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
        | Addr.Unix_sock _ -> ());
        Fastver_obs.Counter.incr t.metrics.m_accepted;
        t.conns <-
          {
            fd;
            reader = Frame.create ~max_frame:t.cfg.max_frame ();
            outq = Queue.create ();
            slots = Queue.create ();
            enc = Buffer.create 256;
            out_off = 0;
            out_bytes = 0;
            client = None;
            closing = false;
            dead = false;
          }
          :: t.conns
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

let close_conn t conn =
  (match conn.client with
  | Some c -> Hashtbl.remove t.clients_in_use c
  | None -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

let reap t =
  let gone, kept =
    List.partition
      (fun c ->
        (* a closing connection waits for replies still in flight on the
           pool ([slots]) as well as unwritten output *)
        c.dead
        || (c.closing && Queue.is_empty c.outq && Queue.is_empty c.slots))
      t.conns
  in
  List.iter (close_conn t) gone;
  t.conns <- kept

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

let run t =
  Log.info (fun m -> m "serving on %a" Addr.pp t.addr);
  (match t.pool with
  | Some p ->
      Log.info (fun m -> m "executor pool: %d shard domains" p.n_execs);
      p.execs <- Array.init p.n_execs (fun wid -> Domain.spawn (executor t p wid))
  | None -> ());
  while not (Atomic.get t.stopping) do
    let backpressured = Queue.length t.pending >= t.cfg.queue_limit in
    let read_fds =
      t.stop_r :: t.vwake_r :: t.listener
      :: List.filter_map
           (fun c ->
             if
               (not c.closing) && (not c.dead) && (not backpressured)
               && c.out_bytes < t.cfg.conn_out_limit
             then Some c.fd
             else None)
           t.conns
    in
    let read_fds =
      match t.pool with Some p -> p.wake_r :: read_fds | None -> read_fds
    in
    let write_fds =
      List.filter_map
        (fun c ->
          if (not c.dead) && not (Queue.is_empty c.outq) then Some c.fd
          else None)
        t.conns
    in
    (* Block until an fd is ready: [drain] below always empties [pending],
       and every other wake source — stop, pool completions, background
       verification completions, new frames — is a pipe or socket in
       [read_fds]. A zero timeout here would busy-spin the I/O domain
       whenever a single slow executor kept any request pending. *)
    match Unix.select read_fds write_fds [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* a connection died under us between loop passes *)
        reap t
    | readable, writable, _ ->
        if List.mem t.stop_r readable then begin
          let buf = Bytes.create 64 in
          try ignore (Unix.read t.stop_r buf 0 64) with Unix.Unix_error _ -> ()
        end;
        (match t.pool with
        | Some p when List.mem p.wake_r readable -> (
            (* drain coalesced completion wake-ups *)
            let buf = Bytes.create 256 in
            try
              while Unix.read p.wake_r buf 0 256 = 256 do
                ()
              done
            with Unix.Unix_error _ -> ())
        | _ -> ());
        (if List.mem t.vwake_r readable then
           let buf = Bytes.create 256 in
           try
             while Unix.read t.vwake_r buf 0 256 = 256 do
               ()
             done
           with Unix.Unix_error _ -> ());
        if List.mem t.listener readable then accept_loop t;
        List.iter
          (fun c -> if List.mem c.fd readable then handle_readable t c)
          t.conns;
        (* to empty: the blocking select above relies on it *)
        while not (Queue.is_empty t.pending) do
          drain t
        done;
        ignore writable;
        List.iter
          (fun c ->
            emit_ready t c;
            (* opportunistic write for pool completions too, not just fds
               select reported writable: a failed attempt is one EAGAIN *)
            if not (Queue.is_empty c.outq) then flush_output c)
          t.conns;
        reap t
  done;
  (match t.pool with
  | Some p ->
      Array.iter Fastver.Bounded_queue.close p.queues;
      Array.iter Domain.join p.execs;
      p.execs <- [||];
      (try Unix.close p.wake_r with Unix.Unix_error _ -> ());
      (try Unix.close p.wake_w with Unix.Unix_error _ -> ())
  | None -> ());
  (* Executors are gone, so no new scan can start; join any background
     verification still running before its completion callback could write
     a closed vwake fd. *)
  Fastver.wait_verify t.sys;
  (try Unix.close t.vwake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.vwake_w with Unix.Unix_error _ -> ());
  List.iter (close_conn t) t.conns;
  t.conns <- [];
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.addr with
  | Addr.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Addr.Tcp _ -> ());
  let c = counters t in
  Log.info (fun m ->
      m "stopped: %d conns accepted, %d requests, %d batches (max %d)"
        c.accepted c.served c.batches c.max_batch)

let start t = t.domain <- Some (Domain.spawn (fun () -> run t))

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try ignore (Unix.write_substring t.stop_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    try Unix.close t.stop_w with Unix.Unix_error _ -> ()
  end
