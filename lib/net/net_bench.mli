(** Closed-loop network benchmark: N clients, each keeping a window of
    pipelined requests in flight against one server, every response
    signature verified client-side. Used by [fastver client-bench] and the
    [net] figure of the bench harness. *)

type result = {
  clients : int;
  window : int;
  ops : int;  (** operations completed (all clients) *)
  wall_s : float;
  ops_per_s : float;
  p50_ms : float;  (** per-operation latency percentiles, milliseconds *)
  p99_ms : float;
  mean_ms : float;
  integrity_failures : int;
      (** responses whose signature failed verification — must be 0 against
          an honest server *)
  errors : int;  (** other per-client failures (connection loss etc.) *)
}

val pp_result : Format.formatter -> result -> unit

val run :
  addr:Addr.t ->
  clients:int ->
  window:int ->
  ops:int ->
  db_size:int ->
  ?put_ratio:float ->
  ?verify:bool ->
  ?secret:string ->
  ?seed:int ->
  ?first_client:int ->
  unit ->
  result
(** Each client runs [ops / clients] operations ([put_ratio] of them puts,
    default 0.5) over uniformly random keys in [0, db_size), with [window]
    requests pipelined (default secret/seed: the {!Fastver.Config.default}
    ones). Client ids are [first_client, first_client + clients) (default
    1). Latency is measured send-to-verified-completion per request. *)
