exception Server_error of string
exception Protocol_error of string
exception Timeout

let () =
  Printexc.register_printer (function
    | Server_error e -> Some (Printf.sprintf "Fastver_net.Client.Server_error(%s)" e)
    | Protocol_error e ->
        Some (Printf.sprintf "Fastver_net.Client.Protocol_error(%s)" e)
    | Timeout -> Some "Fastver_net.Client.Timeout"
    | _ -> None)

type t = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  scratch : Bytes.t;
  enc : Buffer.t; (* reused encode buffer: one frame string per send *)
  mutable next_id : int64;
  mutable closed : bool;
}

let connect addr =
  match Addr.to_sockaddr addr with
  | Error e -> Error e
  | Ok sockaddr -> (
      let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
      match
        Unix.connect fd sockaddr;
        match addr with
        | Addr.Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
        | Addr.Unix_sock _ -> ()
      with
      | () ->
          Ok
            {
              fd;
              reader = Frame.create ();
              scratch = Bytes.create 65536;
              enc = Buffer.create 256;
              next_id = 0L;
              closed = false;
            }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot connect to %s: %s" (Addr.to_string addr)
               (Unix.error_message e)))

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* shutdown first: close alone does not wake a domain blocked in read
       on the same fd, and the replication follower closes from stop () *)
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send t req =
  let id = t.next_id in
  t.next_id <- Int64.succ t.next_id;
  Sockio.send_all t.fd (Wire.encode_request_into t.enc ~id req);
  id

(* [?timeout] bounds the whole wait for one response (a deadline, not a
   per-read idle budget): a half-open server — frozen under SIGSTOP, or
   killed mid-handshake with the socket left dangling — otherwise parks the
   caller in select forever. Raises [Timeout]; the connection is then in an
   unknown mid-frame state and must be closed, which is what the follower's
   reconnect path does. *)
let recv ?timeout t =
  let deadline =
    match timeout with None -> None | Some d -> Some (Unix.gettimeofday () +. d)
  in
  let wait () =
    match deadline with
    | None -> ignore (Unix.select [ t.fd ] [] [] (-1.0))
    | Some dl ->
        let left = dl -. Unix.gettimeofday () in
        if left <= 0.0 then raise Timeout;
        let r, _, _ = Unix.select [ t.fd ] [] [] left in
        if r = [] then raise Timeout
  in
  let rec frame () =
    match Frame.next t.reader with
    | Error e -> raise (Protocol_error e)
    | Ok (Some payload) -> payload
    | Ok None -> (
        (* the fd is blocking: with a deadline, prove readability first or
           [read] would park here past it *)
        (match deadline with Some _ -> wait () | None -> ());
        match Sockio.read_chunk t.fd t.scratch with
        | `Eof -> raise (Protocol_error "connection closed by server")
        | `Data n ->
            Frame.feed t.reader t.scratch 0 n;
            frame ()
        | `Again ->
            wait ();
            frame ())
  in
  match Wire.decode_response (frame ()) with
  | Ok (id, resp) -> (id, resp)
  | Error e -> raise (Protocol_error e)

let expect_id id (id', resp) =
  if not (Int64.equal id id') then
    raise
      (Protocol_error
         (Printf.sprintf "out-of-order response: expected id %Ld, got %Ld" id
            id'));
  resp

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type expect =
  | X_get of { id : int64; key : int64; nonce : int64 }
  | X_put of { id : int64; key : int64; nonce : int64; value : string option }
  | X_scan of { id : int64; start : int64; len : int; nonce : int64 }

type session = {
  conn : t;
  client : int;
  auth : Fastver.Auth.key option; (* None = trust the transport *)
  secret : string;
  mutable nonce : int64;
  inflight : expect Queue.t;
  max_staleness : int;
  mutable max_epoch : int; (* highest *certified* epoch seen this session *)
}

(* Default staleness budget of one epoch: a read executed concurrently
   with the verification scan that produced the session's newest
   certificate is legitimately stamped one epoch behind it. Anything
   wider means the server is serving old state. *)
let open_session ?(verify = true) ?(max_staleness = 1) conn ~client ~secret =
  let id = send conn (Wire.Open_session { client }) in
  (match expect_id id (recv conn) with
  | Wire.Session_opened { client = c } when c = client -> ()
  | Wire.Session_opened _ -> raise (Protocol_error "session echo mismatch")
  | Wire.Error e -> raise (Server_error e)
  | _ -> raise (Protocol_error "unexpected response to open-session"));
  {
    conn;
    client;
    auth = (if verify then Some (Fastver.Auth.key_of_secret secret) else None);
    secret;
    nonce = 0L;
    inflight = Queue.create ();
    max_staleness;
    max_epoch = 0;
  }

(* ------------------------------------------------------------------ *)
(* Pipelined sends                                                     *)
(* ------------------------------------------------------------------ *)

let next_nonce s =
  s.nonce <- Int64.succ s.nonce;
  s.nonce

let send_get s key =
  let nonce = next_nonce s in
  let id = send s.conn (Wire.Get { key; nonce }) in
  Queue.push (X_get { id; key; nonce }) s.inflight;
  id

let send_put_opt s key value =
  let nonce = next_nonce s in
  let mac =
    match s.auth with
    | None -> ""
    | Some k ->
        Fastver.Auth.put_request k ~client:s.client ~nonce (Key.of_int64 key)
          (Option.value value ~default:"")
  in
  let id = send s.conn (Wire.Put { key; nonce; mac; value }) in
  Queue.push (X_put { id; key; nonce; value }) s.inflight;
  id

let send_put s key value = send_put_opt s key (Some value)
let send_delete s key = send_put_opt s key None

let send_scan s start len =
  let nonce = next_nonce s in
  let id = send s.conn (Wire.Scan { start; len; nonce }) in
  Queue.push (X_scan { id; start; len; nonce }) s.inflight;
  id

(* ------------------------------------------------------------------ *)
(* Verified receipt checking                                           *)
(* ------------------------------------------------------------------ *)

let check_item s ~kind ~nonce (item : Wire.item) =
  match s.auth with
  | None -> ()
  | Some key ->
      let expected =
        Fastver.Auth.receipt key ~kind ~client:s.client ~nonce
          (Key.of_int64 item.key) item.value ~epoch:item.epoch
      in
      if not (Fastver.Auth.check ~expected item.mac) then
        raise
          (Fastver.Integrity_violation
             (Printf.sprintf "client: receipt MAC mismatch for key %Ld"
                item.key));
      (* Stale-epoch detection against the session's *certified* anchor
         (the highest epoch a checked [verify_now] certificate carried).
         Receipt stamps mean "final once this epoch verifies", and deferred
         ops are stamped at validation while fast-path neighbours are
         stamped at execution, so receipt-vs-receipt comparison would flag
         honest pipelines that straddle a seal. Against a certificate the
         check is sound: once this session has seen the store certified at
         epoch E, a MAC-valid receipt stamped more than [max_staleness]
         below E means the server is serving authentic-but-old state — a
         lagging or rolled-back replica. *)
      if item.epoch + s.max_staleness < s.max_epoch then
        raise
          (Fastver.Integrity_violation
             (Printf.sprintf
                "client: stale epoch %d for key %Ld (session saw the store \
                 certified at epoch %d, max staleness %d)"
                item.epoch item.key s.max_epoch s.max_staleness))

type reply =
  | Value of string option
  | Stored
  | Scan_result of (int64 * string option) array

let await s =
  match Queue.take_opt s.inflight with
  | None -> invalid_arg "Client.await: nothing in flight"
  | Some expect -> (
      let id =
        match expect with
        | X_get { id; _ } | X_put { id; _ } | X_scan { id; _ } -> id
      in
      match (expect, expect_id id (recv s.conn)) with
      | _, Wire.Error e -> raise (Server_error e)
      | X_get { key; nonce; _ }, Wire.Got { nonce = n'; item } ->
          if not (Int64.equal nonce n') then
            raise (Protocol_error "nonce echo mismatch");
          if not (Int64.equal item.key key) then
            raise (Protocol_error "key echo mismatch");
          check_item s ~kind:Fastver.Auth.Get ~nonce item;
          (id, Value item.value)
      | X_put { key; nonce; value; _ }, Wire.Put_ok { nonce = n'; item } ->
          if not (Int64.equal nonce n') then
            raise (Protocol_error "nonce echo mismatch");
          if not (Int64.equal item.key key) then
            raise (Protocol_error "key echo mismatch");
          if item.value <> value then
            raise (Protocol_error "value echo mismatch");
          check_item s ~kind:Fastver.Auth.Put ~nonce item;
          (id, Stored)
      | X_scan { start; len; nonce; _ }, Wire.Scanned { nonce = n'; items } ->
          if not (Int64.equal nonce n') then
            raise (Protocol_error "nonce echo mismatch");
          if Array.length items <> len then
            raise (Protocol_error "scan result length mismatch");
          ( id,
            Scan_result
              (Array.mapi
                 (fun i item ->
                   let expected_key = Int64.add start (Int64.of_int i) in
                   if not (Int64.equal item.Wire.key expected_key) then
                     raise (Protocol_error "scan key mismatch");
                   check_item s ~kind:Fastver.Auth.Get ~nonce item;
                   (item.Wire.key, item.Wire.value))
                 items) )
      | _, _ -> raise (Protocol_error "response kind does not match request"))

let in_flight s = Queue.length s.inflight

let drain s =
  while not (Queue.is_empty s.inflight) do
    ignore (await s)
  done

(* ------------------------------------------------------------------ *)
(* Blocking helpers                                                    *)
(* ------------------------------------------------------------------ *)

let get s key =
  ignore (send_get s key);
  match snd (await s) with
  | Value v -> v
  | _ -> raise (Protocol_error "bad reply kind")

let put s key value =
  ignore (send_put s key value);
  match snd (await s) with
  | Stored -> ()
  | _ -> raise (Protocol_error "bad reply kind")

let delete s key =
  ignore (send_delete s key);
  match snd (await s) with
  | Stored -> ()
  | _ -> raise (Protocol_error "bad reply kind")

let scan s start len =
  ignore (send_scan s start len);
  match snd (await s) with
  | Scan_result items -> items
  | _ -> raise (Protocol_error "bad reply kind")

let verify_now s =
  drain s;
  let id = send s.conn Wire.Verify in
  match expect_id id (recv s.conn) with
  | Wire.Verified { epoch; cert } ->
      (match s.auth with
      | None -> ()
      | Some _ ->
          if
            not
              (Fastver_crypto.Hmac.verify ~key:s.secret
                 (Fastver_verifier.Verifier.epoch_certificate_message ~epoch)
                 ~tag:cert)
          then
            raise
              (Fastver.Integrity_violation
                 (Printf.sprintf "client: bad epoch %d certificate" epoch)));
      (* Certificate epochs are monotone per connection on an honest node
         (scans serialise on the verify mutex and responses keep request
         order), so any regression here is rollback evidence. *)
      if epoch + s.max_staleness < s.max_epoch then
        raise
          (Fastver.Integrity_violation
             (Printf.sprintf
                "client: stale verified epoch %d (session already saw epoch \
                 %d certified, max staleness %d)"
                epoch s.max_epoch s.max_staleness));
      if epoch > s.max_epoch then s.max_epoch <- epoch;
      (epoch, cert)
  | Wire.Error e -> raise (Server_error e)
  | _ -> raise (Protocol_error "unexpected response to verify")

let close_session s =
  drain s;
  let id = send s.conn Wire.Close_session in
  match expect_id id (recv s.conn) with
  | Wire.Session_closed -> ()
  | Wire.Error e -> raise (Server_error e)
  | _ -> raise (Protocol_error "unexpected response to close-session")

let stats conn =
  let id = send conn Wire.Stats in
  match expect_id id (recv conn) with
  | Wire.Stats_reply s -> s
  | Wire.Error e -> raise (Server_error e)
  | _ -> raise (Protocol_error "unexpected response to stats")

let metrics conn ~format =
  let id = send conn (Wire.Metrics { format }) in
  match expect_id id (recv conn) with
  | Wire.Metrics_reply { format = f; data } ->
      if f <> format then raise (Protocol_error "metrics format mismatch");
      data
  | Wire.Error e -> raise (Server_error e)
  | _ -> raise (Protocol_error "unexpected response to metrics")

let session_epoch s = s.max_epoch
