(** Small socket-IO helpers shared by server and client. *)

val read_chunk : Unix.file_descr -> Bytes.t -> [ `Data of int | `Eof | `Again ]
(** One [read] into the scratch buffer. [`Again] on EAGAIN/EWOULDBLOCK
    (non-blocking sockets); EINTR is retried.
    @raise Unix.Unix_error on hard errors (treat as connection loss). *)

val write_sub : Unix.file_descr -> string -> int -> [ `Wrote of int | `Again ]
(** Write [s] from offset [off] once; returns bytes accepted. *)

val send_all : Unix.file_descr -> string -> unit
(** Blocking write of the entire string (client side). *)
