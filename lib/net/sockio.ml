let rec read_chunk fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> `Eof
  | n -> `Data n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_chunk fd buf
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Again

let rec write_sub fd s off =
  match Unix.write_substring fd s off (String.length s - off) with
  | n -> `Wrote n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_sub fd s off
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Again

let send_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match write_sub fd s !off with
    | `Wrote w -> off := !off + w
    | `Again ->
        (* blocking fd: only reachable if the caller set O_NONBLOCK *)
        ignore (Unix.select [] [ fd ] [] (-1.0))
  done
