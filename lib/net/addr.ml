type t = Tcp of string * int | Unix_sock of string

let parse s =
  match String.index_opt s ':' with
  | None -> Error "expected tcp:HOST:PORT or unix:PATH"
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" ->
          if rest = "" then Error "unix: empty socket path"
          else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error "tcp: expected HOST:PORT"
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 ->
                  Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
              | Some _ | None -> Error "tcp: bad port"))
      | _ -> Error (Printf.sprintf "unknown scheme %S (tcp or unix)" scheme))

let to_sockaddr = function
  | Unix_sock path -> Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Ok (Unix.ADDR_INET (ip, port))
      | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
              Error (Printf.sprintf "host %s has no address" host)
          | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port))
          | exception Not_found -> Error (Printf.sprintf "unknown host %s" host)))

let domain = function
  | Unix_sock _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let pp ppf a = Format.pp_print_string ppf (to_string a)
