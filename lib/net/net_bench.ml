type result = {
  clients : int;
  window : int;
  ops : int;
  wall_s : float;
  ops_per_s : float;
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
  integrity_failures : int;
  errors : int;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%d clients x window %d: %d ops in %.2fs = %.0f ops/s; latency p50 %.3fms \
     p99 %.3fms mean %.3fms; %d integrity failures, %d errors"
    r.clients r.window r.ops r.wall_s r.ops_per_s r.p50_ms r.p99_ms r.mean_ms
    r.integrity_failures r.errors

type client_out = {
  mutable latencies : float array; (* seconds, one per completed op *)
  mutable completed : int;
  mutable c_integrity : int;
  mutable c_errors : int;
}

let run_client ~addr ~window ~my_ops ~db_size ~put_ratio ~verify ~secret ~seed
    ~client () =
  let out =
    { latencies = Array.make (max my_ops 1) 0.0; completed = 0;
      c_integrity = 0; c_errors = 0 }
  in
  (match Client.connect addr with
  | Error e ->
      out.c_errors <- out.c_errors + 1;
      Logs.err (fun m -> m "client %d: %s" client e)
  | Ok conn -> (
      try
        let s = Client.open_session ~verify conn ~client ~secret in
        let rng = Random.State.make [| seed; client |] in
        let sent_at = Hashtbl.create (2 * window) in
        let sent = ref 0 in
        let send_one () =
          let key = Int64.of_int (Random.State.int rng (max db_size 1)) in
          let id =
            if Random.State.float rng 1.0 < put_ratio then
              Client.send_put s key (Printf.sprintf "c%d-%d" client !sent)
            else Client.send_get s key
          in
          Hashtbl.replace sent_at id (Unix.gettimeofday ());
          incr sent
        in
        (try
           while out.completed < my_ops do
             while !sent < my_ops && Client.in_flight s < window do
               send_one ()
             done;
             let id, _reply = Client.await s in
             (match Hashtbl.find_opt sent_at id with
             | Some t0 ->
                 out.latencies.(out.completed) <- Unix.gettimeofday () -. t0;
                 Hashtbl.remove sent_at id
             | None -> ());
             out.completed <- out.completed + 1
           done;
           Client.close_session s
         with
        | Fastver.Integrity_violation reason ->
            Logs.warn (fun m -> m "client %d: integrity: %s" client reason);
            out.c_integrity <- out.c_integrity + 1
        | (Client.Server_error e | Client.Protocol_error e) ->
            Logs.warn (fun m -> m "client %d: %s" client e);
            out.c_errors <- out.c_errors + 1);
        Client.close conn
      with e ->
        out.c_errors <- out.c_errors + 1;
        Logs.err (fun m -> m "client %d: %s" client (Printexc.to_string e));
        Client.close conn));
  out

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let run ~addr ~clients ~window ~ops ~db_size ?(put_ratio = 0.5)
    ?(verify = true) ?(secret = Fastver.Config.default.mac_secret)
    ?(seed = 42) ?(first_client = 1) () =
  let my_ops = max 1 (ops / max 1 clients) in
  let t0 = Unix.gettimeofday () in
  let domains =
    Array.init clients (fun i ->
        Domain.spawn
          (run_client ~addr ~window ~my_ops ~db_size ~put_ratio ~verify
             ~secret ~seed ~client:(first_client + i)))
  in
  let outs = Array.map Domain.join domains in
  let wall = Unix.gettimeofday () -. t0 in
  let total = Array.fold_left (fun a o -> a + o.completed) 0 outs in
  let lats =
    Array.concat
      (Array.to_list
         (Array.map (fun o -> Array.sub o.latencies 0 o.completed) outs))
  in
  Array.sort compare lats;
  let mean =
    if Array.length lats = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 lats /. float_of_int (Array.length lats)
  in
  {
    clients;
    window;
    ops = total;
    wall_s = wall;
    ops_per_s = (if wall > 0.0 then float_of_int total /. wall else 0.0);
    p50_ms = 1000.0 *. percentile lats 0.50;
    p99_ms = 1000.0 *. percentile lats 0.99;
    mean_ms = 1000.0 *. mean;
    integrity_failures = Array.fold_left (fun a o -> a + o.c_integrity) 0 outs;
    errors = Array.fold_left (fun a o -> a + o.c_errors) 0 outs;
  }
