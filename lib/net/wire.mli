(** The FastVer wire protocol: length-prefixed binary frames.

    Every message travels as [u32-le length] followed by [length] payload
    bytes. The payload starts with a fixed header — 2 magic bytes ["FV"], a
    1-byte protocol version, a 1-byte message type, and a u64-le request id
    that correlates pipelined responses with their requests — and continues
    with the type-specific body.

    Integers are little-endian; byte strings are length-prefixed (u16 for
    MACs, u32 for values). The per-session nonces and AES-CMAC signatures of
    {!Fastver.Auth} are carried verbatim: a put request ships the client's
    request MAC, every validated result ships the verifier's receipt MAC, so
    the client re-derives and checks each signature locally.

    Decoders are total: any truncated or corrupted payload yields [Error _],
    never an exception and never unbounded work or allocation. *)

val version : int
(** Protocol version carried in every encoded frame (currently 2, which
    added the replication fencing term). *)

val min_version : int
(** Oldest version the decoders still accept. Version-1 frames lack the
    term field on [Subscribe]/[Subscribed]/[Repl_epoch]; decoding defaults
    it to 0 ("before any election"), so both framings interoperate. *)

val header_len : int
(** Bytes of the fixed payload header (magic, version, type, request id). *)

val max_frame : int
(** Upper bound on a sane payload length (decoders and frame readers reject
    anything larger before allocating). *)

type metrics_format = Json | Prometheus
(** Rendering requested from the server's {!Fastver_obs.Registry}. *)

type request =
  | Open_session of { client : int }
  | Close_session
  | Get of { key : int64; nonce : int64 }
  | Put of { key : int64; nonce : int64; mac : string; value : string option }
  | Scan of { start : int64; len : int; nonce : int64 }
  | Verify
  | Stats
  | Metrics of { format : metrics_format }
  | Subscribe of { from_epoch : int; term : int }
      (** Replication: stream every op and epoch-boundary record for epochs
          [>= from_epoch]; the subscriber's state already reflects all
          sealed epochs below it. [term] is the fencing term under which the
          subscriber's newest verified epoch was sealed — a primary refuses
          a subscriber from a *higher* term (the refusal is proof the
          primary was deposed) and fences one whose stale term claims
          epochs this primary re-sealed after an election. *)
  | Fetch_checkpoint
      (** Replication catch-up: ship the newest committed checkpoint
          generation so a follower too far behind the primary's replication
          log can bootstrap, then re-subscribe from its sealed epoch. *)
  | Announce_term of {
      term : int;
      sealed : int;
      priority : int;
      run_id : int64;
    }
      (** Election state exchange: the sender's fencing term, newest
          chain-verified sealed epoch ([-1] if none), static election
          priority and incarnation id. Candidates send it to every peer
          when the primary is lost, and primaries probe peers with it to
          detect a rival with a higher term. Answered by
          {!response.Term_info}. *)
  | Promote of { term : int; addr : string }
      (** Directive from an election winner: "I am primary for [term],
          serving replication at [addr]" ({!Addr.to_string} form). A
          standby that receives it abandons its own candidacy and
          re-subscribes at [addr]; a primary that receives it with a
          higher term knows it has been deposed. *)

type item = { key : int64; value : string option; epoch : int; mac : string }
(** One validated result: the receipt MAC covers (kind, client, nonce, key,
    value, epoch) — see {!Fastver.Auth.receipt}. *)

type stats = {
  ops : int64;
  gets : int64;
  puts : int64;
  scans : int64;
  verifies : int64;
  fast_path : int64;
  merkle_path : int64;
  epoch : int64;
}

type response =
  | Session_opened of { client : int }
  | Session_closed
  | Got of { nonce : int64; item : item }
  | Put_ok of { nonce : int64; item : item }
  | Scanned of { nonce : int64; items : item array }
  | Verified of { epoch : int; cert : string }
  | Stats_reply of stats
  | Metrics_reply of { format : metrics_format; data : string }
      (** [data] is the rendered snapshot (untrusted diagnostics — metrics
          are host-side state and carry no receipt MAC). *)
  | Subscribed of { from_epoch : int; run_id : int64; term : int }
      (** Ack for {!request.Subscribe}: streaming starts at [from_epoch].
          [run_id] identifies this primary incarnation; a follower that
          reconnects and sees a different [run_id] must re-bootstrap (the
          primary may have restarted from an older checkpoint). [term] is
          the primary's current fencing term; followers adopt it (terms
          only move forward). *)
  | Checkpoint_reply of {
      generation : int;
      files : (string * string) array;
      term : int;
    }
      (** The newest committed generation's component files as
          [(basename, contents)] pairs — MANIFEST included, so the receiver
          re-verifies every checksum through the normal recovery path and
          trusts nothing about the transport. [term] is the fencing term the
          sender holds: checkpoints carry state sealed under that term, and
          terms are not persisted inside generations, so a bootstrapping
          follower adopts it once the generation passes tamper-evident
          recovery (the field itself is unauthenticated — lying about it
          costs availability at the next subscribe, never integrity, since
          divergent state is still caught by the local re-verification
          scan against the streamed certificates). *)
  | Repl_op of { epoch : int; key : string; value : string option }
      (** One applied op in stream order. [key] is the raw 32-byte data-key
          path ({!Key.to_bytes32}); [value = None] is a delete. Untrusted
          until the epoch's boundary record authenticates: followers fold
          every op into a per-epoch digest that {!response.Repl_epoch}'s
          [stream_mac] must match. *)
  | Repl_batch of { epoch : int; ops : (string * string option) array }
      (** A run of consecutive ops from one epoch in apply order — the
          batched form of {!response.Repl_op}, flushed by the primary at
          each epoch seal (plus size/time caps), cutting stream frames and
          syscalls by the batch length. Followers treat it exactly as the
          equivalent [Repl_op] sequence: the per-op stream digest is
          unchanged, so old and new frames interoperate. *)
  | Repl_epoch of { epoch : int; cert : string; stream_mac : string; term : int }
      (** Epoch-boundary record: [cert] is the store-level epoch certificate
          (HMAC over {!Fastver_verifier.Verifier.epoch_certificate_message});
          [stream_mac] authenticates the exact op sequence streamed for
          [epoch] (see {!Fastver_replica.Stream}). [term] is the fencing
          term the epoch was sealed under — followers reject a record whose
          term moves backwards (a deposed primary replaying old state). *)
  | Term_info of {
      term : int;
      sealed : int;
      priority : int;
      run_id : int64;
      primary : bool;
    }
      (** Reply to {!request.Announce_term} / {!request.Promote}: the
          responder's election state. [primary] says whether the responder
          is currently serving writes — a prober that finds a primary with
          a greater (term, sealed, priority, run_id) tuple than its own
          must defer to it (candidates re-subscribe, rival primaries
          demote). *)
  | Error of string

val encode_request : id:int64 -> request -> string
(** The full frame, length prefix included. *)

val encode_response : id:int64 -> response -> string

val encode_request_into : Buffer.t -> id:int64 -> request -> string
(** Like {!encode_request}, but encodes through the caller's scratch buffer
    (cleared first). With a per-connection buffer the only steady-state
    allocation per message is the returned frame string — the server and
    client use this on their hot paths. *)

val encode_response_into : Buffer.t -> id:int64 -> response -> string

val decode_request : string -> (int64 * request, string) result
(** Decode one frame payload (as returned by {!Frame.next}). *)

val decode_response : string -> (int64 * response, string) result

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
