(** FastVer client library: sessions, pipelining, and — the point of the
    whole exercise — client-side verification of every response.

    A {!session} holds the shared secret and a nonce counter (the client
    half of the TCB, mirroring {!Fastver.Session}). Every validated result
    arriving over the wire carries the verifier's receipt MAC; the client
    re-derives the expected MAC from (kind, client id, nonce, key, value,
    epoch) and raises {!Fastver.Integrity_violation} on any mismatch — a
    byte flipped anywhere between the enclave and this process is detected
    here, whether by the network or by the untrusted host itself.

    Requests may be pipelined: [send_*] enqueue without waiting, {!await}
    completes them strictly in order (the server guarantees per-connection
    ordering). The blocking helpers ({!get}, {!put}, …) are
    send-one-await-one. *)

exception Server_error of string
(** The server answered this request with an error (e.g. a rejected put). *)

exception Protocol_error of string
(** The byte stream is not a well-formed FastVer conversation. *)

exception Timeout
(** {!recv}'s deadline expired before a full response arrived. The
    connection may be mid-frame and must be closed. *)

type t
(** A connection. *)

val connect : Addr.t -> (t, string) result
val close : t -> unit

(** {2 Raw frames}

    Low-level request/response exchange on a connection, used by tooling
    that speaks opcodes outside the session protocol (the replication
    follower's subscription and checkpoint-fetch conversations). Plain
    sessions never need these. *)

val send : t -> Wire.request -> int64
(** Encode and write one request; returns its frame id. *)

val recv : ?timeout:float -> t -> int64 * Wire.response
(** Block for the next response frame. [?timeout] (seconds) bounds the
    whole wait — the replication follower uses it to keep a half-open
    primary (SIGSTOP, mid-handshake kill) from hanging the subscribe
    handshake forever.
    @raise Protocol_error on EOF or a malformed frame.
    @raise Timeout when the deadline passes first. *)

val expect_id : int64 -> int64 * Wire.response -> Wire.response
(** [expect_id id (recv t)] unwraps a response after checking it answers
    frame [id].
    @raise Protocol_error on an out-of-order id. *)

type session

val open_session :
  ?verify:bool -> ?max_staleness:int -> t -> client:int -> secret:string ->
  session
(** Opens an authenticated session. [verify] (default [true]) controls
    client-side receipt checking — switch it off only when the server runs
    with [authenticate_clients = false]. [max_staleness] (default [1])
    bounds epoch staleness against the session's certified anchor: the
    session remembers the highest epoch any checked {!verify_now}
    certificate carried, and a later receipt stamped more than
    [max_staleness] epochs below that anchor — or a later certificate
    regressing below it — raises {!Fastver.Integrity_violation},
    catching a rolled-back or lagging server replaying
    authentic-but-old state. Sessions that never call {!verify_now}
    have no anchor and skip the staleness check (receipt MACs are still
    verified). The default of [1] tolerates reads racing the scan that
    produced the anchor certificate. *)

val session_epoch : session -> int
(** Highest certified epoch observed by this session so far (0 until the
    first {!verify_now}). *)

val close_session : session -> unit
(** Drains in-flight requests, then closes the session (not the
    connection). *)

(** {2 Pipelined interface} *)

val send_get : session -> int64 -> int64
(** Enqueue; returns the request id (for latency bookkeeping). *)

val send_put : session -> int64 -> string -> int64
val send_delete : session -> int64 -> int64
val send_scan : session -> int64 -> int -> int64

type reply =
  | Value of string option
  | Stored
  | Scan_result of (int64 * string option) array

val await : session -> int64 * reply
(** Complete the oldest in-flight request: reads, checks the receipt MAC
    and nonce, returns (request id, result).
    @raise Fastver.Integrity_violation on a signature mismatch.
    @raise Server_error if the server reported an error for it. *)

val in_flight : session -> int

val drain : session -> unit
(** Await (and verify) everything in flight. *)

(** {2 Blocking helpers} *)

val get : session -> int64 -> string option
val put : session -> int64 -> string -> unit
val delete : session -> int64 -> unit
val scan : session -> int64 -> int -> (int64 * string option) array

val verify_now : session -> int * string
(** Ask the server to run a verification scan; returns (epoch, certificate)
    after checking the certificate against the shared secret.
    @raise Fastver.Integrity_violation if the certificate does not check. *)

val stats : t -> Wire.stats
(** Server statistics (no session needed). *)

val metrics : t -> format:Wire.metrics_format -> string
(** The server's metric registry rendered as JSON or Prometheus text (no
    session needed). Diagnostics only — the payload carries no receipt
    MAC. *)
