(** The FastVer serving loop: an I/O event loop feeding an executor pool.

    A single event loop (TCP and/or Unix-domain) reads requests into
    per-connection buffers and drains them through the FastVer worker loop
    in batches via {!Fastver.Batch.submit}, so the whole batch shares one
    verification-log flush — the same enclave-transition amortisation the
    paper applies to ecalls (§7).

    With [n_workers > 1] the select loop keeps I/O only: decoded batches
    are grouped by owning worker ({!Fastver.owner_of_key}) and handed to
    one executor domain per worker over bounded queues (a full queue
    blocks the dispatcher — backpressure, not unbounded growth). Puts are
    admitted (client MAC + nonce) on the I/O domain in arrival order
    before dispatch. Responses are written back in per-connection request
    order regardless of execution order (per-request reply slots), so
    clients may pipeline freely; operations on the {e same} key execute in
    arrival order (same key → same owner → same FIFO queue), while
    independent keys may execute in parallel. Cross-partition requests —
    scans, verify, stats, metrics, session admin — quiesce the pool first
    and run at their exact position.

    Exception: with {!Fastver.Config.t.background_verify} set, [Verify]
    does {e not} quiesce. The epoch boundary is sealed under a brief
    O(workers) barrier and the scan runs on a background domain
    ({!Fastver.verify_async}) while executors keep serving gets and puts
    into the next epoch; the response is emitted when the scan completes
    (a dedicated wake pipe re-enters the select loop, so the reply never
    waits for unrelated traffic). The certificate is bit-identical to the
    one a quiescent scan of the same epoch would produce.

    Robustness properties:
    - {e backpressure}: the pending-request queue is bounded; when it (or a
      connection's output queue) fills, the loop simply stops reading from
      sockets until it drains — TCP flow control pushes back on clients;
    - {e error isolation}: a malformed frame or forged request poisons only
      its own connection/operation, never the loop or other clients;
    - {e clean shutdown}: {!stop} wakes the loop, which closes the executor
      queues, fails any batch that raced the close with an explicit
      [shutdown] error (never a crash: {!Fastver.Bounded_queue.push} is
      total), joins executors and any in-flight background verification,
      then closes every socket and removes the Unix socket file;
    - {e no busy-wait}: the loop always blocks in [select] — completions
      from executor domains and background scans arrive over wake pipes,
      and wake-up writes that fail for a real reason (not a full pipe, not
      an orderly shutdown) are logged and counted
      ([fastver_net_lost_wakeups_total]) instead of silently dropped. *)

type config = {
  batch_limit : int;  (** max requests drained per batch (default 256) *)
  queue_limit : int;  (** pending-queue bound — backpressure (default 1024) *)
  conn_out_limit : int;
      (** queued output bytes per connection before its reads pause *)
  max_frame : int;
  max_scan_len : int;  (** reject scans longer than this *)
  read_only : bool;
      (** replication-follower mode (default [false]): [Put] requests are
          refused, and [Verify] answers with the follower's already-verified
          epoch — re-signing its certificate under the shared secret — rather
          than sealing an epoch locally (a follower's epochs advance only
          with the primary's authenticated boundary records, so the client's
          [verify_now] check works unchanged). Gets, scans, stats and
          metrics are served normally. *)
}

val default_config : config

type counters = {
  accepted : int;  (** connections accepted *)
  served : int;  (** requests answered *)
  batches : int;  (** worker-loop drains *)
  max_batch : int;  (** largest single drain *)
  proto_errors : int;  (** malformed frames / requests *)
  op_failures : int;  (** operations answered with an error *)
}
(** A point-in-time snapshot. The live counters are [Atomic.t]s registered
    on the system's {!Fastver.registry} (names [fastver_net_*]), so reading
    from outside the server domain is sound. *)

type t

val create : ?config:config -> Fastver.t -> listen:Addr.t -> (t, string) result
(** Binds and listens immediately (so [listen] may use TCP port 0 and the
    effective address read back with {!bound_addr}). *)

val bound_addr : t -> Addr.t

val read_only : t -> bool
(** The live value — starts as [config.read_only], moved by
    {!set_read_only}. *)

val set_read_only : t -> bool -> unit
(** Flip follower mode on a running server. Election promotion calls
    [set_read_only t false] so a follower starts admitting puts without
    restarting its loop (demotion flips it back). Requests already past
    classification keep the mode they saw. *)

val counters : t -> counters

val run : t -> unit
(** Run the event loop in the calling thread until {!stop}. *)

val start : t -> unit
(** Run the loop in a background domain. *)

val stop : t -> unit
(** Signal shutdown and, if {!start} was used, join the domain. Idempotent. *)
