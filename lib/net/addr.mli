(** Serving addresses: ["tcp:HOST:PORT"] or ["unix:/path/to.sock"]. *)

type t = Tcp of string * int | Unix_sock of string

val parse : string -> (t, string) result

val to_sockaddr : t -> (Unix.sockaddr, string) result
(** Resolves the host of a [Tcp] address (IPv4 literal or name). *)

val domain : t -> Unix.socket_domain

val pp : Format.formatter -> t -> unit
val to_string : t -> string
