let version = 2
let min_version = 1
let magic = "FV"
let header_len = 2 + 1 + 1 + 8
let max_frame = 16 * 1024 * 1024

type metrics_format = Json | Prometheus

type request =
  | Open_session of { client : int }
  | Close_session
  | Get of { key : int64; nonce : int64 }
  | Put of { key : int64; nonce : int64; mac : string; value : string option }
  | Scan of { start : int64; len : int; nonce : int64 }
  | Verify
  | Stats
  | Metrics of { format : metrics_format }
  | Subscribe of { from_epoch : int; term : int }
  | Fetch_checkpoint
  | Announce_term of {
      term : int;
      sealed : int;
      priority : int;
      run_id : int64;
    }
  | Promote of { term : int; addr : string }

type item = { key : int64; value : string option; epoch : int; mac : string }

type stats = {
  ops : int64;
  gets : int64;
  puts : int64;
  scans : int64;
  verifies : int64;
  fast_path : int64;
  merkle_path : int64;
  epoch : int64;
}

type response =
  | Session_opened of { client : int }
  | Session_closed
  | Got of { nonce : int64; item : item }
  | Put_ok of { nonce : int64; item : item }
  | Scanned of { nonce : int64; items : item array }
  | Verified of { epoch : int; cert : string }
  | Stats_reply of stats
  | Metrics_reply of { format : metrics_format; data : string }
  | Subscribed of { from_epoch : int; run_id : int64; term : int }
  | Checkpoint_reply of {
      generation : int;
      files : (string * string) array;
      term : int;
    }
  | Repl_op of { epoch : int; key : string; value : string option }
  | Repl_batch of { epoch : int; ops : (string * string option) array }
      (* one epoch's buffered ops in apply order — the batched form of a run
         of [Repl_op]s, cutting stream frames (and syscalls) by the batch
         length *)
  | Repl_epoch of { epoch : int; cert : string; stream_mac : string; term : int }
  | Term_info of {
      term : int;
      sealed : int;
      priority : int;
      run_id : int64;
      primary : bool;
    }
  | Error of string

(* ------------------------------------------------------------------ *)
(* Message type tags (requests 0x01-0x7f, responses 0x81-0xff)         *)
(* ------------------------------------------------------------------ *)

let tag_open = 0x01
let tag_close = 0x02
let tag_get = 0x03
let tag_put = 0x04
let tag_scan = 0x05
let tag_verify = 0x06
let tag_stats = 0x07
let tag_metrics = 0x08
let tag_subscribe = 0x09
let tag_fetch_checkpoint = 0x0a
let tag_announce_term = 0x0b
let tag_promote = 0x0c
let tag_opened = 0x81
let tag_closed = 0x82
let tag_got = 0x83
let tag_put_ok = 0x84
let tag_scanned = 0x85
let tag_verified = 0x86
let tag_stats_reply = 0x87
let tag_metrics_reply = 0x88
let tag_subscribed = 0x89
let tag_checkpoint_reply = 0x8a
let tag_repl_op = 0x8b
let tag_repl_epoch = 0x8c
let tag_repl_batch = 0x8d
let tag_term_info = 0x8e
let tag_error = 0xff

let metrics_format_byte = function Json -> 0 | Prometheus -> 1

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* The field writers append characters directly — no scratch [Bytes] per
   field — so that encoding into a reused buffer stays allocation-free up
   to the final frame string. *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u16 b v =
  add_u8 b v;
  add_u8 b (v lsr 8)

let add_u32 b v =
  add_u8 b v;
  add_u8 b (v lsr 8);
  add_u8 b (v lsr 16);
  add_u8 b (v lsr 24)

let add_i64 b v = Buffer.add_int64_le b v

let add_mac b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_value_opt b = function
  | None -> add_u8 b 0
  | Some v ->
      add_u8 b 1;
      add_u32 b (String.length v);
      Buffer.add_string b v

let add_item b (it : item) =
  add_i64 b it.key;
  add_u32 b it.epoch;
  add_value_opt b it.value;
  add_mac b it.mac

(* A message is encoded in one pass into the caller's scratch buffer
   (header + body, no intermediate body string), then copied once into the
   exact-size frame string with the length prefix patched in front. With a
   reused buffer the only steady-state allocation is that result string. *)

let begin_frame b ~id tag =
  Buffer.clear b;
  Buffer.add_string b magic;
  add_u8 b version;
  add_u8 b tag;
  add_i64 b id

let to_frame b =
  let n = Buffer.length b in
  let out = Bytes.create (4 + n) in
  Bytes.set_int32_le out 0 (Int32.of_int n);
  Buffer.blit b 0 out 4 n;
  Bytes.unsafe_to_string out

let encode_request_into b ~id req =
  (match req with
  | Open_session { client } ->
      begin_frame b ~id tag_open;
      add_u32 b client
  | Close_session -> begin_frame b ~id tag_close
  | Get { key; nonce } ->
      begin_frame b ~id tag_get;
      add_i64 b key;
      add_i64 b nonce
  | Put { key; nonce; mac; value } ->
      begin_frame b ~id tag_put;
      add_i64 b key;
      add_i64 b nonce;
      add_mac b mac;
      add_value_opt b value
  | Scan { start; len; nonce } ->
      begin_frame b ~id tag_scan;
      add_i64 b start;
      add_u32 b len;
      add_i64 b nonce
  | Verify -> begin_frame b ~id tag_verify
  | Stats -> begin_frame b ~id tag_stats
  | Metrics { format } ->
      begin_frame b ~id tag_metrics;
      add_u8 b (metrics_format_byte format)
  | Subscribe { from_epoch; term } ->
      begin_frame b ~id tag_subscribe;
      add_u32 b from_epoch;
      add_u32 b term
  | Fetch_checkpoint -> begin_frame b ~id tag_fetch_checkpoint
  | Announce_term { term; sealed; priority; run_id } ->
      begin_frame b ~id tag_announce_term;
      add_u32 b term;
      (* sealed can be -1 (nothing verified yet): ship it as a signed 64 *)
      add_i64 b (Int64.of_int sealed);
      add_u32 b priority;
      add_i64 b run_id
  | Promote { term; addr } ->
      begin_frame b ~id tag_promote;
      add_u32 b term;
      add_mac b addr);
  to_frame b

let encode_response_into b ~id resp =
  (match resp with
  | Session_opened { client } ->
      begin_frame b ~id tag_opened;
      add_u32 b client
  | Session_closed -> begin_frame b ~id tag_closed
  | Got { nonce; item } ->
      begin_frame b ~id tag_got;
      add_i64 b nonce;
      add_item b item
  | Put_ok { nonce; item } ->
      begin_frame b ~id tag_put_ok;
      add_i64 b nonce;
      add_item b item
  | Scanned { nonce; items } ->
      begin_frame b ~id tag_scanned;
      add_i64 b nonce;
      add_u32 b (Array.length items);
      Array.iter (add_item b) items
  | Verified { epoch; cert } ->
      begin_frame b ~id tag_verified;
      add_u32 b epoch;
      add_mac b cert
  | Stats_reply s ->
      begin_frame b ~id tag_stats_reply;
      add_i64 b s.ops;
      add_i64 b s.gets;
      add_i64 b s.puts;
      add_i64 b s.scans;
      add_i64 b s.verifies;
      add_i64 b s.fast_path;
      add_i64 b s.merkle_path;
      add_i64 b s.epoch
  | Metrics_reply { format; data } ->
      begin_frame b ~id tag_metrics_reply;
      add_u8 b (metrics_format_byte format);
      add_u32 b (String.length data);
      Buffer.add_string b data
  | Subscribed { from_epoch; run_id; term } ->
      begin_frame b ~id tag_subscribed;
      add_u32 b from_epoch;
      add_i64 b run_id;
      add_u32 b term
  | Checkpoint_reply { generation; files; term } ->
      begin_frame b ~id tag_checkpoint_reply;
      add_u32 b generation;
      add_u32 b term;
      add_u32 b (Array.length files);
      Array.iter
        (fun (name, data) ->
          add_mac b name;
          add_u32 b (String.length data);
          Buffer.add_string b data)
        files
  | Repl_op { epoch; key; value } ->
      begin_frame b ~id tag_repl_op;
      if String.length key <> 32 then
        invalid_arg "Wire.Repl_op: key must be 32 bytes";
      add_u32 b epoch;
      Buffer.add_string b key;
      add_value_opt b value
  | Repl_batch { epoch; ops } ->
      begin_frame b ~id tag_repl_batch;
      add_u32 b epoch;
      add_u32 b (Array.length ops);
      Array.iter
        (fun (key, value) ->
          if String.length key <> 32 then
            invalid_arg "Wire.Repl_batch: key must be 32 bytes";
          Buffer.add_string b key;
          add_value_opt b value)
        ops
  | Repl_epoch { epoch; cert; stream_mac; term } ->
      begin_frame b ~id tag_repl_epoch;
      add_u32 b epoch;
      add_mac b cert;
      add_mac b stream_mac;
      add_u32 b term
  | Term_info { term; sealed; priority; run_id; primary } ->
      begin_frame b ~id tag_term_info;
      add_u32 b term;
      add_i64 b (Int64.of_int sealed);
      add_u32 b priority;
      add_i64 b run_id;
      add_u8 b (if primary then 1 else 0)
  | Error msg ->
      begin_frame b ~id tag_error;
      add_u32 b (String.length msg);
      Buffer.add_string b msg);
  to_frame b

let encode_request ~id req = encode_request_into (Buffer.create 64) ~id req
let encode_response ~id resp = encode_response_into (Buffer.create 64) ~id resp

(* ------------------------------------------------------------------ *)
(* Decoding: a bounds-checked cursor; [Bad] converts to [Error] at the *)
(* message boundary, so decoders never raise on hostile input          *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.s then raise (Bad "truncated payload")

let u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c =
  need c 2;
  let v = String.get_uint16_le c.s c.pos in
  c.pos <- c.pos + 2;
  v

let u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let i64 c =
  need c 8;
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  v

let str c n =
  need c n;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let mac_str c =
  let n = u16 c in
  str c n

let value_opt c =
  match u8 c with
  | 0 -> None
  | 1 ->
      let n = u32 c in
      Some (str c n)
  | t -> raise (Bad (Printf.sprintf "bad value tag 0x%02x" t))

let metrics_format c =
  match u8 c with
  | 0 -> Json
  | 1 -> Prometheus
  | t -> raise (Bad (Printf.sprintf "bad metrics format 0x%02x" t))

let item c =
  let key = i64 c in
  let epoch = u32 c in
  let value = value_opt c in
  let mac = mac_str c in
  { key; value; epoch; mac }

let finish c v =
  if c.pos <> String.length c.s then raise (Bad "trailing bytes in payload");
  v

let header payload =
  if String.length payload < header_len then raise (Bad "payload too short");
  if String.sub payload 0 2 <> magic then raise (Bad "bad magic");
  let c = { s = payload; pos = 2 } in
  let ver = u8 c in
  if ver < min_version || ver > version then
    raise (Bad (Printf.sprintf "unsupported version %d" ver));
  let tag = u8 c in
  let id = i64 c in
  (c, ver, tag, id)

(* Version-1 frames predate the fencing term: the term-bearing messages
   ([Subscribe]/[Subscribed]/[Repl_epoch]) simply omit the field, and the
   decoders below default it to 0 — term 0 is "before any election", so a
   legacy peer is indistinguishable from a never-elected cluster. *)
let decode decode_tag payload =
  match
    let c, ver, tag, id = header payload in
    (id, finish c (decode_tag ver c tag))
  with
  | v -> Ok v
  | exception Bad e -> Error e

let decode_request =
  decode (fun ver c tag ->
      if tag = tag_open then Open_session { client = u32 c }
      else if tag = tag_close then Close_session
      else if tag = tag_get then
        let key = i64 c in
        let nonce = i64 c in
        Get { key; nonce }
      else if tag = tag_put then
        let key = i64 c in
        let nonce = i64 c in
        let mac = mac_str c in
        let value = value_opt c in
        Put { key; nonce; mac; value }
      else if tag = tag_scan then
        let start = i64 c in
        let len = u32 c in
        let nonce = i64 c in
        Scan { start; len; nonce }
      else if tag = tag_verify then Verify
      else if tag = tag_stats then Stats
      else if tag = tag_metrics then Metrics { format = metrics_format c }
      else if tag = tag_subscribe then
        let from_epoch = u32 c in
        let term = if ver >= 2 then u32 c else 0 in
        Subscribe { from_epoch; term }
      else if tag = tag_fetch_checkpoint then Fetch_checkpoint
      else if tag = tag_announce_term then
        let term = u32 c in
        let sealed = Int64.to_int (i64 c) in
        let priority = u32 c in
        let run_id = i64 c in
        Announce_term { term; sealed; priority; run_id }
      else if tag = tag_promote then
        let term = u32 c in
        let addr = mac_str c in
        Promote { term; addr }
      else raise (Bad (Printf.sprintf "unknown request tag 0x%02x" tag)))

let decode_response =
  decode (fun ver c tag ->
      if tag = tag_opened then Session_opened { client = u32 c }
      else if tag = tag_closed then Session_closed
      else if tag = tag_got then
        let nonce = i64 c in
        Got { nonce; item = item c }
      else if tag = tag_put_ok then
        let nonce = i64 c in
        Put_ok { nonce; item = item c }
      else if tag = tag_scanned then begin
        let nonce = i64 c in
        let count = u32 c in
        (* each item consumes >= 15 bytes, so [count] is implicitly bounded
           by the payload length: check before building the array *)
        if count * 15 > String.length c.s - c.pos then
          raise (Bad "scan count exceeds payload");
        let items = Array.init count (fun _ -> item c) in
        Scanned { nonce; items }
      end
      else if tag = tag_verified then
        let epoch = u32 c in
        let cert = mac_str c in
        Verified { epoch; cert }
      else if tag = tag_stats_reply then
        let ops = i64 c in
        let gets = i64 c in
        let puts = i64 c in
        let scans = i64 c in
        let verifies = i64 c in
        let fast_path = i64 c in
        let merkle_path = i64 c in
        let epoch = i64 c in
        Stats_reply
          { ops; gets; puts; scans; verifies; fast_path; merkle_path; epoch }
      else if tag = tag_metrics_reply then
        let format = metrics_format c in
        let n = u32 c in
        Metrics_reply { format; data = str c n }
      else if tag = tag_subscribed then
        let from_epoch = u32 c in
        let run_id = i64 c in
        let term = if ver >= 2 then u32 c else 0 in
        Subscribed { from_epoch; run_id; term }
      else if tag = tag_checkpoint_reply then begin
        let generation = u32 c in
        let term = if ver >= 2 then u32 c else 0 in
        let count = u32 c in
        (* each file entry consumes >= 6 bytes (two length prefixes), so
           [count] is implicitly bounded by the payload: check before
           building the array *)
        if count * 6 > String.length c.s - c.pos then
          raise (Bad "checkpoint file count exceeds payload");
        let files =
          Array.init count (fun _ ->
              let name = mac_str c in
              let n = u32 c in
              (name, str c n))
        in
        Checkpoint_reply { generation; files; term }
      end
      else if tag = tag_repl_op then
        let epoch = u32 c in
        let key = str c 32 in
        let value = value_opt c in
        Repl_op { epoch; key; value }
      else if tag = tag_repl_batch then begin
        let epoch = u32 c in
        let count = u32 c in
        (* each op consumes >= 33 bytes (32-byte key + value tag), so
           [count] is implicitly bounded by the payload: check before
           building the array *)
        if count * 33 > String.length c.s - c.pos then
          raise (Bad "repl batch count exceeds payload");
        let ops =
          Array.init count (fun _ ->
              let key = str c 32 in
              let value = value_opt c in
              (key, value))
        in
        Repl_batch { epoch; ops }
      end
      else if tag = tag_repl_epoch then
        let epoch = u32 c in
        let cert = mac_str c in
        let stream_mac = mac_str c in
        let term = if ver >= 2 then u32 c else 0 in
        Repl_epoch { epoch; cert; stream_mac; term }
      else if tag = tag_term_info then
        let term = u32 c in
        let sealed = Int64.to_int (i64 c) in
        let priority = u32 c in
        let run_id = i64 c in
        let primary =
          match u8 c with
          | 0 -> false
          | 1 -> true
          | t -> raise (Bad (Printf.sprintf "bad primary flag 0x%02x" t))
        in
        Term_info { term; sealed; priority; run_id; primary }
      else if tag = tag_error then
        let n = u32 c in
        Error (str c n)
      else raise (Bad (Printf.sprintf "unknown response tag 0x%02x" tag)))

(* ------------------------------------------------------------------ *)
(* Pretty-printing (logs, debugging)                                   *)
(* ------------------------------------------------------------------ *)

let pp_request ppf = function
  | Open_session { client } -> Format.fprintf ppf "open-session(client %d)" client
  | Close_session -> Format.fprintf ppf "close-session"
  | Get { key; _ } -> Format.fprintf ppf "get(%Ld)" key
  | Put { key; value; _ } ->
      Format.fprintf ppf "put(%Ld, %s)" key
        (match value with None -> "null" | Some _ -> "value")
  | Scan { start; len; _ } -> Format.fprintf ppf "scan(%Ld, %d)" start len
  | Verify -> Format.fprintf ppf "verify"
  | Stats -> Format.fprintf ppf "stats"
  | Metrics { format } ->
      Format.fprintf ppf "metrics(%s)"
        (match format with Json -> "json" | Prometheus -> "prometheus")
  | Subscribe { from_epoch; term } ->
      Format.fprintf ppf "subscribe(from epoch %d, term %d)" from_epoch term
  | Fetch_checkpoint -> Format.fprintf ppf "fetch-checkpoint"
  | Announce_term { term; sealed; priority; run_id } ->
      Format.fprintf ppf "announce-term(term %d, sealed %d, prio %d, run %Ld)"
        term sealed priority run_id
  | Promote { term; addr } ->
      Format.fprintf ppf "promote(term %d, %s)" term addr

let pp_response ppf = function
  | Session_opened { client } -> Format.fprintf ppf "session-opened(%d)" client
  | Session_closed -> Format.fprintf ppf "session-closed"
  | Got _ -> Format.fprintf ppf "got"
  | Put_ok _ -> Format.fprintf ppf "put-ok"
  | Scanned { items; _ } -> Format.fprintf ppf "scanned(%d)" (Array.length items)
  | Verified { epoch; _ } -> Format.fprintf ppf "verified(epoch %d)" epoch
  | Stats_reply _ -> Format.fprintf ppf "stats-reply"
  | Metrics_reply { data; _ } ->
      Format.fprintf ppf "metrics-reply(%d bytes)" (String.length data)
  | Subscribed { from_epoch; run_id; term } ->
      Format.fprintf ppf "subscribed(from epoch %d, run %Ld, term %d)"
        from_epoch run_id term
  | Checkpoint_reply { generation; files; term } ->
      Format.fprintf ppf "checkpoint-reply(gen %d, %d files, term %d)"
        generation (Array.length files) term
  | Repl_op { epoch; value; _ } ->
      Format.fprintf ppf "repl-op(epoch %d, %s)" epoch
        (match value with None -> "delete" | Some _ -> "put")
  | Repl_batch { epoch; ops } ->
      Format.fprintf ppf "repl-batch(epoch %d, %d ops)" epoch (Array.length ops)
  | Repl_epoch { epoch; term; _ } ->
      Format.fprintf ppf "repl-epoch(%d, term %d)" epoch term
  | Term_info { term; sealed; priority; run_id; primary } ->
      Format.fprintf ppf "term-info(term %d, sealed %d, prio %d, run %Ld, %s)"
        term sealed priority run_id
        (if primary then "primary" else "standby")
  | Error e -> Format.fprintf ppf "error(%s)" e
