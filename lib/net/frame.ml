type reader = {
  mutable buf : Bytes.t;
  mutable pos : int; (* first unconsumed byte *)
  mutable len : int; (* end of buffered data; data is buf[pos..len) *)
  max_frame : int;
  mutable broken : string option; (* sticky decode failure *)
}

let create ?(max_frame = Wire.max_frame) () =
  { buf = Bytes.create 4096; pos = 0; len = 0; max_frame; broken = None }

let buffered r = r.len - r.pos

let feed r src off n =
  if n < 0 || off < 0 || off + n > Bytes.length src then
    invalid_arg "Frame.feed";
  if r.len + n > Bytes.length r.buf then begin
    let used = buffered r in
    if used + n <= Bytes.length r.buf && r.pos > 0 then begin
      (* compact in place *)
      Bytes.blit r.buf r.pos r.buf 0 used;
      r.pos <- 0;
      r.len <- used
    end
    else begin
      let cap = max (2 * Bytes.length r.buf) (used + n) in
      let buf = Bytes.create cap in
      Bytes.blit r.buf r.pos buf 0 used;
      r.buf <- buf;
      r.pos <- 0;
      r.len <- used
    end
  end;
  Bytes.blit src off r.buf r.len n;
  r.len <- r.len + n

let feed_string r s = feed r (Bytes.unsafe_of_string s) 0 (String.length s)

let next r =
  match r.broken with
  | Some e -> Error e
  | None ->
      let avail = buffered r in
      if avail < 4 then Ok None
      else
        let flen =
          Int32.to_int (Bytes.get_int32_le r.buf r.pos) land 0xffffffff
        in
        if flen < Wire.header_len then begin
          r.broken <- Some "frame shorter than header";
          Error "frame shorter than header"
        end
        else if flen > r.max_frame then begin
          r.broken <- Some "frame exceeds size limit";
          Error "frame exceeds size limit"
        end
        else if avail < 4 + flen then Ok None
        else begin
          let payload = Bytes.sub_string r.buf (r.pos + 4) flen in
          r.pos <- r.pos + 4 + flen;
          if r.pos = r.len then begin
            r.pos <- 0;
            r.len <- 0
          end;
          Ok (Some payload)
        end
