(** Multi-worker scalability modelling (Figs. 14a/14c of the paper).

    On machines with several cores the system is measured directly: the
    verification scan fans out to one {!Domain.spawn} slice per worker and
    [Fastver.Parallel.run_ycsb] drives real domains (the bench harness's
    [scale] figure reports those wall-clock numbers). This module carries
    the scaling curve {e past} the machine's cores — and is the only
    number available on a single-core container, where the paper's
    32-thread experiments cannot be measured. It executes the {e real}
    FastVer system configured with [w] logical workers — the production
    code paths route operations, partition the Merkle tree and run
    per-thread verifiers exactly as a multi-core deployment would — and
    derives a modelled parallel makespan from the measured per-worker busy
    times (the same per-slice [worker_busy_s] timings the parallel scan
    reports when it runs on real domains):

    {v makespan = max_w busy(w) / interference(w) + serial v}

    The algorithmic scaling behaviour (worker partitioning, deferred
    verification's embarrassing parallelism, Merkle-tree partitioning) comes
    from real execution; only the memory-system interference between
    hardware threads is a calibrated factor. The paper reports roughly a 75%
    throughput gain per doubling of workers for cache-resident data (§8.5),
    i.e. ~0.875 parallel efficiency per doubling; {!paper_interference}
    encodes that. Pass [Fun.const 1.0] for an ideal-memory model. *)

type result = {
  workers : int;
  ops : int;
  modeled_seconds : float;  (** parallel makespan under the model *)
  throughput : float;  (** ops / modeled_seconds *)
  per_worker_busy_s : float array;
  serial_s : float;
  verify_latency_s : float;  (** mean modelled verification-scan latency *)
}

val paper_interference : int -> float
(** [0.875 ^ log2 w]: the per-doubling memory-contention efficiency the
    paper measured for cache-resident micro-benchmarks. *)

val run_hybrid :
  ?interference:(int -> float) ->
  config:Fastver.Config.t ->
  db_size:int ->
  ops:int ->
  spec:Fastver_workload.Ycsb.spec ->
  unit ->
  result
(** Load a [db_size]-record database, run [ops] operations of [spec] through
    the hybrid system with [config.n_workers] logical workers, verify, and
    model the makespan. *)

val run_dv_micro :
  ?interference:(int -> float) ->
  workers:int ->
  db_size:int ->
  ops:int ->
  unit ->
  result
(** The Fig. 14c micro-benchmark: array-backed records, all records under
    deferred verification, a 50/50 read/update uniform workload sharded
    across [workers] independent verifier threads. *)
