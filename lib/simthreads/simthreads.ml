type result = {
  workers : int;
  ops : int;
  modeled_seconds : float;
  throughput : float;
  per_worker_busy_s : float array;
  serial_s : float;
  verify_latency_s : float;
}

let paper_interference w =
  if w <= 1 then 1.0 else Float.pow 0.875 (Float.log2 (float_of_int w))

let makespan ~interference ~workers busy serial =
  let max_busy = Array.fold_left Float.max 0.0 busy in
  (max_busy /. interference workers) +. serial

let run_hybrid ?(interference = paper_interference) ~config ~db_size ~ops
    ~spec () =
  let t = Fastver.create ~config () in
  Fastver.load t
    (Array.init db_size (fun i ->
         (Int64.of_int i, Fastver_workload.Ycsb.initial_value (Int64.of_int i))));
  let gen =
    Fastver_workload.Ycsb.create ~seed:config.seed ~db_size spec
  in
  Fastver.run_ops t gen ops;
  ignore (Fastver.verify t);
  let s = Fastver.stats t in
  let workers = config.Fastver.Config.n_workers in
  let enclave_s = Int64.to_float (Fastver.enclave_overhead_ns t) /. 1e9 in
  (* Enclave transitions are per-worker work; spread them like busy time. *)
  let busy =
    Array.map
      (fun b -> b +. (enclave_s /. float_of_int workers))
      s.worker_busy_s
  in
  let modeled = makespan ~interference ~workers busy s.serial_s in
  let verifies = max 1 s.verifies in
  let verify_latency =
    (((s.verify_time_s -. s.serial_s) /. float_of_int workers)
    /. interference workers
    +. s.serial_s)
    /. float_of_int verifies
  in
  {
    workers;
    ops = s.ops;
    modeled_seconds = modeled;
    throughput = float_of_int s.ops /. modeled;
    per_worker_busy_s = busy;
    serial_s = s.serial_s;
    verify_latency_s = verify_latency;
  }

let run_dv_micro ?(interference = paper_interference) ~workers ~db_size ~ops
    () =
  let open Fastver_baselines in
  let shard_size = max 1 (db_size / workers) in
  let shard_ops = ops / workers in
  let busy = Array.make workers 0.0 in
  let latencies = ref 0.0 in
  for w = 0 to workers - 1 do
    Gc.full_major ();
    let records =
      Array.init shard_size (fun i ->
          (Int64.of_int i, Fastver_workload.Ycsb.initial_value (Int64.of_int i)))
    in
    let dv = Dv_store.create records in
    let rng = Random.State.make [| 97; w |] in
    let t0 = Unix.gettimeofday () in
    for i = 1 to shard_ops do
      let k = Int64.of_int (Random.State.int rng shard_size) in
      if i land 1 = 0 then ignore (Dv_store.get dv k)
      else Dv_store.put dv k "01234567"
    done;
    Dv_store.verify dv;
    busy.(w) <- Unix.gettimeofday () -. t0;
    latencies := !latencies +. Dv_store.last_verify_latency_s dv
  done;
  let modeled = makespan ~interference ~workers busy 0.0 in
  {
    workers;
    ops = shard_ops * workers;
    modeled_seconds = modeled;
    throughput = float_of_int (shard_ops * workers) /. modeled;
    per_worker_busy_s = busy;
    serial_s = 0.0;
    verify_latency_s = !latencies /. float_of_int workers;
  }
