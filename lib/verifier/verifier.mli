(** The FastVer verifier: the trusted state machine inside the enclave.

    The verifier maintains [n] minimally-interacting verifier threads (§5.3).
    Each thread owns a bounded record cache, a Lamport clock, and per-epoch
    add-/evict-multiset hashes. The untrusted host drives the verifier
    through the operations below; any check failure means the host deviated
    from the protocol (or the data was tampered with), and poisons the
    verifier permanently — it will never validate anything again.

    Records move between three protection states (§6):
    - {b cached}: present in some verifier thread's cache (trusted memory);
    - {b merkle-protected}: hash stored at the tree parent, [in_blum = false];
    - {b blum-protected}: value captured in an epoch's evict-set hash,
      [in_blum = true] at the tree parent (for records that have one).

    Transitions: [add_m] (merkle → cached), [evict_m] (cached → merkle),
    [evict_bm] (cached-via-merkle → blum), [add_b] (blum → cached),
    [evict_b] (cached-via-blum → blum). [vget]/[vput] validate client
    operations against cached records.

    All checks mirror the paper's F*-verified design, including the
    cross-mechanism guard: a record handed to Blum protection ([evict_bm])
    leaves an [in_blum] mark at its Merkle parent, so the stale Merkle hash
    can no longer be used to re-introduce an old version of the record. *)

type config = {
  n_threads : int;
  cache_capacity : int;  (** per-thread cache entries (512 in the paper) *)
  algo : Record_enc.algo;  (** Merkle hash function *)
  mac_secret : string;  (** shared secret with clients, for validations *)
  mset_secret : string;  (** 16-byte PRF key for multiset hashing *)
}

val default_config : config

type t

val create : ?enclave:Enclave.t -> config -> t
(** A fresh verifier over the all-null database: thread 0's cache holds the
    (empty) root record, pinned. All validations reflect updates applied
    through the verifier from this state. *)

val config : t -> config
val enclave : t -> Enclave.t

(** {2 Failure} *)

val failure : t -> string option
(** [Some reason] once any check has failed; the verifier is then poisoned. *)

type 'a result := ('a, string) Stdlib.result

(** {2 State-machine operations}

    [tid] selects the verifier thread; all cache/clock checks are local to
    it. Each returns [Error reason] — and poisons the verifier — if a check
    fails. *)

val add_m :
  t -> tid:int -> key:Key.t -> value:Value.t -> parent:Key.t ->
  Value.ptr option result
(** Add a merkle-protected record to the cache. [parent] must be cached in
    the same thread and its slot towards [key] must authenticate [value]
    (pointing case), be empty ([value] must be the initial value), or point
    below [key] ([value] must be the new internal node preserving the
    pointer). Returns the pointer newly installed in the parent, if the slot
    changed (fresh or split adds), so the host can mirror it. *)

val evict_m : t -> tid:int -> key:Key.t -> parent:Key.t -> Value.ptr result
(** Evict a cached record to Merkle protection: stores the hash of its
    current value in the cached parent (lazy update propagation, §4.3.1) and
    returns that pointer so the (untrusted) host can mirror the
    verifier-computed hash without recomputing it. *)

val add_b :
  t -> tid:int -> key:Key.t -> value:Value.t -> timestamp:Timestamp.t ->
  unit result
(** Add a blum-protected record: folds [(key, value, timestamp)] into the
    add-set of [timestamp]'s epoch and advances the Lamport clock. The value
    is {e not} checked here — it is checked by the epoch's set equality. *)

val evict_b : t -> tid:int -> key:Key.t -> timestamp:Timestamp.t -> unit result
(** Evict a cached record (added via {!add_b}) to Blum protection under a
    fresh timestamp, which must not precede the thread clock. *)

val evict_bm :
  t -> tid:int -> key:Key.t -> timestamp:Timestamp.t -> parent:Key.t ->
  unit result
(** Evict a cached record (added via {!add_m}) to Blum protection, marking
    [in_blum] at the cached parent. *)

val vget : t -> tid:int -> key:Key.t -> string option -> unit result
(** Validate that the cached data record [key] currently has this value
    ([None] = key absent from the database). *)

val vget_absent : t -> tid:int -> key:Key.t -> parent:Key.t -> unit result
(** Validate that data key [key] is absent, from the cached [parent] alone
    (Example 4.1): the slot towards [key] is either empty or names a key
    that is neither [key] nor one of its ancestors. No state changes. *)

val vput : t -> tid:int -> key:Key.t -> string option -> unit result
(** Validate an update of the cached data record [key]. *)

(** {2 Epochs} *)

val current_epoch : t -> int
(** The lowest unverified epoch. *)

val verified_epoch : t -> int
(** Highest verified epoch; -1 initially. *)

val close_epoch : t -> tid:int -> epoch:int -> unit result
(** Thread [tid] certifies it will contribute no further elements to
    [epoch]: its clock is advanced past the epoch. Epochs must be closed in
    order. *)

val verify_epoch : t -> epoch:int -> string result
(** Once every thread has closed [epoch], compare the aggregated add- and
    evict-set hashes. On success returns the epoch certificate — an HMAC
    under the client secret over the epoch number — and advances
    {!verified_epoch}. On mismatch the verifier is poisoned: some provisional
    validation in this epoch was inconsistent. *)

val detach_epoch : t -> tid:int -> epoch:int -> (string * string) result
(** [(add, evict)] multiset-hash values of thread [tid]'s contributions to
    [epoch], removed from the thread's open-epoch tables. Requires the
    thread to have closed [epoch] (its contributions are then frozen). Call
    under whatever lock serializes [tid]'s operations: afterwards the serial
    {!verify_epoch_detached} aggregation never reads thread state that
    foreground traffic mutates, so verification of epoch [e] can run
    concurrently with operations folding into epoch [e+1]. *)

val verify_epoch_detached :
  t -> epoch:int -> detached:(string * string) array -> string result
(** {!verify_epoch} over pre-{!detach_epoch}ed per-thread set hashes (one
    pair per thread, indexed by [tid]) instead of the live thread tables.
    Same certificate, same poisoning semantics. *)

(** {2 Sharded epoch aggregation}

    A sharded store runs one verifier per keyspace partition. Sealing an
    epoch is two-level: each shard checks its local add/evict balance
    ({!seal_epoch_shard}), issuing a shard certificate and exporting its
    folded set-hash values; the store level then folds every shard's values
    order-independently ({!aggregate_epoch_certificate}) and signs the same
    message {!verify_epoch} signs — so the aggregated certificate is
    bit-identical whether one shard or N produced it. *)

val seal_epoch_shard :
  t -> shard:int -> epoch:int -> detached:(string * string) array ->
  (string * (string * string)) result
(** {!verify_epoch_detached} for one shard: checks this verifier's local
    add/evict balance over the detached per-thread hashes, advances
    {!verified_epoch}, and returns [(shard_certificate, (add, evict))] where
    the second component is this shard's folded multiset-hash pair for
    {!aggregate_epoch_certificate}. Poisons this shard's verifier on
    mismatch. *)

val aggregate_epoch_certificate :
  mset_secret:string -> mac_secret:string -> epoch:int ->
  folds:(string * string) list -> string result
(** Fold per-shard [(add, evict)] multiset-hash values (from
    {!seal_epoch_shard}) into store-level accumulators, check the global
    balance, and return the store-level epoch certificate — an HMAC over
    {!epoch_certificate_message}, identical to a single-verifier
    {!verify_epoch} certificate. Pure: takes the secrets directly and
    poisons nothing (per-shard verifiers were already poisoned by their own
    local checks if anything was wrong). *)

val shard_certificate_message : shard:int -> epoch:int -> string
(** The canonical byte string signed by {!seal_epoch_shard}. *)

(** {2 Validation signatures} *)

val sign : t -> string -> string
(** MAC an arbitrary validation message under the client-shared secret.
    Returns a poisoned-verifier-refuses signature only when healthy:
    @raise Invalid_argument if the verifier is poisoned. *)

val epoch_certificate_message : epoch:int -> string
(** The canonical byte string signed by {!verify_epoch}. *)

(** {2 Trusted bulk initialisation}

    Loading an [N]-record database through per-operation proofs costs
    [O(N log N)] hashing. Deployments instead authenticate an initial
    database out of band (the data owner computes the Merkle root before
    handing data to the untrusted host). [install_root] models this: it
    overwrites the pinned root record inside thread 0. *)

val install_root : t -> Value.t -> unit result
(** Only permitted while the verifier is in its initial state (no operations
    processed yet). *)

val install_blum :
  t -> tid:int -> key:Key.t -> value:Value.t -> timestamp:Timestamp.t ->
  unit result
(** Trusted initialisation of a deferred-verification baseline: folds
    [(key, value, timestamp)] into the evict-set of [timestamp]'s epoch, as
    if the record had been legitimately evicted — Blum's initial write pass
    over the memory. Only permitted before any untrusted operation. *)

(** {2 Trusted checkpointing (§7 durability)}

    Right after an epoch verifies — caches empty apart from the pinned root —
    the entire trusted state compresses to a small summary: the verified
    epoch, per-thread clocks, the still-open epochs' set hashes, and the root
    record. The caller seals this blob in rollback-protected storage; on
    recovery {!of_summary} rebuilds an equivalent verifier. *)

val checkpoint_summary : t -> (string, string) Stdlib.result
(** Fails unless every cache except the root is empty (run it right after
    {!verify_epoch} once all records are evicted). *)

val of_summary :
  ?enclave:Enclave.t -> config -> string -> (t, string) Stdlib.result

(** {2 Introspection (trusted-side diagnostics and tests)} *)

val cached : t -> tid:int -> Key.t -> Value.t option
val cache_size : t -> tid:int -> int
val clock : t -> tid:int -> Timestamp.t

val cache_capacity : t -> int
(** Live per-thread cache capacity (initially [config.cache_capacity]). *)

val set_cache_capacity : t -> int -> unit
(** Retune the per-thread cache capacity (clamped to [>= 2]). Safe to call
    between epochs; the host must evict residents down to the new capacity
    before issuing further adds, exactly as it maintains headroom today. The
    soundness argument is unchanged — capacity only bounds memory, never
    correctness. *)

type op_stats = {
  mutable n_add_m : int;
  mutable n_evict_m : int;
  mutable n_add_b : int;
  mutable n_evict_b : int;
  mutable n_evict_bm : int;
  mutable n_vget : int;
  mutable n_vput : int;
  mutable n_certificates : int;
      (** epoch certificates issued ({!verify_epoch} successes) *)
}

val stats : t -> op_stats

(** {2 Certificate-chain checking (replication followers)}

    A process that consumes epoch certificates without running a verifier —
    a replication follower replaying the primary's op stream — tracks only
    the last epoch whose certificate authenticated. [check] enforces that
    epochs arrive densely in order and that each certificate is a valid HMAC
    over {!epoch_certificate_message} under the shared secret; the first
    failure is terminal and preserved (epoch + reason) as evidence. *)
module Cert_chain : sig
  type t

  val create : mac_secret:string -> verified:int -> t
  (** [verified] is the highest already-verified epoch ([-1] for a fresh
      store; the sealed epoch after checkpoint recovery). *)

  val verified_epoch : t -> int

  val failure : t -> (int * string) option
  (** [Some (epoch, reason)] once a certificate was rejected; the chain then
      refuses to advance forever. *)

  val check : t -> epoch:int -> cert:string -> (unit, string) Stdlib.result
  (** Verify the certificate for [epoch], which must be exactly
      [verified_epoch t + 1]. Advances the chain on success; poisons it on
      the first failure. *)
end
