(** Binary encoding of verifier operations — the enclave ABI.

    In a real deployment the host and the verifier do not share a heap: the
    worker serialises its verifier calls into a log buffer in untrusted
    memory, enters the enclave once, and the verifier parses and applies the
    entries (§7). This module is that wire format: a compact, length-safe
    binary codec for every verifier operation plus the response stream of
    verifier-computed pointers handed back to the host.

    Since the log is written by the (untrusted) host, {!decode} treats the
    input as adversarial: truncated, oversized or malformed entries produce
    [Error], never an exception or an out-of-bounds read. *)

type op =
  | Add_m of { key : Key.t; value : Value.t; parent : Key.t }
  | Evict_m of { key : Key.t; parent : Key.t }
  | Add_b of { key : Key.t; value : Value.t; timestamp : Timestamp.t }
  | Evict_b of { key : Key.t; timestamp : Timestamp.t }
  | Evict_bm of { key : Key.t; timestamp : Timestamp.t; parent : Key.t }
  | Vget of { key : Key.t; value : string option }
  | Vget_absent of { key : Key.t; parent : Key.t }
  | Vput of { key : Key.t; value : string option }
  | Close_epoch of int

val equal_op : op -> op -> bool
val pp_op : Format.formatter -> op -> unit

val encode : Buffer.t -> op -> unit
(** Append one entry to a log buffer. *)

val decode : string -> pos:int -> (op * int, string) result
(** [decode buf ~pos] parses the entry at [pos], returning it and the
    position of the next entry. *)

val decode_all : string -> (op list, string) result

(** {2 Applying a log}

    [apply_log] is what runs inside the enclave: parse each entry, run it
    against the verifier, and serialise any returned pointer updates into a
    response buffer the host uses to reconcile its merkle copies. Stops at
    the first failing entry (the verifier is poisoned by then anyway). *)

type response = { entry_index : int; installed : Value.ptr }

val apply_log :
  Verifier.t -> tid:int -> string -> (response list, string) result

val encode_responses : response list -> string
val decode_responses : string -> (response list, string) result
