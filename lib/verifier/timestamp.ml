type t = int64

let make ~epoch ~counter =
  if epoch < 0 || counter < 0 || counter > 0xffff_ffff then
    invalid_arg "Timestamp.make";
  Int64.logor
    (Int64.shift_left (Int64.of_int epoch) 32)
    (Int64.of_int counter)

let epoch t = Int64.to_int (Int64.shift_right_logical t 32)
let counter t = Int64.to_int (Int64.logand t 0xffff_ffffL)
let zero = 0L

let next t =
  if counter t = 0xffff_ffff then invalid_arg "Timestamp.next: counter overflow";
  Int64.succ t

let first_of_epoch e = make ~epoch:e ~counter:0
let compare = Int64.compare
let max a b = if compare a b >= 0 then a else b
let encode = Fastver_crypto.Bytes_util.string_of_u64_le
let pp ppf t = Format.fprintf ppf "(e%d,c%d)" (epoch t) (counter t)
