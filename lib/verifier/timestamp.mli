(** Verifier timestamps: an (epoch, counter) pair packed into an [int64].

    Deferred verification tags every record with the timestamp of its last
    eviction. The high 32 bits carry the verification epoch the eviction
    belongs to; the low 32 bits are a per-thread Lamport counter. Comparing
    packed values as integers is exactly the lexicographic (epoch, counter)
    order the protocol needs. *)

type t = int64

val make : epoch:int -> counter:int -> t
val epoch : t -> int
val counter : t -> int

val zero : t
(** Epoch 0, counter 0 — the timestamp of trusted initial state. *)

val next : t -> t
(** Same epoch, counter + 1. @raise Invalid_argument on counter overflow. *)

val first_of_epoch : int -> t
val compare : t -> t -> int
val max : t -> t -> t
val encode : t -> string
val pp : Format.formatter -> t -> unit
