open Fastver_crypto

type config = {
  n_threads : int;
  cache_capacity : int;
  algo : Record_enc.algo;
  mac_secret : string;
  mset_secret : string;
}

let default_config =
  {
    n_threads = 1;
    cache_capacity = 512;
    algo = Record_enc.Blake2s;
    mac_secret = "fastver-default-client-secret";
    mset_secret = "fastver-mset-k3y";
  }

type add_method = Via_merkle | Via_blum

type cache_entry = { mutable value : Value.t; mutable added_via : add_method }

type thread = {
  tid : int;
  cache : cache_entry Key.Tbl.t;
  mutable clock : Timestamp.t;
  mutable closed_through : int; (* no more set elements for epochs <= this *)
  add_sets : (int, Multiset_hash.t) Hashtbl.t;
  evict_sets : (int, Multiset_hash.t) Hashtbl.t;
}

type op_stats = {
  mutable n_add_m : int;
  mutable n_evict_m : int;
  mutable n_add_b : int;
  mutable n_evict_b : int;
  mutable n_evict_bm : int;
  mutable n_vget : int;
  mutable n_vput : int;
  mutable n_certificates : int;
}

type t = {
  config : config;
  enclave : Enclave.t;
  threads : thread array;
  mset_key : Multiset_hash.key;
  mutable cache_capacity : int;
      (* live per-thread cache cap; starts at [config.cache_capacity] and may
         be retuned between epochs by the adaptive controller *)
  mutable verified : int;
  mutable failure : string option;
  mutable ops_processed : int;
  stats : op_stats;
}

let create ?enclave config =
  if config.n_threads < 1 then invalid_arg "Verifier.create: n_threads";
  if config.cache_capacity < 2 then invalid_arg "Verifier.create: capacity";
  if String.length config.mset_secret <> 16 then
    invalid_arg "Verifier.create: mset_secret must be 16 bytes";
  let enclave =
    match enclave with
    | Some e -> e
    | None -> Enclave.create Cost_model.zero
  in
  let thread tid =
    {
      tid;
      cache = Key.Tbl.create 64;
      clock = Timestamp.zero;
      closed_through = -1;
      add_sets = Hashtbl.create 4;
      evict_sets = Hashtbl.create 4;
    }
  in
  let threads = Array.init config.n_threads thread in
  (* The root record is pinned in thread 0 and never evicted. *)
  Key.Tbl.replace threads.(0).cache Key.root
    { value = Value.empty_node; added_via = Via_merkle };
  {
    config;
    enclave;
    threads;
    cache_capacity = config.cache_capacity;
    mset_key = Multiset_hash.key_of_string config.mset_secret;
    verified = -1;
    failure = None;
    ops_processed = 0;
    stats =
      {
        n_add_m = 0;
        n_evict_m = 0;
        n_add_b = 0;
        n_evict_b = 0;
        n_evict_bm = 0;
        n_vget = 0;
        n_vput = 0;
        n_certificates = 0;
      };
  }

let config t = t.config
let enclave t = t.enclave
let failure t = t.failure
let stats t = t.stats
let verified_epoch t = t.verified
let current_epoch t = t.verified + 1

let fail t fmt =
  Fmt.kstr
    (fun reason ->
      if t.failure = None then t.failure <- Some reason;
      Error reason)
    fmt

let thread t tid =
  if tid < 0 || tid >= Array.length t.threads then
    invalid_arg "Verifier: bad thread id";
  t.threads.(tid)

(* Every operation begins here: poisoned verifiers refuse all work. *)
let guard t =
  match t.failure with
  | Some reason -> Error ("verifier poisoned: " ^ reason)
  | None ->
      t.ops_processed <- t.ops_processed + 1;
      Ok ()

let ( let* ) = Result.bind

let hash_value t v = Record_enc.hash_value ~algo:t.config.algo v

let set_hash sets epoch key =
  match Hashtbl.find_opt sets epoch with
  | Some h -> h
  | None ->
      let h = Multiset_hash.create key in
      Hashtbl.replace sets epoch h;
      h

let parent_node t th ~key ~parent =
  if not (Key.is_proper_ancestor parent key) then
    fail t "%a is not a proper ancestor of %a" Key.pp parent Key.pp key
  else
    match Key.Tbl.find_opt th.cache parent with
    | None -> fail t "parent %a not in cache of thread %d" Key.pp parent th.tid
    | Some ({ value = Value.Node n; _ } as entry) -> Ok (entry, n)
    | Some { value = Value.Data _; _ } ->
        fail t "parent %a holds a data value" Key.pp parent

let add_m t ~tid ~key ~value ~parent =
  let* () = guard t in
  t.stats.n_add_m <- t.stats.n_add_m + 1;
  let th = thread t tid in
  if Key.equal key Key.root then fail t "add_m: root is pinned"
  else if not (Value.compatible key value) then
    fail t "add_m: value incompatible with key %a" Key.pp key
  else if Key.Tbl.mem th.cache key then
    fail t "add_m: %a already cached in thread %d" Key.pp key tid
  else if Key.Tbl.length th.cache >= t.cache_capacity then
    fail t "add_m: cache of thread %d full" tid
  else
    let* parent_entry, n = parent_node t th ~key ~parent in
    let d = Key.dir key ~ancestor:parent in
    let finish installed =
      Key.Tbl.replace th.cache key { value; added_via = Via_merkle };
      Ok installed
    in
    match Value.slot n d with
    | None ->
        (* Empty slot: only the initial (null) value may appear here. *)
        if not (Value.is_init key value) then
          fail t "add_m: fresh record %a must carry its initial value" Key.pp
            key
        else begin
          let ptr =
            { Value.key; hash = hash_value t value; in_blum = false }
          in
          parent_entry.value <- Value.Node (Value.set_slot n d (Some ptr));
          finish (Some ptr)
        end
    | Some ({ Value.key = pointee; hash; in_blum } as ptr) ->
        if Key.equal pointee key then
          if in_blum then
            fail t "add_m: %a is blum-protected (must use add_b)" Key.pp key
          else if not (String.equal hash (hash_value t value)) then
            fail t "add_m: hash mismatch for %a" Key.pp key
          else finish None
        else if Key.is_proper_ancestor key pointee then begin
          (* [key] is a new internal node between [parent] and [pointee]: its
             value must carry exactly the existing pointer and nothing else. *)
          let d2 = Key.dir pointee ~ancestor:key in
          let expected =
            Value.Node
              (Value.set_slot { left = None; right = None } d2 (Some ptr))
          in
          if not (Value.equal value expected) then
            fail t "add_m: new internal node %a must preserve pointer to %a"
              Key.pp key Key.pp pointee
          else begin
            let ptr' =
              { Value.key; hash = hash_value t value; in_blum = false }
            in
            parent_entry.value <- Value.Node (Value.set_slot n d (Some ptr'));
            finish (Some ptr')
          end
        end
        else
          fail t "add_m: slot of %a points to unrelated key %a" Key.pp parent
            Key.pp pointee

let evict_m t ~tid ~key ~parent =
  let* () = guard t in
  t.stats.n_evict_m <- t.stats.n_evict_m + 1;
  let th = thread t tid in
  if Key.equal key Key.root then fail t "evict_m: root is pinned"
  else
    match Key.Tbl.find_opt th.cache key with
    | None -> fail t "evict_m: %a not cached in thread %d" Key.pp key tid
    | Some entry ->
        let* parent_entry, n = parent_node t th ~key ~parent in
        let d = Key.dir key ~ancestor:parent in
        (match Value.slot n d with
        | Some { Value.key = pointee; _ } when Key.equal pointee key ->
            let ptr =
              {
                Value.key;
                hash = hash_value t entry.value;
                in_blum = false;
              }
            in
            parent_entry.value <- Value.Node (Value.set_slot n d (Some ptr));
            Key.Tbl.remove th.cache key;
            Ok ptr
        | Some _ | None ->
            fail t "evict_m: %a does not point to %a" Key.pp parent Key.pp key)

let add_b t ~tid ~key ~value ~timestamp =
  let* () = guard t in
  t.stats.n_add_b <- t.stats.n_add_b + 1;
  let th = thread t tid in
  let epoch = Timestamp.epoch timestamp in
  if Key.equal key Key.root then fail t "add_b: root is pinned"
  else if not (Value.compatible key value) then
    fail t "add_b: value incompatible with key %a" Key.pp key
  else if Key.Tbl.mem th.cache key then
    fail t "add_b: %a already cached in thread %d" Key.pp key tid
  else if Key.Tbl.length th.cache >= t.cache_capacity then
    fail t "add_b: cache of thread %d full" tid
  else if epoch <= t.verified then
    fail t "add_b: timestamp epoch %d already verified" epoch
  else if epoch <= th.closed_through then
    fail t "add_b: thread %d already closed epoch %d" tid epoch
  else begin
    Multiset_hash.add
      (set_hash th.add_sets epoch t.mset_key)
      (Record_enc.blum_element key value timestamp);
    th.clock <- Timestamp.max th.clock (Timestamp.next timestamp);
    Key.Tbl.replace th.cache key { value; added_via = Via_blum };
    Ok ()
  end

(* Shared tail of evict_b / evict_bm: fold the evict element, advance the
   clock, drop the cache entry. *)
let evict_to_blum t th ~key ~(entry : cache_entry) ~timestamp =
  let epoch = Timestamp.epoch timestamp in
  if Timestamp.compare timestamp th.clock < 0 then
    fail t "evict to blum: timestamp %a behind clock %a of thread %d"
      Timestamp.pp timestamp Timestamp.pp th.clock th.tid
  else if epoch <= t.verified then
    fail t "evict to blum: epoch %d already verified" epoch
  else if epoch <= th.closed_through then
    fail t "evict to blum: thread %d already closed epoch %d" th.tid epoch
  else begin
    Multiset_hash.add
      (set_hash th.evict_sets epoch t.mset_key)
      (Record_enc.blum_element key entry.value timestamp);
    th.clock <- timestamp;
    Key.Tbl.remove th.cache key;
    Ok ()
  end

let evict_b t ~tid ~key ~timestamp =
  let* () = guard t in
  t.stats.n_evict_b <- t.stats.n_evict_b + 1;
  let th = thread t tid in
  match Key.Tbl.find_opt th.cache key with
  | None -> fail t "evict_b: %a not cached in thread %d" Key.pp key tid
  | Some entry -> (
      match entry.added_via with
      | Via_merkle ->
          fail t "evict_b: %a was added via merkle (must use evict_bm)" Key.pp
            key
      | Via_blum -> evict_to_blum t th ~key ~entry ~timestamp)

let evict_bm t ~tid ~key ~timestamp ~parent =
  let* () = guard t in
  t.stats.n_evict_bm <- t.stats.n_evict_bm + 1;
  let th = thread t tid in
  match Key.Tbl.find_opt th.cache key with
  | None -> fail t "evict_bm: %a not cached in thread %d" Key.pp key tid
  | Some entry -> (
      match entry.added_via with
      | Via_blum ->
          fail t "evict_bm: %a was added via blum (must use evict_b)" Key.pp
            key
      | Via_merkle -> (
          let* parent_entry, n = parent_node t th ~key ~parent in
          let d = Key.dir key ~ancestor:parent in
          match Value.slot n d with
          | Some ({ Value.key = pointee; in_blum = false; _ } as ptr)
            when Key.equal pointee key ->
              (* The stale hash stays; the [in_blum] mark invalidates it for
                 future add_m until an evict_m refreshes it. *)
              parent_entry.value <-
                Value.Node
                  (Value.set_slot n d (Some { ptr with in_blum = true }));
              evict_to_blum t th ~key ~entry ~timestamp
          | Some { Value.key = pointee; in_blum = true; _ }
            when Key.equal pointee key ->
              fail t "evict_bm: %a already marked in_blum" Key.pp key
          | Some _ | None ->
              fail t "evict_bm: %a does not point to %a" Key.pp parent Key.pp
                key))

let vget t ~tid ~key value =
  let* () = guard t in
  t.stats.n_vget <- t.stats.n_vget + 1;
  let th = thread t tid in
  if not (Key.is_data_key key) then fail t "vget: %a not a data key" Key.pp key
  else
    match Key.Tbl.find_opt th.cache key with
    | None -> fail t "vget: %a not cached in thread %d" Key.pp key tid
    | Some { value = Value.Data v; _ } ->
        if Option.equal String.equal v value then Ok ()
        else fail t "vget: stale or tampered value for %a" Key.pp key
    | Some { value = Value.Node _; _ } ->
        fail t "vget: merkle value under data key %a" Key.pp key

let vget_absent t ~tid ~key ~parent =
  let* () = guard t in
  t.stats.n_vget <- t.stats.n_vget + 1;
  let th = thread t tid in
  if not (Key.is_data_key key) then
    fail t "vget_absent: %a not a data key" Key.pp key
  else
    let* _, n = parent_node t th ~key ~parent in
    let d = Key.dir key ~ancestor:parent in
    match Value.slot n d with
    | None -> Ok ()
    | Some { Value.key = pointee; _ } ->
        if
          Key.equal pointee key
          || Key.is_proper_ancestor pointee key
        then
          fail t "vget_absent: %a does not prove absence of %a" Key.pp parent
            Key.pp key
        else Ok ()

let vput t ~tid ~key value =
  let* () = guard t in
  t.stats.n_vput <- t.stats.n_vput + 1;
  let th = thread t tid in
  if not (Key.is_data_key key) then fail t "vput: %a not a data key" Key.pp key
  else
    match Key.Tbl.find_opt th.cache key with
    | None -> fail t "vput: %a not cached in thread %d" Key.pp key tid
    | Some entry ->
        entry.value <- Value.Data value;
        Ok ()

let close_epoch t ~tid ~epoch =
  let* () = guard t in
  let th = thread t tid in
  if epoch <> th.closed_through + 1 then
    fail t "close_epoch: thread %d must close epoch %d next" tid
      (th.closed_through + 1)
  else begin
    th.closed_through <- epoch;
    th.clock <- Timestamp.max th.clock (Timestamp.first_of_epoch (epoch + 1));
    Ok ()
  end

let epoch_certificate_message ~epoch =
  Printf.sprintf "fastver-epoch-verified:%d" epoch

(* Background verification: once a thread has closed [epoch], its epoch set
   hashes are frozen. [detach_epoch] removes them from the thread's open-set
   tables (under whatever lock serializes that thread's operations) and
   returns the raw values, so the serial aggregation in
   [verify_epoch_detached] never touches per-thread hashtables that
   foreground traffic is concurrently folding epoch e+1 elements into. *)
let detach_epoch t ~tid ~epoch =
  let* () = guard t in
  let th = thread t tid in
  if th.closed_through < epoch then
    fail t "detach_epoch: thread %d has not closed epoch %d" tid epoch
  else begin
    let take sets =
      match Hashtbl.find_opt sets epoch with
      | Some h ->
          Hashtbl.remove sets epoch;
          Multiset_hash.value h
      | None -> Multiset_hash.empty_value
    in
    let add = take th.add_sets in
    let evict = take th.evict_sets in
    Ok (add, evict)
  end

let verify_epoch_detached t ~epoch ~detached =
  let* () = guard t in
  if epoch <> t.verified + 1 then
    fail t "verify_epoch: expected epoch %d" (t.verified + 1)
  else if Array.length detached <> Array.length t.threads then
    fail t "verify_epoch: detached sets for %d threads, have %d"
      (Array.length detached) (Array.length t.threads)
  else if Array.exists (fun th -> th.closed_through < epoch) t.threads then
    fail t "verify_epoch: not all threads closed epoch %d" epoch
  else begin
    let adds = Multiset_hash.create t.mset_key
    and evicts = Multiset_hash.create t.mset_key in
    Array.iter
      (fun (add, evict) ->
        Multiset_hash.merge adds (Multiset_hash.of_value t.mset_key add);
        Multiset_hash.merge evicts (Multiset_hash.of_value t.mset_key evict))
      detached;
    if not (Multiset_hash.equal adds evicts) then
      fail t "verify_epoch: add/evict multiset mismatch in epoch %d" epoch
    else begin
      t.verified <- epoch;
      t.stats.n_certificates <- t.stats.n_certificates + 1;
      Ok (Hmac.mac ~key:t.config.mac_secret (epoch_certificate_message ~epoch))
    end
  end

let verify_epoch t ~epoch =
  let* () = guard t in
  if epoch <> t.verified + 1 then
    fail t "verify_epoch: expected epoch %d" (t.verified + 1)
  else if
    Array.exists (fun th -> th.closed_through < epoch) t.threads
  then fail t "verify_epoch: not all threads closed epoch %d" epoch
  else begin
    let adds = Multiset_hash.create t.mset_key
    and evicts = Multiset_hash.create t.mset_key in
    let take sets acc =
      match Hashtbl.find_opt sets epoch with
      | Some h ->
          Multiset_hash.merge acc h;
          Hashtbl.remove sets epoch
      | None -> ()
    in
    Array.iter
      (fun th ->
        take th.add_sets adds;
        take th.evict_sets evicts)
      t.threads;
    if not (Multiset_hash.equal adds evicts) then
      fail t "verify_epoch: add/evict multiset mismatch in epoch %d" epoch
    else begin
      t.verified <- epoch;
      t.stats.n_certificates <- t.stats.n_certificates + 1;
      Ok (Hmac.mac ~key:t.config.mac_secret (epoch_certificate_message ~epoch))
    end
  end

(* Sharded stores (§5.3 extended across trees): each shard runs its own
   verifier over a disjoint keyspace slice. Sealing an epoch is two-level:
   every shard checks its local add/evict balance and issues a shard
   certificate, exporting its folded (add, evict) values; the store-level
   certificate then folds the per-shard values order-independently and signs
   the unchanged store-level message — so the aggregated certificate is
   bit-identical whether one shard or N produced it. *)

let shard_certificate_message ~shard ~epoch =
  Printf.sprintf "fastver-shard-verified:%d:%d" shard epoch

let seal_epoch_shard t ~shard ~epoch ~detached =
  let* () = guard t in
  if epoch <> t.verified + 1 then
    fail t "seal_epoch: shard %d expected epoch %d" shard (t.verified + 1)
  else if Array.length detached <> Array.length t.threads then
    fail t "seal_epoch: detached sets for %d threads, have %d"
      (Array.length detached) (Array.length t.threads)
  else if Array.exists (fun th -> th.closed_through < epoch) t.threads then
    fail t "seal_epoch: not all threads closed epoch %d" epoch
  else begin
    let adds = Multiset_hash.create t.mset_key
    and evicts = Multiset_hash.create t.mset_key in
    Array.iter
      (fun (add, evict) ->
        Multiset_hash.merge adds (Multiset_hash.of_value t.mset_key add);
        Multiset_hash.merge evicts (Multiset_hash.of_value t.mset_key evict))
      detached;
    if not (Multiset_hash.equal adds evicts) then
      fail t "seal_epoch: add/evict multiset mismatch in shard %d epoch %d"
        shard epoch
    else begin
      t.verified <- epoch;
      t.stats.n_certificates <- t.stats.n_certificates + 1;
      let cert =
        Hmac.mac ~key:t.config.mac_secret
          (shard_certificate_message ~shard ~epoch)
      in
      Ok (cert, (Multiset_hash.value adds, Multiset_hash.value evicts))
    end
  end

let aggregate_epoch_certificate ~mset_secret ~mac_secret ~epoch ~folds =
  let key = Multiset_hash.key_of_string mset_secret in
  let adds = Multiset_hash.create key and evicts = Multiset_hash.create key in
  List.iter
    (fun (add, evict) ->
      Multiset_hash.merge adds (Multiset_hash.of_value key add);
      Multiset_hash.merge evicts (Multiset_hash.of_value key evict))
    folds;
  if not (Multiset_hash.equal adds evicts) then
    Error
      (Printf.sprintf
         "aggregate_epoch: add/evict multiset mismatch in epoch %d" epoch)
  else Ok (Hmac.mac ~key:mac_secret (epoch_certificate_message ~epoch))

let sign t msg =
  if t.failure <> None then invalid_arg "Verifier.sign: poisoned";
  Hmac.mac ~key:t.config.mac_secret msg

let install_root t value =
  let* () = guard t in
  t.ops_processed <- t.ops_processed - 1;
  if t.ops_processed > 0 || t.verified >= 0 then
    fail t "install_root: verifier already in use"
  else
    match value with
    | Value.Data _ -> fail t "install_root: root must be a merkle value"
    | Value.Node _ ->
        (Key.Tbl.find t.threads.(0).cache Key.root).value <- value;
        Ok ()

let install_blum t ~tid ~key ~value ~timestamp =
  let* () = guard t in
  t.ops_processed <- t.ops_processed - 1;
  if t.ops_processed > 0 || t.verified >= 0 then
    fail t "install_blum: verifier already in use"
  else if not (Value.compatible key value) then
    fail t "install_blum: value incompatible with key %a" Key.pp key
  else begin
    let th = thread t tid in
    Multiset_hash.add
      (set_hash th.evict_sets (Timestamp.epoch timestamp) t.mset_key)
      (Record_enc.blum_element key value timestamp);
    th.clock <- Timestamp.max th.clock timestamp;
    Ok ()
  end

(* Summary layout: verified(8) | root_len(4) root_enc | per thread:
   clock(8) closed(8) n_epochs(4) { epoch(8) add(16) evict(16) }. *)
let checkpoint_summary t =
  let* () = guard t in
  t.ops_processed <- t.ops_processed - 1;
  let clean =
    Array.for_all
      (fun th ->
        Key.Tbl.length th.cache = if th.tid = 0 then 1 else 0)
      t.threads
  in
  if not clean then Error "checkpoint_summary: caches not empty"
  else begin
    let buf = Buffer.create 256 in
    let u64 v = Buffer.add_string buf (Bytes_util.string_of_u64_le v) in
    let u32 v =
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int v);
      Buffer.add_bytes buf b
    in
    u64 (Int64.of_int t.verified);
    let root_enc =
      Value.encode (Key.Tbl.find t.threads.(0).cache Key.root).value
    in
    u32 (String.length root_enc);
    Buffer.add_string buf root_enc;
    Array.iter
      (fun th ->
        u64 th.clock;
        u64 (Int64.of_int th.closed_through);
        let epochs =
          List.sort_uniq Stdlib.compare
            (Hashtbl.fold (fun e _ acc -> e :: acc) th.add_sets []
            @ Hashtbl.fold (fun e _ acc -> e :: acc) th.evict_sets [])
        in
        u32 (List.length epochs);
        List.iter
          (fun e ->
            u64 (Int64.of_int e);
            let v sets =
              match Hashtbl.find_opt sets e with
              | Some h -> Multiset_hash.value h
              | None -> Multiset_hash.empty_value
            in
            Buffer.add_string buf (v th.add_sets);
            Buffer.add_string buf (v th.evict_sets))
          epochs)
      t.threads;
    Ok (Buffer.contents buf)
  end

let of_summary ?enclave config summary =
  let t = create ?enclave config in
  let pos = ref 0 in
  let fail msg = Error ("Verifier.of_summary: " ^ msg) in
  try
    let u64 () =
      let v = Bytes_util.get_u64_le summary !pos in
      pos := !pos + 8;
      v
    in
    let u32 () =
      let v = Int32.to_int (String.get_int32_le summary !pos) in
      pos := !pos + 4;
      v
    in
    let str n =
      let s = String.sub summary !pos n in
      pos := !pos + n;
      s
    in
    t.verified <- Int64.to_int (u64 ());
    let root_len = u32 () in
    (match Value.decode (str root_len) with
    | Ok (Value.Node _ as v) ->
        (Key.Tbl.find t.threads.(0).cache Key.root).value <- v
    | Ok (Value.Data _) -> failwith "root is a data value"
    | Error e -> failwith e);
    Array.iter
      (fun th ->
        th.clock <- u64 ();
        th.closed_through <- Int64.to_int (u64 ());
        let n_epochs = u32 () in
        for _ = 1 to n_epochs do
          let e = Int64.to_int (u64 ()) in
          let add = str 16 and evict = str 16 in
          if not (Multiset_hash.equal_value add Multiset_hash.empty_value)
          then
            Hashtbl.replace th.add_sets e
              (Multiset_hash.of_value t.mset_key add);
          if not (Multiset_hash.equal_value evict Multiset_hash.empty_value)
          then
            Hashtbl.replace th.evict_sets e
              (Multiset_hash.of_value t.mset_key evict)
        done)
      t.threads;
    if !pos <> String.length summary then fail "trailing bytes" else Ok t
  with
  | Invalid_argument _ -> fail "truncated"
  | Failure msg -> fail msg

let cached t ~tid key =
  Option.map
    (fun e -> e.value)
    (Key.Tbl.find_opt (thread t tid).cache key)

let cache_size t ~tid = Key.Tbl.length (thread t tid).cache
let clock t ~tid = (thread t tid).clock
let cache_capacity t = t.cache_capacity
let set_cache_capacity t n = t.cache_capacity <- max 2 n

(* A follower consuming the primary's epoch-certificate stream holds no
   verifier state of its own for the chain — just the last epoch whose
   certificate authenticated. Certificates are HMACs over the epoch number
   alone, so the chain check is: epochs arrive densely in order, and each
   certificate authenticates under the shared secret. Any gap, regression or
   forged byte stops the chain permanently at the offending epoch. *)
module Cert_chain = struct
  type nonrec t = {
    mac_secret : string;
    mutable verified : int;
    mutable failed : (int * string) option;
  }

  let create ~mac_secret ~verified = { mac_secret; verified; failed = None }
  let verified_epoch t = t.verified
  let failure t = t.failed

  let check t ~epoch ~cert =
    match t.failed with
    | Some (e, reason) ->
        Error (Printf.sprintf "chain already failed at epoch %d: %s" e reason)
    | None ->
        if epoch <> t.verified + 1 then begin
          let reason =
            Printf.sprintf "expected epoch %d next, got %d" (t.verified + 1)
              epoch
          in
          t.failed <- Some (epoch, reason);
          Error reason
        end
        else if
          not
            (Hmac.verify ~key:t.mac_secret
               (epoch_certificate_message ~epoch)
               ~tag:cert)
        then begin
          let reason =
            Printf.sprintf "epoch %d certificate does not authenticate" epoch
          in
          t.failed <- Some (epoch, reason);
          Error reason
        end
        else begin
          t.verified <- epoch;
          Ok ()
        end
end
