type op =
  | Add_m of { key : Key.t; value : Value.t; parent : Key.t }
  | Evict_m of { key : Key.t; parent : Key.t }
  | Add_b of { key : Key.t; value : Value.t; timestamp : Timestamp.t }
  | Evict_b of { key : Key.t; timestamp : Timestamp.t }
  | Evict_bm of { key : Key.t; timestamp : Timestamp.t; parent : Key.t }
  | Vget of { key : Key.t; value : string option }
  | Vget_absent of { key : Key.t; parent : Key.t }
  | Vput of { key : Key.t; value : string option }
  | Close_epoch of int

let equal_op a b =
  match (a, b) with
  | Add_m a, Add_m b ->
      Key.equal a.key b.key && Value.equal a.value b.value
      && Key.equal a.parent b.parent
  | Evict_m a, Evict_m b -> Key.equal a.key b.key && Key.equal a.parent b.parent
  | Add_b a, Add_b b ->
      Key.equal a.key b.key && Value.equal a.value b.value
      && Timestamp.compare a.timestamp b.timestamp = 0
  | Evict_b a, Evict_b b ->
      Key.equal a.key b.key && Timestamp.compare a.timestamp b.timestamp = 0
  | Evict_bm a, Evict_bm b ->
      Key.equal a.key b.key
      && Timestamp.compare a.timestamp b.timestamp = 0
      && Key.equal a.parent b.parent
  | Vget a, Vget b ->
      Key.equal a.key b.key && Option.equal String.equal a.value b.value
  | Vput a, Vput b ->
      Key.equal a.key b.key && Option.equal String.equal a.value b.value
  | Vget_absent a, Vget_absent b ->
      Key.equal a.key b.key && Key.equal a.parent b.parent
  | Close_epoch a, Close_epoch b -> a = b
  | ( ( Add_m _ | Evict_m _ | Add_b _ | Evict_b _ | Evict_bm _ | Vget _
      | Vget_absent _ | Vput _ | Close_epoch _ ),
      _ ) ->
      false

let pp_op ppf = function
  | Add_m { key; parent; _ } ->
      Format.fprintf ppf "add_m(%a via %a)" Key.pp key Key.pp parent
  | Evict_m { key; parent } ->
      Format.fprintf ppf "evict_m(%a to %a)" Key.pp key Key.pp parent
  | Add_b { key; timestamp; _ } ->
      Format.fprintf ppf "add_b(%a@%a)" Key.pp key Timestamp.pp timestamp
  | Evict_b { key; timestamp } ->
      Format.fprintf ppf "evict_b(%a@%a)" Key.pp key Timestamp.pp timestamp
  | Evict_bm { key; timestamp; parent } ->
      Format.fprintf ppf "evict_bm(%a@%a mark %a)" Key.pp key Timestamp.pp
        timestamp Key.pp parent
  | Vget { key; _ } -> Format.fprintf ppf "vget(%a)" Key.pp key
  | Vget_absent { key; _ } -> Format.fprintf ppf "vget_absent(%a)" Key.pp key
  | Vput { key; _ } -> Format.fprintf ppf "vput(%a)" Key.pp key
  | Close_epoch e -> Format.fprintf ppf "close_epoch(%d)" e

(* Wire format: tag byte, then fixed-width fields; variable-width values are
   length-prefixed with a 32-bit little-endian count. Keys use the canonical
   34-byte encoding. *)

let add_u32 buf v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let add_u64 buf v = Buffer.add_string buf (Fastver_crypto.Bytes_util.string_of_u64_le v)

let add_bytes_lp buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_key buf k = Buffer.add_string buf (Key.encode k)

let add_value_opt buf = function
  | None -> Buffer.add_char buf '\x00'
  | Some s ->
      Buffer.add_char buf '\x01';
      add_bytes_lp buf s

let encode buf op =
  match op with
  | Add_m { key; value; parent } ->
      Buffer.add_char buf 'M';
      add_key buf key;
      add_key buf parent;
      add_bytes_lp buf (Value.encode value)
  | Evict_m { key; parent } ->
      Buffer.add_char buf 'm';
      add_key buf key;
      add_key buf parent
  | Add_b { key; value; timestamp } ->
      Buffer.add_char buf 'B';
      add_key buf key;
      add_u64 buf timestamp;
      add_bytes_lp buf (Value.encode value)
  | Evict_b { key; timestamp } ->
      Buffer.add_char buf 'b';
      add_key buf key;
      add_u64 buf timestamp
  | Evict_bm { key; timestamp; parent } ->
      Buffer.add_char buf 'x';
      add_key buf key;
      add_u64 buf timestamp;
      add_key buf parent
  | Vget { key; value } ->
      Buffer.add_char buf 'g';
      add_key buf key;
      add_value_opt buf value
  | Vget_absent { key; parent } ->
      Buffer.add_char buf 'a';
      add_key buf key;
      add_key buf parent
  | Vput { key; value } ->
      Buffer.add_char buf 'p';
      add_key buf key;
      add_value_opt buf value
  | Close_epoch e ->
      Buffer.add_char buf 'c';
      add_u64 buf (Int64.of_int e)

(* Bounded readers over adversarial input. *)
exception Bad of string

let max_value_len = 1 lsl 24 (* 16 MiB: generous bound on one record *)

let need s pos n =
  if pos + n > String.length s then raise (Bad "truncated entry")

let read_key s pos =
  need s pos 34;
  let depth = String.get_uint16_le s pos in
  if depth > Key.max_depth then raise (Bad "bad key depth");
  let path = Key.of_bytes32 (String.sub s (pos + 2) 32) in
  let k = if depth = Key.max_depth then path else Key.prefix path depth in
  if not (String.equal (Key.encode k) (String.sub s pos 34)) then
    raise (Bad "non-canonical key");
  (k, pos + 34)

let read_u64 s pos =
  need s pos 8;
  (Fastver_crypto.Bytes_util.get_u64_le s pos, pos + 8)

let read_bytes_lp s pos =
  need s pos 4;
  let n = Int32.to_int (String.get_int32_le s pos) in
  if n < 0 || n > max_value_len then raise (Bad "bad length");
  need s (pos + 4) n;
  (String.sub s (pos + 4) n, pos + 4 + n)

let read_value s pos =
  let raw, pos = read_bytes_lp s pos in
  match Value.decode raw with
  | Ok v -> (v, pos)
  | Error e -> raise (Bad e)

let read_value_opt s pos =
  need s pos 1;
  match s.[pos] with
  | '\x00' -> (None, pos + 1)
  | '\x01' ->
      let v, pos = read_bytes_lp s (pos + 1) in
      (Some v, pos)
  | _ -> raise (Bad "bad option tag")

let decode s ~pos =
  match
    begin
      need s pos 1;
      match s.[pos] with
      | 'M' ->
          let key, pos = read_key s (pos + 1) in
          let parent, pos = read_key s pos in
          let value, pos = read_value s pos in
          (Add_m { key; value; parent }, pos)
      | 'm' ->
          let key, pos = read_key s (pos + 1) in
          let parent, pos = read_key s pos in
          (Evict_m { key; parent }, pos)
      | 'B' ->
          let key, pos = read_key s (pos + 1) in
          let timestamp, pos = read_u64 s pos in
          let value, pos = read_value s pos in
          (Add_b { key; value; timestamp }, pos)
      | 'b' ->
          let key, pos = read_key s (pos + 1) in
          let timestamp, pos = read_u64 s pos in
          (Evict_b { key; timestamp }, pos)
      | 'x' ->
          let key, pos = read_key s (pos + 1) in
          let timestamp, pos = read_u64 s pos in
          let parent, pos = read_key s pos in
          (Evict_bm { key; timestamp; parent }, pos)
      | 'g' ->
          let key, pos = read_key s (pos + 1) in
          let value, pos = read_value_opt s pos in
          (Vget { key; value }, pos)
      | 'a' ->
          let key, pos = read_key s (pos + 1) in
          let parent, pos = read_key s pos in
          (Vget_absent { key; parent }, pos)
      | 'p' ->
          let key, pos = read_key s (pos + 1) in
          let value, pos = read_value_opt s pos in
          (Vput { key; value }, pos)
      | 'c' ->
          let e, pos = read_u64 s (pos + 1) in
          if Int64.compare e 0L < 0 || Int64.compare e (Int64.of_int max_int) > 0
          then raise (Bad "bad epoch");
          (Close_epoch (Int64.to_int e), pos)
      | _ -> raise (Bad "unknown tag")
    end
  with
  | entry -> Ok entry
  | exception Bad e -> Error ("Oplog.decode: " ^ e)

let decode_all s =
  let rec go pos acc =
    if pos >= String.length s then Ok (List.rev acc)
    else
      match decode s ~pos with
      | Ok (op, pos) -> go pos (op :: acc)
      | Error _ as e -> e
  in
  go 0 []

type response = { entry_index : int; installed : Value.ptr }

let apply_one v ~tid = function
  | Add_m { key; value; parent } -> Verifier.add_m v ~tid ~key ~value ~parent
  | Evict_m { key; parent } ->
      Result.map Option.some (Verifier.evict_m v ~tid ~key ~parent)
  | Add_b { key; value; timestamp } ->
      Result.map (Fun.const None) (Verifier.add_b v ~tid ~key ~value ~timestamp)
  | Evict_b { key; timestamp } ->
      Result.map (Fun.const None) (Verifier.evict_b v ~tid ~key ~timestamp)
  | Evict_bm { key; timestamp; parent } ->
      Result.map (Fun.const None)
        (Verifier.evict_bm v ~tid ~key ~timestamp ~parent)
  | Vget { key; value } ->
      Result.map (Fun.const None) (Verifier.vget v ~tid ~key value)
  | Vget_absent { key; parent } ->
      Result.map (Fun.const None) (Verifier.vget_absent v ~tid ~key ~parent)
  | Vput { key; value } ->
      Result.map (Fun.const None) (Verifier.vput v ~tid ~key value)
  | Close_epoch epoch ->
      Result.map (Fun.const None) (Verifier.close_epoch v ~tid ~epoch)

let apply_log v ~tid log =
  let rec go pos index acc =
    if pos >= String.length log then Ok (List.rev acc)
    else
      match decode log ~pos with
      | Error _ as e -> e
      | Ok (op, pos) -> (
          match apply_one v ~tid op with
          | Error _ as e -> e
          | Ok None -> go pos (index + 1) acc
          | Ok (Some installed) ->
              go pos (index + 1) ({ entry_index = index; installed } :: acc))
  in
  go 0 0 []

let encode_responses responses =
  let buf = Buffer.create 64 in
  List.iter
    (fun { entry_index; installed = { Value.key; hash; in_blum } } ->
      add_u32 buf entry_index;
      add_key buf key;
      Buffer.add_string buf hash;
      Buffer.add_char buf (if in_blum then '\x01' else '\x00'))
    responses;
  Buffer.contents buf

let decode_responses s =
  let rec go pos acc =
    if pos >= String.length s then Ok (List.rev acc)
    else
      match
        begin
          need s pos 4;
          let entry_index = Int32.to_int (String.get_int32_le s pos) in
          if entry_index < 0 then raise (Bad "bad index");
          let key, pos = read_key s (pos + 4) in
          need s pos 33;
          let hash = String.sub s pos 32 in
          let in_blum =
            match s.[pos + 32] with
            | '\x00' -> false
            | '\x01' -> true
            | _ -> raise (Bad "bad flag")
          in
          ({ entry_index; installed = { Value.key; hash; in_blum } }, pos + 33)
        end
      with
      | r, pos -> go pos (r :: acc)
      | exception Bad e -> Error ("Oplog.decode_responses: " ^ e)
  in
  go 0 []
