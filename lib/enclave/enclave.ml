exception Out_of_enclave_memory

type t = {
  model : Cost_model.t;
  memory_budget : int;
  mutable in_use : int;
  mutable charged : int64;
  mutable transitions : int;
  mutable depth : int; (* nesting level: only the outermost call charges *)
}

let create ?(memory_budget_bytes = 192 * 1024 * 1024) model =
  {
    model;
    memory_budget = memory_budget_bytes;
    in_use = 0;
    charged = 0L;
    transitions = 0;
    depth = 0;
  }

let call t f =
  if t.depth > 0 then f ()
  else begin
    t.depth <- 1;
    t.transitions <- t.transitions + 1;
    t.charged <- Int64.add t.charged (Int64.of_int t.model.transition_ns);
    let t0 = if t.model.memory_access_factor > 1.0 then Unix.gettimeofday () else 0.0 in
    Fun.protect
      ~finally:(fun () ->
        t.depth <- 0;
        if t.model.memory_access_factor > 1.0 then begin
          let inside = Unix.gettimeofday () -. t0 in
          t.charged <-
            Int64.add t.charged
              (Int64.of_float
                 (inside *. (t.model.memory_access_factor -. 1.0) *. 1e9))
        end)
      f
  end

let charge_transitions t n =
  t.transitions <- t.transitions + n;
  t.charged <-
    Int64.add t.charged (Int64.of_int (n * t.model.transition_ns))

let charged_ns t = t.charged
let transitions t = t.transitions

let reset_accounting t =
  t.charged <- 0L;
  t.transitions <- 0

let cost_model t = t.model

let alloc_trusted t n =
  if t.in_use + n > t.memory_budget then raise Out_of_enclave_memory;
  t.in_use <- t.in_use + n

let free_trusted t n = t.in_use <- max 0 (t.in_use - n)
let trusted_bytes_in_use t = t.in_use

module Sealed_slot = struct
  open Fastver_crypto

  type slot = {
    hw_key : string; (* never leaves the "hardware" *)
    mutable counter : int64; (* trusted monotonic counter *)
    mutable blob : string; (* untrusted persistent storage *)
  }

  let create () =
    {
      hw_key = String.init 32 (fun _ -> Char.chr (Random.int 256));
      counter = 0L;
      blob = "";
    }

  let create_with ~hw_key ~counter = { hw_key; counter; blob = "" }
  let hw_key slot = slot.hw_key
  let counter slot = slot.counter

  (* Blob layout: counter (8 bytes LE) + payload + HMAC(counter + payload). *)
  let store slot payload =
    slot.counter <- Int64.succ slot.counter;
    let body = Bytes_util.string_of_u64_le slot.counter ^ payload in
    slot.blob <- body ^ Hmac.mac ~key:slot.hw_key body

  let load slot =
    let blob = slot.blob in
    let n = String.length blob in
    if n < 8 + 32 then Error "sealed blob missing or truncated"
    else
      let body = String.sub blob 0 (n - 32) in
      let tag = String.sub blob (n - 32) 32 in
      if not (Hmac.verify ~key:slot.hw_key body ~tag) then
        Error "sealed blob MAC mismatch (tampered)"
      else
        let counter = Bytes_util.get_u64_le body 0 in
        if counter <> slot.counter then
          Error "sealed blob counter mismatch (rollback)"
        else Ok (String.sub body 8 (String.length body - 8))

  let external_blob slot = slot.blob
  let inject_blob slot blob = slot.blob <- blob
end
