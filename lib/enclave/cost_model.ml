type t = {
  transition_ns : int;
  memory_access_factor : float;
  label : string;
}

let zero = { transition_ns = 0; memory_access_factor = 1.0; label = "zero" }

let simulated =
  { transition_ns = 8_000; memory_access_factor = 1.0; label = "simulated" }

let sgx = { transition_ns = 8_000; memory_access_factor = 1.11; label = "sgx" }

let pp ppf t =
  Format.fprintf ppf "%s(transition=%dns, mem=%.2fx)" t.label t.transition_ns
    t.memory_access_factor
