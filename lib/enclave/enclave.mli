(** A simulated enclave: a protected execution context with a call gate.

    The enclave owns trusted state (the verifier threads live inside one) and
    meters every host-to-enclave transition against a {!Cost_model}. It also
    tracks a trusted-memory budget so experiments can enforce the paper's P1
    goal (graceful degradation with limited enclave memory). *)

type t

val create : ?memory_budget_bytes:int -> Cost_model.t -> t
(** [create model] builds an enclave. [memory_budget_bytes] defaults to
    192 MiB (the usable EPC of a Coffee Lake SGX part, §3). *)

val call : t -> (unit -> 'a) -> 'a
(** [call e f] runs [f] "inside" the enclave: charges one transition and
    scales the inside-time by the memory access factor. Nested calls charge
    only once. *)

val charge_transitions : t -> int -> unit
(** Account [n] additional host->enclave round trips without running code —
    used when a batch of verifier work is applied directly but would have
    crossed the call gate [n] times in a real deployment. *)

val charged_ns : t -> int64
(** Total nanoseconds of modelled enclave overhead accumulated so far
    (transitions + memory-factor surcharge). *)

val transitions : t -> int
(** Number of host->enclave round trips so far. *)

val reset_accounting : t -> unit

val cost_model : t -> Cost_model.t

(** {2 Trusted memory budget} *)

val alloc_trusted : t -> int -> unit
(** Record an allocation of trusted memory.
    @raise Out_of_enclave_memory if the budget would be exceeded. *)

val free_trusted : t -> int -> unit
val trusted_bytes_in_use : t -> int

exception Out_of_enclave_memory

(** {2 Rollback-protected persistent state}

    Models the TPM/Memoir-style monotonic storage the paper assumes for a
    single hash value (§2.2): a slot holding [counter, payload] sealed under
    a hardware key. Tampering with the sealed blob is detected; replaying an
    old blob is detected through the counter. *)

module Sealed_slot : sig
  type slot

  val create : unit -> slot
  (** A fresh slot with its own (hidden) hardware key. *)

  val create_with : hw_key:string -> counter:int64 -> slot
  (** Rebuild a slot from persisted hardware state ([hw_key] and monotonic
      [counter] survive restarts on a TPM; this simulates that NVRAM). *)

  val hw_key : slot -> string
  val counter : slot -> int64

  val store : slot -> string -> unit
  (** Persist a payload; bumps the internal monotonic counter. *)

  val load : slot -> (string, string) result
  (** Retrieve the latest payload, or [Error reason] if the backing blob was
      tampered with or rolled back. *)

  val external_blob : slot -> string
  (** The sealed blob as the untrusted host sees it (for tamper tests). *)

  val inject_blob : slot -> string -> unit
  (** Overwrite the backing blob, as an adversary with host control would. *)
end
