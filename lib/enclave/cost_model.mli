(** Enclave cost models.

    The paper evaluates FastVer both on real SGX hardware and with "simulated
    enclaves" where verifier calls are regular function calls with added
    delays modelling enclave switching costs (§8, following Haven [5]).
    This module captures those costs so benchmarks can account for them.

    Costs are expressed in nanoseconds and charged to an accounting counter
    rather than busy-waited, keeping benchmark runs deterministic; harnesses
    add the charged time to measured wall time. *)

type t = {
  transition_ns : int;
      (** Cost of one host->enclave->host round trip (ecall + ocall). *)
  memory_access_factor : float;
      (** Multiplier on time spent executing inside the enclave, modelling
          EPC paging/MEE overheads (~1.1 observed for SGX in the paper). *)
  label : string;
}

val zero : t
(** No enclave overhead: verifier calls are plain function calls. *)

val simulated : t
(** The paper's simulated-enclave setting: ~8000 ns per transition (typical
    SGX ecall round-trip on Coffee Lake-era parts), no memory factor. *)

val sgx : t
(** A "true SGX" model: same transition cost plus the ~10% execution
    slowdown the paper measured for real enclaves (§8.2). *)

val pp : Format.formatter -> t -> unit
