(** Record values: data payloads and merkle-node payloads (§4.2, Fig. 4).

    A merkle value is a pair of optional pointers. Pointer slot [false] (left)
    covers descendants through bit 0, slot [true] (right) through bit 1. Each
    pointer names a descendant key, the hash of that descendant's value, and
    an [in_blum] flag recording that the descendant was handed over to
    deferred (Blum) protection — the hybrid scheme's cross-mechanism guard
    (§6, "EvictBM"). *)

type ptr = { key : Key.t; hash : string; in_blum : bool }

type node = { left : ptr option; right : ptr option }

type t =
  | Data of string option
      (** A data record; [None] is the null value of a non-existent key. *)
  | Node of node  (** A merkle record. *)

val empty_node : t
(** [Node] with both slots empty. *)

val init : Key.t -> t
(** The initial value of a key in the all-null sparse tree: [Data None] for
    data keys, {!empty_node} for merkle keys. *)

val is_init : Key.t -> t -> bool

val compatible : Key.t -> t -> bool
(** Data keys carry [Data] values, merkle keys carry [Node] values. *)

val slot : node -> bool -> ptr option
val set_slot : node -> bool -> ptr option -> node

val encode : t -> string
(** Injective binary encoding, input to {!Record_enc} hashing. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; used when reloading untrusted persisted records
    (any tampering surfaces later as a verifier check failure). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
