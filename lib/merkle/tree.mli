(** Host-side (untrusted) storage of merkle records, organised as the record
    encoding of a Patricia sparse Merkle tree (§4.2).

    The tree stores only merkle records (internal nodes, including the root).
    Data records live in the host key-value store; pointers reference them by
    key. Each record carries a caller-supplied mutable ['aux] field — the
    64-bit bookkeeping field of the paper (§7) generalised to any type.

    Everything here is prover-side machinery: it maintains structure, not
    trust. Integrity comes from the verifier replaying the corresponding
    operations. *)

type 'aux t

type 'aux entry = { mutable value : Value.t; mutable aux : 'aux }

val create : root_aux:'aux -> 'aux t
(** A tree over the all-null database: the root record with two empty slots. *)

val find : 'aux t -> Key.t -> 'aux entry option
val get_exn : 'aux t -> Key.t -> 'aux entry
val mem : 'aux t -> Key.t -> bool

val set : 'aux t -> Key.t -> Value.t -> aux:'aux -> unit
(** Insert or overwrite a merkle record.
    @raise Invalid_argument if [k] is a data key. *)

val remove : 'aux t -> Key.t -> unit
val length : 'aux t -> int
val iter : 'aux t -> (Key.t -> 'aux entry -> unit) -> unit

(** {2 Navigation} *)

type outcome =
  | Exists  (** the pointing parent's slot names the looked-up key *)
  | Empty_slot  (** the slot in the key's direction is empty *)
  | Split of Key.t
      (** the slot names an unrelated key; a new internal node at the LCA
          must be introduced. Carries the current pointee. *)

type descent = {
  path : Key.t list;  (** merkle nodes from the root down to the pointing
                          parent (inclusive), in root-first order *)
  outcome : outcome;
}

val descend : 'aux t -> Key.t -> descent
(** Walk the trie from the root towards [k] (which must not be the root).
    The last element of [path] is the {e pointing parent} of [k] — the node
    whose slot either names [k], is empty where [k] would attach, or names a
    key that [k] splits. *)

val pointing_parent : 'aux t -> Key.t -> Key.t
(** Last element of [(descend t k).path]. *)

(** {2 Bulk construction} *)

val bulk_build :
  'aux t ->
  ?algo:Record_enc.algo ->
  aux:(Key.t -> Value.t -> 'aux) ->
  (Key.t * Value.t) array ->
  unit
(** [bulk_build t ~aux records] (re)builds the complete Patricia tree over the
    given data records (which must have distinct data keys, sorted per
    {!Key.compare}; they are sorted in place if not). All internal-node hashes
    are computed bottom-up, so the resulting tree is fully propagated (no lazy
    staleness). The data records themselves are not stored here. *)

val root_hash : 'aux t -> ?algo:Record_enc.algo -> unit -> string
(** Hash of the current root record value. Meaningful after {!bulk_build} or
    full propagation. *)

(** {2 Policy helpers} *)

val frontier : 'aux t -> levels:int -> Key.t list
(** Merkle nodes at Patricia level exactly [levels] (root = level 0), the
    paper's depth-[d] cut kept under deferred protection (§8.1). Nodes whose
    whole subtree sits above the cut are not included. *)

val check_structure : 'aux t -> (unit, string) result
(** Structural invariants: every slot points to a proper descendant on the
    correct side; every pointed merkle key exists; nodes are reachable from
    the root. Does not check hashes (lazy updates legitimately leave them
    stale). *)
