(* Doubly-linked intrusive list plus a key index. The list head is the
   most-recently-used end. *)

type entry = {
  key : Key.t;
  mutable children : int;
  mutable prev : entry option; (* towards MRU *)
  mutable next : entry option; (* towards LRU *)
}

type t = {
  index : entry Key.Tbl.t;
  mutable head : entry option; (* MRU *)
  mutable tail : entry option; (* LRU *)
}

let create () = { index = Key.Tbl.create 64; head = None; tail = None }
let length t = Key.Tbl.length t.index
let mem t k = Key.Tbl.mem t.index k
let find t k = Key.Tbl.find_opt t.index k

let unlink t e =
  (match e.prev with
  | Some p -> p.next <- e.next
  | None -> t.head <- e.next);
  (match e.next with
  | Some n -> n.prev <- e.prev
  | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let add t k =
  if Key.Tbl.mem t.index k then invalid_arg "Key_lru.add: present";
  let e = { key = k; children = 0; prev = None; next = None } in
  Key.Tbl.replace t.index k e;
  push_front t e;
  e

let touch t e =
  unlink t e;
  push_front t e

let remove t e =
  unlink t e;
  Key.Tbl.remove t.index e.key

let key e = e.key
let children e = e.children
let incr_children e = e.children <- e.children + 1

let decr_children e =
  assert (e.children > 0);
  e.children <- e.children - 1

(* Second-chance scan: chain-interior entries (children > 0) accumulate at
   the LRU tail because their children are always touched after them; naive
   tail walks would then cost O(cache) per eviction. Skipped entries are
   promoted to the MRU end, so each is inspected at most once per round. *)
let victim ?exclude t =
  let excluded e =
    match exclude with Some k -> Key.equal e.key k | None -> false
  in
  let budget = ref (Key.Tbl.length t.index) in
  let rec go () =
    match t.tail with
    | None -> None
    | Some e ->
        if e.children = 0 && not (excluded e) then Some e
        else if !budget <= 0 then None
        else begin
          decr budget;
          unlink t e;
          push_front t e;
          go ()
        end
  in
  go ()

let iter_lru_first t f =
  let rec go = function
    | None -> ()
    | Some e ->
        let prev = e.prev in
        f e;
        go prev
  in
  go t.tail
