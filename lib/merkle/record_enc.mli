(** Cryptographic encodings of records.

    Two hash roles, mirroring the paper's implementation (§7):
    - {b Merkle hashing} of a record value (Blake3 in the paper; BLAKE2b here,
      BLAKE2s/SHA-256 selectable for ablation);
    - {b Blum elements}: the byte string representing [(record, timestamp)]
      that is folded into the deferred-verification multiset hashes with
      AES-CMAC. Elements embed the raw value bytes, not a value hash, so the
      deferred path never pays the Merkle hash cost. *)

type algo = Blake2b | Blake2s | Sha256

val algo_of_string : string -> (algo, string) result
val pp_algo : Format.formatter -> algo -> unit

val hash_value : ?algo:algo -> Value.t -> string
(** 32-byte Merkle hash of a value. Defaults to BLAKE2s. *)

val hash_count : unit -> int
(** Number of Merkle hash computations performed process-wide; benchmarks use
    this to report verification-cost breakdowns (Fig. 14b). *)

val reset_hash_count : unit -> unit

val blum_element : Key.t -> Value.t -> int64 -> string
(** [blum_element k v t] is the injective encoding of [(k, v, t)]. *)
