(** Keys of the sparse Merkle tree (§4.2 of the paper).

    A key is a bit string of length [0..256]. Data keys have length exactly
    256; merkle keys are strictly shorter. The set of all keys forms a binary
    tree: the empty string is the root and key [k] is the parent of [k·0] and
    [k·1]. A key [k'] is an ancestor of [k] iff [k'] is a prefix of [k].

    Keys are packed into four [int64] words (bit 0 = most significant bit of
    word 0) plus a depth; bits at positions [>= depth] are kept zero so that
    structural equality coincides with key equality. *)

type t

val max_depth : int
(** 256. *)

val root : t
(** The empty bit string — the Merkle root key. *)

val depth : t -> int

val is_data_key : t -> bool
(** True iff [depth k = 256]. *)

val of_bytes32 : string -> t
(** A data key from a 32-byte string. @raise Invalid_argument otherwise. *)

val to_bytes32 : t -> string
(** The 32 path bytes (positions beyond [depth] are zero). *)

val of_int64 : int64 -> t
(** A data key from an 8-byte application key, placed in the low 64 bits of
    the 256-bit path (the paper's zero-padding of 8-byte YCSB keys). *)

val to_int64 : t -> int64
(** Inverse of {!of_int64} for keys produced by it. *)

val bit : t -> int -> bool
(** [bit k i] is bit [i] of the path, [0 <= i < 256]. *)

val child : t -> bool -> t
(** [child k d] extends [k] by one bit ([false] = left/0, [true] = right/1).
    @raise Invalid_argument if [k] is a data key. *)

val prefix : t -> int -> t
(** [prefix k n] truncates [k] to depth [n]. @raise Invalid_argument if
    [n > depth k]. *)

val is_proper_ancestor : t -> t -> bool
(** [is_proper_ancestor a k]: [a] is a strict prefix of [k]. *)

val dir : t -> ancestor:t -> bool
(** Which subtree of [ancestor] contains [k]: bit [depth ancestor] of [k].
    Precondition: [is_proper_ancestor ancestor k]. *)

val lca : t -> t -> t
(** Least common ancestor (longest common prefix). *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order: lexicographic on the bit string, shorter prefixes first.
    Sorting data keys with this order yields the paper's "sorted Merkle
    updates" locality. *)

val hash : t -> int
(** For use in [Hashtbl]-style containers. *)

val encode : t -> string
(** Canonical 34-byte encoding (2-byte depth + 32 path bytes), injective;
    used inside hash and MAC computations. *)

val pp : Format.formatter -> t -> unit
(** Renders as [depth:hex-prefix], e.g. [5:0b...]. *)

val to_bit_string : t -> string
(** The key as a literal string of ['0']/['1'] characters (debugging). *)

val of_bit_string : string -> t
(** Inverse of {!to_bit_string}. @raise Invalid_argument on bad input. *)

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
