open Fastver_crypto

type algo = Blake2b | Blake2s | Sha256

let algo_of_string = function
  | "blake2b" -> Ok Blake2b
  | "blake2s" -> Ok Blake2s
  | "sha256" -> Ok Sha256
  | s -> Error (Printf.sprintf "unknown hash algorithm %S" s)

let pp_algo ppf = function
  | Blake2b -> Format.pp_print_string ppf "blake2b"
  | Blake2s -> Format.pp_print_string ppf "blake2s"
  | Sha256 -> Format.pp_print_string ppf "sha256"

let count = ref 0

let hash_count () = !count
let reset_hash_count () = count := 0

let hash_value ?(algo = Blake2s) v =
  incr count;
  let enc = Value.encode v in
  match algo with
  | Blake2b -> Blake2b.digest ~digest_size:32 enc
  | Blake2s -> Blake2s.digest ~digest_size:32 enc
  | Sha256 -> Sha256.digest enc

let blum_element k v t =
  (* Fixed-width key and timestamp bracket the variable-width value, so the
     encoding is injective. *)
  Key.encode k ^ Value.encode v ^ Bytes_util.string_of_u64_le t
