let max_depth = 256

type t = { w0 : int64; w1 : int64; w2 : int64; w3 : int64; depth : int }

let root = { w0 = 0L; w1 = 0L; w2 = 0L; w3 = 0L; depth = 0 }
let depth k = k.depth
let is_data_key k = k.depth = max_depth

let word k j =
  match j with
  | 0 -> k.w0
  | 1 -> k.w1
  | 2 -> k.w2
  | 3 -> k.w3
  | _ -> invalid_arg "Key.word"

let with_word k j v =
  match j with
  | 0 -> { k with w0 = v }
  | 1 -> { k with w1 = v }
  | 2 -> { k with w2 = v }
  | 3 -> { k with w3 = v }
  | _ -> invalid_arg "Key.with_word"

(* Bits [r..63] of a word cleared; i.e. keep the top [r] bits. *)
let keep_top_bits w r =
  if r <= 0 then 0L
  else if r >= 64 then w
  else Int64.logand w (Int64.shift_left (-1L) (64 - r))

let of_bytes32 s =
  if String.length s <> 32 then invalid_arg "Key.of_bytes32";
  {
    w0 = String.get_int64_be s 0;
    w1 = String.get_int64_be s 8;
    w2 = String.get_int64_be s 16;
    w3 = String.get_int64_be s 24;
    depth = max_depth;
  }

let to_bytes32 k =
  let b = Bytes.create 32 in
  Bytes.set_int64_be b 0 k.w0;
  Bytes.set_int64_be b 8 k.w1;
  Bytes.set_int64_be b 16 k.w2;
  Bytes.set_int64_be b 24 k.w3;
  Bytes.unsafe_to_string b

let of_int64 v = { w0 = 0L; w1 = 0L; w2 = 0L; w3 = v; depth = max_depth }
let to_int64 k = k.w3

let bit k i =
  if i < 0 || i >= max_depth then invalid_arg "Key.bit";
  let w = word k (i / 64) in
  Int64.logand (Int64.shift_right_logical w (63 - (i mod 64))) 1L = 1L

let child k d =
  if k.depth >= max_depth then invalid_arg "Key.child: data key";
  let i = k.depth in
  let k' = { k with depth = i + 1 } in
  if d then
    let j = i / 64 in
    with_word k' j
      (Int64.logor (word k j) (Int64.shift_left 1L (63 - (i mod 64))))
  else k'

let prefix k n =
  if n < 0 || n > k.depth then invalid_arg "Key.prefix";
  {
    w0 = keep_top_bits k.w0 n;
    w1 = keep_top_bits k.w1 (n - 64);
    w2 = keep_top_bits k.w2 (n - 128);
    w3 = keep_top_bits k.w3 (n - 192);
    depth = n;
  }

(* Number of leading zeros of a 64-bit word (64 for zero). *)
let clz64 w =
  if w = 0L then 64
  else
    let n = ref 0 and w = ref w in
    if Int64.shift_right_logical !w 32 = 0L then begin
      n := !n + 32;
      w := Int64.shift_left !w 32
    end;
    if Int64.shift_right_logical !w 48 = 0L then begin
      n := !n + 16;
      w := Int64.shift_left !w 16
    end;
    if Int64.shift_right_logical !w 56 = 0L then begin
      n := !n + 8;
      w := Int64.shift_left !w 8
    end;
    if Int64.shift_right_logical !w 60 = 0L then begin
      n := !n + 4;
      w := Int64.shift_left !w 4
    end;
    if Int64.shift_right_logical !w 62 = 0L then begin
      n := !n + 2;
      w := Int64.shift_left !w 2
    end;
    if Int64.shift_right_logical !w 63 = 0L then n := !n + 1;
    !n

(* Position of the first bit where [a] and [b] differ, or 256 if their
   256-bit paths agree everywhere. *)
let first_diff a b =
  let rec go j =
    if j = 4 then max_depth
    else
      let x = Int64.logxor (word a j) (word b j) in
      if x = 0L then go (j + 1) else (64 * j) + clz64 x
  in
  go 0

let lca a b =
  let d = min (min a.depth b.depth) (first_diff a b) in
  prefix a d

let equal a b =
  a.depth = b.depth && a.w0 = b.w0 && a.w1 = b.w1 && a.w2 = b.w2
  && a.w3 = b.w3

let is_proper_ancestor a k =
  a.depth < k.depth && equal a (prefix k a.depth)

let dir k ~ancestor =
  assert (is_proper_ancestor ancestor k);
  bit k ancestor.depth

let compare a b =
  (* Trailing bits are zero, so unsigned word comparison is lexicographic on
     the bit strings; prefixes order before their extensions via depth. *)
  let rec words j =
    if j = 4 then Stdlib.compare a.depth b.depth
    else
      let c = Int64.unsigned_compare (word a j) (word b j) in
      if c <> 0 then c else words (j + 1)
  in
  words 0

let hash k =
  let h = Int64.to_int (Int64.mul k.w3 0x9e3779b97f4a7c15L) in
  let h = h lxor Int64.to_int (Int64.mul k.w2 0xc2b2ae3d27d4eb4fL) in
  let h = h lxor Int64.to_int (Int64.mul k.w1 0x165667b19e3779f9L) in
  let h = h lxor Int64.to_int k.w0 in
  (h lxor k.depth) land max_int

let encode k =
  let b = Bytes.create 34 in
  Bytes.set_uint16_le b 0 k.depth;
  Bytes.set_int64_be b 2 k.w0;
  Bytes.set_int64_be b 10 k.w1;
  Bytes.set_int64_be b 18 k.w2;
  Bytes.set_int64_be b 26 k.w3;
  Bytes.unsafe_to_string b

let to_bit_string k = String.init k.depth (fun i -> if bit k i then '1' else '0')

let of_bit_string s =
  let n = String.length s in
  if n > max_depth then invalid_arg "Key.of_bit_string: too long";
  let k = ref { root with depth = 0 } in
  String.iter
    (fun c ->
      match c with
      | '0' -> k := child !k false
      | '1' -> k := child !k true
      | _ -> invalid_arg "Key.of_bit_string: bad char")
    s;
  !k

let pp ppf k =
  if k.depth = 0 then Format.fprintf ppf "<root>"
  else if k.depth <= 32 then Format.fprintf ppf "%d:%s" k.depth (to_bit_string k)
  else
    Format.fprintf ppf "%d:%s…" k.depth
      (Fastver_crypto.Bytes_util.to_hex (String.sub (to_bytes32 k) 0 8))

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hashed)
module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)
