(** A small LRU index over merkle keys, used by workers to pick verifier-cache
    eviction victims. Entries carry a count of cached children: a record may
    only be evicted to Merkle protection while no cached record was added
    through it, keeping eviction chains bottom-up. *)

type t
type entry

val create : unit -> t
val length : t -> int
val mem : t -> Key.t -> bool
val find : t -> Key.t -> entry option

val add : t -> Key.t -> entry
(** Insert as most-recently-used. @raise Invalid_argument if present. *)

val touch : t -> entry -> unit
(** Move to most-recently-used. *)

val remove : t -> entry -> unit

val key : entry -> Key.t
val children : entry -> int
val incr_children : entry -> unit
val decr_children : entry -> unit

val victim : ?exclude:Key.t -> t -> entry option
(** The least-recently-used entry with no cached children, skipping
    [exclude] (the chain tip currently being extended). *)

val iter_lru_first : t -> (entry -> unit) -> unit
(** Iterate from least- to most-recently-used; entries may not be removed
    during iteration. *)
