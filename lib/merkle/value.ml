type ptr = { key : Key.t; hash : string; in_blum : bool }
type node = { left : ptr option; right : ptr option }
type t = Data of string option | Node of node

let empty_node = Node { left = None; right = None }

let init k = if Key.is_data_key k then Data None else empty_node

let is_init k v =
  match (Key.is_data_key k, v) with
  | true, Data None -> true
  | false, Node { left = None; right = None } -> true
  | _, (Data _ | Node _) -> false

let compatible k v =
  match v with Data _ -> Key.is_data_key k | Node _ -> not (Key.is_data_key k)

let slot n d = if d then n.right else n.left

let set_slot n d p = if d then { n with right = p } else { n with left = p }

let encode_ptr buf p =
  match p with
  | None -> Buffer.add_char buf '\x00'
  | Some { key; hash; in_blum } ->
      Buffer.add_char buf '\x01';
      Buffer.add_string buf (Key.encode key);
      Buffer.add_string buf hash;
      Buffer.add_char buf (if in_blum then '\x01' else '\x00')

let encode v =
  let buf = Buffer.create 64 in
  (match v with
  | Data None -> Buffer.add_char buf '\x00'
  | Data (Some s) ->
      Buffer.add_char buf '\x01';
      Buffer.add_string buf s
  | Node { left; right } ->
      Buffer.add_char buf '\x02';
      encode_ptr buf left;
      encode_ptr buf right);
  Buffer.contents buf

let decode s =
  let ( let* ) = Result.bind in
  let fail msg = Error ("Value.decode: " ^ msg) in
  let n = String.length s in
  if n = 0 then fail "empty"
  else
    match s.[0] with
    | '\x00' -> if n = 1 then Ok (Data None) else fail "trailing bytes"
    | '\x01' -> Ok (Data (Some (String.sub s 1 (n - 1))))
    | '\x02' ->
        let decode_ptr off =
          if off >= n then fail "truncated pointer"
          else
            match s.[off] with
            | '\x00' -> Ok (None, off + 1)
            | '\x01' ->
                if off + 1 + 34 + 32 + 1 > n then fail "truncated pointer"
                else
                  let kenc = String.sub s (off + 1) 34 in
                  let depth = String.get_uint16_le kenc 0 in
                  if depth > Key.max_depth then fail "bad key depth"
                  else
                    let path = Key.of_bytes32 (String.sub kenc 2 32) in
                    let key =
                      if depth = Key.max_depth then path else Key.prefix path depth
                    in
                    (* Reject non-canonical keys (set bits beyond depth). *)
                    if not (String.equal (Key.encode key) kenc) then
                      fail "non-canonical key"
                    else
                      let hash = String.sub s (off + 35) 32 in
                      let in_blum =
                        match s.[off + 67] with
                        | '\x00' -> false
                        | '\x01' -> true
                        | _ -> raise Exit
                      in
                      Ok (Some { key; hash; in_blum }, off + 68)
            | _ -> fail "bad pointer tag"
        in
        (try
           let* left, off = decode_ptr 1 in
           let* right, off = decode_ptr off in
           if off <> n then fail "trailing bytes"
           else Ok (Node { left; right })
         with Exit -> fail "bad in_blum flag")
    | _ -> fail "bad value tag"

let ptr_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      Key.equal a.key b.key && String.equal a.hash b.hash
      && Bool.equal a.in_blum b.in_blum
  | None, Some _ | Some _, None -> false

let equal a b =
  match (a, b) with
  | Data a, Data b -> Option.equal String.equal a b
  | Node a, Node b -> ptr_equal a.left b.left && ptr_equal a.right b.right
  | Data _, Node _ | Node _, Data _ -> false

let pp_ptr ppf p =
  match p with
  | None -> Format.fprintf ppf "·"
  | Some { key; hash; in_blum } ->
      Format.fprintf ppf "(%a,%s%s)" Key.pp key
        (Fastver_crypto.Bytes_util.to_hex (String.sub hash 0 4))
        (if in_blum then ",blum" else "")

let pp ppf v =
  match v with
  | Data None -> Format.fprintf ppf "null"
  | Data (Some s) ->
      if String.length s <= 16 && String.for_all (fun c -> c >= ' ' && c < '\x7f') s
      then Format.fprintf ppf "%S" s
      else Format.fprintf ppf "data[%d]" (String.length s)
  | Node { left; right } ->
      Format.fprintf ppf "node[%a %a]" pp_ptr left pp_ptr right
