type 'aux entry = { mutable value : Value.t; mutable aux : 'aux }

type 'aux t = { records : 'aux entry Key.Tbl.t }

let create ~root_aux =
  let records = Key.Tbl.create 1024 in
  Key.Tbl.replace records Key.root { value = Value.empty_node; aux = root_aux };
  { records }

let find t k = Key.Tbl.find_opt t.records k

let get_exn t k =
  match find t k with
  | Some e -> e
  | None ->
      Fmt.invalid_arg "Tree.get_exn: no merkle record for key %a" Key.pp k

let mem t k = Key.Tbl.mem t.records k

let set t k value ~aux =
  if Key.is_data_key k then invalid_arg "Tree.set: data key";
  match Key.Tbl.find_opt t.records k with
  | Some e ->
      e.value <- value;
      e.aux <- aux
  | None -> Key.Tbl.replace t.records k { value; aux }

let remove t k = Key.Tbl.remove t.records k
let length t = Key.Tbl.length t.records
let iter t f = Key.Tbl.iter f t.records

type outcome = Exists | Empty_slot | Split of Key.t

type descent = { path : Key.t list; outcome : outcome }

let node_value_exn t k =
  match (get_exn t k).value with
  | Value.Node n -> n
  | Value.Data _ ->
      Fmt.invalid_arg "Tree.descend: data value under merkle key %a" Key.pp k

let descend t k =
  if Key.equal k Key.root then invalid_arg "Tree.descend: root";
  let rec go cur acc =
    let n = node_value_exn t cur in
    let d = Key.dir k ~ancestor:cur in
    let acc = cur :: acc in
    match Value.slot n d with
    | None -> { path = List.rev acc; outcome = Empty_slot }
    | Some { key = k2; _ } ->
        if Key.equal k2 k then { path = List.rev acc; outcome = Exists }
        else if Key.is_proper_ancestor k2 k then go k2 acc
        else { path = List.rev acc; outcome = Split k2 }
  in
  go Key.root []

let pointing_parent t k =
  match List.rev (descend t k).path with
  | parent :: _ -> parent
  | [] -> assert false

let root_hash t ?algo () = Record_enc.hash_value ?algo (get_exn t Key.root).value

(* Bottom-up Patricia construction over a sorted slice of data records.
   Returns the pointer to install in the parent. *)
let bulk_build t ?algo ~aux records =
  Key.Tbl.reset t.records;
  Array.sort (fun (a, _) (b, _) -> Key.compare a b) records;
  Array.iteri
    (fun i (k, _) ->
      if not (Key.is_data_key k) then invalid_arg "Tree.bulk_build: merkle key";
      if i > 0 && Key.equal (fst records.(i - 1)) k then
        invalid_arg "Tree.bulk_build: duplicate key")
    records;
  let rec build lo hi =
    if hi - lo = 1 then
      let k, v = records.(lo) in
      { Value.key = k; hash = Record_enc.hash_value ?algo v; in_blum = false }
    else
      let k_lo, _ = records.(lo) and k_hi, _ = records.(hi - 1) in
      let node_key = Key.lca k_lo k_hi in
      let split_bit = Key.depth node_key in
      (* First index whose key goes right at [split_bit]. *)
      let rec bsearch lo' hi' =
        if lo' >= hi' then lo'
        else
          let mid = (lo' + hi') / 2 in
          if Key.bit (fst records.(mid)) split_bit then bsearch lo' mid
          else bsearch (mid + 1) hi'
      in
      let mid = bsearch lo hi in
      assert (mid > lo && mid < hi);
      let left = build lo mid and right = build mid hi in
      let value = Value.Node { left = Some left; right = Some right } in
      Key.Tbl.replace t.records node_key { value; aux = aux node_key value };
      { Value.key = node_key; hash = Record_enc.hash_value ?algo value;
        in_blum = false }
  in
  let root_value =
    if Array.length records = 0 then Value.empty_node
    else
      let p = build 0 (Array.length records) in
      if Key.equal p.key Key.root then (get_exn t Key.root).value
      else
        let d = Key.bit p.key 0 in
        Value.Node
          (Value.set_slot { left = None; right = None } d (Some p))
  in
  match Key.Tbl.find_opt t.records Key.root with
  | Some _ -> () (* build already produced the depth-0 node *)
  | None ->
      Key.Tbl.replace t.records Key.root
        { value = root_value; aux = aux Key.root root_value }

let frontier t ~levels =
  if levels < 0 then invalid_arg "Tree.frontier";
  let rec walk k level acc =
    if level = levels then k :: acc
    else
      match (get_exn t k).value with
      | Value.Data _ -> acc
      | Value.Node n ->
          let follow p acc =
            match p with
            | Some { Value.key; _ } when not (Key.is_data_key key) ->
                walk key (level + 1) acc
            | Some _ | None -> acc
          in
          follow n.left (follow n.right acc)
  in
  walk Key.root 0 []

let check_structure t =
  let reached = Key.Tbl.create (length t) in
  let exception Bad of string in
  let fail fmt = Fmt.kstr (fun s -> raise (Bad s)) fmt in
  let rec walk k =
    if Key.Tbl.mem reached k then fail "cycle or sharing at %a" Key.pp k;
    Key.Tbl.replace reached k ();
    match find t k with
    | None -> fail "dangling pointer to %a" Key.pp k
    | Some { value = Value.Data _; _ } -> fail "data value at %a" Key.pp k
    | Some { value = Value.Node n; _ } ->
        let side d p =
          match p with
          | None -> ()
          | Some { Value.key = k2; _ } ->
              if not (Key.is_proper_ancestor k k2) then
                fail "%a not ancestor of pointee %a" Key.pp k Key.pp k2;
              if Key.dir k2 ~ancestor:k <> d then
                fail "pointee %a on wrong side of %a" Key.pp k2 Key.pp k;
              if not (Key.is_data_key k2) then walk k2
        in
        side false n.left;
        side true n.right
  in
  match walk Key.root with
  | () ->
      if Key.Tbl.length reached <> length t then
        Error
          (Printf.sprintf "%d merkle records unreachable from root"
             (length t - Key.Tbl.length reached))
      else Ok ()
  | exception Bad msg -> Error msg
