(** On-disk record and footer codec for cold-tier segments.

    A segment is an append-only file of self-authenticating records followed,
    once sealed, by a fixed-size footer. Every record carries the key, the
    Blum aux word (evict timestamp + tier bit) and a keyed MAC, so a record
    read back from untrusted disk is authenticated exactly like a record
    evicted to untrusted memory — plus the MAC gives eager, per-read
    detection before the value ever reaches the verifier.

    Record layout ([record_overhead] + value bytes):
    {v
      key    34  Key.encode (2-byte depth LE + 32 path bytes)
      aux     8  int64 LE (sign bit = Blum tier, low 63 bits = timestamp)
      vlen    4  u32 LE, length of value
      value  vlen
      mac    32  HMAC-SHA256(mac_secret, domain-sep || key || aux || vlen || value)
    v}

    Footer layout ([footer_len] bytes, present only on sealed segments):
    {v
      magic      8  "FVCOLDS1"
      n_records  8  int64 LE
      data_len   8  int64 LE, record bytes preceding the footer
      summary   16  multiset hash over the record MACs of the segment
      mac       32  HMAC-SHA256(mac_secret, domain-sep || first 40 bytes)
    v}

    All decoders are total: hostile lengths, truncation or a flipped byte
    yield [Error _], never an exception or a silently short value. *)

val record_header_len : int
(** 46 — key + aux + vlen. *)

val record_overhead : int
(** 78 — header + MAC; a record occupies [record_overhead + value length]. *)

val record_len : value_len:int -> int

val footer_len : int
(** 72. *)

val footer_magic : string

val encode_record :
  mac_secret:string -> key:Key.t -> aux:int64 -> value:string -> string
(** The full on-disk record, MAC included. *)

val record_mac : string -> string
(** The trailing 32-byte MAC of an encoded record (for segment summaries).
    @raise Invalid_argument if shorter than [record_overhead]. *)

type record = { key_enc : string; aux : int64; value : string }

val decode_record :
  mac_secret:string -> string -> (record, string) result
(** Decode and authenticate one record occupying the whole input string.
    [Error] on bad framing, a length that disagrees with the input, or a MAC
    mismatch (any flipped byte in key, aux/timestamp, length or value). *)

type footer = { n_records : int64; data_len : int64; summary : string }

val encode_footer :
  mac_secret:string -> n_records:int64 -> data_len:int64 -> summary:string ->
  string
(** @raise Invalid_argument if [summary] is not 16 bytes. *)

val decode_footer : mac_secret:string -> string -> (footer, string) result
(** [Error] on wrong length, bad magic, negative fields or MAC mismatch. *)
