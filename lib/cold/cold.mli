(** Authenticated log-structured cold tier.

    A cold tier is a directory of fixed-size append-only segment files. Records
    demoted from the in-memory store are appended to the active segment; when
    it fills it is sealed with a {!Segment} footer (record count, data length,
    multiset summary of the record MACs) and a fresh active segment is opened.

    Integrity model: the disk is untrusted, exactly like the host memory the
    verifier already defends against. Every record carries its Blum aux word
    (evict timestamp) and a keyed MAC, so reading a record back from disk is
    authenticated twice over — eagerly by the MAC at read time, and lazily by
    the deferred-verification multisets when the record is re-admitted as an
    ordinary Blum add. Sealed-segment footers let scrubbing and GC validate a
    whole segment without consulting the verifier.

    Concurrency: appends, sealing, retirement and manifest encoding serialise
    on one writer lock; reads take only the target segment's lock (positional
    reads on a per-segment descriptor), so concurrent gets from different
    segments never contend — the wait is recorded in the
    [fastver_cold_read_wait_seconds] histogram as proof.

    Crash safety: the tier's durable state is committed by the checkpoint
    manifest (see {!manifest_encode}); recovery truncates the active segment
    back to the committed length and deletes stray segments, so a crash
    mid-append or mid-compaction always lands on a committed prefix. *)

type t

type config = {
  dir : string;
  mac_secret : string;  (** keys the record and footer MACs *)
  segment_bytes : int;  (** seal threshold for a segment's record area *)
}

val default_segment_bytes : int
(** 4 MiB. *)

type rref = { seg : int; off : int; len : int }
(** A cold record reference: segment id, byte offset of the record, and the
    {e value} length (the on-disk record occupies
    [Segment.record_len ~value_len:len] bytes). *)

val create : ?clear_stray:bool -> config -> (t, string) result
(** Open a fresh tier: creates [dir] if needed; [Error] if it already
    contains segment files (those need {!recover} with their manifest).
    [clear_stray] instead deletes such leftovers — correct when starting
    fresh with no checkpoint, since segments not named by any manifest were
    never committed. *)

val recover : config -> manifest:string -> (t, string) result
(** Reopen a tier from a checkpoint manifest (the exact string produced by
    {!manifest_encode}). Sealed segments are checked against their footers
    (size, record count, summary, footer MAC — a flipped footer byte is an
    [Error]); the active segment is truncated back to the committed length;
    segment files the manifest does not know are deleted. Total. *)

val manifest_encode : t -> string
(** Fsync the active segment and render the tier's durable state (segment
    list, lengths, record counts, summaries) for inclusion in a checkpoint
    generation. Everything appended after this call is uncommitted and will
    be truncated away by {!recover}. *)

val flush : t -> unit
(** Fsync the active segment. *)

val close : t -> unit

val append :
  t -> key:Key.t -> aux:int64 -> value:string -> (rref, string) result
(** Append one encoded record (sealing and rotating the active segment as
    needed) and return its reference. [value] is the store-codec encoding of
    the record's value; [aux] is the slot's aux word, Blum tier bit and evict
    timestamp included. *)

val get :
  t -> key:Key.t -> rref -> (string * int64, [ `Stale | `Fail of string ]) result
(** Authenticated positional read: [Ok (value, aux)] after the record's MAC
    verifies and its embedded key matches [key]. [`Stale] means the segment
    was compacted away after the caller fetched the reference — re-read the
    index and retry. [`Fail _] is an integrity or I/O failure: a flipped byte
    in the value, the aux/timestamp or the length field surfaces here as a
    MAC mismatch. *)

val validate_ref : t -> rref -> (unit, string) result
(** Bounds-check a reference against the live segment table (recovery-time
    validation of checkpoint records). *)

val note_dead : t -> rref -> unit
(** The referenced record was superseded or deleted; its bytes are garbage
    for the next compaction. *)

val note_live : t -> rref -> unit
(** Recovery-time accounting: the reference is live in the recovered index. *)

val note_checkpoint : t -> unit
(** A checkpoint generation committed. Retired segments are unlinked once two
    further checkpoints have committed (the newest generation and its
    retained fallback no longer reference them). *)

val gc_candidates : t -> min_dead_ratio:float -> int list
(** Sealed segments whose dead-byte ratio is at least [min_dead_ratio]. *)

val retire_segments : t -> int list -> unit
(** Mark segments dead after compaction rewrote their live records. Files
    are unlinked immediately if no checkpoint ever committed, otherwise
    deferred (see {!note_checkpoint}). *)

val note_gc_rewrite : t -> unit

val scrub : t -> (unit, string) result
(** Re-validate every sealed segment end to end: walk the records (hostile
    lengths are an [Error], never a crash), re-verify each MAC, re-derive the
    multiset summary and compare with the footer, re-verify the footer MAC.
    Any failure bumps [scrub_failures] and is returned. *)

type stats = {
  segments : int;  (** live segments (active + sealed) *)
  dead_segments : int;  (** retired, awaiting unlink *)
  live_bytes : int;
  dead_bytes : int;
  reads : int;
  writes : int;
  gc_rewrites : int;
  scrub_failures : int;
}

val stats : t -> stats

val wire_metrics : t option -> Fastver_obs.Registry.t -> unit
(** Register the [fastver_cold_*] metric family. With [None] every metric is
    registered at a constant zero, so the documented names are always present
    in a snapshot even when the cold tier is disabled. *)

(** {2 Crash-fault injection (tests)} *)

exception Injected_crash of string

type fault = {
  after_appends : int;  (** let this many appends succeed first *)
  torn : bool;  (** write half the next record before dying (torn tail) *)
}

val arm_fault : fault -> unit
val disarm_fault : unit -> unit
