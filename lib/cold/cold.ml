module MH = Fastver_crypto.Multiset_hash
module B = Fastver_crypto.Bytes_util
module Sha256 = Fastver_crypto.Sha256
module Registry = Fastver_obs.Registry
module Histogram = Fastver_obs.Histogram

type config = { dir : string; mac_secret : string; segment_bytes : int }

let default_segment_bytes = 4 * 1024 * 1024

type rref = { seg : int; off : int; len : int }

type state = Active | Sealed | Retired

type segment = {
  id : int;
  path : string;
  mutable state : state;
  mutable data_len : int;  (* committed record bytes, footer excluded *)
  mutable n_records : int;
  summary : MH.t;  (* running multiset over record MACs *)
  mutable live_bytes : int;
  read_lock : Mutex.t;
  read_fd : Unix.file_descr;
  mutable dead_since : int;  (* ckpt_count at retirement, -1 while live *)
}

type t = {
  cfg : config;
  mset_key : MH.key;
  writer_lock : Mutex.t;
  table_lock : Mutex.t;  (* guards [segments] and segment state fields *)
  segments : (int, segment) Hashtbl.t;
  mutable active : segment;
  mutable active_fd : Unix.file_descr;
  mutable next_id : int;
  mutable ckpt_count : int;
  reads : int Atomic.t;
  writes : int Atomic.t;
  gc_rewrites : int Atomic.t;
  scrub_failures : int Atomic.t;
  mutable read_wait : Histogram.t option;
}

(* {2 Crash-fault injection} *)

exception Injected_crash of string

type fault = { after_appends : int; torn : bool }

let armed : fault option ref = ref None
let appends_since_arm = ref 0

let arm_fault f =
  armed := Some f;
  appends_since_arm := 0

let disarm_fault () = armed := None

(* {2 Low-level I/O} *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let really_pread fd ~off ~len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let buf = Bytes.create len in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read fd buf !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  if !got < len then Error "cold: short read"
  else Ok (Bytes.unsafe_to_string buf)

let seg_path dir id = Filename.concat dir (Printf.sprintf "seg-%08d.cold" id)

let is_seg_file name =
  String.length name > 4
  && String.sub name 0 4 = "seg-"
  && Filename.check_suffix name ".cold"

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let mset_key_of_secret secret =
  MH.key_of_string
    (String.sub (Sha256.digest ("fastver-cold-summary\x01" ^ secret)) 0 16)

let open_segment_fds path =
  let wfd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let rfd = Unix.openfile path [ Unix.O_RDONLY ] 0o644 in
  (wfd, rfd)

let mk_active_segment ~mset_key ~dir id =
  let path = seg_path dir id in
  let wfd, rfd = open_segment_fds path in
  let seg =
    {
      id;
      path;
      state = Active;
      data_len = 0;
      n_records = 0;
      summary = MH.create mset_key;
      live_bytes = 0;
      read_lock = Mutex.create ();
      read_fd = rfd;
      dead_since = -1;
    }
  in
  (seg, wfd)

let fresh_segment t id =
  let seg, wfd = mk_active_segment ~mset_key:t.mset_key ~dir:t.cfg.dir id in
  Mutex.lock t.table_lock;
  Hashtbl.replace t.segments id seg;
  Mutex.unlock t.table_lock;
  (seg, wfd)

(* {2 Creation and recovery} *)

let create ?(clear_stray = false) cfg =
  if cfg.segment_bytes < Segment.record_overhead then
    Error "cold: segment_bytes too small"
  else begin
    mkdir_p cfg.dir;
    match Sys.readdir cfg.dir with
    | exception Sys_error e -> Error (Printf.sprintf "cold: %s" e)
    | entries ->
        let strays = Array.to_list entries |> List.filter is_seg_file in
        if strays <> [] && not clear_stray then
          Error
            "cold: directory already contains segments; recover from a \
             checkpoint or clear it"
        else begin
          (* Fresh start with no manifest: any leftover segment files were
             never committed by a checkpoint, so they are garbage. *)
          List.iter
            (fun name -> try Sys.remove (Filename.concat cfg.dir name) with _ -> ())
            strays;
          let mset_key = mset_key_of_secret cfg.mac_secret in
          let seg, wfd = mk_active_segment ~mset_key ~dir:cfg.dir 0 in
          let t =
            {
              cfg;
              mset_key;
              writer_lock = Mutex.create ();
              table_lock = Mutex.create ();
              segments = Hashtbl.create 16;
              active = seg;
              active_fd = wfd;
              next_id = 1;
              ckpt_count = 0;
              reads = Atomic.make 0;
              writes = Atomic.make 0;
              gc_rewrites = Atomic.make 0;
              scrub_failures = Atomic.make 0;
              read_wait = None;
            }
          in
          Hashtbl.replace t.segments 0 seg;
          Ok t
        end
  end

let seal_active t =
  (* caller holds [writer_lock] *)
  let seg = t.active in
  let footer =
    Segment.encode_footer ~mac_secret:t.cfg.mac_secret
      ~n_records:(Int64.of_int seg.n_records)
      ~data_len:(Int64.of_int seg.data_len)
      ~summary:(MH.value seg.summary)
  in
  ignore (Unix.lseek t.active_fd seg.data_len Unix.SEEK_SET);
  write_all t.active_fd footer;
  Unix.fsync t.active_fd;
  Unix.close t.active_fd;
  Mutex.lock t.table_lock;
  seg.state <- Sealed;
  Mutex.unlock t.table_lock;
  let id = t.next_id in
  t.next_id <- id + 1;
  let seg', wfd = fresh_segment t id in
  t.active <- seg';
  t.active_fd <- wfd

(* {2 Appending} *)

let check_fault t record =
  match !armed with
  | None -> ()
  | Some f ->
      if !appends_since_arm >= f.after_appends then begin
        if f.torn then begin
          let half = String.length record / 2 in
          ignore (Unix.lseek t.active_fd t.active.data_len Unix.SEEK_SET);
          write_all t.active_fd (String.sub record 0 half)
        end;
        disarm_fault ();
        raise (Injected_crash "cold: simulated crash mid-segment-write")
      end
      else incr appends_since_arm

let append t ~key ~aux ~value =
  Mutex.lock t.writer_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.writer_lock) @@ fun () ->
  let record = Segment.encode_record ~mac_secret:t.cfg.mac_secret ~key ~aux ~value in
  let rlen = String.length record in
  match
    begin
      check_fault t record;
      if t.active.data_len > 0 && t.active.data_len + rlen > t.cfg.segment_bytes
      then seal_active t;
      let seg = t.active in
      ignore (Unix.lseek t.active_fd seg.data_len Unix.SEEK_SET);
      write_all t.active_fd record;
      let off = seg.data_len in
      MH.add seg.summary (Segment.record_mac record);
      Mutex.lock t.table_lock;
      seg.data_len <- seg.data_len + rlen;
      seg.n_records <- seg.n_records + 1;
      seg.live_bytes <- seg.live_bytes + rlen;
      Mutex.unlock t.table_lock;
      Atomic.incr t.writes;
      { seg = seg.id; off; len = String.length value }
    end
  with
  | r -> Ok r
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "cold: append failed: %s in %s" (Unix.error_message e) fn)

(* {2 Reading} *)

let find_segment t id =
  Mutex.lock t.table_lock;
  let r = Hashtbl.find_opt t.segments id in
  Mutex.unlock t.table_lock;
  r

let bounds_ok seg r =
  r.off >= 0 && r.len >= 0
  && r.len <= Sys.max_string_length - Segment.record_overhead
  && r.off <= seg.data_len - Segment.record_len ~value_len:r.len

let get t ~key (r : rref) =
  match find_segment t r.seg with
  | None -> Error `Stale
  | Some seg ->
      if not (bounds_ok seg r) then
        Error (`Fail "cold: reference out of segment bounds")
      else begin
        let rlen = Segment.record_len ~value_len:r.len in
        let t0 = Unix.gettimeofday () in
        Mutex.lock seg.read_lock;
        (match t.read_wait with
        | Some h -> Histogram.record_span h (Unix.gettimeofday () -. t0)
        | None -> ());
        let raw =
          Fun.protect ~finally:(fun () -> Mutex.unlock seg.read_lock)
          @@ fun () ->
          try really_pread seg.read_fd ~off:r.off ~len:rlen
          with Unix.Unix_error (e, fn, _) ->
            Error (Printf.sprintf "cold: read failed: %s in %s"
                     (Unix.error_message e) fn)
        in
        Atomic.incr t.reads;
        match raw with
        | Error e -> Error (`Fail e)
        | Ok raw -> (
            match Segment.decode_record ~mac_secret:t.cfg.mac_secret raw with
            | Error e ->
                Atomic.incr t.scrub_failures;
                Error (`Fail e)
            | Ok rec_ ->
                if not (String.equal rec_.Segment.key_enc (Key.encode key))
                then begin
                  Atomic.incr t.scrub_failures;
                  Error (`Fail "cold: record key mismatch (misdirected read)")
                end
                else Ok (rec_.Segment.value, rec_.Segment.aux))
      end

let validate_ref t (r : rref) =
  match find_segment t r.seg with
  | None -> Error (Printf.sprintf "cold: unknown segment %d" r.seg)
  | Some seg when seg.state = Retired ->
      Error (Printf.sprintf "cold: segment %d is retired" r.seg)
  | Some seg ->
      if bounds_ok seg r then Ok ()
      else
        Error
          (Printf.sprintf "cold: reference %d:%d+%d out of bounds" r.seg r.off
             r.len)

(* {2 Liveness accounting} *)

let note_dead t (r : rref) =
  match find_segment t r.seg with
  | None -> ()
  | Some seg ->
      let rlen = Segment.record_len ~value_len:r.len in
      Mutex.lock t.table_lock;
      seg.live_bytes <- max 0 (seg.live_bytes - rlen);
      Mutex.unlock t.table_lock

let note_live t (r : rref) =
  match find_segment t r.seg with
  | None -> ()
  | Some seg ->
      let rlen = Segment.record_len ~value_len:r.len in
      Mutex.lock t.table_lock;
      seg.live_bytes <- min seg.data_len (seg.live_bytes + rlen);
      Mutex.unlock t.table_lock

(* {2 GC / retirement} *)

let unlink_segment t seg =
  (* caller holds [table_lock] *)
  Hashtbl.remove t.segments seg.id;
  (try Unix.close seg.read_fd with Unix.Unix_error _ -> ());
  try Sys.remove seg.path with Sys_error _ -> ()

let gc_candidates t ~min_dead_ratio =
  Mutex.lock t.table_lock;
  let ids =
    Hashtbl.fold
      (fun id seg acc ->
        if seg.state = Sealed && seg.data_len > 0 then
          let dead = float_of_int (seg.data_len - seg.live_bytes) in
          if dead /. float_of_int seg.data_len >= min_dead_ratio then id :: acc
          else acc
        else acc)
      t.segments []
  in
  Mutex.unlock t.table_lock;
  List.sort compare ids

let retire_segments t ids =
  Mutex.lock t.writer_lock;
  Mutex.lock t.table_lock;
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.segments id with
      | Some seg when seg.state = Sealed ->
          if t.ckpt_count = 0 then
            (* never referenced by any manifest: safe to drop now *)
            unlink_segment t seg
          else begin
            seg.state <- Retired;
            seg.dead_since <- t.ckpt_count
          end
      | _ -> ())
    ids;
  Mutex.unlock t.table_lock;
  Mutex.unlock t.writer_lock

let note_gc_rewrite t = Atomic.incr t.gc_rewrites

let note_checkpoint t =
  Mutex.lock t.writer_lock;
  Mutex.lock t.table_lock;
  t.ckpt_count <- t.ckpt_count + 1;
  let doomed =
    Hashtbl.fold
      (fun _ seg acc ->
        if seg.state = Retired && seg.dead_since + 2 <= t.ckpt_count then
          seg :: acc
        else acc)
      t.segments []
  in
  List.iter (unlink_segment t) doomed;
  Mutex.unlock t.table_lock;
  Mutex.unlock t.writer_lock

(* {2 Manifest} *)

let flush t =
  Mutex.lock t.writer_lock;
  (try Unix.fsync t.active_fd with Unix.Unix_error _ -> ());
  Mutex.unlock t.writer_lock

let manifest_encode t =
  Mutex.lock t.writer_lock;
  (try Unix.fsync t.active_fd with Unix.Unix_error _ -> ());
  Mutex.lock t.table_lock;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "fastver-cold-manifest v1\n";
  Buffer.add_string buf (Printf.sprintf "next_id %d\n" t.next_id);
  let segs =
    Hashtbl.fold (fun _ s acc -> s :: acc) t.segments []
    |> List.filter (fun s -> s.state <> Retired)
    |> List.sort (fun a b -> compare a.id b.id)
  in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "seg %d %s %d %d %s\n" s.id
           (match s.state with Active -> "active" | _ -> "sealed")
           s.data_len s.n_records
           (B.to_hex (MH.value s.summary))))
    segs;
  Mutex.unlock t.table_lock;
  Mutex.unlock t.writer_lock;
  Buffer.contents buf

type parsed_seg = {
  p_id : int;
  p_sealed : bool;
  p_data_len : int;
  p_n_records : int;
  p_summary : string;
}

let parse_manifest s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "cold manifest: empty"
  | hdr :: rest ->
      if hdr <> "fastver-cold-manifest v1" then
        Error "cold manifest: unknown header"
      else
        let next_id = ref None in
        let segs = ref [] in
        let err = ref None in
        List.iter
          (fun line ->
            if !err = None then
              match String.split_on_char ' ' line with
              | [ "next_id"; n ] -> (
                  match int_of_string_opt n with
                  | Some n when n >= 0 -> next_id := Some n
                  | _ -> err := Some "cold manifest: bad next_id")
              | [ "seg"; id; st; dl; nr; sum ] -> (
                  match
                    ( int_of_string_opt id,
                      int_of_string_opt dl,
                      int_of_string_opt nr,
                      (try Some (B.of_hex sum) with _ -> None) )
                  with
                  | Some id, Some dl, Some nr, Some sum
                    when id >= 0 && dl >= 0 && nr >= 0
                         && String.length sum = 16 ->
                      let sealed =
                        match st with
                        | "sealed" -> Some true
                        | "active" -> Some false
                        | _ -> None
                      in
                      (match sealed with
                      | None -> err := Some "cold manifest: bad segment state"
                      | Some p_sealed ->
                          segs :=
                            {
                              p_id = id;
                              p_sealed;
                              p_data_len = dl;
                              p_n_records = nr;
                              p_summary = sum;
                            }
                            :: !segs)
                  | _ -> err := Some "cold manifest: bad segment line")
              | _ -> err := Some "cold manifest: unrecognised line")
          rest;
        match (!err, !next_id) with
        | Some e, _ -> Error e
        | None, None -> Error "cold manifest: missing next_id"
        | None, Some next_id -> (
            let segs = List.rev !segs in
            match List.filter (fun p -> not p.p_sealed) segs with
            | [ _ ] -> Ok (next_id, segs)
            | [] -> Error "cold manifest: no active segment"
            | _ -> Error "cold manifest: multiple active segments")

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> Some st_size
  | exception Unix.Unix_error _ -> None

let recover cfg ~manifest =
  match parse_manifest manifest with
  | Error _ as e -> e
  | Ok (next_id, psegs) -> (
      let mset_key = mset_key_of_secret cfg.mac_secret in
      let segments = Hashtbl.create 16 in
      let active = ref None in
      let check_one p =
        let path = seg_path cfg.dir p.p_id in
        match file_size path with
        | None -> Error (Printf.sprintf "cold: segment %d missing" p.p_id)
        | Some size ->
            if p.p_sealed then begin
              if size <> p.p_data_len + Segment.footer_len then
                Error
                  (Printf.sprintf
                     "cold: segment %d size %d, manifest wants %d" p.p_id size
                     (p.p_data_len + Segment.footer_len))
              else
                let rfd = Unix.openfile path [ Unix.O_RDONLY ] 0o644 in
                match
                  really_pread rfd ~off:p.p_data_len ~len:Segment.footer_len
                with
                | Error e ->
                    Unix.close rfd;
                    Error e
                | Ok fbytes -> (
                    match
                      Segment.decode_footer ~mac_secret:cfg.mac_secret fbytes
                    with
                    | Error e ->
                        Unix.close rfd;
                        Error (Printf.sprintf "cold: segment %d: %s" p.p_id e)
                    | Ok f ->
                        if
                          Int64.to_int f.Segment.n_records <> p.p_n_records
                          || Int64.to_int f.Segment.data_len <> p.p_data_len
                          || not (String.equal f.Segment.summary p.p_summary)
                        then begin
                          Unix.close rfd;
                          Error
                            (Printf.sprintf
                               "cold: segment %d footer disagrees with \
                                manifest"
                               p.p_id)
                        end
                        else begin
                          Hashtbl.replace segments p.p_id
                            {
                              id = p.p_id;
                              path;
                              state = Sealed;
                              data_len = p.p_data_len;
                              n_records = p.p_n_records;
                              summary = MH.of_value mset_key p.p_summary;
                              live_bytes = 0;
                              read_lock = Mutex.create ();
                              read_fd = rfd;
                              dead_since = -1;
                            };
                          Ok ()
                        end)
            end
            else if size < p.p_data_len then
              Error
                (Printf.sprintf
                   "cold: active segment %d shorter than committed length"
                   p.p_id)
            else begin
              (* truncate the uncommitted tail a crash may have torn *)
              let wfd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
              Unix.ftruncate wfd p.p_data_len;
              Unix.fsync wfd;
              let rfd = Unix.openfile path [ Unix.O_RDONLY ] 0o644 in
              let seg =
                {
                  id = p.p_id;
                  path;
                  state = Active;
                  data_len = p.p_data_len;
                  n_records = p.p_n_records;
                  summary = MH.of_value mset_key p.p_summary;
                  live_bytes = 0;
                  read_lock = Mutex.create ();
                  read_fd = rfd;
                  dead_since = -1;
                }
              in
              Hashtbl.replace segments p.p_id seg;
              active := Some (seg, wfd);
              Ok ()
            end
      in
      let rec check_all = function
        | [] -> Ok ()
        | p :: rest -> (
            match check_one p with Error _ as e -> e | Ok () -> check_all rest)
      in
      let cleanup () =
        Hashtbl.iter
          (fun _ s -> try Unix.close s.read_fd with Unix.Unix_error _ -> ())
          segments;
        match !active with
        | Some (_, wfd) -> (
            try Unix.close wfd with Unix.Unix_error _ -> ())
        | None -> ()
      in
      match check_all psegs with
      | Error e ->
          cleanup ();
          Error e
      | Ok () -> (
          match !active with
          | None ->
              cleanup ();
              Error "cold manifest: no active segment"
          | Some (active_seg, active_fd) ->
              (* segment files the manifest does not know are uncommitted *)
              (match Sys.readdir cfg.dir with
              | exception Sys_error _ -> ()
              | entries ->
                  Array.iter
                    (fun name ->
                      if is_seg_file name then
                        let known =
                          List.exists
                            (fun p ->
                              seg_path cfg.dir p.p_id
                              = Filename.concat cfg.dir name)
                            psegs
                        in
                        if not known then
                          try Sys.remove (Filename.concat cfg.dir name)
                          with Sys_error _ -> ())
                    entries);
              Ok
                {
                  cfg;
                  mset_key;
                  writer_lock = Mutex.create ();
                  table_lock = Mutex.create ();
                  segments;
                  active = active_seg;
                  active_fd;
                  next_id;
                  ckpt_count = 1;
                  reads = Atomic.make 0;
                  writes = Atomic.make 0;
                  gc_rewrites = Atomic.make 0;
                  scrub_failures = Atomic.make 0;
                  read_wait = None;
                }))

(* {2 Scrub} *)

let scrub_segment t seg =
  let fail msg =
    Atomic.incr t.scrub_failures;
    Error (Printf.sprintf "cold: segment %d: %s" seg.id msg)
  in
  match really_pread seg.read_fd ~off:0 ~len:(seg.data_len + Segment.footer_len) with
  | Error e -> fail e
  | Ok raw -> (
      let acc = MH.create t.mset_key in
      let off = ref 0 in
      let count = ref 0 in
      let err = ref None in
      while !err = None && !off < seg.data_len do
        if seg.data_len - !off < Segment.record_overhead then
          err := Some "truncated record header"
        else
          let vlen =
            Int32.to_int
              (Bytes.get_int32_le (Bytes.unsafe_of_string raw) (!off + 42))
          in
          if vlen < 0 || vlen > seg.data_len - !off - Segment.record_overhead
          then err := Some "record length out of bounds"
          else
            let rlen = Segment.record_len ~value_len:vlen in
            let r = String.sub raw !off rlen in
            match Segment.decode_record ~mac_secret:t.cfg.mac_secret r with
            | Error e -> err := Some e
            | Ok _ ->
                MH.add acc (Segment.record_mac r);
                incr count;
                off := !off + rlen
      done;
      match !err with
      | Some e -> fail e
      | None -> (
          let fbytes =
            String.sub raw seg.data_len Segment.footer_len
          in
          match Segment.decode_footer ~mac_secret:t.cfg.mac_secret fbytes with
          | Error e -> fail e
          | Ok f ->
              if Int64.to_int f.Segment.n_records <> !count then
                fail "footer record count disagrees with scan"
              else if not (MH.equal_value (MH.value acc) f.Segment.summary)
              then fail "footer summary disagrees with record MACs"
              else Ok ()))

let scrub t =
  Mutex.lock t.table_lock;
  let sealed =
    Hashtbl.fold
      (fun _ s acc -> if s.state = Sealed then s :: acc else acc)
      t.segments []
    |> List.sort (fun a b -> compare a.id b.id)
  in
  Mutex.unlock t.table_lock;
  let rec go = function
    | [] -> Ok ()
    | s :: rest -> (
        match scrub_segment t s with Error _ as e -> e | Ok () -> go rest)
  in
  go sealed

(* {2 Stats and metrics} *)

type stats = {
  segments : int;
  dead_segments : int;
  live_bytes : int;
  dead_bytes : int;
  reads : int;
  writes : int;
  gc_rewrites : int;
  scrub_failures : int;
}

let stats t =
  Mutex.lock t.table_lock;
  let segments = ref 0 and dead_segments = ref 0 in
  let live = ref 0 and dead = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      match s.state with
      | Retired ->
          incr dead_segments;
          dead := !dead + s.data_len
      | Active | Sealed ->
          incr segments;
          live := !live + s.live_bytes;
          dead := !dead + (s.data_len - s.live_bytes))
    t.segments;
  Mutex.unlock t.table_lock;
  {
    segments = !segments;
    dead_segments = !dead_segments;
    live_bytes = !live;
    dead_bytes = !dead;
    reads = Atomic.get t.reads;
    writes = Atomic.get t.writes;
    gc_rewrites = Atomic.get t.gc_rewrites;
    scrub_failures = Atomic.get t.scrub_failures;
  }

let close t =
  Mutex.lock t.writer_lock;
  (try Unix.close t.active_fd with Unix.Unix_error _ -> ());
  Mutex.lock t.table_lock;
  Hashtbl.iter
    (fun _ s -> try Unix.close s.read_fd with Unix.Unix_error _ -> ())
    t.segments;
  Hashtbl.reset t.segments;
  Mutex.unlock t.table_lock;
  Mutex.unlock t.writer_lock

let wire_metrics t reg =
  let stat f = match t with None -> 0 | Some c -> f (stats c) in
  Registry.gauge_fn reg "fastver_cold_segments"
    ~help:"Live cold segments (active + sealed)" (fun () ->
      float_of_int (stat (fun s -> s.segments)));
  Registry.gauge_fn reg "fastver_cold_dead_segments"
    ~help:"Retired cold segments awaiting unlink" (fun () ->
      float_of_int (stat (fun s -> s.dead_segments)));
  Registry.gauge_fn reg "fastver_cold_live_bytes"
    ~help:"Bytes of cold records still referenced by the index" (fun () ->
      float_of_int (stat (fun s -> s.live_bytes)));
  Registry.gauge_fn reg "fastver_cold_dead_bytes"
    ~help:"Bytes of superseded cold records awaiting compaction" (fun () ->
      float_of_int (stat (fun s -> s.dead_bytes)));
  Registry.counter_fn reg "fastver_cold_reads_total"
    ~help:"Authenticated cold-tier reads" (fun () -> stat (fun s -> s.reads));
  Registry.counter_fn reg "fastver_cold_writes_total"
    ~help:"Records demoted to the cold tier" (fun () ->
      stat (fun s -> s.writes));
  Registry.counter_fn reg "fastver_cold_gc_rewrites_total"
    ~help:"Live records rewritten by cold compaction" (fun () ->
      stat (fun s -> s.gc_rewrites));
  Registry.counter_fn reg "fastver_cold_scrub_failures_total"
    ~help:"Integrity-check failures in cold reads and scrubs" (fun () ->
      stat (fun s -> s.scrub_failures));
  let h =
    Registry.histogram reg ~scale:1e-9
      ~help:"Wait for a per-segment cold read lock"
      "fastver_cold_read_wait_seconds"
  in
  match t with Some c -> c.read_wait <- Some h | None -> ()
