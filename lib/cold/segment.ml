module B = Fastver_crypto.Bytes_util
module Hmac = Fastver_crypto.Hmac

let key_len = 34
let record_header_len = key_len + 8 + 4
let mac_len = 32
let record_overhead = record_header_len + mac_len
let record_len ~value_len = record_overhead + value_len
let footer_len = 8 + 8 + 8 + 16 + mac_len
let footer_magic = "FVCOLDS1"
let record_domain = "fastver-cold-record\x01"
let footer_domain = "fastver-cold-footer\x01"

let encode_record ~mac_secret ~key ~aux ~value =
  let vlen = String.length value in
  let hdr = Bytes.create record_header_len in
  Bytes.blit_string (Key.encode key) 0 hdr 0 key_len;
  B.set_u64_le hdr key_len aux;
  Bytes.set_int32_le hdr (key_len + 8) (Int32.of_int vlen);
  let hdr = Bytes.unsafe_to_string hdr in
  let mac = Hmac.mac ~key:mac_secret (record_domain ^ hdr ^ value) in
  hdr ^ value ^ mac

let record_mac r =
  if String.length r < record_overhead then
    invalid_arg "Segment.record_mac: record too short";
  String.sub r (String.length r - mac_len) mac_len

type record = { key_enc : string; aux : int64; value : string }

let decode_record ~mac_secret r =
  let n = String.length r in
  if n < record_overhead then Error "cold record: truncated header"
  else
    let vlen32 = Bytes.get_int32_le (Bytes.unsafe_of_string r) (key_len + 8) in
    let vlen = Int32.to_int vlen32 in
    if vlen < 0 || vlen <> n - record_overhead then
      Error "cold record: length field disagrees with record size"
    else
      let hdr = String.sub r 0 record_header_len in
      let value = String.sub r record_header_len vlen in
      let tag = String.sub r (record_header_len + vlen) mac_len in
      if not (Hmac.verify ~key:mac_secret (record_domain ^ hdr ^ value) ~tag)
      then Error "cold record: MAC mismatch"
      else
        let key_enc = String.sub r 0 key_len in
        let aux = B.get_u64_le r key_len in
        Ok { key_enc; aux; value }

type footer = { n_records : int64; data_len : int64; summary : string }

let encode_footer ~mac_secret ~n_records ~data_len ~summary =
  if String.length summary <> 16 then
    invalid_arg "Segment.encode_footer: summary must be 16 bytes";
  let body = Bytes.create (footer_len - mac_len) in
  Bytes.blit_string footer_magic 0 body 0 8;
  B.set_u64_le body 8 n_records;
  B.set_u64_le body 16 data_len;
  Bytes.blit_string summary 0 body 24 16;
  let body = Bytes.unsafe_to_string body in
  body ^ Hmac.mac ~key:mac_secret (footer_domain ^ body)

let decode_footer ~mac_secret f =
  if String.length f <> footer_len then Error "cold footer: wrong length"
  else if String.sub f 0 8 <> footer_magic then Error "cold footer: bad magic"
  else
    let body = String.sub f 0 (footer_len - mac_len) in
    let tag = String.sub f (footer_len - mac_len) mac_len in
    if not (Hmac.verify ~key:mac_secret (footer_domain ^ body) ~tag) then
      Error "cold footer: MAC mismatch"
    else
      let n_records = B.get_u64_le f 8 in
      let data_len = B.get_u64_le f 16 in
      if Int64.compare n_records 0L < 0 || Int64.compare data_len 0L < 0 then
        Error "cold footer: negative field"
      else Ok { n_records; data_len; summary = String.sub f 24 16 }
