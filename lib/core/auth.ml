open Fastver_crypto

type key = Cmac.key

let key_of_secret secret =
  (* CMAC wants a 16-byte AES key; fold arbitrary secrets through SHA-256. *)
  Cmac.of_aes_key (String.sub (Sha256.digest ("fastver-mac:" ^ secret)) 0 16)

let u64 v = Bytes_util.string_of_u64_le v

let put_request key ~client ~nonce k v =
  Cmac.mac key
    (String.concat ""
       [ "fv-put"; u64 (Int64.of_int client); u64 nonce; Key.encode k; v ])

type kind = Get | Put

let receipt key ~kind ~client ~nonce k value ~epoch =
  let kind_tag = match kind with Get -> "g" | Put -> "p" in
  let value_enc = match value with None -> "\x00" | Some v -> "\x01" ^ v in
  Cmac.mac key
    (String.concat ""
       [
         "fv-res"; kind_tag; u64 (Int64.of_int client); u64 nonce;
         Key.encode k; value_enc; u64 (Int64.of_int epoch);
       ])

let check ~expected tag = Bytes_util.equal_constant_time expected tag
