(** Online controller for the verification hierarchy.

    At every epoch seal the store snapshots, per shard, the tier attribution
    counters (blum / merkle / cached ops this epoch), the frontier size, the
    verifier-cache occupancy, and a coarse per-key-range heat sketch, and
    asks {!decide} for a plan: the shard's verifier-cache capacity (drawn
    from a store-wide budget), its target frontier depth, and the heat
    thresholds governing which deferred keys are carried on the blum fast
    path instead of being migrated back to merkle protection.

    {!decide} is a pure function of the observation snapshot — no clocks, no
    randomness — so decisions are deterministic and testable, and all tier
    movement it triggers rides the ordinary sealed-epoch machinery:
    certificates remain bit-identical to a static run with the same final
    tier assignment. *)

val buckets : int
(** Number of heat-sketch counters per shard (256). *)

val bucket : Key.t -> int
(** Sketch cell for a key: [Key.hash k land (buckets - 1)]. *)

type params = {
  cache_budget : int;
      (** Total verifier-cache entries shared by all shards. *)
  depth_min : int;  (** Lower bound for retuned frontier depth. *)
  depth_max : int;  (** Upper bound for retuned frontier depth. *)
  hot_fraction : float;
      (** Fraction of a shard's cache capacity spendable on hot-key
          carries each epoch. *)
  min_cache : int;  (** Per-shard capacity floor (>= 2 for the verifier). *)
}

type shard_obs = {
  blum_ops : int;  (** Fast-path (deferred-tier) ops this epoch. *)
  merkle_ops : int;  (** Slow-path ops that loaded chain records. *)
  cached_ops : int;  (** Ops served entirely from the verifier cache. *)
  frontier_size : int;  (** Blum-protected internal nodes (cut size). *)
  cache_len : int;  (** Resident verifier-cache entries. *)
  cache_cap : int;  (** Current capacity. *)
  depth : int;  (** Current frontier cut depth (Patricia levels). *)
  heat : int array;  (** Heat sketch, length {!buckets}. *)
}

type plan = {
  p_cache_cap : int;
  p_depth : int;
  p_hot_min : int;  (** Heat threshold to newly promote a key. *)
  p_hot_keep : int;  (** Lower threshold keeping an already-hot key. *)
  p_hot_budget : int;  (** Max keys carried in the deferred tier. *)
}

val pp_plan : Format.formatter -> plan -> unit

val decide : params -> shard_obs array -> plan array
(** Pure, deterministic: one plan per observed shard. Capacities respect
    [params.cache_budget] (up to per-shard [min_cache] floors), move only on
    >= 1/8 relative changes, and depth moves at most one level per epoch
    toward an equilibrium tracking merkle pressure: deepen while the
    frontier is under 1/16 of the pressure, retreat once it exceeds 1/8
    (frontier records cost a migration roundtrip at every scan, so their
    mass is a recurring tax). The [1/16, 1/8] dead band is the hysteresis
    that keeps a stable workload from thrashing. *)

val should_carry : plan -> heat:int -> already_hot:bool -> bool
(** Whether a dirty deferred key with the given sketch heat should be
    carried (kept blum-protected) rather than migrated back to merkle. *)

val heat_total : int array -> int

val decay : int array -> unit
(** Halve every sketch cell in place (called once per epoch seal). *)
