(** Core-layer observability: the {!Fastver_obs} metrics a {!Fastver.t}
    maintains about itself.

    One instance per system, created alongside it (both [create] and
    checkpoint recovery). Hot-path helpers are no-ops when the config
    disables metrics; the registry itself always exists, so callback-backed
    metrics (store stats, verifier op counts, epochs) can be attached and
    rendered either way. *)

type tier = Blum | Merkle | Cached

type t

val create : enabled:bool -> unit -> t
val registry : t -> Fastver_obs.Registry.t
val enabled : t -> bool

(** {2 Hot-path recording} (each guarded by [enabled]) *)

val tier : t -> tier -> unit
(** One validated elementary operation, attributed to the tier that served
    it: [Blum] = deferred fast path, [Merkle] = slow path that had to load
    chain records into the verifier cache, [Cached] = slow path whose whole
    chain was already resident. *)

val get_op : t -> unit
val put_op : t -> unit
val scan_op : t -> unit
val cas_retry : t -> unit

val flush : t -> int -> unit
(** Verification-log entries in one enclave flush. *)

val verify_scan : t -> seconds:float -> touched:int -> unit
(** One verification scan: wall+modelled duration and the number of
    migrated records (data + frontier) it touched. *)

val verify_pause : t -> seconds:float -> unit
(** Foreground pause one verification imposed: the world-lock hold time —
    the whole scan when quiesced, only the seal barrier in background
    mode. *)

val verify_in_flight : t -> int -> unit
(** Set the in-flight-verification gauge (0 or 1). Not gated by [enabled]:
    the gauge is cheap and load-bearing for operators watching a
    background scan. *)

val verify_shard_seconds : t -> sid:int -> Fastver_obs.Histogram.t
(** The per-shard scan-slice histogram ([fastver_verify_shard_seconds]
    labeled [shard=<sid>]). Registration is idempotent; call once per
    shard at wiring time so the series exists before the first scan. *)

val verify_shard : t -> sid:int -> seconds:float -> unit
(** One shard's share of a verification scan (dirty re-apply + frontier
    migration + epoch close/seal on its own domain). *)

val adaptive_promotions : t -> int -> unit
(** Hot keys the controller carried in the deferred tier this scan. *)

val adaptive_demotions : t -> int -> unit
(** Previously-hot keys released back to merkle protection this scan. *)

val adaptive_retune : t -> unit
(** One controller decision applied at an epoch seal. *)

val checkpoint_write : t -> float -> unit
val recover_done : t -> float -> unit
