type t = {
  n_workers : int;
  n_shards : int;
  cache_capacity : int;
  frontier_levels : int;
  batch_size : int;
  log_buffer_size : int;
  algo : Record_enc.algo;
  cost_model : Cost_model.t;
  authenticate_clients : bool;
  sorted_migration : bool;
  mac_secret : string;
  mset_secret : string;
  seed : int;
  metrics_enabled : bool;
  background_verify : bool;
  cold_dir : string option;
  cold_threshold : int;
  cold_segment_bytes : int;
  cold_gc_ratio : float;
  adaptive : bool;
  adaptive_cache_budget : int;
  adaptive_depth_min : int;
  adaptive_depth_max : int;
  adaptive_hot_fraction : float;
}

let default =
  {
    n_workers = 1;
    n_shards = 0;
    cache_capacity = 512;
    frontier_levels = 6;
    batch_size = 65536;
    log_buffer_size = 4096;
    algo = Record_enc.Blake2s;
    cost_model = Cost_model.simulated;
    authenticate_clients = true;
    sorted_migration = true;
    mac_secret = "fastver-shared-client-secret";
    mset_secret = "fastver-mset-k3y";
    seed = 42;
    metrics_enabled = true;
    background_verify = false;
    cold_dir = None;
    cold_threshold = 100_000;
    cold_segment_bytes = 4 * 1024 * 1024;
    cold_gc_ratio = 0.5;
    adaptive = false;
    adaptive_cache_budget = 0;
    adaptive_depth_min = 2;
    adaptive_depth_max = 10;
    adaptive_hot_fraction = 0.5;
  }

let shards t = if t.n_shards <= 0 then max 1 t.n_workers else t.n_shards

let pp ppf t =
  Format.fprintf ppf
    "workers=%d shards=%d cache=%d d=%d batch=%d log=%d algo=%a enclave=%a \
     auth=%b sorted=%b metrics=%b bgverify=%b cold=%s adaptive=%b"
    t.n_workers (shards t) t.cache_capacity t.frontier_levels t.batch_size
    t.log_buffer_size Record_enc.pp_algo t.algo Cost_model.pp t.cost_model
    t.authenticate_clients t.sorted_migration t.metrics_enabled
    t.background_verify
    (match t.cold_dir with
    | None -> "off"
    | Some d -> Printf.sprintf "%s@%d" d t.cold_threshold)
    t.adaptive
