open Fastver_obs

type tier = Blum | Merkle | Cached

type t = {
  enabled : bool;
  registry : Registry.t;
  ops_blum : Counter.t;
  ops_merkle : Counter.t;
  ops_cached : Counter.t;
  gets : Counter.t;
  puts : Counter.t;
  scans : Counter.t;
  cas_retries : Counter.t;
  verifies : Counter.t;
  flush_entries : Histogram.t;
  verify_seconds : Histogram.t;
  verify_touched : Histogram.t;
  verify_pause_seconds : Histogram.t;
  verify_in_flight : Gauge.t;
  checkpoint_seconds : Histogram.t;
  recover_seconds : Histogram.t;
  adaptive_promotions : Counter.t;
  adaptive_demotions : Counter.t;
  adaptive_retunes : Counter.t;
}

let create ~enabled () =
  let r = Registry.create () in
  let tier_counter tier =
    Registry.counter r ~labels:[ ("tier", tier) ]
      ~help:"Validated elementary operations by protection tier"
      "fastver_ops_total"
  in
  {
    enabled;
    registry = r;
    ops_blum = tier_counter "blum";
    ops_merkle = tier_counter "merkle";
    ops_cached = tier_counter "cached";
    gets =
      Registry.counter r ~help:"Validated elementary reads" "fastver_gets_total";
    puts =
      Registry.counter r ~help:"Validated elementary updates"
        "fastver_puts_total";
    scans =
      Registry.counter r ~help:"Range scans submitted" "fastver_scans_total";
    cas_retries =
      Registry.counter r ~help:"Fast-path CAS losses retried"
        "fastver_cas_retries_total";
    verifies =
      Registry.counter r ~help:"Verification scans completed"
        "fastver_verifies_total";
    flush_entries =
      Registry.histogram r
        ~help:"Verification-log entries per enclave flush"
        "fastver_log_flush_entries";
    verify_seconds =
      Registry.histogram r ~scale:1e-9
        ~help:"Verification scan duration (incl. modelled enclave cost)"
        "fastver_verify_scan_seconds";
    verify_touched =
      Registry.histogram r
        ~help:"Records migrated per verification scan (data + frontier)"
        "fastver_verify_touched_records";
    verify_pause_seconds =
      Registry.histogram r ~scale:1e-9
        ~help:
          "Foreground pause per verification (world-lock hold: the whole \
           scan when quiesced, only the O(workers) seal barrier in \
           background mode)"
        "fastver_verify_pause_seconds";
    verify_in_flight =
      Registry.gauge r
        ~help:"Verification scans currently in flight (0 or 1)"
        "fastver_verify_in_flight";
    checkpoint_seconds =
      Registry.histogram r ~scale:1e-9
        ~help:"Checkpoint generation write duration"
        "fastver_checkpoint_write_seconds";
    recover_seconds =
      Registry.histogram r ~scale:1e-9
        ~help:"Checkpoint recovery duration" "fastver_recover_seconds";
    adaptive_promotions =
      Registry.counter r
        ~help:"Hot keys carried in the deferred tier by the controller"
        "fastver_adaptive_promotions_total";
    adaptive_demotions =
      Registry.counter r
        ~help:"Cooled keys released back to merkle protection"
        "fastver_adaptive_demotions_total";
    adaptive_retunes =
      Registry.counter r
        ~help:"Controller decisions applied at epoch seals"
        "fastver_adaptive_retunes_total";
  }

let registry t = t.registry
let enabled t = t.enabled

let tier t which =
  if t.enabled then
    Counter.incr
      (match which with
      | Blum -> t.ops_blum
      | Merkle -> t.ops_merkle
      | Cached -> t.ops_cached)

let get_op t = if t.enabled then Counter.incr t.gets
let put_op t = if t.enabled then Counter.incr t.puts
let scan_op t = if t.enabled then Counter.incr t.scans
let cas_retry t = if t.enabled then Counter.incr t.cas_retries

let flush t n = if t.enabled then Histogram.record t.flush_entries n

let verify_shard_seconds t ~sid =
  Registry.histogram t.registry ~scale:1e-9
    ~labels:[ ("shard", string_of_int sid) ]
    ~help:"Per-shard verification-scan time (parallel slice incl. seal)"
    "fastver_verify_shard_seconds"

let verify_shard t ~sid ~seconds =
  if t.enabled then Histogram.record_span (verify_shard_seconds t ~sid) seconds

let verify_pause t ~seconds =
  if t.enabled then Histogram.record_span t.verify_pause_seconds seconds

let verify_in_flight t n = Gauge.set t.verify_in_flight (float_of_int n)

let verify_scan t ~seconds ~touched =
  if t.enabled then begin
    Counter.incr t.verifies;
    Histogram.record_span t.verify_seconds seconds;
    Histogram.record t.verify_touched touched
  end

let adaptive_promotions t n =
  if t.enabled && n > 0 then Counter.add t.adaptive_promotions n

let adaptive_demotions t n =
  if t.enabled && n > 0 then Counter.add t.adaptive_demotions n

let adaptive_retune t = if t.enabled then Counter.incr t.adaptive_retunes

let checkpoint_write t seconds =
  if t.enabled then Histogram.record_span t.checkpoint_seconds seconds

let recover_done t seconds =
  if t.enabled then Histogram.record_span t.recover_seconds seconds
