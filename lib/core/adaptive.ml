(* Online controller for the verification hierarchy.

   Runs at every epoch seal (under the world lock, between epochs) and turns
   the live obs picture — per-tier op counts plus a per-key-range heat
   sketch — into a per-shard plan: how much verifier cache each shard gets
   from the global budget, how deep its blum frontier cut should sit, and
   which deferred keys are hot enough to carry on the blum fast path instead
   of migrating back to merkle protection.

   The controller is a pure function of its observation snapshot: no clocks,
   no randomness, no hidden state. Determinism is what makes the decisions
   testable and keeps certificates reproducible — the same workload trace
   yields the same tier assignment, and the certificate depends only on the
   epoch number either way. *)

(* Heat sketch geometry: key heat is folded into [buckets] counters by
   [bucket]. Coarse on purpose — the executors bump one array cell per op
   under the worker lock they already hold, so the sketch costs one add on
   the hot path and 2 KiB per shard. *)
let buckets = 256
let bucket key = Key.hash key land (buckets - 1)

type params = {
  cache_budget : int;  (* total verifier-cache entries across all shards *)
  depth_min : int;
  depth_max : int;
  hot_fraction : float;  (* share of a shard's cache spendable on carries *)
  min_cache : int;  (* per-shard capacity floor *)
}

type shard_obs = {
  blum_ops : int;
  merkle_ops : int;
  cached_ops : int;
  frontier_size : int;
  cache_len : int;
  cache_cap : int;
  depth : int;
  heat : int array;  (* length [buckets] *)
}

type plan = {
  p_cache_cap : int;
  p_depth : int;
  p_hot_min : int;  (* heat threshold to newly promote a key *)
  p_hot_keep : int;  (* lower threshold to keep an already-hot key *)
  p_hot_budget : int;  (* max keys carried in the deferred tier this epoch *)
}

let pp_plan ppf p =
  Format.fprintf ppf "cap=%d d=%d hot>=%d keep>=%d budget=%d" p.p_cache_cap
    p.p_depth p.p_hot_min p.p_hot_keep p.p_hot_budget

(* Frontier depth: a deeper cut shortens the merkle chains loaded on every
   slow-path op but adds ~2x frontier records, each of which costs a full
   add/evict roundtrip at EVERY scan to carry its blum entry into the next
   epoch — a recurring tax, not a one-time one. So the equilibrium tracks
   merkle pressure: deepen while the frontier is under 1/16 of the
   pressure, retreat once its maintenance exceeds 1/8 of it. The [1/16,
   1/8] band (one level per epoch from either side lands inside it) is the
   hysteresis that prevents oscillation on a stable workload. *)
let retune_depth params o =
  let pressure = o.merkle_ops + o.cached_ops in
  if pressure > 16 * max 16 o.frontier_size && o.depth < params.depth_max then
    o.depth + 1
  else if o.frontier_size > max 16 (pressure / 8) && o.depth > params.depth_min
  then o.depth - 1
  else o.depth

let heat_total heat = Array.fold_left ( + ) 0 heat

(* Hot-key thresholds: a key qualifies when its heat bucket runs 4x the
   average bucket; it stays qualified down to 2x. The gap is the per-key
   hysteresis band. *)
let hot_thresholds heat =
  let hot_min = max 4 (4 * heat_total heat / buckets) in
  (hot_min, max 2 (hot_min / 2))

let decide params obs =
  let n = Array.length obs in
  if n = 0 then [||]
  else begin
    (* Cache budget is split by merkle-tier pressure: blum-tier ops never
       touch the cache beyond transient migration, so shards whose traffic
       resolves through chains or cache hits get the entries. *)
    let share o = o.merkle_ops + o.cached_ops + 1 in
    let total_share = Array.fold_left (fun a o -> a + share o) 0 obs in
    let caps =
      Array.map
        (fun o ->
          max params.min_cache (params.cache_budget * share o / total_share))
        obs
    in
    (* Per-shard hysteresis: moves under 1/8 of the current capacity are
       noise, keep the old value. *)
    Array.iteri
      (fun i c ->
        if abs (c - obs.(i).cache_cap) * 8 < obs.(i).cache_cap then
          caps.(i) <- obs.(i).cache_cap)
      caps;
    (* Never exceed the global budget (floors may resist: a many-shard
       store whose floors alone exceed the budget keeps the floors). *)
    let sum = Array.fold_left ( + ) 0 caps in
    if sum > params.cache_budget then
      Array.iteri
        (fun i c ->
          caps.(i) <- max params.min_cache (c * params.cache_budget / sum))
        caps;
    Array.mapi
      (fun i o ->
        let hot_min, hot_keep = hot_thresholds o.heat in
        {
          p_cache_cap = caps.(i);
          p_depth = retune_depth params o;
          p_hot_min = hot_min;
          p_hot_keep = hot_keep;
          p_hot_budget =
            int_of_float (params.hot_fraction *. float_of_int caps.(i));
        })
      obs
  end

let should_carry plan ~heat ~already_hot =
  heat >= plan.p_hot_min || (already_hot && heat >= plan.p_hot_keep)

(* Exponential decay between epochs: halving keeps the sketch responsive to
   rotation (a bucket that stops being touched fades within a few epochs)
   without forgetting a stable hot set. *)
let decay heat =
  for i = 0 to Array.length heat - 1 do
    heat.(i) <- heat.(i) / 2
  done
