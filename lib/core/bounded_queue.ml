(* A bounded blocking queue for handing work between domains (the network
   server's I/O loop and its executor pool). Single lock + two condition
   variables: [push] blocks while full — which is exactly the backpressure
   the producer wants — and [pop] blocks while empty. [close] wakes
   everyone; a closed queue answers [push] with [false] (total, never
   raises — a producer racing [close] must not crash) and drains pops to
   [None]. *)

type 'a t = {
  buf : 'a option array;
  mutable head : int; (* index of the next pop *)
  mutable len : int;
  mutable closed : bool;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Bounded_queue.create: capacity <= 0";
  {
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    closed = false;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let capacity t = Array.length t.buf

let push t x =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  while (not t.closed) && t.len = Array.length t.buf do
    Condition.wait t.not_full t.lock
  done;
  if t.closed then false
  else begin
    t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
    t.len <- t.len + 1;
    Condition.signal t.not_empty;
    true
  end

let pop t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  while t.len = 0 && not t.closed do
    Condition.wait t.not_empty t.lock
  done;
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    Condition.signal t.not_full;
    x
  end

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n = t.len in
  Mutex.unlock t.lock;
  n
