(** FastVer: a verified key-value store (the paper's end-to-end system).

    A {!t} couples the untrusted host machinery — a FASTER-style store for
    data records, per-shard Patricia sparse-Merkle-tree stores for merkle
    records, per-shard verification-log buffers — with the in-enclave
    verifier. The key space is partitioned into [Config.shards] independent
    {e shards} (range partitions by data key, boundaries chosen from the
    loaded key distribution and sealed with the verifier state): each shard
    owns its own Merkle tree, verifier thread, dirty set, frontier cut and
    epoch clock, guarded by its own locks, so operations and verification
    slices on different shards never contend. Every get/put is validated by
    its shard's verifier using the hybrid scheme of §6:

    - hot records ride the {e deferred} tier: O(1) [add_b]/[evict_b] calls
      and a multiset-hash fold, no Merkle hashing;
    - a record's first touch in an epoch pays the Merkle chain from its
      nearest blum-protected ancestor (the depth-[d] frontier), after which
      it is handed to the deferred tier ([evict_bm]);
    - {!verify} runs the verification scan: touched records are re-applied
      to their shard's Merkle tree in sorted key order (§6.3), frontier
      merkle records migrate to the next epoch, each shard seals its own
      epoch-balance certificate, and the per-shard multiset folds aggregate
      into one store-level epoch certificate — bit-identical whether the
      epoch ran on 1 shard or N.

    Operations are {e provisionally} validated when processed; validation
    becomes final when the surrounding epoch verifies. {!Integrity_violation}
    is raised if any verifier check fails — with an honest host that means
    the backing state was tampered with. *)

exception Integrity_violation of string

module Config : module type of Config
(** Re-exported so that [Fastver.Config] is the single entry point. *)

module Auth : module type of Auth
(** Client/verifier MAC encodings (TCB on both ends). *)

module Adaptive : module type of Adaptive
(** The online verification-hierarchy controller (pure decision logic;
    re-exported for tests and operator tooling). *)

module Bounded_queue : module type of Bounded_queue
(** Bounded blocking MPMC queue (re-exported for the network server's
    executor pool). *)

type t

val create : ?config:Config.t -> unit -> t
(** @raise Invalid_argument if [Config.cold_dir] is set but the cold tier
    cannot be opened (unwritable directory, segment size below the record
    overhead). *)

val config : t -> Config.t

val load : t -> (int64 * string) array -> unit
(** Trusted initial load: installs the database (distinct keys) and its
    Merkle root before the system is handed to the untrusted host, then
    pushes the frontier merkle records into the deferred tier. Must be
    called once, before any operation. *)

(** {2 Operations} *)

val get : t -> int64 -> string option
val put : t -> int64 -> string -> unit

val get_key : t -> Key.t -> string option
(** Operate on a full 256-bit data key directly (the int64 API is the
    paper's zero-padded YCSB convenience). *)

val put_key : t -> Key.t -> string -> unit
val delete_key : t -> Key.t -> unit

val scan : t -> int64 -> int -> (int64 * string option) array
(** [scan t k len] reads keys [k .. k+len-1] (YCSB-E style; not atomic, as in
    the paper — neither FastVer nor FASTER is transactional). *)

val delete : t -> int64 -> unit
(** Validated update to the null value (the key reverts to non-existent). *)

(** {2 Authenticated client sessions} *)

module Session : sig
  type session
  (** Client-side state (part of the TCB): the shared secret, the nonce
      counter, and the latest verified epoch certificate. *)

  val connect : t -> client_id:int -> session

  type 'v receipt = {
    value : 'v;
    nonce : int64;
    epoch : int;  (** validation is final once this epoch verifies *)
    mac : string;
  }

  val get : session -> int64 -> string option receipt
  (** Validated read; checks the verifier's MAC before returning.
      @raise Integrity_violation if the receipt does not authenticate. *)

  val put : session -> int64 -> string -> unit receipt
  (** Signed update; the verifier rejects puts without a valid client MAC. *)

  val await_certainty : session -> 'v receipt -> unit
  (** Force a verification scan if needed, and check the epoch certificate
      covering the receipt — after this returns, the result is final, not
      provisional. *)
end

(** {2 Batch submission}

    The serving-path entry point ([lib/net]): a whole batch of decoded
    client requests is driven through the worker loop, then every worker's
    verification-log buffer is drained through the enclave {e once} —
    amortising transition cost over the batch exactly as §7 amortises
    ecalls — and the per-operation validation receipts are collected
    afterwards from per-operation receipt cells (safe under concurrent
    [submit] calls from executor domains).

    Errors isolate per operation: a put with a bad client MAC or replayed
    nonce is rejected at admission, before it can touch verifier state, and
    surfaces as [Failed] without affecting its neighbours. *)

module Batch : sig
  type op =
    | Get of { client : int; nonce : int64; key : int64 }
    | Put of { client : int; nonce : int64; mac : string; key : int64;
               value : string option }
        (** [mac] must be [Auth.put_request] over the operation when
            [authenticate_clients] is set; [value = None] deletes. *)
    | Scan of { client : int; nonce : int64; start : int64; len : int }

  type item = {
    ikey : int64;
    ivalue : string option;
    mutable iepoch : int;
    mutable imac : string;
        (** [Auth.receipt] over the item (empty when auth is disabled). *)
  }

  type reply =
    | Got of item
    | Put_done of item
    | Scanned of item array
    | Failed of string

  val submit : ?worker:int -> ?pre_admitted:bool -> t -> op array -> reply array
  (** [submit t ops] processes every operation (honouring [batch_size]
      verification scans) and returns replies in submission order. Does not
      raise on per-operation integrity failures — they come back as
      [Failed].

      [?worker] is accepted for compatibility and ignored: since sharding,
      every operation routes to the log buffer of the shard owning its key
      ({!owner_of_key}), regardless of which executor drives it.
      [?pre_admitted] skips the gateway admission check on puts — for
      callers that already ran {!admit_put} on the dispatching domain to
      consume client nonces in arrival order; re-checking would burn the
      nonce twice and reject the put as a replay. *)
end

val admit_put :
  t -> client:int -> nonce:int64 -> mac:string -> key:int64 ->
  value:string option -> (unit, string) result
(** Run the gateway admission check (client MAC + nonce freshness) for a
    put without processing it. Used by the server's I/O domain to admit
    puts in per-client arrival order before handing them to executor
    domains via [Batch.submit ~pre_admitted:true]. No-op [Ok ()] when
    client authentication is disabled. *)

val owner_of_key : t -> int64 -> int
(** The shard id owning a data key (the shard whose Merkle tree, verifier,
    log buffer and dirty set its operations touch). Lock-free; the routing
    table is static once {!load} / {!recover} completes. The server uses it
    to route operations to executor domains so each batch stays inside one
    shard's locks. *)

val n_shards : t -> int
(** Number of verifier shards (= [Config.shards config] for a fresh system;
    adopted from the sealed checkpoint payload after {!recover}). *)

type adaptive_shard = {
  a_sid : int;
  a_depth : int;  (** current frontier cut depth (Patricia levels) *)
  a_cache_cap : int;  (** live verifier-cache capacity (entries) *)
  a_hot_keys : int;  (** keys currently carried in the deferred tier *)
  a_frontier : int;  (** blum-protected internal nodes *)
}

val adaptive_state : t -> adaptive_shard array
(** Point-in-time adaptive-controller state per shard (unsynchronised int
    reads; for stats surfacing and tests). Meaningful whether or not the
    controller is enabled — a static run reports its fixed configuration. *)

(** {2 Verification} *)

val verify : t -> string
(** Run the verification scan for the current epoch (§8.1 "batching"):
    migrate deferred records, apply sorted Merkle updates, seal each shard
    and aggregate the shard folds into the store-level epoch certificate,
    which is returned.

    With [n_shards > 1] the scan is parallel end-to-end: each shard's
    sorted dirty set, frontier migration, epoch close and shard seal run on
    the shard's own spawned domain (slice timings land in [worker_busy_s]
    and [fastver_verify_shard_seconds]); only the O(shards) fold
    aggregation and the final certificate MAC stay serial. The multiset
    folds are order-independent, so the certificate is bit-identical to the
    1-shard scan's.

    With [Config.background_verify] the world stops only for the {e seal
    barrier} — an O(shards) section that flushes the log buffers,
    snapshots the per-shard dirty sets and bumps {!live_epoch} — and the
    scan then runs over the sealed snapshot concurrently with foreground
    gets/puts, which immediately fold into the next epoch. [verify] itself
    still blocks its caller until the certificate is sealed (use
    {!verify_async} to overlap); the certificate is bit-identical to the
    quiesced scan's. *)

val verify_async : t -> on_complete:((int * string, exn) result -> unit) -> unit
(** Run the next verification scan on its own domain and return
    immediately. [on_complete] fires on that domain with [(epoch,
    certificate)] — or the raised exception (an [Integrity_violation]
    poisons the verifier, so it also resurfaces on the next operation).
    Scans are serialized: a dispatch while one is in flight queues behind
    it. The spawned domain is joined by the next {!verify},
    {!wait_verify} or {!checkpoint}, so callers that only ever dispatch
    must call {!wait_verify} before discarding the system. *)

val wait_verify : t -> unit
(** Join the outstanding {!verify_async} scan, if any (its result still
    goes to its own [on_complete]). No-op when none is in flight. *)

val verify_in_flight : t -> bool
(** Whether a verification scan is currently queued or running (also
    surfaced as the [fastver_verify_in_flight] gauge). *)

val live_epoch : t -> int
(** The epoch operations fold into right now. Equal to {!current_epoch}
    except while a background scan is in flight, when the verifier still
    holds the sealed epoch open and [live_epoch] is one ahead. *)

val flush : t -> unit
(** Drain every shard's log buffer into its verifier. *)

val current_epoch : t -> int
val check_epoch_certificate : t -> epoch:int -> string -> bool
(** Client-side check of a certificate returned by {!verify}. *)

(** {2 Durability} *)

val checkpoint : t -> dir:string -> (unit, string) result
(** Persist the data records, per-shard merkle records and sealed verifier
    summaries (§7): run after {!verify} so that the on-disk state
    corresponds to a verified epoch. Serializes with verification scans (a
    checkpoint issued during a background scan waits for the scan to
    finish) and evicts all cached merkle records first — so a mid-epoch
    checkpoint under live traffic is well-defined: still-deferred records
    persist with their blum protection state, and recovery re-seeds the
    dirty sets from it. A recovered system therefore resumes from the last
    {e sealed} (checkpointed) epoch; work from any in-flight scan or later
    epoch is simply re-done.

    Crash-safe: each checkpoint is a fresh generation [dir/ckpt-<n>/] whose
    files are written temp-file + fsync + rename and committed by a MANIFEST
    (written last, same protocol) carrying the SHA-256 of every component —
    a crash at any byte offset leaves the previous generation untouched.
    The new generation and its newest {e committed} predecessor are
    retained (a torn attempt in the numeric predecessor slot is never kept
    in place of the last good generation); everything else is pruned.

    Total on I/O and encoding failure: a full disk, an unwritable
    directory, or state that cannot be encoded yields [Error _] with the
    new generation left uncommitted (no manifest, so recovery classifies
    the attempt as torn and the previous generation stays authoritative) —
    the system itself remains live and consistent. Only genuine integrity
    failures ({!Integrity_violation}) and test-injected crashes still
    raise. *)

val recover : ?config:Config.t -> dir:string -> unit -> (t, string) result
(** Rebuild a system from the newest committed checkpoint generation.
    Generations are scanned newest-first; a {e torn} one — no manifest, or
    a manifest that doesn't parse, which is all a crash can leave behind —
    is deleted and skipped. A {e tampered} one — a well-formed manifest
    whose checksums fail, that lacks a component entry, or whose recorded
    generation disagrees with its [ckpt-<n>] directory name — stops
    recovery with [Error _] and is left in place as evidence: silently
    falling back to an older generation would turn one flipped bit into a
    rollback primitive. The verifier summaries are validated against the
    enclave's rollback-protected sealed slot, and the data checkpoint's
    version must match every sealed shard summary's verified epoch. The
    shard count and routing boundaries are adopted from the sealed payload
    ([config.n_shards] only governs fresh systems); a payload from a
    pre-sharding release is rejected with an explicit [Error _]. Total on
    corrupt input: malformed checkpoints yield [Error _], never an
    exception. *)

val err_no_checkpoint : string
(** The exact [Error] payload {!recover} returns when [dir] holds no
    checkpoint at all (missing or empty directory). This is the only
    recovery error after which starting fresh is safe; every other error —
    tampering, corruption, an unsupported legacy layout — means a
    checkpoint exists but could not be trusted, and overwriting it should
    require explicit operator intent. *)

(** {2 String-keyed view}

    The paper assumes 32-byte keys and maps other application key domains
    onto them with a cryptographic hash, transparently to clients (§2.1).
    [String_keys] is that adapter: arbitrary string keys, hashed with
    SHA-256 onto the 256-bit Merkle key space. Range scans are unavailable
    through this view (hashing destroys order), as in the paper. *)

module String_keys : sig
  val key : string -> Key.t
  (** The underlying 256-bit data key for an application key. *)

  val get : t -> string -> string option
  val put : t -> string -> string -> unit
  val delete : t -> string -> unit
end

val set_batch_size : t -> int -> unit
(** Retune the auto-verification cadence on a live store. Replication
    election uses it at promotion: a follower runs with [batch_size = 0]
    (epochs sealed by the primary's stream), and the winner must start
    sealing epochs itself to emit boundary records. Takes effect from the
    next admitted operation.
    @raise Invalid_argument on a negative size. *)

val set_auto_checkpoint : t -> dir:string -> unit
(** Checkpoint after every successful verification scan — the paper's §7
    guarantee that a completed epoch is also a persisted epoch (CPR-aligned
    epochs). A failed auto-checkpoint is logged as a warning; the epoch
    remains verified in memory and the previous generation stays
    authoritative on disk. *)

val clear_auto_checkpoint : t -> unit

(** {2 Replication tee}

    A replication primary installs two hooks. [on_op] fires for every
    applied put ([value = Some _]) or delete ([value = None]), tagged with
    the epoch the op folded into, under the owning shard's worker lock — so
    per-key stream order equals apply order, and every op tagged epoch [e]
    fires before [on_seal] can fire for [e]. [on_seal] fires once per
    verified epoch, in epoch order, carrying the store-level certificate
    (the same value {!verify} returns). Hooks run under core locks: they
    must only hand the event off (append to a leaf-locked log), never
    re-enter this API or block. Bulk {!load} is not teed — an initial
    database is authenticated out of band, exactly as on the primary. *)

val set_replication_hooks :
  t ->
  on_op:(epoch:int -> key:Key.t -> value:string option -> unit) ->
  on_seal:(epoch:int -> cert:string -> unit) ->
  unit

val clear_replication_hooks : t -> unit

(** {2 Statistics} *)

type stats = {
  mutable ops : int;
  mutable gets : int;
  mutable puts : int;
  mutable scans : int;
  mutable blum_fast_path : int;  (** ops served entirely in the deferred tier *)
  mutable merkle_path : int;  (** ops that paid a Merkle chain *)
  mutable verifies : int;
  mutable migrated_data : int;
  mutable migrated_frontier : int;
  mutable verify_time_s : float;  (** total time in verification scans *)
  mutable last_verify_latency_s : float;
  mutable verifier_time_s : float;  (** wall time spent applying verifier ops *)
  mutable cas_retries : int;
  mutable worker_busy_s : float array;
      (** per-shard attributed processing time (indexed by shard id);
          the scalability simulator derives modelled makespans from it *)
  mutable serial_s : float;
      (** inherently serial verification work (fold aggregation and the
          store-level certificate MAC) *)
}

val stats : t -> stats

val registry : t -> Fastver_obs.Registry.t
(** The system's metric registry ({!Fastver_obs}). Always present; hot-path
    recording honours [Config.metrics_enabled]. Core metrics:

    - [fastver_ops_total{tier="blum"|"merkle"|"cached"}] — validated
      elementary ops by the tier that served them; the three sum to the
      number of validated ops ([blum] = deferred fast path, [merkle] = slow
      path that loaded chain records, [cached] = slow path with the whole
      chain already resident in the verifier cache);
    - [fastver_gets_total] / [fastver_puts_total] / [fastver_scans_total],
      [fastver_cas_retries_total], [fastver_verifies_total];
    - [fastver_log_flush_entries], [fastver_verify_scan_seconds],
      [fastver_verify_shard_seconds{shard=...}] (per-shard parallel scan
      slices incl. close/seal), [fastver_verify_touched_records],
      [fastver_verify_pause_seconds] (the foreground pause per
      verification: the whole scan when quiesced, only the seal barrier
      with [background_verify]), [fastver_checkpoint_write_seconds],
      [fastver_recover_seconds] (histograms);
    - [fastver_verify_in_flight] (gauge, 0/1: a scan is queued or
      running);
    - callback-backed: [fastver_epoch], [fastver_verified_epoch],
      [fastver_epoch_certificates_total],
      [fastver_verifier_ops_total{op=...}] (summed over shards),
      [fastver_shard_ops_total{shard=...}] (per-shard totals),
      [fastver_store_records],
      [fastver_store_reads_total], [fastver_store_writes_total],
      [fastver_store_rcu_copies_total], [fastver_store_spill_reads_total],
      [fastver_enclave_overhead_ns].

    [lib/net]'s server registers its own metrics here too. *)

val enclave_overhead_ns : t -> int64
(** Modelled enclave-transition time accumulated so far; add to wall time
    when computing effective throughput. *)

val cold_stats : t -> Fastver_kvstore.Store.Cold.stats option
(** Cold-tier counters (segments, live/dead bytes, authenticated reads,
    GC rewrites); [None] when [Config.cold_dir] is unset. *)

val verifier_stats : t -> Fastver_verifier.Verifier.op_stats
(** Verifier operation counters summed across shards ([n_certificates] is
    the per-shard maximum — every shard seals once per store epoch). *)

val verifier_failure : t -> string option
(** The first shard verifier's recorded poison failure, if any ([None]
    means every shard is healthy). *)

val verified_epoch : t -> int
(** The newest epoch verified by {e every} shard (the store-level verified
    epoch; the minimum over shards). *)

val enclave_handle : t -> Fastver_enclave.Enclave.t
(** The (simulated) enclave shared by all shard verifiers — read-only uses:
    cost accounting, transition counts. *)

(** {2 Parallel runtime}

    The paper's thread model (§5.3, §7): each worker is an OS thread paired
    with its own verifier thread; workers race compare-and-swaps on shared
    records (Example 5.2) and interact only through the store, the Merkle
    tree (coarse lock) and stop-the-world verification scans. Here workers
    are OCaml domains. This is the real shared-memory runtime — on a
    multi-core machine it parallelises; the benchmarks use the modelled
    variant ({!Fastver_simthreads}) because the reproduction container has
    one core.

    Caveats: statistics counters are updated racily by design (they are
    diagnostics); authenticated {!Session}s are not supported inside a
    parallel run. *)

module Parallel : sig
  exception Worker_failed of int * exn

  val run_ycsb :
    t -> spec:Fastver_workload.Ycsb.spec -> db_size:int ->
    ops_per_worker:int -> unit
  (** Drive [ops_per_worker] YCSB operations through every worker
      concurrently, honouring [config.batch_size] verification scans.
      Per-worker generator seeds are derived by mixing the worker id
      through a SplitMix64 finaliser, so any two configured seeds produce
      disjoint per-worker streams (a plain [seed + wid * k] collides for
      seeds differing by [k]).
      @raise Worker_failed if any domain raised. *)
end

(** {2 Batch driver} *)

val run_ops : t -> Fastver_workload.Ycsb.t -> int -> unit
(** Process [n] operations from a YCSB generator, honouring
    [config.batch_size] by running {!verify} between batches. *)

(** {2 Failure injection (tests only)}

    Simulates an adversary with full control of the untrusted host (§2.2).
    Production code has no business here. *)

module Testing : sig
  val corrupt_store : t -> int64 -> string option -> unit
  (** Overwrite a data record directly in the host store, bypassing the
      verifier. The forgery must be detected on the record's next
      validation, or at the latest when its epoch verifies. *)

  val replay_last_put : t -> unit
  (** Re-submit the most recent authenticated put verbatim (nonce replay);
      the gateway must reject it. *)

  val corrupt_merkle_record : t -> Key.t -> unit
  (** Flip a hash inside a stored merkle record. *)

  val some_merkle_key : t -> Key.t option
  (** Any currently merkle-protected internal record. *)

  val enforce_lock_order : bool -> unit
  (** Globally enable the lock-order shadow: every lock acquisition in the
      core checks the documented order — shard tree locks in ascending
      shard id, then worker locks in ascending id, with [bg_lock],
      [redeferred_lock] and [cold_lock] as leaves ([redeferred_lock] and
      [cold_lock] may be taken under tree/worker locks but nothing may be
      taken under them; [bg_lock] may only be taken with nothing held) —
      and raises [Invalid_argument] naming both locks on a violation. Off
      by default (one atomic load per lock operation when off). *)

  val with_tree_lock : t -> (unit -> 'a) -> 'a
  (** Shard 0's tree lock (compatibility alias for single-shard tests). *)

  val with_shard_lock : t -> int -> (unit -> 'a) -> 'a
  val with_worker_lock : t -> int -> (unit -> 'a) -> 'a
  val with_bg_lock : t -> (unit -> 'a) -> 'a
  val with_redeferred_lock : t -> (unit -> 'a) -> 'a
  val with_cold_lock : t -> (unit -> 'a) -> 'a
  (** Order-checked lock acquisition, exposed so tests can provoke
      violations deliberately. *)
end
