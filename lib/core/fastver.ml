open Fastver_verifier
open Fastver_kvstore

exception Integrity_violation of string

module Config = Config
module Auth = Auth
module Adaptive = Adaptive
module Bounded_queue = Bounded_queue
module Reg = Fastver_obs.Registry

(* ------------------------------------------------------------------ *)
(* Protection state in the 64-bit aux field of data records (§7)       *)
(* ------------------------------------------------------------------ *)

let aux_merkle = 0L
let aux_blum ts = Int64.logor Int64.min_int ts
let aux_is_blum aux = Int64.compare aux 0L < 0
let aux_timestamp aux = Int64.logand aux Int64.max_int

(* Host-side protection state of merkle records. [M_cached sid] names the
   shard whose (single) verifier thread holds the record. *)
type mstate = M_merkle | M_blum of Timestamp.t | M_cached of int

type maux = { mutable mstate : mstate; mutable owner : int }
(** [owner >= 0] marks a frontier record and names its shard. *)

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

type meta = {
  client : int;
  nonce : int64;
  mac : string;
  receipt : (string * int) option ref;
      (* validated-result receipt (mac, epoch), written when the op's log
         entry flushes through the enclave. A per-op cell rather than a
         per-worker FIFO: concurrent batch submissions (the server's
         executor pool) would interleave positional queues. *)
}

let mk_meta ~client ~nonce ~mac = { client; nonce; mac; receipt = ref None }

type entry =
  | E_add_b of Key.t * Value.t * Timestamp.t
  | E_evict_b of Key.t * Timestamp.t
  | E_vget of Key.t * string option * meta option
  | E_vput of Key.t * string option * meta option

(* One keyspace partition: its own Merkle tree, its own single-threaded
   verifier (tid is always 0), its own dirty set, frontier and epoch
   clock — and its own pair of locks, so partitions never contend. The
   worker-side mirror state (lru/via/parents/log) lives here too: shard
   routing is forced by key, so a shard {e is} its worker. *)
type shard = {
  sid : int;
  tree : maux Tree.t; (* this partition's merkle records *)
  verifier : Verifier.t; (* n_threads = 1, sharing the system enclave *)
  tree_lock : Mutex.t;
  worker_lock : Mutex.t;
  mutable frontier : Key.t list; (* this shard's frontier merkle keys *)
  mutable clock : Timestamp.t; (* exact mirror of the verifier thread clock *)
  lru : Key_lru.t; (* mirror of the merkle records in the verifier cache *)
  via : [ `M | `B ] Key.Tbl.t;
  parents : Key.t Key.Tbl.t; (* pointing parent of each cached-via-merkle key *)
  mutable log : entry list; (* buffered verifier calls, newest first *)
  mutable log_len : int;
  mutable dirty : Key.t list; (* data keys handed to blum this epoch *)
  mutable dirty_len : int;
  (* Adaptive-controller state. [heat] and the per-epoch tier counters are
     written under [worker_lock] (and only when the config enables the
     controller); the rest is written at the seal barrier under the world
     lock and read by the scan that follows. *)
  mutable cache_cap : int; (* live verifier-cache capacity for this shard *)
  mutable depth : int; (* current frontier cut depth (Patricia levels) *)
  heat : int array; (* Adaptive.buckets-cell per-key-range heat sketch *)
  hot : unit Key.Tbl.t; (* keys currently carried in the deferred tier *)
  mutable plan : Adaptive.plan option; (* decision for the upcoming scan *)
  mutable ops_blum_e : int; (* per-epoch tier attribution for the controller *)
  mutable ops_merkle_e : int;
  mutable ops_cached_e : int;
}

type stats = {
  mutable ops : int;
  mutable gets : int;
  mutable puts : int;
  mutable scans : int;
  mutable blum_fast_path : int;
  mutable merkle_path : int;
  mutable verifies : int;
  mutable migrated_data : int;
  mutable migrated_frontier : int;
  mutable verify_time_s : float;
  mutable last_verify_latency_s : float;
  mutable verifier_time_s : float;
  mutable cas_retries : int;
  mutable worker_busy_s : float array;
      (* per-shard attributed processing time, for scalability modelling *)
  mutable serial_s : float;
      (* inherently serial work: the store-level multiset fold + signature *)
}

(* Replication tee. [on_op] fires for every applied put/delete, under the
   owning shard's worker lock at the instant the op folds into its epoch —
   so for any single key the stream order equals the apply order, and every
   op tagged epoch [e] is teed before [on_seal] can fire for [e] (the seal
   barrier holds all worker locks). [on_seal] fires once per verified epoch,
   in epoch order (serialized by [verify_mutex]), with the store-level
   certificate. Hooks must be lock-free leaf code: they run under core
   locks. *)
type replication = {
  on_op : epoch:int -> key:Key.t -> value:string option -> unit;
  on_seal : epoch:int -> cert:string -> unit;
}

type t = {
  mutable config : Config.t;
      (* mutable only for [set_batch_size]: election promotion re-enables
         auto-sealing on a live store that was created as a follower
         (batch_size 0). The field swap is a single word store of an
         immutable record, so concurrent readers see either value whole. *)
  enclave : Enclave.t;
  shards : shard array;
  mutable boundaries : Key.t array;
      (* [n_shards - 1] sorted data keys partitioning the keyspace into
         ranges; shard [i] owns keys in [boundaries.(i-1), boundaries.(i)).
         Computed from key quantiles at load time and sealed inside the
         enclave payload at checkpoint: routing decides which shard proves
         a key's (non-)existence, so a tampered boundary would let the host
         ask the wrong shard for a false absence proof. *)
  store : string option Store.t; (* data records; None = null value *)
  auth : Auth.key;
  nonces : (int, int64) Hashtbl.t; (* gateway: last put nonce per client *)
  sealed : Enclave.Sealed_slot.slot;
  mutable loaded : bool;
  gateway_lock : Mutex.t;
  ops_since_verify : int Atomic.t;
  live_epoch : int Atomic.t;
      (* the epoch operations are folding into right now. Trails the
         verifiers' current epoch during a background scan: the seal barrier
         bumps it to [e+1] while the verifiers still hold epoch [e] open
         until the scan closes it. Equal to the verifiers' current epoch
         whenever no scan is in flight. *)
  verify_mutex : Mutex.t;
      (* serializes verification scans and checkpoints with each other;
         acquired before (never inside) the shard locks *)
  verify_inflight : bool Atomic.t;
  bg_lock : Mutex.t;
      (* guards the [bg_join] handoff so racing dispatchers cannot leak an
         unjoined domain; nothing else may be acquired while held *)
  bg_join : unit Domain.t option Atomic.t;
      (* the background scan domain, if one was spawned; joined by the next
         verify/checkpoint/shutdown so domains never leak *)
  mutable redeferred : Key.t list;
  redeferred_lock : Mutex.t;
      (* leaf lock (no other lock taken while held): data keys whose
         fast-path touch crossed the epoch boundary during a background
         scan; the next seal barrier routes them to their shards' dirty
         snapshots *)
  mutable on_verified : (unit -> unit) option;
      (* e.g. auto-checkpoint: runs after each successful scan *)
  mutable repl : replication option;
      (* replication tee, if a primary is streaming this store *)
  cold : Store.Cold.t option;
  cold_lock : Mutex.t;
      (* serialises cold maintenance (demotion + compaction) with itself
         and with checkpointing, so one demotion pass's segment rotations
         are never interleaved with another's manifest encoding *)
  stats : stats;
  metrics : Metrics.t;
}

(* Callback-backed metrics: surface the subsystems' own counters at render
   time instead of double-accounting them on the hot path. Runs once per
   system (both constructors); re-registration on the same registry is
   idempotent. *)
let wire_metrics t =
  let module V = Fastver_verifier.Verifier in
  let reg = Metrics.registry t.metrics in
  Reg.gauge_fn reg ~help:"Current (in-progress) epoch" "fastver_epoch"
    (fun () -> float_of_int (V.current_epoch t.shards.(0).verifier));
  Reg.gauge_fn reg ~help:"Newest verified epoch" "fastver_verified_epoch"
    (fun () ->
      float_of_int
        (Array.fold_left
           (fun acc sh -> min acc (V.verified_epoch sh.verifier))
           max_int t.shards));
  (* Epochs certify in lockstep across shards, so shard 0 counts them all. *)
  Reg.counter_fn reg ~help:"Epoch certificates issued"
    "fastver_epoch_certificates_total" (fun () ->
      (V.stats t.shards.(0).verifier).n_certificates);
  let sum read =
    Array.fold_left (fun acc sh -> acc + read (V.stats sh.verifier)) 0 t.shards
  in
  List.iter
    (fun (op, read) ->
      Reg.counter_fn reg
        ~labels:[ ("op", op) ]
        ~help:"In-enclave verifier calls by operation"
        "fastver_verifier_ops_total"
        (fun () -> sum read))
    [
      ("add_m", fun (s : V.op_stats) -> s.n_add_m);
      ("evict_m", fun s -> s.n_evict_m);
      ("add_b", fun s -> s.n_add_b);
      ("evict_b", fun s -> s.n_evict_b);
      ("evict_bm", fun s -> s.n_evict_bm);
      ("vget", fun s -> s.n_vget);
      ("vput", fun s -> s.n_vput);
    ];
  Array.iter
    (fun sh ->
      Reg.counter_fn reg
        ~labels:[ ("shard", string_of_int sh.sid) ]
        ~help:"In-enclave verifier calls by shard"
        "fastver_shard_ops_total"
        (fun () ->
          let s = V.stats sh.verifier in
          s.n_add_m + s.n_evict_m + s.n_add_b + s.n_evict_b + s.n_evict_bm
          + s.n_vget + s.n_vput))
    t.shards;
  (* Adaptive-controller decision surfaces. The bytes figure is a nominal
     footprint (entries x a conservative 128 B/record: 34 B encoded key +
     value/pointer payload + table overhead) so operators can watch the
     budget without the verifier exposing its allocator. *)
  let cache_entry_bytes = 128 in
  Array.iter
    (fun sh ->
      let labels = [ ("shard", string_of_int sh.sid) ] in
      Reg.gauge_fn reg ~labels
        ~help:"Live verifier-cache capacity (entries)"
        "fastver_adaptive_cache_capacity" (fun () ->
          float_of_int sh.cache_cap);
      Reg.gauge_fn reg ~labels
        ~help:"Frontier cut depth (Patricia levels)" "fastver_adaptive_depth"
        (fun () -> float_of_int sh.depth);
      Reg.gauge_fn reg ~labels
        ~help:"Keys currently carried in the deferred tier"
        "fastver_adaptive_hot_keys" (fun () ->
          float_of_int (Key.Tbl.length sh.hot)))
    t.shards;
  Reg.gauge_fn reg
    ~help:"Nominal verifier-cache footprint across shards (bytes)"
    "fastver_adaptive_cache_bytes" (fun () ->
      float_of_int
        (cache_entry_bytes
        * Array.fold_left (fun a sh -> a + sh.cache_cap) 0 t.shards));
  Reg.gauge_fn reg ~help:"Live data records in the host store"
    "fastver_store_records" (fun () ->
      float_of_int (Fastver_kvstore.Store.length t.store));
  Reg.counter_fn reg ~help:"Host store reads" "fastver_store_reads_total"
    (fun () -> (Fastver_kvstore.Store.stats t.store).reads);
  Reg.counter_fn reg ~help:"Host store writes" "fastver_store_writes_total"
    (fun () -> (Fastver_kvstore.Store.stats t.store).writes);
  Reg.counter_fn reg
    ~help:"Updates that appended a new immutable version"
    "fastver_store_rcu_copies_total" (fun () ->
      (Fastver_kvstore.Store.stats t.store).rcu_copies);
  Reg.counter_fn reg ~help:"Gets served from the spill file"
    "fastver_store_spill_reads_total" (fun () ->
      (Fastver_kvstore.Store.stats t.store).spill_reads);
  (* Registered whether or not a cold tier is attached, so the documented
     fastver_cold_* names are always present in a snapshot. *)
  Store.Cold.wire_metrics t.cold reg;
  Reg.gauge_fn reg
    ~help:"Modelled enclave-transition nanoseconds accumulated"
    "fastver_enclave_overhead_ns" (fun () ->
      Int64.to_float (Enclave.charged_ns t.enclave));
  (* Register the per-shard scan-slice series eagerly so every shard's
     histogram is present in snapshots before the first verification scan. *)
  for sid = 0 to Array.length t.shards - 1 do
    ignore (Metrics.verify_shard_seconds t.metrics ~sid)
  done

let option_codec : string option Store.codec =
  {
    encode = (function None -> "\x00" | Some v -> "\x01" ^ v);
    decode =
      (fun s ->
        if s = "\x00" then None else Some (String.sub s 1 (String.length s - 1)));
  }

(* Open the cold tier named by the configuration. [manifest] is the
   committed cold manifest when recovering from a checkpoint; [None] means a
   fresh start, where any leftover segment files are uncommitted garbage. *)
let cold_of_config ?manifest (config : Config.t) =
  match config.cold_dir with
  | None -> Ok None
  | Some dir -> (
      let ccfg =
        {
          Store.Cold.dir;
          mac_secret = config.mac_secret;
          segment_bytes = config.cold_segment_bytes;
        }
      in
      match manifest with
      | Some m -> Result.map Option.some (Store.Cold.recover ccfg ~manifest:m)
      | None ->
          Result.map Option.some (Store.Cold.create ~clear_stray:true ccfg))

let vconfig_of (config : Config.t) =
  {
    Verifier.n_threads = 1;
    cache_capacity = config.cache_capacity;
    algo = config.algo;
    mac_secret = config.mac_secret;
    mset_secret = config.mset_secret;
  }

let mk_shard ?tree verifier sid =
  let tree =
    match tree with
    | Some tr -> tr
    | None -> Tree.create ~root_aux:{ mstate = M_cached sid; owner = -1 }
  in
  {
    sid;
    tree;
    verifier;
    tree_lock = Mutex.create ();
    worker_lock = Mutex.create ();
    frontier = [];
    clock = Verifier.clock verifier ~tid:0;
    lru = Key_lru.create ();
    via = Key.Tbl.create 64;
    parents = Key.Tbl.create 64;
    log = [];
    log_len = 0;
    dirty = [];
    dirty_len = 0;
    cache_cap = Verifier.cache_capacity verifier;
    depth = 0;
    heat = Array.make Adaptive.buckets 0;
    hot = Key.Tbl.create 64;
    plan = None;
    ops_blum_e = 0;
    ops_merkle_e = 0;
    ops_cached_e = 0;
  }

let mk_stats n_sh =
  {
    ops = 0;
    gets = 0;
    puts = 0;
    scans = 0;
    blum_fast_path = 0;
    merkle_path = 0;
    verifies = 0;
    migrated_data = 0;
    migrated_frontier = 0;
    verify_time_s = 0.0;
    last_verify_latency_s = 0.0;
    verifier_time_s = 0.0;
    cas_retries = 0;
    worker_busy_s = Array.make n_sh 0.0;
    serial_s = 0.0;
  }

let create ?(config = Config.default) () =
  let enclave = Enclave.create config.cost_model in
  let cold =
    match cold_of_config config with
    | Ok c -> c
    | Error e -> invalid_arg ("Fastver.create: " ^ e)
  in
  let n_sh = Config.shards config in
  let vconfig = vconfig_of config in
  let t =
    {
      config;
      enclave;
      shards =
        Array.init n_sh (fun sid ->
            mk_shard (Verifier.create ~enclave vconfig) sid);
      boundaries = [||];
      store = Store.create ?cold ~codec:option_codec ();
      auth = Auth.key_of_secret config.mac_secret;
      nonces = Hashtbl.create 8;
      sealed = Enclave.Sealed_slot.create ();
      loaded = false;
      gateway_lock = Mutex.create ();
      ops_since_verify = Atomic.make 0;
      live_epoch = Atomic.make 0;
      verify_mutex = Mutex.create ();
      verify_inflight = Atomic.make false;
      bg_lock = Mutex.create ();
      bg_join = Atomic.make None;
      redeferred = [];
      redeferred_lock = Mutex.create ();
      on_verified = None;
      repl = None;
      cold;
      cold_lock = Mutex.create ();
      stats = mk_stats n_sh;
      metrics = Metrics.create ~enabled:config.metrics_enabled ();
    }
  in
  wire_metrics t;
  t

let config t = t.config
let stats t = t.stats
let registry t = Metrics.registry t.metrics
let n_shards t = Array.length t.shards

type adaptive_shard = {
  a_sid : int;
  a_depth : int;
  a_cache_cap : int;
  a_hot_keys : int;
  a_frontier : int;
}

(* Unsynchronised int reads: a point-in-time picture for stats and tests. *)
let adaptive_state t =
  Array.map
    (fun sh ->
      {
        a_sid = sh.sid;
        a_depth = sh.depth;
        a_cache_cap = sh.cache_cap;
        a_hot_keys = Key.Tbl.length sh.hot;
        a_frontier = List.length sh.frontier;
      })
    t.shards
let enclave_handle t = t.enclave
let enclave_overhead_ns t = Enclave.charged_ns t.enclave
let cold_stats t = Option.map Store.Cold.stats t.cold
let current_epoch t = Verifier.current_epoch t.shards.(0).verifier

let verified_epoch t =
  Array.fold_left
    (fun acc sh -> min acc (Verifier.verified_epoch sh.verifier))
    max_int t.shards

let verifier_failure t =
  Array.fold_left
    (fun acc sh ->
      match acc with Some _ -> acc | None -> Verifier.failure sh.verifier)
    None t.shards

let verifier_stats t =
  let acc =
    {
      Verifier.n_add_m = 0;
      n_evict_m = 0;
      n_add_b = 0;
      n_evict_b = 0;
      n_evict_bm = 0;
      n_vget = 0;
      n_vput = 0;
      n_certificates = 0;
    }
  in
  Array.iter
    (fun sh ->
      let s = Verifier.stats sh.verifier in
      acc.n_add_m <- acc.n_add_m + s.n_add_m;
      acc.n_evict_m <- acc.n_evict_m + s.n_evict_m;
      acc.n_add_b <- acc.n_add_b + s.n_add_b;
      acc.n_evict_b <- acc.n_evict_b + s.n_evict_b;
      acc.n_evict_bm <- acc.n_evict_bm + s.n_evict_bm;
      acc.n_vget <- acc.n_vget + s.n_vget;
      acc.n_vput <- acc.n_vput + s.n_vput;
      acc.n_certificates <- max acc.n_certificates s.n_certificates)
    t.shards;
  acc

let live_epoch t = Atomic.get t.live_epoch

(* Replication tee call sites. No-ops unless a primary installed hooks. *)
let repl_op t ~epoch ~key ~value =
  match t.repl with None -> () | Some r -> r.on_op ~epoch ~key ~value

let repl_seal t ~epoch ~cert =
  match t.repl with None -> () | Some r -> r.on_seal ~epoch ~cert

let set_replication_hooks t ~on_op ~on_seal =
  t.repl <- Some { on_op; on_seal }

let clear_replication_hooks t = t.repl <- None
let verify_in_flight t = Atomic.get t.verify_inflight

let ok = function Ok x -> x | Error e -> raise (Integrity_violation e)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Shadow of the documented lock order — shard tree locks in ascending sid,
   then worker locks in ascending sid ([merkle_slow], [verify_inner] and
   [checkpoint] all follow it); [redeferred_lock] and [cold_lock] come
   after the world (redeferred under any shard/worker lock, cold under the
   world lock), and both are leaves: nothing is acquired while they are
   held. [bg_lock] stands alone: it is only ever taken with nothing held,
   and nothing is acquired under it. Each domain tracks what it holds in
   domain-local state; enforcement is off by default (a single [Atomic.get]
   per lock operation) and switched on by tests via
   [Testing.enforce_lock_order]. A violation raises [Invalid_argument] at
   the acquisition that breaks the order, naming both locks. *)
module Lock_order = struct
  type held = {
    mutable trees : int list; (* desc *)
    mutable workers : int list; (* desc *)
    mutable bg : bool;
    mutable redeferred : bool;
    mutable cold : bool;
  }

  let enforce = Atomic.make false

  let dls =
    Domain.DLS.new_key (fun () ->
        { trees = []; workers = []; bg = false; redeferred = false;
          cold = false })

  let fail fmt = Printf.ksprintf invalid_arg ("lock order: " ^^ fmt)

  (* Locks under which nothing further may be acquired. *)
  let leaf_held h =
    if h.bg then Some "bg_lock"
    else if h.redeferred then Some "redeferred_lock"
    else if h.cold then Some "cold_lock"
    else None

  let check_leaf h what =
    match leaf_held h with
    | Some l -> fail "%s requested while holding %s" what l
    | None -> ()

  let note_tree_lock sid =
    if Atomic.get enforce then begin
      let h = Domain.DLS.get dls in
      check_leaf h (Printf.sprintf "shard tree lock %d" sid);
      (match h.workers with
      | wid :: _ ->
          fail "shard tree lock %d requested while holding worker lock %d" sid
            wid
      | [] -> ());
      (match h.trees with
      | top :: _ when top >= sid ->
          fail "shard tree lock %d requested while holding shard tree lock %d"
            sid top
      | _ -> ());
      h.trees <- sid :: h.trees
    end

  let note_tree_unlock sid =
    if Atomic.get enforce then begin
      let h = Domain.DLS.get dls in
      h.trees <- List.filter (fun s -> s <> sid) h.trees
    end

  let note_worker_lock wid =
    if Atomic.get enforce then begin
      let h = Domain.DLS.get dls in
      check_leaf h (Printf.sprintf "worker lock %d" wid);
      (match h.workers with
      | top :: _ when top >= wid ->
          fail "worker lock %d requested while holding worker lock %d" wid top
      | _ -> ());
      h.workers <- wid :: h.workers
    end

  let note_worker_unlock wid =
    if Atomic.get enforce then begin
      let h = Domain.DLS.get dls in
      h.workers <- List.filter (fun w -> w <> wid) h.workers
    end

  let note_bg_lock () =
    if Atomic.get enforce then begin
      let h = Domain.DLS.get dls in
      check_leaf h "bg_lock";
      (match h.trees with
      | sid :: _ -> fail "bg_lock requested while holding shard tree lock %d" sid
      | [] -> ());
      (match h.workers with
      | wid :: _ -> fail "bg_lock requested while holding worker lock %d" wid
      | [] -> ());
      h.bg <- true
    end

  let note_bg_unlock () =
    if Atomic.get enforce then (Domain.DLS.get dls).bg <- false

  (* Acquirable under shard/worker locks (the fast path parks keys while
     holding its worker lock; the seal barrier routes them under the world
     lock) — but itself a leaf. *)
  let note_redeferred_lock () =
    if Atomic.get enforce then begin
      let h = Domain.DLS.get dls in
      check_leaf h "redeferred_lock";
      h.redeferred <- true
    end

  let note_redeferred_unlock () =
    if Atomic.get enforce then (Domain.DLS.get dls).redeferred <- false

  (* Acquirable under the world lock (checkpoint commits the cold manifest
     with the world stopped) — but itself a leaf. *)
  let note_cold_lock () =
    if Atomic.get enforce then begin
      let h = Domain.DLS.get dls in
      check_leaf h "cold_lock";
      h.cold <- true
    end

  let note_cold_unlock () =
    if Atomic.get enforce then (Domain.DLS.get dls).cold <- false
end

let with_shard_lock t sid f =
  Lock_order.note_tree_lock sid;
  Mutex.lock t.shards.(sid).tree_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.shards.(sid).tree_lock;
      Lock_order.note_tree_unlock sid)
    f

let with_worker_lock t wid f =
  Lock_order.note_worker_lock wid;
  Mutex.lock t.shards.(wid).worker_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.shards.(wid).worker_lock;
      Lock_order.note_worker_unlock wid)
    f

let with_bg_lock t f =
  Lock_order.note_bg_lock ();
  Mutex.lock t.bg_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.bg_lock;
      Lock_order.note_bg_unlock ())
    f

let with_redeferred_lock t f =
  Lock_order.note_redeferred_lock ();
  Mutex.lock t.redeferred_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.redeferred_lock;
      Lock_order.note_redeferred_unlock ())
    f

let with_cold_lock t f =
  Lock_order.note_cold_lock ();
  Mutex.lock t.cold_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.cold_lock;
      Lock_order.note_cold_unlock ())
    f

(* Stop-the-world acquisition (verification scans, checkpoints): every
   shard tree lock in ascending sid, then every worker lock in ascending
   sid — the same order [merkle_slow] uses for its single shard. *)
let lock_world t =
  Array.iter
    (fun sh ->
      Lock_order.note_tree_lock sh.sid;
      Mutex.lock sh.tree_lock)
    t.shards;
  Array.iter
    (fun sh ->
      Lock_order.note_worker_lock sh.sid;
      Mutex.lock sh.worker_lock)
    t.shards

let unlock_world t =
  Array.iter
    (fun sh ->
      Mutex.unlock sh.worker_lock;
      Lock_order.note_worker_unlock sh.sid)
    t.shards;
  Array.iter
    (fun sh ->
      Mutex.unlock sh.tree_lock;
      Lock_order.note_tree_unlock sh.sid)
    t.shards

let now = Unix.gettimeofday

let maux sh k = (Tree.get_exn sh.tree k).aux

(* Mirror the verifier's Lamport-clock rules so the host can predict evict
   timestamps without a verifier round trip (§5.3). *)
let mirror_add_b sh ts = sh.clock <- Timestamp.max sh.clock (Timestamp.next ts)

(* ------------------------------------------------------------------ *)
(* Routing: keyspace partitioning                                      *)
(* ------------------------------------------------------------------ *)

(* The shard owning [key]: the number of range boundaries <= key (binary
   search). Total by construction — every key lands in exactly one shard,
   whatever bytes it holds — and lock-free: boundaries are immutable after
   load/recover, so external dispatchers (the server's executor pool)
   route without coordination. *)
let shard_of_data_key t key =
  let b = t.boundaries in
  let lo = ref 0 and hi = ref (Array.length b) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Key.compare b.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let owner_of_key t k = shard_of_data_key t (Key.of_int64 k)

(* Boundaries for an empty load: evenly spaced top-byte cuts. Real loads
   use key quantiles instead (uniform cuts would put every key in one
   shard under [Key.of_int64], which populates the low bits). *)
let synth_boundaries n =
  Array.init (n - 1) (fun i ->
      let b = Bytes.make 32 '\x00' in
      Bytes.set b 0 (Char.chr ((i + 1) * 256 / n mod 256));
      Key.of_bytes32 (Bytes.to_string b))

(* ------------------------------------------------------------------ *)
(* Gateway: client authentication inside the enclave                   *)
(* ------------------------------------------------------------------ *)

let last_put : (Key.t * string option * meta) option ref = ref None

let gateway_check_put t key value meta =
  (match meta with Some m -> last_put := Some (key, value, m) | None -> ());
  match meta with
  | Some m when t.config.authenticate_clients ->
      with_lock t.gateway_lock (fun () ->
          let last =
            Option.value
              (Hashtbl.find_opt t.nonces m.client)
              ~default:Int64.min_int
          in
          if Int64.compare m.nonce last <= 0 then
            raise (Integrity_violation "gateway: put nonce replayed");
          let v = match value with Some v -> v | None -> "" in
          let expected =
            Auth.put_request t.auth ~client:m.client ~nonce:m.nonce key v
          in
          if not (Auth.check ~expected m.mac) then
            raise (Integrity_violation "gateway: bad client signature on put");
          Hashtbl.replace t.nonces m.client m.nonce)
  | Some _ | None -> ()

let gateway_receipt t ~kind key value meta =
  match meta with
  | Some m when t.config.authenticate_clients ->
      (* The live epoch, not the verifier's: during a background scan the
         verifier still holds the sealed epoch open, but this op folds into
         the live one — a receipt stamped with the sealed epoch could claim
         certainty one epoch early. Reading one epoch late is merely
         conservative. *)
      let epoch = Atomic.get t.live_epoch in
      let mac =
        Auth.receipt t.auth ~kind ~client:m.client ~nonce:m.nonce key value
          ~epoch
      in
      m.receipt := Some (mac, epoch)
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Verification log                                                    *)
(* ------------------------------------------------------------------ *)

let apply_entry t sh = function
  | E_add_b (k, v, ts) ->
      ok (Verifier.add_b sh.verifier ~tid:0 ~key:k ~value:v ~timestamp:ts)
  | E_evict_b (k, ts) ->
      ok (Verifier.evict_b sh.verifier ~tid:0 ~key:k ~timestamp:ts)
  | E_vget (k, v, meta) ->
      ok (Verifier.vget sh.verifier ~tid:0 ~key:k v);
      gateway_receipt t ~kind:Auth.Get k v meta
  | E_vput (k, v, meta) ->
      ok (Verifier.vput sh.verifier ~tid:0 ~key:k v);
      gateway_receipt t ~kind:Auth.Put k v meta

let flush_worker t sh =
  if sh.log_len > 0 then begin
    Metrics.flush t.metrics sh.log_len;
    let entries = List.rev sh.log in
    sh.log <- [];
    sh.log_len <- 0;
    let t0 = now () in
    Enclave.call t.enclave (fun () -> List.iter (apply_entry t sh) entries);
    t.stats.verifier_time_s <- t.stats.verifier_time_s +. (now () -. t0)
  end

let push t sh e =
  sh.log <- e :: sh.log;
  sh.log_len <- sh.log_len + 1;
  if sh.log_len >= t.config.log_buffer_size then flush_worker t sh

(* Drain all buffers; takes each shard's worker lock (callers already
   inside a worker lock use [flush_worker] directly). *)
let flush t =
  Array.iter
    (fun sh -> with_worker_lock t sh.sid (fun () -> flush_worker t sh))
    t.shards

let _ = flush

(* ------------------------------------------------------------------ *)
(* Mirror cache management (direct, in-enclave sections)               *)
(* ------------------------------------------------------------------ *)

(* Update the host copy of [parent]'s slot with a pointer computed and
   returned by the verifier (the eviction hand-back of §4.3). *)
let apply_ptr sh parent (ptr : Value.ptr) =
  let pe = Tree.get_exn sh.tree parent in
  match pe.value with
  | Value.Node n ->
      let d = Key.dir ptr.key ~ancestor:parent in
      pe.value <- Value.Node (Value.set_slot n d (Some ptr))
  | Value.Data _ -> assert false

let mark_in_blum sh parent key =
  let pe = Tree.get_exn sh.tree parent in
  match pe.value with
  | Value.Node n -> (
      let d = Key.dir key ~ancestor:parent in
      match Value.slot n d with
      | Some p when Key.equal p.key key ->
          pe.value <- Value.Node (Value.set_slot n d (Some { p with in_blum = true }))
      | Some _ | None -> assert false)
  | Value.Data _ -> assert false

let decr_parent_children sh parent =
  match Key_lru.find sh.lru parent with
  | Some pe -> Key_lru.decr_children pe
  | None -> assert (Key.equal parent Key.root)

(* Evict one merkle record from the verifier cache (and its mirror). *)
let evict_mirror _t sh e ~epoch_floor =
  let k = Key_lru.key e in
  assert (Key_lru.children e = 0);
  (match Key.Tbl.find sh.via k with
  | `M ->
      let parent = Key.Tbl.find sh.parents k in
      let ptr = ok (Verifier.evict_m sh.verifier ~tid:0 ~key:k ~parent) in
      apply_ptr sh parent ptr;
      decr_parent_children sh parent;
      (maux sh k).mstate <- M_merkle
  | `B ->
      let ts' = Timestamp.max sh.clock (Timestamp.first_of_epoch epoch_floor) in
      ok (Verifier.evict_b sh.verifier ~tid:0 ~key:k ~timestamp:ts');
      sh.clock <- ts';
      (maux sh k).mstate <- M_blum ts');
  Key_lru.remove sh.lru e;
  Key.Tbl.remove sh.via k;
  Key.Tbl.remove sh.parents k

let ensure_room t sh ?protect () =
  (* Keep two slots of headroom: one for the record being added, one for the
     transient data record of the operation in flight. *)
  while Key_lru.length sh.lru >= sh.cache_cap - 2 do
    match Key_lru.victim ?exclude:protect sh.lru with
    | Some e ->
        (* Evictions must land in the live epoch: during a background scan
           of the sealed epoch, an evict timestamped into the sealed epoch
           would add an element the in-flight scan can no longer balance. *)
        evict_mirror t sh e ~epoch_floor:(Atomic.get t.live_epoch)
    | None ->
        raise
          (Integrity_violation
             "verifier cache too small for the active merkle chain")
  done

(* Make every merkle record on [path] (root-first, ending at the pointing
   parent) resident in [sh]'s verifier cache; returns the pointing parent.
   [loaded] counts chain records that were not already resident — the
   operation's tier attribution hinges on it. *)
let ensure_chain ?loaded t sh path =
  let note_load () =
    match loaded with Some r -> incr r | None -> ()
  in
  let arr = Array.of_list path in
  let n = Array.length arr in
  (* The deepest node already cached or blum-protected anchors the chain:
     everything below it is plain merkle-protected. Each shard's verifier
     pins its own tree's root, so the root always anchors. *)
  let rec find_anchor i =
    if i < 0 then -1
    else
      let k = arr.(i) in
      if Key.equal k Key.root then i
      else if Key_lru.mem sh.lru k then i
      else
        match (maux sh k).mstate with
        | M_blum _ -> i
        | M_merkle -> find_anchor (i - 1)
        | M_cached sid ->
            raise
              (Integrity_violation
                 (Fmt.str "routing: %a marked cached in shard %d but absent \
                           from its mirror" Key.pp k sid))
  in
  let anchor = find_anchor (n - 1) in
  if anchor < 0 then
    raise (Integrity_violation "routing: chain has no anchor for this shard");
  for j = anchor to n - 1 do
    let k = arr.(j) in
    if Key.equal k Key.root then () (* pinned in the shard's thread 0 *)
    else
      match Key_lru.find sh.lru k with
      | Some e -> Key_lru.touch sh.lru e
      | None -> (
          let entry = Tree.get_exn sh.tree k in
          match entry.aux.mstate with
          | M_blum ts ->
              note_load ();
              ensure_room t sh ();
              ok
                (Verifier.add_b sh.verifier ~tid:0 ~key:k ~value:entry.value
                   ~timestamp:ts);
              mirror_add_b sh ts;
              ignore (Key_lru.add sh.lru k);
              Key.Tbl.replace sh.via k `B;
              entry.aux.mstate <- M_cached sh.sid
          | M_merkle ->
              note_load ();
              let parent = arr.(j - 1) in
              ensure_room t sh ~protect:parent ();
              let installed =
                ok
                  (Verifier.add_m sh.verifier ~tid:0 ~key:k
                     ~value:entry.value ~parent)
              in
              assert (installed = None);
              ignore (Key_lru.add sh.lru k);
              Key.Tbl.replace sh.via k `M;
              Key.Tbl.replace sh.parents k parent;
              (match Key_lru.find sh.lru parent with
              | Some pe -> Key_lru.incr_children pe
              | None -> assert (Key.equal parent Key.root));
              entry.aux.mstate <- M_cached sh.sid
          | M_cached _ -> assert false)
  done;
  arr.(n - 1)

(* ------------------------------------------------------------------ *)
(* Operation processing                                                *)
(* ------------------------------------------------------------------ *)

type action = A_get of meta option | A_put of string option * meta option

exception Raced
(* The record changed protection tier between the optimistic read and the
   lock acquisition (a verification scan migrated it, §5.3's CAS races);
   the operation is retried from routing. *)

(* Fast path: the record rides the deferred tier — one CAS plus three O(1)
   log entries, no Merkle hashing (§5.3). *)
let rec blum_fast t sh key cur ts action =
  (* The evict must land in the live epoch: while a background scan has the
     previous epoch sealed but still open in the verifier, a re-touch of a
     record whose timestamp predates the seal would otherwise evict back
     into the sealed epoch — an element the in-flight scan's snapshot can
     no longer balance. *)
  let clock' = Timestamp.max sh.clock (Timestamp.next ts) in
  let ts' =
    Timestamp.max clock' (Timestamp.first_of_epoch (Atomic.get t.live_epoch))
  in
  let new_v = match action with A_get _ -> cur | A_put (v, _) -> v in
  if
    Store.try_cas t.store key ~expected_aux:(aux_blum ts) new_v
      ~aux:(aux_blum ts')
  then begin
    sh.clock <- ts';
    push t sh (E_add_b (key, Value.Data cur, ts));
    (match action with
    | A_get meta -> push t sh (E_vget (key, cur, meta))
    | A_put (v, meta) -> push t sh (E_vput (key, v, meta)));
    push t sh (E_evict_b (key, ts'));
    (match action with
    | A_put (v, _) -> repl_op t ~epoch:(Timestamp.epoch ts') ~key ~value:v
    | A_get _ -> ());
    if Timestamp.epoch ts < Timestamp.epoch ts' then
      (* The touch crossed the epoch boundary (only possible while a
         background scan is in flight): the [add_b] above balances the
         sealed epoch's evict of this record, and the new evict lands in
         the live epoch — so the record must re-enter the live epoch's
         dirty set or that evict would never be balanced. The shard's
         dirty list is snapshotted by the seal barrier; park the key in a
         leaf-locked side list that the next seal barrier routes back to
         its shard's snapshot. Exactly one touch per record crosses (the
         next one sees both timestamps in the live epoch). *)
      with_redeferred_lock t (fun () -> t.redeferred <- key :: t.redeferred);
    if t.config.adaptive then begin
      sh.ops_blum_e <- sh.ops_blum_e + 1;
      let b = Adaptive.bucket key in
      sh.heat.(b) <- sh.heat.(b) + 1
    end;
    Metrics.tier t.metrics Metrics.Blum;
    cur
  end
  else begin
    (* Another domain won the CAS; retry against the fresh state. *)
    t.stats.cas_retries <- t.stats.cas_retries + 1;
    Metrics.cas_retry t.metrics;
    match ok (Store.get t.store key) with
    | Some (cur', aux) when aux_is_blum aux ->
        blum_fast t sh key cur' (aux_timestamp aux) action
    | Some _ | None -> raise Raced
  end

(* Validate the client-visible operation against the cached record. *)
let client_validate t sh key cur action =
  match action with
  | A_get meta ->
      ok (Verifier.vget sh.verifier ~tid:0 ~key cur);
      gateway_receipt t ~kind:Auth.Get key cur meta;
      cur
  | A_put (v, meta) ->
      ok (Verifier.vput sh.verifier ~tid:0 ~key v);
      gateway_receipt t ~kind:Auth.Put key v meta;
      v

(* Hand the (cached, just-validated) data record to the deferred tier for the
   rest of the epoch (§6.1: touched records are hot). *)
let defer_data t sh key parent new_v =
  (* Same live-epoch floor as [blum_fast]: during a background scan the
     deferral's evict may not land in the sealed epoch. *)
  let ts' =
    Timestamp.max sh.clock (Timestamp.first_of_epoch (Atomic.get t.live_epoch))
  in
  ok (Verifier.evict_bm sh.verifier ~tid:0 ~key ~timestamp:ts' ~parent);
  sh.clock <- ts';
  mark_in_blum sh parent key;
  Store.put t.store key new_v ~aux:(aux_blum ts');
  sh.dirty <- key :: sh.dirty;
  sh.dirty_len <- sh.dirty_len + 1

(* Slow path: the record is merkle-protected (first touch this epoch), or
   absent. Pays the chain from the nearest blum anchor (§6). Takes the
   shard's tree lock, then its worker lock; if the record turned
   blum-protected while we raced for the locks (another domain's first
   touch), returns [None] and the caller retries on the fast path. *)
let merkle_slow t sh key action =
  with_shard_lock t sh.sid @@ fun () ->
  let descent = Tree.descend sh.tree key in
  with_worker_lock t sh.sid @@ fun () ->
  match ok (Store.get t.store key) with
  | Some (_, aux) when aux_is_blum aux -> None
  | store_state ->
  t.stats.merkle_path <- t.stats.merkle_path + 1;
  flush_worker t sh;
  let t0 = now () in
  let loaded = ref 0 in
  let result =
    Enclave.call t.enclave (fun () ->
        match (descent.outcome, action) with
        | Tree.Exists, _ ->
            let cur, aux =
              match store_state with Some s -> s | None -> assert false
            in
            assert (Int64.equal aux aux_merkle);
            let parent = ensure_chain ~loaded t sh descent.path in
            let installed =
              ok
                (Verifier.add_m sh.verifier ~tid:0 ~key
                   ~value:(Value.Data cur) ~parent)
            in
            assert (installed = None);
            let new_v = client_validate t sh key cur action in
            defer_data t sh key parent new_v;
            (match action with
            | A_put _ ->
                repl_op t ~epoch:(Timestamp.epoch sh.clock) ~key ~value:new_v
            | A_get _ -> ());
            cur
        | (Tree.Empty_slot | Tree.Split _), A_get meta ->
            (* Non-existence proof from the pointing parent (Example 4.1). *)
            let parent = ensure_chain ~loaded t sh descent.path in
            ok (Verifier.vget_absent sh.verifier ~tid:0 ~key ~parent);
            gateway_receipt t ~kind:Auth.Get key None meta;
            None
        | Tree.Empty_slot, (A_put (_, _) as action) ->
            let parent = ensure_chain ~loaded t sh descent.path in
            let installed =
              ok
                (Verifier.add_m sh.verifier ~tid:0 ~key
                   ~value:(Value.Data None) ~parent)
            in
            (match installed with
            | Some ptr -> apply_ptr sh parent ptr
            | None -> assert false);
            let new_v = client_validate t sh key None action in
            defer_data t sh key parent new_v;
            (match action with
            | A_put _ ->
                repl_op t ~epoch:(Timestamp.epoch sh.clock) ~key ~value:new_v
            | A_get _ -> ());
            None
        | Tree.Split pointee, (A_put (_, _) as action) ->
            let parent = ensure_chain ~loaded t sh descent.path in
            (* Fabricate the internal node splitting the edge to [pointee] —
               new chain material, so the op is Merkle-tier regardless of
               cache residency. *)
            incr loaded;
            let node_key = Key.lca key pointee in
            let pn = Tree.get_exn sh.tree parent in
            let old_ptr =
              match pn.value with
              | Value.Node n -> (
                  match Value.slot n (Key.dir key ~ancestor:parent) with
                  | Some p -> p
                  | None -> assert false)
              | Value.Data _ -> assert false
            in
            assert (Key.equal old_ptr.key pointee);
            let node_value =
              Value.Node
                (Value.set_slot { left = None; right = None }
                   (Key.dir pointee ~ancestor:node_key)
                   (Some old_ptr))
            in
            ensure_room t sh ~protect:parent ();
            let installed =
              ok
                (Verifier.add_m sh.verifier ~tid:0 ~key:node_key
                   ~value:node_value ~parent)
            in
            Tree.set sh.tree node_key node_value
              ~aux:{ mstate = M_cached sh.sid; owner = -1 };
            (match installed with
            | Some ptr -> apply_ptr sh parent ptr
            | None -> assert false);
            ignore (Key_lru.add sh.lru node_key);
            Key.Tbl.replace sh.via node_key `M;
            Key.Tbl.replace sh.parents node_key parent;
            (match Key_lru.find sh.lru parent with
            | Some pe -> Key_lru.incr_children pe
            | None -> assert (Key.equal parent Key.root));
            (* If the displaced pointee is a cached merkle record, its
               pointing parent is now the new node. *)
            (if (not (Key.is_data_key pointee)) && Key_lru.mem sh.lru pointee then begin
               Key.Tbl.replace sh.parents pointee node_key;
               decr_parent_children sh parent;
               match Key_lru.find sh.lru node_key with
               | Some ne -> Key_lru.incr_children ne
               | None -> assert false
             end);
            (* Now a plain fresh insert under the new node. *)
            let installed =
              ok
                (Verifier.add_m sh.verifier ~tid:0 ~key
                   ~value:(Value.Data None) ~parent:node_key)
            in
            (match installed with
            | Some ptr -> apply_ptr sh node_key ptr
            | None -> assert false);
            let new_v = client_validate t sh key None action in
            defer_data t sh key node_key new_v;
            (match action with
            | A_put _ ->
                repl_op t ~epoch:(Timestamp.epoch sh.clock) ~key ~value:new_v
            | A_get _ -> ());
            None)
  in
  t.stats.verifier_time_s <- t.stats.verifier_time_s +. (now () -. t0);
  if t.config.adaptive then begin
    if !loaded = 0 then sh.ops_cached_e <- sh.ops_cached_e + 1
    else sh.ops_merkle_e <- sh.ops_merkle_e + 1;
    let b = Adaptive.bucket key in
    sh.heat.(b) <- sh.heat.(b) + 1
  end;
  Metrics.tier t.metrics
    (if !loaded = 0 then Metrics.Cached else Metrics.Merkle);
  Some (result, sh)

let rec process_inner t key action =
  t.stats.ops <- t.stats.ops + 1;
  (* Routing is forced by the key: each record belongs to exactly one
     shard, so a worker's log buffer only ever holds entries for its own
     partition — which is what lets a shard close and seal its own epoch
     slice without waiting for the others. *)
  let sh = t.shards.(shard_of_data_key t key) in
  match ok (Store.get t.store key) with
  | Some (cur, aux) when aux_is_blum aux -> (
      t.stats.blum_fast_path <- t.stats.blum_fast_path + 1;
      match
        with_worker_lock t sh.sid (fun () ->
            blum_fast t sh key cur (aux_timestamp aux) action)
      with
      | value -> (value, sh)
      | exception Raced ->
          t.stats.ops <- t.stats.ops - 1;
          process_inner t key action)
  | Some _ | None -> (
      match merkle_slow t sh key action with
      | Some result -> result
      | None ->
          (* lost a first-touch race; the record is deferred now *)
          t.stats.ops <- t.stats.ops - 1;
          process_inner t key action)

let process t ?(admitted = false) key action =
  (* Admission control runs up front, before any verifier mutation or log
     entry: a put with a forged client MAC or a replayed nonce is rejected
     here with the system state untouched, so one bad request cannot poison
     the epoch for everyone else (needed by the batching server).
     [admitted] skips the check for ops the dispatcher already admitted in
     arrival order on its own domain — re-running it here would burn the
     nonce twice and reject every such put as a replay. *)
  (match action with
  | A_put (v, (Some _ as meta)) when not admitted ->
      gateway_check_put t key v meta
  | A_put _ | A_get _ -> ());
  let t0 = now () in
  let ((_, sh) as result) = process_inner t key action in
  (match action with
  | A_get _ -> Metrics.get_op t.metrics
  | A_put _ -> Metrics.put_op t.metrics);
  t.stats.worker_busy_s.(sh.sid) <-
    t.stats.worker_busy_s.(sh.sid) +. (now () -. t0);
  result

(* ------------------------------------------------------------------ *)
(* Verification scan (§6.3, §8.1)                                      *)
(* ------------------------------------------------------------------ *)

let verifier_op_count t =
  Array.fold_left
    (fun acc sh ->
      let s = Verifier.stats sh.verifier in
      acc + s.n_add_m + s.n_evict_m + s.n_add_b + s.n_evict_b + s.n_evict_bm
      + s.n_vget + s.n_vput)
    0 t.shards

(* Background slices re-take their shard's tree lock and worker lock per
   [bg_chunk]-sized chunk of work, releasing them in between so foreground
   operations interleave: the pause any single operation can observe is
   bounded by one chunk, not the whole scan. *)
let bg_chunk = 256

let adaptive_params t =
  let n = Array.length t.shards in
  {
    Adaptive.cache_budget =
      (if t.config.adaptive_cache_budget > 0 then t.config.adaptive_cache_budget
       else n * t.config.cache_capacity);
    depth_min = t.config.adaptive_depth_min;
    depth_max = t.config.adaptive_depth_max;
    hot_fraction = t.config.adaptive_hot_fraction;
    (* The floor must leave room for a full merkle chain plus [ensure_room]'s
       two slots of headroom, or a shrunken shard would refuse its own slow
       path. *)
    min_cache = max 32 (t.config.cache_capacity / 8);
  }

(* Controller step, inside the seal barrier (world lock held): snapshot this
   epoch's observations, decide, and install the plan the following scan
   executes. Applying the verifier-capacity change here is safe even when it
   shrinks below the resident count: every add goes through [ensure_room]
   first, which evicts the mirror down to the new capacity's headroom before
   the verifier sees another record. *)
let adaptive_step t =
  if t.config.adaptive then begin
    let obs =
      Array.map
        (fun sh ->
          {
            Adaptive.blum_ops = sh.ops_blum_e;
            merkle_ops = sh.ops_merkle_e;
            cached_ops = sh.ops_cached_e;
            frontier_size = List.length sh.frontier;
            cache_len = Key_lru.length sh.lru;
            cache_cap = sh.cache_cap;
            depth = sh.depth;
            heat = Array.copy sh.heat;
          })
        t.shards
    in
    let plans = Adaptive.decide (adaptive_params t) obs in
    Array.iteri
      (fun i sh ->
        let p = plans.(i) in
        sh.plan <- Some p;
        sh.cache_cap <- p.Adaptive.p_cache_cap;
        Verifier.set_cache_capacity sh.verifier p.Adaptive.p_cache_cap;
        sh.depth <- p.Adaptive.p_depth;
        Adaptive.decay sh.heat;
        sh.ops_blum_e <- 0;
        sh.ops_merkle_e <- 0;
        sh.ops_cached_e <- 0)
      t.shards;
    Metrics.adaptive_retune t.metrics
  end

(* One shard's slice of the verification scan: steps 1–3 (sorted dirty
   re-apply, frontier migration, quiesced cache sweep). Because routing
   confines every record — and therefore every buffered log entry — to its
   own shard, the epoch close and seal also ride the slice
   ([close_and_seal_shard] below): a shard certifies its partition the
   moment its own migration finishes, without waiting for the others. Only
   the store-level multiset fold remains serial.

   Quiesced mode ([background = false]): the coordinator holds every lock
   and the slices run free. Background mode: the world is live — the slice
   chunks its way through the sealed snapshot under its shard's tree +
   worker locks (the same order [merkle_slow] takes, so no deadlock),
   racing foreground fast-path CASes on the store; migration therefore
   claims each dirty record by CAS, and a record whose touch already
   carried it into the live epoch is skipped (the toucher's [add_b]
   balanced this epoch, and the seal parked the key for the next). *)
let scan_shard t ~epoch ~background sh dirty =
  let migrated_data = ref 0 and migrated_frontier = ref 0 in
  let chunked len f =
    if not background then begin
      if len > 0 then Enclave.call t.enclave (fun () -> f 0 len)
    end
    else begin
      let i = ref 0 in
      while !i < len do
        let hi = min len (!i + bg_chunk) in
        with_shard_lock t sh.sid (fun () ->
            with_worker_lock t sh.sid (fun () ->
                (* Drain buffered foreground entries before any direct
                   verifier call: their evict timestamps predate ours, and
                   the thread clock only moves forward. *)
                flush_worker t sh;
                Enclave.call t.enclave (fun () -> f !i hi)));
        i := hi
      done
    end
  in
  (* 1. Sorted merkle updates: re-apply every touched data record to the
     tree in key order, exploiting chain-prefix locality (the snapshot
     array is sorted in place — no per-node allocation). Duplicates cannot
     arise today (a dirty key is blum-protected and re-touches take the
     fast path), but the sorted pass skips adjacent equals so a duplicate
     could never double-migrate. *)
  if t.config.sorted_migration then Array.sort Key.compare dirty;
  let plan = if t.config.adaptive then sh.plan else None in
  let carry_budget =
    ref (match plan with Some p -> p.Adaptive.p_hot_budget | None -> 0)
  in
  let promoted = ref 0 and demoted = ref 0 in
  let rec migrate_dirty key =
    match ok (Store.get t.store key) with
    | Some (v, aux) when aux_is_blum aux -> (
        let ts = aux_timestamp aux in
        if Timestamp.epoch ts > epoch then
          (* Re-touched across the seal while this scan was in flight: the
             toucher's [add_b] balanced this epoch's evict and its key is
             parked for the next seal. Nothing to do here. *)
          ()
        else
          let carry =
            match plan with
            | Some p when !carry_budget > 0 ->
                Adaptive.should_carry p
                  ~heat:sh.heat.(Adaptive.bucket key)
                  ~already_hot:(Key.Tbl.mem sh.hot key)
            | Some _ | None -> false
          in
          if carry then begin
            (* Hot carry: keep the record in the deferred tier across the
               boundary instead of migrating it back to merkle, so its next
               touches stay on the fast path. Same balance as a fast-path
               epoch crossing: the [add_b] at [ts] squares the sealed
               epoch's evict, the fresh evict lands in the live epoch, and
               re-entering the dirty list guarantees the next scan balances
               that one in turn. *)
            let ts' =
              Timestamp.max
                (Timestamp.max sh.clock (Timestamp.next ts))
                (Timestamp.first_of_epoch (epoch + 1))
            in
            if
              not
                (Store.try_cas t.store key ~expected_aux:aux v
                   ~aux:(aux_blum ts'))
            then migrate_dirty key
            else begin
              ensure_room t sh ();
              ok
                (Verifier.add_b sh.verifier ~tid:0 ~key ~value:(Value.Data v)
                   ~timestamp:ts);
              mirror_add_b sh ts;
              ok (Verifier.evict_b sh.verifier ~tid:0 ~key ~timestamp:ts');
              sh.clock <- ts';
              sh.dirty <- key :: sh.dirty;
              sh.dirty_len <- sh.dirty_len + 1;
              decr carry_budget;
              if not (Key.Tbl.mem sh.hot key) then begin
                Key.Tbl.replace sh.hot key ();
                incr promoted
              end;
              incr migrated_data
            end
          end
          else if
            not (Store.try_cas t.store key ~expected_aux:aux v ~aux:aux_merkle)
          then
            (* A foreground fast-path CAS slipped in between our read and
               ours; re-read — it either stayed in the sealed epoch (retry
               the claim) or crossed into the live one (skip, above). *)
            migrate_dirty key
          else begin
            (* Claimed: the store says merkle, so any racing fast path now
               fails its CAS and falls through to [merkle_slow], which
               blocks on the shard's tree lock until this chunk completes. *)
            let descent = Tree.descend sh.tree key in
            assert (descent.outcome = Tree.Exists);
            let parent = ensure_chain t sh descent.path in
            ensure_room t sh ~protect:parent ();
            ok
              (Verifier.add_b sh.verifier ~tid:0 ~key ~value:(Value.Data v)
                 ~timestamp:ts);
            mirror_add_b sh ts;
            let ptr = ok (Verifier.evict_m sh.verifier ~tid:0 ~key ~parent) in
            apply_ptr sh parent ptr;
            if Key.Tbl.mem sh.hot key then begin
              Key.Tbl.remove sh.hot key;
              incr demoted
            end;
            incr migrated_data
          end)
    | Some _ | None ->
        raise (Integrity_violation "dirty record not in blum state")
  in
  chunked (Array.length dirty) (fun lo hi ->
      for i = lo to hi - 1 do
        let key = dirty.(i) in
        if not (i > 0 && Key.equal key dirty.(i - 1)) then migrate_dirty key
      done);
  (* 1b. Frontier retune (adaptive): diff the current cut against the
     depth-[p_depth] cut of today's tree and migrate membership toward it.
     Promotions run the trusted-load procedure (chain in, [evict_bm] into
     the live epoch); demotions reverse it ([add_b] squaring the sealed
     epoch, [evict_m] back to a plain merkle pointer — which also clears
     the parent's in-blum mark). A member that is currently cached, or
     whose timestamp already crossed into the live epoch, is skipped and
     retried at the next seal; convergence over a few epochs is the point,
     not a liability — it bounds per-scan work and doubles as hysteresis. *)
  (match plan with
  | Some p ->
      let demote = ref [||] and promote = ref [||] in
      chunked 1 (fun _ _ ->
          let cut = Tree.frontier sh.tree ~levels:p.Adaptive.p_depth in
          let in_cut = Key.Tbl.create 64 in
          List.iter (fun k -> Key.Tbl.replace in_cut k ()) cut;
          demote :=
            Array.of_list
              (List.filter (fun f -> not (Key.Tbl.mem in_cut f)) sh.frontier);
          promote :=
            Array.of_list
              (List.filter
                 (fun k ->
                   (not (Key.equal k Key.root))
                   && (Tree.get_exn sh.tree k).aux.owner < 0)
                 cut));
      chunked (Array.length !demote) (fun lo hi ->
          for i = lo to hi - 1 do
            let f = !demote.(i) in
            let entry = Tree.get_exn sh.tree f in
            match entry.aux.mstate with
            | M_blum ts
              when Timestamp.epoch ts <= epoch && not (Key_lru.mem sh.lru f)
              ->
                let descent = Tree.descend sh.tree f in
                assert (descent.outcome = Tree.Exists);
                let parent = ensure_chain t sh descent.path in
                ensure_room t sh ~protect:parent ();
                ok
                  (Verifier.add_b sh.verifier ~tid:0 ~key:f
                     ~value:entry.value ~timestamp:ts);
                mirror_add_b sh ts;
                let ptr =
                  ok (Verifier.evict_m sh.verifier ~tid:0 ~key:f ~parent)
                in
                apply_ptr sh parent ptr;
                entry.aux.mstate <- M_merkle;
                entry.aux.owner <- -1;
                sh.frontier <-
                  List.filter (fun k -> not (Key.equal k f)) sh.frontier;
                incr migrated_frontier
            | M_blum _ | M_cached _ -> ()
            | M_merkle -> assert false
          done);
      chunked (Array.length !promote) (fun lo hi ->
          for i = lo to hi - 1 do
            let g = !promote.(i) in
            let entry = Tree.get_exn sh.tree g in
            match entry.aux.mstate with
            | M_merkle ->
                let descent = Tree.descend sh.tree g in
                assert (descent.outcome = Tree.Exists);
                let parent = ensure_chain t sh descent.path in
                ensure_room t sh ~protect:parent ();
                let installed =
                  ok
                    (Verifier.add_m sh.verifier ~tid:0 ~key:g
                       ~value:entry.value ~parent)
                in
                assert (installed = None);
                let ts' =
                  Timestamp.max sh.clock
                    (Timestamp.first_of_epoch (epoch + 1))
                in
                ok
                  (Verifier.evict_bm sh.verifier ~tid:0 ~key:g ~timestamp:ts'
                     ~parent);
                sh.clock <- ts';
                mark_in_blum sh parent g;
                entry.aux.mstate <- M_blum ts';
                entry.aux.owner <- sh.sid;
                sh.frontier <- g :: sh.frontier;
                incr migrated_frontier
            | M_blum _ | M_cached _ ->
                (* Resident on some chain right now (or already carried into
                   the live epoch); retried at the next seal. *)
                ()
          done)
  | None -> ());
  Metrics.adaptive_promotions t.metrics !promoted;
  Metrics.adaptive_demotions t.metrics !demoted;
  (* 2. Migrate this shard's frontier merkle records that were not touched
     (still in the deferred tier) to the next epoch. *)
  let frontier = Array.of_list sh.frontier in
  chunked (Array.length frontier) (fun lo hi ->
      for i = lo to hi - 1 do
        let f = frontier.(i) in
        let entry = Tree.get_exn sh.tree f in
        match entry.aux.mstate with
        | M_blum ts when Timestamp.epoch ts <= epoch ->
            ensure_room t sh ();
            ok
              (Verifier.add_b sh.verifier ~tid:0 ~key:f ~value:entry.value
                 ~timestamp:ts);
            mirror_add_b sh ts;
            let ts' =
              Timestamp.max sh.clock (Timestamp.first_of_epoch (epoch + 1))
            in
            ok (Verifier.evict_b sh.verifier ~tid:0 ~key:f ~timestamp:ts');
            sh.clock <- ts';
            entry.aux.mstate <- M_blum ts';
            incr migrated_frontier
        | M_blum _ ->
            (* Already carried into the live epoch by a mid-scan cache
               eviction; the next scan migrates it. *)
            ()
        | M_cached sid ->
            (* Cached this epoch: the quiesced sweep below — or, in
               background mode, a later capacity eviction at the live-epoch
               floor — moves it into a later epoch. Only ever cached by its
               own shard (routing is forced by key). *)
            assert (sid = sh.sid)
        | M_merkle -> assert false
      done);
  (* 3. Quiesced only: evict every remaining cached merkle record, children
     first, so the epoch leaves the caches empty. Background scans leave
     the working set resident — a record cached in epoch [e] contributes
     nothing further to [e] (its add already balanced the evict that made
     it cached), and its own eventual eviction lands at the live-epoch
     floor, balanced by that epoch's scan. *)
  if not background then
    Enclave.call t.enclave (fun () ->
        while Key_lru.length sh.lru > 0 do
          match Key_lru.victim sh.lru with
          | Some e -> evict_mirror t sh e ~epoch_floor:(epoch + 1)
          | None ->
              raise (Integrity_violation "cycle in cached merkle records")
        done);
  (!migrated_data, !migrated_frontier)

(* 4a. Per-shard epoch close + seal, at the tail of each shard's own slice
   (routing confines a shard's log entries to its own partition, so a
   shard may certify the moment its migration finishes — this is what
   moves the former serial close/detach loop into the parallel phase). In
   background mode the shard's worker lock is held just long enough to
   flush its buffer, close the epoch, detach its set hashes and seal;
   afterwards the store-level aggregation reads only the returned fold,
   never thread state that foreground traffic keeps mutating. *)
let close_and_seal_shard t ~epoch ~background sh =
  let work () =
    flush_worker t sh;
    let fold =
      Enclave.call t.enclave (fun () ->
          ok (Verifier.close_epoch sh.verifier ~tid:0 ~epoch);
          let detached =
            [| ok (Verifier.detach_epoch sh.verifier ~tid:0 ~epoch) |]
          in
          let _shard_cert, fold =
            ok
              (Verifier.seal_epoch_shard sh.verifier ~shard:sh.sid ~epoch
                 ~detached)
          in
          fold)
    in
    sh.clock <- Timestamp.max sh.clock (Timestamp.first_of_epoch (epoch + 1));
    fold
  in
  if background then with_worker_lock t sh.sid work else work ()

(* The verification scan (§6.3, §8.1). Quiesced mode: stop-the-world — the
   coordinator owns every shard for the whole scan (lock order: tree locks
   ascending, then worker locks ascending — the same order [merkle_slow]
   uses, so scans and operations cannot deadlock), and the per-shard
   slices fan out to real domains (§8.5). Background mode
   ([config.background_verify]): the world stops only for the {e seal
   barrier} — flush every log buffer, snapshot every dirty set, route the
   parked epoch-crossing keys, bump the live epoch — after which
   foreground gets/puts resume immediately against epoch [e+1] while the
   slices migrate epoch [e] underneath them.

   Each slice ends by closing and sealing its own shard's epoch
   ([close_and_seal_shard]); the serial tail is only the store-level
   multiset fold over the per-shard values plus one HMAC. The fold is
   order-independent, so the aggregated certificate is bit-identical
   whether one shard or N produced it — and identical to the certificate a
   single unsharded verifier would sign.

   The caller must hold [verify_mutex]. Returns [(epoch, certificate)]. *)
let verify_inner t =
  let background = t.config.background_verify in
  let t0 = now () in
  let charged0 = Enclave.charged_ns t.enclave in
  let vops0 = verifier_op_count t in
  let touched0 = t.stats.migrated_data + t.stats.migrated_frontier in
  Atomic.set t.verify_inflight true;
  Metrics.verify_in_flight t.metrics 1;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.verify_inflight false;
      Metrics.verify_in_flight t.metrics 0)
  @@ fun () ->
  (* ---- Seal barrier: O(shards) under the world lock. ---- *)
  lock_world t;
  let seal () =
    let epoch = Verifier.current_epoch t.shards.(0).verifier in
    Array.iter (flush_worker t) t.shards;
    let dirty_lists =
      Array.map
        (fun sh ->
          let d = sh.dirty in
          sh.dirty <- [];
          sh.dirty_len <- 0;
          d)
        t.shards
    in
    (* Keys whose fast-path touch crossed the previous boundary belong to
       this epoch's dirty sets; route each to its shard's snapshot. *)
    List.iter
      (fun k ->
        let sid = shard_of_data_key t k in
        dirty_lists.(sid) <- k :: dirty_lists.(sid))
      (with_redeferred_lock t (fun () ->
           let r = t.redeferred in
           t.redeferred <- [];
           r));
    (* Adaptive controller: decide and install the next epoch's plan from
       this epoch's observations, atomically with the boundary — the scan
       below executes it. *)
    adaptive_step t;
    (* From here on, operations fold into the next epoch. *)
    Atomic.set t.live_epoch (epoch + 1);
    Atomic.set t.ops_since_verify 0;
    (epoch, Array.map Array.of_list dirty_lists)
  in
  let epoch, dirty =
    match seal () with
    | sealed -> sealed
    | exception e ->
        unlock_world t;
        raise e
  in
  if background then begin
    unlock_world t;
    Metrics.verify_pause t.metrics ~seconds:(now () -. t0)
  end;
  let run_scan () =
    let n = Array.length t.shards in
    let results = Array.make n (0, 0) in
    let folds = Array.make n ("", "") in
    let failures = Array.make n None in
    let slice sid () =
      let sh = t.shards.(sid) in
      let tw = now () in
      (match
         let r = scan_shard t ~epoch ~background sh dirty.(sid) in
         let fold = close_and_seal_shard t ~epoch ~background sh in
         (r, fold)
       with
      | r, fold ->
          results.(sid) <- r;
          folds.(sid) <- fold
      | exception e -> failures.(sid) <- Some e);
      let dt = now () -. tw in
      t.stats.worker_busy_s.(sid) <- t.stats.worker_busy_s.(sid) +. dt;
      Metrics.verify_shard t.metrics ~sid ~seconds:dt
    in
    (* Dispatch the slices over at most [recommended_domain_count]
       domains: spawning one domain per shard on a machine with fewer
       cores makes the domains time-share, which both adds scheduler
       overhead and corrupts the per-slice wall-clock accounting (each
       slice's elapsed time would absorb the others' work). Each lane
       drains a strided subset of shards sequentially; lane 0 runs on
       the coordinator domain. Failures are collected per shard and
       re-raised only after every domain has joined, so a tampering
       detection on one partition never leaves another domain running
       unsupervised. *)
    let lanes = min n (Domain.recommended_domain_count ()) in
    let lane l () =
      let sid = ref l in
      while !sid < n do
        slice !sid ();
        sid := !sid + lanes
      done
    in
    (if lanes = 1 then lane 0 ()
     else begin
       let domains =
         Array.init (lanes - 1) (fun i -> Domain.spawn (lane (i + 1)))
       in
       lane 0 ();
       Array.iter Domain.join domains
     end);
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.iter
      (fun (d, f) ->
        t.stats.migrated_data <- t.stats.migrated_data + d;
        t.stats.migrated_frontier <- t.stats.migrated_frontier + f)
      results;
    (* 4b. Serial tail: fold every shard's detached set-hash values into
       the store-level accumulators and sign the epoch certificate. The
       per-shard balance checks already ran inside the slices; this is
       O(shards) multiset merges plus one HMAC — the only inherently
       serial work left in a scan. *)
    let ts = now () in
    let cert =
      Enclave.call t.enclave (fun () ->
          match
            Verifier.aggregate_epoch_certificate
              ~mset_secret:t.config.mset_secret
              ~mac_secret:t.config.mac_secret ~epoch
              ~folds:(Array.to_list folds)
          with
          | Ok c -> c
          | Error e -> raise (Integrity_violation e))
    in
    t.stats.serial_s <- t.stats.serial_s +. (now () -. ts);
    cert
  in
  let cert =
    if background then run_scan ()
    else
      Fun.protect ~finally:(fun () -> unlock_world t) run_scan
  in
  (* Epoch-boundary record for replication followers: emitted after the
     scan proved the epoch balanced, in epoch order ([verify_mutex]
     serializes scans). Every op teed with this epoch tag preceded the
     seal barrier above, so followers hold the full epoch when this
     record reaches them. *)
  repl_seal t ~epoch ~cert;
  if not background then
    Metrics.verify_pause t.metrics ~seconds:(now () -. t0);
  (* Account the enclave crossings this scan would have cost: its verifier
     calls stream through log buffers in a real deployment. *)
  let vops = verifier_op_count t - vops0 in
  Enclave.charge_transitions t.enclave (vops / t.config.log_buffer_size);
  let elapsed =
    now () -. t0
    +. Int64.to_float (Int64.sub (Enclave.charged_ns t.enclave) charged0)
       /. 1e9
  in
  t.stats.verifies <- t.stats.verifies + 1;
  t.stats.last_verify_latency_s <- elapsed;
  t.stats.verify_time_s <- t.stats.verify_time_s +. elapsed;
  t.stats.verifier_time_s <- t.stats.verifier_time_s +. (now () -. t0);
  Metrics.verify_scan t.metrics ~seconds:elapsed
    ~touched:(t.stats.migrated_data + t.stats.migrated_frontier - touched0);
  (epoch, cert)

(* Join the background scan domain, if one is outstanding. The handoff
   goes through [bg_lock] so a joiner racing a dispatcher can never leave
   a domain unjoined. *)
let join_bg t =
  match with_bg_lock t (fun () -> Atomic.exchange t.bg_join None) with
  | Some d -> Domain.join d
  | None -> ()

(* Cold-tier maintenance rides the verification cadence: right after a scan
   every record's aux is freshly installed, so demotion moves settled
   versions, and the records just migrated to merkle are exactly the cooling
   ones. Runs outside [verify_mutex] (demotion flips bodies under stripe
   locks, safe against live traffic) but under [cold_lock] so two scans
   finishing close together don't compact concurrently. Maintenance errors
   are soft — the tier degrades to serving what it has and the next cycle
   retries — but injected crash faults propagate (the crash tests need the
   exception to escape). *)
let cold_maintain t =
  match t.cold with
  | None -> ()
  | Some _ ->
      with_cold_lock t (fun () ->
          (match Store.demote_now t.store ~budget:t.config.cold_threshold with
          | Ok _ -> ()
          | Error e -> Logs.warn (fun m -> m "cold demotion: %s" e));
          match
            Store.compact_cold t.store
              ~min_dead_ratio:t.config.cold_gc_ratio
          with
          | Ok _ -> ()
          | Error e -> Logs.warn (fun m -> m "cold compaction: %s" e))

let verify_pair t =
  join_bg t;
  let pair = with_lock t.verify_mutex (fun () -> verify_inner t) in
  cold_maintain t;
  (* post-verification hooks (auto-checkpoint) run outside the locks: they
     re-enter the public API *)
  (match t.on_verified with Some hook -> hook () | None -> ());
  pair

let verify t = snd (verify_pair t)

let verify_async t ~on_complete =
  (* Raise the latch before the domain exists, so [maybe_verify] callers
     stop dispatching the moment a scan is queued, not once it starts. *)
  Atomic.set t.verify_inflight true;
  with_bg_lock t (fun () ->
      let prev = Atomic.exchange t.bg_join None in
      let d =
        Domain.spawn (fun () ->
            (* Chain behind any previous background scan; its result went
               to its own completion callback. *)
            (match prev with Some p -> Domain.join p | None -> ());
            match with_lock t.verify_mutex (fun () -> verify_inner t) with
            | pair ->
                cold_maintain t;
                (match t.on_verified with Some hook -> hook () | None -> ());
                on_complete (Ok pair)
            | exception e -> on_complete (Error e))
      in
      Atomic.set t.bg_join (Some d))

let wait_verify t = join_bg t

let maybe_verify t =
  if
    Atomic.fetch_and_add t.ops_since_verify 1 + 1 >= t.config.batch_size
    && t.config.batch_size > 0
  then
    if t.config.background_verify then begin
      (* Fire-and-forget, at most one in flight: the scan runs on its own
         domain while this operation returns. A failed scan needs no
         handling here — an integrity violation poisons the verifier, so
         it resurfaces on the very next operation. *)
      if Atomic.compare_and_set t.verify_inflight false true then
        verify_async t ~on_complete:(fun _ -> ())
    end
    else ignore (verify t)

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)
(* ------------------------------------------------------------------ *)

let check_loaded t =
  if not t.loaded then invalid_arg "Fastver: call load before operating"

let data_key k =
  if not (Key.is_data_key k) then invalid_arg "Fastver: not a data key";
  k

(* Admission for external dispatchers: validate and consume a put's client
   MAC + nonce in arrival order on the dispatching domain, then process the
   op (with [~admitted:true]) on any executor. Splitting admission from
   execution is what keeps per-client nonce monotonicity exact when batches
   execute concurrently. *)
let admit_put t ~client ~nonce ~mac ~key ~value =
  check_loaded t;
  let meta = Some (mk_meta ~client ~nonce ~mac) in
  match gateway_check_put t (data_key (Key.of_int64 key)) value meta with
  | () -> Ok ()
  | exception Integrity_violation e -> Error e

let get_key t k =
  check_loaded t;
  t.stats.gets <- t.stats.gets + 1;
  let v, _ = process t (data_key k) (A_get None) in
  maybe_verify t;
  v

let put_key t k v =
  check_loaded t;
  t.stats.puts <- t.stats.puts + 1;
  ignore (process t (data_key k) (A_put (Some v, None)));
  maybe_verify t

let delete_key t k =
  check_loaded t;
  t.stats.puts <- t.stats.puts + 1;
  ignore (process t (data_key k) (A_put (None, None)));
  maybe_verify t

let get t k = get_key t (Key.of_int64 k)

let put t k v = put_key t (Key.of_int64 k) v
let delete t k = delete_key t (Key.of_int64 k)

let scan t k len =
  check_loaded t;
  t.stats.scans <- t.stats.scans + 1;
  Metrics.scan_op t.metrics;
  Array.init len (fun i ->
      let ki = Int64.add k (Int64.of_int i) in
      t.stats.gets <- t.stats.gets + 1;
      let v, _ = process t (Key.of_int64 ki) (A_get None) in
      maybe_verify t;
      (ki, v))

let check_epoch_certificate t ~epoch cert =
  Fastver_crypto.Hmac.verify ~key:t.config.mac_secret
    (Verifier.epoch_certificate_message ~epoch)
    ~tag:cert

(* ------------------------------------------------------------------ *)
(* Trusted load                                                        *)
(* ------------------------------------------------------------------ *)

let load t records =
  if t.loaded then invalid_arg "Fastver.load: already loaded";
  let n_sh = Array.length t.shards in
  let keyed = Array.map (fun (k, v) -> (Key.of_int64 k, v)) records in
  (* Range boundaries from key quantiles, so shards start balanced on the
     loaded distribution. Duplicate quantiles (tiny loads) just leave some
     shards empty — routing stays total either way. *)
  let sorted = Array.copy keyed in
  Array.sort (fun (a, _) (b, _) -> Key.compare a b) sorted;
  let len = Array.length sorted in
  t.boundaries <-
    (if len = 0 then synth_boundaries n_sh
     else Array.init (n_sh - 1) (fun i -> fst sorted.((i + 1) * len / n_sh)));
  let buckets = Array.make n_sh [] in
  Array.iter
    (fun (k, v) ->
      let sid = shard_of_data_key t k in
      buckets.(sid) <- (k, Value.Data (Some v)) :: buckets.(sid))
    keyed;
  Array.iter (fun (k, v) -> Store.put t.store k (Some v) ~aux:aux_merkle) keyed;
  Array.iter
    (fun sh ->
      Tree.bulk_build sh.tree ~algo:t.config.algo
        ~aux:(fun _ _ -> { mstate = M_merkle; owner = -1 })
        (Array.of_list buckets.(sh.sid));
      (maux sh Key.root).mstate <- M_cached sh.sid;
      ok
        (Verifier.install_root sh.verifier
           (Tree.get_exn sh.tree Key.root).value))
    t.shards;
  t.loaded <- true;
  (* Push each shard's depth-d frontier into the deferred tier (§6.2), on
     that shard's own verifier thread. *)
  Array.iter
    (fun sh ->
      sh.depth <- t.config.frontier_levels;
      let frontier =
        Tree.frontier sh.tree ~levels:t.config.frontier_levels
        |> List.filter (fun k -> not (Key.equal k Key.root))
        |> List.sort Key.compare
      in
      Enclave.call t.enclave (fun () ->
          List.iter
            (fun f ->
              let entry = Tree.get_exn sh.tree f in
              entry.aux.owner <- sh.sid;
              sh.frontier <- f :: sh.frontier;
              let descent = Tree.descend sh.tree f in
              assert (descent.outcome = Tree.Exists);
              let parent = ensure_chain t sh descent.path in
              ensure_room t sh ~protect:parent ();
              let installed =
                ok
                  (Verifier.add_m sh.verifier ~tid:0 ~key:f
                     ~value:entry.value ~parent)
              in
              assert (installed = None);
              let ts' = sh.clock in
              ok
                (Verifier.evict_bm sh.verifier ~tid:0 ~key:f ~timestamp:ts'
                   ~parent);
              mark_in_blum sh parent f;
              entry.aux.mstate <- M_blum ts')
            frontier;
          (* Clear the chain nodes so every shard starts symmetric. *)
          while Key_lru.length sh.lru > 0 do
            match Key_lru.victim sh.lru with
            | Some e -> evict_mirror t sh e ~epoch_floor:0
            | None -> assert false
          done))
    t.shards

(* ------------------------------------------------------------------ *)
(* Batch driver                                                        *)
(* ------------------------------------------------------------------ *)

let run_ops t gen n =
  let open Fastver_workload in
  let i = ref 0 in
  while !i < n do
    (match Ycsb.next gen with
    | Ycsb.Read k ->
        ignore (get t k);
        incr i
    | Ycsb.Update (k, v) ->
        put t k v;
        incr i
    | Ycsb.Scan (k, len) ->
        ignore (scan t k len);
        i := !i + len)
  done

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type session = {
    sys : t;
    client_id : int;
    auth : Auth.key;
    mutable nonce : int64;
  }

  let connect t ~client_id =
    { sys = t; client_id; auth = Auth.key_of_secret t.config.mac_secret; nonce = 0L }

  type 'v receipt = { value : 'v; nonce : int64; epoch : int; mac : string }

  let take_receipt s sh meta ~kind ~key ~value ~nonce =
    (* The op's receipt cell fills when its log entry flushes; flushing under
       the shard's worker lock also orders any cell write made by a
       concurrent domain's scan before this read. *)
    with_worker_lock s.sys sh.sid (fun () -> flush_worker s.sys sh);
    match !(meta.receipt) with
    | None -> raise (Integrity_violation "missing validation receipt")
    | Some (mac, epoch) ->
        let expected =
          Auth.receipt s.auth ~kind ~client:s.client_id ~nonce key value ~epoch
        in
        if not (Auth.check ~expected mac) then
          raise (Integrity_violation "result MAC check failed");
        (mac, epoch)

  let get s k =
    check_loaded s.sys;
    s.nonce <- Int64.succ s.nonce;
    let nonce = s.nonce in
    let key = Key.of_int64 k in
    s.sys.stats.gets <- s.sys.stats.gets + 1;
    let meta = mk_meta ~client:s.client_id ~nonce ~mac:"" in
    let value, sh = process s.sys key (A_get (Some meta)) in
    let mac, epoch = take_receipt s sh meta ~kind:Auth.Get ~key ~value ~nonce in
    maybe_verify s.sys;
    { value; nonce; epoch; mac }

  let put s k v =
    check_loaded s.sys;
    s.nonce <- Int64.succ s.nonce;
    let nonce = s.nonce in
    let key = Key.of_int64 k in
    s.sys.stats.puts <- s.sys.stats.puts + 1;
    let mac = Auth.put_request s.auth ~client:s.client_id ~nonce key v in
    let meta = mk_meta ~client:s.client_id ~nonce ~mac in
    let _, sh = process s.sys key (A_put (Some v, Some meta)) in
    let mac, epoch =
      take_receipt s sh meta ~kind:Auth.Put ~key ~value:(Some v) ~nonce
    in
    maybe_verify s.sys;
    { value = (); nonce; epoch; mac }

  let await_certainty s r =
    while verified_epoch s.sys < r.epoch do
      (* [verify_pair] reports which epoch the certificate covers — reading
         the verifier's current epoch separately would race a concurrent
         (or background) scan and check the certificate against the wrong
         epoch. *)
      let epoch, cert = verify_pair s.sys in
      if not (check_epoch_certificate s.sys ~epoch cert) then
        raise (Integrity_violation "bad epoch certificate")
    done
end

(* ------------------------------------------------------------------ *)
(* Batch submission (network serving path)                             *)
(* ------------------------------------------------------------------ *)

module Batch = struct
  type op =
    | Get of { client : int; nonce : int64; key : int64 }
    | Put of { client : int; nonce : int64; mac : string; key : int64;
               value : string option }
    | Scan of { client : int; nonce : int64; start : int64; len : int }

  type item = {
    ikey : int64;
    ivalue : string option;
    mutable iepoch : int;
    mutable imac : string;
  }

  type reply =
    | Got of item
    | Put_done of item
    | Scanned of item array
    | Failed of string

  (* One elementary validated operation (a scan of length n is n of them),
     waiting for its receipt cell to fill when its log entry flushes. *)
  type pending = { p_meta : meta option; p_item : item; p_op : int }

  let submit ?worker:_ ?(pre_admitted = false) t ops =
    (* The [worker] hint is accepted for compatibility but ignored: shard
       routing is forced by key, so a dispatcher cannot choose where an
       operation runs — only which domain drives it. *)
    check_loaded t;
    let auth = t.config.authenticate_clients in
    let n = Array.length ops in
    let errors = Array.make n None in
    let pendings = ref [] (* newest first *) in
    let meta_of ~client ~nonce ~mac =
      if auth then Some (mk_meta ~client ~nonce ~mac) else None
    in
    let touched = Array.make (Array.length t.shards) false in
    let one i action ~client ~nonce ~mac key =
      let meta = meta_of ~client ~nonce ~mac in
      let returned, sh =
        process t ~admitted:pre_admitted
          (data_key (Key.of_int64 key))
          (match action with
          | `Get -> A_get meta
          | `Put v -> A_put (v, meta))
      in
      touched.(sh.sid) <- true;
      (* what the receipt MAC covers: the read value for gets, the new
         value for puts (process returns the overwritten value) *)
      let value = match action with `Get -> returned | `Put v -> v in
      let item = { ikey = key; ivalue = value; iepoch = 0; imac = "" } in
      pendings := { p_meta = meta; p_item = item; p_op = i } :: !pendings;
      maybe_verify t;
      item
    in
    let replies =
      Array.mapi
        (fun i op ->
          match op with
          | Get { client; nonce; key } -> (
              t.stats.gets <- t.stats.gets + 1;
              match one i `Get ~client ~nonce ~mac:"" key with
              | item -> Got item
              | exception Integrity_violation e ->
                  errors.(i) <- Some e;
                  Failed e)
          | Put { client; nonce; mac; key; value } -> (
              t.stats.puts <- t.stats.puts + 1;
              match one i (`Put value) ~client ~nonce ~mac key with
              | item -> Put_done item
              | exception Integrity_violation e ->
                  errors.(i) <- Some e;
                  Failed e)
          | Scan { client; nonce; start; len } -> (
              t.stats.scans <- t.stats.scans + 1;
              Metrics.scan_op t.metrics;
              let items = ref [] in
              match
                for j = 0 to len - 1 do
                  t.stats.gets <- t.stats.gets + 1;
                  let k = Int64.add start (Int64.of_int j) in
                  items := one i `Get ~client ~nonce ~mac:"" k :: !items
                done
              with
              | () -> Scanned (Array.of_list (List.rev !items))
              | exception Integrity_violation e ->
                  errors.(i) <- Some e;
                  Failed e))
        ops
    in
    (* One drain per shard this batch actually ran on covers every receipt:
       this is where the enclave-transition amortisation happens (§7) —
       and flushing only touched shards means a batch confined to one
       partition never blocks on another partition's (possibly stalled)
       executor. A violation here is real tampering surfacing on a deferred
       validation; ops whose receipts never materialise are failed below. *)
    let flush_error =
      match
        Array.iteri
          (fun sid sh ->
            if touched.(sid) then
              with_worker_lock t sid (fun () -> flush_worker t sh))
          t.shards
      with
      | () -> None
      | exception Integrity_violation e -> Some e
    in
    (if auth then
       (* Live epoch, not the verifier's: a background scan keeps the sealed
          epoch open in the verifier while these ops folded into the live
          one; a later fallback stamp is merely conservative. *)
       let fallback_epoch = Atomic.get t.live_epoch in
       List.iter
         (fun p ->
           (* The flush above took every touched shard's worker lock, which
              also orders any receipt-cell write made by a concurrent
              domain's verification scan before these reads. *)
           match p.p_meta with
           | None -> assert false
           | Some m -> (
               match !(m.receipt) with
               | Some (mac, epoch) ->
                   p.p_item.imac <- mac;
                   p.p_item.iepoch <- epoch
               | None ->
                   p.p_item.iepoch <- fallback_epoch;
                   if errors.(p.p_op) = None then
                     errors.(p.p_op) <-
                       Some
                         (Option.value flush_error
                            ~default:"validation receipt missing")))
         !pendings
     else
       let epoch = Atomic.get t.live_epoch in
       List.iter (fun p -> p.p_item.iepoch <- epoch) !pendings);
    Array.mapi
      (fun i reply ->
        match errors.(i) with Some e -> Failed e | None -> reply)
      replies
end

(* ------------------------------------------------------------------ *)
(* Durability (§7)                                                     *)
(* ------------------------------------------------------------------ *)

let data_file = "data.ckpt"
let sealed_file = "verifier.sealed"
let tpm_file = "tpm.state"

(* One merkle image per shard: untrusted files; tampering surfaces as
   verification failures after recovery. *)
let shard_tree_file sid = Printf.sprintf "merkle-%d.tree" sid

(* Present only when a cold tier is configured; checksummed by the MANIFEST
   like every other component. Written after the data checkpoint so every
   cold reference the data file holds points at a segment the manifest
   commits. *)
let cold_manifest_file = "cold.manifest"

(* Checkpoints are versioned generations [dir/ckpt-<n>/] holding the
   component files plus a MANIFEST with the SHA-256 of each. Every file —
   the manifest included — is written temp-file + fsync + rename
   ({!Ckpt_io}), and the manifest is written last, so the manifest's
   presence-and-validity is the generation's commit point: a crash at any
   byte offset leaves either a committed generation (old or new) or a torn
   one that recovery can recognise and discard.

   The shard count lives in the sealed payload, so the static component
   check below names only the shard-count-independent files; the per-shard
   tree files are still checksummed by the manifest (its [verify] covers
   every entry), and a missing one surfaces as a read failure during
   recovery of a generation whose manifest vouches for it — Tampered by
   construction. *)
let static_component_files = [ data_file; sealed_file; tpm_file ]

(* A generation commits only when its manifest lists every component file,
   records the directory's own generation number, and every checksum
   verifies. The two failure modes are not interchangeable:

   [Torn] — no manifest, or one that doesn't parse. Components are fsync'd
   and renamed before the manifest commits, so this is what a crash leaves
   behind; the generation never happened and is safe to delete and skip.

   [Tampered] — a well-formed manifest whose claims don't hold: a checksum
   or size mismatch, a missing component entry, or a generation number that
   disagrees with the [ckpt-<n>] directory name. No crash can produce this
   (the manifest only ever commits over fully-synced components), so it
   implies tampering or corruption and must be surfaced, never silently
   skipped — deleting it and falling back would hand an adversary a
   one-bit-flip rollback primitive and destroy the evidence. *)
type generation_status = Committed | Torn of string | Tampered of string

let classify_generation ~number gdir =
  match Ckpt_io.Manifest.read ~dir:gdir with
  | Error e -> Torn e
  | Ok m ->
      if m.Ckpt_io.Manifest.generation <> number then
        Tampered
          (Printf.sprintf "manifest records generation %d"
             m.Ckpt_io.Manifest.generation)
      else if
        not
          (List.for_all
             (fun name ->
               List.exists
                 (fun e -> e.Ckpt_io.Manifest.name = name)
                 m.Ckpt_io.Manifest.entries)
             static_component_files)
      then Tampered "manifest missing a component file"
      else
        match Ckpt_io.Manifest.verify ~dir:gdir m with
        | Ok () -> Committed
        | Error e -> Tampered e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Internal: aborts a checkpoint attempt with an [Error], leaving the new
   generation uncommitted (no manifest was written, so recovery classifies
   the directory as torn and the previous generation stays authoritative). *)
exception Ckpt_error of string

let mstate_encode buf st ~is_root =
  match st with
  | M_merkle -> Buffer.add_char buf 'm'
  | M_blum ts ->
      Buffer.add_char buf 'b';
      Buffer.add_string buf (Timestamp.encode ts)
  | M_cached _ when is_root -> Buffer.add_char buf 'm' (* re-pinned on recover *)
  | M_cached _ -> raise (Ckpt_error "checkpoint: record still cached")

(* Sealed-payload layout (version 2, sharded):
     u64  nonce_blob length
     ...  nonce blob (16 bytes per client: u64 client, u64 last nonce)
     8    magic "FVSHARD1"
     u64  shard count
     ...  (shards - 1) range boundaries, 34 bytes each (Key.encode)
     per shard: u64 summary length, then the shard verifier's summary
   The boundaries and shard count ride the *sealed* (trusted,
   rollback-protected) payload because routing is integrity-critical: a
   host free to re-aim routing could ask the wrong shard for an absence
   proof of a key the right shard holds. *)
let shard_magic = "FVSHARD1"

let encode_sealed_payload t ~summaries =
  let nonce_blob =
    let buf = Buffer.create 64 in
    Hashtbl.iter
      (fun client nonce ->
        Buffer.add_string buf
          (Fastver_crypto.Bytes_util.string_of_u64_le (Int64.of_int client));
        Buffer.add_string buf (Fastver_crypto.Bytes_util.string_of_u64_le nonce))
      t.nonces;
    Buffer.contents buf
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Fastver_crypto.Bytes_util.string_of_u64_le
       (Int64.of_int (String.length nonce_blob)));
  Buffer.add_string buf nonce_blob;
  Buffer.add_string buf shard_magic;
  Buffer.add_string buf
    (Fastver_crypto.Bytes_util.string_of_u64_le
       (Int64.of_int (Array.length t.shards)));
  Array.iter (fun b -> Buffer.add_string buf (Key.encode b)) t.boundaries;
  Array.iter
    (fun summary ->
      Buffer.add_string buf
        (Fastver_crypto.Bytes_util.string_of_u64_le
           (Int64.of_int (String.length summary)));
      Buffer.add_string buf summary)
    summaries;
  Buffer.contents buf

(* Total parser for the sealed payload: hostile bytes yield [Error], never
   an exception (the slot's MAC already vouched for it, but recovery's
   contract is that no decoder raises on corrupt input). *)
let parse_sealed_payload payload =
  let exception Corrupt of string in
  let fail fmt = Printf.ksprintf (fun e -> raise (Corrupt e)) fmt in
  let pos = ref 0 and n = String.length payload in
  let need k = if k < 0 || !pos + k > n then fail "sealed payload truncated" in
  let u64 () =
    need 8;
    let v = Fastver_crypto.Bytes_util.get_u64_le payload !pos in
    pos := !pos + 8;
    v
  in
  let str k =
    need k;
    let s = String.sub payload !pos k in
    pos := !pos + k;
    s
  in
  try
    let nonce_len = Int64.to_int (u64 ()) in
    let nonce_blob = str nonce_len in
    if String.length nonce_blob mod 16 <> 0 then
      fail "sealed payload: ragged nonce table";
    let nonces = Hashtbl.create 8 in
    let rec entries off =
      if off < String.length nonce_blob then begin
        Hashtbl.replace nonces
          (Int64.to_int (Fastver_crypto.Bytes_util.get_u64_le nonce_blob off))
          (Fastver_crypto.Bytes_util.get_u64_le nonce_blob (off + 8));
        entries (off + 16)
      end
    in
    entries 0;
    let magic = str (String.length shard_magic) in
    if magic <> shard_magic then
      fail
        "unsupported pre-sharding sealed payload; re-checkpoint with this \
         release";
    let n_shards = Int64.to_int (u64 ()) in
    if n_shards < 1 || n_shards > 65536 then
      fail "sealed payload: implausible shard count %d" n_shards;
    let boundaries =
      Array.init (n_shards - 1) (fun _ ->
          let kenc = str 34 in
          let depth = String.get_uint16_le kenc 0 in
          if depth > Key.max_depth then fail "sealed payload: bad boundary key";
          let p = Key.of_bytes32 (String.sub kenc 2 32) in
          if depth = Key.max_depth then p else Key.prefix p depth)
    in
    let summaries =
      Array.init n_shards (fun _ -> str (Int64.to_int (u64 ())))
    in
    if !pos <> n then fail "sealed payload: trailing bytes";
    Ok (nonces, boundaries, summaries)
  with Corrupt e -> Error e

let checkpoint t ~dir =
  check_loaded t;
  let ck0 = now () in
  match
    (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
    (* Serialize against verification scans: a checkpoint taken mid-scan
       would capture half-migrated protection state and lose the scan's
       sealed snapshot (which lives only in the scan's arrays). Taken before
       any world lock — the same order the scans use. *)
    with_lock t.verify_mutex
    @@ fun () ->
    (* Stop the world: snapshotting the store and tries while other domains
       mutate them would tear the images (and race Hashtbl internals). *)
    lock_world t;
    Fun.protect ~finally:(fun () -> unlock_world t)
    @@ fun () ->
    Array.iter (flush_worker t) t.shards;
    (* With background verification, foreground traffic may have left merkle
       records cached at the instant the world stopped; the sealed summaries
       require empty caches and the tree images cannot encode cached
       records, so evict them all (children first) into the live epoch. *)
    Array.iter
      (fun sh ->
        Enclave.call t.enclave (fun () ->
            while Key_lru.length sh.lru > 0 do
              match Key_lru.victim sh.lru with
              | Some e ->
                  evict_mirror t sh e ~epoch_floor:(Atomic.get t.live_epoch)
              | None ->
                  raise (Integrity_violation "cycle in cached merkle records")
            done))
      t.shards;
    let summaries =
      Array.map
        (fun sh ->
          Enclave.call t.enclave (fun () ->
              ok (Verifier.checkpoint_summary sh.verifier)))
        t.shards
    in
    (* The gateway's anti-replay nonce table is trusted state too: without it
       a recovered system would accept replays of pre-crash puts. It is
       sealed alongside the shard summaries and routing boundaries. *)
    Enclave.Sealed_slot.store t.sealed (encode_sealed_payload t ~summaries);
    (* A fresh generation directory: higher than anything on disk, committed
       or torn. Its files all land inside it, so a crash mid-checkpoint can
       never touch a previous generation. *)
    let generation =
      match Ckpt_io.generations dir with (g, _) :: _ -> g + 1 | [] -> 0
    in
    let gdir = Filename.concat dir (Ckpt_io.generation_dir_name generation) in
    Ckpt_io.remove_tree gdir;
    Sys.mkdir gdir 0o755;
    Ckpt_io.write_file_atomic (Filename.concat gdir sealed_file)
      (Enclave.Sealed_slot.external_blob t.sealed);
    (* Simulated TPM NVRAM: hardware state that survives restarts. *)
    Ckpt_io.write_file_atomic (Filename.concat gdir tpm_file)
      (Fastver_crypto.Bytes_util.to_hex (Enclave.Sealed_slot.hw_key t.sealed)
      ^ "\n"
      ^ Int64.to_string (Enclave.Sealed_slot.counter t.sealed));
    Store.checkpoint t.store
      ~path:(Filename.concat gdir data_file)
      ~version:(verified_epoch t);
    (* Cold tier: the segment files themselves stay in [cold_dir] (they are
       append-only and immutable once sealed); the generation records only
       the manifest naming the committed prefix of each. [manifest_encode]
       fsyncs the active segment first, so every record the data checkpoint
       references is durable before the manifest that vouches for it. Under
       [cold_lock] so a racing maintenance pass's segment rotation is never
       interleaved with the encoding. *)
    (match t.cold with
    | None -> ()
    | Some c ->
        let encoded = with_cold_lock t (fun () -> Store.Cold.manifest_encode c) in
        Ckpt_io.write_file_atomic
          (Filename.concat gdir cold_manifest_file)
          encoded);
    (* Per-shard merkle images. *)
    Array.iter
      (fun sh ->
        let buf = Buffer.create 4096 in
        Tree.iter sh.tree (fun k entry ->
            Buffer.add_string buf (Key.encode k);
            let venc = Value.encode entry.value in
            let b4 = Bytes.create 4 in
            Bytes.set_int32_le b4 0 (Int32.of_int (String.length venc));
            Buffer.add_bytes buf b4;
            Buffer.add_string buf venc;
            mstate_encode buf entry.aux.mstate
              ~is_root:(Key.equal k Key.root);
            Bytes.set_int32_le b4 0 (Int32.of_int entry.aux.owner);
            Buffer.add_bytes buf b4);
        Ckpt_io.write_file_atomic
          (Filename.concat gdir (shard_tree_file sh.sid))
          (Buffer.contents buf))
      t.shards;
    (* Commit point: the manifest, checksumming every component, goes last. *)
    let components =
      static_component_files
      @ List.init (Array.length t.shards) shard_tree_file
      @ (match t.cold with None -> [] | Some _ -> [ cold_manifest_file ])
    in
    let entries =
      List.map
        (fun name ->
          match Ckpt_io.Manifest.entry_of_file ~dir:gdir name with
          | Ok e -> e
          | Error e -> raise (Ckpt_error ("checkpoint: " ^ name ^ ": " ^ e)))
        components
    in
    Ckpt_io.Manifest.write ~dir:gdir { generation; entries };
    Ckpt_io.fsync_dir dir;
    (* Retention: keep this generation plus its newest *committed*
       predecessor (the fallback for a crash during the *next* checkpoint);
       prune everything else. The fallback is chosen by commit status, not by
       number: a checkpoint attempt that failed non-fatally (disk full, say,
       with the process still serving) leaves a torn directory in the numeric
       predecessor slot, and keeping that instead of the last good generation
       would leave no usable fallback at all. *)
    let older =
      List.filter (fun (g, _) -> g < generation) (Ckpt_io.generations dir)
    in
    let fallback =
      List.find_opt
        (fun (g, path) -> classify_generation ~number:g path = Committed)
        older
    in
    List.iter
      (fun (g, path) ->
        match fallback with
        | Some (fg, _) when g = fg -> ()
        | Some _ | None -> Ckpt_io.remove_tree path)
      older;
    (* Only now — after the new generation committed and old ones were
       pruned — may segments retired two checkpoints ago be unlinked: no
       retained manifest can still name them. *)
    (match t.cold with
    | None -> ()
    | Some c -> with_cold_lock t (fun () -> Store.Cold.note_checkpoint c))
  with
  | () ->
      Metrics.checkpoint_write t.metrics (now () -. ck0);
      Ok ()
  | exception Ckpt_error e -> Error e
  | exception Sys_error e -> Error ("checkpoint: " ^ e)
  | exception Failure e -> Error ("checkpoint: " ^ e)

(* Total parser for one shard's merkle image: every malformed-input path is
   an [Error] — truncation, a data key where an internal node belongs, a
   negative length, an unknown protection tag. The enclosing generation was
   already classified Committed, so any of these means the manifest was
   forged around tampered bytes; the caller treats the generation as
   tampered and refuses to fall back. *)
let parse_tree_file ~sid raw =
  let exception Corrupt of string in
  let fail fmt = Printf.ksprintf (fun e -> raise (Corrupt e)) fmt in
  let tree = Tree.create ~root_aux:{ mstate = M_cached sid; owner = -1 } in
  let pos = ref 0 and n = String.length raw in
  let need k = if k < 0 || !pos + k > n then fail "tree file truncated" in
  try
    while !pos < n do
      need 34;
      let kenc = String.sub raw !pos 34 in
      let depth = String.get_uint16_le kenc 0 in
      if depth >= Key.max_depth then fail "data key in tree file";
      let key = Key.prefix (Key.of_bytes32 (String.sub kenc 2 32)) depth in
      pos := !pos + 34;
      need 4;
      let vlen = Int32.to_int (String.get_int32_le raw !pos) in
      pos := !pos + 4;
      need vlen;
      let value =
        match Value.decode (String.sub raw !pos vlen) with
        | Ok v -> v
        | Error e -> fail "%s" e
      in
      pos := !pos + vlen;
      need 1;
      let mstate =
        match raw.[!pos] with
        | 'm' ->
            incr pos;
            M_merkle
        | 'b' ->
            need 9;
            let ts = String.get_int64_le raw (!pos + 1) in
            pos := !pos + 9;
            M_blum ts
        | c -> fail "bad mstate tag 0x%02x" (Char.code c)
      in
      need 4;
      let owner = Int32.to_int (String.get_int32_le raw !pos) in
      pos := !pos + 4;
      if Key.equal key Key.root then begin
        let e = Tree.get_exn tree Key.root in
        e.value <- value;
        e.aux <- { mstate = M_cached sid; owner }
      end
      else Tree.set tree key value ~aux:{ mstate; owner }
    done;
    (* Structural consistency: every pointer must target either a data key
       (whose record lives in the store) or an internal record present in
       this file, strictly inside its pointing record's subtree. No honest
       checkpoint writes anything else, and a dangling or upward pointer
       would crash or loop tree descent after recovery instead of
       surfacing as the tampering it is. *)
    Tree.iter tree (fun k e ->
        match e.value with
        | Value.Data _ -> fail "data value under merkle key in tree file"
        | Value.Node node ->
            List.iter
              (function
                | None -> ()
                | Some (p : Value.ptr) ->
                    if not (Key.is_proper_ancestor k p.key) then
                      fail "pointer outside its subtree in tree file";
                    if not (Key.is_data_key p.key) then (
                      match Tree.find tree p.key with
                      | Some { value = Value.Node _; _ } -> ()
                      | Some _ | None ->
                          fail "dangling pointer in tree file"))
              [ node.left; node.right ]);
    Ok tree
  with Corrupt e -> Error e

(* Rebuild a system from one committed generation directory. Total: every
   decoder failure is an [Error]; nothing here may raise on corrupt input.
   The shard count and routing boundaries are adopted from the sealed
   payload — the configuration's [n_shards] only governs fresh systems. *)
let recover_generation ?(config = Config.default) ~gdir () =
  let ( let* ) = Result.bind in
  let* tpm =
    try Ok (read_file (Filename.concat gdir tpm_file))
    with Sys_error e | Failure e -> Error e
  in
  let* hw_key, counter =
    match String.split_on_char '\n' tpm with
    | [ k; c ] -> (
        try Ok (Fastver_crypto.Bytes_util.of_hex k, Int64.of_string c)
        with _ -> Error "corrupt tpm state")
    | _ -> Error "corrupt tpm state"
  in
  let sealed = Enclave.Sealed_slot.create_with ~hw_key ~counter in
  let* blob =
    try Ok (read_file (Filename.concat gdir sealed_file))
    with Sys_error e | Failure e -> Error e
  in
  Enclave.Sealed_slot.inject_blob sealed blob;
  let* sealed_payload = Enclave.Sealed_slot.load sealed in
  let* nonces, boundaries, summaries = parse_sealed_payload sealed_payload in
  let n_sh = Array.length summaries in
  let enclave = Enclave.create config.cost_model in
  let vconfig = vconfig_of config in
  let* verifiers =
    let rec build acc sid =
      if sid >= n_sh then Ok (Array.of_list (List.rev acc))
      else
        match Verifier.of_summary ~enclave vconfig summaries.(sid) with
        | Ok v -> build (v :: acc) (sid + 1)
        | Error e -> Error (Printf.sprintf "shard %d: %s" sid e)
    in
    build [] 0
  in
  (* The cold tier recovers from the manifest this generation committed:
     sealed segments are re-verified against their footers and the torn
     tail of the active segment is truncated back to the committed length.
     A generation without a cold manifest (written with the tier off)
     recovers with a fresh tier when one is now configured. *)
  let* cold =
    let mpath = Filename.concat gdir cold_manifest_file in
    if Sys.file_exists mpath then
      let* manifest =
        try Ok (read_file mpath) with Sys_error e | Failure e -> Error e
      in
      cold_of_config ~manifest config
    else cold_of_config config
  in
  let* store, data_version =
    Store.recover ?cold ~codec:option_codec
      ~path:(Filename.concat gdir data_file)
      ()
  in
  (* The data checkpoint's version must equal every sealed shard summary's
     verified epoch: they were written by the same checkpoint, and a
     disagreement means the generation was stitched together from mixed
     states (the sealed summaries are the trusted side of the pair). *)
  let* () =
    let rec check sid =
      if sid >= n_sh then Ok ()
      else
        let epoch = Verifier.verified_epoch verifiers.(sid) in
        if data_version <> epoch then
          Error
            (Printf.sprintf
               "data checkpoint version %d disagrees with shard %d's sealed \
                verifier epoch %d"
               data_version sid epoch)
        else check (sid + 1)
    in
    check 0
  in
  let* shards =
    let rec build acc sid =
      if sid >= n_sh then Ok (Array.of_list (List.rev acc))
      else
        let* raw =
          try Ok (read_file (Filename.concat gdir (shard_tree_file sid)))
          with Sys_error e | Failure e -> Error e
        in
        let* tree =
          Result.map_error
            (fun e -> Printf.sprintf "shard %d: %s" sid e)
            (parse_tree_file ~sid raw)
        in
        build (mk_shard ~tree verifiers.(sid) sid :: acc) (sid + 1)
    in
    build [] 0
  in
  let t =
    {
      config;
      enclave;
      shards;
      boundaries;
      store;
      auth = Auth.key_of_secret config.mac_secret;
      nonces;
      sealed;
      loaded = true;
      gateway_lock = Mutex.create ();
      ops_since_verify = Atomic.make 0;
      live_epoch = Atomic.make (Verifier.current_epoch verifiers.(0));
      verify_mutex = Mutex.create ();
      verify_inflight = Atomic.make false;
      bg_lock = Mutex.create ();
      bg_join = Atomic.make None;
      redeferred = [];
      redeferred_lock = Mutex.create ();
      on_verified = None;
      repl = None;
      cold;
      cold_lock = Mutex.create ();
      stats = mk_stats n_sh;
      metrics = Metrics.create ~enabled:config.metrics_enabled ();
    }
  in
  Array.iter
    (fun sh ->
      Tree.iter sh.tree (fun k entry ->
          if entry.aux.owner >= 0 then sh.frontier <- k :: sh.frontier);
      (* The frontier cut depth survives as the shape of the recovered
         frontier itself (owner marks): a member's Patricia level is the
         length of its parent chain. Heat, hot-set and per-epoch counters
         are advisory and restart cold; the carried keys themselves persist
         as blum aux and re-enter via the dirty re-seed below, so an
         adaptive store recovers mid-flight without certificate drift. *)
      sh.depth <-
        (match sh.frontier with
        | [] -> config.frontier_levels
        | fs ->
            List.fold_left
              (fun d f -> max d (List.length (Tree.descend sh.tree f).path))
              1 fs))
    t.shards;
  (* Re-seed the dirty sets from the persisted protection state: a
     checkpoint may land mid-epoch (with background verification it
     routinely does), so data records still riding the deferred tier
     persist with blum aux, and their evict-set entries came back with the
     sealed summaries. Without their keys in the shards' dirty lists the
     next scan could never balance those entries. The store aux is the
     source of truth — it also covers keys that were sitting in the
     in-memory re-deferral list when the process died. *)
  Store.iter_aux t.store (fun k aux ->
      if aux_is_blum aux then begin
        let sh = t.shards.(shard_of_data_key t k) in
        sh.dirty <- k :: sh.dirty;
        sh.dirty_len <- sh.dirty_len + 1
      end);
  wire_metrics t;
  Ok t

let err_no_checkpoint = "no checkpoint found"

(* Newest-first scan over the generations, applying the torn/tampered
   distinction of {!classify_generation}: torn crash artifacts are deleted
   and skipped (they never committed and can never shadow the good
   generation behind them); a tampered generation stops recovery cold, with
   the directory left in place as evidence. *)
let recover ?(config = Config.default) ~dir () =
  let t0 = now () in
  let rec scan = function
    | [] -> Error "no valid checkpoint generation"
    | (number, gdir) :: older -> (
        match classify_generation ~number gdir with
        | Torn _ ->
            Ckpt_io.remove_tree gdir;
            scan older
        | Tampered e ->
            Error
              (Printf.sprintf
                 "%s: %s — a committed manifest that fails validation \
                  implies tampering, not a crash; refusing to fall back to \
                  an older generation"
                 (Filename.basename gdir) e)
        | Committed -> recover_generation ~config ~gdir ())
  in
  match Ckpt_io.generations dir with
  | [] ->
      (* Distinguish "nothing here" (fresh start is safe) from a checkpoint
         written by the pre-generation flat layout, which this release can
         no longer read. *)
      if
        List.exists
          (fun f -> Sys.file_exists (Filename.concat dir f))
          ("merkle.tree" :: static_component_files)
      then
        Error
          "unsupported legacy checkpoint format (flat pre-generation \
           layout); re-checkpoint with this release"
      else Error err_no_checkpoint
  | gens -> (
      match scan gens with
      | Ok t ->
          Metrics.recover_done t.metrics (now () -. t0);
          Ok t
      | Error _ as e -> e)

module String_keys = struct
  let key s =
    Key.of_bytes32 (Fastver_crypto.Sha256.digest ("fastver-skey:" ^ s))

  let get t k = get_key t (key k)
  let put t k v = put_key t (key k) v
  let delete t k = delete_key t (key k)
end

let set_auto_checkpoint t ~dir =
  t.on_verified <-
    Some
      (fun () ->
        match checkpoint t ~dir with
        | Ok () -> ()
        | Error e -> Logs.warn (fun m -> m "auto-checkpoint: %s" e))

let clear_auto_checkpoint t = t.on_verified <- None

(* Promotion support: a store created as a replication follower runs with
   batch_size 0 (its epochs are sealed by the primary's stream). When the
   follower wins an election it must start sealing epochs itself again, so
   the new primary's boundary records flow. *)
let set_batch_size t n =
  if n < 0 then invalid_arg "Fastver.set_batch_size: negative batch size";
  t.config <- { t.config with Config.batch_size = n }

(* ------------------------------------------------------------------ *)
(* Parallel runtime (§5.3, §7 thread model)                            *)
(* ------------------------------------------------------------------ *)

module Parallel = struct
  exception Worker_failed of int * exn

  let () =
    Printexc.register_printer (function
      | Worker_failed (wid, e) ->
          Some
            (Printf.sprintf "Parallel.Worker_failed(worker %d, %s)" wid
               (Printexc.to_string e))
      | _ -> None)

  (* SplitMix64 finaliser mixing the worker id into the configured seed.
     The previous [seed + wid * 7919] made configured seeds differing by a
     multiple of 7919 replay each other's worker streams shifted by one
     worker; a bijective avalanche mix decorrelates every (seed, wid)
     pair. *)
  let mix_seed seed wid =
    let z =
      ref
        (Int64.add (Int64.of_int seed)
           (Int64.mul (Int64.of_int (wid + 1)) 0x9e3779b97f4a7c15L))
    in
    z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30))
           0xbf58476d1ce4e5b9L;
    z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27))
           0x94d049bb133111ebL;
    z := Int64.logxor !z (Int64.shift_right_logical !z 31);
    Int64.to_int (Int64.logand !z 0x3fffffffffffffffL)

  let run_ycsb t ~spec ~db_size ~ops_per_worker =
    check_loaded t;
    let open Fastver_workload in
    (* Driver domains: [n_workers] of them. Each operation still routes to
       its key's shard — the domains only generate and drive traffic. *)
    let n = max 1 t.config.n_workers in
    let failures = Array.make n None in
    let body wid () =
      let gen =
        Ycsb.create ~seed:(mix_seed t.config.seed wid) ~db_size spec
      in
      try
        let i = ref 0 in
        while !i < ops_per_worker do
          (match Ycsb.next gen with
          | Ycsb.Read k ->
              ignore (process t (Key.of_int64 k) (A_get None));
              incr i
          | Ycsb.Update (k, v) ->
              ignore (process t (Key.of_int64 k) (A_put (Some v, None)));
              incr i
          | Ycsb.Scan (k, len) ->
              for j = 0 to len - 1 do
                ignore
                  (process t
                     (Key.of_int64 (Int64.add k (Int64.of_int j)))
                     (A_get None))
              done;
              i := !i + len);
          maybe_verify t
        done
      with e -> failures.(wid) <- Some e
    in
    let domains = Array.init (n - 1) (fun i -> Domain.spawn (body (i + 1))) in
    body 0 ();
    Array.iter Domain.join domains;
    Array.iteri
      (fun wid failure ->
        match failure with
        | Some e -> raise (Worker_failed (wid, e))
        | None -> ())
      failures
end

(* ------------------------------------------------------------------ *)
(* Failure injection for adversarial tests                             *)
(* ------------------------------------------------------------------ *)

module Testing = struct
  let corrupt_store t k value =
    let key = Key.of_int64 k in
    match Store.get t.store key with
    | Ok (Some (_, aux)) -> Store.put t.store key value ~aux
    | Ok None | Error _ -> Store.put t.store key value ~aux:aux_merkle

  let replay_last_put t =
    match !last_put with
    | None -> invalid_arg "Testing.replay_last_put: no put recorded"
    | Some (key, value, m) ->
        let _, sh = process t key (A_put (value, Some m)) in
        flush_worker t sh

  let corrupt_merkle_record t k =
    let rec entry_of sid =
      if sid >= Array.length t.shards then
        invalid_arg "corrupt_merkle_record: key not present"
      else
        match Tree.find t.shards.(sid).tree k with
        | Some e -> e
        | None -> entry_of (sid + 1)
    in
    let e = entry_of 0 in
    match e.value with
    | Value.Node { left = Some p; right } ->
        e.value <-
          Value.Node { left = Some { p with hash = String.make 32 'Z' }; right }
    | Value.Node { left = None; right = Some p } ->
        e.value <-
          Value.Node { left = None; right = Some { p with hash = String.make 32 'Z' } }
    | Value.Node { left = None; right = None } | Value.Data _ ->
        invalid_arg "corrupt_merkle_record: nothing to corrupt"

  let some_merkle_key t =
    let found = ref None in
    Array.iter
      (fun sh ->
        Tree.iter sh.tree (fun k e ->
            if !found = None && (not (Key.equal k Key.root)) then
              match e.aux.mstate with M_merkle -> found := Some k | _ -> ()))
      t.shards;
    !found

  (* Lock-order assertion hooks: with enforcement on, every acquisition in
     the core checks the documented order — shard tree locks ascending,
     then worker locks ascending, with [bg_lock]/[redeferred_lock]/
     [cold_lock] as annotated leaves — and these helpers let tests provoke
     violations directly. *)
  let enforce_lock_order on = Atomic.set Lock_order.enforce on
  let with_tree_lock t f = with_shard_lock t 0 f
  let with_shard_lock t sid f = with_shard_lock t sid f
  let with_worker_lock t wid f = with_worker_lock t wid f
  let with_bg_lock t f = with_bg_lock t f
  let with_redeferred_lock t f = with_redeferred_lock t f
  let with_cold_lock t f = with_cold_lock t f
end
