(** Canonical message encodings MAC'd between clients and the verifier.

    Clients and the verifier share a secret (§2.2); requests and validated
    results are authenticated with AES-CMAC over the encodings below (the
    paper's footnote 2: MACs over a secure channel replace signatures).
    This module is part of the trusted computing base on both ends. *)

type key

val key_of_secret : string -> key
(** Derive a MAC key from the shared secret (any length). *)

val put_request : key -> client:int -> nonce:int64 -> Key.t -> string -> string
(** Tag authorising [put(k, v, nonce)] from [client]. *)

type kind = Get | Put

val receipt :
  key -> kind:kind -> client:int -> nonce:int64 -> Key.t -> string option ->
  epoch:int -> string
(** The verifier's provisional validation of a result: covers the operation,
    its nonce (anti-replay for stale results) and the epoch whose
    verification will make it final. *)

val check : expected:string -> string -> bool
(** Constant-time tag comparison. *)
