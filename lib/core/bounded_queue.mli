(** A bounded blocking queue for handing work between domains.

    Multi-producer/multi-consumer; one mutex, two condition variables. The
    network server uses it as the SPMC job channel between the I/O loop and
    its executor pool: the bounded capacity turns a saturated pool into
    backpressure on the producer instead of unbounded queue growth. *)

type 'a t

val create : int -> 'a t
(** [create capacity] — @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** Blocks while the queue is full. Returns [true] once the element is
    enqueued, [false] if the queue is (or becomes, while blocked) closed —
    the element is dropped and the caller must fail the work it carries.
    Total: never raises, so a producer racing {!close} cannot crash. *)

val pop : 'a t -> 'a option
(** Blocks while the queue is empty and open; [None] once the queue is
    closed and drained. *)

val close : 'a t -> unit
(** Idempotent. Wakes all blocked producers and consumers; subsequent
    pushes return [false], pops drain the remaining elements then return
    [None]. *)

val length : 'a t -> int
