(** FastVer system configuration.

    The two latency/throughput knobs of §8.1 are [batch_size] (operations
    between verification scans) and [frontier_levels] (the depth-[d] cut of
    merkle records kept under deferred protection). *)

type t = {
  n_workers : int;
      (** Worker threads; each pairs with one verifier thread (§5.3). *)
  n_shards : int;
      (** Keyspace partitions, each with its own Merkle tree, verifier
          state, and epoch clock; per-shard epoch certificates fold into one
          store-level certificate. [0] (the default) follows [n_workers] —
          use {!shards} to resolve. *)
  cache_capacity : int;  (** Verifier cache entries per thread. *)
  frontier_levels : int;
      (** Patricia levels below the root whose nodes stay blum-protected;
          roughly [2^d] records migrate on every verification. *)
  batch_size : int;
      (** Operations processed between automatic verification scans; [0]
          disables automatic verification. *)
  log_buffer_size : int;
      (** Verifier-log entries buffered per worker before entering the
          enclave (§7, amortising transition cost). *)
  algo : Record_enc.algo;  (** Merkle hash function. *)
  cost_model : Cost_model.t;  (** Enclave cost accounting. *)
  authenticate_clients : bool;
      (** Check client MACs on puts and MAC every validated result. *)
  sorted_migration : bool;
      (** Apply deferred records back to the Merkle tree in sorted key order
          during verification scans (§6.3). Disabling this is the ablation of
          the paper's sorted-Merkle-updates optimisation. *)
  mac_secret : string;  (** Secret shared between clients and verifier. *)
  mset_secret : string;  (** 16-byte multiset-hash PRF key. *)
  seed : int;
  metrics_enabled : bool;
      (** Record hot-path observability metrics (tier attribution, flush
          sizes, scan timings) into the system's {!Fastver_obs.Registry}.
          Callback-backed metrics register either way; disabling only skips
          the per-operation counter updates. *)
  background_verify : bool;
      (** Run epoch verification scans concurrently with foreground
          traffic: the epoch boundary is sealed under a brief O(workers)
          barrier, the live epoch is bumped so gets/puts resume
          immediately, and the scan runs over the sealed snapshot on
          background domains. Off by default: [Fastver.verify] then holds
          the world lock for the whole scan (quiesced semantics). *)
  cold_dir : string option;
      (** Directory for the authenticated cold tier; [None] keeps every
          record in memory. Larger-than-memory datasets demote cooling
          records here after each verification scan. *)
  cold_threshold : int;
      (** In-memory record budget: log entries older than the newest
          [cold_threshold] are demoted to the cold tier. *)
  cold_segment_bytes : int;  (** Cold segment seal threshold. *)
  cold_gc_ratio : float;
      (** Compact a sealed segment once this fraction of its bytes is dead. *)
  adaptive : bool;
      (** Run the online controller ({!Adaptive}) at every epoch seal:
          promote hot deferred keys to stay on the blum fast path, retune
          per-shard frontier depth between [adaptive_depth_min] and
          [adaptive_depth_max], and redistribute verifier-cache capacity
          across shards within [adaptive_cache_budget]. All movement rides
          the sealed-epoch machinery, so certificates stay bit-identical to
          a static run with the same tier assignment. *)
  adaptive_cache_budget : int;
      (** Store-wide verifier-cache entry budget shared by all shards; [0]
          (default) means [shards * cache_capacity] — i.e. resizing only
          redistributes, never grows beyond the static footprint. *)
  adaptive_depth_min : int;  (** Lower bound for retuned frontier depth. *)
  adaptive_depth_max : int;  (** Upper bound for retuned frontier depth. *)
  adaptive_hot_fraction : float;
      (** Fraction of a shard's cache capacity the controller may spend on
          hot-key carry (promotions) each epoch. *)
}

val default : t
(** 1 worker, 512-entry caches, d = 6, 64K batch, simulated enclave. *)

val shards : t -> int
(** Resolved shard count: [n_shards] if positive, else [max 1 n_workers]. *)

val pp : Format.formatter -> t -> unit
