(* The replication stream's integrity layer.

   An epoch certificate authenticates only the epoch number (that is its
   point: a compact, transferable proof that the primary's verifier found
   epoch [e] balanced). It says nothing about which ops were streamed for
   [e] — so a hostile network (or host) could alter streamed values and
   still present a valid certificate. The stream therefore carries a second
   authenticator: each side folds every op record into a per-epoch running
   digest, and the epoch-boundary record MACs that digest (together with the
   epoch number) under the shared secret. A follower accepts an epoch's ops
   only when both the certificate and the stream MAC authenticate. *)

let digest_size = Fastver_crypto.Sha256.digest_size
let empty_digest = String.make digest_size '\000'

let add_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

(* digest' = SHA256(digest || epoch || key || value): injective framing —
   the key is fixed-width and the value carries an explicit length — so two
   distinct op sequences can only collide by breaking the hash. *)
let fold digest ~epoch ~key ~value =
  if String.length digest <> digest_size then
    invalid_arg "Stream.fold: bad digest size";
  if String.length key <> 32 then invalid_arg "Stream.fold: key must be 32 bytes";
  let b = Buffer.create (digest_size + 4 + 32 + 8) in
  Buffer.add_string b digest;
  add_u32 b epoch;
  Buffer.add_string b key;
  (match value with
  | None -> Buffer.add_char b '\000'
  | Some v ->
      Buffer.add_char b '\001';
      add_u32 b (String.length v);
      Buffer.add_string b v);
  Fastver_crypto.Sha256.digest (Buffer.contents b)

(* The fencing term rides under the boundary MAC too — otherwise a relay
   could re-stamp a deposed primary's records with the current term and
   defeat the monotone-term check. Term 0 ("before any election") keeps the
   legacy message byte-identical, so v1 boundary records and never-elected
   clusters interoperate unchanged. *)
let boundary_message ~term ~epoch ~digest =
  if term = 0 then Printf.sprintf "fastver-repl-epoch:%d:%s" epoch digest
  else Printf.sprintf "fastver-repl-epoch:%d:t%d:%s" epoch term digest

let boundary_mac ~mac_secret ?(term = 0) ~epoch ~digest () =
  Fastver_crypto.Hmac.mac ~key:mac_secret (boundary_message ~term ~epoch ~digest)

let check_boundary_mac ~mac_secret ?(term = 0) ~epoch ~digest ~tag () =
  Fastver_crypto.Hmac.verify ~key:mac_secret
    (boundary_message ~term ~epoch ~digest)
    ~tag
