(** The replication primary: tees every admitted op into a framed stream and
    serves it, with epoch-boundary certificate records, to subscribed
    followers on a dedicated listener.

    {!create} installs the {!Fastver.set_replication_hooks} tee, so it must
    run {e before} the store serves traffic: ops applied earlier are not in
    the retained log and their epoch could never authenticate downstream.
    The stream layer keeps the last [retain_epochs] sealed epochs of
    records; a follower subscribing from below that floor is told to fetch
    the newest committed checkpoint generation instead (shipped verbatim,
    manifest included — the follower re-verifies every checksum through the
    normal recovery path).

    Wire conversation (see {!Fastver_net.Wire}): a follower sends
    [Subscribe { from_epoch; term }] meaning "my state reflects every sealed
    epoch below [from_epoch], newest verified under fencing [term]"; the
    primary acks with [Subscribed] (carrying this incarnation's [run_id] and
    current term), replays the retained records for epochs [>= from_epoch]
    and then streams live. [Fetch_checkpoint] may be sent on the same
    connection before subscribing. [Announce_term] and [Promote] are the
    election opcodes: every listener (leading or standby) answers them with
    [Term_info].

    {b Fencing.} Every boundary record is stamped with the primary's term
    (covered by the stream MAC). At subscribe time: a subscriber speaking a
    {e higher} term proves this primary was deposed (the refusal is recorded
    — see {!deposed} — and the owner demotes); a subscriber whose {e older}
    term claims epochs at or past {!promote}'s [term_start] is fenced off
    with a "fetch a checkpoint" refusal, because those epochs were re-sealed
    under the new term and its chain may diverge.

    Metrics (on the system's registry): [fastver_repl_ops_streamed_total],
    [fastver_repl_epochs_streamed_total], [fastver_repl_followers],
    [fastver_repl_stream_lag_bytes], [fastver_repl_term]. *)

type config = {
  retain_epochs : int;
      (** sealed epochs kept replayable for tailing subscribers
          (default 64) *)
  conn_out_limit : int;
      (** a follower whose unsent backlog exceeds this is disconnected
          (default 64 MiB) *)
  checkpoint_dir : string option;
      (** where [Fetch_checkpoint] reads generations from; [None] disables
          checkpoint catch-up *)
  batch_ops : int;
      (** ops coalesced into one [Repl_batch] frame before a forced flush
          (default 512); [<= 1] restores per-op [Repl_op] framing. Batches
          also flush at every epoch seal, at any epoch change, before a
          subscriber's replay snapshot, and after {!batch_delay}. The
          per-op stream digest and boundary MAC are unchanged — batching
          is pure framing. *)
  batch_delay : float;
      (** seconds a buffered op may wait before its batch is flushed
          (default 0.02) *)
  term : int;
      (** initial fencing term (default 0 — "never elected"). Election
          winners get theirs via {!promote}. *)
  priority : int;
      (** static election priority reported in [Term_info] (default 0);
          higher wins equal-epoch ties. *)
}

val default_config : config

type role = Leading | Standby
(** [Leading] tees and streams; [Standby] is an election candidate — the
    listener answers [Announce_term]/[Promote] probes and refuses
    subscribers until {!promote}. *)

type t

val create :
  ?config:config ->
  ?role:role ->
  Fastver.t ->
  listen:Fastver_net.Addr.t ->
  (t, string) result
(** Binds the replication listener; with [~role:Leading] (the default) also
    installs the tee hooks, so it must run before the store serves any
    traffic. [~role:Standby] installs nothing — an electable follower binds
    its future replication address this way and {!promote}s in place. *)

val bound_addr : t -> Fastver_net.Addr.t
(** Effective listen address (TCP port 0 resolved). *)

val run : t -> unit
(** Run the streaming loop in the calling thread until {!stop}. *)

val start : t -> unit
(** Run the loop in a background domain. *)

val stop : t -> unit
(** Clear the tee hooks, wake and join the loop, close every connection and
    the listener. Idempotent. *)

val sealed_epoch : t -> int
(** Highest epoch whose boundary record has been emitted ([-1] if none). *)

val frames_emitted : t -> int
(** Op-carrying stream frames emitted so far ([Repl_op] or [Repl_batch] —
    boundary records excluded). With batching, ops/frames ≈ the realised
    coalescing factor. *)

val followers : t -> int
(** Live replication connections (subscribed or not). *)

val run_id : t -> int64

(** {2 Election} *)

val role : t -> role
val term : t -> int
val priority : t -> int

val deposed : t -> (int * string option) option
(** Evidence this node's mandate ended: a peer spoke from a strictly higher
    term ([Some (term, addr)]; [addr] names the new primary's replication
    address when a [Promote] directive carried it). The owner should
    {!demote} a leader, or re-subscribe a standby's follower at [addr]. *)

val take_directive : t -> (int * string option) option
(** Like {!deposed}, but on a standby also consumes the directive, so the
    owner acts on each one exactly once. *)

val promote : t -> term:int -> unit
(** Standby → Leading in place: install the tee hooks on the live store and
    start serving the stream under [term]. The first epoch sealed after this
    call is the fencing boundary ([term_start]) for stale-term subscribers.
    The caller is responsible for re-enabling auto-sealing
    ({!Fastver.set_batch_size}) and flipping its net server out of
    read-only.
    @raise Invalid_argument if already leading. *)

val demote : t -> term:int -> unit
(** Leading → Standby in place: clear the tee hooks, adopt [term] (terms
    never move backwards), and disconnect every subscriber so they re-home
    to the new primary. The listener keeps answering election probes. *)

(** {2 Peer probing} *)

type peer_info = {
  p_term : int;
  p_sealed : int;
  p_priority : int;
  p_run_id : int64;
  p_primary : bool;
}

val announce :
  ?timeout:float ->
  Fastver_net.Addr.t ->
  term:int ->
  sealed:int ->
  priority:int ->
  run_id:int64 ->
  [ `Info of peer_info | `Unreachable of string ]
(** One [Announce_term] exchange with a peer's replication listener. Total:
    connection failures, timeouts (default 2 s) and refusals all come back
    as [`Unreachable] — election treats such a peer as not voting. *)

val send_promote :
  ?timeout:float ->
  Fastver_net.Addr.t ->
  term:int ->
  self:Fastver_net.Addr.t ->
  [ `Ok | `Unreachable of string ]
(** Best-effort winner directive: tell [peer] that [self] is primary for
    [term]. Losers re-subscribe there; a stale rival primary records it as
    deposition evidence. *)
