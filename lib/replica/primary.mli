(** The replication primary: tees every admitted op into a framed stream and
    serves it, with epoch-boundary certificate records, to subscribed
    followers on a dedicated listener.

    {!create} installs the {!Fastver.set_replication_hooks} tee, so it must
    run {e before} the store serves traffic: ops applied earlier are not in
    the retained log and their epoch could never authenticate downstream.
    The stream layer keeps the last [retain_epochs] sealed epochs of
    records; a follower subscribing from below that floor is told to fetch
    the newest committed checkpoint generation instead (shipped verbatim,
    manifest included — the follower re-verifies every checksum through the
    normal recovery path).

    Wire conversation (see {!Fastver_net.Wire}): a follower sends
    [Subscribe { from_epoch }] meaning "my state reflects every sealed epoch
    below [from_epoch]"; the primary acks with [Subscribed] (carrying this
    incarnation's [run_id]), replays the retained records for epochs
    [>= from_epoch] and then streams live. [Fetch_checkpoint] may be sent on
    the same connection before subscribing.

    Metrics (on the system's registry): [fastver_repl_ops_streamed_total],
    [fastver_repl_epochs_streamed_total], [fastver_repl_followers],
    [fastver_repl_stream_lag_bytes]. *)

type config = {
  retain_epochs : int;
      (** sealed epochs kept replayable for tailing subscribers
          (default 64) *)
  conn_out_limit : int;
      (** a follower whose unsent backlog exceeds this is disconnected
          (default 64 MiB) *)
  checkpoint_dir : string option;
      (** where [Fetch_checkpoint] reads generations from; [None] disables
          checkpoint catch-up *)
  batch_ops : int;
      (** ops coalesced into one [Repl_batch] frame before a forced flush
          (default 512); [<= 1] restores per-op [Repl_op] framing. Batches
          also flush at every epoch seal, at any epoch change, before a
          subscriber's replay snapshot, and after {!batch_delay}. The
          per-op stream digest and boundary MAC are unchanged — batching
          is pure framing. *)
  batch_delay : float;
      (** seconds a buffered op may wait before its batch is flushed
          (default 0.02) *)
}

val default_config : config

type t

val create :
  ?config:config -> Fastver.t -> listen:Fastver_net.Addr.t ->
  (t, string) result
(** Binds the replication listener and installs the tee hooks. Call before
    the store serves any traffic. *)

val bound_addr : t -> Fastver_net.Addr.t
(** Effective listen address (TCP port 0 resolved). *)

val run : t -> unit
(** Run the streaming loop in the calling thread until {!stop}. *)

val start : t -> unit
(** Run the loop in a background domain. *)

val stop : t -> unit
(** Clear the tee hooks, wake and join the loop, close every connection and
    the listener. Idempotent. *)

val sealed_epoch : t -> int
(** Highest epoch whose boundary record has been emitted ([-1] if none). *)

val frames_emitted : t -> int
(** Op-carrying stream frames emitted so far ([Repl_op] or [Repl_batch] —
    boundary records excluded). With batching, ops/frames ≈ the realised
    coalescing factor. *)

val followers : t -> int
(** Live replication connections (subscribed or not). *)

val run_id : t -> int64
