(** Integrity of the replication stream itself.

    Epoch certificates authenticate epoch numbers, not op payloads; the
    stream adds a per-epoch running digest over every {!Wire.response.Repl_op}
    record, and the boundary record carries an HMAC over (epoch, digest)
    under the shared secret. Primary and follower fold identically; a single
    flipped bit in any streamed op (or a dropped/injected/reordered op)
    changes the follower's digest and the boundary MAC no longer checks. *)

val empty_digest : string
(** The fold's starting value (32 zero bytes). *)

val fold : string -> epoch:int -> key:string -> value:string option -> string
(** [fold digest ~epoch ~key ~value] chains one op record into the running
    digest. [key] is the raw 32-byte data-key path, as carried on the wire.
    @raise Invalid_argument on wrong digest or key width. *)

val boundary_mac :
  mac_secret:string -> ?term:int -> epoch:int -> digest:string -> unit -> string
(** The [stream_mac] the primary puts in its epoch-boundary record. The
    fencing [term] (default 0) is covered by the MAC; term 0 produces the
    pre-election (wire v1) message byte-for-byte, so both framings
    interoperate. *)

val check_boundary_mac :
  mac_secret:string ->
  ?term:int ->
  epoch:int ->
  digest:string ->
  tag:string ->
  unit ->
  bool
(** Constant-time check of a received boundary MAC. *)
